// Benchtab regenerates the paper's tables and figures on the synthetic
// dataset analogs. Each experiment prints the same rows/series the paper
// reports; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
//
// Usage:
//
//	benchtab -exp table1|fig1|fig2|fig3|fig6a|fig6b|fig6c|fig6d|giraphx|
//	              ablation-partitions|ablation-degenerate|ablation-partitioner|
//	              recovery|flow|partition|all
//	         [-scale 0.5] [-workers 16,32] [-latency 50us] [-v]
//	         [-json bench.json] [-label v3] [-trace]
//
// With -json, every measured row (including its metrics snapshot, and
// with -trace a per-superstep phase breakdown) is also written to the
// given file as a machine-readable perf-trajectory point; the BENCH_NNNN
// files at the repo root are produced this way via `make bench-json`.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"serialgraph/internal/bench"
	"serialgraph/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scale := flag.Float64("scale", 0, "dataset scale factor (default 1.0 or $SERIALGRAPH_SCALE)")
	workersFlag := flag.String("workers", "16,32", "comma-separated cluster sizes")
	latency := flag.Duration("latency", 0, "simulated one-way network latency (default: per-experiment; 50µs for most, 200µs for sched)")
	verbose := flag.Bool("v", false, "print progress")
	jsonOut := flag.String("json", "", "also write all measured rows (with metrics) to this file as JSON")
	label := flag.String("label", "", "free-form provenance label recorded in the JSON report")
	trace := flag.Bool("trace", false, "record a per-superstep phase breakdown in each row (slower)")
	flag.Parse()

	var workers []int
	for _, f := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			log.Fatalf("bad -workers value %q", f)
		}
		workers = append(workers, w)
	}
	cfg := bench.Config{Scale: *scale, Workers: workers, Latency: *latency, Trace: *trace}
	if *verbose {
		cfg.Log = os.Stderr
	}

	out := os.Stdout
	var jsonRows []bench.Row
	keep := func(rows []bench.Row) []bench.Row {
		jsonRows = append(jsonRows, rows...)
		return rows
	}
	runOne := func(name string) {
		switch name {
		case "table1":
			header(out, "Table 1: datasets (paper originals vs synthetic analogs)")
			bench.Table1(out, cfg)
		case "fig1":
			header(out, "Figure 1 (measured): parallelism vs communication spectrum, coloring on OR")
			printSpectrum(out, keep(bench.Fig1Spectrum(cfg)))
		case "fig2", "fig3":
			header(out, "Figures 2 and 3: coloring non-termination on the 4-vertex example")
			bench.Fig23(out)
		case "fig6a":
			header(out, "Figure 6a: graph coloring computation times")
			bench.Print(out, keep(bench.Fig6("coloring", cfg)))
		case "fig6b":
			header(out, "Figure 6b: PageRank computation times")
			bench.Print(out, keep(bench.Fig6("pagerank", cfg)))
		case "fig6c":
			header(out, "Figure 6c: SSSP computation times")
			bench.Print(out, keep(bench.Fig6("sssp", cfg)))
		case "fig6d":
			header(out, "Figure 6d: WCC computation times")
			bench.Print(out, keep(bench.Fig6("wcc", cfg)))
		case "giraphx":
			header(out, "§7.3: Giraphx (in-algorithm) vs system-level techniques, coloring on OR")
			bench.Print(out, keep(bench.Giraphx(cfg)))
		case "ablation-partitions":
			header(out, "Ablation (§7.1): partitions-per-worker sweep, partition-based locking")
			bench.Print(out, keep(bench.AblationPartitions(cfg)))
		case "ablation-degenerate":
			header(out, "Ablation (§5.4): partition-based locking degenerating to vertex granularity")
			bench.Print(out, keep(bench.AblationDegenerate(cfg)))
		case "ablation-partitioner":
			header(out, "Ablation: partitioning quality (hash vs range vs LDG)")
			bench.Print(out, keep(bench.AblationPartitioner(cfg)))
		case "ablation-combining":
			header(out, "Ablation: sender-side combining (Giraph combiner in the buffer cache)")
			bench.Print(out, keep(bench.AblationCombining(cfg)))
		case "ablation-skip":
			header(out, "Ablation (§5.4): halted-partition skip optimization")
			bench.Print(out, keep(bench.AblationSkip(cfg)))
		case "mis":
			header(out, "Extension: serializable greedy MIS vs Luby's randomized MIS")
			bench.Print(out, keep(bench.MISComparison(cfg)))
		case "ablation-bap":
			header(out, "Ablation: barriered AP vs barrierless BAP (Giraph Unchained), partition locking")
			bench.Print(out, keep(bench.AblationBAP(cfg)))
		case "exclusion":
			header(out, "§7 exclusion: vertex-based locking on Giraph async vs GraphLab async")
			bench.Print(out, keep(bench.Exclusion(cfg)))
		case "recovery":
			header(out, "§6.4: checkpoint overhead and crash-recovery cost, SSSP on OR")
			bench.Print(out, keep(bench.RecoveryOverhead(cfg)))
		case "flow":
			header(out, "Bounded memory: credit flow + spill tier, BSP PageRank on UK")
			bench.Print(out, keep(bench.FlowOverhead(cfg)))
		case "partition":
			header(out, "Locality: streaming partitioners (hash vs LDG vs Fennel) across techniques")
			printPartition(out, keep(bench.PartitionQuality(cfg)))
		case "sched":
			header(out, "Scheduler: static vs overlap (fork prefetch + work stealing), clustered graph")
			printSched(out, keep(bench.SchedulerOverlap(cfg)))
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "fig2", "fig1", "fig6a", "fig6b", "fig6c", "fig6d",
			"giraphx", "ablation-partitions", "ablation-degenerate", "ablation-partitioner",
			"ablation-combining", "ablation-skip", "mis", "ablation-bap", "exclusion",
			"recovery", "flow", "partition", "sched",
		} {
			runOne(name)
			fmt.Fprintln(out)
		}
	} else {
		runOne(*exp)
	}

	if *jsonOut != "" {
		if err := bench.WriteJSONFile(*jsonOut, bench.NewReport(cfg, *label, jsonRows)); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(jsonRows), *jsonOut)
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "== %s ==\n", title)
}

// printPartition renders the locality rows with their quality report:
// the §5.3 class census (internal/local/remote/mixed), boundary and cut
// fractions, replication factor, and balance skew next to the traffic
// each (technique, partitioner) cell generated.
func printPartition(w io.Writer, rows []bench.Row) {
	fmt.Fprintf(w, "%-26s %-9s %9s %9s %7s %6s %6s %5s %12s %12s\n",
		"technique/partitioner", "alg", "boundary", "cut", "repl", "skew", "census", "", "data KB", "time")
	for _, r := range rows {
		q := r.Partition
		if q == nil {
			continue
		}
		fmt.Fprintf(w, "%-26s %-9s %9.3f %9.3f %7.2f %6.2f  i=%d l=%d r=%d m=%d %8d %12v\n",
			r.Technique, r.Algorithm, q.BoundaryFraction, q.CutFraction,
			q.ReplicationFactor, q.BalanceSkew,
			q.PInternal, q.LocalBoundary, q.RemoteBoundary, q.MixedBoundary,
			r.DataBytes/1024, r.Time.Round(time.Millisecond))
	}
}

// printSched renders the scheduler rows with the overlap evidence next
// to each cell's wall time: forks prefetched, steal events, and the time
// spent computing internal partitions under an outstanding prefetch.
func printSched(w io.Writer, rows []bench.Row) {
	fmt.Fprintf(w, "%-24s %-9s %6s %10s %10s %8s %14s %12s\n",
		"cell/scheduler", "alg", "steps", "prefetched", "steals", "forks", "overlap", "time")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(w, "%-24s %-9s %6d %10d %10d %8d %14v %12v\n",
			r.Technique, r.Algorithm, r.Supersteps,
			m.Counters[metrics.ForksPrefetched], m.Counters[metrics.Steals], r.Forks,
			time.Duration(m.Counters[metrics.OverlapComputeNs]).Round(time.Microsecond),
			r.Time.Round(time.Millisecond))
	}
}

func printSpectrum(w io.Writer, rows []bench.Row) {
	fmt.Fprintf(w, "%-20s %16s %16s %16s %14s %12s\n",
		"technique", "peak conc units", "execs/superstep", "ctrl msgs", "data batches", "time")
	for _, r := range rows {
		eps := "-"
		if r.Supersteps > 0 {
			eps = fmt.Sprintf("%.0f", float64(r.Executions)/float64(r.Supersteps))
		}
		fmt.Fprintf(w, "%-20s %16d %16s %16d %14d %12v\n",
			r.Technique, r.MaxConc, eps, r.CtrlMsgs, r.DataMsgs, r.Time.Round(time.Millisecond))
	}
}
