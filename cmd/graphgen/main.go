// Graphgen generates synthetic graphs to edge-list or binary files.
//
// Usage:
//
//	graphgen -kind powerlaw -n 100000 -deg 16 -exp 2.2 -seed 1 -o graph.bin
//	graphgen -kind dataset -name TW -scale 0.5 -o tw.txt
//	graphgen -kind rmat -scalebits 16 -deg 16 -o rmat.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
)

func main() {
	kind := flag.String("kind", "powerlaw", "powerlaw | rmat | er | ring | grid | dataset")
	n := flag.Int("n", 10000, "vertex count (powerlaw, er, ring)")
	deg := flag.Float64("deg", 16, "average degree (powerlaw, rmat, er)")
	exp := flag.Float64("exp", 2.2, "power-law exponent")
	maxDeg := flag.Int("maxdeg", 0, "max degree cap (powerlaw)")
	scaleBits := flag.Int("scalebits", 14, "log2 vertices (rmat)")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	name := flag.String("name", "OR", "dataset name (dataset kind): OR AR TW UK")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	undirected := flag.Bool("undirected", false, "symmetrize before writing")
	out := flag.String("o", "", "output path (.bin/.gob binary, else text edge list)")
	flag.Parse()

	if *out == "" {
		log.Fatal("missing -o output path")
	}

	var g *graph.Graph
	switch *kind {
	case "powerlaw":
		g = generate.PowerLaw(generate.PowerLawConfig{
			N: *n, AvgDegree: *deg, Exponent: *exp, MaxDegree: *maxDeg, Seed: *seed,
		})
	case "rmat":
		g = generate.RMAT(generate.RMATConfig{Scale: *scaleBits, EdgeFactor: *deg, Seed: *seed})
	case "er":
		g = generate.ErdosRenyi(*n, int(*deg*float64(*n)), *seed)
	case "ring":
		g = generate.Ring(*n)
	case "grid":
		g = generate.Grid(*rows, *cols)
	case "dataset":
		d, err := generate.ByName(*name)
		if err != nil {
			log.Fatal(err)
		}
		g = d.Build(*scale)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	if *undirected {
		b := graph.NewBuilder(g.NumVertices())
		for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
			for _, v := range g.OutNeighbors(u) {
				b.AddEdge(u, v)
			}
		}
		g = b.BuildUndirected()
	}

	if err := graph.SaveFile(*out, g); err != nil {
		log.Fatal(err)
	}
	s := graph.Summarize(g)
	fmt.Fprintf(os.Stderr, "wrote %s: %d vertices, %d edges, max degree %d, avg degree %.1f\n",
		*out, s.Vertices, s.Edges, s.MaxDegree, s.AvgDegree)
}
