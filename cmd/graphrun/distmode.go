package main

// Multi-process mode: `graphrun -listen` runs the coordinator,
// `graphrun -join` runs one worker process. A real run over TCP loopback:
//
//	graphrun -listen 127.0.0.1:7400 -workers-remote 2 \
//	    -alg sssp -graph g.bin -o dist.txt &
//	graphrun -join 127.0.0.1:7400 &
//	graphrun -join 127.0.0.1:7400
//
// The coordinator prints its bound address on startup ("coordinator:
// listening on ..."), so -listen 127.0.0.1:0 works for scripting. Every
// process must see the same -graph file (or the same -family/-n/-seed),
// from which it deterministically rebuilds the graph and partition map.

import (
	"fmt"
	"net"
	"os"
	"time"

	"serialgraph/internal/dist"
	"serialgraph/internal/graph"

	"serialgraph/internal/algorithms"
)

// runWorkerProcess joins the coordinator at addr and runs to completion.
func runWorkerProcess(addr string) error {
	fmt.Printf("worker: joining coordinator at %s\n", addr)
	start := time.Now()
	if err := dist.Work(addr); err != nil {
		return err
	}
	fmt.Printf("worker: done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

type coordinatorConfig struct {
	listen        string
	alg           string
	graphPath     string
	family        string
	familyN       int
	workers       int
	ppw           int
	maxSupersteps int
	seed          uint64
	source        int
	eps           float64
	out           string
	msgMem        int64
	partitioner   string
}

// runCoordinatorProcess drives one distributed run and prints the same
// summary a single-process run would.
func runCoordinatorProcess(cfg coordinatorConfig) error {
	if cfg.workers < 1 {
		return fmt.Errorf("coordinator mode needs -workers-remote >= 1")
	}
	if cfg.graphPath == "" && cfg.family == "" {
		return fmt.Errorf("coordinator mode needs -graph or -family/-n (workers rebuild the graph themselves)")
	}
	if cfg.ppw == 0 {
		cfg.ppw = cfg.workers
	}
	if cfg.maxSupersteps == 0 {
		cfg.maxSupersteps = 100000
	}
	job := dist.Job{
		Alg:             cfg.alg,
		GraphPath:       cfg.graphPath,
		Family:          cfg.family,
		N:               int32(cfg.familyN),
		Workers:         int32(cfg.workers),
		PartsPerWorker:  int32(cfg.ppw),
		MaxSupersteps:   int32(cfg.maxSupersteps),
		Seed:            cfg.seed,
		Source:          int32(cfg.source),
		Eps:             cfg.eps,
		MsgMemoryBudget: cfg.msgMem,
		Partitioner:     cfg.partitioner,
	}
	switch cfg.alg {
	case "coloring", "wcc":
		// Same symmetrization the single-process path applies.
		job.Undirected = true
	}

	g, err := dist.BuildGraph(job)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("coordinator: listening on %s for %d workers\n", ln.Addr(), cfg.workers)
	fmt.Printf("graph: %d vertices, %d edges; alg %s, %d workers x %d partitions\n",
		g.NumVertices(), g.NumEdges(), cfg.alg, cfg.workers, cfg.ppw)

	start := time.Now()
	var res dist.Result
	var values []float64
	var intValues []int32
	switch cfg.alg {
	case "sssp":
		values, res, err = dist.Coordinate(ln, job, algorithms.SSSP(graph.VertexID(cfg.source)), g.NumVertices())
	case "pagerank":
		values, res, err = dist.Coordinate(ln, job, algorithms.PageRank(cfg.eps), g.NumVertices())
	case "pagerank-agg":
		values, res, err = dist.Coordinate(ln, job, algorithms.PageRankAggregated(cfg.eps), g.NumVertices())
	case "coloring":
		intValues, res, err = dist.Coordinate(ln, job, algorithms.Coloring(), g.NumVertices())
	case "wcc":
		intValues, res, err = dist.Coordinate(ln, job, algorithms.WCC(), g.NumVertices())
	default:
		return fmt.Errorf("algorithm %q is not available in multi-process mode (want sssp, pagerank, pagerank-agg, coloring, or wcc)", cfg.alg)
	}
	if err != nil {
		return err
	}

	if cfg.alg == "coloring" {
		if cerr := algorithms.ValidateColoring(g, intValues); cerr != nil {
			fmt.Printf("coloring INVALID: %v\n", cerr)
		} else {
			fmt.Printf("coloring proper, %d colors\n", countDistinct(intValues))
		}
	}
	fmt.Printf("converged=%v supersteps=%d executions=%d time=%v\n",
		res.Converged, res.Supersteps, res.Executions, time.Since(start).Round(time.Millisecond))
	fmt.Printf("network: %d data batches / %d KB data over TCP; wire bytes=%d\n",
		res.DataBatches, res.DataBytes/1024, res.WireBytes)

	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		if intValues != nil {
			for _, v := range intValues {
				fmt.Fprintln(f, v)
			}
		} else {
			for _, v := range values {
				fmt.Fprintln(f, v)
			}
		}
		fmt.Printf("wrote values to %s\n", cfg.out)
	}
	return nil
}
