// Graphrun executes one algorithm over a graph file (or generated dataset)
// with a chosen engine and synchronization technique, printing results and
// run statistics.
//
// Usage:
//
//	graphrun -alg coloring -graph g.bin -workers 16 -technique partition-locking
//	graphrun -alg pagerank -dataset TW -scale 0.5 -technique dual-token -eps 0.1
//	graphrun -alg sssp -dataset OR -technique vertex-locking   (GAS engine)
//
// Observability (see README "Profiling a run"):
//
//	-metrics-out m.json   write the run's metrics snapshot (counters,
//	                      phase timers, histograms) as JSON
//	-trace-out t.csv      write a per-superstep CSV (wall time, messages,
//	                      phase breakdown); implies detailed stats
//	-pprof localhost:6060 serve net/http/pprof for the duration of the run
//	-cpuprofile cpu.out   write a CPU profile covering the run
//	-memprofile mem.out   write a heap profile taken after the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"serialgraph"
)

func main() {
	alg := flag.String("alg", "coloring", "coloring | pagerank | sssp | wcc | mis | lpa | kcore | triangles")
	graphPath := flag.String("graph", "", "graph file (.bin/.gob or edge list)")
	dataset := flag.String("dataset", "", "generate a dataset analog instead: OR AR TW UK")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	workers := flag.Int("workers", 8, "simulated cluster size")
	ppw := flag.Int("ppw", 0, "partitions per worker (default = workers)")
	techniqueName := flag.String("technique", "partition-locking", "none | single-token | dual-token | partition-locking | vertex-locking")
	modelName := flag.String("model", "async", "bsp | async")
	eps := flag.Float64("eps", 0.01, "PageRank convergence threshold")
	source := flag.Int("source", 0, "SSSP source vertex")
	latency := flag.Duration("latency", 50*time.Microsecond, "simulated network latency")
	transportName := flag.String("transport", "inproc", "wire backend for single-process runs: inproc | tcp")
	schedName := flag.String("sched", "static", "per-worker partition scheduler: static | overlap (fork prefetch + work stealing)")
	listenAddr := flag.String("listen", "", "coordinator mode: accept worker processes on this address (e.g. 127.0.0.1:0)")
	joinAddr := flag.String("join", "", "worker mode: join a coordinator at this address, run, exit")
	workersRemote := flag.Int("workers-remote", 0, "coordinator mode: worker processes to wait for (with -listen)")
	family := flag.String("family", "", "multi-process runs: generate this graph family instead of loading -graph: powerlaw | rmat | erdos | ring | grid | complete")
	familyN := flag.Int("n", 0, "generated family size (with -family)")
	seed := flag.Uint64("seed", 1, "partitioning (and -family generation) seed")
	partitionerName := flag.String("partitioner", "hash", "vertex placement: hash | range | ldg | fennel")
	relabel := flag.Bool("relabel", false, "degree-ordered vertex relabeling before partitioning (hub clustering; outputs stay in original IDs)")
	maxSupersteps := flag.Int("max-supersteps", 0, "bound non-converging runs (0 = library default)")
	msgMem := flag.Int64("msg-mem", 0, "message-plane memory budget in bytes: sizes the credit windows and, under BSP, caps buffered inbound messages by spilling overflow to disk in arrival order (0 = unbounded)")
	check := flag.Bool("check", false, "verify serializability (records history; slower)")
	out := flag.String("o", "", "write final vertex values to this file (text, one per line)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint after every k-th superstep (0 = off)")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint directory (required with -checkpoint-every)")
	recoveryName := flag.String("recovery", "full", "crash recovery mode: full (whole-cluster rollback) | confined (crashed partitions only)")
	watchdogTimeout := flag.Duration("watchdog-timeout", 0, "liveness watchdog: declare a superstep stalled and recover if its barrier is not reached within this deadline (0 = off)")
	crashAt := flag.Int("crash-at", -1, "inject a worker crash at this superstep (-1 = off)")
	crashWorker := flag.Int("crash-worker", 0, "worker to crash (with -crash-at or -crash-after-msgs)")
	crashAfterMsgs := flag.Int64("crash-after-msgs", 0, "inject a crash after this many delivered data messages (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for fault-injection randomness")
	dropRate := flag.Float64("drop-rate", 0, "probability of dropping each data message")
	dupRate := flag.Float64("dup-rate", 0, "probability of duplicating each data message")
	stragglerRate := flag.Float64("straggler-rate", 0, "probability of delaying each data message")
	stragglerDelay := flag.Duration("straggler-delay", 0, "extra latency for straggler messages")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot to this file as JSON")
	traceOut := flag.String("trace-out", "", "write a per-superstep phase/message CSV to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address during the run (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	// Multi-process modes short-circuit the single-process path entirely:
	// a worker joins, computes, and exits; a coordinator drives the run
	// and reports like a normal graphrun invocation.
	if *joinAddr != "" {
		if err := runWorkerProcess(*joinAddr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *listenAddr != "" {
		cfg := coordinatorConfig{
			listen: *listenAddr, alg: *alg, graphPath: *graphPath,
			family: *family, familyN: *familyN, workers: *workersRemote,
			ppw: *ppw, maxSupersteps: *maxSupersteps, seed: *seed,
			source: *source, eps: *eps, out: *out, msgMem: *msgMem,
			partitioner: *partitionerName,
		}
		if err := runCoordinatorProcess(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: listening on http://%s/debug/pprof/", *pprofAddr)
			log.Println(http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var g *serialgraph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = serialgraph.LoadGraph(*graphPath)
	case *dataset != "":
		g, err = serialgraph.Dataset(*dataset, *scale)
	default:
		err = fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		log.Fatal(err)
	}

	var technique serialgraph.Technique
	switch *techniqueName {
	case "none":
		technique = serialgraph.NoSerializability
	case "single-token":
		technique = serialgraph.SingleToken
	case "dual-token":
		technique = serialgraph.DualToken
	case "partition-locking":
		technique = serialgraph.PartitionLocking
	case "vertex-locking":
		technique = serialgraph.VertexLocking
	default:
		log.Fatalf("unknown technique %q", *techniqueName)
	}
	mdl := serialgraph.Async
	if *modelName == "bsp" {
		mdl = serialgraph.BSP
	}

	var recovery serialgraph.RecoveryMode
	switch *recoveryName {
	case "full":
		recovery = serialgraph.RecoverFull
	case "confined":
		recovery = serialgraph.RecoverConfined
	default:
		log.Fatalf("unknown recovery mode %q (want full or confined)", *recoveryName)
	}

	var transport serialgraph.Transport
	switch *transportName {
	case "inproc":
		transport = serialgraph.InProc
	case "tcp":
		transport = serialgraph.TCPLoopback
	default:
		log.Fatalf("unknown transport %q (want inproc or tcp)", *transportName)
	}

	var sched serialgraph.Scheduler
	switch *schedName {
	case "static":
		sched = serialgraph.StaticScheduler
	case "overlap":
		sched = serialgraph.OverlapScheduler
	default:
		log.Fatalf("unknown scheduler %q (want static or overlap)", *schedName)
	}

	opt := serialgraph.Options{
		Workers: *workers, PartitionsPerWorker: *ppw, Model: mdl,
		Technique: technique, Transport: transport, Scheduler: sched,
		NetworkLatency: *latency,
		Seed:           *seed, MaxSupersteps: *maxSupersteps, Partitioner: *partitionerName,
		CheckpointEvery: *checkpointEvery, CheckpointDir: *checkpointDir,
		Recovery: recovery, WatchdogTimeout: *watchdogTimeout,
		DetailedStats: *traceOut != "", MsgMemoryBudget: *msgMem,
	}

	// Assemble the fault plan, if any fault flag is set.
	plan := serialgraph.FaultPlan{
		DropRate: *dropRate, DuplicateRate: *dupRate,
		StragglerRate: *stragglerRate, StragglerDelay: *stragglerDelay,
		Seed: *faultSeed,
	}
	if *crashAt >= 0 {
		plan.Crashes = append(plan.Crashes, serialgraph.CrashSpec{
			Worker: *crashWorker, AtSuperstep: *crashAt})
	} else if *crashAfterMsgs > 0 {
		plan.Crashes = append(plan.Crashes, serialgraph.CrashSpec{
			Worker: *crashWorker, AfterMessages: *crashAfterMsgs})
	}
	faulty := len(plan.Crashes) > 0 || plan.DropRate > 0 || plan.DuplicateRate > 0 || plan.StragglerRate > 0
	if faulty {
		if technique == serialgraph.VertexLocking {
			log.Fatal("fault injection is not supported on the GAS engine (-technique vertex-locking)")
		}
		opt.Fault = &plan
	}

	// Undirected algorithms want symmetrized inputs.
	switch *alg {
	case "coloring", "wcc", "mis", "lpa", "kcore", "triangles":
		g = serialgraph.Undirected(g)
	}

	// Degree-ordered relabeling: run on the hub-clustered permutation,
	// map the SSSP source in and the result slices back out, so printed
	// and written values stay in the original vertex IDs.
	src := serialgraph.VertexID(*source)
	var rel *serialgraph.Relabeling
	if *relabel {
		g, rel = serialgraph.DegreeRelabel(g)
		src = rel.NewID(src)
	}
	fmt.Printf("graph: %d vertices, %d edges; %d workers, %s, %s, %s partitioning\n",
		g.NumVertices(), g.NumEdges(), *workers, mdl.String(), technique, *partitionerName)

	var res serialgraph.Result
	var violations []serialgraph.Violation
	var values []float64
	var intValues []int32

	runPregel := func() {
		switch *alg {
		case "coloring":
			if *check {
				intValues, res, violations, err = serialgraph.RunChecked(g, serialgraph.Coloring(), opt)
			} else {
				intValues, res, err = serialgraph.Run(g, serialgraph.Coloring(), opt)
			}
			if err == nil {
				if cerr := serialgraph.ValidateColoring(g, intValues); cerr != nil {
					fmt.Printf("coloring INVALID: %v\n", cerr)
				} else {
					fmt.Printf("coloring proper, %d colors\n", countDistinct(intValues))
				}
			}
		case "wcc":
			intValues, res, err = serialgraph.Run(g, serialgraph.WCC(), opt)
		case "pagerank":
			values, res, err = serialgraph.Run(g, serialgraph.PageRank(*eps), opt)
		case "sssp":
			values, res, err = serialgraph.Run(g, serialgraph.SSSP(src), opt)
		case "mis":
			intValues, res, err = serialgraph.Run(g, serialgraph.MISGreedy(), opt)
			if err == nil {
				if merr := serialgraph.ValidateMIS(g, intValues); merr != nil {
					fmt.Printf("MIS INVALID: %v\n", merr)
				} else {
					fmt.Println("MIS valid (independent and maximal)")
				}
			}
		case "lpa":
			intValues, res, err = serialgraph.Run(g, serialgraph.LabelPropagation(), opt)
			if err == nil {
				fmt.Printf("communities: %d\n", countDistinct(intValues))
			}
		case "kcore":
			var kvals []serialgraph.KCoreValue
			kvals, res, err = serialgraph.Run(g, serialgraph.KCore(), opt)
			if err == nil {
				intValues = serialgraph.KCoreEstimates(kvals)
				maxCore := int32(0)
				for _, c := range intValues {
					if c > maxCore {
						maxCore = c
					}
				}
				fmt.Printf("degeneracy (max core): %d\n", maxCore)
			}
		case "triangles":
			opt.Model = serialgraph.BSP
			opt.Technique = serialgraph.NoSerializability
			intValues, res, err = serialgraph.Run(g, serialgraph.TriangleCount(), opt)
			if err == nil {
				var total int64
				for _, c := range intValues {
					total += int64(c)
				}
				fmt.Printf("triangles: %d\n", total)
			}
		default:
			err = fmt.Errorf("unknown algorithm %q", *alg)
		}
	}
	runGAS := func() {
		switch *alg {
		case "coloring":
			intValues, res, err = serialgraph.RunGAS(g, serialgraph.ColoringGAS(), opt)
		case "wcc":
			intValues, res, err = serialgraph.RunGAS(g, serialgraph.WCCGAS(), opt)
		case "pagerank":
			values, res, err = serialgraph.RunGAS(g, serialgraph.PageRankGAS(g, *eps), opt)
		case "sssp":
			values, res, err = serialgraph.RunGAS(g, serialgraph.SSSPGAS(src), opt)
		default:
			err = fmt.Errorf("unknown algorithm %q", *alg)
		}
	}
	if technique == serialgraph.VertexLocking {
		runGAS()
	} else {
		runPregel()
	}
	if err != nil {
		log.Fatal(err)
	}
	if rel != nil {
		// Back to original vertex IDs before anything is written out.
		if intValues != nil {
			intValues = serialgraph.Unpermute(rel, intValues)
		}
		if values != nil {
			values = serialgraph.Unpermute(rel, values)
		}
	}

	fmt.Printf("converged=%v supersteps=%d executions=%d time=%v\n",
		res.Converged, res.Supersteps, res.Executions, res.ComputeTime.Round(time.Millisecond))
	q := res.Partition
	fmt.Printf("partition: cut=%.3f boundary=%.3f (pint=%d local=%d remote=%d mixed=%d) repl=%.2f skew=%.2f\n",
		q.CutFraction, q.BoundaryFraction,
		q.PInternal, q.LocalBoundary, q.RemoteBoundary, q.MixedBoundary,
		q.ReplicationFactor, q.BalanceSkew)
	fmt.Printf("network: %d data batches / %d KB data, %d control msgs; forks=%d tokens=%d\n",
		res.Net.DataMessages, res.Net.DataBytes/1024, res.Net.ControlMessages,
		res.ForkSends, res.TokenSends)
	if res.Net.WireBytesSent > 0 {
		fmt.Printf("wire: %d bytes sent / %d bytes received over TCP\n",
			res.Net.WireBytesSent, res.Net.WireBytesReceived)
	}
	if faulty || res.WatchdogStalls > 0 {
		fmt.Printf("recovery: rollbacks=%d (confined=%d) recomputed-supersteps=%d recomputed-partition-supersteps=%d wasted-msgs=%d dropped=%d watchdog-stalls=%d\n",
			res.Rollbacks, res.ConfinedRecoveries, res.RecomputedSupersteps,
			res.RecomputedPartitionSupersteps, res.WastedMessages,
			res.Net.DroppedMessages, res.WatchdogStalls)
	}
	if *check {
		if len(violations) == 0 {
			fmt.Println("serializability check: clean (C1, C2, 1SR)")
		} else {
			fmt.Printf("serializability check: %d violations, first: %v\n", len(violations), violations[0])
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if intValues != nil {
			for _, v := range intValues {
				fmt.Fprintln(f, v)
			}
		} else {
			for _, v := range values {
				fmt.Fprintln(f, v)
			}
		}
		fmt.Printf("wrote values to %s\n", *out)
	}

	if *metricsOut != "" {
		if technique == serialgraph.VertexLocking {
			log.Println("note: the GAS engine is not metrics-instrumented; the snapshot will be zeros")
		}
		buf, err := json.MarshalIndent(res.Metrics, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metricsOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d-superstep trace to %s\n", len(res.SuperstepStats), *traceOut)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote heap profile to %s\n", *memProfile)
	}
}

// writeTrace renders the per-superstep stats as CSV, one row per
// superstep, with the phase breakdown in nanoseconds.
func writeTrace(path string, res serialgraph.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "superstep,duration_ns,executions,data_msgs,ctrl_msgs,compute_ns,local_delivery_ns,remote_flush_ns,barrier_wait_ns")
	for i, st := range res.SuperstepStats {
		fmt.Fprintf(f, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			i, st.Duration.Nanoseconds(), st.Executions, st.DataMsgs, st.CtrlMsgs,
			st.ComputeNs, st.LocalDeliveryNs, st.RemoteFlushNs, st.BarrierWaitNs)
	}
	return f.Close()
}

func countDistinct(vals []int32) int {
	seen := map[int32]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	return len(seen)
}
