package main

// Acceptance: a graphrun coordinator plus two real worker OS processes
// complete SSSP, PageRank, and coloring over TCP loopback with results
// identical to an in-process engine run on the same graph, worker
// count, partitioning, and seed. This is the process-level counterpart
// of internal/dist's goroutine-based conformance suite: here the bytes
// cross actual process boundaries and the only shared state is the
// graph file.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/dist"
	"serialgraph/internal/engine"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

func acceptRequireLoopback(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	ln.Close()
}

// buildGraphrun compiles the binary once per test run.
func buildGraphrun(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "graphrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var listeningRe = regexp.MustCompile(`listening on (\S+) for`)

// startCoordinator launches the coordinator process and blocks until it
// prints its bound address.
func startCoordinator(t *testing.T, ctx context.Context, bin string, args []string) (*exec.Cmd, string, chan error) {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if m := listeningRe.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		t.Fatalf("coordinator never reported its address (scan err: %v)", sc.Err())
	}
	done := make(chan error, 1)
	go func() {
		// Drain the rest of stdout so the process never blocks on a full
		// pipe, then reap it.
		for sc.Scan() {
		}
		done <- cmd.Wait()
	}()
	return cmd, addr, done
}

func TestGraphrunMultiProcess(t *testing.T) {
	acceptRequireLoopback(t)
	if testing.Short() {
		t.Skip("builds and spawns real processes; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildGraphrun(t, dir)

	// A fixed graph, written once and shared by path — the one thing the
	// processes may have in common.
	g := generate.PowerLaw(generate.PowerLawConfig{N: 120, AvgDegree: 5, Exponent: 2.2, Seed: 97})
	graphPath := filepath.Join(dir, "g.bin")
	if err := graph.SaveFile(graphPath, g); err != nil {
		t.Fatalf("save graph: %v", err)
	}

	const workers, seed = 2, 7
	// Vote-halting PageRank and coloring do not converge under BSP (the
	// matrix test documents both), so those runs are bounded and the
	// exact bounded state compared; SSSP converges on its own.
	cases := []struct {
		alg           string
		maxSupersteps int // 0 = default
		extra         []string
	}{
		{alg: "sssp", extra: []string{"-source", "0"}},
		{alg: "pagerank", maxSupersteps: 50, extra: []string{"-eps", "0.01"}},
		{alg: "coloring", maxSupersteps: 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.alg, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			outPath := filepath.Join(dir, tc.alg+".txt")
			args := []string{
				"-listen", "127.0.0.1:0", "-workers-remote", fmt.Sprint(workers),
				"-alg", tc.alg, "-graph", graphPath, "-seed", fmt.Sprint(seed),
				"-o", outPath,
			}
			if tc.maxSupersteps > 0 {
				args = append(args, "-max-supersteps", fmt.Sprint(tc.maxSupersteps))
			}
			args = append(args, tc.extra...)
			_, addr, coordDone := startCoordinator(t, ctx, bin, args)

			workerDone := make(chan error, workers)
			for i := 0; i < workers; i++ {
				w := exec.CommandContext(ctx, bin, "-join", addr)
				w.Stderr = os.Stderr
				if err := w.Start(); err != nil {
					t.Fatalf("start worker: %v", err)
				}
				go func() { workerDone <- w.Wait() }()
			}
			for i := 0; i < workers; i++ {
				if err := <-workerDone; err != nil {
					t.Fatalf("worker process: %v", err)
				}
			}
			if err := <-coordDone; err != nil {
				t.Fatalf("coordinator process: %v", err)
			}

			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatalf("read values: %v", err)
			}
			want := inprocLines(t, tc.alg, graphPath, tc.maxSupersteps, seed)
			if string(got) != want {
				t.Fatalf("%s: multi-process values differ from in-process run\n got %d bytes, want %d bytes",
					tc.alg, len(got), len(want))
			}
		})
	}
}

// inprocLines runs the same job on the in-process engine (same BSP mode,
// worker count, partitioning, seed) and renders the values exactly as
// the coordinator's -o writer does.
func inprocLines(t *testing.T, alg, graphPath string, maxSupersteps int, seed uint64) string {
	t.Helper()
	job := dist.Job{GraphPath: graphPath, Undirected: alg == "coloring"}
	g, err := dist.BuildGraph(job)
	if err != nil {
		t.Fatalf("rebuild graph: %v", err)
	}
	if maxSupersteps == 0 {
		maxSupersteps = 100000
	}
	cfg := engine.Config{
		Workers: 2, PartitionsPerWorker: 2, Mode: engine.BSP,
		Sync: engine.SyncNone, Seed: seed, MaxSupersteps: maxSupersteps,
	}
	var sb strings.Builder
	switch alg {
	case "sssp":
		render(t, &sb, g, algorithms.SSSP(0), cfg)
	case "pagerank":
		render(t, &sb, g, algorithms.PageRank(0.01), cfg)
	case "coloring":
		render(t, &sb, g, algorithms.Coloring(), cfg)
	default:
		t.Fatalf("no in-process reference for %q", alg)
	}
	return sb.String()
}

func render[V, M any](t *testing.T, sb *strings.Builder, g *graph.Graph, prog model.Program[V, M], cfg engine.Config) {
	t.Helper()
	vals, _, _, err := engine.Run(g, prog, cfg)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	for _, v := range vals {
		fmt.Fprintln(sb, v)
	}
}
