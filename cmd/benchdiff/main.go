// Command benchdiff compares two benchmark trajectory files
// (BENCH_NNNN.json, written by benchtab -json / `make bench-json`) row by
// row, printing wall-clock and per-phase deltas. Rows are matched on
// (experiment, algorithm, dataset, workers, technique); rows present on
// only one side are reported rather than dropped.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -old BENCH_0003.json -new BENCH_0004.json
//	benchdiff -fail-over 30 BASELINE.json CANDIDATE.json
//
// With -fail-over, benchdiff exits non-zero if any matched row's wall
// clock or per-phase time regressed by more than the given percentage
// (baselines under 1ms are ignored as noise) — the CI bench-smoke gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"serialgraph/internal/bench"
)

func main() {
	oldPath := flag.String("old", "", "baseline report (BENCH_NNNN.json)")
	newPath := flag.String("new", "", "candidate report (BENCH_NNNN.json)")
	failOver := flag.Float64("fail-over", 0,
		"exit non-zero if any wall or phase time regresses by more than this percentage (0 = report only)")
	flag.Parse()
	args := flag.Args()
	if *oldPath == "" && len(args) > 0 {
		*oldPath, args = args[0], args[1:]
	}
	if *newPath == "" && len(args) > 0 {
		*newPath, args = args[0], args[1:]
	}
	if *oldPath == "" || *newPath == "" || len(args) > 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	if err := bench.DiffFilesLimit(os.Stdout, *oldPath, *newPath, *failOver); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
