// Command benchdiff compares two benchmark trajectory files
// (BENCH_NNNN.json, written by benchtab -json / `make bench-json`) row by
// row, printing wall-clock and per-phase deltas. Rows are matched on
// (experiment, algorithm, dataset, workers, technique); rows present on
// only one side are reported rather than dropped.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -old BENCH_0003.json -new BENCH_0004.json
package main

import (
	"flag"
	"fmt"
	"os"

	"serialgraph/internal/bench"
)

func main() {
	oldPath := flag.String("old", "", "baseline report (BENCH_NNNN.json)")
	newPath := flag.String("new", "", "candidate report (BENCH_NNNN.json)")
	flag.Parse()
	args := flag.Args()
	if *oldPath == "" && len(args) > 0 {
		*oldPath, args = args[0], args[1:]
	}
	if *newPath == "" && len(args) > 0 {
		*newPath, args = args[0], args[1:]
	}
	if *oldPath == "" || *newPath == "" || len(args) > 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	if err := bench.DiffFiles(os.Stdout, *oldPath, *newPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
