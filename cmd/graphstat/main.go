// Graphstat prints structural statistics of a graph file or generated
// dataset: size, degree distribution, component structure, triangle count,
// and core numbers — the quantities that drive synchronization technique
// performance.
//
// Usage:
//
//	graphstat -graph g.bin
//	graphstat -dataset TW -scale 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"serialgraph"
	"serialgraph/internal/algorithms"
	"serialgraph/internal/graph"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (.bin/.gob or edge list)")
	dataset := flag.String("dataset", "", "generate a dataset analog: OR AR TW UK")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	triangles := flag.Bool("triangles", false, "also count triangles (O(E^1.5))")
	cores := flag.Bool("cores", false, "also compute the k-core decomposition")
	flag.Parse()

	var g *serialgraph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = serialgraph.LoadGraph(*graphPath)
	case *dataset != "":
		g, err = serialgraph.Dataset(*dataset, *scale)
	default:
		err = fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		log.Fatal(err)
	}

	s := graph.Summarize(g)
	fmt.Printf("vertices:    %d\n", s.Vertices)
	fmt.Printf("edges:       %d (directed)\n", s.Edges)
	fmt.Printf("avg degree:  %.2f\n", s.AvgDegree)
	fmt.Printf("max degree:  %d\n", s.MaxDegree)

	// Degree distribution percentiles (out-degree).
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.OutDegree(serialgraph.VertexID(v))
	}
	sort.Ints(degs)
	pct := func(p float64) int { return degs[int(p*float64(len(degs)-1))] }
	fmt.Printf("out-degree percentiles: p50=%d p90=%d p99=%d p99.9=%d\n",
		pct(0.50), pct(0.90), pct(0.99), pct(0.999))

	// Weak components via the union-find reference.
	comp := algorithms.Components(g)
	sizes := map[int32]int{}
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("weak components: %d (largest %d vertices, %.1f%%)\n",
		len(sizes), largest, 100*float64(largest)/float64(s.Vertices))

	u := serialgraph.Undirected(g)
	fmt.Printf("undirected edges: %d\n", u.NumEdges()/2)

	if *triangles {
		fmt.Printf("triangles: %d\n", algorithms.CountTrianglesReference(u))
	}
	if *cores {
		core := algorithms.KCoreReference(u)
		maxCore := int32(0)
		for _, c := range core {
			if c > maxCore {
				maxCore = c
			}
		}
		fmt.Printf("degeneracy (max core): %d\n", maxCore)
	}
}
