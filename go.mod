module serialgraph

go 1.24
