package serialgraph_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"serialgraph"
	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
)

// TestCrossEngineEquivalence checks that deterministic algorithms (SSSP,
// WCC) produce identical results under every engine/technique combination
// on random graphs: BSP, plain async, all three serializable techniques on
// the AP engine, and both GAS modes.
func TestCrossEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(300)
		g := generate.PowerLaw(generate.PowerLawConfig{
			N: n, AvgDegree: 3 + float64(r.Intn(5)), Exponent: 2.0 + r.Float64(), Seed: seed,
		})
		workers := 1 + r.Intn(6)

		wantDist := algorithms.ShortestPaths(g, 0)

		pregelCases := []serialgraph.Options{
			{Workers: workers, Model: serialgraph.BSP},
			{Workers: workers, Model: serialgraph.Async},
			{Workers: workers, Model: serialgraph.Async, Technique: serialgraph.SingleToken},
			{Workers: workers, Model: serialgraph.Async, Technique: serialgraph.DualToken},
			{Workers: workers, Model: serialgraph.Async, Technique: serialgraph.PartitionLocking},
		}
		for _, opt := range pregelCases {
			opt.Seed = uint64(seed)
			dist, res, err := serialgraph.Run(g, serialgraph.SSSP(0), opt)
			if err != nil || !res.Converged {
				t.Logf("seed %d opt %+v: err=%v converged=%v", seed, opt, err, res.Converged)
				return false
			}
			for v := range wantDist {
				if dist[v] != wantDist[v] {
					t.Logf("seed %d opt %+v: dist[%d]=%v want %v", seed, opt, v, dist[v], wantDist[v])
					return false
				}
			}
		}
		for _, tech := range []serialgraph.Technique{serialgraph.VertexLocking, serialgraph.NoSerializability} {
			dist, res, err := serialgraph.RunGAS(g, serialgraph.SSSPGAS(0), serialgraph.Options{
				Workers: workers, Technique: tech, Seed: uint64(seed),
			})
			if err != nil || !res.Converged {
				t.Logf("seed %d GAS %v: err=%v converged=%v", seed, tech, err, res.Converged)
				return false
			}
			for v := range wantDist {
				if dist[v] != wantDist[v] {
					t.Logf("seed %d GAS %v: dist[%d]=%v want %v", seed, tech, v, dist[v], wantDist[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestWCCEquivalenceUnderLatency checks WCC agreement with the union-find
// reference across engines while the network has latency and finite
// bandwidth — racing deliveries against computation.
func TestWCCEquivalenceUnderLatency(t *testing.T) {
	g := serialgraph.Undirected(generate.PowerLaw(generate.PowerLawConfig{
		N: 400, AvgDegree: 4, Exponent: 2.2, Seed: 71,
	}))
	want := algorithms.Components(g)
	opts := []serialgraph.Options{
		{Workers: 4, Model: serialgraph.BSP},
		{Workers: 4, Model: serialgraph.Async, Technique: serialgraph.PartitionLocking},
		{Workers: 4, Model: serialgraph.Async, Technique: serialgraph.DualToken},
	}
	for _, opt := range opts {
		opt.NetworkLatency = 200 * time.Microsecond
		opt.NetworkBandwidth = 1 << 26
		opt.Seed = 3
		labels, res, err := serialgraph.Run(g, serialgraph.WCC(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", opt.Technique)
		}
		for v := range want {
			if labels[v] != want[v] {
				t.Fatalf("%v: label[%d]=%d want %d", opt.Technique, v, labels[v], want[v])
			}
		}
	}
	labels, res, err := serialgraph.RunGAS(g, serialgraph.WCCGAS(), serialgraph.Options{
		Workers: 4, Technique: serialgraph.VertexLocking,
		NetworkLatency: 200 * time.Microsecond, Seed: 3,
	})
	if err != nil || !res.Converged {
		t.Fatalf("GAS: err=%v converged=%v", err, res.Converged)
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("GAS: label[%d]=%d want %d", v, labels[v], want[v])
		}
	}
}

// TestColoringQualityAcrossTechniques verifies that serializable greedy
// coloring stays near the serial greedy color count for every technique.
func TestColoringQualityAcrossTechniques(t *testing.T) {
	g := serialgraph.Undirected(generate.PowerLaw(generate.PowerLawConfig{
		N: 1000, AvgDegree: 8, Exponent: 2.1, Seed: 73,
	}))
	// Serial greedy reference (vertex order 0..n-1).
	serialColors := make([]int32, g.NumVertices())
	for i := range serialColors {
		serialColors[i] = -1
	}
	for v := 0; v < g.NumVertices(); v++ {
		used := map[int32]bool{}
		for _, nb := range g.OutNeighbors(serialgraph.VertexID(v)) {
			used[serialColors[nb]] = true
		}
		for c := int32(0); ; c++ {
			if !used[c] {
				serialColors[v] = c
				break
			}
		}
	}
	refCount := int32(0)
	for _, c := range serialColors {
		if c > refCount {
			refCount = c
		}
	}

	for _, tech := range []serialgraph.Technique{
		serialgraph.SingleToken, serialgraph.DualToken, serialgraph.PartitionLocking,
	} {
		colors, res, err := serialgraph.Run(g, serialgraph.Coloring(), serialgraph.Options{
			Workers: 4, Model: serialgraph.Async, Technique: tech, Seed: 5,
		})
		if err != nil || !res.Converged {
			t.Fatalf("%v: err=%v converged=%v", tech, err, res.Converged)
		}
		if err := serialgraph.ValidateColoring(g, colors); err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		var maxC int32
		for _, c := range colors {
			if c > maxC {
				maxC = c
			}
		}
		// Any serializable execution is equivalent to SOME serial greedy
		// order; color counts may differ but should stay in the same
		// ballpark (within 2x of the ID-order serial run).
		if maxC > 2*refCount+2 {
			t.Errorf("%v used %d colors vs serial reference %d", tech, maxC+1, refCount+1)
		}
	}
}
