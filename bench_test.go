// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7). Each benchmark runs one experiment end to end and reports the
// headline comparison as custom metrics (ns per technique and the
// partition-based locking speedup). Full tables print under -v; the
// cmd/benchtab tool prints them unconditionally and at full scale.
//
// Scale and cluster sizes are reduced by default so `go test -bench=.`
// finishes in minutes; set SERIALGRAPH_SCALE and SERIALGRAPH_WORKERS to
// override (e.g. SERIALGRAPH_SCALE=1 SERIALGRAPH_WORKERS=16,32 reproduces
// the full grid).
package serialgraph_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"serialgraph/internal/bench"
)

// jsonRows collects every measured row across benchmarks; TestMain writes
// them to $SERIALGRAPH_BENCH_JSON after the run so CI can upload the
// report as a perf-trajectory artifact.
var (
	jsonMu   sync.Mutex
	jsonRows []bench.Row
)

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("SERIALGRAPH_BENCH_JSON"); path != "" && len(jsonRows) > 0 {
		rep := bench.NewReport(defaultBenchConfig(), os.Getenv("SERIALGRAPH_BENCH_LABEL"), jsonRows)
		if err := bench.WriteJSONFile(path, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d bench rows to %s\n", len(jsonRows), path)
		}
	}
	os.Exit(code)
}

// benchConfig returns the reduced-scale default configuration.
func benchConfig(b *testing.B) bench.Config {
	b.Helper()
	return defaultBenchConfig()
}

func defaultBenchConfig() bench.Config {
	cfg := bench.Config{Scale: 0.5, Workers: []int{16}, Latency: 50 * time.Microsecond}
	if s := os.Getenv("SERIALGRAPH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			cfg.Scale = f
		}
	}
	if s := os.Getenv("SERIALGRAPH_WORKERS"); s != "" {
		var ws []int
		for _, f := range strings.Split(s, ",") {
			if w, err := strconv.Atoi(strings.TrimSpace(f)); err == nil && w > 0 {
				ws = append(ws, w)
			}
		}
		if len(ws) > 0 {
			cfg.Workers = ws
		}
	}
	return cfg
}

// reportTechniques emits per-technique wall time metrics and the speedup of
// partition-based locking over the slowest competitor — the paper's
// headline number ("up to 26x faster than existing techniques").
func reportTechniques(b *testing.B, rows []bench.Row) {
	b.Helper()
	var partition time.Duration
	var worst time.Duration
	for _, r := range rows {
		metric := strings.ReplaceAll(r.Technique, " ", "_") + "_" + r.Dataset + "_ns"
		b.ReportMetric(float64(r.Time.Nanoseconds()), metric)
		if strings.HasPrefix(r.Technique, "partition-lock") {
			if r.Time > partition {
				partition = r.Time
			}
		} else if r.Time > worst {
			worst = r.Time
		}
	}
	if partition > 0 && worst > 0 {
		b.ReportMetric(float64(worst)/float64(partition), "speedup_vs_worst")
	}
}

func logRows(b *testing.B, rows []bench.Row) {
	b.Helper()
	var sb strings.Builder
	bench.Print(&sb, rows)
	b.Log("\n" + sb.String())
	jsonMu.Lock()
	jsonRows = append(jsonRows, rows...)
	jsonMu.Unlock()
}

// BenchmarkTable1Datasets regenerates Table 1: dataset construction and
// statistics for all four analogs.
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		bench.Table1(&sb, cfg)
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

// BenchmarkFig1Spectrum measures the parallelism/communication spectrum of
// Figure 1 on coloring.
func BenchmarkFig1Spectrum(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.Fig1Spectrum(cfg)
		if i == 0 {
			logRows(b, rows)
			for _, r := range rows {
				b.ReportMetric(float64(r.MaxConc), strings.ReplaceAll(r.Technique, " ", "_")+"_parallelism")
			}
		}
	}
}

// BenchmarkFig23Oscillation runs the Figure 2/3 coloring non-termination
// demonstration.
func BenchmarkFig23Oscillation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		bench.Fig23(&sb)
		if i == 0 {
			b.Log("\n" + sb.String())
		}
	}
}

func benchFig6(b *testing.B, alg string) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6(alg, cfg)
		if i == 0 {
			logRows(b, rows)
			reportTechniques(b, rows)
		}
	}
}

// BenchmarkFig6aColoring regenerates Figure 6a.
func BenchmarkFig6aColoring(b *testing.B) { benchFig6(b, "coloring") }

// BenchmarkFig6bPageRank regenerates Figure 6b.
func BenchmarkFig6bPageRank(b *testing.B) { benchFig6(b, "pagerank") }

// BenchmarkFig6cSSSP regenerates Figure 6c.
func BenchmarkFig6cSSSP(b *testing.B) { benchFig6(b, "sssp") }

// BenchmarkFig6dWCC regenerates Figure 6d.
func BenchmarkFig6dWCC(b *testing.B) { benchFig6(b, "wcc") }

// BenchmarkGiraphxComparison regenerates the §7.3 in-algorithm vs
// system-level comparison.
func BenchmarkGiraphxComparison(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.Giraphx(cfg)
		if i == 0 {
			logRows(b, rows)
			reportTechniques(b, rows)
		}
	}
}

// BenchmarkAblationPartitionCount sweeps partitions-per-worker (§7.1).
func BenchmarkAblationPartitionCount(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.AblationPartitions(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkAblationDegenerate compares |P|→|V| partition locking with true
// vertex locking (§5.4).
func BenchmarkAblationDegenerate(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.AblationDegenerate(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkAblationPartitioner compares hash, range, and LDG partitionings
// under partition-based locking.
func BenchmarkAblationPartitioner(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.AblationPartitioner(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkExclusion reproduces the §7 exclusion comparison: vertex-based
// locking on Giraph async vs GraphLab async vs partition-based locking.
func BenchmarkExclusion(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.Exclusion(cfg)
		if i == 0 {
			logRows(b, rows)
			reportTechniques(b, rows)
		}
	}
}

// BenchmarkMISComparison contrasts serializable greedy MIS with Luby's.
func BenchmarkMISComparison(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.MISComparison(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkAblationCombining measures sender-side combining.
func BenchmarkAblationCombining(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.AblationCombining(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkAblationSkip measures the §5.4 halted-partition skip.
func BenchmarkAblationSkip(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.AblationSkip(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}

// BenchmarkAblationBAP compares barriered AP with barrierless BAP.
func BenchmarkAblationBAP(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := bench.AblationBAP(cfg)
		if i == 0 {
			logRows(b, rows)
		}
	}
}
