// Package serialgraph is a Pregel-like distributed graph processing
// framework with serializability as a configurable, algorithm-transparent
// option. It reproduces the system of Han & Daudjee, "Providing
// Serializability for Pregel-like Graph Processing Systems" (EDBT 2016):
//
//   - a vertex-centric programming model with BSP and asynchronous (AP)
//     execution, combiners, aggregators, and vote-to-halt semantics;
//   - a GraphLab-style asynchronous gather/apply/scatter engine;
//   - four synchronization techniques providing serializability:
//     single-layer token passing, dual-layer token passing, vertex-based
//     distributed locking (Chandy–Misra over vertices, on the GAS engine),
//     and the paper's contribution, partition-based distributed locking;
//   - a transaction history checker that verifies the paper's conditions
//     C1 (fresh replica reads) and C2 (no concurrent neighbors) plus
//     one-copy serializability;
//   - synchronous checkpointing with restore.
//
// The cluster is simulated in-process: workers are goroutines and the
// network is a transport with configurable propagation latency and
// bandwidth that counts every message and byte, so the communication /
// parallelism trade-off the paper studies is directly measurable.
//
// # Quick start
//
//	g := serialgraph.GeneratePowerLaw(10_000, 16, 2.2, 42)
//	u := serialgraph.Undirected(g)
//	colors, res, err := serialgraph.Run(u, serialgraph.Coloring(), serialgraph.Options{
//		Workers:   16,
//		Technique: serialgraph.PartitionLocking,
//	})
//
// See the examples directory for runnable programs.
package serialgraph

import (
	"fmt"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/cluster"
	"serialgraph/internal/engine"
	"serialgraph/internal/fault"
	"serialgraph/internal/gas"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// Core re-exported types. These aliases are the public names of the
// library's data model.
type (
	// Graph is an immutable CSR graph over dense vertex IDs.
	Graph = graph.Graph
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// VertexID identifies a vertex: 0 <= id < NumVertices.
	VertexID = graph.VertexID
	// Edge is a directed, optionally weighted edge.
	Edge = graph.Edge

	// Program is a Pregel-style vertex program.
	Program[V, M any] = model.Program[V, M]
	// Context is a vertex's view of one execution.
	Context[V, M any] = model.Context[V, M]
	// GASProgram is a GraphLab-style gather/apply/scatter program.
	GASProgram[V, M any] = model.GASProgram[V, M]

	// Result reports what a run did: supersteps, vertex executions,
	// compute time, network/fork/token traffic, and — under fault
	// injection — recovery counters (rollbacks, recomputed supersteps,
	// wasted messages).
	Result = engine.Result
	// Violation is one failed serializability check.
	Violation = history.Violation

	// FaultPlan schedules deterministic fault injection for a run: worker
	// crashes plus seeded message-level chaos (drops, duplicates,
	// stragglers). Attach one via Options.Fault.
	FaultPlan = fault.Plan
	// CrashSpec schedules one worker crash within a FaultPlan, triggered
	// at a superstep or after a number of delivered data messages.
	CrashSpec = fault.Crash

	// RecoveryMode selects how a crash detected at a barrier is repaired:
	// whole-cluster rollback or confined (crashed-partitions-only) replay.
	RecoveryMode = engine.RecoveryMode
)

// Crash recovery modes for Options.Recovery.
const (
	// RecoverFull rolls the whole cluster back to the latest checkpoint
	// (Giraph-style, §6.4) and recomputes everywhere.
	RecoverFull = engine.RecoverFull
	// RecoverConfined restores only the crashed workers' partitions and
	// replays them against the healthy workers' message logs; healthy
	// partitions keep their in-memory state.
	RecoverConfined = engine.RecoverConfined
)

// Message-store semantics for Program.Semantics.
const (
	// Queue appends messages; each batch is consumed by the next execution.
	Queue = model.Queue
	// Combine folds messages with Program.Combine and consumes on read.
	Combine = model.Combine
	// Overwrite keeps each in-neighbor's latest message (replica reads).
	Overwrite = model.Overwrite
)

// Model selects the computation model for Run.
type Model uint8

const (
	// BSP delays messages to the next superstep (Pregel/Giraph).
	BSP Model = iota
	// Async delivers messages within the same superstep (Giraph async).
	// Serializability requires Async or BAP.
	Async
	// BAP is the barrierless asynchronous parallel model (Giraph
	// Unchained): per-worker logical supersteps with no global barriers.
	// Compatible with NoSerializability and PartitionLocking.
	BAP
)

func (m Model) String() string {
	switch m {
	case BSP:
		return "bsp"
	case Async:
		return "async"
	case BAP:
		return "bap"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Technique selects the synchronization technique.
type Technique uint8

const (
	// NoSerializability runs the bare engine (plain Giraph / Giraph async /
	// GraphLab async).
	NoSerializability Technique = iota
	// SingleToken is single-layer token passing: minimal communication,
	// minimal parallelism.
	SingleToken
	// DualToken is dual-layer (partition aware) token passing.
	DualToken
	// PartitionLocking is partition-based distributed locking — the
	// paper's contribution and the recommended technique.
	PartitionLocking
	// VertexLocking is vertex-based distributed locking; it runs on the
	// GAS engine (RunGAS), matching the paper's finding that GraphLab
	// async is the system suited to it.
	VertexLocking
)

func (t Technique) String() string {
	switch t {
	case NoSerializability:
		return "none"
	case SingleToken:
		return "single-token"
	case DualToken:
		return "dual-token"
	case PartitionLocking:
		return "partition-locking"
	case VertexLocking:
		return "vertex-locking"
	default:
		return fmt.Sprintf("Technique(%d)", uint8(t))
	}
}

// Transport selects the wire backend connecting the simulated workers.
type Transport uint8

const (
	// InProc is the in-process simulated transport (default): messages
	// cross goroutine channels with modeled latency and byte accounting.
	InProc Transport = iota
	// TCPLoopback moves every inter-worker message over real loopback
	// TCP sockets through the binary frame codec. Results are identical
	// to InProc; Result.Net additionally reports true wire bytes.
	TCPLoopback
)

func (t Transport) String() string {
	switch t {
	case InProc:
		return "inproc"
	case TCPLoopback:
		return "tcp"
	default:
		return fmt.Sprintf("Transport(%d)", uint8(t))
	}
}

// Scheduler selects how each worker orders its partitions within a
// superstep.
type Scheduler uint8

const (
	// StaticScheduler (default) executes partitions in a fixed order from a
	// shared queue, blocking on each partition's lock acquisition.
	StaticScheduler Scheduler = iota
	// OverlapScheduler overlaps synchronization with computation: under
	// PartitionLocking it prefetches forks for boundary partitions while
	// threads compute elsewhere, fills lock-wait windows with p-internal
	// partitions, and balances skewed partitions across threads by work
	// stealing. Results are identical to StaticScheduler — only wall time
	// changes. Not compatible with Model == BAP.
	OverlapScheduler
)

func (s Scheduler) String() string {
	switch s {
	case StaticScheduler:
		return "static"
	case OverlapScheduler:
		return "overlap"
	default:
		return fmt.Sprintf("Scheduler(%d)", uint8(s))
	}
}

// Options configures a run. The zero value is a single-worker asynchronous
// run without serializability.
type Options struct {
	// Workers is the simulated cluster size (default 1).
	Workers int
	// PartitionsPerWorker defaults to Workers, Giraph's default.
	PartitionsPerWorker int
	// ThreadsPerWorker is the compute pool per worker (default 4).
	ThreadsPerWorker int
	// FibersPerWorker applies to RunGAS only (default 64).
	FibersPerWorker int
	// Model selects BSP or Async (Run only; RunGAS is always async).
	Model Model
	// Technique selects the serializability technique.
	Technique Technique
	// Transport selects the wire backend: the in-process simulator
	// (default) or real TCP loopback sockets (Run only; the GAS engine
	// is in-process).
	Transport Transport
	// Scheduler selects the per-worker partition scheduler: static order
	// (default) or the overlap scheduler with fork prefetching and work
	// stealing (Run only; incompatible with Model == BAP).
	Scheduler Scheduler
	// NetworkLatency is the simulated one-way propagation delay.
	NetworkLatency time.Duration
	// NetworkBandwidth is per-link bytes/second (0 = infinite).
	NetworkBandwidth float64
	// BufferCap is the outgoing message batch threshold (default 512).
	BufferCap int
	// MaxSupersteps bounds non-converging runs (default 100000).
	MaxSupersteps int
	// Seed makes partitioning reproducible.
	Seed uint64
	// Partitioner names the vertex-placement strategy: "hash" (the
	// paper's baseline, default), "range", "ldg" (linear deterministic
	// greedy streaming), or "fennel". Locality-aware placement changes
	// only where vertices run — results are unchanged — but it shrinks
	// boundary fractions and with them token, lock, and network cost.
	// Result.Partition reports the achieved quality.
	Partitioner string
	// TrackHistory records transactions for CheckSerializability.
	TrackHistory bool
	// CheckpointEvery/CheckpointDir enable synchronous checkpoints;
	// RestoreFrom resumes from one.
	CheckpointEvery int
	CheckpointDir   string
	RestoreFrom     string
	// Fault injects worker crashes and message chaos into the run (Run
	// only; the GAS engine has no fault support). When a crash fires, the
	// engine detects it at the next barrier, rolls the cluster back to the
	// latest checkpoint (or to the initial state), and resumes within the
	// same call; Result reports the recovery cost.
	Fault *FaultPlan
	// MaxRollbacks bounds in-run recovery attempts (default 16).
	MaxRollbacks int
	// Recovery selects full (default) or confined crash recovery.
	// Confined recovery logs outgoing remote messages per superstep and,
	// on a crash, restores and replays only the crashed workers'
	// partitions; it falls back to a full rollback whenever the logs or
	// checkpoint chain cannot support a confined replay.
	Recovery RecoveryMode
	// WatchdogTimeout, when > 0, arms the liveness watchdog: a superstep
	// that fails to reach its barrier within the deadline is declared
	// stalled, the unfinished workers are treated as crashed, and the run
	// recovers as from a crash.
	WatchdogTimeout time.Duration
	// DetailedStats records a per-superstep breakdown (wall time, message
	// counts, phase timers) in Result.SuperstepStats. Costs one metrics
	// snapshot per superstep; Result.Metrics is populated regardless.
	DetailedStats bool
	// MsgMemoryBudget, when > 0, bounds the message plane's buffered bytes:
	// the transport's per-ordered-pair credit windows are sized from it, and
	// under the BSP model inbound batches overflow to sorted on-disk runs
	// past the budget, merged back at each superstep barrier. Zero (the
	// default) leaves buffering unbounded. Results are bitwise identical
	// either way; only memory and (mildly) wall time change.
	MsgMemoryBudget int64
}

func (o Options) latency() cluster.LatencyModel {
	return cluster.LatencyModel{Propagation: o.NetworkLatency, BytesPerSec: o.NetworkBandwidth}
}

func (o Options) engineConfig() (engine.Config, error) {
	var sync engine.Sync
	switch o.Technique {
	case NoSerializability:
		sync = engine.SyncNone
	case SingleToken:
		sync = engine.TokenSingle
	case DualToken:
		sync = engine.TokenDual
	case PartitionLocking:
		sync = engine.PartitionLock
	case VertexLocking:
		return engine.Config{}, fmt.Errorf("serialgraph: vertex-based locking runs on the GAS engine; use RunGAS")
	default:
		return engine.Config{}, fmt.Errorf("serialgraph: unknown technique %v", o.Technique)
	}
	var mode engine.Mode
	switch o.Model {
	case BSP:
		mode = engine.BSP
	case Async:
		mode = engine.Async
	case BAP:
		mode = engine.BAP
	default:
		return engine.Config{}, fmt.Errorf("serialgraph: unknown model %v", o.Model)
	}
	var transport engine.TransportKind
	switch o.Transport {
	case InProc:
		transport = engine.TransportInProc
	case TCPLoopback:
		transport = engine.TransportTCP
	default:
		return engine.Config{}, fmt.Errorf("serialgraph: unknown transport %v", o.Transport)
	}
	var sched engine.SchedulerKind
	switch o.Scheduler {
	case StaticScheduler:
		sched = engine.SchedStatic
	case OverlapScheduler:
		sched = engine.SchedOverlap
	default:
		return engine.Config{}, fmt.Errorf("serialgraph: unknown scheduler %v", o.Scheduler)
	}
	cfg := engine.Config{
		Workers:             o.Workers,
		PartitionsPerWorker: o.PartitionsPerWorker,
		ThreadsPerWorker:    o.ThreadsPerWorker,
		Mode:                mode,
		Sync:                sync,
		Transport:           transport,
		Scheduler:           sched,
		Latency:             o.latency(),
		BufferCap:           o.BufferCap,
		MaxSupersteps:       o.MaxSupersteps,
		Seed:                o.Seed,
		TrackHistory:        o.TrackHistory,
		CheckpointEvery:     o.CheckpointEvery,
		CheckpointDir:       o.CheckpointDir,
		RestoreFrom:         o.RestoreFrom,
		MaxRollbacks:        o.MaxRollbacks,
		Recovery:            o.Recovery,
		WatchdogTimeout:     o.WatchdogTimeout,
		DetailedStats:       o.DetailedStats,
		MsgMemoryBudget:     o.MsgMemoryBudget,
	}
	if o.Fault != nil {
		cfg.Fault = fault.NewInjector(*o.Fault)
	}
	if o.Partitioner != "" {
		if !partition.ValidKind(o.Partitioner) {
			return engine.Config{}, fmt.Errorf("serialgraph: unknown partitioner %q (want one of %v)", o.Partitioner, partition.Kinds())
		}
		kind, seed := o.Partitioner, o.Seed
		cfg.Partitioner = func(g *graph.Graph, p, w int) *partition.Map {
			m, err := partition.New(kind, g, p, w, seed)
			if err != nil {
				panic(err) // unreachable: kind validated above
			}
			return m
		}
	}
	return cfg, nil
}

// Run executes a Pregel-style program over g and returns the final vertex
// values. Serializable techniques require Options.Model == Async.
func Run[V, M any](g *Graph, prog Program[V, M], opt Options) ([]V, Result, error) {
	cfg, err := opt.engineConfig()
	if err != nil {
		return nil, Result{}, err
	}
	vals, res, _, err := engine.Run(g, prog, cfg)
	return vals, res, err
}

// RunChecked is Run plus serializability verification: it records every
// vertex execution as a transaction and checks conditions C1 and C2 and
// one-copy serializability, returning any violations.
func RunChecked[V, M any](g *Graph, prog Program[V, M], opt Options) ([]V, Result, []Violation, error) {
	opt.TrackHistory = true
	cfg, err := opt.engineConfig()
	if err != nil {
		return nil, Result{}, nil, err
	}
	vals, res, rec, err := engine.Run(g, prog, cfg)
	if err != nil {
		return nil, Result{}, nil, err
	}
	return vals, res, history.CheckAll(rec.Txns(), g), nil
}

// RunGAS executes a gather/apply/scatter program on the GraphLab-style
// asynchronous engine. Technique must be VertexLocking (serializable) or
// NoSerializability.
func RunGAS[V comparable, M any](g *Graph, prog GASProgram[V, M], opt Options) ([]V, Result, error) {
	vals, res, _, err := runGAS(g, prog, opt)
	return vals, res, err
}

// RunGASChecked is RunGAS plus serializability verification.
func RunGASChecked[V comparable, M any](g *Graph, prog GASProgram[V, M], opt Options) ([]V, Result, []Violation, error) {
	opt.TrackHistory = true
	vals, res, rec, err := runGAS(g, prog, opt)
	if err != nil {
		return nil, Result{}, nil, err
	}
	return vals, res, history.CheckAll(rec.Txns(), g), nil
}

func runGAS[V comparable, M any](g *Graph, prog GASProgram[V, M], opt Options) ([]V, Result, *history.Recorder, error) {
	switch opt.Technique {
	case VertexLocking, NoSerializability:
	default:
		return nil, Result{}, nil, fmt.Errorf("serialgraph: the GAS engine supports VertexLocking or NoSerializability, not %v", opt.Technique)
	}
	return gas.Run(g, prog, gas.Config{
		Workers:         opt.Workers,
		FibersPerWorker: opt.FibersPerWorker,
		Serializable:    opt.Technique == VertexLocking,
		Latency:         opt.latency(),
		BufferCap:       opt.BufferCap,
		Seed:            opt.Seed,
		Partitioner:     opt.Partitioner,
		TrackHistory:    opt.TrackHistory,
	})
}

// Built-in algorithms (§7.2 of the paper).

// Coloring returns the serializable greedy graph coloring program; run it
// on an undirected graph with a serializable technique.
func Coloring() Program[int32, int32] { return algorithms.Coloring() }

// PageRank returns the PageRank program with the given per-vertex
// convergence threshold.
func PageRank(eps float64) Program[float64, float64] { return algorithms.PageRank(eps) }

// SSSP returns the single-source shortest paths program (parallel
// Bellman–Ford).
func SSSP(source VertexID) Program[float64, float64] { return algorithms.SSSP(source) }

// WCC returns the weakly-connected-components program (HCC); run it on an
// undirected graph.
func WCC() Program[int32, int32] { return algorithms.WCC() }

// GAS forms of the same algorithms, for RunGAS.

// ColoringGAS returns greedy coloring in gather/apply/scatter form.
func ColoringGAS() GASProgram[int32, []int32] { return algorithms.ColoringGAS() }

// PageRankGAS returns PageRank in GAS form.
func PageRankGAS(g *Graph, eps float64) GASProgram[float64, float64] {
	return algorithms.PageRankGAS(g, eps)
}

// SSSPGAS returns SSSP in GAS form.
func SSSPGAS(source VertexID) GASProgram[float64, float64] { return algorithms.SSSPGAS(source) }

// WCCGAS returns WCC in GAS form.
func WCCGAS() GASProgram[int32, int32] { return algorithms.WCCGAS() }

// PageRankAggregated returns the aggregator-terminated PageRank variant:
// the master halts when the global error aggregate drops below tol.
func PageRankAggregated(tol float64) Program[float64, float64] {
	return algorithms.PageRankAggregated(tol)
}

// MISGreedy returns the one-pass greedy maximal-independent-set program;
// it requires a serializable technique and an undirected graph.
func MISGreedy() Program[int32, int32] { return algorithms.MISGreedy() }

// MISGreedyGAS returns greedy MIS in GAS form for RunGAS.
func MISGreedyGAS() GASProgram[int32, []int32] { return algorithms.MISGreedyGAS() }

// ValidateMIS checks independence and maximality of an MIS result.
func ValidateMIS(g *Graph, states []int32) error { return algorithms.ValidateMIS(g, states) }

// MIS state values returned by MISGreedy.
const (
	MISIn  = algorithms.MISIn
	MISOut = algorithms.MISOut
)

// LabelPropagation returns the community-detection label propagation
// program; like coloring, it oscillates under BSP on bipartite structures
// and converges under serializable asynchronous execution. Run on an
// undirected graph.
func LabelPropagation() Program[int32, int32] { return algorithms.LabelPropagation() }

// KCoreValue is the per-vertex state of KCore.
type KCoreValue = algorithms.KCoreValue

// KCoreMsg is KCore's message type.
type KCoreMsg = algorithms.KCoreMsg

// KCore returns the H-index coreness program; extract results with
// KCoreEstimates. Run on an undirected graph.
func KCore() Program[KCoreValue, KCoreMsg] { return algorithms.KCore() }

// KCoreEstimates extracts coreness numbers from KCore's final values.
func KCoreEstimates(vals []KCoreValue) []int32 { return algorithms.KCoreEstimates(vals) }

// TriangleMsg is TriangleCount's message type.
type TriangleMsg = algorithms.TriangleMsg

// TriangleCount returns the two-superstep triangle counting program (BSP;
// needs no serializability). Run on an undirected graph; per-vertex counts
// sum to the triangle total.
func TriangleCount() Program[int32, TriangleMsg] { return algorithms.TriangleCount() }

// PersonalizedPageRank returns random-walk-with-restart scores around
// source with the given damping factor and per-vertex threshold.
func PersonalizedPageRank(source VertexID, damping, eps float64) Program[float64, float64] {
	return algorithms.PersonalizedPageRank(source, damping, eps)
}

// HopValue is the per-vertex state of HopHistogram.
type HopValue = algorithms.HopValue

// HopHistogram runs up to 64 simultaneous BFS waves (one bit per source)
// for reachability and effective-diameter estimation.
func HopHistogram(sources []VertexID) Program[HopValue, uint64] {
	return algorithms.HopHistogram(sources)
}

// GibbsValue is the per-vertex state of the Ising Gibbs sampler.
type GibbsValue = algorithms.GibbsValue

// IsingGibbs returns a Gibbs sampler for the Ising model at inverse
// temperature beta running the given number of sweeps — the machine
// learning workload class the paper cites as requiring serializability for
// statistical correctness. Run on an undirected graph.
func IsingGibbs(beta float64, sweeps int, seed uint64) Program[GibbsValue, int32] {
	return algorithms.IsingGibbs(beta, sweeps, seed)
}

// Magnetization returns the Ising order parameter |Σ spins|/n.
func Magnetization(vals []GibbsValue) float64 { return algorithms.Magnetization(vals) }

// AlignedFraction returns the fraction of edges with agreeing spins.
func AlignedFraction(g *Graph, vals []GibbsValue) float64 {
	return algorithms.AlignedFraction(g, vals)
}

// NoColor is the sentinel value of uncolored vertices.
const NoColor = algorithms.NoColor

// ValidateColoring checks that colors is a proper coloring of g.
func ValidateColoring(g *Graph, colors []int32) error { return algorithms.ValidateColoring(g, colors) }

// Graph construction and I/O.

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadGraph reads a graph from a file; ".bin"/".gob" selects the binary
// format, anything else a text edge list.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph; format chosen as in LoadGraph.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// Undirected returns the symmetrized version of g (for coloring and WCC).
func Undirected(g *Graph) *Graph {
	b := graph.NewBuilder(g.NumVertices())
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

// GeneratePowerLaw builds a seeded synthetic power-law graph with the given
// vertex count, average degree, and exponent.
func GeneratePowerLaw(n int, avgDegree float64, exponent float64, seed int64) *Graph {
	return generate.PowerLaw(generate.PowerLawConfig{N: n, AvgDegree: avgDegree, Exponent: exponent, Seed: seed})
}

// Dataset returns one of the paper's Table 1 synthetic dataset analogs
// ("OR", "AR", "TW", "UK") at the given scale (1.0 = catalog size).
func Dataset(name string, scale float64) (*Graph, error) {
	d, err := generate.ByName(name)
	if err != nil {
		return nil, err
	}
	return d.Build(scale), nil
}

// Partitioning quality inspection.

// PartitionQuality is the placement quality report attached to every
// Result: edge-cut, per-Class vertex census (§5.3), boundary fraction,
// replication factor, and balance skew.
type PartitionQuality = partition.Quality

// PartitionerKinds lists the valid Options.Partitioner names.
func PartitionerKinds() []string { return partition.Kinds() }

// PartitionReport partitions g with the named strategy (see
// Options.Partitioner) and returns the quality report without running
// anything — diagnostics for placement tuning.
func PartitionReport(g *Graph, kind string, p, w int, seed uint64) (PartitionQuality, error) {
	m, err := partition.New(kind, g, p, w, seed)
	if err != nil {
		return PartitionQuality{}, err
	}
	return m.Quality(g), nil
}

// EdgeCutFraction reports the fraction of edges cut by hash-partitioning g
// into p partitions over w workers (diagnostics for technique tuning).
func EdgeCutFraction(g *Graph, p, w int, seed uint64) float64 {
	return partition.Cut(g, partition.NewHash(g, p, w, seed)).CutFraction
}

// Degree-ordered relabeling.

// Relabeling is a bijection between an original dense ID space and a
// hub-clustered one; see DegreeRelabel.
type Relabeling = graph.Relabeling

// DegreeRelabel rebuilds g under the degree-ordered permutation (hubs at
// low IDs) and returns the remap table. Streaming partitioners place the
// relabeled graph better — hubs stream first, while the capacity
// discount still has room to spread them. Map algorithm inputs through
// Relabeling.NewID (e.g. an SSSP source) and map result slices back with
// Unpermute, and outputs are indexed exactly as an un-relabeled run.
func DegreeRelabel(g *Graph) (*Graph, *Relabeling) {
	r := graph.DegreeOrder(g)
	return r.Apply(g), r
}

// Unpermute reindexes a per-vertex result slice from the relabeled space
// back to the original: out[old] = vals[r.NewID(old)].
func Unpermute[T any](r *Relabeling, vals []T) []T { return graph.Unpermute(r, vals) }

// Permute reindexes a per-vertex input slice from the original space
// into the relabeled one (the inverse of Unpermute).
func Permute[T any](r *Relabeling, vals []T) []T { return graph.Permute(r, vals) }
