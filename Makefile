GO ?= go

.PHONY: build vet test test-short test-race race chaos torture fuzz ci clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite, including the chaos tests (fault injection + recovery).
test:
	$(GO) test ./...

# Short mode skips the chaos tests and other long-running suites.
test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Race CI job: vet plus the short suite under the race detector. Short
# mode keeps the sampled torture sweep at 50 cases so the job stays fast.
race:
	$(GO) vet ./...
	$(GO) test -race -short ./...

# Just the fault-injection/recovery harness, verbosely.
chaos:
	$(GO) test ./internal/engine/ -run Chaos -v
	$(GO) test ./internal/fault/ -v

# Long randomized model-checking sweep (nightly). Replay one case with:
#   go test ./internal/torture -run TestTorture -torture.seed=0x...
torture:
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -v -count=1 \
		-torture.n=2000 -timeout=30m

# Short fuzz pass over the graph loader/symmetrize targets.
fuzz:
	$(GO) test ./internal/graph/ -fuzz FuzzEdgeListSymmetrize -fuzztime=60s

ci: build vet test-race

clean:
	$(GO) clean ./...
