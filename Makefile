GO ?= go

.PHONY: build vet test test-short test-race race tcp flow partition fuzz-wire chaos torture torture-pinned torture-budget torture-partition torture-sched sched fuzz bench-json bench-smoke bench-micro bench-diff ci clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite, including the chaos tests (fault injection + recovery).
test:
	$(GO) test ./...

# Short mode skips the chaos tests and other long-running suites.
test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Race CI job: vet plus the short suite under the race detector. Short
# mode keeps the sampled torture sweep at 50 cases so the job stays fast.
race:
	$(GO) vet ./...
	$(GO) test -race -short ./...

# Fault-injection and recovery gate: the chaos and confined-recovery /
# watchdog suites under the race detector, then a 200-case torture sweep
# restricted to crash-plan scenarios (every case schedules at least one
# worker crash; recovery mode and checkpoint cadence still vary). Runs
# nightly in CI alongside the long randomized sweep.
chaos:
	$(GO) test -race ./internal/engine/ -run 'Chaos|Confined|Watchdog|Torn' -v
	$(GO) test -race ./internal/fault/ ./internal/msgstore/ ./internal/checkpoint/
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -count=1 \
		-torture.n=200 -torture.faulty -torture.root=0xc4a05 -timeout=20m

# Long randomized model-checking sweep (nightly). Replay one case with:
#   go test ./internal/torture -run TestTorture -torture.seed=0x...
torture:
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -v -count=1 \
		-torture.n=2000 -timeout=30m

# Pinned serializability sweep: 200 cases from a fixed root seed, so every
# CI run executes the identical case list. This is the regression gate for
# the staged message paths (thread-local staging, batched remote apply);
# the nightly `torture` target still covers a larger randomized sweep.
torture-pinned:
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -count=1 \
		-torture.n=200 -torture.root=0xdecaf -timeout=15m

# Wire-transport gate: the TCP backend conformance suite, the
# cross-transport equivalence matrix, the goroutine-level and real
# multi-process dist conformance suites, all under the race detector.
tcp:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/wire/ ./internal/dist/
	$(GO) test -race -count=1 ./internal/engine/ -run TestTransportEquivalenceMatrix -v
	$(GO) test -race -count=1 ./cmd/graphrun/ -run TestGraphrunMultiProcess -v

# Bounded-memory message-plane gate: the credit-window and spill-tier unit
# suites under the race detector, then the budget equivalence matrix (every
# sync technique × algorithm × {unbounded, tiny, huge} budget, bitwise
# checks) and the tiny-budget-over-TCP cell.
flow:
	$(GO) test -race -count=1 ./internal/cluster/ -run 'Flow|Credit'
	$(GO) test -race -count=1 ./internal/msgstore/ -run 'Spill'
	$(GO) test -race -count=1 ./internal/engine/ -run 'TestBudget' -v

# Locality-aware partitioning gate: the streaming partitioner and
# relabeling unit suites under the race detector, the partitioner
# equivalence matrix (every mode × technique × partitioner cell bitwise
# against the hash baseline), the distributed rebuild conformance cell,
# and the full-size quality acceptance run (balance bound, >=25%
# boundary-fraction and cross-partition byte reductions vs hash).
partition:
	$(GO) test -race -count=1 ./internal/partition/ ./internal/graph/
	$(GO) test -race -count=1 ./internal/engine/ -run TestPartitionerEquivalenceMatrix -v
	$(GO) test -race -count=1 ./internal/dist/ -run TestDistStreamingPartitioners
	$(GO) test -count=1 ./internal/bench/ -run TestPartitionQuality -v

# Streaming-partitioner torture row (nightly): the pinned sweep rerun with
# every case forced onto LDG or Fennel placement (split by a seed bit), so
# all serializability and recovery oracles run against locality-aware maps.
torture-partition:
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -count=1 \
		-torture.n=200 -torture.root=0xdecaf -torture.streampart -timeout=15m

# Tiny-budget torture row (nightly): the pinned sweep rerun with a forced
# tiny message-plane budget, so credit windows sit at the floor and the BSP
# spill tier cuts runs on nearly every superstep.
torture-budget:
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -count=1 \
		-torture.n=200 -torture.root=0xdecaf -torture.tinybudget -timeout=15m

# Overlap-scheduler gate: the async chandy property suites and the
# scheduler equivalence matrix (every mode x technique x {static,overlap}
# cell, bitwise/oracle checks plus the counter ledger) under the race
# detector, then the full-size acceptance run (>=15% partition-lock
# coloring speedup, determinism across schedulers).
sched:
	$(GO) test -race -count=1 ./internal/chandy/
	$(GO) test -race -count=1 ./internal/engine/ -run 'TestScheduler|TestOverlap' -v
	$(GO) test -count=1 ./internal/bench/ -run TestScheduler -v

# Forced-overlap torture row (nightly): the pinned sweep rerun with every
# non-BAP case forced onto the overlap scheduler, so the serializability,
# conservation, and ledger oracles all run against prefetched forks and
# stolen partitions.
torture-sched:
	$(GO) test ./internal/torture/ -run 'TestTorture$$' -count=1 \
		-torture.n=200 -torture.root=0xdecaf -torture.sched -timeout=15m

# 30-second fuzz smoke over the frame decoder: truncated/corrupt/oversized
# frames must error, never panic or over-allocate; plus a shorter pass over
# the Credit grant frame against its golden fixture corpus.
fuzz-wire:
	$(GO) test ./internal/wire/ -fuzz FuzzFrameDecode -fuzztime=30s -run '^$$'
	$(GO) test ./internal/wire/ -fuzz FuzzCreditFrame -fuzztime=15s -run '^$$'

# Short fuzz pass over the graph loader/symmetrize targets.
fuzz:
	$(GO) test ./internal/graph/ -fuzz FuzzEdgeListSymmetrize -fuzztime=60s

# Machine-readable perf baseline: the Fig. 1 spectrum with per-technique
# metrics snapshots and superstep phase traces. BENCH_NNNN.json files at
# the repo root are successive perf-trajectory points made this way.
BENCH_JSON ?= bench.json
BENCH_SCALE ?= 0.1
bench-json:
	SERIALGRAPH_SCALE=$(BENCH_SCALE) $(GO) run ./cmd/benchtab -exp fig1 \
		-workers 16 -trace -json $(BENCH_JSON) -label "fig1 scale=$(BENCH_SCALE)"

# CI benchmark smoke: one iteration of the Fig. 1 spectrum benchmark,
# emitting the JSON report for artifact upload.
bench-smoke:
	SERIALGRAPH_SCALE=$(BENCH_SCALE) SERIALGRAPH_BENCH_JSON=$(BENCH_JSON) \
		$(GO) test -run '^$$' -bench BenchmarkFig1Spectrum -benchtime 1x .

# Hot-path microbenchmarks: the message store's put/read paths (per-message
# vs. batched, all three semantics, 1-8 goroutines) and the engine's
# local-delivery benchmark, which exercises thread-local staging end to end.
bench-micro:
	$(GO) test ./internal/msgstore/ -run '^$$' -bench . -benchtime 2000x
	$(GO) test ./internal/engine/ -run '^$$' -bench BenchmarkLocalDelivery -benchtime 5x

# Per-phase deltas between two perf-trajectory files:
#   make bench-diff OLD=BENCH_0003.json NEW=BENCH_0004.json
# Set FAIL_OVER to a percentage to exit non-zero on any wall/phase
# regression beyond it (the CI bench-smoke gate uses this).
FAIL_OVER ?= 0
bench-diff:
	$(GO) run ./cmd/benchdiff -fail-over $(FAIL_OVER) $(OLD) $(NEW)

ci: build vet test-race

clean:
	$(GO) clean ./...
