GO ?= go

.PHONY: build vet test test-short test-race chaos ci clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite, including the chaos tests (fault injection + recovery).
test:
	$(GO) test ./...

# Short mode skips the chaos tests and other long-running suites.
test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Just the fault-injection/recovery harness, verbosely.
chaos:
	$(GO) test ./internal/engine/ -run Chaos -v
	$(GO) test ./internal/fault/ -v

ci: build vet test-race

clean:
	$(GO) clean ./...
