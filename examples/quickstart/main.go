// Quickstart: color a synthetic social graph serializably with
// partition-based distributed locking and verify the result.
package main

import (
	"fmt"
	"log"

	"serialgraph"
)

func main() {
	// A 5,000-vertex power-law graph, symmetrized for coloring.
	g := serialgraph.Undirected(serialgraph.GeneratePowerLaw(5000, 12, 2.2, 42))
	fmt.Printf("graph: %d vertices, %d undirected edges\n", g.NumVertices(), g.NumEdges()/2)

	colors, res, err := serialgraph.Run(g, serialgraph.Coloring(), serialgraph.Options{
		Workers:   8,
		Model:     serialgraph.Async,
		Technique: serialgraph.PartitionLocking,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := serialgraph.ValidateColoring(g, colors); err != nil {
		log.Fatalf("coloring invalid: %v", err)
	}
	distinct := map[int32]bool{}
	for _, c := range colors {
		distinct[c] = true
	}
	fmt.Printf("proper coloring with %d colors\n", len(distinct))
	fmt.Printf("supersteps: %d, vertex executions: %d, time: %v\n",
		res.Supersteps, res.Executions, res.ComputeTime)
	fmt.Printf("network: %d data batches (%d KB), %d control msgs, %d forks exchanged\n",
		res.Net.DataMessages, res.Net.DataBytes/1024, res.Net.ControlMessages, res.ForkSends)
}
