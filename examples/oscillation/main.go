// Oscillation reproduces the paper's Figures 2 and 3 motivation: greedy
// graph coloring never terminates under BSP or plain async execution, and
// terminates immediately once the engine provides serializability.
package main

import (
	"fmt"
	"log"

	"serialgraph"
)

func main() {
	// The 4-vertex, 2-worker graph of §2.1: v0 and v1 on worker 1, v2 and
	// v3 on worker 2, edges v0-v2, v0-v3, v1-v2, v1-v3.
	b := serialgraph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	g := b.BuildUndirected()

	fmt.Println("== BSP execution (Figure 2) ==")
	colors, res, err := serialgraph.Run(g, recolor(), serialgraph.Options{
		Workers: 2, PartitionsPerWorker: 1, Model: serialgraph.BSP,
		MaxSupersteps: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d supersteps: colors = %v, converged = %v\n",
		res.Supersteps, colors, res.Converged)
	fmt.Println("   (the vertices oscillate 0 <-> 1 collectively, forever)")

	fmt.Println("\n== Async execution without serializability (Figure 3) ==")
	colors, res, err = serialgraph.Run(g, recolor(), serialgraph.Options{
		Workers: 2, PartitionsPerWorker: 1, Model: serialgraph.Async,
		MaxSupersteps: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d supersteps: colors = %v, converged = %v\n",
		res.Supersteps, colors, res.Converged)

	fmt.Println("\n== Async execution with partition-based locking ==")
	colors, res, err = serialgraph.Run(g, recolor(), serialgraph.Options{
		Workers: 2, PartitionsPerWorker: 1, Model: serialgraph.Async,
		Technique: serialgraph.PartitionLocking, MaxSupersteps: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d supersteps: colors = %v, converged = %v\n",
		res.Supersteps, colors, res.Converged)
	if err := serialgraph.ValidateColoring(g, colors); err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	fmt.Println("   (serializability terminates the algorithm with a proper coloring)")
}

// recolor is the textbook greedy coloring: every execution re-selects the
// smallest color not used by any neighbor and broadcasts changes.
func recolor() serialgraph.Program[int32, int32] {
	return serialgraph.Program[int32, int32]{
		Name:      "coloring-recolor",
		Semantics: serialgraph.Overwrite,
		MsgBytes:  4,
		Init:      func(serialgraph.VertexID, *serialgraph.Graph) int32 { return serialgraph.NoColor },
		Compute: func(ctx serialgraph.Context[int32, int32], msgs []int32) {
			if ctx.Value() == serialgraph.NoColor {
				ctx.SetValue(0)
				ctx.SendToAllOut(0)
				ctx.VoteToHalt()
				return
			}
			c := smallestFree(msgs)
			if c != ctx.Value() {
				ctx.SetValue(c)
				ctx.SendToAllOut(c)
			}
			ctx.VoteToHalt()
		},
	}
}

func smallestFree(used []int32) int32 {
	taken := map[int32]bool{}
	for _, c := range used {
		taken[c] = true
	}
	for c := int32(0); ; c++ {
		if !taken[c] {
			return c
		}
	}
}
