// Gibbs runs an Ising-model Gibbs sampler — the machine learning workload
// class the paper's introduction cites as requiring serializability for
// statistical correctness — on a 2D lattice at two temperatures, under
// partition-based locking, and verifies the ordering transition.
package main

import (
	"fmt"
	"log"
	"time"

	"serialgraph"
	"serialgraph/internal/generate"
)

func main() {
	g := generate.Grid(48, 48)
	fmt.Printf("lattice: %d spins, %d couplings\n\n", g.NumVertices(), g.NumEdges()/2)
	fmt.Printf("%-8s %-12s %-16s %-10s\n", "beta", "sweeps", "aligned pairs", "time")

	for _, beta := range []float64{0.05, 0.3, 0.6, 1.2} {
		vals, res, err := serialgraph.Run(g, serialgraph.IsingGibbs(beta, 40, 7), serialgraph.Options{
			Workers: 8, Model: serialgraph.Async, Technique: serialgraph.PartitionLocking, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("beta %.2f: sampler did not finish", beta)
		}
		fmt.Printf("%-8.2f %-12d %-16.3f %-10v\n",
			beta, 40, serialgraph.AlignedFraction(g, vals), res.ComputeTime.Round(time.Millisecond))
	}
	fmt.Println("\nlow temperature (high beta) orders the lattice; serializability keeps")
	fmt.Println("the chain a valid Gibbs sampler (no neighboring spins resample together)")
}
