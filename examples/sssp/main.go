// Sssp runs single-source shortest paths with checkpointing enabled,
// simulates a mid-run failure, and recovers from the latest checkpoint —
// the fault-tolerance path of §6.4.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"serialgraph"
)

func main() {
	g, err := serialgraph.Dataset("AR", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AR analog: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	dir, err := os.MkdirTemp("", "serialgraph-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	base := serialgraph.Options{
		Workers: 8, Model: serialgraph.Async, Technique: serialgraph.PartitionLocking,
		Seed: 3, CheckpointEvery: 2, CheckpointDir: dir,
	}

	// Phase 1: run and "crash" after 4 supersteps.
	crashed := base
	crashed.MaxSupersteps = 4
	_, res, err := serialgraph.Run(g, serialgraph.SSSP(0), crashed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: ran %d supersteps, converged=%v (simulated crash)\n",
		res.Supersteps, res.Converged)

	// Phase 2: recover from the latest checkpoint.
	matches, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.gob"))
	if len(matches) == 0 {
		log.Fatal("no checkpoints were written")
	}
	latest := matches[len(matches)-1]
	fmt.Printf("recovering from %s\n", filepath.Base(latest))

	resumed := base
	resumed.RestoreFrom = latest
	dist, res2, err := serialgraph.Run(g, serialgraph.SSSP(0), resumed)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	maxd := 0.0
	for _, d := range dist {
		if d < 1e18 {
			reached++
			if d > maxd {
				maxd = d
			}
		}
	}
	fmt.Printf("phase 2: converged=%v after %d more supersteps\n", res2.Converged, res2.Supersteps)
	fmt.Printf("reached %d/%d vertices, eccentricity %.0f hops\n", reached, len(dist), maxd)
}
