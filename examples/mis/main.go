// Mis contrasts two maximal-independent-set algorithms: the one-pass
// greedy rule, which is correct only under serializability (the class of
// algorithm the paper's introduction motivates), and Luby's randomized
// algorithm, which tolerates plain BSP at the cost of many rounds.
package main

import (
	"fmt"
	"log"
	"time"

	"serialgraph"
)

func main() {
	g := serialgraph.Undirected(serialgraph.GeneratePowerLaw(4000, 10, 2.1, 17))
	fmt.Printf("graph: %d vertices, %d undirected edges\n\n", g.NumVertices(), g.NumEdges()/2)

	// Greedy MIS under partition-based locking: each vertex decides once,
	// reading fresh neighbor states.
	states, res, err := serialgraph.Run(g, serialgraph.MISGreedy(), serialgraph.Options{
		Workers: 8, Model: serialgraph.Async, Technique: serialgraph.PartitionLocking, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := serialgraph.ValidateMIS(g, states); err != nil {
		log.Fatalf("greedy MIS invalid: %v", err)
	}
	fmt.Printf("greedy + serializability: valid MIS of %d vertices, %d supersteps, %v\n",
		count(states, serialgraph.MISIn), res.Supersteps, res.ComputeTime.Round(time.Millisecond))

	// The same greedy rule without serializability can break on dense
	// regions: adjacent vertices join simultaneously.
	states, _, err = serialgraph.Run(g, serialgraph.MISGreedy(), serialgraph.Options{
		Workers: 8, Model: serialgraph.Async, Technique: serialgraph.NoSerializability, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := serialgraph.ValidateMIS(g, states); err != nil {
		fmt.Printf("greedy without serializability: INVALID (%v)\n", err)
	} else {
		fmt.Println("greedy without serializability: got lucky this run (validity is not guaranteed)")
	}
}

func count(states []int32, want int32) int {
	n := 0
	for _, s := range states {
		if s == want {
			n++
		}
	}
	return n
}
