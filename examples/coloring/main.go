// Coloring runs greedy graph coloring under every serializable technique —
// including vertex-based locking on the GAS engine — verifies each result,
// and checks the recorded histories against conditions C1/C2 and 1SR.
package main

import (
	"fmt"
	"log"
	"time"

	"serialgraph"
)

func main() {
	g := serialgraph.Undirected(serialgraph.GeneratePowerLaw(3000, 10, 2.1, 9))
	fmt.Printf("graph: %d vertices, %d undirected edges\n\n", g.NumVertices(), g.NumEdges()/2)
	fmt.Printf("%-18s %10s %8s %10s %12s %10s\n", "technique", "time", "colors", "execs", "ctrl msgs", "violations")

	base := serialgraph.Options{
		Workers: 8, Model: serialgraph.Async, Seed: 11,
		NetworkLatency: 20 * time.Microsecond,
	}

	for _, tech := range []serialgraph.Technique{
		serialgraph.SingleToken, serialgraph.DualToken, serialgraph.PartitionLocking,
	} {
		opt := base
		opt.Technique = tech
		colors, res, violations, err := serialgraph.RunChecked(g, serialgraph.Coloring(), opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := serialgraph.ValidateColoring(g, colors); err != nil {
			log.Fatalf("%v: %v", tech, err)
		}
		fmt.Printf("%-18s %10v %8d %10d %12d %10d\n",
			tech, res.ComputeTime.Round(time.Millisecond), countColors(colors),
			res.Executions, res.Net.ControlMessages, len(violations))
	}

	opt := base
	opt.Technique = serialgraph.VertexLocking
	colors, res, violations, err := serialgraph.RunGASChecked(g, serialgraph.ColoringGAS(), opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := serialgraph.ValidateColoring(g, colors); err != nil {
		log.Fatalf("vertex locking: %v", err)
	}
	fmt.Printf("%-18s %10v %8d %10d %12d %10d\n",
		serialgraph.VertexLocking, res.ComputeTime.Round(time.Millisecond), countColors(colors),
		res.Executions, res.Net.ControlMessages, len(violations))

	fmt.Println("\nall techniques produced proper colorings with clean histories")
}

func countColors(colors []int32) int {
	seen := map[int32]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}
