// Pagerank compares the synchronization techniques on PageRank over the
// paper's OR (com-Orkut) synthetic analog, printing per-technique
// computation time and communication — a miniature of Figure 6b.
package main

import (
	"fmt"
	"log"
	"time"

	"serialgraph"
)

func main() {
	g, err := serialgraph.Dataset("OR", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OR analog: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-18s %10s %11s %12s %12s\n", "technique", "time", "supersteps", "data msgs", "ctrl msgs")

	const eps = 0.01
	base := serialgraph.Options{
		Workers: 8, Model: serialgraph.Async, Seed: 7,
		NetworkLatency: 50 * time.Microsecond, NetworkBandwidth: 1 << 30,
	}

	for _, tech := range []serialgraph.Technique{
		serialgraph.NoSerializability,
		serialgraph.SingleToken,
		serialgraph.DualToken,
		serialgraph.PartitionLocking,
	} {
		opt := base
		opt.Technique = tech
		pr, res, err := serialgraph.Run(g, serialgraph.PageRank(eps), opt)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		for _, x := range pr {
			sum += x
		}
		fmt.Printf("%-18s %10v %11d %12d %12d\n",
			tech, res.ComputeTime.Round(time.Millisecond), res.Supersteps,
			res.Net.DataMessages, res.Net.ControlMessages)
	}

	// Vertex-based locking runs on the GAS engine.
	opt := base
	opt.Technique = serialgraph.VertexLocking
	_, res, err := serialgraph.RunGAS(g, serialgraph.PageRankGAS(g, eps), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %10v %11s %12d %12d   (%d forks)\n",
		serialgraph.VertexLocking, res.ComputeTime.Round(time.Millisecond), "-",
		res.Net.DataMessages, res.Net.ControlMessages, res.ForkSends)
}
