package serialgraph

import (
	"testing"
)

func TestPublicRunColoring(t *testing.T) {
	g := Undirected(GeneratePowerLaw(300, 5, 2.2, 1))
	colors, res, err := Run(g, Coloring(), Options{
		Workers: 4, Model: Async, Technique: PartitionLocking, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if err := ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRunChecked(t *testing.T) {
	g := Undirected(GeneratePowerLaw(150, 4, 2.2, 2))
	_, _, violations, err := RunChecked(g, Coloring(), Options{
		Workers: 4, Model: Async, Technique: DualToken, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations != nil {
		t.Fatalf("serializable run reported violations: %v", violations)
	}
}

func TestPublicRunGAS(t *testing.T) {
	g := Undirected(GeneratePowerLaw(200, 4, 2.2, 3))
	colors, res, err := RunGAS(g, ColoringGAS(), Options{
		Workers: 3, Technique: VertexLocking, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestVertexLockingRejectedOnPregelEngine(t *testing.T) {
	g := GeneratePowerLaw(50, 3, 2.2, 4)
	if _, _, err := Run(g, SSSP(0), Options{Technique: VertexLocking}); err == nil {
		t.Error("VertexLocking accepted by Run")
	}
}

func TestPartitionLockingRejectedOnGAS(t *testing.T) {
	g := GeneratePowerLaw(50, 3, 2.2, 4)
	if _, _, err := RunGAS(g, SSSPGAS(0), Options{Technique: PartitionLocking}); err == nil {
		t.Error("PartitionLocking accepted by RunGAS")
	}
}

func TestDatasets(t *testing.T) {
	for _, name := range []string{"OR", "AR", "TW", "UK"} {
		g, err := Dataset(name, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if _, err := Dataset("XX", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestGraphRoundTripViaAPI(t *testing.T) {
	g := GeneratePowerLaw(100, 4, 2.2, 5)
	path := t.TempDir() + "/g.bin"
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Error("round trip changed the graph")
	}
}

func TestEdgeCutFraction(t *testing.T) {
	g := GeneratePowerLaw(500, 5, 2.2, 6)
	f := EdgeCutFraction(g, 16, 4, 1)
	if f <= 0.5 || f > 1 {
		t.Errorf("hash cut fraction %.2f out of expected (0.5, 1] for 16 partitions", f)
	}
}

func TestTechniqueStrings(t *testing.T) {
	want := map[Technique]string{
		NoSerializability: "none", SingleToken: "single-token", DualToken: "dual-token",
		PartitionLocking: "partition-locking", VertexLocking: "vertex-locking",
	}
	for tech, s := range want {
		if tech.String() != s {
			t.Errorf("%d.String() = %q, want %q", tech, tech.String(), s)
		}
	}
}

func TestPublicBAPModel(t *testing.T) {
	g := GeneratePowerLaw(200, 4, 2.2, 7)
	dist, res, err := Run(g, SSSP(0), Options{
		Workers: 3, Model: BAP, Technique: PartitionLocking, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BAP did not quiesce")
	}
	if dist[0] != 0 {
		t.Errorf("dist[0] = %v", dist[0])
	}
	// Token techniques are rejected on BAP.
	if _, _, err := Run(g, SSSP(0), Options{Workers: 2, Model: BAP, Technique: DualToken}); err == nil {
		t.Error("BAP accepted DualToken")
	}
}

func TestPublicRunGASChecked(t *testing.T) {
	g := Undirected(GeneratePowerLaw(120, 4, 2.2, 8))
	_, res, violations, err := RunGASChecked(g, ColoringGAS(), Options{
		Workers: 3, Technique: VertexLocking, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if violations != nil {
		t.Fatalf("violations: %v", violations)
	}
}

func TestPublicNewAlgorithms(t *testing.T) {
	g := Undirected(GeneratePowerLaw(200, 5, 2.2, 9))

	states, res, err := Run(g, MISGreedy(), Options{
		Workers: 3, Model: Async, Technique: PartitionLocking, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("MIS: err=%v converged=%v", err, res.Converged)
	}
	if err := ValidateMIS(g, states); err != nil {
		t.Fatal(err)
	}

	labels, res, err := Run(g, LabelPropagation(), Options{
		Workers: 3, Model: Async, Technique: PartitionLocking, Seed: 1, MaxSupersteps: 500,
	})
	if err != nil || !res.Converged {
		t.Fatalf("LPA: err=%v converged=%v", err, res.Converged)
	}
	if len(labels) != g.NumVertices() {
		t.Error("LPA label count wrong")
	}

	kvals, res, err := Run(g, KCore(), Options{Workers: 3, Model: Async, Seed: 1})
	if err != nil || !res.Converged {
		t.Fatalf("kcore: err=%v converged=%v", err, res.Converged)
	}
	if len(KCoreEstimates(kvals)) != g.NumVertices() {
		t.Error("kcore estimate count wrong")
	}

	tvals, res, err := Run(g, TriangleCount(), Options{Workers: 3, Model: BSP, Seed: 1})
	if err != nil || !res.Converged {
		t.Fatalf("triangles: err=%v converged=%v", err, res.Converged)
	}
	var total int64
	for _, c := range tvals {
		total += int64(c)
	}
	if total < 0 {
		t.Error("negative triangle count")
	}

	gvals, res, err := Run(g, IsingGibbs(0.5, 5, 3), Options{
		Workers: 3, Model: Async, Technique: PartitionLocking, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("gibbs: err=%v converged=%v", err, res.Converged)
	}
	if m := Magnetization(gvals); m < 0 || m > 1 {
		t.Errorf("magnetization %v out of range", m)
	}
	if f := AlignedFraction(g, gvals); f < 0 || f > 1 {
		t.Errorf("aligned fraction %v out of range", f)
	}

	agg, res, err := Run(g, PageRankAggregated(0.5), Options{
		Workers: 3, Model: Async, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("pagerank-aggregated: err=%v converged=%v", err, res.Converged)
	}
	if len(agg) != g.NumVertices() {
		t.Error("aggregated PR length wrong")
	}
}

func TestPublicFaultInjectionRecovers(t *testing.T) {
	g := GeneratePowerLaw(300, 5, 2.2, 9)
	opt := Options{
		Workers: 4, Model: Async, Technique: PartitionLocking, Seed: 9,
	}
	baseline, _, err := Run(g, SSSP(0), opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.CheckpointEvery = 2
	opt.CheckpointDir = t.TempDir()
	opt.Fault = &FaultPlan{
		Crashes: []CrashSpec{{Worker: 2, AtSuperstep: 3}},
		Seed:    9,
	}
	dists, res, err := Run(g, SSSP(0), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", res.Rollbacks)
	}
	for v, d := range dists {
		if d != baseline[v] {
			t.Fatalf("vertex %d: recovered dist %v != baseline %v", v, d, baseline[v])
		}
	}
}

func TestPublicFaultPlanValidated(t *testing.T) {
	g := GeneratePowerLaw(50, 3, 2.2, 4)
	_, _, err := Run(g, SSSP(0), Options{
		Workers: 2, Model: Async,
		Fault: &FaultPlan{Crashes: []CrashSpec{{Worker: 5, AtSuperstep: 1}}},
	})
	if err == nil {
		t.Error("crash on worker 5 of a 2-worker cluster was accepted")
	}
}

func TestPublicPartitionerOption(t *testing.T) {
	g := GeneratePowerLaw(200, 4, 2.2, 7)
	want, _, err := Run(g, SSSP(0), Options{Workers: 4, Model: Async})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range PartitionerKinds() {
		dists, res, err := Run(g, SSSP(0), Options{
			Workers: 4, Model: Async, Partitioner: kind,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for v := range want {
			if dists[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %v, want %v", kind, v, dists[v], want[v])
			}
		}
		q := res.Partition
		if sum := q.PInternal + q.LocalBoundary + q.RemoteBoundary + q.MixedBoundary; sum != g.NumVertices() {
			t.Errorf("%s: class census sums to %d, want %d", kind, sum, g.NumVertices())
		}
	}
	if _, _, err := Run(g, SSSP(0), Options{Workers: 2, Partitioner: "metis"}); err == nil {
		t.Error("unknown partitioner name was accepted")
	}
}

func TestPublicDegreeRelabel(t *testing.T) {
	g := GeneratePowerLaw(200, 4, 2.2, 7)
	want, _, err := Run(g, SSSP(0), Options{Workers: 4, Model: Async})
	if err != nil {
		t.Fatal(err)
	}
	rg, rel := DegreeRelabel(g)
	got, _, err := Run(rg, SSSP(rel.NewID(0)), Options{
		Workers: 4, Model: Async, Partitioner: "ldg",
	})
	if err != nil {
		t.Fatal(err)
	}
	got = Unpermute(rel, got)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("relabeled run: dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	// The quality helper reports on any valid kind and rejects unknowns.
	if _, err := PartitionReport(g, "fennel", 8, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionReport(g, "metis", 8, 4, 1); err == nil {
		t.Error("PartitionReport accepted an unknown kind")
	}
}
