package torture

// shrink.go implements greedy scenario minimization: once a case fails,
// the harness tries a fixed list of simplifying transforms — remove the
// fault plan, drop checkpointing, clear ablation flags, fall back to the
// in-process transport and hash partitioning, halve the graph, reduce
// partitions, workers, threads — and keeps each transform only if the
// scenario still fails. Because
// failures can be nondeterministic (thread scheduling is not part of the
// seed), "still fails" means "failed at least once in a few attempts".

import "serialgraph/internal/engine"

// shrinkRetries is how many times a candidate is re-run before the
// shrinker concludes the transform lost the failure.
const shrinkRetries = 3

// shrinkBudget caps the total number of scenario executions one Shrink
// call may spend, so minimization never dominates the test's runtime.
const shrinkBudget = 60

type transform struct {
	name  string
	apply func(Scenario) (Scenario, bool) // ok=false when not applicable
}

var transforms = []transform{
	{"drop-fault", func(sc Scenario) (Scenario, bool) {
		if sc.Fault == nil {
			return sc, false
		}
		sc.Fault = nil
		sc.CheckpointEvery = 0
		return sc, true
	}},
	{"drop-checkpoint", func(sc Scenario) (Scenario, bool) {
		if sc.CheckpointEvery == 0 {
			return sc, false
		}
		sc.CheckpointEvery = 0
		return sc, true
	}},
	{"clear-flags", func(sc Scenario) (Scenario, bool) {
		if !sc.DisableSenderCombine && !sc.DisableHaltedSkip {
			return sc, false
		}
		sc.DisableSenderCombine = false
		sc.DisableHaltedSkip = false
		return sc, true
	}},
	{"drop-msg-budget", func(sc Scenario) (Scenario, bool) {
		if sc.MsgBudget == 0 {
			return sc, false
		}
		sc.MsgBudget = 0
		return sc, true
	}},
	{"inproc-transport", func(sc Scenario) (Scenario, bool) {
		if sc.Transport == engine.TransportInProc {
			return sc, false
		}
		sc.Transport = engine.TransportInProc
		return sc, true
	}},
	{"static-scheduler", func(sc Scenario) (Scenario, bool) {
		if sc.Scheduler == engine.SchedStatic {
			return sc, false
		}
		sc.Scheduler = engine.SchedStatic
		return sc, true
	}},
	{"hash-partitioner", func(sc Scenario) (Scenario, bool) {
		if sc.Partitioner == "hash" {
			return sc, false
		}
		sc.Partitioner = "hash"
		return sc, true
	}},
	{"halve-n", func(sc Scenario) (Scenario, bool) {
		if sc.N <= 8 {
			return sc, false
		}
		sc.N = sc.N / 2
		if sc.N < 8 {
			sc.N = 8
		}
		return sc, true
	}},
	{"parts-to-one", func(sc Scenario) (Scenario, bool) {
		if sc.PartsPerWorker <= 1 {
			return sc, false
		}
		sc.PartsPerWorker = 1
		return sc, true
	}},
	{"fewer-workers", func(sc Scenario) (Scenario, bool) {
		// Reducing workers would orphan fault-plan crash targets.
		if sc.Workers <= 1 || sc.Fault != nil {
			return sc, false
		}
		sc.Workers--
		return sc, true
	}},
	{"fewer-threads", func(sc Scenario) (Scenario, bool) {
		if sc.Threads <= 1 {
			return sc, false
		}
		sc.Threads--
		return sc, true
	}},
}

// stillFails runs the candidate up to shrinkRetries times (within the
// remaining budget) and reports whether any attempt failed, along with
// the failure and the number of runs spent.
func stillFails(sc Scenario, scratch string, budget int) (error, int) {
	tries := shrinkRetries
	if tries > budget {
		tries = budget
	}
	for i := 0; i < tries; i++ {
		if err := RunScenario(sc, scratch); err != nil {
			return err, i + 1
		}
	}
	return nil, tries
}

// Shrink greedily minimizes a failing scenario. It returns the smallest
// scenario found that still fails, together with that scenario's failure.
// If no transform preserves the failure (or the budget runs out
// immediately), the original scenario and error are returned unchanged.
func Shrink(sc Scenario, firstErr error, scratch string) (Scenario, error) {
	best, bestErr := sc, firstErr
	budget := shrinkBudget
	progress := true
	for progress && budget > 0 {
		progress = false
		for _, tr := range transforms {
			if budget <= 0 {
				break
			}
			cand, ok := tr.apply(best)
			if !ok {
				continue
			}
			err, spent := stillFails(cand, scratch, budget)
			budget -= spent
			if err != nil {
				best, bestErr = cand, err
				progress = true
			}
		}
	}
	return best, bestErr
}
