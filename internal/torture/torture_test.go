package torture

import (
	"flag"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"serialgraph/internal/engine"
)

// Replay and sizing knobs. A failing sweep prints the exact command to
// re-run just the failing case:
//
//	go test ./internal/torture -run TestTorture -torture.seed=0x...
var (
	flagSeed = flag.Uint64("torture.seed", 0,
		"replay a single case seed instead of sweeping (accepts 0x... hex)")
	flagN = flag.Int("torture.n", 0,
		"number of sampled cases (default 50 with -short, 120 otherwise)")
	flagRoot = flag.Uint64("torture.root", 0xdecaf,
		"root seed the sweep derives its case seeds from")
	flagFaulty = flag.Bool("torture.faulty", false,
		"fault-plan sweep: count only cases whose plan schedules a crash toward -torture.n (other cases are skipped, keeping seeds replayable)")
	flagTinyBudget = flag.Bool("torture.tinybudget", false,
		"force a tiny message-plane memory budget on every case (nightly bounded-memory row; replay failures with the same flag plus -torture.seed)")
	flagStreamPart = flag.Bool("torture.streampart", false,
		"force a streaming partitioner (ldg or fennel, by seed parity) on every case (nightly locality row; replay failures with the same flag plus -torture.seed)")
	flagSched = flag.Bool("torture.sched", false,
		"force the overlap scheduler on every non-BAP case (nightly forced-overlap row; replay failures with the same flag plus -torture.seed)")
)

// applySched pins every case to the overlap scheduler when -torture.sched
// is set, except under BAP, which the engine rejects (its per-worker loop
// has no barriered superstep to reorder). Flag-derived like applyTinyBudget:
// replaying a failure needs the same flag.
func applySched(sc Scenario) Scenario {
	if *flagSched && sc.Mode != engine.BAP {
		sc.Scheduler = engine.SchedOverlap
	}
	return sc
}

// applyStreamPart pins the scenario's partitioner to ldg or fennel when
// -torture.streampart is set, split by a seed bit so the sweep covers
// both. (Bit 1, not bit 0: CaseSeed forces every sweep seed odd.) Like
// applyTinyBudget, the override is flag-derived: replaying a failure
// needs the same flag.
func applyStreamPart(sc Scenario) Scenario {
	if *flagStreamPart {
		if sc.Seed&2 == 0 {
			sc.Partitioner = "ldg"
		} else {
			sc.Partitioner = "fennel"
		}
	}
	return sc
}

// applyTinyBudget pins the scenario's budget to a small sampled-looking
// value when -torture.tinybudget is set, so the whole sweep runs with
// credit windows at the floor and the BSP spill tier constantly cutting
// runs. The override is flag-derived, not seed-derived, so replaying a
// failure needs the same flag.
func applyTinyBudget(sc Scenario) Scenario {
	if *flagTinyBudget && sc.MsgBudget == 0 {
		sc.MsgBudget = 512
	}
	return sc
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (plus a little slack for runtime bookkeeping), failing the
// test if a case leaked workers.
func waitGoroutines(t *testing.T, baseline int, sc Scenario) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after scenario %v: %d goroutines, baseline %d", sc, n, baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// failCase shrinks a failing scenario and reports both the original and
// the minimized repro, with the one-line replay command.
func failCase(t *testing.T, sc Scenario, err error, scratch string) {
	t.Helper()
	t.Logf("FAIL %v\n%v", sc, err)
	t.Logf("replay: go test ./internal/torture -run TestTorture -torture.seed=%#x", sc.Seed)
	small, smallErr := Shrink(sc, err, scratch)
	t.Fatalf("torture case failed.\n  original: %v\n  shrunk:   %v\n  shrunk failure:\n%v\n  replay: go test ./internal/torture -run TestTorture -torture.seed=%#x",
		sc, small, smallErr, sc.Seed)
}

// TestTorture is the randomized sweep: it samples the configuration cube
// from a fixed root seed (so CI runs are reproducible) and applies every
// oracle to each case. With -torture.seed it replays exactly one case.
func TestTorture(t *testing.T) {
	if *flagSeed != 0 {
		sc := applySched(applyStreamPart(applyTinyBudget(Sample(*flagSeed))))
		if sc.Transport == engine.TransportTCP && !LoopbackAvailable() {
			t.Skipf("seed %#x needs TCP loopback, unavailable here", sc.Seed)
		}
		t.Logf("replaying %v", sc)
		if err := RunScenario(sc, t.TempDir()); err != nil {
			t.Fatalf("replay failed:\n%v", err)
		}
		return
	}

	n := *flagN
	if n == 0 {
		n = 120
		if testing.Short() {
			n = 50
		}
	}
	baseline := runtime.NumGoroutine()
	ran := 0
	for i := 0; ran < n; i++ {
		seed := CaseSeed(*flagRoot, i)
		sc := applySched(applyStreamPart(applyTinyBudget(Sample(seed))))
		if *flagFaulty && (sc.Fault == nil || len(sc.Fault.Crashes) == 0) {
			// The fault-plan sweep spends its case budget only on crash
			// scenarios; skipping (rather than resampling) keeps every
			// executed seed replayable with a plain -torture.seed.
			continue
		}
		if sc.Transport == engine.TransportTCP && !LoopbackAvailable() {
			// Same skip-not-resample rule for the transport dimension:
			// sandboxes without loopback skip TCP cases, so the seeds
			// that do run replay identically everywhere.
			continue
		}
		ran++
		scratch := t.TempDir()
		if err := RunScenario(sc, scratch); err != nil {
			failCase(t, sc, err, scratch)
		}
		waitGoroutines(t, baseline, sc)
	}
}

// TestTortureReplayDeterministic proves the seed fully determines the
// scenario: decoding the same case seed twice yields identical structs,
// and successive case seeds are distinct (the sweep actually moves).
func TestTortureReplayDeterministic(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		seed := CaseSeed(0xfeed, i)
		if seen[seed] {
			t.Fatalf("case seed %#x repeats within the sweep", seed)
		}
		seen[seed] = true
		a, b := Sample(seed), Sample(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Sample(%#x) is not deterministic:\n  %v\n  %v", seed, a, b)
		}
	}
}

// TestTortureCatchesBrokenProtocol is the harness self-test: with
// synchronization disabled while serializability is requested, the 1SR/C2
// oracle must flag the run, and replaying the same seed must reproduce
// the catch. Concurrency interleavings are not part of the seed, so both
// the hunt and the replay allow a few attempts.
func TestTortureCatchesBrokenProtocol(t *testing.T) {
	caught := uint64(0)
	var caughtErr error
	for i := 0; i < 40 && caught == 0; i++ {
		seed := CaseSeed(0xbad5eed, i)
		sc := SampleBroken(seed)
		if err := RunScenario(sc, t.TempDir()); err != nil && strings.Contains(err.Error(), "serializability") {
			caught, caughtErr = seed, err
		}
	}
	if caught == 0 {
		t.Fatal("broken protocol was never flagged by the serializability oracle")
	}
	t.Logf("caught broken protocol at seed %#x:\n%v", caught, caughtErr)
	t.Logf("replay: go test ./internal/torture -run TestTortureCatchesBrokenProtocol (seed %#x)", caught)

	// Reproduce from the printed seed.
	reproduced := false
	for attempt := 0; attempt < 10 && !reproduced; attempt++ {
		sc := SampleBroken(caught)
		if err := RunScenario(sc, t.TempDir()); err != nil && strings.Contains(err.Error(), "serializability") {
			reproduced = true
		}
	}
	if !reproduced {
		t.Fatalf("seed %#x did not reproduce the serializability violation on replay", caught)
	}
}

// TestShrinkSimplifies checks the minimizer on a scenario whose failure
// is deterministic (a broken protocol on a dense graph): the shrunk
// scenario must be no larger than the original and must still fail.
func TestShrinkSimplifies(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking budget is slow; covered by the long mode")
	}
	var sc Scenario
	var firstErr error
	for i := 0; i < 40; i++ {
		cand := SampleBroken(CaseSeed(0x5111, i))
		if err := RunScenario(cand, t.TempDir()); err != nil {
			sc, firstErr = cand, err
			break
		}
	}
	if firstErr == nil {
		t.Skip("no failing broken scenario found to shrink")
	}
	small, smallErr := Shrink(sc, firstErr, t.TempDir())
	if smallErr == nil {
		t.Fatal("Shrink returned a nil failure")
	}
	if small.N > sc.N || small.Threads > sc.Threads || small.Workers > sc.Workers {
		t.Fatalf("shrunk scenario grew: %v -> %v", sc, small)
	}
	if got := fmt.Sprint(small); !strings.Contains(got, "broken=true") {
		t.Fatalf("shrinking must not clear BreakProtocol: %v", got)
	}
}
