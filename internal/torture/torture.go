// Package torture is a randomized, deterministically-seeded model-checking
// harness for the whole engine stack. It samples the full configuration
// cube — graph shape, partitioner, worker/partition/thread counts,
// computation mode (BSP/Async/BAP), synchronization technique, transport
// backend (in-process simulator or real TCP loopback), combiner
// flags, topology mutations, and a random fault plan — runs a randomly
// chosen algorithm, and checks three oracle classes against the run:
//
//  1. serializability: whenever the sampled technique promises it,
//     history.CheckAll must report no C1/C2/1SR violations;
//  2. result equivalence: the distributed answer must match the
//     single-threaded references in internal/algorithms;
//  3. engine invariants: liveness (convergence within the superstep
//     budget), message/byte conservation under injected drops and
//     duplicates, rollback and checkpoint accounting, and (in the test
//     driver) no goroutine leaks.
//
// Every case is derived from a single uint64 seed, so a failure is
// reported as a one-line replay seed (`-torture.seed=`) and then greedily
// shrunk — faults removed, graph halved, workers and threads reduced —
// before the harness gives up and prints the smallest configuration that
// still fails.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/checkpoint"
	"serialgraph/internal/engine"
	"serialgraph/internal/fault"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/metrics"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// Scenario is one fully-decoded point of the configuration cube. Sampling
// produces only valid scenarios (the mode/technique/fault compatibility
// rules of engine.Config are respected by construction); the shrinker
// mutates fields directly, which is why the scenario — not the seed — is
// the unit of execution.
type Scenario struct {
	// Seed is the case seed this scenario was sampled from (also feeds the
	// graph generator and hash partitioner). Replaying the seed through
	// Sample reproduces the scenario exactly.
	Seed uint64

	Shape     string // generate.Names() family
	N         int    // approximate vertex count
	Algorithm string // "sssp", "wcc", "coloring", "pagerank", "mutate", "recolor"

	Workers        int
	PartsPerWorker int
	Threads        int
	Partitioner    string // "hash", "range", "ldg", "fennel"
	Mode           engine.Mode
	Sync           engine.Sync
	// Transport selects the wire backend (in-process simulator or real
	// TCP loopback). Orthogonal to every compatibility rule: results and
	// oracles are transport-independent by design, which is exactly what
	// sweeping it here proves.
	Transport engine.TransportKind

	DisableSenderCombine bool
	DisableHaltedSkip    bool

	// CheckpointEvery > 0 takes checkpoints (requires a barriered mode).
	CheckpointEvery int
	// Fault is the injected fault schedule; nil for a clean run.
	Fault *fault.Plan
	// Recovery selects full or confined crash recovery; drawn only for
	// plans that actually crash workers.
	Recovery engine.RecoveryMode

	// BreakProtocol runs the scenario with synchronization disabled while
	// keeping the serializability oracle armed — the self-test mode that
	// proves the oracle catches a broken protocol. Requires a Sync that
	// promises serializability.
	BreakProtocol bool

	// MsgBudget bounds message-plane memory (engine.Config.MsgMemoryBudget):
	// zero leaves it unbounded, a tiny value shrinks the credit windows to
	// their floor and forces the BSP spill tier to cut runs constantly.
	// Orthogonal to every compatibility rule — results and oracles are
	// budget-independent by design, which sweeping it here proves.
	MsgBudget int64

	// Scheduler selects the per-worker partition scheduler (static order or
	// the overlap scheduler with fork prefetch and work stealing). Results
	// and oracles are scheduler-independent by design — the scheduler only
	// reorders one worker's own partitions — which sweeping it proves.
	// Never SchedOverlap under BAP (engine.Config rejects the pairing).
	Scheduler engine.SchedulerKind

	MaxSupersteps int
}

func (sc Scenario) String() string {
	f := "none"
	if sc.Fault != nil {
		f = sc.Fault.String()
	}
	return fmt.Sprintf("seed=%#x shape=%s n=%d alg=%s workers=%d parts=%d threads=%d partitioner=%s mode=%v sync=%v transport=%v ckpt=%d fault=%s recovery=%v broken=%v budget=%d sched=%v",
		sc.Seed, sc.Shape, sc.N, sc.Algorithm, sc.Workers, sc.PartsPerWorker,
		sc.Threads, sc.Partitioner, sc.Mode, sc.Sync, sc.Transport, sc.CheckpointEvery, f, sc.Recovery, sc.BreakProtocol, sc.MsgBudget, sc.Scheduler)
}

// mix64 is the splitmix64 finalizer, the same mixer hash partitioning uses.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CaseSeed derives the i-th case seed of a sweep from its root seed. The
// result is never zero, so it can double as the "replay this one case"
// flag value.
func CaseSeed(root uint64, i int) uint64 {
	return mix64(root+uint64(i)*0x9e3779b97f4a7c15) | 1
}

// Sample decodes a case seed into a valid scenario. The decoding is pure:
// the same seed always yields the same scenario.
func Sample(seed uint64) Scenario {
	r := rand.New(rand.NewSource(int64(seed)))
	sc := Scenario{Seed: seed}

	shapes := generate.Families()
	sc.Shape = shapes[r.Intn(len(shapes))]
	sc.N = 16 + r.Intn(120)
	if sc.Shape == "complete" {
		sc.N = 8 + r.Intn(16) // dense: keep the edge count sane
	}

	algs := []string{"sssp", "wcc", "coloring", "pagerank"}
	sc.Algorithm = algs[r.Intn(len(algs))]

	sc.Workers = 1 + r.Intn(4)
	sc.PartsPerWorker = 1 + r.Intn(3)
	sc.Threads = 1 + r.Intn(4)
	parts := []string{"hash", "hash", "range", "ldg"}
	sc.Partitioner = parts[r.Intn(len(parts))]

	switch r.Intn(3) {
	case 0:
		sc.Mode = engine.BSP
		sc.Sync = engine.SyncNone // serializability requires Async (§4.1)
	case 1:
		sc.Mode = engine.BAP
		if r.Intn(2) == 0 { // BAP composes with partition locking only
			sc.Sync = engine.PartitionLock
		} else {
			sc.Sync = engine.SyncNone
		}
	default:
		sc.Mode = engine.Async
		syncs := []engine.Sync{
			engine.SyncNone, engine.TokenSingle, engine.TokenDual,
			engine.PartitionLock, engine.PartitionLock, engine.VertexLockGiraph,
		}
		sc.Sync = syncs[r.Intn(len(syncs))]
		if sc.Sync == engine.VertexLockGiraph && sc.N > 48 {
			sc.N = 12 + r.Intn(36) // the paper's 44×-slower combination
		}
	}

	sc.DisableSenderCombine = r.Intn(4) == 0
	sc.DisableHaltedSkip = r.Intn(4) == 0

	// Topology mutations require SyncNone and global barriers.
	if sc.Sync == engine.SyncNone && sc.Mode != engine.BAP && r.Intn(4) == 0 {
		sc.Algorithm = "mutate"
	}
	// The serializability oracle assumes a workload that propagates every
	// write (see runPageRank). The always-propagating PageRank variant
	// needs aggregators, which barrierless BAP lacks — so BAP+locking
	// falls back to a Combine-semantics workload instead.
	if sc.Mode == engine.BAP && sc.Sync.Serializable() && sc.Algorithm == "pagerank" {
		sc.Algorithm = "wcc"
	}

	// Faults require barrier-based failure detection.
	if sc.Mode != engine.BAP && r.Intn(2) == 0 {
		p := fault.RandomPlan(mix64(seed^0xfa017), sc.Workers)
		sc.Fault = &p
		if len(p.Crashes) > 0 && r.Intn(2) == 0 {
			sc.CheckpointEvery = 1 + r.Intn(3)
		}
		// Tolerance-terminated PageRank has no liveness guarantee on lossy
		// links: sustained drops keep perturbing the error sum above the
		// threshold forever. Monotone workloads still converge under loss,
		// so lossy plans run one of those instead.
		if p.DropRate > 0 && sc.Algorithm == "pagerank" {
			sc.Algorithm = "sssp"
		}
	}

	if sc.Mode == engine.BAP {
		sc.MaxSupersteps = 20000 // logical per-worker supersteps tick fast
	} else {
		sc.MaxSupersteps = 500
	}

	// Recovery mode is a late draw so it never perturbs the decoding of
	// older seeds' scenarios. Confined recovery is interesting only when
	// a crash can actually fire; the engine decides per-failure whether
	// confinement applies or the case degrades to a full rollback.
	if sc.Fault != nil && len(sc.Fault.Crashes) > 0 && r.Intn(2) == 0 {
		sc.Recovery = engine.RecoverConfined
	}
	// Transport is likewise a late draw, after everything older seeds
	// decoded: roughly a quarter of cases run over real TCP loopback
	// instead of the in-process simulator. Environments without loopback
	// skip these cases rather than resampling (see LoopbackAvailable and
	// the sweep in torture_test), so every executed seed stays replayable
	// with -torture.seed.
	if r.Intn(4) == 0 {
		sc.Transport = engine.TransportTCP
	}
	// Message-plane budget is the latest draw of all, after everything
	// older seeds decoded. A quarter of cases run with a deliberately tiny
	// budget — small enough that under BSP nearly every superstep spills —
	// sweeping the bounded-memory plane through the same oracle set.
	if r.Intn(4) == 0 {
		sc.MsgBudget = int64(256 + r.Intn(4096))
	}
	// Fennel joins the partitioner pool as a trailing draw (after every
	// dimension older seeds decoded), overriding a quarter of cases the
	// way the transport draw does — so pre-fennel seeds still decode
	// their shape/algorithm/fault plan identically and stay replayable.
	if r.Intn(4) == 0 {
		sc.Partitioner = "fennel"
	}
	// The overlap scheduler joins as the newest trailing draw (after every
	// dimension older seeds decoded). The draw itself is unconditional so
	// any future trailing dimension decodes identically across modes; the
	// override skips BAP, whose barrierless per-worker loop has no
	// superstep for the scheduler to reorder (engine.Config rejects it).
	if r.Intn(3) == 0 && sc.Mode != engine.BAP {
		sc.Scheduler = engine.SchedOverlap
	}
	return sc
}

// LoopbackAvailable reports (once) whether TCP loopback sockets work in
// this environment; TCP-transport scenarios are skipped when they don't.
func LoopbackAvailable() bool {
	loopbackOnce.Do(func() {
		if ln, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
			ln.Close()
			loopbackOK = true
		}
	})
	return loopbackOK
}

var (
	loopbackOnce sync.Once
	loopbackOK   bool
)

// SampleBroken decodes a seed into a deliberately broken scenario: a dense
// graph, a workload that keeps re-reading and re-writing neighbor state,
// serializability requested via PartitionLock — and the protocol then
// disabled by BreakProtocol. The serializability oracle must catch it.
func SampleBroken(seed uint64) Scenario {
	r := rand.New(rand.NewSource(int64(seed)))
	return Scenario{
		Seed:           seed,
		Shape:          "complete",
		N:              8 + r.Intn(12),
		Algorithm:      "recolor",
		Workers:        2 + r.Intn(3),
		PartsPerWorker: 1 + r.Intn(2),
		Threads:        2 + r.Intn(3),
		Partitioner:    "hash",
		Mode:           engine.Async,
		Sync:           engine.PartitionLock,
		BreakProtocol:  true,
		MaxSupersteps:  40,
	}
}

// buildGraph materializes the scenario's graph. Neighborhood-reading
// algorithms get a symmetrized graph, as the paper requires (§7.2.1).
func buildGraph(sc Scenario) *graph.Graph {
	g := generate.Family(sc.Shape, sc.N, int64(sc.Seed|1))
	switch sc.Algorithm {
	case "wcc", "coloring", "recolor":
		b := graph.NewBuilder(g.NumVertices())
		for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
			for _, v := range g.OutNeighbors(u) {
				b.AddEdge(u, v)
			}
		}
		g = b.BuildUndirected()
	}
	return g
}

// serializabilityPromised reports whether the scenario's *requested*
// technique promises serializability — the oracle arms on the request,
// not on what BreakProtocol actually runs.
func (sc Scenario) serializabilityPromised() bool { return sc.Sync.Serializable() }

// lossy reports whether the plan can silently lose data messages, which
// is outside the paper's failure model: result- and freshness-oracles are
// disarmed for lossy runs (liveness and accounting still checked).
func (sc Scenario) lossy() bool { return sc.Fault != nil && sc.Fault.DropRate > 0 }

func buildConfig(sc Scenario, ckptDir string) engine.Config {
	cfg := engine.Config{
		Workers:                    sc.Workers,
		PartitionsPerWorker:        sc.PartsPerWorker,
		ThreadsPerWorker:           sc.Threads,
		Mode:                       sc.Mode,
		Sync:                       sc.Sync,
		Transport:                  sc.Transport,
		Seed:                       sc.Seed,
		MaxSupersteps:              sc.MaxSupersteps,
		DisableSenderCombine:       sc.DisableSenderCombine,
		DisableHaltedPartitionSkip: sc.DisableHaltedSkip,
		Recovery:                   sc.Recovery,
		TrackHistory:               sc.serializabilityPromised() && !sc.lossy(),
		MsgMemoryBudget:            sc.MsgBudget,
		Scheduler:                  sc.Scheduler,
		// An external registry, so checkMetrics can re-snapshot it after the
		// run and verify Result.Metrics is a true immutable copy.
		Metrics: metrics.New(),
	}
	if sc.BreakProtocol {
		cfg.Sync = engine.SyncNone
	}
	switch sc.Partitioner {
	case "range":
		cfg.Partitioner = partition.NewRange
	case "ldg":
		cfg.Partitioner = partition.NewLDG
	case "fennel":
		cfg.Partitioner = func(g *graph.Graph, p, w int) *partition.Map {
			return partition.NewFennel(g, p, w, sc.Seed)
		}
	}
	if sc.Fault != nil {
		cfg.Fault = fault.NewInjector(*sc.Fault)
	}
	if sc.CheckpointEvery > 0 {
		cfg.CheckpointEvery = sc.CheckpointEvery
		cfg.CheckpointDir = ckptDir
	}
	return cfg
}

// RunScenario executes one scenario and returns nil if every applicable
// oracle passes, or an error naming each violated oracle. scratch is a
// directory for checkpoint files; each call uses a fresh subdirectory so
// stale checkpoints from other cases can never be restored by accident.
func RunScenario(sc Scenario, scratch string) error {
	ckptDir := ""
	if sc.CheckpointEvery > 0 {
		d, err := os.MkdirTemp(scratch, "ckpt-")
		if err != nil {
			return fmt.Errorf("scratch dir: %w", err)
		}
		ckptDir = d
	}
	g := buildGraph(sc)
	cfg := buildConfig(sc, ckptDir)
	fullCfg, err := fullComparisonConfig(sc, scratch)
	if err != nil {
		return err
	}
	switch sc.Algorithm {
	case "sssp":
		return runSSSP(sc, g, cfg, fullCfg)
	case "wcc":
		return runWCC(sc, g, cfg, fullCfg)
	case "coloring", "recolor":
		return runColoring(sc, g, cfg)
	case "pagerank":
		return runPageRank(sc, g, cfg)
	case "mutate":
		return runMutate(sc, g, cfg)
	default:
		return fmt.Errorf("torture: unknown algorithm %q", sc.Algorithm)
	}
}

// fullComparisonConfig builds the control config for the confined-vs-full
// oracle: the same scenario rerun with full rollbacks, a fresh injector,
// and its own checkpoint directory. Only unique-fixpoint workloads compare
// final values (sssp, wcc) — other algorithms return nil and rely on the
// per-run oracles alone. Lossy plans diverge legitimately (the message
// logs replay sends the chaos layer dropped on the original timeline), so
// they are excluded too.
func fullComparisonConfig(sc Scenario, scratch string) (*engine.Config, error) {
	if sc.Recovery != engine.RecoverConfined || sc.lossy() || sc.BreakProtocol {
		return nil, nil
	}
	if sc.Algorithm != "sssp" && sc.Algorithm != "wcc" {
		return nil, nil
	}
	scFull := sc
	scFull.Recovery = engine.RecoverFull
	ckptDir := ""
	if sc.CheckpointEvery > 0 {
		d, err := os.MkdirTemp(scratch, "ckpt-full-")
		if err != nil {
			return nil, fmt.Errorf("scratch dir: %w", err)
		}
		ckptDir = d
	}
	cfg := buildConfig(scFull, ckptDir)
	return &cfg, nil
}

// checkCommon applies the oracles shared by every workload: liveness,
// serializability of the recorded history, fault-injection accounting,
// message conservation, and rollback/checkpoint sanity.
func checkCommon(sc Scenario, cfg engine.Config, g *graph.Graph, res engine.Result, rec *history.Recorder) []error {
	var errs []error

	if !res.Converged && !sc.BreakProtocol {
		errs = append(errs, fmt.Errorf("liveness: did not converge within %d supersteps", sc.MaxSupersteps))
	}
	if res.Executions <= 0 {
		errs = append(errs, errors.New("invariant: zero vertex executions"))
	}
	// Credit conservation: the engine reconciles every ordered worker
	// pair's window at every barrier (granted == consumed, nothing
	// outstanding); any imbalance means bytes were acquired and never
	// released or vice versa. This must hold on every run — faulty,
	// budgeted, or not — because every drop/abort path releases.
	if res.CreditImbalances != 0 {
		errs = append(errs, fmt.Errorf("flow: %d barriers saw unbalanced credit windows", res.CreditImbalances))
	}

	if cfg.TrackHistory && rec != nil {
		if vs := history.CheckAll(rec.Txns(), g); len(vs) > 0 {
			kinds := map[string]int{}
			for _, v := range vs {
				kinds[v.Kind]++
			}
			errs = append(errs, fmt.Errorf("serializability: %d violations (C1=%d C2=%d 1SR=%d), first: %v",
				len(vs), kinds["C1"], kinds["C2"], kinds["1SR"], vs[0]))
		}
	}

	if cfg.Fault != nil {
		st := cfg.Fault.Stats()
		if st.Drops > res.Net.DroppedMessages {
			errs = append(errs, fmt.Errorf("accounting: injector dropped %d messages but transport counted only %d",
				st.Drops, res.Net.DroppedMessages))
		}
		// Conservation: every enqueued data message was either delivered or
		// counted as dropped on the wire. (Send-time drops never enter the
		// DataMessages counter, so the difference is wire loss only.)
		wireLost := res.Net.DataMessages - cfg.Fault.Delivered()
		if wireLost < 0 || wireLost > res.Net.DroppedMessages {
			errs = append(errs, fmt.Errorf("conservation: sent %d data messages, delivered %d, dropped counter %d",
				res.Net.DataMessages, cfg.Fault.Delivered(), res.Net.DroppedMessages))
		}
		if int64(res.Rollbacks) > st.CrashesFired {
			errs = append(errs, fmt.Errorf("recovery: %d rollbacks from only %d crashes", res.Rollbacks, st.CrashesFired))
		}
	}
	if res.Rollbacks > 0 && res.RecomputedSupersteps < res.Rollbacks {
		errs = append(errs, fmt.Errorf("recovery: %d rollbacks recomputed only %d supersteps", res.Rollbacks, res.RecomputedSupersteps))
	}
	if res.Rollbacks > 0 && rec != nil && rec.LastResetTick() <= 0 {
		errs = append(errs, errors.New("recovery: rollback happened but the history clock was never reset"))
	}

	if cfg.CheckpointEvery > 0 {
		if err := checkCheckpoints(cfg.CheckpointDir, res); err != nil {
			errs = append(errs, err)
		}
	}
	errs = append(errs, checkPartition(sc, cfg, g, res)...)
	errs = append(errs, checkMetrics(cfg, res)...)
	return errs
}

// checkPartition is the placement oracle: the quality report the engine
// attaches to every Result must be self-consistent (the §5.3 class
// census covers every vertex exactly once), agree with the startup
// metrics counters, and — for the capacity-bounded streaming
// partitioners — respect the (1+ε)·n/P balance guarantee.
func checkPartition(sc Scenario, cfg engine.Config, g *graph.Graph, res engine.Result) []error {
	var errs []error
	q := res.Partition
	n := g.NumVertices()
	if sum := q.PInternal + q.LocalBoundary + q.RemoteBoundary + q.MixedBoundary; sum != n {
		errs = append(errs, fmt.Errorf("partition: class census sums to %d, want %d", sum, n))
	}
	if q.BoundaryFraction < 0 || q.BoundaryFraction > 1 || q.CutFraction < 0 || q.CutFraction > 1 {
		errs = append(errs, fmt.Errorf("partition: fraction out of range: boundary=%v cut=%v", q.BoundaryFraction, q.CutFraction))
	}
	if q.ReplicationFactor != 0 && (q.ReplicationFactor < 1 || q.ReplicationFactor > float64(cfg.Workers)) {
		errs = append(errs, fmt.Errorf("partition: replication factor %v outside [1, %d]", q.ReplicationFactor, cfg.Workers))
	}
	m := res.Metrics
	if got, want := m.Get(metrics.CutEdges), int64(q.CutEdges); got != want {
		errs = append(errs, fmt.Errorf("partition: cut_edges counter = %d, report says %d", got, want))
	}
	if got, want := m.Get(metrics.BoundaryVertices), int64(n-q.PInternal); got != want {
		errs = append(errs, fmt.Errorf("partition: boundary_vertices counter = %d, report says %d", got, want))
	}
	if sc.Partitioner == "ldg" || sc.Partitioner == "fennel" {
		p := cfg.Workers * cfg.PartitionsPerWorker
		if cap_ := (partition.StreamOptions{}).Capacity(n, p); q.MaxLoad > cap_ {
			errs = append(errs, fmt.Errorf("partition: %s max load %d exceeds capacity %d (n=%d p=%d)",
				sc.Partitioner, q.MaxLoad, cap_, n, p))
		}
	}
	return errs
}

// checkMetrics reconciles the run's metrics snapshot against the
// transport's ground-truth counters and the Result fields, and verifies
// the snapshot is a true immutable copy of the (caller-owned) registry.
func checkMetrics(cfg engine.Config, res engine.Result) []error {
	var errs []error
	m := res.Metrics

	// Non-negativity: counters and phase timers only ever accrue.
	for _, id := range metrics.CounterIDs() {
		if v := m.Get(id); v < 0 {
			errs = append(errs, fmt.Errorf("metrics: counter %s = %d < 0", id.Name(), v))
		}
	}
	for _, p := range metrics.Phases() {
		if v := m.Phase(p); v < 0 {
			errs = append(errs, fmt.Errorf("metrics: phase %s = %v < 0", p.Name(), v))
		}
	}

	// Executions are counted at the same site as Result.Executions, so
	// they agree exactly even across rollbacks and discarded supersteps.
	if got, want := m.Get(metrics.Executions), res.Executions; got != want {
		errs = append(errs, fmt.Errorf("metrics: executions counter = %d, Result.Executions = %d", got, want))
	}
	if got, want := m.Get(metrics.Rollbacks), int64(res.Rollbacks); got != want {
		errs = append(errs, fmt.Errorf("metrics: rollbacks counter = %d, Result.Rollbacks = %d", got, want))
	}

	// The supersteps counter includes discarded (rolled-back) supersteps,
	// and under BAP accumulates per-worker logical supersteps, so it is
	// exact only on clean barriered runs and a lower bound otherwise.
	steps := m.Get(metrics.Supersteps)
	if res.Rollbacks == 0 && cfg.Mode != engine.BAP {
		if steps != int64(res.Supersteps) {
			errs = append(errs, fmt.Errorf("metrics: supersteps counter = %d, Result.Supersteps = %d", steps, res.Supersteps))
		}
	} else if steps < int64(res.Supersteps) {
		errs = append(errs, fmt.Errorf("metrics: supersteps counter = %d < Result.Supersteps = %d", steps, res.Supersteps))
	}

	// Chaos and crashes touch data traffic only, so the control ledger
	// must match the transport exactly on every run.
	if got, want := m.Get(metrics.CtrlMessages), res.Net.ControlMessages; got != want {
		errs = append(errs, fmt.Errorf("metrics: ctrl_messages = %d, transport ControlMessages = %d", got, want))
	}
	if got, want := m.Get(metrics.CtrlBytes), res.Net.ControlBytes; got != want {
		errs = append(errs, fmt.Errorf("metrics: ctrl_bytes = %d, transport ControlBytes = %d", got, want))
	}

	// Data-side conservation. Fault-free: every emitted batch was counted
	// by the transport, and every flushed entry was delivered. Faulty:
	// send-time drops leave DataMessages but land in DroppedMessages, and
	// duplicates inflate DataMessages, so only the upper bound survives.
	batches := m.Get(metrics.RemoteBatches)
	if cfg.Fault == nil {
		if batches != res.Net.DataMessages {
			errs = append(errs, fmt.Errorf("metrics: remote_batches = %d, transport DataMessages = %d", batches, res.Net.DataMessages))
		}
		if got, want := m.Get(metrics.RemoteBatchBytes), res.Net.DataBytes; got != want {
			errs = append(errs, fmt.Errorf("metrics: remote_batch_bytes = %d, transport DataBytes = %d", got, want))
		}
		if got, want := m.Get(metrics.RemoteEntriesDelivered), m.Get(metrics.RemoteEntriesFlushed); got != want {
			errs = append(errs, fmt.Errorf("metrics: remote_entries_delivered = %d, remote_entries_flushed = %d", got, want))
		}
	} else if suppressed := m.Get(metrics.ReplayBatchesSuppressed); batches > res.Net.DataMessages+res.Net.DroppedMessages+suppressed {
		errs = append(errs, fmt.Errorf("metrics: remote_batches = %d > DataMessages+DroppedMessages+suppressed = %d",
			batches, res.Net.DataMessages+res.Net.DroppedMessages+suppressed))
	}
	if flushed, buffered := m.Get(metrics.RemoteEntriesFlushed), m.Get(metrics.RemoteEntries); flushed > buffered {
		errs = append(errs, fmt.Errorf("metrics: remote_entries_flushed = %d > remote_entries = %d", flushed, buffered))
	}
	if got, want := m.Hist(metrics.HistBatchEntries).Count, batches; got != want {
		errs = append(errs, fmt.Errorf("metrics: batch_entries hist count = %d, remote_batches = %d", got, want))
	}

	// Spill accounting: the spill tier is armed only under BSP with a
	// budget set, so every other configuration must report zero bytes
	// spilled; and a sender only waited on credit if a window existed.
	if spilled := m.Get(metrics.BytesSpilled); spilled != 0 && (cfg.MsgMemoryBudget == 0 || cfg.Mode != engine.BSP) {
		errs = append(errs, fmt.Errorf("metrics: bytes_spilled = %d on a configuration with no spill tier (budget=%d mode=%v)",
			spilled, cfg.MsgMemoryBudget, cfg.Mode))
	}

	// Sync-technique ledgers mirror the Result's own coordination counts.
	if got, want := m.Get(metrics.ForkGrants), res.ForkSends; got != want {
		errs = append(errs, fmt.Errorf("metrics: fork_grants = %d, Result.ForkSends = %d", got, want))
	}
	if got, want := m.Get(metrics.TokenSends), res.TokenSends; got != want {
		errs = append(errs, fmt.Errorf("metrics: token_sends = %d, Result.TokenSends = %d", got, want))
	}
	if got, want := m.Hist(metrics.HistLockWait).Count, m.Get(metrics.LockAcquires); got != want {
		errs = append(errs, fmt.Errorf("metrics: lock_wait hist count = %d, lock_acquires = %d", got, want))
	}

	// Scheduler ledgers: only the overlap scheduler may prefetch or steal,
	// prefetches are a subset of lock acquires (each one counts as an
	// acquire at request time), and only partition locking has forks to
	// prefetch — under any other technique the overlap scheduler runs all
	// partitions through the deques and the prefetch counters stay zero.
	pref := m.Get(metrics.ForksPrefetched)
	if cfg.Scheduler != engine.SchedOverlap {
		if steals := m.Get(metrics.Steals); pref != 0 || steals != 0 || m.Get(metrics.OverlapComputeNs) != 0 {
			errs = append(errs, fmt.Errorf("metrics: static scheduler moved overlap counters: prefetched=%d steals=%d overlap_ns=%d",
				pref, steals, m.Get(metrics.OverlapComputeNs)))
		}
	} else {
		if pref > m.Get(metrics.LockAcquires) {
			errs = append(errs, fmt.Errorf("metrics: forks_prefetched = %d > lock_acquires = %d", pref, m.Get(metrics.LockAcquires)))
		}
		if cfg.Sync != engine.PartitionLock && (pref != 0 || m.Get(metrics.OverlapComputeNs) != 0) {
			errs = append(errs, fmt.Errorf("metrics: prefetch counters moved without partition locking: prefetched=%d overlap_ns=%d",
				pref, m.Get(metrics.OverlapComputeNs)))
		}
	}

	// Recovery-phase ledgers: the counters and Result fields are written at
	// the same sites, so they agree exactly; confined recoveries are a
	// subset of all recoveries; and with no confined recovery the restore
	// accounting is exactly "every rollback reloaded every partition" with
	// nothing replayed from message logs.
	if got, want := m.Get(metrics.ConfinedRecoveries), int64(res.ConfinedRecoveries); got != want {
		errs = append(errs, fmt.Errorf("metrics: confined_recoveries = %d, Result.ConfinedRecoveries = %d", got, want))
	}
	if got, want := m.Get(metrics.WatchdogStalls), int64(res.WatchdogStalls); got != want {
		errs = append(errs, fmt.Errorf("metrics: watchdog_stalls = %d, Result.WatchdogStalls = %d", got, want))
	}
	if res.ConfinedRecoveries > res.Rollbacks {
		errs = append(errs, fmt.Errorf("metrics: %d confined recoveries exceed %d rollbacks", res.ConfinedRecoveries, res.Rollbacks))
	}
	ppw := cfg.PartitionsPerWorker
	if ppw == 0 {
		ppw = cfg.Workers
	}
	parts := int64(cfg.Workers * ppw)
	restored := m.Get(metrics.PartitionsRestored)
	if res.ConfinedRecoveries == 0 {
		if replayed := m.Get(metrics.MessagesReplayed); replayed != 0 {
			errs = append(errs, fmt.Errorf("metrics: messages_replayed = %d without a confined recovery", replayed))
		}
		if restored != int64(res.Rollbacks)*parts {
			errs = append(errs, fmt.Errorf("metrics: partitions_restored = %d, want %d rollbacks x %d partitions",
				restored, res.Rollbacks, parts))
		}
	} else if restored > int64(res.Rollbacks)*parts || restored < int64(res.Rollbacks) {
		errs = append(errs, fmt.Errorf("metrics: partitions_restored = %d outside [%d, %d] for %d recoveries",
			restored, res.Rollbacks, int64(res.Rollbacks)*parts, res.Rollbacks))
	}

	// The run is over and the registry is ours alone, so re-snapshotting
	// it must reproduce Result.Metrics bit for bit — both that nothing
	// mutates the registry after Run returns, and that the snapshot really
	// copied (rather than aliased) the live counters.
	if cfg.Metrics != nil && !reflect.DeepEqual(cfg.Metrics.Snapshot(), res.Metrics) {
		errs = append(errs, errors.New("metrics: registry changed after Run returned, or Snapshot aliases live state"))
	}
	return errs
}

// checkCheckpoints verifies the on-disk checkpoint sequence: filenames
// parse, supersteps are unique, and the latest checkpoint stays strictly
// behind the run's final superstep — i.e. checkpoint versions were
// monotone even across rollbacks, which rewind and then re-save them.
func checkCheckpoints(dir string, res engine.Result) error {
	latest, err := checkpoint.Latest(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if latest == "" {
		return nil // run converged before the first checkpoint interval
	}
	base := filepath.Base(latest)
	numPart := strings.TrimSuffix(strings.TrimPrefix(base, "checkpoint-"), ".gob")
	s, err := strconv.Atoi(numPart)
	if err != nil {
		return fmt.Errorf("checkpoint: unparseable name %q", base)
	}
	if s >= res.Supersteps {
		return fmt.Errorf("checkpoint: latest covers superstep %d but the run only reached %d", s, res.Supersteps)
	}
	return nil
}

func joinFailures(sc Scenario, errs []error) error {
	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	if len(nonNil) == 0 {
		return nil
	}
	return fmt.Errorf("scenario %v:\n%w", sc, errors.Join(nonNil...))
}

func runSSSP(sc Scenario, g *graph.Graph, cfg engine.Config, fullCfg *engine.Config) error {
	dist, res, rec, err := engine.Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		return fmt.Errorf("scenario %v: engine error: %w", sc, err)
	}
	errs := checkCommon(sc, cfg, g, res, rec)
	if res.Converged && !sc.lossy() && !sc.BreakProtocol {
		want := algorithms.ShortestPaths(g, 0)
		for v := range want {
			if dist[v] != want[v] {
				errs = append(errs, fmt.Errorf("result: sssp dist[%d] = %v, want %v", v, dist[v], want[v]))
				break
			}
		}
	}
	if fullCfg != nil && res.Converged {
		fullDist, fullRes, _, err := engine.Run(g, algorithms.SSSP(0), *fullCfg)
		errs = append(errs, compareRecoveries(res, fullRes, err, func(v int) bool {
			return dist[v] != fullDist[v]
		}, len(dist))...)
	}
	return joinFailures(sc, errs)
}

func runWCC(sc Scenario, g *graph.Graph, cfg engine.Config, fullCfg *engine.Config) error {
	labels, res, rec, err := engine.Run(g, algorithms.WCC(), cfg)
	if err != nil {
		return fmt.Errorf("scenario %v: engine error: %w", sc, err)
	}
	errs := checkCommon(sc, cfg, g, res, rec)
	if res.Converged && !sc.lossy() && !sc.BreakProtocol {
		want := algorithms.Components(g)
		for v := range want {
			if labels[v] != want[v] {
				errs = append(errs, fmt.Errorf("result: wcc label[%d] = %d, want %d", v, labels[v], want[v]))
				break
			}
		}
	}
	if fullCfg != nil && res.Converged {
		fullLabels, fullRes, _, err := engine.Run(g, algorithms.WCC(), *fullCfg)
		errs = append(errs, compareRecoveries(res, fullRes, err, func(v int) bool {
			return labels[v] != fullLabels[v]
		}, len(labels))...)
	}
	return joinFailures(sc, errs)
}

// compareRecoveries is the confined-vs-full oracle: the same crash plan
// recovered confined (primary run) and with full rollbacks (control run)
// must both converge to identical values, and a confined recovery that
// fired must have recomputed no more partition-supersteps than the
// cluster-wide control did.
func compareRecoveries(confined, full engine.Result, fullErr error, differs func(v int) bool, n int) []error {
	var errs []error
	if fullErr != nil {
		return append(errs, fmt.Errorf("confined-vs-full: control run errored: %w", fullErr))
	}
	if !full.Converged {
		return append(errs, errors.New("confined-vs-full: control run with full rollbacks did not converge"))
	}
	for v := 0; v < n; v++ {
		if differs(v) {
			errs = append(errs, fmt.Errorf("confined-vs-full: value[%d] differs between recovery modes", v))
			break
		}
	}
	if confined.ConfinedRecoveries > 0 && full.Rollbacks > 0 &&
		confined.ConfinedRecoveries == confined.Rollbacks && full.Rollbacks == confined.Rollbacks &&
		confined.RecomputedPartitionSupersteps > full.RecomputedPartitionSupersteps {
		errs = append(errs, fmt.Errorf("confined-vs-full: confined recomputed %d partition-supersteps, full only %d",
			confined.RecomputedPartitionSupersteps, full.RecomputedPartitionSupersteps))
	}
	return errs
}

func runColoring(sc Scenario, g *graph.Graph, cfg engine.Config) error {
	prog := algorithms.Coloring()
	if sc.Algorithm == "recolor" {
		prog = algorithms.ColoringRecolor()
	}
	colors, res, rec, err := engine.Run(g, prog, cfg)
	if err != nil {
		return fmt.Errorf("scenario %v: engine error: %w", sc, err)
	}
	errs := checkCommon(sc, cfg, g, res, rec)
	// A proper coloring is promised only under a serializable technique
	// (Figures 2 and 3 show exactly how it breaks without one).
	if res.Converged && sc.serializabilityPromised() && !sc.BreakProtocol && !sc.lossy() {
		if err := algorithms.ValidateColoring(g, colors); err != nil {
			errs = append(errs, fmt.Errorf("result: %w", err))
		}
	}
	return joinFailures(sc, errs)
}

func runPageRank(sc Scenario, g *graph.Graph, cfg engine.Config) error {
	const eps = 0.05
	// The eps-thresholded PageRank assumes retained neighbor contributions
	// (AP-style replica reads), so it is only meaningful on the async
	// engines; under BSP, where messages live for exactly one superstep,
	// its partial sums lose rank mass. It also suppresses sends once a
	// vertex's delta falls under eps, so neighbor replicas go stale by
	// design — algorithm-level staleness tolerance that would trip the C1
	// oracle spuriously. Both cases run the aggregated variant instead: it
	// propagates every write every superstep and terminates via MasterHalt.
	prog := algorithms.PageRank(eps)
	aggregated := cfg.Mode == engine.BSP || cfg.TrackHistory
	if aggregated {
		prog = algorithms.PageRankAggregated(eps)
	}
	pr, res, rec, err := engine.Run(g, prog, cfg)
	if err != nil {
		return fmt.Errorf("scenario %v: engine error: %w", sc, err)
	}
	errs := checkCommon(sc, cfg, g, res, rec)
	if res.Converged && !sc.lossy() && !sc.BreakProtocol {
		// Every vertex stopped propagating only once its delta fell below
		// eps, so the residual is bounded by eps summed over in-neighbors;
		// anything beyond that bound means corrupted rank state, not
		// execution-order noise. The eps variant never re-executes a vertex
		// that receives no messages, so in-degree-0 vertices legitimately
		// keep their initial rank under ALL modes — they are excluded from
		// its residual (the aggregated variant re-executes them).
		maxIn := 0
		for v := 0; v < g.NumVertices(); v++ {
			if d := g.InDegree(graph.VertexID(v)); d > maxIn {
				maxIn = d
			}
		}
		bound := eps * float64(1+maxIn)
		if !aggregated {
			// The eps variant suppresses every delta below eps, and a vertex
			// re-executing several times can accumulate multiple suppressed
			// deltas of drift relative to what its neighbors last received —
			// interleaving-dependent slack, not corruption, so its bound
			// carries an accumulation margin.
			bound *= 4
		}
		if r := pagerankResidual(g, pr, !aggregated); r > bound {
			errs = append(errs, fmt.Errorf("result: pagerank residual %v exceeds bound %v", r, bound))
		}
	}
	return joinFailures(sc, errs)
}

// pagerankResidual mirrors algorithms.PageRankResidual, optionally
// skipping vertices with no in-neighbors (see runPageRank).
func pagerankResidual(g *graph.Graph, pr []float64, skipSources bool) float64 {
	maxRes := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		ins := g.InNeighbors(graph.VertexID(v))
		if skipSources && len(ins) == 0 {
			continue
		}
		sum := 0.0
		for _, in := range ins {
			if d := g.OutDegree(in); d > 0 {
				sum += pr[in] / float64(d)
			}
		}
		if res := abs(pr[v] - (0.15 + 0.85*sum)); res > maxRes {
			maxRes = res
		}
	}
	return maxRes
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// mutateProgram removes every out-edge of vertices with ID%5 == 0 (except
// vertex 0) at the first barrier, then floods a reachability token from
// vertex 0 — so the final values reveal exactly which topology the engine
// ran on after applying the mutations.
func mutateProgram() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name:      "torture-mutate",
		Semantics: model.Queue,
		MsgBytes:  4,
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			if ctx.Superstep() == 0 {
				if ctx.ID() != 0 && ctx.ID()%5 == 0 {
					for _, nb := range ctx.OutNeighbors() {
						ctx.RemoveEdgeRequest(ctx.ID(), nb)
					}
				}
				if ctx.ID() != 0 {
					ctx.VoteToHalt() // vertex 0 stays active to start the flood
				}
				return
			}
			if ctx.Value() == 0 && (ctx.ID() == 0 || len(msgs) > 0) {
				ctx.SetValue(1)
				ctx.SendToAllOut(1)
			}
			ctx.VoteToHalt()
		},
	}
}

// mutatedReachability is the sequential reference for mutateProgram: BFS
// from vertex 0 over the graph minus the out-edges the program removes.
func mutatedReachability(g *graph.Graph) []int32 {
	cut := func(u graph.VertexID) bool { return u != 0 && u%5 == 0 }
	want := make([]int32, g.NumVertices())
	queue := []graph.VertexID{0}
	want[0] = 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if cut(u) {
			continue // reachable, but its out-edges were removed
		}
		for _, v := range g.OutNeighbors(u) {
			if want[v] == 0 {
				want[v] = 1
				queue = append(queue, v)
			}
		}
	}
	return want
}

func runMutate(sc Scenario, g *graph.Graph, cfg engine.Config) error {
	vals, res, rec, err := engine.Run(g, mutateProgram(), cfg)
	if err != nil {
		return fmt.Errorf("scenario %v: engine error: %w", sc, err)
	}
	errs := checkCommon(sc, cfg, g, res, rec)
	if res.Converged && !sc.lossy() {
		want := mutatedReachability(g)
		for v := range want {
			if vals[v] != want[v] {
				errs = append(errs, fmt.Errorf("result: mutate reach[%d] = %d, want %d", v, vals[v], want[v]))
				break
			}
		}
	}
	return joinFailures(sc, errs)
}
