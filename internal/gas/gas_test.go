package gas

import (
	"testing"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/cluster"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
)

func testGraph() *graph.Graph {
	return generate.PowerLaw(generate.PowerLawConfig{N: 300, AvgDegree: 5, Exponent: 2.2, Seed: 21})
}

func undirected(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

func TestColoringSerializableSinglePassProper(t *testing.T) {
	g := undirected(testGraph())
	colors, res, _, err := Run(g, algorithms.ColoringGAS(), Config{
		Workers: 4, Serializable: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	// Serializable GAS coloring completes in about one execution per
	// vertex (§7.2.1: GraphLab async completes in a single iteration);
	// allow slack for scatter re-checks.
	if res.Executions > 4*int64(g.NumVertices()) {
		t.Errorf("%d executions for %d vertices: not single-pass-ish", res.Executions, g.NumVertices())
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	g := testGraph()
	want := algorithms.ShortestPaths(g, 0)
	dist, res, _, err := Run(g, algorithms.SSSPGAS(0), Config{Workers: 3, Serializable: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestWCCMatchesReference(t *testing.T) {
	g := undirected(testGraph())
	want := algorithms.Components(g)
	labels, res, _, err := Run(g, algorithms.WCCGAS(), Config{Workers: 4, Serializable: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestPageRankConverges(t *testing.T) {
	g := testGraph()
	pr, res, _, err := Run(g, algorithms.PageRankGAS(g, 0.001), Config{Workers: 3, Serializable: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if r := algorithms.PageRankResidual(g, pr); r > 0.05 {
		t.Errorf("residual %.4f", r)
	}
}

func TestNonSerializableAlsoRuns(t *testing.T) {
	// GraphLab async without locking still computes SSSP correctly
	// (monotone algorithm), just without C2 guarantees.
	g := testGraph()
	want := algorithms.ShortestPaths(g, 0)
	dist, res, _, err := Run(g, algorithms.SSSPGAS(0), Config{Workers: 3, Serializable: false})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
	if res.ForkSends != 0 {
		t.Error("fork traffic without serializability")
	}
}

func TestSerializableHistoryClean(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 120, AvgDegree: 4, Exponent: 2.2, Seed: 8}))
	_, _, rec, err := Run(g, algorithms.ColoringGAS(), Config{
		Workers: 4, Serializable: true, TrackHistory: true, Seed: 4,
		Latency: cluster.LatencyModel{Propagation: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no history")
	}
	if v := history.CheckAll(rec.Txns(), g); v != nil {
		t.Fatalf("violations: %v", v[:minInt(3, len(v))])
	}
}

func TestVertexLockGeneratesPerVertexForkTraffic(t *testing.T) {
	// The hallmark of vertex-based locking (§5.2): fork counts scale with
	// the number of vertex neighbors, far exceeding partition counts.
	g := undirected(testGraph())
	_, res, _, err := Run(g, algorithms.ColoringGAS(), Config{Workers: 4, Serializable: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForkSends < int64(g.NumVertices()) {
		t.Errorf("fork sends %d suspiciously low for %d vertices", res.ForkSends, g.NumVertices())
	}
}

func TestMaxExecutionsGuard(t *testing.T) {
	// An adversarial program that reactivates forever must hit the guard
	// and report Converged=false.
	g := generate.Ring(10)
	prog := algorithms.WCCGAS()
	prog.Apply = func(u graph.VertexID, old int32, acc int32, hasAcc bool) (int32, bool) {
		return old + 1, true // always change, always scatter
	}
	_, res, _, err := Run(g, prog, Config{Workers: 2, Serializable: true, MaxExecutions: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("runaway program reported convergence")
	}
}

func TestSingleWorker(t *testing.T) {
	g := undirected(testGraph())
	colors, res, _, err := Run(g, algorithms.ColoringGAS(), Config{Workers: 1, Serializable: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	if res.Net.DataMessages != 0 {
		t.Error("network traffic on one worker")
	}
}

func TestWithLatency(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 100, AvgDegree: 4, Exponent: 2.2, Seed: 12}))
	colors, res, _, err := Run(g, algorithms.ColoringGAS(), Config{
		Workers: 4, Serializable: true,
		Latency: cluster.LatencyModel{Propagation: 100 * time.Microsecond, BytesPerSec: 1 << 28},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce under latency")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSingleFiberStillCorrect(t *testing.T) {
	// One fiber per worker serializes local execution but cross-worker
	// concurrency remains; locking must still produce a proper coloring.
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 150, AvgDegree: 4, Exponent: 2.2, Seed: 31}))
	colors, res, _, err := Run(g, algorithms.ColoringGAS(), Config{
		Workers: 4, FibersPerWorker: 1, Serializable: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestManyFibersStress(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 6, Exponent: 2.1, Seed: 33}))
	colors, res, _, err := Run(g, algorithms.ColoringGAS(), Config{
		Workers: 2, FibersPerWorker: 256, Serializable: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestMISGreedyGASValid(t *testing.T) {
	g := undirected(testGraph())
	states, res, _, err := Run(g, algorithms.MISGreedyGAS(), Config{
		Workers: 4, Serializable: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := algorithms.ValidateMIS(g, states); err != nil {
		t.Fatal(err)
	}
}

func TestRerunWhileRunning(t *testing.T) {
	// A program whose scatter immediately re-activates the same vertices
	// exercises the running -> runningRerun -> requeue state machine; the
	// MaxExecutions guard ends it.
	g := generate.Ring(6)
	prog := algorithms.WCCGAS()
	prog.Apply = func(u graph.VertexID, old int32, acc int32, hasAcc bool) (int32, bool) {
		return old + 1, true
	}
	_, res, _, err := Run(g, prog, Config{
		Workers: 1, FibersPerWorker: 8, Serializable: false, MaxExecutions: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("self-reactivating program quiesced")
	}
	if res.Executions < 100 {
		t.Errorf("only %d executions before guard", res.Executions)
	}
}

func TestGASStatsPopulated(t *testing.T) {
	g := undirected(testGraph())
	_, res, _, err := Run(g, algorithms.ColoringGAS(), Config{Workers: 4, Serializable: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions == 0 || res.ComputeTime <= 0 {
		t.Errorf("missing stats: %+v", res)
	}
	if res.ForkSends == 0 || res.TokenSends == 0 {
		t.Errorf("missing lock traffic: forks=%d tokens=%d", res.ForkSends, res.TokenSends)
	}
	if res.Net.ControlMessages == 0 {
		t.Error("no remote control traffic across 4 workers")
	}
}
