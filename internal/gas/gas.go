// Package gas implements a GraphLab-async-style engine (§2.3): pull-based
// gather/apply/scatter vertex programs, no supersteps, lightweight fibers
// (goroutines) paired with individual vertices (§5.1), and vertex-based
// distributed locking via Chandy–Misra for serializability (§4.3). This is
// the baseline the paper compares partition-based locking against: the
// vertex-granularity forks maximize parallelism but generate per-vertex
// control traffic and allow almost no message batching.
package gas

import (
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/cluster"
	"serialgraph/internal/engine"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// Config parameterizes a GAS run.
type Config struct {
	// Workers is the simulated cluster size. Default 1.
	Workers int
	// FibersPerWorker is how many goroutine fibers execute vertices
	// concurrently per worker; GraphLab over-threads to mask communication
	// latency (§5.1). Default 64.
	FibersPerWorker int
	// Serializable enables vertex-based distributed locking. Off, the
	// engine is GraphLab async without serializability: GAS phases of
	// neighboring vertices may interleave (§2.3).
	Serializable bool
	// Latency is the simulated network model.
	Latency cluster.LatencyModel
	// BufferCap bounds the replica-update batch size. Default 512; actual
	// batches stay tiny because every fork handoff forces a flush, which
	// is precisely the paper's criticism of vertex-based locking (§5.2).
	BufferCap int
	// Seed feeds hash placement of vertices onto workers.
	Seed uint64
	// Partitioner names the placement partitioner ("" or "hash", "range",
	// "ldg", "fennel"; see partition.Kinds). GAS maps one partition per
	// worker (§5.1), so the kind only controls which worker owns each
	// vertex — locality-aware kinds shrink replica-update traffic.
	Partitioner string
	// MaxExecutions aborts runs that do not quiesce (non-serializable
	// coloring can livelock, §2.3). Default 200 × |V|.
	MaxExecutions int64
	// TrackHistory attaches a transaction recorder.
	TrackHistory bool
}

func (c Config) withDefaults(n int) Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.FibersPerWorker <= 0 {
		c.FibersPerWorker = 64
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 512
	}
	if c.MaxExecutions <= 0 {
		c.MaxExecutions = 200 * int64(n)
	}
	return c
}

// replUpdate carries one vertex's new value to a remote replica, plus the
// out-neighbors on that worker to activate (scatter).
type replUpdate[V any] struct {
	Src      graph.VertexID
	Val      V
	Ver      uint32
	Activate []graph.VertexID
}

// vertexState tracks scheduling so a vertex never executes concurrently
// with itself.
type vertexState uint8

const (
	idle vertexState = iota
	queued
	running
	runningRerun // re-activated while running; requeue on completion
)

type gworker[V comparable, M any] struct {
	r  *grunner[V, M]
	id int

	ep  *cluster.Endpoint
	mgr *chandy.Manager

	// replica holds the last delivered value of every remote vertex; local
	// vertices read the primary directly.
	replica    []V
	replicaVer []uint32
	replicaMu  sync.RWMutex

	schedMu sync.Mutex
	cond    *sync.Cond
	queue   []graph.VertexID
	state   []vertexState // indexed by global vertex ID; owned vertices only
	closed  bool

	busy atomic.Int64

	bufMu   sync.Mutex
	buffers [][]replUpdate[V] // per destination worker
}

type grunner[V comparable, M any] struct {
	g    *graph.Graph
	prog model.GASProgram[V, M]
	cfg  Config
	pm   *partition.Map
	tr   cluster.Transport

	workers []*gworker[V, M]
	// values is the primary copy of every vertex. Reads and writes go
	// through the stripe locks: without serializability, a local gather
	// may race an owner's apply (deliberately stale data, §2.3), and the
	// stripes keep that well-defined.
	values    []V
	valStripe [64]sync.Mutex

	versions []atomic.Uint32
	rec      *history.Recorder

	executions atomic.Int64
	scheduled  atomic.Int64
	maxConc    atomic.Int64
	conc       atomic.Int64
}

// Run executes the GAS program until global quiescence (no active vertices,
// no in-flight messages) and returns the final values.
func Run[V comparable, M any](g *graph.Graph, prog model.GASProgram[V, M], cfg Config) ([]V, engine.Result, *history.Recorder, error) {
	cfg = cfg.withDefaults(g.NumVertices())
	r := &grunner[V, M]{g: g, prog: prog, cfg: cfg}
	n := g.NumVertices()
	// One "partition" per worker: GraphLab async is not partition aware
	// (§5.1); the map only records vertex placement.
	pm, err := partition.New(cfg.Partitioner, g, cfg.Workers, cfg.Workers, cfg.Seed)
	if err != nil {
		return nil, engine.Result{}, nil, err
	}
	r.pm = pm
	quality := partition.Report(g, r.pm)

	r.values = make([]V, n)
	for v := 0; v < n; v++ {
		r.values[v] = prog.Init(graph.VertexID(v), g)
	}
	if cfg.TrackHistory {
		r.versions = make([]atomic.Uint32, n)
		r.rec = history.NewRecorder()
	}

	r.tr = cluster.New(cfg.Workers, cfg.Latency)
	defer r.tr.Close()

	for w := 0; w < cfg.Workers; w++ {
		r.workers = append(r.workers, newGWorker(r, w))
	}

	// Initially every vertex is active (§7.2.4 and GraphLab's semantics).
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		r.workers[r.pm.WorkerOf(u)].schedule(u)
	}

	var wg sync.WaitGroup
	for _, w := range r.workers {
		for f := 0; f < cfg.FibersPerWorker; f++ {
			wg.Add(1)
			go func(w *gworker[V, M]) {
				defer wg.Done()
				w.fiberLoop()
			}(w)
		}
	}

	start := time.Now()
	res := engine.Result{Partitions: cfg.Workers, Partition: quality}
	res.Converged = r.awaitQuiescence()
	res.ComputeTime = time.Since(start)

	for _, w := range r.workers {
		w.close()
	}
	wg.Wait()

	res.Net = r.tr.Stats().Load()
	res.Executions = r.executions.Load()
	res.MaxConcurrency = r.maxConc.Load()
	for _, w := range r.workers {
		if w.mgr != nil {
			st := w.mgr.Stats()
			res.ForkSends += st.ForkSends
			res.TokenSends += st.TokenSends
		}
	}
	return r.values, res, r.rec, nil
}

func (r *grunner[V, M]) loadValue(u graph.VertexID) V {
	lk := &r.valStripe[u%64]
	lk.Lock()
	v := r.values[u]
	lk.Unlock()
	return v
}

func (r *grunner[V, M]) storeValue(u graph.VertexID, v V) {
	lk := &r.valStripe[u%64]
	lk.Lock()
	r.values[u] = v
	lk.Unlock()
}

// awaitQuiescence polls until no vertex is queued or running and the
// network is idle, confirmed by two consecutive observations with an
// unchanged execution counter. Returns false if MaxExecutions was exceeded.
func (r *grunner[V, M]) awaitQuiescence() bool {
	var lastExec, lastSched int64 = -1, -1
	for {
		if r.executions.Load() > r.cfg.MaxExecutions {
			return false
		}
		idleNow := r.tr.InFlight() == 0
		if idleNow {
			for _, w := range r.workers {
				if !w.idle() {
					idleNow = false
					// If the worker is blocked only on buffered updates,
					// release them.
					if w.busy.Load() == 0 {
						w.flushAll()
					}
					break
				}
			}
		}
		if idleNow {
			e, s := r.executions.Load(), r.scheduled.Load()
			if e == lastExec && s == lastSched {
				return true
			}
			lastExec, lastSched = e, s
		} else {
			lastExec, lastSched = -1, -1
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func newGWorker[V comparable, M any](r *grunner[V, M], id int) *gworker[V, M] {
	n := r.g.NumVertices()
	w := &gworker[V, M]{
		r: r, id: id,
		replica:    make([]V, n),
		replicaVer: make([]uint32, n),
		state:      make([]vertexState, n),
		buffers:    make([][]replUpdate[V], r.cfg.Workers),
	}
	copy(w.replica, r.values) // replicas start at the common Init values
	w.cond = sync.NewCond(&w.schedMu)
	w.ep = cluster.NewEndpoint(r.tr, cluster.WorkerID(id), w.onData, w.onCtrl)
	if r.cfg.Serializable {
		ownerOf := func(p chandy.PhilID) int { return r.pm.WorkerOf(graph.VertexID(p)) }
		sendCtrl := func(toWorker int, c chandy.Ctrl) { w.ep.SendCtrl(cluster.WorkerID(toWorker), c) }
		preHandoff := func(toWorker int) { w.flushTo(toWorker) }
		w.mgr = chandy.NewManager(id, ownerOf, sendCtrl, preHandoff)
		for v := 0; v < n; v++ {
			u := graph.VertexID(v)
			if r.pm.WorkerOf(u) != id {
				continue
			}
			var nbs []chandy.PhilID
			r.g.Neighbors(u, func(x graph.VertexID) { nbs = append(nbs, chandy.PhilID(x)) })
			w.mgr.AddPhil(chandy.PhilID(u), nbs)
		}
	}
	return w
}

// schedule marks u runnable on its owner worker (u must be owned by w).
func (w *gworker[V, M]) schedule(u graph.VertexID) {
	w.schedMu.Lock()
	switch w.state[u] {
	case idle:
		w.state[u] = queued
		w.queue = append(w.queue, u)
		w.r.scheduled.Add(1)
		w.cond.Signal()
	case running:
		w.state[u] = runningRerun
		w.r.scheduled.Add(1)
	}
	w.schedMu.Unlock()
}

func (w *gworker[V, M]) idle() bool {
	if w.busy.Load() != 0 {
		return false
	}
	w.schedMu.Lock()
	empty := len(w.queue) == 0
	w.schedMu.Unlock()
	if !empty {
		return false
	}
	w.bufMu.Lock()
	defer w.bufMu.Unlock()
	for _, b := range w.buffers {
		if len(b) > 0 {
			return false
		}
	}
	return true
}

// flushAll drains every buffered replica-update batch; the master calls it
// when the cluster has otherwise gone quiet so buffered activations cannot
// strand.
func (w *gworker[V, M]) flushAll() {
	for dest := range w.buffers {
		w.flushTo(dest)
	}
}

func (w *gworker[V, M]) close() {
	w.schedMu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.schedMu.Unlock()
}

// fiberLoop is one fiber: pop an active vertex, lock, execute GAS, unlock.
func (w *gworker[V, M]) fiberLoop() {
	for {
		w.schedMu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if w.closed {
			w.schedMu.Unlock()
			return
		}
		u := w.queue[0]
		w.queue = w.queue[1:]
		w.state[u] = running
		w.busy.Add(1)
		w.schedMu.Unlock()

		w.executeVertex(u)

		w.schedMu.Lock()
		rerun := w.state[u] == runningRerun
		w.state[u] = idle
		w.busy.Add(-1)
		w.schedMu.Unlock()
		if rerun {
			w.schedule(u)
		}
	}
}

// executeVertex runs one gather/apply/scatter transaction on u.
func (w *gworker[V, M]) executeVertex(u graph.VertexID) {
	r := w.r
	if w.mgr != nil {
		if !w.mgr.Acquire(chandy.PhilID(u)) {
			return // manager aborted; the GAS engine has no recovery path
		}
		defer w.mgr.Release(chandy.PhilID(u))
	}
	r.executions.Add(1)
	c := r.conc.Add(1)
	for {
		m := r.maxConc.Load()
		if c <= m || r.maxConc.CompareAndSwap(m, c) {
			break
		}
	}
	defer r.conc.Add(-1)

	var txn history.Txn
	if r.rec != nil {
		txn.Vertex = u
		txn.Start = r.rec.Tick()
		txn.ReadVer = r.versions[u].Load()
	}

	// Gather: pull each in-neighbor's current value (local primaries
	// directly, remote from the replica table).
	var acc M
	hasAcc := false
	in := r.g.InNeighbors(u)
	for _, x := range in {
		var xv V
		var ver uint32
		if r.pm.WorkerOf(x) == w.id {
			xv = r.loadValue(x)
			if r.rec != nil {
				ver = r.versions[x].Load()
			}
		} else {
			w.replicaMu.RLock()
			xv = w.replica[x]
			ver = w.replicaVer[x]
			w.replicaMu.RUnlock()
		}
		if r.rec != nil {
			txn.Reads = append(txn.Reads, history.Read{
				Src: x, SlotVer: ver, PrimaryVer: r.versions[x].Load(),
			})
		}
		m := r.prog.Gather(u, x, xv, 1)
		if hasAcc {
			acc = r.prog.Sum(acc, m)
		} else {
			acc = m
			hasAcc = true
		}
	}

	// Apply.
	old := r.loadValue(u)
	newV, activate := r.prog.Apply(u, old, acc, hasAcc)
	changed := newV != old
	var ver uint32
	if changed {
		r.storeValue(u, newV)
		if r.versions != nil {
			ver = r.versions[u].Add(1)
		}
	}

	if r.rec != nil {
		txn.End = r.rec.Tick()
		txn.Wrote = changed
		txn.WriteVer = ver
		r.rec.Append(txn)
	}

	// Scatter: push the new value to remote replicas of u and activate
	// out-neighbors when requested.
	if !changed && !activate {
		return
	}
	var perWorker map[int][]graph.VertexID
	for _, x := range r.g.OutNeighbors(u) {
		ow := r.pm.WorkerOf(x)
		if ow == w.id {
			if activate {
				w.schedule(x)
			}
			continue
		}
		if perWorker == nil {
			perWorker = make(map[int][]graph.VertexID)
		}
		if activate {
			perWorker[ow] = append(perWorker[ow], x)
		} else if _, ok := perWorker[ow]; !ok {
			perWorker[ow] = nil
		}
	}
	if changed || activate {
		val := r.loadValue(u)
		for ow, acts := range perWorker {
			w.bufferUpdate(ow, replUpdate[V]{Src: u, Val: val, Ver: ver, Activate: acts})
		}
	}
}

func (w *gworker[V, M]) bufferUpdate(dest int, up replUpdate[V]) {
	w.bufMu.Lock()
	w.buffers[dest] = append(w.buffers[dest], up)
	full := len(w.buffers[dest]) >= w.r.cfg.BufferCap
	w.bufMu.Unlock()
	// Without locking there are no fork handoffs to trigger flushes:
	// GraphLab async sends updates as they happen. With locking, batches
	// accumulate until the next handoff to that worker (§6.3).
	if full || !w.r.cfg.Serializable {
		w.flushTo(dest)
	}
}

func (w *gworker[V, M]) flushTo(dest int) {
	w.bufMu.Lock()
	batch := w.buffers[dest]
	w.buffers[dest] = nil
	w.bufMu.Unlock()
	if len(batch) == 0 {
		return
	}
	bytes := cluster.BatchHeaderBytes
	for _, up := range batch {
		bytes += cluster.EntryHeaderBytes + w.r.prog.ValBytes + 4*len(up.Activate)
	}
	w.ep.SendData(cluster.WorkerID(dest), batch, bytes)
}

func (w *gworker[V, M]) onData(from cluster.WorkerID, payload any) {
	batch := payload.([]replUpdate[V])
	w.replicaMu.Lock()
	for _, up := range batch {
		w.replica[up.Src] = up.Val
		w.replicaVer[up.Src] = up.Ver
	}
	w.replicaMu.Unlock()
	for _, up := range batch {
		for _, x := range up.Activate {
			w.schedule(x)
		}
	}
}

func (w *gworker[V, M]) onCtrl(from cluster.WorkerID, payload any) {
	w.mgr.HandleCtrl(payload.(chandy.Ctrl))
}
