package dist

import (
	"fmt"
	"net"

	"serialgraph/internal/cluster"
	"serialgraph/internal/model"
	"serialgraph/internal/wire"
)

// Coordinate runs the master side of a distributed job: accept the
// worker processes, hand each its job spec, drive the superstep loop,
// and collect the final vertex values. It is the engine's master loop
// with every shared-memory touch replaced by a control frame, in the
// same order — merge aggregators, count halt votes and pending
// messages, check convergence, then MasterHalt on the merged window —
// so the halt decision is bit-for-bit the one an in-process run makes.
//
// ln must already be listening; job.Workers processes must eventually
// dial it. Worker IDs are assigned in accept order, which is
// deterministic in effect: the BSP results do not depend on which
// process got which ID (same partition map, same merge order by ID).
func Coordinate[V, M any](ln net.Listener, job Job, prog model.Program[V, M], numVertices int) ([]V, Result, error) {
	var res Result
	nw := int(job.Workers)
	if nw < 1 {
		return nil, res, fmt.Errorf("dist: job needs at least 1 worker, got %d", nw)
	}

	// Admission: one Hello per worker process, carrying its data-plane
	// address. Accept order assigns IDs.
	conns := make([]*frameConn, nw)
	addrs := make([]string, nw)
	defer func() {
		for _, fc := range conns {
			if fc != nil {
				fc.close()
			}
		}
	}()
	for i := 0; i < nw; i++ {
		c, err := ln.Accept()
		if err != nil {
			return nil, res, fmt.Errorf("dist: accept worker %d: %w", i, err)
		}
		fc := newFrameConn(c)
		hf, err := fc.expect(cluster.FrameHello)
		if err != nil {
			return nil, res, fmt.Errorf("dist: worker %d hello: %w", i, err)
		}
		h, err := wire.DecodeHello(hf.Payload)
		if err != nil {
			return nil, res, fmt.Errorf("dist: worker %d hello: %w", i, err)
		}
		if h.Version != cluster.ProtocolVersion {
			return nil, res, fmt.Errorf("dist: worker %d speaks protocol %d, want %d", i, h.Version, cluster.ProtocolVersion)
		}
		conns[i] = fc
		addrs[i] = h.Addr
	}

	// Job dispatch: identical spec to everyone, differing only in You.
	for i, fc := range conns {
		j := job
		j.You = int32(i)
		j.Peers = addrs
		if err := fc.writeFlush(&cluster.Frame{Type: cluster.FrameJob, To: cluster.WorkerID(i),
			Payload: wire.AppendJob(nil, j)}); err != nil {
			return nil, res, fmt.Errorf("dist: send job to %d: %w", i, err)
		}
	}

	// Superstep loop. aggPrev carries the previous superstep's merged
	// aggregators into the next StepStart; windowAgg mirrors the
	// engine's MasterHalt window (width 1 under BSP/SyncNone).
	aggPrev := map[string]float64{}
	windowAgg := map[string]float64{}
	// Workers report cumulative socket bytes each superstep; the latest
	// report per worker, summed at the end, is the run total.
	wireTotals := make([]int64, nw)
	maxS := int(job.MaxSupersteps)
	for s := 0; s < maxS; s++ {
		keys, vals := sortedAggs(aggPrev)
		start := wire.AppendStepStart(nil, wire.StepStart{Superstep: int32(s), AggKeys: keys, AggVals: vals})
		for i, fc := range conns {
			if err := fc.writeFlush(&cluster.Frame{Type: cluster.FrameStepStart, To: cluster.WorkerID(i),
				Payload: start}); err != nil {
				return nil, res, fmt.Errorf("dist: step start to %d: %w", i, err)
			}
		}

		var unhalted, pending int64
		merged := map[string]float64{}
		for i, fc := range conns {
			df, err := fc.expect(cluster.FrameStepDone)
			if err != nil {
				return nil, res, fmt.Errorf("dist: worker %d superstep %d: %w", i, s, err)
			}
			done, err := wire.DecodeStepDone(df.Payload)
			if err != nil {
				return nil, res, fmt.Errorf("dist: worker %d step done: %w", i, err)
			}
			if int(done.Superstep) != s {
				return nil, res, fmt.Errorf("dist: worker %d reported superstep %d during %d", i, done.Superstep, s)
			}
			unhalted += done.Unhalted
			pending += done.Pending
			res.Executions += done.Executions
			res.DataBatches += done.SentBatches
			res.DataBytes += done.SentBytes
			wireTotals[i] = done.WireBytes
			for j, k := range done.AggKeys {
				merged[k] += done.AggVals[j]
			}
		}
		res.Supersteps = s + 1

		if unhalted == 0 && pending == 0 {
			res.Converged = true
			break
		}
		if prog.MasterHalt != nil {
			for k, v := range merged {
				windowAgg[k] += v
			}
			if prog.MasterHalt(s, windowAgg) {
				res.Converged = true
				break
			}
			windowAgg = map[string]float64{}
		}
		aggPrev = merged
	}

	// Finish and value collection: each worker ships its owned pairs.
	fin := wire.AppendFinish(nil, wire.Finish{Converged: res.Converged, Supersteps: int32(res.Supersteps)})
	for i, fc := range conns {
		if err := fc.writeFlush(&cluster.Frame{Type: cluster.FrameFinish, To: cluster.WorkerID(i),
			Payload: fin}); err != nil {
			return nil, res, fmt.Errorf("dist: finish to %d: %w", i, err)
		}
	}
	values := make([]V, numVertices)
	codec := wire.AutoMsgCodec[V]()
	for i, fc := range conns {
		vf, err := fc.expect(cluster.FrameValues)
		if err != nil {
			return nil, res, fmt.Errorf("dist: worker %d values: %w", i, err)
		}
		pairs, err := wire.DecodeValues(codec, vf.Payload)
		if err != nil {
			return nil, res, fmt.Errorf("dist: worker %d values: %w", i, err)
		}
		for _, p := range pairs {
			if int(p.ID) < 0 || int(p.ID) >= numVertices {
				return nil, res, fmt.Errorf("dist: worker %d reported out-of-range vertex %d", i, p.ID)
			}
			values[p.ID] = p.Val
		}
	}
	for _, wb := range wireTotals {
		res.WireBytes += wb
	}
	return values, res, nil
}
