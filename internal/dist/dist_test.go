package dist_test

// Multi-process conformance: a coordinator plus K workers over real TCP
// loopback must produce results bitwise identical to the in-process
// engine under BSP/SyncNone with the same worker count, partitioning,
// and seed — same values, same superstep count, same execution count,
// same convergence verdict. The workers here are goroutines rather than
// OS processes, but every byte between them crosses real sockets and no
// memory is shared through the dist package's state; the process-level
// version of the same run is exercised by cmd/graphrun's acceptance
// test.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/dist"
	"serialgraph/internal/engine"
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

func requireLoopback(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	ln.Close()
}

// baseJob is the shared run spec: a deterministic 80-vertex power-law
// graph, 3 workers x 2 partitions, generator and partitioner seeded
// identically on every process.
func baseJob() dist.Job {
	return dist.Job{
		Family:         "powerlaw",
		N:              80,
		Workers:        3,
		PartsPerWorker: 2,
		MaxSupersteps:  200,
		Seed:           41,
	}
}

// runDist executes one distributed job entirely over loopback TCP:
// worker goroutines join the coordinator exactly as worker processes
// would.
func runDist[V, M any](t *testing.T, job dist.Job, prog model.Program[V, M], nVerts int) ([]V, dist.Result) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	errs := make([]error, job.Workers)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = dist.Work(ln.Addr().String())
		}(i)
	}
	vals, res, err := dist.Coordinate(ln, job, prog, nVerts)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return vals, res
}

// runEngine is the in-process reference: same graph, same partitioning
// knobs, BSP with no synchronization technique.
func runEngine[V, M any](t *testing.T, job dist.Job, prog model.Program[V, M], g *graph.Graph) ([]V, engine.Result) {
	t.Helper()
	cfg := engine.Config{
		Workers:             int(job.Workers),
		PartitionsPerWorker: int(job.PartsPerWorker),
		ThreadsPerWorker:    2,
		Mode:                engine.BSP,
		Sync:                engine.SyncNone,
		Seed:                job.Seed,
		MaxSupersteps:       int(job.MaxSupersteps),
	}
	if job.Partitioner != "" {
		cfg.Partitioner = func(g *graph.Graph, p, w int) *partition.Map {
			m, err := partition.New(job.Partitioner, g, p, w, job.Seed)
			if err != nil {
				t.Fatalf("partitioner: %v", err)
			}
			return m
		}
	}
	vals, res, _, err := engine.Run(g, prog, cfg)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	return vals, res
}

// conform runs the same program both ways and demands bitwise agreement.
func conform[V comparable, M any](t *testing.T, job dist.Job, prog model.Program[V, M]) {
	t.Helper()
	g, err := dist.BuildGraph(job)
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	gotVals, gotRes := runDist(t, job, prog, g.NumVertices())
	wantVals, wantRes := runEngine(t, job, prog, g)

	if gotRes.Converged != wantRes.Converged {
		t.Errorf("converged: dist %v, engine %v", gotRes.Converged, wantRes.Converged)
	}
	if gotRes.Supersteps != wantRes.Supersteps {
		t.Errorf("supersteps: dist %d, engine %d", gotRes.Supersteps, wantRes.Supersteps)
	}
	if gotRes.Executions != wantRes.Executions {
		t.Errorf("executions: dist %d, engine %d", gotRes.Executions, wantRes.Executions)
	}
	if len(gotVals) != len(wantVals) {
		t.Fatalf("value count: dist %d, engine %d", len(gotVals), len(wantVals))
	}
	for v := range wantVals {
		if gotVals[v] != wantVals[v] {
			t.Fatalf("value[%d]: dist %v, engine %v", v, gotVals[v], wantVals[v])
		}
	}
	if job.Workers > 1 {
		if gotRes.DataBatches == 0 || gotRes.DataBytes == 0 {
			t.Errorf("multi-worker run moved no data batches (%d batches, %d bytes)",
				gotRes.DataBatches, gotRes.DataBytes)
		}
		if gotRes.WireBytes == 0 {
			t.Errorf("multi-worker run reported zero wire bytes")
		}
		if gotRes.WireBytes < gotRes.DataBytes/8 {
			t.Errorf("wire bytes %d implausibly small vs simulated %d",
				gotRes.WireBytes, gotRes.DataBytes)
		}
	}
}

func TestDistMatchesEngineSSSP(t *testing.T) {
	requireLoopback(t)
	job := baseJob()
	job.Alg = "sssp"
	job.Source = 0
	conform(t, job, algorithms.SSSP(0))

	// And against the serial oracle: the converged distances must be the
	// true shortest paths.
	g, _ := dist.BuildGraph(job)
	got, res := runDist(t, job, algorithms.SSSP(0), g.NumVertices())
	if !res.Converged {
		t.Fatal("sssp did not converge")
	}
	want := algorithms.ShortestPaths(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestDistMatchesEnginePageRank(t *testing.T) {
	requireLoopback(t)
	job := baseJob()
	job.Alg = "pagerank"
	job.Eps = 0.01
	conform(t, job, algorithms.PageRank(0.01))
}

// A named streaming partitioner must survive the wire: every worker
// process rebuilds the identical LDG/Fennel map from the Job spec, and
// the run still matches the in-process engine bitwise.
func TestDistStreamingPartitioners(t *testing.T) {
	requireLoopback(t)
	for _, kind := range []string{"ldg", "fennel"} {
		t.Run(kind, func(t *testing.T) {
			job := baseJob()
			job.Alg = "sssp"
			job.Source = 0
			job.Partitioner = kind
			conform(t, job, algorithms.SSSP(0))
		})
	}
}

func TestDistMatchesEngineColoring(t *testing.T) {
	requireLoopback(t)
	job := baseJob()
	job.Alg = "coloring"
	job.Undirected = true
	// BSP coloring can oscillate; bound the run and compare the exact
	// (possibly non-converged) deterministic state.
	job.MaxSupersteps = 30
	conform(t, job, algorithms.Coloring())
}

func TestDistMatchesEngineWCC(t *testing.T) {
	requireLoopback(t)
	job := baseJob()
	job.Alg = "wcc"
	job.Undirected = true
	conform(t, job, algorithms.WCC())
}

func TestDistSingleWorker(t *testing.T) {
	requireLoopback(t)
	job := baseJob()
	job.Alg = "sssp"
	job.Workers = 1
	job.PartsPerWorker = 4
	conform(t, job, algorithms.SSSP(0))
}

func TestDistAggregatedHalt(t *testing.T) {
	// The aggregated PageRank variant never votes to halt: termination
	// depends entirely on per-vertex Aggregate contributions flowing up
	// in StepDone, merging on the coordinator, feeding MasterHalt, and
	// the merged values flowing back down in StepStart for Aggregated().
	// A converged, engine-identical run proves the whole aggregator loop.
	requireLoopback(t)
	job := baseJob()
	job.Alg = "pagerank-agg"
	job.Eps = 0.05
	conform(t, job, algorithms.PageRankAggregated(job.Eps))

	g, _ := dist.BuildGraph(job)
	_, res := runDist(t, job, algorithms.PageRankAggregated(job.Eps), g.NumVertices())
	if !res.Converged {
		t.Fatalf("aggregated pagerank did not converge in %d supersteps", res.Supersteps)
	}
}

func TestDistRejectsUnknownAlg(t *testing.T) {
	requireLoopback(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	job := baseJob()
	job.Alg = "no-such-alg"
	job.Workers = 1

	done := make(chan error, 1)
	go func() { done <- dist.Work(ln.Addr().String()) }()
	_, _, err = dist.Coordinate(ln, job, algorithms.SSSP(0), 80)
	if err == nil {
		t.Error("coordinator succeeded against a worker that rejected the job")
	}
	if werr := <-done; werr == nil {
		t.Error("worker accepted unknown algorithm")
	} else if want := fmt.Sprintf("unknown algorithm %q", job.Alg); !strings.Contains(werr.Error(), want) {
		t.Errorf("worker error %q does not mention %q", werr, want)
	}
}
