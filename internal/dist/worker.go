package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/cluster"
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
	"serialgraph/internal/msgstore"
	"serialgraph/internal/partition"
	"serialgraph/internal/wire"
)

// bufferCap matches the engine's default Config.BufferCap so distributed
// and in-process runs batch identically (same batch counts and simulated
// bytes in the ledgers the conformance tests reconcile).
const bufferCap = 512

// Work joins a coordinator as one worker process: dial, introduce
// ourselves, receive the job, run it, ship our values back. It blocks
// until the run finishes and returns the first error that broke it.
func Work(joinAddr string) error {
	// The data-plane listener must exist before Hello so its address can
	// ride along.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("dist: data listen: %w", err)
	}
	defer ln.Close()

	conn, err := cluster.DialRetry(joinAddr, DialTimeout)
	if err != nil {
		return fmt.Errorf("dist: join %s: %w", joinAddr, err)
	}
	ctrl := newFrameConn(conn)
	defer ctrl.close()

	hello := wire.Hello{Version: cluster.ProtocolVersion, Worker: -1, Addr: ln.Addr().String()}
	if err := ctrl.writeFlush(&cluster.Frame{Type: cluster.FrameHello, Payload: wire.AppendHello(nil, hello)}); err != nil {
		return fmt.Errorf("dist: send hello: %w", err)
	}
	jf, err := ctrl.expect(cluster.FrameJob)
	if err != nil {
		return fmt.Errorf("dist: read job: %w", err)
	}
	job, err := wire.DecodeJob(jf.Payload)
	if err != nil {
		return fmt.Errorf("dist: decode job: %w", err)
	}

	switch job.Alg {
	case "sssp":
		return runWorker(ctrl, ln, job, algorithms.SSSP(graph.VertexID(job.Source)))
	case "pagerank":
		return runWorker(ctrl, ln, job, algorithms.PageRank(job.Eps))
	case "pagerank-agg":
		return runWorker(ctrl, ln, job, algorithms.PageRankAggregated(job.Eps))
	case "coloring":
		return runWorker(ctrl, ln, job, algorithms.Coloring())
	case "wcc":
		return runWorker(ctrl, ln, job, algorithms.WCC())
	}
	return fmt.Errorf("dist: unknown algorithm %q", job.Alg)
}

// peerSet is one worker's data-plane connections: out[j] carries frames
// to worker j (we dialed), in[j] carries frames from worker j (they
// dialed us). Each conn has exactly one writer and one reader goroutine.
type peerSet struct {
	me  int
	out []*frameConn
	in  []*frameConn
}

// connectPeers establishes the full data-plane mesh. Outbound dials
// retry, so worker processes may start in any order; inbound conns are
// routed by the Hello preamble the dialer writes first.
func connectPeers(ln net.Listener, me, workers int, addrs []string) (*peerSet, error) {
	ps := &peerSet{me: me, out: make([]*frameConn, workers), in: make([]*frameConn, workers)}
	var dialErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < workers; j++ {
			if j == me {
				continue
			}
			c, err := cluster.DialRetry(addrs[j], DialTimeout)
			if err != nil {
				dialErr = fmt.Errorf("dist: dial peer %d: %w", j, err)
				return
			}
			fc := newFrameConn(c)
			h := wire.Hello{Version: cluster.ProtocolVersion, Worker: int32(me)}
			if err := fc.writeFlush(&cluster.Frame{Type: cluster.FrameHello, Payload: wire.AppendHello(nil, h)}); err != nil {
				dialErr = fmt.Errorf("dist: hello peer %d: %w", j, err)
				return
			}
			ps.out[j] = fc
		}
	}()
	// Bound the whole mesh setup: a peer that never dials in must not
	// wedge Accept forever.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(DialTimeout))
		defer tl.SetDeadline(time.Time{})
	}
	for accepted := 0; accepted < workers-1; accepted++ {
		c, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: accept peer: %w", err)
		}
		fc := newFrameConn(c)
		hf, err := fc.expect(cluster.FrameHello)
		if err != nil {
			return nil, fmt.Errorf("dist: peer hello: %w", err)
		}
		h, err := wire.DecodeHello(hf.Payload)
		if err != nil {
			return nil, fmt.Errorf("dist: peer hello: %w", err)
		}
		if h.Version != cluster.ProtocolVersion {
			return nil, fmt.Errorf("dist: peer protocol version %d, want %d", h.Version, cluster.ProtocolVersion)
		}
		if h.Worker < 0 || int(h.Worker) >= workers || int(h.Worker) == me || ps.in[h.Worker] != nil {
			return nil, fmt.Errorf("dist: bad peer id %d in hello", h.Worker)
		}
		ps.in[h.Worker] = fc
	}
	wg.Wait()
	if dialErr != nil {
		return nil, dialErr
	}
	return ps, nil
}

func (ps *peerSet) close() {
	for _, fc := range ps.out {
		if fc != nil {
			fc.close()
		}
	}
	for _, fc := range ps.in {
		if fc != nil {
			fc.close()
		}
	}
}

// distCtx implements model.Context for the distributed BSP driver. The
// semantics mirror the engine's vctx exactly: Send routes by the shared
// partition map, VoteToHalt is re-armed on every execution, aggregates
// accumulate locally and surface merged next superstep.
type distCtx[V, M any] struct {
	w         *workerRun[V, M]
	id        graph.VertexID
	superstep int
	votedHalt bool
}

func (c *distCtx[V, M]) Superstep() int                 { return c.superstep }
func (c *distCtx[V, M]) ID() graph.VertexID             { return c.id }
func (c *distCtx[V, M]) Value() V                       { return c.w.values[c.id] }
func (c *distCtx[V, M]) SetValue(v V)                   { c.w.values[c.id] = v }
func (c *distCtx[V, M]) OutNeighbors() []graph.VertexID { return c.w.g.OutNeighbors(c.id) }
func (c *distCtx[V, M]) OutWeights() []float64          { return c.w.g.OutWeights(c.id) }
func (c *distCtx[V, M]) VoteToHalt()                    { c.votedHalt = true }
func (c *distCtx[V, M]) NumVertices() int               { return c.w.g.NumVertices() }

func (c *distCtx[V, M]) Send(dst graph.VertexID, m M) {
	w := c.w
	if dest := w.pm.WorkerOf(dst); dest != w.me {
		w.buf.Add(dest, msgstore.Entry[M]{Dst: dst, Src: c.id, Msg: m})
		return
	}
	w.writeStore().PutSlot(dst, c.id, m, 0, 0)
}

func (c *distCtx[V, M]) SendToAllOut(m M) {
	for _, dst := range c.w.g.OutNeighbors(c.id) {
		c.Send(dst, m)
	}
}

func (c *distCtx[V, M]) Aggregate(name string, v float64) { c.w.aggLocal[name] += v }
func (c *distCtx[V, M]) Aggregated(name string) float64   { return c.w.aggPrev[name] }

func (c *distCtx[V, M]) AddEdgeRequest(src, dst graph.VertexID, w float64) {
	panic("dist: topology mutations are not supported in multi-process runs")
}
func (c *distCtx[V, M]) RemoveEdgeRequest(src, dst graph.VertexID) {
	panic("dist: topology mutations are not supported in multi-process runs")
}

// workerRun is the per-run state of one worker process.
type workerRun[V, M any] struct {
	g     *graph.Graph
	pm    *partition.Map
	me    int
	nw    int
	prog  model.Program[V, M]
	codec *wire.Codec[M]

	owned  []graph.VertexID
	values []V
	halted []bool

	// Double-buffered message stores, engine layout: stores[active] is
	// read this superstep, stores[1-active] receives sends for the next.
	// active is atomic because the inbound pumps consult it; the protocol
	// guarantees pumps only apply frames for the superstep the flag
	// already reflects (a peer cannot enter superstep s+1 before our
	// StepDone for s, which we send only after flipping).
	stores [2]*msgstore.Store[M]
	active atomic.Int32

	buf *msgstore.Buffer[M]
	// spill is the bounded-memory staging tier for inbound remote batches
	// (DESIGN.md §12), non-nil when Job.MsgMemoryBudget > 0: the pumps
	// stage Data-frame batches here instead of applying them directly, and
	// the superstep barrier drains the merge into the write store before
	// the flip. Locally-delivered messages (same-process PutSlot) bypass
	// it — they never occupy transport buffers.
	spill    *msgstore.Spill[M]
	peers    *peerSet
	aggLocal map[string]float64
	aggPrev  map[string]float64

	// Superstep ledgers (reset per run, reported in StepDone deltas).
	executions  int64
	sentBatches int64
	sentBytes   int64

	// Barrier bookkeeping: pumps count peer barriers, the main loop
	// waits for nw-1 of them.
	mu       sync.Mutex
	cond     *sync.Cond
	barriers int
	pumpErr  error
	pumpWG   sync.WaitGroup

	scratch []byte
}

func (w *workerRun[V, M]) readStore() *msgstore.Store[M]  { return w.stores[w.active.Load()] }
func (w *workerRun[V, M]) writeStore() *msgstore.Store[M] { return w.stores[1-w.active.Load()] }

// runWorker executes the job. The superstep loop is the engine's BSP
// path with the shared-memory master replaced by control frames:
// StepStart plays the dispatch, the peer Barrier frames play the
// worker-side flush ack, StepDone plays the barrier bookkeeping
// (aggregator merge input, halt votes, pending count).
func runWorker[V, M any](ctrl *frameConn, ln net.Listener, job Job, prog model.Program[V, M]) error {
	g, err := BuildGraph(job)
	if err != nil {
		return err
	}
	nw := int(job.Workers)
	me := int(job.You)
	pm, err := partition.New(job.Partitioner, g, nw*int(job.PartsPerWorker), nw, job.Seed)
	if err != nil {
		return err
	}

	w := &workerRun[V, M]{g: g, pm: pm, me: me, nw: nw, prog: prog}
	w.cond = sync.NewCond(&w.mu)
	if prog.MsgAppend != nil && prog.MsgRead != nil {
		w.codec = wire.NewCodecWith(wire.MsgCodec[M]{Append: prog.MsgAppend, Read: prog.MsgRead})
	} else {
		w.codec = wire.NewCodec[M]()
	}

	for _, p := range pm.PartitionsOfWorker(me) {
		w.owned = append(w.owned, pm.Vertices(p)...)
	}
	w.values = make([]V, g.NumVertices())
	w.halted = make([]bool, g.NumVertices())
	if prog.Init != nil {
		for _, v := range w.owned {
			w.values[v] = prog.Init(v, g)
		}
	}
	w.stores[0] = msgstore.New[M](g, w.owned, prog.Semantics, prog.Combine)
	w.stores[1] = msgstore.New[M](g, w.owned, prog.Semantics, prog.Combine)

	w.buf = msgstore.NewBuffer(nw, bufferCap, prog.MsgBytes,
		cluster.BatchHeaderBytes, cluster.EntryHeaderBytes, w.sendBatch)
	if prog.Semantics == model.Combine && prog.Combine != nil {
		w.buf.SetCombiner(prog.Combine)
	}
	if job.MsgMemoryBudget > 0 {
		per := job.MsgMemoryBudget / int64(nw)
		if per <= 0 {
			per = job.MsgMemoryBudget
		}
		w.spill = msgstore.NewSpill[M](per, prog.MsgBytes,
			cluster.BatchHeaderBytes, cluster.EntryHeaderBytes)
		defer w.spill.Close()
	}

	w.peers, err = connectPeers(ln, me, nw, job.Peers)
	if err != nil {
		return err
	}
	defer w.peers.close()
	for j, fc := range w.peers.in {
		if fc == nil {
			continue
		}
		w.pumpWG.Add(1)
		go w.pump(j, fc)
	}

	err = w.loop(ctrl)
	if err != nil {
		// Broken run: force-close everything so blocked pumps unwind
		// instead of waiting on peers that will never half-close.
		w.peers.close()
	} else {
		// Clean finish: half-close outbound data conns so peer pumps see
		// EOF after draining (peers do the same for ours).
		for _, fc := range w.peers.out {
			if fc != nil {
				fc.flush()
				fc.closeWrite()
			}
		}
	}
	w.pumpWG.Wait()
	return err
}

// sendBatch is the Buffer flush hook: encode the batch and write one
// Data frame to the destination peer. bytes is the simulated ledger size
// (header + per-entry costs), carried as Declared so both ends account
// identically to the Mem backend.
func (w *workerRun[V, M]) sendBatch(dest int, batch []msgstore.Entry[M], bytes int) {
	fc := w.peers.out[dest]
	ftype, payload, err := w.codec.EncodePayload(batch, w.scratch[:0])
	if err != nil {
		panic(fmt.Sprintf("dist: encode batch: %v", err))
	}
	w.scratch = payload[:0]
	f := cluster.Frame{Type: ftype, From: cluster.WorkerID(w.me), To: cluster.WorkerID(dest), Declared: bytes, Payload: payload}
	if err := fc.write(&f); err != nil {
		panic(fmt.Sprintf("dist: send batch to %d: %v", dest, err))
	}
	w.sentBatches++
	w.sentBytes += int64(bytes)
}

// pump drains one inbound peer connection: Data frames apply to the
// write store, Barrier frames bump the barrier counter. Exits on EOF
// (peer finished and half-closed).
func (w *workerRun[V, M]) pump(from int, fc *frameConn) {
	defer w.pumpWG.Done()
	for {
		f, err := fc.read()
		if err != nil {
			// EOF is the peer's clean half-close; a closed local conn is
			// our own error-path teardown. Anything else is a real fault.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				w.failPump(fmt.Errorf("dist: pump from %d: %w", from, err))
			}
			return
		}
		switch f.Type {
		case cluster.FrameData:
			payload, err := w.codec.DecodePayload(f.Type, f.Payload)
			if err != nil {
				w.failPump(fmt.Errorf("dist: decode batch from %d: %w", from, err))
				return
			}
			if w.spill != nil {
				w.spill.Add(payload.([]msgstore.Entry[M]), w.writeStore())
			} else {
				w.writeStore().PutBatch(payload.([]msgstore.Entry[M]))
			}
		case cluster.FrameBarrier:
			w.mu.Lock()
			w.barriers++
			w.cond.Broadcast()
			w.mu.Unlock()
		default:
			w.failPump(fmt.Errorf("dist: unexpected frame 0x%02x from peer %d", f.Type, from))
			return
		}
	}
}

func (w *workerRun[V, M]) failPump(err error) {
	w.mu.Lock()
	if w.pumpErr == nil {
		w.pumpErr = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// loop runs supersteps until the coordinator sends Finish, then ships
// the final values.
func (w *workerRun[V, M]) loop(ctrl *frameConn) error {
	for {
		f, err := ctrl.read()
		if err != nil {
			return fmt.Errorf("dist: read control: %w", err)
		}
		switch f.Type {
		case cluster.FrameStepStart:
			ss, err := wire.DecodeStepStart(f.Payload)
			if err != nil {
				return fmt.Errorf("dist: decode step start: %w", err)
			}
			if err := w.superstep(ctrl, ss); err != nil {
				return err
			}
		case cluster.FrameFinish:
			if _, err := wire.DecodeFinish(f.Payload); err != nil {
				return fmt.Errorf("dist: decode finish: %w", err)
			}
			return w.sendValues(ctrl)
		default:
			return fmt.Errorf("dist: unexpected control frame 0x%02x", f.Type)
		}
	}
}

func (w *workerRun[V, M]) superstep(ctrl *frameConn, ss wire.StepStart) error {
	s := int(ss.Superstep)
	w.aggPrev = aggMap(ss.AggKeys, ss.AggVals)
	w.aggLocal = make(map[string]float64)
	startBatches, startBytes := w.sentBatches, w.sentBytes
	var execs int64

	// Compute: sequential over partitions in map order. BSP results are
	// schedule-independent (all reads hit the frozen read store), so one
	// thread is semantically identical to the engine's thread pool.
	ctx := distCtx[V, M]{w: w, superstep: s}
	var reader msgstore.Reader[M]
	rs := w.readStore()
	for _, p := range w.pm.PartitionsOfWorker(w.me) {
		for _, v := range w.pm.Vertices(p) {
			if w.halted[v] && !rs.HasNew(v) {
				continue
			}
			rs.Read(v, &reader)
			ctx.id = v
			ctx.votedHalt = false
			w.prog.Compute(&ctx, reader.Msgs)
			w.halted[v] = ctx.votedHalt
			execs++
		}
	}
	w.executions += execs

	// Flush straggler batches, then barrier-mark every peer stream. The
	// flush ordering (all data first, then the barrier, same FIFO conn)
	// is what lets receivers treat the barrier as "all my data arrived".
	w.buf.FlushAll()
	for j, fc := range w.peers.out {
		if fc == nil {
			continue
		}
		bf := cluster.Frame{Type: cluster.FrameBarrier, From: cluster.WorkerID(w.me), To: cluster.WorkerID(j),
			Payload: wire.AppendBarrier(nil, wire.Barrier{Superstep: int32(s)})}
		if err := fc.writeFlush(&bf); err != nil {
			return fmt.Errorf("dist: barrier to %d: %w", j, err)
		}
	}

	// Wait for every peer's barrier: after that, all messages addressed
	// to us for superstep s+1 are in the write store.
	w.mu.Lock()
	for w.barriers < w.nw-1 && w.pumpErr == nil {
		w.cond.Wait()
	}
	w.barriers -= w.nw - 1
	err := w.pumpErr
	w.mu.Unlock()
	if err != nil {
		return err
	}

	// Every peer's barrier arrived, so all of superstep s's inbound data
	// is staged; merge the spill tier into the write store before the
	// flip (engine barrier order: drain, clear, flip).
	if w.spill != nil {
		if err := w.spill.Drain(w.writeStore()); err != nil {
			return fmt.Errorf("dist: spill drain: %w", err)
		}
	}
	// Engine barrier order: clear the consumed read store, flip, then
	// count pending across both stores (Overwrite stores retain state in
	// the read store too).
	w.readStore().Clear()
	w.active.Store(1 - w.active.Load())
	pending := w.stores[0].NewCount() + w.stores[1].NewCount()
	var unhalted int64
	for _, v := range w.owned {
		if !w.halted[v] {
			unhalted++
		}
	}

	keys, vals := sortedAggs(w.aggLocal)
	done := wire.StepDone{
		Superstep:   int32(s),
		Unhalted:    unhalted,
		Pending:     pending,
		Executions:  execs,
		SentBatches: w.sentBatches - startBatches,
		SentBytes:   w.sentBytes - startBytes,
		WireBytes:   w.wireOut(),
		AggKeys:     keys,
		AggVals:     vals,
	}
	return ctrl.writeFlush(&cluster.Frame{Type: cluster.FrameStepDone, From: cluster.WorkerID(w.me),
		Payload: wire.AppendStepDone(nil, done)})
}

// wireOut totals true bytes written to peer sockets so far.
func (w *workerRun[V, M]) wireOut() int64 {
	var n int64
	for _, fc := range w.peers.out {
		if fc != nil {
			n += fc.wireOut.Load()
		}
	}
	return n
}

// sendValues ships this worker's owned (vertex, value) pairs to the
// coordinator in one Values frame.
func (w *workerRun[V, M]) sendValues(ctrl *frameConn) error {
	vals := make([]wire.ValueEntry[V], len(w.owned))
	for i, v := range w.owned {
		vals[i] = wire.ValueEntry[V]{ID: int32(v), Val: w.values[v]}
	}
	payload := wire.AppendValues(nil, wire.AutoMsgCodec[V](), vals)
	return ctrl.writeFlush(&cluster.Frame{Type: cluster.FrameValues, From: cluster.WorkerID(w.me), Payload: payload})
}
