// Package dist runs a real multi-process deployment: one coordinator
// process and N worker processes connected by TCP, speaking the frame
// protocol of internal/cluster + internal/wire. Unlike the in-process
// engine — whose master and workers share vertex values, halt flags, and
// aggregator maps — nothing here crosses a process boundary except wire
// frames, so this is the deployment shape the paper's systems (Giraph,
// GraphLab) actually have.
//
// The driver implements the BSP model with no synchronization technique
// (the serializable techniques lean on shared-memory lock managers and
// stay in-process for now). Its superstep loop mirrors the engine's BSP
// path operation for operation — same hash partitioning, same message
// store semantics (reused verbatim from internal/msgstore), same
// execute-if-unhalted-or-has-new rule, same halt condition (no unhalted
// vertices and no pending messages), same aggregator merge timing — so a
// distributed run's results are bitwise identical to an in-process run
// with the same worker count and seed. The cross-process conformance test
// in dist_test.go holds it to that.
//
// Protocol (control plane, worker <-> coordinator):
//
//	worker -> Hello{version, -1, dataAddr}
//	coord  -> Job{alg, graph spec, workers, you, peers}
//	loop:   coord -> StepStart{s, merged aggs}
//	        worker -> StepDone{s, unhalted, pending, counters, local aggs}
//	coord  -> Finish{converged, supersteps}
//	worker -> Values{owned (id, value) pairs}
//
// Data plane (worker <-> worker, one conn per ordered pair): Data frames
// carrying combiner-aware message batches, then one Barrier frame per
// superstep. FIFO stream order makes the barrier the proof that every
// data frame the sender emitted for the superstep has arrived, so no
// acks are needed.
package dist

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"serialgraph/internal/cluster"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/wire"
)

// Job aliases the wire-level job spec; the coordinator fills it once and
// every worker deterministically derives the same run from it.
type Job = wire.Job

// DialTimeout bounds connection establishment (workers retry-dial the
// coordinator and each other inside this window, so process start order
// does not matter).
const DialTimeout = 10 * time.Second

// Result summarizes a distributed run on the coordinator.
type Result struct {
	Converged  bool
	Supersteps int
	// Executions totals vertex executions across all workers.
	Executions int64
	// DataBatches/DataBytes are the simulated ledger of worker-to-worker
	// batches (same accounting as cluster.Stats); WireBytes is the true
	// encoded bytes written to data-plane sockets.
	DataBatches int64
	DataBytes   int64
	WireBytes   int64
}

// frameConn wraps one TCP connection with buffered frame IO and wire-byte
// accounting. Writes are single-goroutine per conn (the protocol gives
// every conn exactly one writer); reads likewise.
type frameConn struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	buf     []byte
	wireOut atomic.Int64
	wireIn  atomic.Int64
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{
		conn: c,
		br:   bufio.NewReaderSize(c, 64<<10),
		bw:   bufio.NewWriterSize(c, 64<<10),
	}
}

// write encodes f into the connection's buffer without flushing; callers
// batch frames and flush() at protocol points (control messages flush
// immediately via writeFlush).
func (fc *frameConn) write(f *cluster.Frame) error {
	fc.buf = cluster.AppendFrame(fc.buf[:0], f)
	fc.wireOut.Add(int64(len(fc.buf)))
	_, err := fc.bw.Write(fc.buf)
	return err
}

func (fc *frameConn) flush() error { return fc.bw.Flush() }

func (fc *frameConn) writeFlush(f *cluster.Frame) error {
	if err := fc.write(f); err != nil {
		return err
	}
	return fc.flush()
}

func (fc *frameConn) read() (cluster.Frame, error) {
	f, n, err := cluster.ReadFrame(fc.br)
	if err != nil {
		return f, err
	}
	fc.wireIn.Add(int64(n))
	return f, nil
}

func (fc *frameConn) close() error { return fc.conn.Close() }

// closeWrite half-closes the connection so the peer's read pump sees EOF
// after draining everything already sent.
func (fc *frameConn) closeWrite() {
	if tc, ok := fc.conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// expect reads one frame and checks its type.
func (fc *frameConn) expect(ftype byte) (cluster.Frame, error) {
	f, err := fc.read()
	if err != nil {
		return f, err
	}
	if f.Type != ftype {
		return f, fmt.Errorf("dist: expected frame 0x%02x, got 0x%02x", ftype, f.Type)
	}
	return f, nil
}

// BuildGraph deterministically reconstructs the job's graph: a saved
// graph file when GraphPath is set, else a generator family. Every
// process builds the identical graph, which is what lets the partition
// map be derived locally instead of shipped.
func BuildGraph(job Job) (*graph.Graph, error) {
	var g *graph.Graph
	switch {
	case job.GraphPath != "":
		var err error
		g, err = graph.LoadFile(job.GraphPath)
		if err != nil {
			return nil, err
		}
	case job.Family != "":
		g = generate.Family(job.Family, int(job.N), int64(job.Seed))
	default:
		return nil, fmt.Errorf("dist: job has neither GraphPath nor Family")
	}
	if job.Undirected {
		g = symmetrize(g)
	}
	return g, nil
}

// symmetrize mirrors serialgraph.Undirected exactly (same builder path),
// so a distributed coloring run sees the identical graph an in-process
// `graphrun -alg coloring` run does.
func symmetrize(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

// sortedAggs flattens an aggregator map into sorted parallel slices so
// the frames are deterministic.
func sortedAggs(m map[string]float64) ([]string, []float64) {
	if len(m) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return keys, vals
}

func aggMap(keys []string, vals []float64) map[string]float64 {
	m := make(map[string]float64, len(keys))
	for i, k := range keys {
		m[k] = vals[i]
	}
	return m
}
