package metrics

import (
	"encoding/json"
	"math/bits"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	if got := r.Get(Executions); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	r.Add(Executions, 3)
	r.Add(Executions, 4)
	if got := r.Get(Executions); got != 7 {
		t.Fatalf("Executions = %d, want 7", got)
	}
	if got := r.Get(RemoteBatches); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestPhaseAccrual(t *testing.T) {
	r := New()
	r.AddPhase(PhaseCompute, 5*time.Millisecond)
	r.AddPhase(PhaseCompute, 7*time.Millisecond)
	r.AddPhase(PhaseBarrierWait, time.Microsecond)
	s := r.Snapshot()
	if got := s.Phase(PhaseCompute); got != 12*time.Millisecond {
		t.Fatalf("compute = %v, want 12ms", got)
	}
	if got := s.Phase(PhaseBarrierWait); got != time.Microsecond {
		t.Fatalf("barrier = %v, want 1µs", got)
	}
	if got := s.PhaseTotal(); got != 12*time.Millisecond+time.Microsecond {
		t.Fatalf("total = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	vals := []int64{0, 1, 2, 3, 1024, 1 << 50, -5}
	for _, v := range vals {
		r.Observe(HistLockWait, v)
	}
	h := r.Snapshot().Hist(HistLockWait)
	if h.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count, len(vals))
	}
	// -5 clamps to 0, so sum excludes it.
	wantSum := int64(0 + 1 + 2 + 3 + 1024 + 1<<50)
	if h.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum, wantSum)
	}
	if h.Max != 1<<50 {
		t.Fatalf("max = %d, want %d", h.Max, int64(1)<<50)
	}
	// Bucket index is bits.Len64: 0→0, 1→1, {2,3}→2, 1024→11; 2^50 has
	// Len64 = 51 >= HistBuckets so it clamps into the overflow bucket.
	wantBuckets := map[int]int64{0: 2, 1: 1, 2: 2, 11: 1, HistBuckets - 1: 1}
	if !reflect.DeepEqual(h.Buckets, wantBuckets) {
		t.Fatalf("buckets = %v, want %v", h.Buckets, wantBuckets)
	}
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	if n != h.Count {
		t.Fatalf("bucket sum %d != count %d", n, h.Count)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := int64(1)<<62 + 12345
	h.Observe(huge)
	s := h.snapshot()
	if i := bits.Len64(uint64(huge)); i < HistBuckets {
		// Sanity: 2^62 still fits a regular bucket with HistBuckets = 40?
		// No — 63 >= 40, so it must land in the last bucket.
		t.Logf("bits.Len64 = %d", i)
	}
	if got := s.Buckets[HistBuckets-1]; got != 1 {
		t.Fatalf("overflow bucket = %d, want 1 (buckets %v)", got, s.Buckets)
	}
}

func TestSnapshotIsImmutableCopy(t *testing.T) {
	r := New()
	r.Add(Executions, 10)
	r.Observe(HistBatchEntries, 7)
	s1 := r.Snapshot()
	r.Add(Executions, 90)
	r.Observe(HistBatchEntries, 9)
	if s1.Get(Executions) != 10 {
		t.Fatalf("snapshot mutated: %d", s1.Get(Executions))
	}
	if s1.Hist(HistBatchEntries).Count != 1 {
		t.Fatalf("hist snapshot mutated: %+v", s1.Hist(HistBatchEntries))
	}
	s2 := r.Snapshot()
	if s2.Get(Executions) != 100 || s2.Hist(HistBatchEntries).Count != 2 {
		t.Fatalf("registry lost updates: %+v", s2)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(LocalMessages, 1)
				r.AddPhase(PhaseCompute, time.Nanosecond)
				r.Observe(HistLockWait, int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Get(LocalMessages); got != workers*per {
		t.Fatalf("LocalMessages = %d, want %d", got, workers*per)
	}
	if got := s.Phase(PhaseCompute); got != workers*per*time.Nanosecond {
		t.Fatalf("compute = %v", got)
	}
	if got := s.Hist(HistLockWait).Count; got != workers*per {
		t.Fatalf("hist count = %d", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add(Executions, 42)
	r.Add(CtrlBytes, 64*7)
	r.AddPhase(PhaseRemoteFlush, 3*time.Millisecond)
	r.Observe(HistSuperstepWall, 1e6)
	r.Observe(HistSuperstepWall, 2e6)
	s := r.Snapshot()

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}

func TestJSONSchemaKeys(t *testing.T) {
	data, err := json.Marshal(New().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var j struct {
		Counters map[string]int64 `json:"counters"`
		PhaseNs  map[string]int64 `json:"phase_ns"`
	}
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatal(err)
	}
	for _, c := range CounterIDs() {
		if _, ok := j.Counters[c.Name()]; !ok {
			t.Errorf("counter %q missing from JSON", c.Name())
		}
	}
	for _, p := range Phases() {
		if _, ok := j.PhaseNs[p.Name()]; !ok {
			t.Errorf("phase %q missing from JSON", p.Name())
		}
	}
	// Convention: every phase key is wall-clock-valued and ends in _ns so
	// golden-file tooling can mask them mechanically.
	for _, p := range Phases() {
		if n := p.Name(); len(n) < 3 || n[len(n)-3:] != "_ns" {
			t.Errorf("phase key %q does not end in _ns", n)
		}
	}
}

func TestJSONRejectsUnknownKeys(t *testing.T) {
	var s Snapshot
	err := json.Unmarshal([]byte(`{"counters":{"bogus_counter":1},"phase_ns":{},"histograms":{}}`), &s)
	if err == nil {
		t.Fatal("unknown counter key accepted")
	}
}

func TestNameTablesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range CounterIDs() {
		n := c.Name()
		if n == "" || seen[n] {
			t.Fatalf("counter name %q empty or duplicate", n)
		}
		seen[n] = true
	}
	for _, h := range HistIDs() {
		if h.Name() == "" {
			t.Fatalf("hist %d has empty name", h)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(Executions, 1)
	}
}

func BenchmarkHistObserve(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(HistLockWait, int64(i))
	}
}
