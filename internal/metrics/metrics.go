// Package metrics is the engine's low-overhead observability registry.
// The paper's evaluation (§7, Figs. 1–6) reasons entirely in terms of
// *where time goes* — barrier wait vs. compute vs. communication, and the
// lock/token/fork overhead of each synchronization technique — so the
// registry records exactly those signals: a fixed set of atomic counters,
// fixed-bucket histograms, and per-phase time accumulators.
//
// Design constraints, in priority order:
//
//  1. Allocation-free on the hot path. Counters, histograms, and phases
//     are identified by dense enum IDs into fixed arrays — no maps, no
//     strings, no interface boxing between a vertex execution and its
//     counter bump. The only allocations happen in Snapshot, which runs
//     at barriers or after the run.
//  2. Always on. Every engine.Run carries a registry, so conservation
//     oracles (metrics vs. transport truth) hold for every test and
//     torture case, not only specially-configured ones. The overhead
//     budget is <5% of Fig. 1 benchmark wall time (see DESIGN.md §8).
//  3. Stable schema. Snapshot serializes to JSON with a fixed field set
//     and a naming convention: every time-valued field's key ends in
//     "_ns", so tooling (and the golden-file tests) can mask wall-clock
//     noise mechanically while diffing everything else exactly.
package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// CounterID identifies one registry counter.
type CounterID int

// The counter set. Message counters are maintained at the exact points
// the engine hands traffic to (or receives it from) the transport, so
// they must reconcile with cluster.Stats — the conservation tests in
// internal/engine enforce the equalities documented per counter.
const (
	// Executions counts vertex executions (transactions).
	Executions CounterID = iota
	// Supersteps counts executed global supersteps (including supersteps
	// later discarded by a rollback) on the barriered engines, and logical
	// per-worker supersteps under BAP.
	Supersteps
	// LocalMessages counts vertex messages delivered eagerly to the
	// sender's own worker, bypassing the transport (§6.1).
	LocalMessages
	// RemoteEntries counts vertex messages buffered for a remote worker.
	RemoteEntries
	// RemoteEntriesFlushed counts buffered messages actually handed to the
	// transport inside a batch (rollbacks discard buffered entries, so
	// flushed <= buffered).
	RemoteEntriesFlushed
	// RemoteEntriesDelivered counts vertex messages applied on batch
	// delivery. On a clean run delivered == flushed; drops lower it and
	// duplicate deliveries raise it.
	RemoteEntriesDelivered
	// RemoteBatches counts message batches handed to the transport. On a
	// fault-free run this exactly equals cluster.Stats.DataMessages.
	RemoteBatches
	// RemoteBatchBytes counts the simulated wire bytes of those batches;
	// fault-free it equals cluster.Stats.DataBytes.
	RemoteBatchBytes
	// CtrlMessages counts control messages sent by the engine: remote
	// fork/token exchanges plus flush markers. Chaos applies to data
	// traffic only, so this equals cluster.Stats.ControlMessages even on
	// faulty runs.
	CtrlMessages
	// CtrlBytes is the simulated wire bytes of those control messages;
	// equals cluster.Stats.ControlBytes.
	CtrlBytes
	// FlushMarkers counts the flush-with-ack markers of token handoffs
	// (a subset of CtrlMessages).
	FlushMarkers
	// LockAcquires counts Chandy–Misra Acquire calls (= meals = partition
	// or vertex executions under a locking technique).
	LockAcquires
	// LockWaitNs is the total time Acquire calls spent blocked waiting for
	// forks — the locking techniques' contention signal.
	LockWaitNs
	// ForkGrants counts forks yielded by philosophers (local + remote).
	ForkGrants
	// ForkGrantsRemote counts forks that crossed the (simulated) network.
	ForkGrantsRemote
	// TokenSends counts Chandy–Misra request tokens sent (local + remote).
	TokenSends
	// TokenSendsRemote counts request tokens that crossed the network.
	TokenSendsRemote
	// TokenHoldNs is, under the token-passing techniques, the total wall
	// time the global token's holder spent executing its supersteps.
	TokenHoldNs
	// TokenIdleNs is the total wall time non-holders spent waiting at
	// barriers for the token holder's superstep to complete — the token
	// techniques' (lack of) parallelism, measured.
	TokenIdleNs
	// Checkpoints counts checkpoints written.
	Checkpoints
	// Rollbacks counts recoveries of either scope: whole-cluster rollbacks
	// and confined (partial) recoveries both bump it, so it reconciles with
	// Result.Rollbacks regardless of recovery mode.
	Rollbacks
	// ConfinedRecoveries counts the subset of Rollbacks handled by confined
	// recovery (only crashed workers' partitions restored and recomputed).
	ConfinedRecoveries
	// PartitionsRestored counts partitions whose state was reloaded from a
	// checkpoint during recovery. Full rollback restores every partition;
	// confined recovery restores only the crashed workers' partitions — the
	// gap between the two is confined recovery's savings, measured.
	PartitionsRestored
	// MessagesReplayed counts logged message entries re-delivered from
	// healthy workers' message logs to recovering partitions during
	// confined recovery.
	MessagesReplayed
	// ReplayBatchesSuppressed counts remote batches a recovering worker
	// regenerated during confined BSP replay below the crash frontier and
	// the engine withheld from the transport — the healthy destinations
	// received the originals before the crash. Flushed but never sent,
	// they reconcile the buffer ledger against the transport's.
	ReplayBatchesSuppressed
	// WatchdogStalls counts supersteps the liveness watchdog declared
	// stalled (no progress within the configured deadline) and escalated
	// to recovery.
	WatchdogStalls
	// CheckpointGensSkipped counts checkpoint generations skipped during
	// restore because their checksum or decode failed — the corruption
	// fallback chain's activity.
	CheckpointGensSkipped
	// CreditWaitNs is total time senders spent blocked in the credit
	// window's Acquire, waiting for the receiver to consume earlier data
	// and return window bytes.
	CreditWaitNs
	// BytesSpilled counts message bytes written to the spill tier's run
	// files when buffered messages exceeded Config.MsgMemoryBudget.
	BytesSpilled
	// CutEdges is the number of directed edges crossing partitions under
	// the run's partition map — set once at startup from the partition
	// quality report (it is a placement property, not run activity).
	CutEdges
	// BoundaryVertices is the number of vertices that are not p-internal
	// (§5.3) under the run's partition map, set once at startup alongside
	// CutEdges. Together they make partition quality visible in every
	// metrics snapshot.
	BoundaryVertices
	// ForksPrefetched counts asynchronous fork acquisitions issued ahead of
	// a partition's execution by the overlap scheduler (RequestForks calls
	// from the prefetch path). Every prefetch is also a LockAcquires, so
	// forks_prefetched <= lock_acquires; zero under the static scheduler.
	ForksPrefetched
	// Steals counts work-stealing events: a compute thread taking work from
	// another thread's deque. Zero under the static scheduler.
	Steals
	// OverlapComputeNs is thread time spent executing partitions while this
	// worker had fork prefetches outstanding — the compute that the overlap
	// scheduler placed inside fork-wait windows. An overlap estimate, not a
	// disjoint phase: it sums across threads. Zero under the static
	// scheduler.
	OverlapComputeNs
	numCounters
)

// counterNames is the JSON schema: index = CounterID. Time-valued
// counters end in "_ns" by convention (see the package comment).
var counterNames = [numCounters]string{
	"executions",
	"supersteps",
	"local_messages",
	"remote_entries",
	"remote_entries_flushed",
	"remote_entries_delivered",
	"remote_batches",
	"remote_batch_bytes",
	"ctrl_messages",
	"ctrl_bytes",
	"flush_markers",
	"lock_acquires",
	"lock_wait_ns",
	"fork_grants",
	"fork_grants_remote",
	"token_sends",
	"token_sends_remote",
	"token_hold_ns",
	"token_idle_ns",
	"checkpoints",
	"rollbacks",
	"confined_recoveries",
	"partitions_restored",
	"messages_replayed",
	"replay_batches_suppressed",
	"watchdog_stalls",
	"checkpoint_gens_skipped",
	"credit_wait_ns",
	"bytes_spilled",
	"cut_edges",
	"boundary_vertices",
	"forks_prefetched",
	"steals",
	"overlap_compute_ns",
}

// Name returns the stable JSON key of a counter.
func (c CounterID) Name() string { return counterNames[c] }

// Phase identifies one slice of the per-superstep phase taxonomy
// (DESIGN.md §8). Compute, RemoteFlush, and BarrierWait are disjoint
// wall-clock intervals of each worker's superstep timeline; Checkpoint is
// a master-side interval; LocalDelivery is accumulated *inside* Compute
// across compute threads (so it can exceed the Compute wall when
// ThreadsPerWorker > 1, and is reported separately rather than summed).
type Phase int

const (
	// PhaseCompute: partition execution, from superstep start until every
	// compute thread has joined. Includes lock waits and local delivery.
	PhaseCompute Phase = iota
	// PhaseLocalDelivery: time inside Compute spent writing local
	// messages into the worker's own store. Both delivery paths — the
	// staged-batch folds and the eager per-message puts — are sampled
	// 1-in-64 and scaled by 64 (engine.localTimingSampleShift), so this
	// phase is an estimate — unlike the message counters, which are exact.
	PhaseLocalDelivery
	// PhaseRemoteFlush: the end-of-superstep buffer flush, plus (token
	// techniques) the flush-with-ack delivery confirmation wait.
	PhaseRemoteFlush
	// PhaseBarrierWait: time between a worker finishing its superstep and
	// the cluster-wide last finisher — zero for the slowest worker.
	PhaseBarrierWait
	// PhaseCheckpoint: master-side checkpoint writing.
	PhaseCheckpoint
	// PhaseWireEncode: TCP-backend frame encoding (writer goroutines,
	// off the compute path). Zero on the in-process backend.
	PhaseWireEncode
	// PhaseWireDecode: TCP-backend frame decoding (read pumps).
	PhaseWireDecode
	// PhaseWireFlush: TCP-backend socket writes and coalesced flushes.
	PhaseWireFlush
	numPhases
)

var phaseNames = [numPhases]string{
	"compute_ns",
	"local_delivery_ns",
	"remote_flush_ns",
	"barrier_wait_ns",
	"checkpoint_ns",
	"wire_encode_ns",
	"wire_decode_ns",
	"wire_flush_ns",
}

// Name returns the stable JSON key of a phase.
func (p Phase) Name() string { return phaseNames[p] }

// HistID identifies one registry histogram.
type HistID int

const (
	// HistLockWait is the distribution of individual Chandy–Misra Acquire
	// block times (ns). Zero-wait fast-path acquires are recorded as 0.
	HistLockWait HistID = iota
	// HistSuperstepWall is the distribution of global superstep wall times
	// (ns), recorded by the master on the barriered engines.
	HistSuperstepWall
	// HistBatchEntries is the distribution of remote batch sizes in
	// entries — the buffer cache's effectiveness (§6.1).
	HistBatchEntries
	// HistBufferedBytes is the distribution of per-worker buffered message
	// bytes sampled at every spill-tier admission; its Max is the run's
	// peak buffered bytes, the number Config.MsgMemoryBudget bounds.
	HistBufferedBytes
	numHists
)

var histNames = [numHists]string{
	"lock_wait_ns",
	"superstep_wall_ns",
	"batch_entries",
	"buffered_bytes",
}

// Name returns the stable JSON key of a histogram.
func (h HistID) Name() string { return histNames[h] }

// HistBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. power-of-two ranges [2^(i-1), 2^i).
// Bucket 0 holds v == 0; the last bucket holds everything larger.
const HistBuckets = 40

// Histogram is a fixed-layout power-of-two histogram, safe for concurrent
// use and allocation-free to observe.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one non-negative value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// HistSnapshot is a plain-value copy of a histogram. Buckets are sparse:
// only non-empty buckets appear, keyed by their upper bound exponent.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	// Buckets[i] is the count of observations v with bits.Len64(v) == i.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Mean returns the mean observed value, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is one run's (or several runs', when shared) metric state.
// All methods are safe for concurrent use. The zero value is NOT ready;
// use New.
type Registry struct {
	counters [numCounters]atomic.Int64
	phases   [numPhases]atomic.Int64
	hists    [numHists]Histogram
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Add increments counter c by v.
func (r *Registry) Add(c CounterID, v int64) { r.counters[c].Add(v) }

// Get returns counter c's current value.
func (r *Registry) Get(c CounterID) int64 { return r.counters[c].Load() }

// AddPhase accrues d into phase p's cumulative time.
func (r *Registry) AddPhase(p Phase, d time.Duration) { r.phases[p].Add(int64(d)) }

// Observe records v into histogram h.
func (r *Registry) Observe(h HistID, v int64) { r.hists[h].Observe(v) }

// Snapshot copies the registry into a plain value. Call at a quiescent
// point (a barrier, or after the run) for a consistent cut; individual
// fields are always atomically read.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for i := range r.counters {
		s.Counters[i] = r.counters[i].Load()
	}
	for i := range r.phases {
		s.PhaseNs[i] = r.phases[i].Load()
	}
	for i := range r.hists {
		s.Hists[i] = r.hists[i].snapshot()
	}
	return s
}

// Snapshot is a plain-value copy of a Registry. It serializes to JSON as
// three name-keyed objects with the stable schema described in the
// package comment; in Go, use Get/Phase/Hist for typed access.
type Snapshot struct {
	Counters [numCounters]int64
	PhaseNs  [numPhases]int64
	Hists    [numHists]HistSnapshot
}

// Get returns counter c's value.
func (s Snapshot) Get(c CounterID) int64 { return s.Counters[c] }

// Phase returns phase p's cumulative duration.
func (s Snapshot) Phase(p Phase) time.Duration { return time.Duration(s.PhaseNs[p]) }

// Hist returns histogram h's snapshot.
func (s Snapshot) Hist(h HistID) HistSnapshot { return s.Hists[h] }

// PhaseTotal returns the sum of all phase accumulators.
func (s Snapshot) PhaseTotal() time.Duration {
	var t int64
	for _, v := range s.PhaseNs {
		t += v
	}
	return time.Duration(t)
}

// jsonSnapshot is the wire form of Snapshot.
type jsonSnapshot struct {
	Counters map[string]int64        `json:"counters"`
	PhaseNs  map[string]int64        `json:"phase_ns"`
	Hists    map[string]HistSnapshot `json:"histograms"`
}

// MarshalJSON renders the snapshot with stable string keys.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	j := jsonSnapshot{
		Counters: make(map[string]int64, len(counterNames)),
		PhaseNs:  make(map[string]int64, len(phaseNames)),
		Hists:    make(map[string]HistSnapshot, len(histNames)),
	}
	for i, name := range counterNames {
		j.Counters[name] = s.Counters[i]
	}
	for i, name := range phaseNames {
		j.PhaseNs[name] = s.PhaseNs[i]
	}
	for i, name := range histNames {
		j.Hists[name] = s.Hists[i]
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the wire form back. Unknown keys are rejected so a
// schema drift between writer and reader is loud, not silent.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var j jsonSnapshot
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Snapshot{}
	for name, v := range j.Counters {
		i, ok := counterIndex(name)
		if !ok {
			return fmt.Errorf("metrics: unknown counter %q", name)
		}
		s.Counters[i] = v
	}
	for name, v := range j.PhaseNs {
		i, ok := phaseIndex(name)
		if !ok {
			return fmt.Errorf("metrics: unknown phase %q", name)
		}
		s.PhaseNs[i] = v
	}
	for name, v := range j.Hists {
		i, ok := histIndex(name)
		if !ok {
			return fmt.Errorf("metrics: unknown histogram %q", name)
		}
		s.Hists[i] = v
	}
	return nil
}

func counterIndex(name string) (int, bool) {
	for i, n := range counterNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

func phaseIndex(name string) (int, bool) {
	for i, n := range phaseNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

func histIndex(name string) (int, bool) {
	for i, n := range histNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// CounterIDs returns all counter IDs, for tests that sweep the schema.
func CounterIDs() []CounterID {
	ids := make([]CounterID, numCounters)
	for i := range ids {
		ids[i] = CounterID(i)
	}
	return ids
}

// Phases returns all phase IDs.
func Phases() []Phase {
	ps := make([]Phase, numPhases)
	for i := range ps {
		ps[i] = Phase(i)
	}
	return ps
}

// HistIDs returns all histogram IDs.
func HistIDs() []HistID {
	hs := make([]HistID, numHists)
	for i := range hs {
		hs[i] = HistID(i)
	}
	return hs
}
