package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serialgraph/internal/chandy"
	"serialgraph/internal/msgstore"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot[float64, float64]{
		Superstep: 7,
		Values:    []float64{1.5, 2.5},
		Halted:    []bool{true, false},
		AggPrev:   map[string]float64{"err": 0.25},
		Stores: [][]msgstore.DumpEntry[float64]{
			{{Dst: 0, Src: 1, Msg: 3.5, Ver: 2, IsNew: true}},
			nil,
		},
		Forks: []map[chandy.PhilID]map[chandy.PhilID]byte{
			{1: {2: 3}},
		},
	}
	path := Path(dir, 7)
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load[float64, float64](path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Superstep != 7 || got.Values[1] != 2.5 || !got.Halted[0] ||
		got.AggPrev["err"] != 0.25 || got.Stores[0][0].Msg != 3.5 ||
		got.Forks[0][1][2] != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if p, err := Latest(dir); err != nil || p != "" {
		t.Fatalf("empty dir: %q, %v", p, err)
	}
	for _, s := range []int{2, 10, 6} {
		if err := Save(Path(dir, s), &Snapshot[int32, int32]{Superstep: s}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "checkpoint-000010.gob" {
		t.Errorf("Latest = %s", p)
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 1)
	if err := Save(path, &Snapshot[int32, int32]{Superstep: 1}); err != nil {
		t.Fatal(err)
	}
	// No temp droppings.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1", len(entries))
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load[int32, int32](filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestLoadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint-000001.gob")
	if err := os.WriteFile(path, []byte("this is not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load[int32, int32](path)
	if err == nil {
		t.Fatal("garbage file did not error")
	}
	if want := "checkpoint: decode"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestLoadTruncated(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 3)
	snap := &Snapshot[float64, float64]{
		Superstep: 3,
		Values:    make([]float64, 1000),
		Halted:    make([]bool, 1000),
	}
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the stream at several points; every cut must produce a clean
	// error, never a panic or a silently short snapshot.
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(data)) * frac)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load[float64, float64](path); err == nil {
			t.Errorf("truncated at %d/%d bytes: no error", cut, len(data))
		}
	}
}

func TestLatestIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := Save(Path(dir, 4), &Snapshot[int32, int32]{Superstep: 4}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Save at a later superstep: the temp file exists
	// but was never renamed. Latest must not pick it up.
	tmp := Path(dir, 9) + ".tmp"
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "checkpoint-000004.gob" {
		t.Errorf("Latest = %s, want the completed checkpoint, not the .tmp", p)
	}
}
