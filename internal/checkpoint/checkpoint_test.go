package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"serialgraph/internal/chandy"
	"serialgraph/internal/msgstore"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot[float64, float64]{
		Superstep: 7,
		Values:    []float64{1.5, 2.5},
		Halted:    []bool{true, false},
		AggPrev:   map[string]float64{"err": 0.25},
		Stores: [][]msgstore.DumpEntry[float64]{
			{{Dst: 0, Src: 1, Msg: 3.5, Ver: 2, IsNew: true}},
			nil,
		},
		Forks: []map[chandy.PhilID]map[chandy.PhilID]byte{
			{1: {2: 3}},
		},
	}
	path := Path(dir, 7)
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load[float64, float64](path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Superstep != 7 || got.Values[1] != 2.5 || !got.Halted[0] ||
		got.AggPrev["err"] != 0.25 || got.Stores[0][0].Msg != 3.5 ||
		got.Forks[0][1][2] != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if p, err := Latest(dir); err != nil || p != "" {
		t.Fatalf("empty dir: %q, %v", p, err)
	}
	for _, s := range []int{2, 10, 6} {
		if err := Save(Path(dir, s), &Snapshot[int32, int32]{Superstep: s}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "checkpoint-000010.gob" {
		t.Errorf("Latest = %s", p)
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 1)
	if err := Save(path, &Snapshot[int32, int32]{Superstep: 1}); err != nil {
		t.Fatal(err)
	}
	// No temp droppings.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1", len(entries))
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load[int32, int32](filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("missing file did not error")
	}
}
