package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serialgraph/internal/chandy"
	"serialgraph/internal/msgstore"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot[float64, float64]{
		Superstep: 7,
		Values:    []float64{1.5, 2.5},
		Halted:    []bool{true, false},
		AggPrev:   map[string]float64{"err": 0.25},
		Stores: [][]msgstore.DumpEntry[float64]{
			{{Dst: 0, Src: 1, Msg: 3.5, Ver: 2, IsNew: true}},
			nil,
		},
		Forks: []map[chandy.PhilID]map[chandy.PhilID]byte{
			{1: {2: 3}},
		},
	}
	path := Path(dir, 7)
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load[float64, float64](path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Superstep != 7 || got.Values[1] != 2.5 || !got.Halted[0] ||
		got.AggPrev["err"] != 0.25 || got.Stores[0][0].Msg != 3.5 ||
		got.Forks[0][1][2] != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if p, err := Latest(dir); err != nil || p != "" {
		t.Fatalf("empty dir: %q, %v", p, err)
	}
	for _, s := range []int{2, 10, 6} {
		if err := Save(Path(dir, s), &Snapshot[int32, int32]{Superstep: s}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "checkpoint-000010.gob" {
		t.Errorf("Latest = %s", p)
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 1)
	if err := Save(path, &Snapshot[int32, int32]{Superstep: 1}); err != nil {
		t.Fatal(err)
	}
	// No temp droppings.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1", len(entries))
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load[int32, int32](filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestLoadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint-000001.gob")
	if err := os.WriteFile(path, []byte("this is not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load[int32, int32](path)
	if err == nil {
		t.Fatal("garbage file did not error")
	}
	if want := "bad header"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestLoadTruncated(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 3)
	snap := &Snapshot[float64, float64]{
		Superstep: 3,
		Values:    make([]float64, 1000),
		Halted:    make([]bool, 1000),
	}
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the stream at several points; every cut must produce a clean
	// error, never a panic or a silently short snapshot.
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(data)) * frac)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load[float64, float64](path); err == nil {
			t.Errorf("truncated at %d/%d bytes: no error", cut, len(data))
		}
	}
}

func TestLatestIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := Save(Path(dir, 4), &Snapshot[int32, int32]{Superstep: 4}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Save at a later superstep: the temp file exists
	// but was never renamed. Latest must not pick it up.
	tmp := Path(dir, 9) + ".tmp"
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "checkpoint-000004.gob" {
		t.Errorf("Latest = %s, want the completed checkpoint, not the .tmp", p)
	}
}

// writeGen saves a generation; vals==nil with base>=0 makes it a delta
// carrying ids/dvals against that base.
func writeGen(t *testing.T, dir string, s, base int, n int, vals []float64, ids []int32, dvals []float64) {
	t.Helper()
	snap := &Snapshot[float64, float64]{
		Superstep: s, Base: base, NumVertices: n,
		Halted: make([]bool, n),
	}
	if base < 0 {
		snap.Values = vals
	} else {
		snap.DeltaIDs, snap.DeltaValues = ids, dvals
	}
	if err := Save(Path(dir, s), snap); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeDeltaChain(t *testing.T) {
	dir := t.TempDir()
	// Full at 1, deltas at 3 and 5: vertex 0 dirtied twice, vertex 2 once.
	writeGen(t, dir, 1, -1, 3, []float64{10, 20, 30}, nil, nil)
	writeGen(t, dir, 3, 1, 3, nil, []int32{0}, []float64{11})
	writeGen(t, dir, 5, 3, 3, nil, []int32{0, 2}, []float64{12, 33})
	snap, err := Materialize[float64, float64](Path(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	if snap.IsDelta() {
		t.Error("materialized snapshot still reports IsDelta")
	}
	if snap.Superstep != 5 {
		t.Errorf("Superstep = %d, want 5", snap.Superstep)
	}
	want := []float64{12, 20, 33}
	for i, v := range want {
		if snap.Values[i] != v {
			t.Errorf("Values[%d] = %v, want %v", i, snap.Values[i], v)
		}
	}
}

func TestMaterializeFailsOnCorruptBase(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 1, -1, 2, []float64{1, 2}, nil, nil)
	writeGen(t, dir, 3, 1, 2, nil, []int32{1}, []float64{9})
	if err := os.WriteFile(Path(dir, 1), []byte("SGC1 corrupted base"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize[float64, float64](Path(dir, 3)); err == nil {
		t.Error("Materialize over a corrupt base did not error")
	}
}

func TestLoadChainSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 2, -1, 2, []float64{1, 2}, nil, nil)
	writeGen(t, dir, 4, -1, 2, []float64{3, 4}, nil, nil)
	// Torn write of the newest generation.
	if err := os.WriteFile(Path(dir, 4), []byte("SGC1 torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := LoadChain[float64, float64](dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Superstep != 2 {
		t.Fatalf("LoadChain fell back to %+v, want superstep 2", snap)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if snap.Values[1] != 2 {
		t.Errorf("Values[1] = %v, want 2", snap.Values[1])
	}
}

func TestLoadChainSkipsDeltaOnCorruptBase(t *testing.T) {
	dir := t.TempDir()
	// Full at 1 (will be corrupted), delta at 3 chained to it, and an older
	// intact full at 0: the delta's whole chain must be skipped.
	writeGen(t, dir, 0, -1, 2, []float64{7, 8}, nil, nil)
	writeGen(t, dir, 1, -1, 2, []float64{1, 2}, nil, nil)
	writeGen(t, dir, 3, 1, 2, nil, []int32{0}, []float64{5})
	if err := os.WriteFile(Path(dir, 1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := LoadChain[float64, float64](dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Superstep != 0 {
		t.Fatalf("LoadChain = %+v, want fallback to superstep 0", snap)
	}
	if skipped < 2 {
		t.Errorf("skipped = %d, want >= 2 (delta head and its corrupt base)", skipped)
	}
	if snap.Values[0] != 7 {
		t.Errorf("Values[0] = %v, want 7", snap.Values[0])
	}
}

func TestLoadChainAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 2, -1, 1, []float64{1}, nil, nil)
	if err := os.WriteFile(Path(dir, 2), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := LoadChain[float64, float64](dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Errorf("LoadChain = %+v, want nil (no usable generation)", snap)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
}

func TestLoadChainEmptyDir(t *testing.T) {
	snap, skipped, err := LoadChain[float64, float64](t.TempDir())
	if err != nil || snap != nil || skipped != 0 {
		t.Errorf("LoadChain on empty dir = (%v, %d, %v), want (nil, 0, nil)", snap, skipped, err)
	}
}

// TestLoadChainMaxIgnoresNewer pins the reused-directory guard: a
// recovering run restores the newest generation it has itself written,
// never a (possibly foreign) newer one left behind by another process —
// and the ignored generation does not count as skipped.
func TestLoadChainMaxIgnoresNewer(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 1, -1, 2, []float64{1, 2}, nil, nil)
	writeGen(t, dir, 4, -1, 2, []float64{9, 9}, nil, nil)
	snap, skipped, err := LoadChainMax[float64, float64](dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Superstep != 1 {
		t.Fatalf("snap = %+v, want the superstep-1 generation", snap)
	}
	if snap.Values[0] != 1 || snap.Values[1] != 2 {
		t.Errorf("Values = %v, want [1 2]", snap.Values)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0 (the newer generation is foreign, not corrupt)", skipped)
	}
}

// TestLoadChainMaxTornNewerInvisible: a torn file beyond the bound is
// never even read — recovery falls straight to the bounded generation.
func TestLoadChainMaxTornNewerInvisible(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 2, -1, 2, []float64{5, 6}, nil, nil)
	if err := os.WriteFile(Path(dir, 3), []byte("SGC1 torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err := LoadChainMax[float64, float64](dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Superstep != 2 {
		t.Fatalf("snap = %+v, want the superstep-2 generation", snap)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
}

// TestLoadChainMaxNoneEligible: every generation is newer than the bound
// (the run never checkpointed), so recovery must fall back to the initial
// state rather than restore foreign files.
func TestLoadChainMaxNoneEligible(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 3, -1, 2, []float64{7, 8}, nil, nil)
	snap, skipped, err := LoadChainMax[float64, float64](dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("snap = %+v, want nil", snap)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
}
