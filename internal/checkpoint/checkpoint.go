// Package checkpoint implements the fault-tolerance mechanism of §6.4:
// synchronous checkpoints taken at global barriers. A checkpoint captures a
// consistent state — no vertices executing and no in-flight messages — so
// it includes vertex values, halt flags, the full message stores, the
// aggregator state, and the synchronization technique's data structures
// (the Chandy–Misra fork/token maps). Token positions need no explicit
// record here because the token schedule is a pure function of the
// superstep number.
//
// Recovery follows Giraph's model: on any worker failure, the entire
// cluster rolls back to the latest checkpoint and recomputes from there.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"serialgraph/internal/chandy"
	"serialgraph/internal/msgstore"
)

// Snapshot is the serialized state of a run at a superstep barrier.
type Snapshot[V, M any] struct {
	// Superstep is the last completed superstep; recovery resumes at
	// Superstep+1.
	Superstep int
	Values    []V
	Halted    []bool
	AggPrev   map[string]float64
	// Stores holds each worker's message store contents, indexed by
	// worker.
	Stores [][]msgstore.DumpEntry[M]
	// Forks holds each worker's Chandy–Misra state (partition-based
	// locking only; nil otherwise).
	Forks []map[chandy.PhilID]map[chandy.PhilID]byte
	// Versions holds per-vertex write versions, recorded only when the
	// run tracks history: restoring them with the values keeps the
	// post-rollback transaction log's version arithmetic consistent.
	Versions []uint32
}

// Path returns the checkpoint file path for a superstep under dir.
func Path(dir string, superstep int) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%06d.gob", superstep))
}

// Latest returns the newest checkpoint file in dir, or "" if none exist.
func Latest(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.gob"))
	if err != nil {
		return "", err
	}
	best := ""
	for _, m := range matches {
		if m > best {
			best = m
		}
	}
	return best, nil
}

// Save writes the snapshot atomically (write to temp, then rename).
func Save[V, M any](path string, s *Snapshot[V, M]) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(s); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot written by Save.
func Load[V, M any](path string) (*Snapshot[V, M], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var s Snapshot[V, M]
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &s, nil
}
