// Package checkpoint implements the fault-tolerance mechanism of §6.4:
// synchronous checkpoints taken at global barriers. A checkpoint captures a
// consistent state — no vertices executing and no in-flight messages — so
// it includes vertex values, halt flags, the full message stores, the
// aggregator state, and the synchronization technique's data structures
// (the Chandy–Misra fork/token maps). Token positions need no explicit
// record here because the token schedule is a pure function of the
// superstep number.
//
// # Generations, deltas, and the fallback chain
//
// Each checkpoint file is one *generation*. A generation is either full
// (self-contained) or a *delta*: it records only the vertices dirtied
// since the previous generation (plus the always-wholesale parts — halt
// flags, aggregators, message stores, and fork state, which turn over
// completely between checkpoints anyway) and names that previous
// generation as its Base. Restoring a delta chains back through bases
// until a full generation grounds the chain, then replays the deltas
// newest-last.
//
// Every generation carries a CRC32 checksum over its encoded payload, and
// writes are atomic and durable: encode to a temp file, fsync it, rename
// into place, fsync the directory. A crash mid-write therefore leaves at
// worst a stray .tmp file, never a torn generation — and if a generation
// *is* corrupted (bit rot, truncation), LoadChain walks older generations
// until it finds a usable one, reporting how many it skipped so the
// engine can surface the fallback in metrics.
//
// Recovery scope is the engine's concern, not this package's: full
// rollback restores every partition from the materialized snapshot, while
// confined recovery copies out only the crashed workers' slices.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"serialgraph/internal/chandy"
	"serialgraph/internal/msgstore"
)

// Snapshot is the serialized state of a run at a superstep barrier.
//
// Exactly one of two shapes is valid: a full snapshot (Base == -1, Values
// and optionally Versions populated, Delta* empty) or a delta snapshot
// (Base >= 0 naming the previous generation's superstep, DeltaIDs /
// DeltaValues / optionally DeltaVersions populated, Values and Versions
// empty). Halted, AggPrev, Stores, and Forks are recorded in full either
// way — they change wholesale every superstep, so delta-encoding them
// would save nothing.
type Snapshot[V, M any] struct {
	// Superstep is the last completed superstep; recovery resumes at
	// Superstep+1.
	Superstep int
	// Base is the superstep of the generation this delta chains to, or -1
	// for a full snapshot.
	Base int
	// NumVertices is the vertex count, recorded on deltas so a chain whose
	// base disagrees is rejected instead of silently mis-applied.
	NumVertices int
	Values      []V
	Halted      []bool
	AggPrev     map[string]float64
	// Stores holds each worker's message store contents, indexed by
	// worker.
	Stores [][]msgstore.DumpEntry[M]
	// Forks holds each worker's Chandy–Misra state (partition-based
	// locking only; nil otherwise).
	Forks []map[chandy.PhilID]map[chandy.PhilID]byte
	// Versions holds per-vertex write versions, recorded only when the
	// run tracks history: restoring them with the values keeps the
	// post-rollback transaction log's version arithmetic consistent.
	Versions []uint32
	// DeltaIDs lists the vertices dirtied since Base (delta snapshots
	// only); DeltaValues and DeltaVersions are parallel to it.
	DeltaIDs      []int32
	DeltaValues   []V
	DeltaVersions []uint32
}

// IsDelta reports whether the snapshot chains to a base generation.
func (s *Snapshot[V, M]) IsDelta() bool { return s.Base >= 0 }

// Path returns the checkpoint file path for a superstep under dir.
func Path(dir string, superstep int) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%06d.gob", superstep))
}

// Latest returns the newest checkpoint file in dir, or "" if none exist.
// It does not verify the file; use LoadChain to restore with corruption
// fallback.
func Latest(dir string) (string, error) {
	gens, err := Generations(dir)
	if err != nil || len(gens) == 0 {
		return "", err
	}
	return gens[0], nil
}

// Generations returns every checkpoint file in dir, newest first (the
// zero-padded superstep in the name makes lexical order chronological).
func Generations(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.gob"))
	if err != nil {
		return nil, err
	}
	// Insertion sort descending; generation counts are tiny.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j] > matches[j-1]; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	return matches, nil
}

// genSuperstep parses the superstep out of a generation filename, the
// inverse of Path. Reports false for names not produced by Path.
func genSuperstep(p string) (int, bool) {
	var s int
	if _, err := fmt.Sscanf(filepath.Base(p), "checkpoint-%d.gob", &s); err != nil {
		return 0, false
	}
	return s, true
}

// magic brands the checksummed generation format; bumping it invalidates
// old files loudly instead of feeding the gob decoder garbage.
var magic = [4]byte{'S', 'G', 'C', '1'}

// Save writes the snapshot atomically and durably: gob-encode to a buffer,
// prefix a magic + CRC32 header, write a temp file, fsync it, rename into
// place, and fsync the directory so the rename itself survives a crash.
func Save[V, M any](path string, s *Snapshot[V, M]) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	payload := buf.Bytes()
	var hdr [8]byte
	copy(hdr[:4], magic[:])
	sum := crc32.ChecksumIEEE(payload)
	hdr[4] = byte(sum)
	hdr[5] = byte(sum >> 8)
	hdr[6] = byte(sum >> 16)
	hdr[7] = byte(sum >> 24)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
		if err == nil {
			err = f.Sync()
		}
	} else {
		err = fmt.Errorf("checkpoint: %w", err)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and verifies one generation written by Save. A bad magic,
// checksum mismatch, or decode failure returns an error — callers wanting
// automatic fallback to older generations should use LoadChain.
func Load[V, M any](path string) (*Snapshot[V, M], error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < 8 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("checkpoint: %s: bad header", path)
	}
	want := uint32(data[4]) | uint32(data[5])<<8 | uint32(data[6])<<16 | uint32(data[7])<<24
	payload := data[8:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checkpoint: %s: checksum mismatch (got %08x want %08x)", path, got, want)
	}
	var s Snapshot[V, M]
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if s.IsDelta() && len(s.DeltaIDs) != len(s.DeltaValues) {
		return nil, fmt.Errorf("checkpoint: %s: delta shape mismatch (%d ids, %d values)", path, len(s.DeltaIDs), len(s.DeltaValues))
	}
	return &s, nil
}

// LoadChain restores the newest usable state from dir: it walks
// generations newest-first, skipping any that fail verification (or whose
// delta chain is grounded on a corrupt base), materializes the first
// usable one into a full snapshot, and reports how many generations were
// skipped on the way. A (nil, skipped, nil) return means no usable
// generation exists.
func LoadChain[V, M any](dir string) (*Snapshot[V, M], int, error) {
	return LoadChainMax[V, M](dir, int(^uint(0)>>1))
}

// LoadChainMax is LoadChain restricted to generations at or below the
// given superstep. A recovering run passes the newest superstep it has
// itself checkpointed: generations beyond that are foreign — left in a
// reused directory by an earlier process — and restoring one would jump
// the run forward past supersteps it never executed. Foreign generations
// are ignored silently; only corrupt ones count as skipped.
func LoadChainMax[V, M any](dir string, max int) (*Snapshot[V, M], int, error) {
	gens, err := Generations(dir)
	if err != nil {
		return nil, 0, err
	}
	kept := gens[:0]
	for _, p := range gens {
		if s, ok := genSuperstep(p); ok && s > max {
			continue
		}
		kept = append(kept, p)
	}
	gens = kept
	loaded := make(map[string]*Snapshot[V, M]) // nil value = known corrupt
	load := func(p string) *Snapshot[V, M] {
		if s, ok := loaded[p]; ok {
			return s
		}
		s, err := Load[V, M](p)
		if err != nil {
			s = nil
		}
		loaded[p] = s
		return s
	}
	skipped := make(map[string]bool)
	for _, p := range gens {
		if skipped[p] {
			continue
		}
		head := load(p)
		if head == nil {
			skipped[p] = true
			continue
		}
		chain := []*Snapshot[V, M]{head}
		usable := true
		for chain[len(chain)-1].IsDelta() {
			bp := Path(dir, chain[len(chain)-1].Base)
			base := load(bp)
			if base == nil {
				skipped[bp] = true
				usable = false
				break
			}
			chain = append(chain, base)
		}
		if usable {
			if snap, ok := materialize(chain); ok {
				return snap, len(skipped), nil
			}
		}
		skipped[p] = true
	}
	return nil, len(skipped), nil
}

// Materialize loads one named generation and, if it is a delta, resolves
// its base chain from the same directory, returning a self-contained
// snapshot. Unlike LoadChain it targets a specific generation (the
// engine's RestoreFrom) and fails on any corruption instead of falling
// back.
func Materialize[V, M any](path string) (*Snapshot[V, M], error) {
	head, err := Load[V, M](path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	chain := []*Snapshot[V, M]{head}
	for chain[len(chain)-1].IsDelta() {
		base, err := Load[V, M](Path(dir, chain[len(chain)-1].Base))
		if err != nil {
			return nil, err
		}
		chain = append(chain, base)
	}
	snap, ok := materialize(chain)
	if !ok {
		return nil, fmt.Errorf("checkpoint: %s: inconsistent delta chain", path)
	}
	return snap, nil
}

// materialize flattens a chain [newest, ..., full base] into one full
// snapshot: base values first, then each delta's dirtied vertices applied
// oldest-to-newest. The newest generation supplies everything recorded
// wholesale. Returns false when the chain is structurally inconsistent
// (vertex-count mismatch, out-of-range delta IDs).
func materialize[V, M any](chain []*Snapshot[V, M]) (*Snapshot[V, M], bool) {
	base := chain[len(chain)-1]
	n := len(base.Values)
	values := make([]V, n)
	copy(values, base.Values)
	var versions []uint32
	if base.Versions != nil {
		versions = make([]uint32, len(base.Versions))
		copy(versions, base.Versions)
	}
	for i := len(chain) - 2; i >= 0; i-- {
		d := chain[i]
		if d.NumVertices != n {
			return nil, false
		}
		for j, id := range d.DeltaIDs {
			if int(id) < 0 || int(id) >= n {
				return nil, false
			}
			values[id] = d.DeltaValues[j]
			if versions != nil && j < len(d.DeltaVersions) {
				versions[id] = d.DeltaVersions[j]
			}
		}
	}
	head := chain[0]
	return &Snapshot[V, M]{
		Superstep:   head.Superstep,
		Base:        -1,
		NumVertices: n,
		Values:      values,
		Halted:      head.Halted,
		AggPrev:     head.AggPrev,
		Stores:      head.Stores,
		Forks:       head.Forks,
		Versions:    versions,
	}, true
}
