package partition

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"serialgraph/internal/graph"
)

// star builds a star: vertex 0 connected to every other vertex, both
// directions. The adversarial case for capacity bounds — every vertex
// wants to sit next to the hub.
func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.VertexID(i))
		b.AddEdge(graph.VertexID(i), 0)
	}
	return b.Build()
}

// community builds c cliques of size k joined in a ring by single edges.
func community(c, k int) *graph.Graph {
	b := graph.NewBuilder(c * k)
	for ci := 0; ci < c; ci++ {
		base := ci * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddEdge(graph.VertexID(base+i), graph.VertexID(base+j))
				b.AddEdge(graph.VertexID(base+j), graph.VertexID(base+i))
			}
		}
		b.AddEdge(graph.VertexID(base), graph.VertexID(((ci+1)%c)*k))
	}
	return b.Build()
}

func sameAssignment(a, b *Map, n int) bool {
	for v := 0; v < n; v++ {
		if a.PartitionOf(graph.VertexID(v)) != b.PartitionOf(graph.VertexID(v)) {
			return false
		}
	}
	return true
}

// TestStreamBalanceBound checks the hard guarantee on adversarial and
// random graphs: no partition exceeds ceil((1+eps)*n/p) under either
// streaming partitioner, refinement included.
func TestStreamBalanceBound(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"star":      star(500),
		"ring":      ring(1000),
		"community": community(10, 40),
	}
	r := rand.New(rand.NewSource(99))
	b := graph.NewBuilder(300)
	for i := 0; i < 1500; i++ {
		b.AddEdge(graph.VertexID(r.Intn(300)), graph.VertexID(r.Intn(300)))
	}
	graphs["random"] = b.Build()

	for name, g := range graphs {
		n := g.NumVertices()
		for _, p := range []int{1, 2, 7, 16} {
			for _, o := range []StreamOptions{
				{},
				{Seed: 3, RefinePasses: 2},
				{Seed: 5, Epsilon: 0.02},
			} {
				bound := o.Capacity(n, p)
				for kind, m := range map[string]*Map{
					"ldg":    NewLDGOpts(g, p, 1, o),
					"fennel": NewFennelOpts(g, p, 1, o),
				} {
					s := Cut(g, m)
					if s.MaxLoad > bound {
						t.Errorf("%s/%s p=%d opts=%+v: MaxLoad %d > bound %d",
							name, kind, p, o, s.MaxLoad, bound)
					}
					total := 0
					for q := 0; q < p; q++ {
						total += len(m.Vertices(ID(q)))
					}
					if total != n {
						t.Errorf("%s/%s p=%d: lost vertices (%d of %d)", name, kind, p, total, n)
					}
				}
			}
		}
	}
}

// TestStreamSeedDeterminism: a fixed seed fully determines the
// placement; distinct seeds are allowed (and on a tie-heavy star,
// expected) to differ.
func TestStreamSeedDeterminism(t *testing.T) {
	g := star(400)
	n := g.NumVertices()
	for kind, mk := range map[string]func(seed uint64) *Map{
		"ldg":    func(s uint64) *Map { return NewLDGOpts(g, 8, 2, StreamOptions{Seed: s, RefinePasses: 1}) },
		"fennel": func(s uint64) *Map { return NewFennel(g, 8, 2, s) },
	} {
		if !sameAssignment(mk(7), mk(7), n) {
			t.Errorf("%s: same seed produced different placements", kind)
		}
		diff := false
		for s := uint64(1); s < 6 && !diff; s++ {
			diff = !sameAssignment(mk(0), mk(s), n)
		}
		if !diff {
			t.Errorf("%s: five distinct seeds all produced the same tie-breaks on a star", kind)
		}
	}
}

// TestFennelBeatsHashOnCommunityGraph mirrors the LDG test: community
// structure must translate into a much smaller cut than hashing.
func TestFennelBeatsHashOnCommunityGraph(t *testing.T) {
	g := community(8, 25)
	fennel := Cut(g, NewFennel(g, 8, 2, 1))
	hash := Cut(g, NewHash(g, 8, 2, 1))
	if fennel.CutEdges >= hash.CutEdges/2 {
		t.Errorf("fennel cut %d not well below hash cut %d", fennel.CutEdges, hash.CutEdges)
	}
}

// TestRefinementNeverHurtsMuch: refinement keeps the cut at or near the
// single-pass result on a community graph (it exists to help Fennel's
// myopic early placements; it must never wreck a good placement).
func TestRefinementReducesFennelCut(t *testing.T) {
	g := community(12, 30)
	once := Cut(g, NewFennelOpts(g, 12, 3, StreamOptions{Seed: 2}))
	refined := Cut(g, NewFennelOpts(g, 12, 3, StreamOptions{Seed: 2, RefinePasses: 2}))
	if refined.CutEdges > once.CutEdges {
		t.Errorf("refinement increased the cut: %d -> %d", once.CutEdges, refined.CutEdges)
	}
}

// TestStreamEdgeCases: single partition, two-vertex graphs, and an
// edgeless graph all place every vertex within bounds. (Empty graphs
// panic in validate, same as every other constructor — covered below.)
func TestStreamEdgeCases(t *testing.T) {
	single := ring(30)
	for kind, m := range map[string]*Map{
		"ldg":    NewLDG(single, 1, 1),
		"fennel": NewFennel(single, 1, 1, 0),
	} {
		for v := 0; v < 30; v++ {
			if m.PartitionOf(graph.VertexID(v)) != 0 {
				t.Fatalf("%s: single-partition map strayed", kind)
			}
		}
	}

	two := graph.NewBuilder(2).Build() // no edges at all
	for kind, m := range map[string]*Map{
		"ldg":    NewLDG(two, 4, 2),
		"fennel": NewFennel(two, 4, 2, 0),
	} {
		seen := map[ID]bool{}
		for v := 0; v < 2; v++ {
			seen[m.PartitionOf(graph.VertexID(v))] = true
		}
		if len(seen) != 2 {
			t.Errorf("%s: edgeless pair piled onto one partition: %v", kind, seen)
		}
	}

	hub := star(100)
	tight := StreamOptions{Epsilon: 0.01}
	m := NewLDGOpts(hub, 10, 2, tight)
	if s := Cut(hub, m); s.MaxLoad > tight.Capacity(100, 10) {
		t.Errorf("star overloads under tight epsilon: %d", s.MaxLoad)
	}
}

func TestStreamEmptyGraphPanics(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	for kind, mk := range map[string]func(){
		"ldg":    func() { NewLDG(g, 2, 1) },
		"fennel": func() { NewFennel(g, 2, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: empty graph did not panic", kind)
				}
			}()
			mk()
		}()
	}
}

// TestKindRegistry: New dispatches by name, treats "" as hash
// bit-identically, and rejects unknown names.
func TestKindRegistry(t *testing.T) {
	g := ring(64)
	for _, kind := range Kinds() {
		m, err := New(kind, g, 8, 2, 11)
		if err != nil || m == nil {
			t.Fatalf("New(%q) failed: %v", kind, err)
		}
		if !ValidKind(kind) {
			t.Fatalf("ValidKind(%q) = false", kind)
		}
	}
	def, _ := New("", g, 8, 2, 11)
	hash, _ := New(KindHash, g, 8, 2, 11)
	if !sameAssignment(def, hash, 64) {
		t.Error("empty kind is not bit-identical to hash")
	}
	if _, err := New("metis", g, 8, 2, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	if ValidKind("metis") || !ValidKind("") {
		t.Error("ValidKind misclassifies")
	}
}

// TestQualityReport pins the report on the Figure 4/5 fixture, where
// every number is checkable by hand.
func TestQualityReport(t *testing.T) {
	g, m := figure45()
	q := Report(g, m)
	if q.Partitions != 4 || q.Workers != 2 {
		t.Fatalf("P/W = %d/%d", q.Partitions, q.Workers)
	}
	// Classes from TestFigure4Classification: 1 p-internal, 2 local,
	// 1 remote, 3 mixed.
	if q.PInternal != 1 || q.LocalBoundary != 2 || q.RemoteBoundary != 1 || q.MixedBoundary != 3 {
		t.Errorf("census = %d/%d/%d/%d", q.PInternal, q.LocalBoundary, q.RemoteBoundary, q.MixedBoundary)
	}
	if got := q.PInternal + q.LocalBoundary + q.RemoteBoundary + q.MixedBoundary; got != g.NumVertices() {
		t.Errorf("census sums to %d, want %d", got, g.NumVertices())
	}
	if want := 6.0 / 7.0; math.Abs(q.BoundaryFraction-want) > 1e-12 {
		t.Errorf("boundary fraction = %v, want %v", q.BoundaryFraction, want)
	}
	// Undirected edges v1-v3 and v2-v5 cross workers: v1, v2 each get a
	// mirror on worker 1; v3, v5 each get one on worker 0. 4 mirrors/7.
	if want := 1 + 4.0/7.0; math.Abs(q.ReplicationFactor-want) > 1e-12 {
		t.Errorf("replication factor = %v, want %v", q.ReplicationFactor, want)
	}
	// Cut agrees with Cut(), skew with MaxLoad/(n/P).
	cut := Cut(g, m)
	if q.CutEdges != cut.CutEdges || q.MaxLoad != cut.MaxLoad || q.MinLoad != cut.MinLoad {
		t.Errorf("report cut fields diverge from Cut(): %+v vs %+v", q, cut)
	}
	if want := float64(cut.MaxLoad) * 4 / 7; math.Abs(q.BalanceSkew-want) > 1e-12 {
		t.Errorf("balance skew = %v, want %v", q.BalanceSkew, want)
	}
	for _, c := range []Class{PInternal, LocalBoundary, RemoteBoundary, MixedBoundary} {
		if q.ClassCount(c) == 0 && c != PInternal {
			t.Errorf("ClassCount(%v) = 0", c)
		}
	}
}

// Property: the quality census always sums to n and agrees with
// Classify, for every partitioner kind on random graphs.
func TestQualityCensusProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(60)
		b := graph.NewBuilder(n)
		for i := 0; i < r.Intn(n*4); i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
		}
		g := b.Build()
		p := 1 + r.Intn(8)
		w := 1 + r.Intn(p)
		kind := Kinds()[r.Intn(len(Kinds()))]
		m, err := New(kind, g, p, w, uint64(seed))
		if err != nil {
			return false
		}
		q := Report(g, m)
		counts := [4]int{}
		for _, c := range Classify(g, m) {
			counts[c]++
		}
		return q.PInternal == counts[0] && q.LocalBoundary == counts[1] &&
			q.RemoteBoundary == counts[2] && q.MixedBoundary == counts[3] &&
			q.PInternal+q.LocalBoundary+q.RemoteBoundary+q.MixedBoundary == n &&
			q.BoundaryFraction >= 0 && q.BoundaryFraction <= 1 &&
			q.ReplicationFactor >= 1 && q.ReplicationFactor <= float64(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestStreamDeterminismDeep: full-struct equality across repeated
// construction, not just assignments — guards accidental use of map
// iteration or time in the stream loop.
func TestStreamDeterminismDeep(t *testing.T) {
	g := community(6, 20)
	a := NewFennelOpts(g, 9, 3, StreamOptions{Seed: 42, RefinePasses: 2})
	b := NewFennelOpts(g, 9, 3, StreamOptions{Seed: 42, RefinePasses: 2})
	if !reflect.DeepEqual(a, b) {
		t.Error("fennel construction is not deterministic")
	}
}
