// Package partition implements graph partitioning and the vertex
// classifications the paper's synchronization techniques depend on:
// machine-internal vs. machine-boundary vertices (Definition 1), partition-
// internal vs. partition-boundary vertices (Definition 4), and the four-way
// refinement used by dual-layer token passing (§5.3): p-internal, local
// boundary, remote boundary, and mixed boundary.
//
// The default partitioner is random hash partitioning, which is what the
// paper's evaluation uses (§7.1). Partitions are assigned to workers round-
// robin, Giraph's default placement.
package partition

import (
	"fmt"

	"serialgraph/internal/graph"
)

// ID identifies a partition: 0 <= ID < NumPartitions.
type ID int32

// Class is the dual-layer token passing vertex classification (§5.3).
type Class uint8

const (
	// PInternal vertices have every neighbor in their own partition; they
	// execute without holding any token.
	PInternal Class = iota
	// LocalBoundary vertices are m-internal but have a neighbor in another
	// partition of the same worker; they need the worker's local token.
	LocalBoundary
	// RemoteBoundary vertices have neighbors only on other workers'
	// partitions; they need the global token.
	RemoteBoundary
	// MixedBoundary vertices have neighbors both on their own worker and on
	// other workers; they need both tokens.
	MixedBoundary
)

func (c Class) String() string {
	switch c {
	case PInternal:
		return "p-internal"
	case LocalBoundary:
		return "local-boundary"
	case RemoteBoundary:
		return "remote-boundary"
	case MixedBoundary:
		return "mixed-boundary"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Map is an immutable assignment of vertices to partitions and partitions
// to workers.
type Map struct {
	P, W int

	vertexPart []ID    // len n
	partWorker []int32 // len P

	partVerts [][]graph.VertexID // vertices of each partition, ascending
}

// NewHash randomly hash-partitions the n vertices of g into p partitions
// spread over w workers (round-robin partition placement). The seed makes
// the assignment reproducible.
func NewHash(g *graph.Graph, p, w int, seed uint64) *Map {
	validate(g, p, w)
	vp := make([]ID, g.NumVertices())
	for v := range vp {
		vp[v] = ID(mix64(uint64(v)+seed*0x9e3779b97f4a7c15) % uint64(p))
	}
	return assemble(g, p, w, vp)
}

// mix64 is the splitmix64 finalizer: a fast, deterministic 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRange splits vertices into p contiguous ranges.
func NewRange(g *graph.Graph, p, w int) *Map {
	validate(g, p, w)
	n := g.NumVertices()
	vp := make([]ID, n)
	for v := 0; v < n; v++ {
		part := v * p / n
		if part >= p {
			part = p - 1
		}
		vp[v] = ID(part)
	}
	return assemble(g, p, w, vp)
}

// NewExplicit builds a Map from explicit assignments: vertexPart[v] is v's
// partition and partWorker[p] is p's worker. Used by tests and the paper's
// worked examples (Figures 4 and 5).
func NewExplicit(g *graph.Graph, vertexPart []ID, partWorker []int32, w int) *Map {
	if len(vertexPart) != g.NumVertices() {
		panic("partition: vertexPart length mismatch")
	}
	p := len(partWorker)
	m := &Map{P: p, W: w, vertexPart: vertexPart, partWorker: partWorker}
	m.partVerts = make([][]graph.VertexID, p)
	for v, pid := range vertexPart {
		if pid < 0 || int(pid) >= p {
			panic(fmt.Sprintf("partition: vertex %d has bad partition %d", v, pid))
		}
		m.partVerts[pid] = append(m.partVerts[pid], graph.VertexID(v))
	}
	for _, wk := range partWorker {
		if wk < 0 || int(wk) >= w {
			panic("partition: bad worker id")
		}
	}
	return m
}

func validate(g *graph.Graph, p, w int) {
	if p < 1 || w < 1 {
		panic(fmt.Sprintf("partition: need p >= 1 and w >= 1, got %d/%d", p, w))
	}
	if g.NumVertices() == 0 {
		panic("partition: empty graph")
	}
}

func assemble(g *graph.Graph, p, w int, vp []ID) *Map {
	pw := make([]int32, p)
	for i := range pw {
		pw[i] = int32(i % w) // round-robin, Giraph's default placement
	}
	return NewExplicit(g, vp, pw, w)
}

// PartitionOf returns the partition owning v.
func (m *Map) PartitionOf(v graph.VertexID) ID { return m.vertexPart[v] }

// WorkerOf returns the worker owning v.
func (m *Map) WorkerOf(v graph.VertexID) int { return int(m.partWorker[m.vertexPart[v]]) }

// WorkerOfPartition returns the worker that partition p is placed on.
func (m *Map) WorkerOfPartition(p ID) int { return int(m.partWorker[p]) }

// Vertices returns the vertices of partition p in ascending order. The
// slice aliases internal storage and must not be modified.
func (m *Map) Vertices(p ID) []graph.VertexID { return m.partVerts[p] }

// PartitionsOfWorker returns the partition IDs placed on worker w, in
// ascending order.
func (m *Map) PartitionsOfWorker(w int) []ID {
	var out []ID
	for p, wk := range m.partWorker {
		if int(wk) == w {
			out = append(out, ID(p))
		}
	}
	return out
}

// Classify computes the dual-layer class of every vertex (§5.3), where
// "neighbors" means in-edge plus out-edge neighbors, per §3.1. The
// classification only needs existence flags, so both adjacency lists are
// scanned directly without deduplication — one allocation-free O(V+E)
// pass, cheap enough for the engine to report partition quality on every
// run.
func Classify(g *graph.Graph, m *Map) []Class {
	n := g.NumVertices()
	classes := make([]Class, n)
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		myPart := m.PartitionOf(u)
		myWorker := m.WorkerOf(u)
		sameWorkerOtherPart := false
		otherWorker := false
		samePart := false
		note := func(nb graph.VertexID) {
			switch {
			case m.PartitionOf(nb) == myPart:
				samePart = true
			case m.WorkerOf(nb) == myWorker:
				sameWorkerOtherPart = true
			default:
				otherWorker = true
			}
		}
		for _, nb := range g.OutNeighbors(u) {
			note(nb)
		}
		for _, nb := range g.InNeighbors(u) {
			note(nb)
		}
		switch {
		case !sameWorkerOtherPart && !otherWorker:
			classes[v] = PInternal
		case !otherWorker:
			classes[v] = LocalBoundary
		case !sameWorkerOtherPart && !samePart:
			classes[v] = RemoteBoundary
		default:
			classes[v] = MixedBoundary
		}
	}
	return classes
}

// IsMBoundary reports whether u has a neighbor on another worker
// (Definition 1).
func IsMBoundary(g *graph.Graph, m *Map, u graph.VertexID) bool {
	w := m.WorkerOf(u)
	found := false
	g.Neighbors(u, func(nb graph.VertexID) {
		if m.WorkerOf(nb) != w {
			found = true
		}
	})
	return found
}

// IsPBoundary reports whether u has a neighbor in another partition
// (Definition 4).
func IsPBoundary(g *graph.Graph, m *Map, u graph.VertexID) bool {
	p := m.PartitionOf(u)
	found := false
	g.Neighbors(u, func(nb graph.VertexID) {
		if m.PartitionOf(nb) != p {
			found = true
		}
	})
	return found
}

// PBoundaryFlags computes IsPBoundary for every vertex in one pass over
// the edge set. The per-vertex predicate walks both adjacency lists each
// call; when a caller needs the answer for every vertex every superstep
// (the vertex-locking engine does), the precomputed form turns an
// O(edges) cost per superstep into a slice load per vertex.
func PBoundaryFlags(g *graph.Graph, m *Map) []bool {
	n := g.NumVertices()
	flags := make([]bool, n)
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		pu := m.PartitionOf(u)
		for _, nb := range g.OutNeighbors(u) {
			if m.PartitionOf(nb) != pu {
				flags[u] = true
				flags[nb] = true
			}
		}
	}
	return flags
}

// Neighbors returns, for every partition, the sorted set of other
// partitions that share at least one edge with it (ignoring direction).
// These pairs are exactly the "virtual partition edges" of Figure 5 that
// carry Chandy–Misra forks in partition-based distributed locking.
func (m *Map) Neighbors(g *graph.Graph) [][]ID {
	sets := make([]map[ID]struct{}, m.P)
	for i := range sets {
		sets[i] = make(map[ID]struct{})
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		pu := m.PartitionOf(u)
		for _, nb := range g.OutNeighbors(u) {
			pv := m.PartitionOf(nb)
			if pu != pv {
				sets[pu][pv] = struct{}{}
				sets[pv][pu] = struct{}{}
			}
		}
	}
	out := make([][]ID, m.P)
	for i, s := range sets {
		lst := make([]ID, 0, len(s))
		for p := range s {
			lst = append(lst, p)
		}
		sortIDs(lst)
		out[i] = lst
	}
	return out
}

func sortIDs(a []ID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// CutStats summarizes partition quality.
type CutStats struct {
	CutEdges    int     // directed edges crossing partitions
	CutFraction float64 // CutEdges / total edges
	MaxLoad     int     // largest partition size (vertices)
	MinLoad     int
}

// Cut computes partition quality statistics.
func Cut(g *graph.Graph, m *Map) CutStats {
	var s CutStats
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		pu := m.PartitionOf(u)
		for _, nb := range g.OutNeighbors(u) {
			if m.PartitionOf(nb) != pu {
				s.CutEdges++
			}
		}
	}
	if g.NumEdges() > 0 {
		s.CutFraction = float64(s.CutEdges) / float64(g.NumEdges())
	}
	s.MinLoad = n
	for p := 0; p < m.P; p++ {
		l := len(m.Vertices(ID(p)))
		if l > s.MaxLoad {
			s.MaxLoad = l
		}
		if l < s.MinLoad {
			s.MinLoad = l
		}
	}
	return s
}
