package partition

// stream.go implements the locality-aware streaming partitioners: LDG
// (linear deterministic greedy, Stanton & Kliot, KDD 2012) and Fennel
// (Tsourakakis et al., WSDM 2014). Both place vertices one at a time in
// ID order, scoring each candidate partition by how many already-placed
// neighbors it holds; they differ only in the balance penalty. Unlike
// hash partitioning — the paper's baseline, which maximizes boundary
// fractions — a streaming pass co-locates communities, directly
// shrinking the p-boundary/m-boundary populations every synchronization
// technique pays for (§5.3).
//
// Guarantees shared by both partitioners:
//
//   - Hard balance bound: no partition ever exceeds
//     ceil((1+Epsilon) * n / p) vertices. Full partitions are simply
//     ineligible, and total capacity always covers n, so placement
//     cannot fail.
//   - Determinism: for a fixed graph, partition count, and seed the
//     output is identical. Score ties prefer the least-loaded
//     partition; residual ties are broken by a seeded hash so distinct
//     seeds explore distinct (but individually reproducible) placements.
//   - Optional refinement: RefinePasses extra passes re-stream every
//     vertex with full knowledge of the placement, moving it when a
//     strictly better partition has room.

import (
	"math"

	"serialgraph/internal/graph"
)

// DefaultEpsilon is the streaming partitioners' balance slack when
// StreamOptions.Epsilon is unset: partitions may exceed the ideal n/p
// load by 10%.
const DefaultEpsilon = 0.1

// StreamOptions tunes the streaming partitioners.
type StreamOptions struct {
	// Seed drives deterministic tie-breaking. Two runs with the same
	// seed produce the same Map; different seeds may legitimately
	// differ wherever scores tie.
	Seed uint64
	// Epsilon is the balance slack: no partition exceeds
	// ceil((1+Epsilon)*n/p) vertices. Values <= 0 mean DefaultEpsilon.
	Epsilon float64
	// RefinePasses is the number of extra refinement passes after the
	// initial stream. Each pass revisits every vertex in ID order and
	// moves it when a strictly better-scoring partition has capacity.
	RefinePasses int
}

func (o StreamOptions) epsilon() float64 {
	if o.Epsilon <= 0 {
		return DefaultEpsilon
	}
	return o.Epsilon
}

// Capacity returns the hard per-partition vertex bound the options
// imply for an n-vertex graph split p ways: ceil((1+eps)*n/p).
func (o StreamOptions) Capacity(n, p int) int {
	c := int(math.Ceil(float64(n) * (1 + o.epsilon()) / float64(p)))
	if c < 1 {
		c = 1
	}
	// Rounding never undershoots ((1+eps)*n >= n), but guard anyway so
	// placement can always succeed.
	if c*p < n {
		c = (n + p - 1) / p
	}
	return c
}

// NewLDGOpts partitions with linear deterministic greedy streaming under
// explicit options. The score of placing v into partition q is
//
//	|placed neighbors of v in q| * (1 - size(q)/capacity)
//
// so neighbors attract and fullness repels, with the capacity bound
// enforced as a hard constraint on top of the soft penalty.
func NewLDGOpts(g *graph.Graph, p, w int, o StreamOptions) *Map {
	validate(g, p, w)
	cap_ := o.Capacity(g.NumVertices(), p)
	gain := func(score float64, size int) float64 {
		return score * (1 - float64(size)/float64(cap_))
	}
	return stream(g, p, w, o, cap_, gain)
}

// NewLDG partitions with the linear deterministic greedy streaming
// heuristic of Stanton & Kliot under default options (seed 0, 10%
// balance slack, no refinement). It produces fewer cut edges than
// hashing and serves as the "better partitioning" point in the ablation
// experiments.
func NewLDG(g *graph.Graph, p, w int) *Map {
	return NewLDGOpts(g, p, w, StreamOptions{})
}

// NewFennelOpts partitions with the Fennel streaming objective under
// explicit options. The marginal gain of placing v into partition q is
//
//	|placed neighbors of v in q| - alpha * gamma * size(q)^(gamma-1)
//
// with gamma = 1.5 and alpha = sqrt(p) * m / n^1.5 (the interpolation
// point Tsourakakis et al. recommend), plus the same hard capacity
// bound as LDG so the balance guarantee is unconditional.
func NewFennelOpts(g *graph.Graph, p, w int, o StreamOptions) *Map {
	validate(g, p, w)
	n := g.NumVertices()
	cap_ := o.Capacity(n, p)
	const gamma = 1.5
	alpha := math.Sqrt(float64(p)) * float64(g.NumEdges()) / math.Pow(float64(n), gamma)
	if alpha == 0 {
		// Edgeless graphs: any positive penalty keeps the stream
		// spreading vertices round-robin-ish instead of piling on q0.
		alpha = 1
	}
	gain := func(score float64, size int) float64 {
		return score - alpha*gamma*math.Sqrt(float64(size))
	}
	return stream(g, p, w, o, cap_, gain)
}

// NewFennel partitions with the Fennel streaming objective: seeded
// tie-breaking, 10% balance slack, one refinement pass (Fennel gains
// more from restreaming than LDG because its additive penalty makes
// early placements myopic).
func NewFennel(g *graph.Graph, p, w int, seed uint64) *Map {
	return NewFennelOpts(g, p, w, StreamOptions{Seed: seed, RefinePasses: 1})
}

// stream runs the shared greedy loop: an initial placement pass in ID
// order, then o.RefinePasses refinement sweeps. gain maps (neighbor
// score, current size) to the placement objective; capacity is the hard
// per-partition bound.
func stream(g *graph.Graph, p, w int, o StreamOptions, capacity int, gain func(score float64, size int) float64) *Map {
	n := g.NumVertices()
	vp := make([]ID, n)
	for v := range vp {
		vp[v] = -1
	}
	size := make([]int, p)
	score := make([]float64, p)
	touched := make([]ID, 0, 16) // partitions with nonzero score this vertex

	place := func(v int) {
		u := graph.VertexID(v)
		count := func(nb graph.VertexID) {
			if q := vp[nb]; q >= 0 {
				if score[q] == 0 {
					touched = append(touched, q)
				}
				score[q]++
			}
		}
		for _, nb := range g.OutNeighbors(u) {
			count(nb)
		}
		for _, nb := range g.InNeighbors(u) {
			count(nb)
		}
		best, bestGain, bestTie := -1, math.Inf(-1), uint64(0)
		for i := 0; i < p; i++ {
			if size[i] >= capacity {
				continue // hard balance bound
			}
			s := gain(score[i], size[i])
			tie := mix64(o.Seed ^ uint64(v)<<20 ^ uint64(i))
			better := s > bestGain
			if !better && s == bestGain {
				// Tie-break toward the least-loaded partition for
				// balance, then by seeded hash for determinism.
				if size[i] != size[best] {
					better = size[i] < size[best]
				} else {
					better = tie > bestTie
				}
			}
			if better {
				best, bestGain, bestTie = i, s, tie
			}
		}
		vp[v] = ID(best)
		size[best]++
		for _, q := range touched {
			score[q] = 0
		}
		touched = touched[:0]
	}

	for v := 0; v < n; v++ {
		place(v)
	}
	for pass := 0; pass < o.RefinePasses; pass++ {
		for v := 0; v < n; v++ {
			// Remove and re-place with full knowledge of the final
			// placement; the vacated slot keeps staying-put eligible.
			size[vp[v]]--
			vp[v] = -1
			place(v)
		}
	}
	return assemble(g, p, w, vp)
}
