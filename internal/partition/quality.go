package partition

// quality.go is the partition quality report: one struct capturing
// everything the paper's cost model keys on — edge-cut (remote bytes),
// the four-way §5.3 class census (token and lock pressure), replication
// factor (mirror/ghost state), and balance skew (straggler risk). The
// engine computes it once per run and threads it into Result, metrics,
// and the bench rows, so partition quality is visible without a
// debugger.

import "serialgraph/internal/graph"

// Quality summarizes how well a Map localizes a graph. JSON field names
// are part of the bench report schema (BENCH_NNNN.json) and must stay
// stable.
type Quality struct {
	Partitions int `json:"partitions"`
	Workers    int `json:"workers"`

	// Edge locality: directed edges whose endpoints live in different
	// partitions, and the fraction of all edges they represent.
	CutEdges    int     `json:"cut_edges"`
	CutFraction float64 `json:"cut_fraction"`

	// Balance: largest and smallest partition (in vertices) and the
	// skew MaxLoad / (n/P). 1.0 is perfect balance; the streaming
	// partitioners guarantee skew <= 1+epsilon.
	MaxLoad     int     `json:"max_load"`
	MinLoad     int     `json:"min_load"`
	BalanceSkew float64 `json:"balance_skew"`

	// The §5.3 vertex census: per-Class counts over all vertices.
	PInternal      int `json:"p_internal"`
	LocalBoundary  int `json:"local_boundary"`
	RemoteBoundary int `json:"remote_boundary"`
	MixedBoundary  int `json:"mixed_boundary"`

	// BoundaryFraction is the share of vertices that are not
	// p-internal — exactly the population every synchronization
	// technique pays for (tokens, partition locks, fork grants).
	BoundaryFraction float64 `json:"boundary_fraction"`

	// ReplicationFactor is the average number of workers that hold a
	// copy of each vertex under the paper's replica model (§3.1): the
	// owner plus one mirror per distinct remote worker among its
	// neighbors. 1.0 means no mirrors at all.
	ReplicationFactor float64 `json:"replication_factor"`
}

// ClassCount returns the census count for one §5.3 class.
func (q Quality) ClassCount(c Class) int {
	switch c {
	case PInternal:
		return q.PInternal
	case LocalBoundary:
		return q.LocalBoundary
	case RemoteBoundary:
		return q.RemoteBoundary
	case MixedBoundary:
		return q.MixedBoundary
	}
	return 0
}

// Report computes the quality of m on g in two O(V+E) passes (Cut plus
// a classify/replication sweep), with no per-vertex allocation.
func Report(g *graph.Graph, m *Map) Quality {
	return ReportClassified(g, m, Classify(g, m))
}

// ReportClassified is Report with the classification precomputed, so
// callers that already ran Classify (the engine does, for dual-layer
// tokens) don't pay for it twice.
func ReportClassified(g *graph.Graph, m *Map, classes []Class) Quality {
	n := g.NumVertices()
	cut := Cut(g, m)
	q := Quality{
		Partitions:  m.P,
		Workers:     m.W,
		CutEdges:    cut.CutEdges,
		CutFraction: cut.CutFraction,
		MaxLoad:     cut.MaxLoad,
		MinLoad:     cut.MinLoad,
	}
	if n > 0 {
		q.BalanceSkew = float64(cut.MaxLoad) * float64(m.P) / float64(n)
	}
	for _, c := range classes {
		switch c {
		case PInternal:
			q.PInternal++
		case LocalBoundary:
			q.LocalBoundary++
		case RemoteBoundary:
			q.RemoteBoundary++
		case MixedBoundary:
			q.MixedBoundary++
		}
	}
	if n > 0 {
		q.BoundaryFraction = float64(n-q.PInternal) / float64(n)
	}

	// Replication: count distinct workers per vertex neighborhood with
	// a version-stamped scratch array instead of a per-vertex set.
	stamp := make([]int, m.W)
	for i := range stamp {
		stamp[i] = -1
	}
	mirrors := 0
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		mine := m.WorkerOf(u)
		note := func(nb graph.VertexID) {
			if wk := m.WorkerOf(nb); wk != mine && stamp[wk] != v {
				stamp[wk] = v
				mirrors++
			}
		}
		for _, nb := range g.OutNeighbors(u) {
			note(nb)
		}
		for _, nb := range g.InNeighbors(u) {
			note(nb)
		}
	}
	if n > 0 {
		q.ReplicationFactor = 1 + float64(mirrors)/float64(n)
	}
	return q
}

// Quality computes the quality report for m on g.
func (m *Map) Quality(g *graph.Graph) Quality { return Report(g, m) }
