package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"serialgraph/internal/graph"
)

// figure45 builds the 7-vertex, 2-worker, 4-partition example of the
// paper's Figures 4 and 5: P0{v0} P1{v1,v2} on worker 0, P2{v3,v4}
// P3{v5,v6} on worker 1, with undirected edges v0-v1, v1-v3, v2-v5, v3-v4,
// v4-v5, v5-v6.
func figure45() (*graph.Graph, *Map) {
	b := graph.NewBuilder(7)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 3}, {2, 5}, {3, 4}, {4, 5}, {5, 6}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.BuildUndirected()
	vp := []ID{0, 1, 1, 2, 2, 3, 3}
	pw := []int32{0, 0, 1, 1}
	return g, NewExplicit(g, vp, pw, 2)
}

func TestFigure4Classification(t *testing.T) {
	g, m := figure45()
	classes := Classify(g, m)
	want := []Class{
		LocalBoundary,  // v0: neighbor v1 in P1, same worker
		MixedBoundary,  // v1: v0 on own worker, v3 on worker 1
		RemoteBoundary, // v2: only neighbor v5 is on worker 1
		MixedBoundary,  // v3: v4 same partition (own worker), v1 on worker 0
		LocalBoundary,  // v4: v3 same partition, v5 in P3 same worker
		MixedBoundary,  // v5: v2 on worker 0, v4/v6 on own worker
		PInternal,      // v6: only neighbor v5 is in P3
	}
	if !reflect.DeepEqual(classes, want) {
		t.Errorf("Classify = %v\nwant       %v", classes, want)
	}
}

func TestFigure5ForkTopology(t *testing.T) {
	g, m := figure45()
	nb := m.Neighbors(g)
	want := [][]ID{
		{1},       // P0 - P1 via v0-v1
		{0, 2, 3}, // P1 - P0, P1 - P2 via v1-v3, P1 - P3 via v2-v5
		{1, 3},    // P2 - P1, P2 - P3 via v4-v5
		{1, 2},    // P3
	}
	if !reflect.DeepEqual(nb, want) {
		t.Errorf("Neighbors = %v\nwant        %v", nb, want)
	}
}

func TestFigure4BoundaryPredicates(t *testing.T) {
	g, m := figure45()
	for v, wantM := range []bool{false, true, true, true, false, true, false} {
		if got := IsMBoundary(g, m, graph.VertexID(v)); got != wantM {
			t.Errorf("IsMBoundary(v%d) = %v, want %v", v, got, wantM)
		}
	}
	for v, wantP := range []bool{true, true, true, true, true, true, false} {
		if got := IsPBoundary(g, m, graph.VertexID(v)); got != wantP {
			t.Errorf("IsPBoundary(v%d) = %v, want %v", v, got, wantP)
		}
	}
}

func TestHashPartitionBasics(t *testing.T) {
	g := ring(100)
	m := NewHash(g, 8, 4, 1)
	if m.P != 8 || m.W != 4 {
		t.Fatalf("P/W = %d/%d", m.P, m.W)
	}
	// Every vertex in exactly one partition, and Vertices() covers all.
	seen := make([]bool, 100)
	for p := 0; p < 8; p++ {
		if got := m.WorkerOfPartition(ID(p)); got != p%4 {
			t.Errorf("partition %d on worker %d, want round-robin %d", p, got, p%4)
		}
		for _, v := range m.Vertices(ID(p)) {
			if seen[v] {
				t.Fatalf("vertex %d in two partitions", v)
			}
			seen[v] = true
			if m.PartitionOf(v) != ID(p) {
				t.Fatalf("PartitionOf(%d) mismatch", v)
			}
			if m.WorkerOf(v) != p%4 {
				t.Fatalf("WorkerOf(%d) mismatch", v)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d not assigned", v)
		}
	}
}

func TestHashDeterministicAndSeedSensitive(t *testing.T) {
	g := ring(200)
	a := NewHash(g, 8, 4, 7)
	b := NewHash(g, 8, 4, 7)
	c := NewHash(g, 8, 4, 8)
	same, diff := true, false
	for v := 0; v < 200; v++ {
		u := graph.VertexID(v)
		if a.PartitionOf(u) != b.PartitionOf(u) {
			same = false
		}
		if a.PartitionOf(u) != c.PartitionOf(u) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different partitionings")
	}
	if !diff {
		t.Error("different seeds produced identical partitionings")
	}
}

func TestHashBalance(t *testing.T) {
	g := ring(10000)
	m := NewHash(g, 16, 4, 3)
	s := Cut(g, m)
	if s.MinLoad < 400 || s.MaxLoad > 900 {
		t.Errorf("hash imbalance: min %d max %d (expect ~625)", s.MinLoad, s.MaxLoad)
	}
}

func TestRangePartition(t *testing.T) {
	g := ring(10)
	m := NewRange(g, 3, 3)
	wantParts := []ID{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	for v, want := range wantParts {
		if got := m.PartitionOf(graph.VertexID(v)); got != want {
			t.Errorf("PartitionOf(%d) = %d, want %d", v, got, want)
		}
	}
	// A ring cut into 3 ranges has exactly 3 cut edges.
	if s := Cut(g, m); s.CutEdges != 3 {
		t.Errorf("ring range cut = %d, want 3", s.CutEdges)
	}
}

func TestLDGBeatsHashOnCommunityGraph(t *testing.T) {
	// Two dense cliques joined by one edge: LDG should cut far fewer edges
	// than random hashing.
	b := graph.NewBuilder(40)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
				b.AddEdge(graph.VertexID(20+i), graph.VertexID(20+j))
			}
		}
	}
	b.AddEdge(0, 20)
	g := b.Build()
	ldg := Cut(g, NewLDG(g, 2, 2))
	hash := Cut(g, NewHash(g, 2, 2, 1))
	if ldg.CutEdges >= hash.CutEdges {
		t.Errorf("LDG cut %d >= hash cut %d", ldg.CutEdges, hash.CutEdges)
	}
	if ldg.CutFraction > 0.2 {
		t.Errorf("LDG cut fraction %.2f too high for two cliques", ldg.CutFraction)
	}
}

func TestLDGBalance(t *testing.T) {
	g := ring(1000)
	m := NewLDG(g, 10, 5)
	s := Cut(g, m)
	if s.MaxLoad > 120 {
		t.Errorf("LDG partition overloaded: %d (cap ~110)", s.MaxLoad)
	}
	total := 0
	for p := 0; p < 10; p++ {
		total += len(m.Vertices(ID(p)))
	}
	if total != 1000 {
		t.Errorf("LDG lost vertices: %d", total)
	}
}

func TestPartitionsOfWorker(t *testing.T) {
	g := ring(12)
	m := NewHash(g, 6, 2, 1)
	if got := m.PartitionsOfWorker(0); !reflect.DeepEqual(got, []ID{0, 2, 4}) {
		t.Errorf("worker 0 partitions = %v", got)
	}
	if got := m.PartitionsOfWorker(1); !reflect.DeepEqual(got, []ID{1, 3, 5}) {
		t.Errorf("worker 1 partitions = %v", got)
	}
}

func TestSinglePartitionClassification(t *testing.T) {
	// With one partition on one worker, everything is p-internal.
	g := ring(10)
	m := NewHash(g, 1, 1, 1)
	for _, c := range Classify(g, m) {
		if c != PInternal {
			t.Fatalf("class = %v, want p-internal", c)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		PInternal: "p-internal", LocalBoundary: "local-boundary",
		RemoteBoundary: "remote-boundary", MixedBoundary: "mixed-boundary",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

// Property: classification is consistent with the boundary predicates on
// random graphs and partitionings.
func TestClassifyConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(50)
		b := graph.NewBuilder(n)
		for i := 0; i < r.Intn(n*4); i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
		}
		g := b.Build()
		p := 1 + r.Intn(8)
		w := 1 + r.Intn(p)
		m := NewHash(g, p, w, uint64(seed))
		classes := Classify(g, m)
		for v := 0; v < n; v++ {
			u := graph.VertexID(v)
			mb, pb := IsMBoundary(g, m, u), IsPBoundary(g, m, u)
			c := classes[v]
			if mb != (c == RemoteBoundary || c == MixedBoundary) {
				return false
			}
			if !pb && c != PInternal {
				return false
			}
			if c == PInternal && pb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: partition Neighbors is symmetric and matches the edge set.
func TestNeighborsSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(50)
		b := graph.NewBuilder(n)
		for i := 0; i < r.Intn(n*3); i++ {
			b.AddEdge(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
		}
		g := b.Build()
		m := NewHash(g, 1+r.Intn(6), 1, uint64(seed))
		nbs := m.Neighbors(g)
		for p, lst := range nbs {
			for _, q := range lst {
				found := false
				for _, back := range nbs[q] {
					if back == ID(p) {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	return b.Build()
}
