package partition

// kind.go is the named-partitioner registry: one string-keyed
// constructor shared by every configuration surface (engine defaults,
// serialgraph.Options, graphrun -partitioner, dist wire jobs, the
// torture harness), so a coordinator and its worker processes derive
// bit-identical partition maps from the same (kind, seed) pair.

import (
	"fmt"

	"serialgraph/internal/graph"
)

// Partitioner kind names accepted by New.
const (
	KindHash   = "hash"
	KindRange  = "range"
	KindLDG    = "ldg"
	KindFennel = "fennel"
)

// Kinds lists the partitioner names New accepts, in a stable order.
func Kinds() []string {
	return []string{KindHash, KindRange, KindLDG, KindFennel}
}

// ValidKind reports whether name is a known partitioner kind. The empty
// string is valid and means the default (hash).
func ValidKind(name string) bool {
	if name == "" {
		return true
	}
	for _, k := range Kinds() {
		if k == name {
			return true
		}
	}
	return false
}

// New builds a partition map by kind name. The empty string selects the
// default (hash), keeping zero-valued configs bit-identical to the
// pre-registry behavior. The seed feeds hash placement and the
// streaming partitioners' tie-breaking; range ignores it.
func New(kind string, g *graph.Graph, p, w int, seed uint64) (*Map, error) {
	switch kind {
	case "", KindHash:
		return NewHash(g, p, w, seed), nil
	case KindRange:
		return NewRange(g, p, w), nil
	case KindLDG:
		return NewLDGOpts(g, p, w, StreamOptions{Seed: seed}), nil
	case KindFennel:
		return NewFennel(g, p, w, seed), nil
	}
	return nil, fmt.Errorf("partition: unknown partitioner %q (want one of %v)", kind, Kinds())
}
