// Package generate produces seeded synthetic graphs that stand in for the
// paper's real-world datasets (Table 1). All generators are deterministic
// for a given seed so that experiments are reproducible run-to-run.
//
// The evaluation graphs (com-Orkut, arabic-2005, twitter-2010, uk-2007-05)
// all follow power-law degree distributions with very large maximum degrees;
// PowerLaw (a Chung–Lu style model) reproduces that skew, and RMAT provides
// a second heavy-tailed family with community structure.
package generate

import (
	"fmt"
	"math"
	"math/rand"

	"serialgraph/internal/graph"
)

// PowerLawConfig parameterizes the Chung–Lu style generator.
type PowerLawConfig struct {
	N         int     // number of vertices
	AvgDegree float64 // target average out-degree
	Exponent  float64 // power-law exponent (typically 2.0–2.5; smaller = more skew)
	MaxDegree int     // cap on expected degree (0 = n-1)
	Seed      int64
}

// PowerLaw generates a directed graph whose out-degree sequence follows a
// power law: vertex i gets expected weight proportional to
// (i+1)^(-1/(Exponent-1)), normalized to AvgDegree, then that many random
// out-edges are sampled with endpoints drawn from the same weight
// distribution (preferential targets), yielding heavy-tailed in-degrees too.
func PowerLaw(cfg PowerLawConfig) *graph.Graph {
	if cfg.N <= 1 {
		panic("generate: PowerLaw needs N > 1")
	}
	if cfg.Exponent <= 1 {
		panic("generate: PowerLaw needs Exponent > 1")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 || maxDeg > n-1 {
		maxDeg = n - 1
	}

	// Chung–Lu weights w_i = c * (i+i0)^(-gamma) with gamma = 1/(exp-1).
	gamma := 1 / (cfg.Exponent - 1)
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -gamma)
		sum += w[i]
	}
	scale := cfg.AvgDegree * float64(n) / sum
	cum := make([]float64, n+1)
	for i := range w {
		w[i] *= scale
		if w[i] > float64(maxDeg) {
			w[i] = float64(maxDeg)
		}
		cum[i+1] = cum[i] + w[i]
	}
	total := cum[n]

	// pick samples a vertex with probability proportional to its weight.
	pick := func() graph.VertexID {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.VertexID(lo)
	}

	b := graph.NewBuilder(n)
	dedup := newEdgeSet(b)
	perm := r.Perm(n) // shuffle so heavy vertices are not clustered at low IDs
	for i := 0; i < n; i++ {
		deg := int(w[i])
		if r.Float64() < w[i]-float64(deg) {
			deg++
		}
		src := graph.VertexID(perm[i])
		for d := 0; d < deg; d++ {
			dst := graph.VertexID(perm[pick()])
			if dst == src {
				continue
			}
			dedup.add(src, dst)
		}
	}
	// Guarantee weak connectivity-ish reachability for SSSP/WCC by threading
	// a random Hamiltonian-ish path through all vertices.
	for i := 1; i < n; i++ {
		dedup.add(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	return b.Build()
}

// edgeSet deduplicates directed edges on their way into a builder. All
// generators produce simple graphs: the message-store replica model keeps
// one slot per distinct in-neighbor, and real-world evaluation datasets are
// simple graphs too.
type edgeSet struct {
	b    *graph.Builder
	seen map[uint64]struct{}
}

func newEdgeSet(b *graph.Builder) *edgeSet {
	return &edgeSet{b: b, seen: make(map[uint64]struct{})}
}

func (s *edgeSet) add(u, v graph.VertexID) {
	key := uint64(uint32(u))<<32 | uint64(uint32(v))
	if _, dup := s.seen[key]; dup {
		return
	}
	s.seen[key] = struct{}{}
	s.b.AddEdge(u, v)
}

// RMATConfig parameterizes the recursive matrix generator of Chakrabarti et
// al., the generator behind the Graph500 benchmark.
type RMATConfig struct {
	Scale      int     // 2^Scale vertices
	EdgeFactor float64 // edges per vertex
	A, B, C    float64 // quadrant probabilities (D = 1-A-B-C)
	Seed       int64
}

// RMAT generates a directed R-MAT graph.
func RMAT(cfg RMATConfig) *graph.Graph {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		panic(fmt.Sprintf("generate: bad RMAT scale %d", cfg.Scale))
	}
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19 // Graph500 defaults
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Scale
	m := int(cfg.EdgeFactor * float64(n))
	b := graph.NewBuilder(n)
	dedup := newEdgeSet(b)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := 1 << (cfg.Scale - 1); bit > 0; bit >>= 1 {
			x := r.Float64()
			switch {
			case x < cfg.A: // top-left
			case x < cfg.A+cfg.B: // top-right
				dst |= bit
			case x < cfg.A+cfg.B+cfg.C: // bottom-left
				src |= bit
			default:
				src |= bit
				dst |= bit
			}
		}
		if src != dst {
			dedup.add(graph.VertexID(src), graph.VertexID(dst))
		}
	}
	for i := 1; i < n; i++ {
		dedup.add(graph.VertexID(i-1), graph.VertexID(i))
	}
	return b.Build()
}

// ErdosRenyi generates a directed G(n, m) graph with exactly m random edges
// (self-loops excluded).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	dedup := newEdgeSet(b)
	for b.NumEdges() < m {
		src := graph.VertexID(r.Intn(n))
		dst := graph.VertexID(r.Intn(n))
		if dst != src {
			dedup.add(src, dst)
		}
	}
	return b.Build()
}

// Ring generates the n-cycle 0->1->...->n-1->0.
func Ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	return b.Build()
}

// Grid generates a rows x cols 4-neighbor grid with edges in both
// directions (a bounded-degree graph, useful as a locking stress test with
// no degree skew).
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
				b.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
				b.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	return b.Build()
}

// Families lists the generator families Family accepts, in a stable order,
// so randomized harnesses can sample the full shape axis.
func Families() []string {
	return []string{"powerlaw", "rmat", "erdos", "ring", "grid", "complete"}
}

// Family builds a graph of roughly n vertices (n >= 2) from the named
// family with family-typical default parameters, deterministically for a
// given seed. It is the single entry point used by the torture harness and
// CLI tools to sample the graph-shape axis; unknown names panic.
func Family(name string, n int, seed int64) *graph.Graph {
	if n < 2 {
		panic(fmt.Sprintf("generate: Family needs n >= 2, got %d", n))
	}
	switch name {
	case "powerlaw":
		return PowerLaw(PowerLawConfig{N: n, AvgDegree: 5, Exponent: 2.2, Seed: seed})
	case "rmat":
		scale := 1
		for 1<<scale < n {
			scale++
		}
		return RMAT(RMATConfig{Scale: scale, EdgeFactor: 5, Seed: seed})
	case "erdos":
		m := 4 * n
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		return ErdosRenyi(n, m, seed)
	case "ring":
		return Ring(n)
	case "grid":
		rows := 2
		for (rows+1)*(rows+1) <= n {
			rows++
		}
		return Grid(rows, (n+rows-1)/rows)
	case "complete":
		return Complete(n)
	default:
		panic(fmt.Sprintf("generate: unknown family %q (want one of %v)", name, Families()))
	}
}

// Complete generates the complete directed graph K_n (every ordered pair).
// Dense graphs are the adversarial case for greedy coloring (§1).
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	return b.Build()
}
