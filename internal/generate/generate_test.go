package generate

import (
	"math"
	"testing"

	"serialgraph/internal/graph"
)

func TestPowerLawBasic(t *testing.T) {
	g := PowerLaw(PowerLawConfig{N: 2000, AvgDegree: 10, Exponent: 2.2, Seed: 1})
	if g.NumVertices() != 2000 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	// The connectivity path adds ~1 to the average degree.
	if avg < 7 || avg > 15 {
		t.Errorf("average degree %.1f far from target 10", avg)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{N: 500, AvgDegree: 8, Exponent: 2.1, Seed: 99}
	a, b := PowerLaw(cfg), PowerLaw(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for u := graph.VertexID(0); int(u) < a.NumVertices(); u++ {
		an, bn := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(an) != len(bn) {
			t.Fatalf("vertex %d: degree differs", u)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("vertex %d: neighbor %d differs", u, i)
			}
		}
	}
	c := PowerLaw(PowerLawConfig{N: 500, AvgDegree: 8, Exponent: 2.1, Seed: 100})
	if c.NumEdges() == a.NumEdges() {
		t.Log("different seeds gave equal edge count (possible but unlikely); checking adjacency")
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(PowerLawConfig{N: 5000, AvgDegree: 12, Exponent: 2.0, Seed: 7})
	s := graph.Summarize(g)
	// A power-law graph must have a max degree far above the average.
	if float64(s.MaxDegree) < 10*s.AvgDegree {
		t.Errorf("max degree %d not skewed vs avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestPowerLawMaxDegreeCap(t *testing.T) {
	g := PowerLaw(PowerLawConfig{N: 3000, AvgDegree: 10, Exponent: 2.0, MaxDegree: 50, Seed: 7})
	maxOut := 0
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		if d := g.OutDegree(u); d > maxOut {
			maxOut = d
		}
	}
	// +2 slack: the rounding and the connectivity path can add edges.
	if maxOut > 52 {
		t.Errorf("out-degree %d exceeds cap 50", maxOut)
	}
}

func TestPowerLawReachability(t *testing.T) {
	// The threaded path guarantees every vertex is reachable from the path
	// head; check total reachability from some vertex via BFS on the
	// undirected view.
	g := PowerLaw(PowerLawConfig{N: 300, AvgDegree: 4, Exponent: 2.2, Seed: 3})
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := []graph.VertexID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.Neighbors(u, func(v graph.VertexID) {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		})
	}
	if count != n {
		t.Errorf("graph not weakly connected: reached %d of %d", count, n)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 5})
	if g.NumVertices() != 1024 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 7*1024 {
		t.Errorf("NumEdges = %d, want >= %d", g.NumEdges(), 7*1024)
	}
	s := graph.Summarize(g)
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Errorf("RMAT not skewed: max %d avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, 11)
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Fatalf("got %d/%d", g.NumVertices(), g.NumEdges())
	}
	for u := graph.VertexID(0); int(u) < 100; u++ {
		for _, v := range g.OutNeighbors(u) {
			if v == u {
				t.Fatal("self-loop in ER graph")
			}
		}
	}
}

func TestRingAndGridAndComplete(t *testing.T) {
	r := Ring(10)
	if r.NumEdges() != 10 || r.OutDegree(9) != 1 || r.OutNeighbors(9)[0] != 0 {
		t.Error("Ring wrong")
	}
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("grid vertices = %d", g.NumVertices())
	}
	// 2*(rows*(cols-1) + (rows-1)*cols) directed edges.
	if want := 2 * (3*3 + 2*4); g.NumEdges() != want {
		t.Errorf("grid edges = %d, want %d", g.NumEdges(), want)
	}
	k := Complete(5)
	if k.NumEdges() != 20 {
		t.Errorf("K5 edges = %d, want 20", k.NumEdges())
	}
}

func TestCatalog(t *testing.T) {
	if len(Catalog) != 4 {
		t.Fatalf("catalog has %d datasets, want 4", len(Catalog))
	}
	prevEdges := 0
	for _, d := range Catalog {
		g := d.Build(0.25)
		s := graph.Summarize(g)
		if s.Vertices < 16 {
			t.Errorf("%s: too small: %+v", d.Name, s)
		}
		if s.Edges <= prevEdges {
			t.Errorf("%s: edge count %d not increasing across catalog", d.Name, s.Edges)
		}
		prevEdges = s.Edges
	}
	if _, err := ByName("TW"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestDatasetScale(t *testing.T) {
	d, _ := ByName("OR")
	small, big := d.Build(0.1), d.Build(0.5)
	if small.NumVertices() >= big.NumVertices() {
		t.Errorf("scale did not change size: %d vs %d", small.NumVertices(), big.NumVertices())
	}
	ratio := float64(big.NumVertices()) / float64(small.NumVertices())
	if math.Abs(ratio-5) > 0.5 {
		t.Errorf("vertex ratio %.2f, want ~5", ratio)
	}
}

func TestFamilyBuildsEveryShape(t *testing.T) {
	for _, name := range Families() {
		for _, n := range []int{2, 8, 33, 100} {
			g := Family(name, n, 7)
			if g.NumVertices() < 2 {
				t.Errorf("Family(%s, %d) built %d vertices", name, n, g.NumVertices())
			}
			if g.NumEdges() == 0 {
				t.Errorf("Family(%s, %d) built an edgeless graph", name, n)
			}
			// Families approximate n; none should explode past a small
			// multiple (rmat rounds up to the next power of two).
			if g.NumVertices() > 2*n+4 {
				t.Errorf("Family(%s, %d) built %d vertices, far over target", name, n, g.NumVertices())
			}
		}
	}
}

func TestFamilyDeterministic(t *testing.T) {
	for _, name := range Families() {
		a, b := Family(name, 40, 13), Family(name, 40, 13)
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("Family(%s) not deterministic: %d/%d vs %d/%d vertices/edges",
				name, a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
		}
		for v := graph.VertexID(0); int(v) < a.NumVertices(); v++ {
			av, bv := a.OutNeighbors(v), b.OutNeighbors(v)
			if len(av) != len(bv) {
				t.Fatalf("Family(%s) v%d degree differs across builds", name, v)
			}
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("Family(%s) v%d adjacency differs across builds", name, v)
				}
			}
		}
	}
}

func TestFamilyRejectsUnknownAndTiny(t *testing.T) {
	for _, bad := range []func(){
		func() { Family("nope", 10, 1) },
		func() { Family("ring", 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}
