package generate

import (
	"fmt"
	"sort"

	"serialgraph/internal/graph"
)

// Dataset describes a synthetic stand-in for one of the paper's Table 1
// datasets. Sizes are scaled down from the originals (which range from 117M
// to 3.73B edges) so that the full evaluation grid runs on one machine; the
// power-law skew, the relative ordering of the datasets by size, and the
// social-network vs. web-graph flavor are preserved.
type Dataset struct {
	Name     string // short name used in the paper: OR, AR, TW, UK
	FullName string
	// Paper's original statistics (directed), for Table 1 reporting.
	PaperVertices, PaperEdges int64
	PaperMaxDegree            int64
	// Generator parameters for the scaled analog.
	N         int
	AvgDegree float64
	Exponent  float64
	MaxDeg    int
	Seed      int64
}

// Catalog lists the four evaluation datasets in paper order. Scale factors
// are roughly 1/400 (OR) to 1/4000 (UK) by vertex count; average degree is
// compressed (real averages are 28–39) to keep the bench grid fast while
// preserving ordering OR < AR < TW < UK by total edges.
var Catalog = []Dataset{
	{
		Name: "OR", FullName: "com-Orkut (synthetic analog)",
		PaperVertices: 3_000_000, PaperEdges: 117_000_000, PaperMaxDegree: 33_000,
		N: 4_000, AvgDegree: 16, Exponent: 2.3, MaxDeg: 450, Seed: 41,
	},
	{
		Name: "AR", FullName: "arabic-2005 (synthetic analog)",
		PaperVertices: 22_700_000, PaperEdges: 639_000_000, PaperMaxDegree: 575_000,
		N: 8_000, AvgDegree: 14, Exponent: 2.1, MaxDeg: 1_600, Seed: 43,
	},
	{
		Name: "TW", FullName: "twitter-2010 (synthetic analog)",
		PaperVertices: 41_600_000, PaperEdges: 1_460_000_000, PaperMaxDegree: 2_900_000,
		N: 12_000, AvgDegree: 14, Exponent: 2.0, MaxDeg: 4_000, Seed: 47,
	},
	{
		Name: "UK", FullName: "uk-2007-05 (synthetic analog)",
		PaperVertices: 105_000_000, PaperEdges: 3_730_000_000, PaperMaxDegree: 975_000,
		N: 20_000, AvgDegree: 12, Exponent: 2.1, MaxDeg: 3_000, Seed: 53,
	},
}

// ByName returns the catalog dataset with the given short name.
func ByName(name string) (Dataset, error) {
	for _, d := range Catalog {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(Catalog))
	for i, d := range Catalog {
		names[i] = d.Name
	}
	sort.Strings(names)
	return Dataset{}, fmt.Errorf("generate: unknown dataset %q (have %v)", name, names)
}

// Build generates the directed analog graph, optionally scaled: scale 1.0
// uses the catalog size, 0.5 halves the vertex count, etc.
func (d Dataset) Build(scale float64) *graph.Graph {
	cfg := PowerLawConfig{
		N:         max(int(float64(d.N)*scale), 16),
		AvgDegree: d.AvgDegree,
		Exponent:  d.Exponent,
		MaxDegree: max(int(float64(d.MaxDeg)*scale), 8),
		Seed:      d.Seed,
	}
	return PowerLaw(cfg)
}
