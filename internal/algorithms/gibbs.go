package algorithms

import (
	"math"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// GibbsValue is the per-vertex state of the Ising Gibbs sampler.
type GibbsValue struct {
	Spin  int32 // +1 or -1
	Sweep int32 // completed sweeps
}

// IsingGibbs is a Gibbs sampler for the Ising model, the machine learning
// workload the paper's introduction cites as requiring serializability for
// statistical correctness (Gonzalez et al. [17]): a vertex resamples its
// spin from the conditional distribution given its neighbors' *current*
// spins, and the chain's stationary distribution is only correct if no two
// neighboring vertices resample concurrently — exactly conditions C1 and
// C2.
//
// Each vertex performs `sweeps` resampling steps at inverse temperature
// beta and then halts. Randomness is a deterministic hash of (vertex,
// sweep, seed), so runs are reproducible. Sweep progress lives in the
// vertex value rather than the superstep counter, so the sampler runs
// unchanged under token passing (§6.5). Requires an undirected graph.
func IsingGibbs(beta float64, sweeps int, seed uint64) model.Program[GibbsValue, int32] {
	return model.Program[GibbsValue, int32]{
		Name:      "ising-gibbs",
		Semantics: model.Overwrite,
		MsgBytes:  4,
		Init: func(id graph.VertexID, _ *graph.Graph) GibbsValue {
			spin := int32(1)
			if uniform(id, -1, seed) < 0.5 {
				spin = -1
			}
			return GibbsValue{Spin: spin}
		},
		Compute: func(ctx model.Context[GibbsValue, int32], msgs []int32) {
			v := ctx.Value()
			if v.Sweep >= int32(sweeps) {
				ctx.VoteToHalt()
				return
			}
			// Conditional: P(spin = +1 | neighbors) = sigmoid(2β Σ s_j).
			sum := 0.0
			for _, m := range msgs {
				sum += float64(m)
			}
			pUp := 1 / (1 + math.Exp(-2*beta*sum))
			spin := int32(-1)
			if uniform(ctx.ID(), int(v.Sweep), seed) < pUp {
				spin = 1
			}
			v.Spin = spin
			v.Sweep++
			ctx.SetValue(v)
			// Write-all (§3.3): every write propagates to the replicas,
			// even when the spin is unchanged — the sweep counter advanced
			// the primary's version, and C1 requires replicas to match.
			ctx.SendToAllOut(v.Spin)
			if v.Sweep >= int32(sweeps) {
				ctx.VoteToHalt()
			}
			// Otherwise stay active for the next sweep.
		},
	}
}

// uniform maps (vertex, sweep, seed) to a deterministic number in [0, 1).
func uniform(v graph.VertexID, sweep int, seed uint64) float64 {
	x := uint64(uint32(v))<<32 | uint64(uint32(sweep+1))
	x ^= seed * 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// AlignedFraction returns the fraction of edges whose endpoint spins
// agree. Random spins give ~0.5; a low-temperature (high beta) Gibbs chain
// drives it toward 1 even while opposing domains keep the global
// magnetization low.
func AlignedFraction(g *graph.Graph, vals []GibbsValue) float64 {
	aligned, total := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		u := graph.VertexID(v)
		for _, nb := range g.OutNeighbors(u) {
			total++
			if vals[u].Spin == vals[nb].Spin {
				aligned++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(aligned) / float64(total)
}

// Magnetization returns |Σ spins| / n, the order parameter of the Ising
// model: near 0 for disordered (high temperature) states, near 1 for
// ordered (low temperature) states.
func Magnetization(vals []GibbsValue) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += float64(v.Spin)
	}
	return math.Abs(sum) / float64(len(vals))
}
