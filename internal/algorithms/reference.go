package algorithms

import (
	"fmt"
	"math"

	"serialgraph/internal/graph"
)

// ValidateColoring checks that colors is a proper coloring of g: every
// vertex colored, no edge monochromatic.
func ValidateColoring(g *graph.Graph, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("coloring: got %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] == NoColor {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		u := graph.VertexID(v)
		for _, nb := range g.OutNeighbors(u) {
			if nb != u && colors[nb] == colors[v] {
				return fmt.Errorf("coloring: conflict on edge %d-%d (both color %d)", v, nb, colors[v])
			}
		}
	}
	return nil
}

// ColorsUsed returns the number of distinct colors.
func ColorsUsed(colors []int32) int {
	seen := map[int32]struct{}{}
	for _, c := range colors {
		if c != NoColor {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// ShortestPaths is a sequential Dijkstra/BFS reference for SSSP
// verification. Unit weights reduce it to BFS.
func ShortestPaths(g *graph.Graph, source graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[source] = 0
	// Simple binary-heap-free Dijkstra via repeated relaxation would be
	// O(VE); use a FIFO-ish SPFA which is fine at test scale and exact.
	queue := []graph.VertexID{source}
	inQ := make([]bool, n)
	inQ[source] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQ[u] = false
		nbs := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range nbs {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
				if !inQ[v] {
					inQ[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return dist
}

// Components is a union-find reference for WCC: it returns for each vertex
// the smallest vertex ID in its weakly connected component.
func Components(g *graph.Graph) []int32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, nb := range g.OutNeighbors(graph.VertexID(v)) {
			union(int32(v), int32(nb))
		}
	}
	out := make([]int32, n)
	for v := range out {
		out[v] = find(int32(v))
	}
	return out
}

// PageRankResidual returns the maximum residual |pr(u) - (0.15 + 0.85 Σ
// pr(v)/deg(v))| over all vertices — a convergence quality measure
// independent of execution order.
func PageRankResidual(g *graph.Graph, pr []float64) float64 {
	n := g.NumVertices()
	maxRes := 0.0
	for v := 0; v < n; v++ {
		sum := 0.0
		for _, in := range g.InNeighbors(graph.VertexID(v)) {
			if d := g.OutDegree(in); d > 0 {
				sum += pr[in] / float64(d)
			}
		}
		res := math.Abs(pr[v] - (0.15 + 0.85*sum))
		if res > maxRes {
			maxRes = res
		}
	}
	return maxRes
}

// PageRankReference iteratively computes ranks to a tight tolerance for
// comparison.
func PageRankReference(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, in := range g.InNeighbors(graph.VertexID(v)) {
				if d := g.OutDegree(in); d > 0 {
					sum += pr[in] / float64(d)
				}
			}
			next[v] = 0.15 + 0.85*sum
		}
		pr, next = next, pr
	}
	return pr
}

// errf mirrors fmt.Errorf for the validators.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
