package algorithms

import (
	"testing"

	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
)

func undirectedPL(n int, seed int64) *graph.Graph {
	g := generate.PowerLaw(generate.PowerLawConfig{N: n, AvgDegree: 5, Exponent: 2.2, Seed: seed})
	b := graph.NewBuilder(g.NumVertices())
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

func TestValidateMIS(t *testing.T) {
	// Path 0-1-2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.BuildUndirected()

	if err := ValidateMIS(g, []int32{MISIn, MISOut, MISIn}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	// Middle vertex alone is also a valid MIS.
	if err := ValidateMIS(g, []int32{MISOut, MISIn, MISOut}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := ValidateMIS(g, []int32{MISIn, MISIn, MISOut}); err == nil {
		t.Error("adjacent In pair accepted")
	}
	if err := ValidateMIS(g, []int32{MISIn, MISOut, MISOut}); err == nil {
		t.Error("non-maximal set accepted (vertex 2 Out with no In neighbor)")
	}
	if err := ValidateMIS(g, []int32{MISIn, MISOut, MISUnknown}); err == nil {
		t.Error("undecided vertex accepted")
	}
	if err := ValidateMIS(g, []int32{MISIn}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestLubyHashDeterministic(t *testing.T) {
	a := lubyHash(42, 3, 7)
	if lubyHash(42, 3, 7) != a {
		t.Error("hash not deterministic")
	}
	if lubyHash(42, 4, 7) == a && lubyHash(43, 3, 7) == a {
		t.Error("hash ignores inputs")
	}
}

func TestMISGreedyShape(t *testing.T) {
	// Direct unit exercise of the compute function's three branches through
	// a scripted context would duplicate the engine; instead check the GAS
	// Apply logic, which is pure.
	p := MISGreedyGAS()
	if v, act := p.Apply(0, MISUnknown, nil, false); v != MISIn || !act {
		t.Errorf("lone vertex: %d,%v want In,true", v, act)
	}
	if v, act := p.Apply(0, MISUnknown, []int32{MISIn}, true); v != MISOut || act {
		t.Errorf("with In neighbor: %d,%v want Out,false", v, act)
	}
	if v, act := p.Apply(0, MISIn, []int32{MISIn}, true); v != MISIn || act {
		t.Errorf("already decided: %d,%v want In,false", v, act)
	}
	if got := p.Gather(0, 1, MISOut, 1); got != nil {
		t.Errorf("gather of Out neighbor = %v, want nil", got)
	}
}
