package algorithms

import (
	"math"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// ColoringGAS is greedy coloring in GAS form: gather collects neighbor
// colors, apply picks the smallest free color and scatters only on change.
// GraphLab's pull-based model completes in a single pass per vertex under
// serializability (§7.2.1).
func ColoringGAS() model.GASProgram[int32, []int32] {
	return model.GASProgram[int32, []int32]{
		Name: "coloring-gas",
		Init: func(graph.VertexID, *graph.Graph) int32 { return NoColor },
		Gather: func(_, _ graph.VertexID, nbrVal int32, _ float64) []int32 {
			if nbrVal == NoColor {
				return nil
			}
			return []int32{nbrVal}
		},
		Sum: func(a, b []int32) []int32 { return append(a, b...) },
		Apply: func(_ graph.VertexID, old int32, acc []int32, _ bool) (int32, bool) {
			c := smallestFree(acc)
			if old != NoColor {
				// Already colored: keep the color unless a conflict arose.
				conflict := false
				for _, u := range acc {
					if u == old {
						conflict = true
						break
					}
				}
				if !conflict {
					return old, false
				}
			}
			return c, c != old
		},
		ValBytes: 4,
	}
}

// PageRankGAS is PageRank in GAS form. Gather needs each in-neighbor's
// out-degree, so the constructor closes over the graph.
func PageRankGAS(g *graph.Graph, eps float64) model.GASProgram[float64, float64] {
	return model.GASProgram[float64, float64]{
		Name: "pagerank-gas",
		Init: func(graph.VertexID, *graph.Graph) float64 { return 1.0 },
		Gather: func(_, nbr graph.VertexID, nbrVal float64, _ float64) float64 {
			if d := g.OutDegree(nbr); d > 0 {
				return nbrVal / float64(d)
			}
			return 0
		},
		Sum: func(a, b float64) float64 { return a + b },
		Apply: func(_ graph.VertexID, old float64, acc float64, hasAcc bool) (float64, bool) {
			pr := 0.15
			if hasAcc {
				pr += 0.85 * acc
			}
			return pr, math.Abs(pr-old) > eps
		},
		ValBytes: 8,
	}
}

// SSSPGAS is SSSP in GAS form: gather pulls each in-neighbor's distance
// plus the edge weight, apply keeps the minimum and scatters on
// improvement.
func SSSPGAS(source graph.VertexID) model.GASProgram[float64, float64] {
	return model.GASProgram[float64, float64]{
		Name: "sssp-gas",
		Init: func(id graph.VertexID, _ *graph.Graph) float64 {
			if id == source {
				return 0
			}
			return Infinity
		},
		Gather: func(_, _ graph.VertexID, nbrVal float64, w float64) float64 {
			if w == 0 {
				w = 1
			}
			return nbrVal + w
		},
		Sum: math.Min,
		Apply: func(_ graph.VertexID, old float64, acc float64, hasAcc bool) (float64, bool) {
			if hasAcc && acc < old {
				return acc, true
			}
			// The source's first activation must scatter its 0 distance.
			return old, old == 0
		},
		ValBytes: 8,
	}
}

// WCCGAS is HCC in GAS form on a symmetrized graph.
func WCCGAS() model.GASProgram[int32, int32] {
	return model.GASProgram[int32, int32]{
		Name: "wcc-gas",
		Init: func(id graph.VertexID, _ *graph.Graph) int32 { return int32(id) },
		Gather: func(_, _ graph.VertexID, nbrVal int32, _ float64) int32 {
			return nbrVal
		},
		Sum: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
		Apply: func(_ graph.VertexID, old int32, acc int32, hasAcc bool) (int32, bool) {
			if hasAcc && acc < old {
				return acc, true
			}
			return old, false
		},
		ValBytes: 4,
	}
}
