package algorithms

import (
	"sort"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// LabelPropagation is the classic community detection algorithm of
// Raghavan et al.: every vertex repeatedly adopts the most frequent label
// among its neighbors (smallest label on ties) until nothing changes.
//
// LPA is a textbook case of the paper's motivation: under synchronous
// (BSP) updates it famously oscillates on bipartite-ish structures — two
// sides swap labels forever — while asynchronous serializable execution,
// where each vertex sees fresh neighbor labels and no two neighbors update
// together, converges. Requires an undirected graph.
func LabelPropagation() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name:      "label-propagation",
		Semantics: model.Overwrite,
		MsgBytes:  4,
		Init:      func(graph.VertexID, *graph.Graph) int32 { return -1 },
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			cur := ctx.Value()
			if cur < 0 {
				// First execution: adopt own ID and announce it.
				cur = int32(ctx.ID())
				ctx.SetValue(cur)
				ctx.SendToAllOut(cur)
				ctx.VoteToHalt()
				return
			}
			if len(msgs) == 0 {
				ctx.VoteToHalt()
				return
			}
			best := majorityLabel(msgs)
			if best != cur {
				ctx.SetValue(best)
				ctx.SendToAllOut(best)
			}
			ctx.VoteToHalt()
		},
	}
}

// majorityLabel returns the most frequent label, breaking ties toward the
// smallest.
func majorityLabel(labels []int32) int32 {
	count := make(map[int32]int, len(labels))
	for _, l := range labels {
		if l >= 0 {
			count[l]++
		}
	}
	best, bestN := int32(-1), 0
	for l, n := range count {
		if n > bestN || (n == bestN && (best < 0 || l < best)) {
			best, bestN = l, n
		}
	}
	return best
}

// KCoreValue is the per-vertex state of KCore: the current coreness
// estimate plus the latest estimate heard from each neighbor. Carrying the
// neighbor table in the value keeps the algorithm correct under every
// engine, including BSP where messages are visible for only one superstep.
type KCoreValue struct {
	Est   int32
	Known map[graph.VertexID]int32
}

// KCoreMsg announces a sender's new coreness estimate.
type KCoreMsg struct {
	From graph.VertexID
	Est  int32
}

// KCore computes the coreness of every vertex with the H-index iteration
// of Lü et al.: starting from the degree, every vertex repeatedly sets its
// value to the H-index of its neighbors' values (the largest h such that h
// neighbors have value >= h). The fixed point is exactly the k-core
// number. The iteration only decreases estimates, so a vertex waits until
// it has heard from every neighbor before applying it. Requires an
// undirected graph.
func KCore() model.Program[KCoreValue, KCoreMsg] {
	return model.Program[KCoreValue, KCoreMsg]{
		Name:      "kcore",
		Semantics: model.Queue,
		MsgBytes:  8,
		Init:      func(graph.VertexID, *graph.Graph) KCoreValue { return KCoreValue{Est: -1} },
		Compute: func(ctx model.Context[KCoreValue, KCoreMsg], msgs []KCoreMsg) {
			v := ctx.Value()
			deg := len(ctx.OutNeighbors())
			first := v.Est < 0
			if first {
				v.Est = int32(deg)
				v.Known = make(map[graph.VertexID]int32, deg)
			}
			// Merge every received estimate — including those that arrived
			// before our first execution (asynchronous engines consume the
			// queue on every read, so dropping them would stall the
			// iteration).
			for _, m := range msgs {
				v.Known[m.From] = m.Est
			}
			if first {
				ctx.SetValue(v)
				ctx.SendToAllOut(KCoreMsg{From: ctx.ID(), Est: v.Est})
				ctx.VoteToHalt()
				return
			}
			if len(v.Known) == deg {
				ests := make([]int32, 0, deg)
				for _, e := range v.Known {
					ests = append(ests, e)
				}
				if h := hIndex(ests); h < v.Est {
					v.Est = h
					ctx.SetValue(v)
					ctx.SendToAllOut(KCoreMsg{From: ctx.ID(), Est: h})
					ctx.VoteToHalt()
					return
				}
			}
			ctx.SetValue(v) // persist the updated Known table
			ctx.VoteToHalt()
		},
	}
}

// KCoreEstimates extracts the coreness numbers from KCore's final values.
func KCoreEstimates(vals []KCoreValue) []int32 {
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = v.Est
	}
	return out
}

// hIndex returns the largest h such that at least h values are >= h.
func hIndex(vals []int32) int32 {
	sorted := make([]int32, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	h := int32(0)
	for i, v := range sorted {
		if v >= int32(i+1) {
			h = int32(i + 1)
		} else {
			break
		}
	}
	return h
}

// TriangleMsg carries a sender's higher-ID adjacency for triangle counting.
type TriangleMsg struct {
	From graph.VertexID
	Nbrs []graph.VertexID
}

// TriangleCount counts triangles with the two-superstep ordered-neighbor
// exchange: for every edge u–v with u < v, u sends v its neighbor IDs
// greater than v; v counts how many of them are also its neighbors. Each
// triangle u < v < w is counted exactly once, at v. The per-vertex counts
// sum to the graph's triangle total (use the "triangles" aggregator).
// Requires an undirected graph; runs on plain BSP — triangle counting is
// an example of an algorithm that needs no serializability.
func TriangleCount() model.Program[int32, TriangleMsg] {
	return model.Program[int32, TriangleMsg]{
		Name:      "triangles",
		Semantics: model.Queue,
		MsgBytes:  16,
		Compute: func(ctx model.Context[int32, TriangleMsg], msgs []TriangleMsg) {
			switch ctx.Superstep() {
			case 0:
				u := ctx.ID()
				nbs := ctx.OutNeighbors()
				for _, v := range nbs {
					if v <= u {
						continue
					}
					var higher []graph.VertexID
					for _, w := range nbs {
						if w > v {
							higher = append(higher, w)
						}
					}
					if len(higher) > 0 {
						ctx.Send(v, TriangleMsg{From: u, Nbrs: higher})
					}
				}
			case 1:
				mine := make(map[graph.VertexID]struct{})
				for _, w := range ctx.OutNeighbors() {
					mine[w] = struct{}{}
				}
				count := int32(0)
				for _, m := range msgs {
					for _, w := range m.Nbrs {
						if _, ok := mine[w]; ok {
							count++
						}
					}
				}
				ctx.SetValue(count)
				ctx.Aggregate("triangles", float64(count))
				ctx.VoteToHalt()
			default:
				ctx.VoteToHalt()
			}
		},
	}
}

// CountTrianglesReference counts triangles by brute force for verification.
func CountTrianglesReference(g *graph.Graph) int64 {
	var total int64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		nbs := g.OutNeighbors(u)
		set := make(map[graph.VertexID]struct{}, len(nbs))
		for _, x := range nbs {
			set[x] = struct{}{}
		}
		for _, x := range nbs {
			if x <= u {
				continue
			}
			for _, y := range g.OutNeighbors(x) {
				if y <= x {
					continue
				}
				if _, ok := set[y]; ok {
					total++
				}
			}
		}
	}
	return total
}

// KCoreReference computes coreness by sequential peeling for verification.
func KCoreReference(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.VertexID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort by degree (the O(E) peeling of Batagelj & Zaversnik).
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	processed := 0
	for d := 0; d <= maxDeg && processed < n; d++ {
		for i := 0; i < len(buckets[d]); i++ {
			v := buckets[d][i]
			if removed[v] || deg[v] > d {
				continue
			}
			removed[v] = true
			core[v] = int32(d)
			processed++
			for _, nb := range g.OutNeighbors(graph.VertexID(v)) {
				if !removed[nb] && deg[nb] > d {
					deg[nb]--
					buckets[deg[nb]] = append(buckets[deg[nb]], int32(nb))
				}
			}
		}
	}
	return core
}
