// Package algorithms implements the paper's four evaluation algorithms
// (§7.2) — greedy graph coloring, PageRank, SSSP, and WCC — in both the
// Pregel vertex-program form (for the BSP/AP engines) and the GAS form (for
// the GraphLab-style engine). All are written against the serializable AP
// abstraction of §6.5: initialization is value-driven rather than
// superstep-driven, so the algorithms behave identically under token
// passing, which cannot guarantee that every vertex executes in every
// superstep.
package algorithms

import (
	"math"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// NoColor is the initial vertex value for graph coloring.
const NoColor int32 = -1

// smallestFree returns the smallest non-negative color not present in the
// used list (the greedy "mex" choice of Algorithm 1 line 6).
func smallestFree(used []int32) int32 {
	if len(used) == 0 {
		return 0
	}
	seen := make(map[int32]struct{}, len(used))
	max := int32(-1)
	for _, c := range used {
		if c >= 0 {
			seen[c] = struct{}{}
			if c > max {
				max = c
			}
		}
	}
	for c := int32(0); c <= max+1; c++ {
		if _, taken := seen[c]; !taken {
			return c
		}
	}
	return max + 1
}

// Coloring is the serializable greedy coloring of Algorithm 1: a vertex
// picks the smallest color conflicting with none of its neighbors' current
// colors, broadcasts it once, and halts. Under a serializable engine the
// result is a proper coloring and every vertex selects a color exactly
// once; without serializability neighbors can pick identical colors
// (coloring stays improper or oscillates, Figures 2 and 3). Requires an
// undirected (symmetrized) input graph, §7.2.1.
func Coloring() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name:      "coloring",
		Semantics: model.Overwrite,
		MsgBytes:  4,
		Init:      func(graph.VertexID, *graph.Graph) int32 { return NoColor },
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			if ctx.Value() == NoColor {
				c := smallestFree(msgs)
				ctx.SetValue(c)
				ctx.SendToAllOut(c)
			}
			// Extraneous wake-ups (a neighbor broadcast after we chose) just
			// halt again — the paper's third iteration (§7.2.1).
			ctx.VoteToHalt()
		},
	}
}

// ColoringRecolor is the non-serializable textbook variant used for the
// Figure 2/3 demonstrations: every execution re-selects the smallest
// non-conflicting color and re-broadcasts on change. Under BSP all
// vertices flip in lockstep forever; the serializable engines terminate.
func ColoringRecolor() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name:      "coloring-recolor",
		Semantics: model.Overwrite,
		MsgBytes:  4,
		Init:      func(graph.VertexID, *graph.Graph) int32 { return NoColor },
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			if ctx.Value() == NoColor {
				ctx.SetValue(0)
				ctx.SendToAllOut(0)
				ctx.VoteToHalt()
				return
			}
			c := smallestFree(msgs)
			if c != ctx.Value() {
				ctx.SetValue(c)
				ctx.SendToAllOut(c)
			}
			ctx.VoteToHalt()
		},
	}
}

// PageRank computes ranks with the update pr(u) = 0.15 + 0.85 * Σ incoming
// pr(v)/deg+(v) (§7.2.2). A vertex stops propagating once its value changes
// by less than eps between consecutive executions; the run terminates when
// every vertex has converged. Messages use Overwrite semantics: the store
// keeps each in-neighbor's latest contribution, which is exactly the fresh-
// replica read set of the serializability formalism.
func PageRank(eps float64) model.Program[float64, float64] {
	return model.Program[float64, float64]{
		Name:      "pagerank",
		Semantics: model.Overwrite,
		MsgBytes:  8,
		Init:      func(graph.VertexID, *graph.Graph) float64 { return -1 },
		Compute: func(ctx model.Context[float64, float64], msgs []float64) {
			if ctx.Value() < 0 {
				// First execution: adopt the initial rank and seed the
				// neighbors.
				ctx.SetValue(1.0)
				if d := len(ctx.OutNeighbors()); d > 0 {
					ctx.SendToAllOut(1.0 / float64(d))
				}
				ctx.VoteToHalt()
				return
			}
			sum := 0.0
			for _, m := range msgs {
				sum += m
			}
			pr := 0.15 + 0.85*sum
			delta := math.Abs(pr - ctx.Value())
			ctx.SetValue(pr)
			if delta > eps {
				if d := len(ctx.OutNeighbors()); d > 0 {
					ctx.SendToAllOut(pr / float64(d))
				}
			}
			ctx.VoteToHalt()
		},
	}
}

// Infinity is the initial SSSP distance.
var Infinity = math.Inf(1)

// SSSP is parallel Bellman–Ford (§7.2.3) from the given source, using edge
// weights when present and unit weights otherwise. Min-combining semantics
// mirror Giraph's combiner support.
func SSSP(source graph.VertexID) model.Program[float64, float64] {
	minf := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	return model.Program[float64, float64]{
		Name:      "sssp",
		Semantics: model.Combine,
		Combine:   minf,
		MsgBytes:  8,
		Init: func(id graph.VertexID, _ *graph.Graph) float64 {
			if id == source {
				return 0
			}
			return Infinity
		},
		Compute: func(ctx model.Context[float64, float64], msgs []float64) {
			d := ctx.Value()
			changed := false
			for _, m := range msgs {
				if m < d {
					d = m
					changed = true
				}
			}
			if changed {
				ctx.SetValue(d)
			}
			// The source broadcasts on every execution; other vertices
			// propagate only improvements. A "first message-less execution"
			// guard would be wrong twice over: token techniques can defer
			// the source's first execution past superstep 0 (so a
			// superstep-0 guard fails too), and confined-recovery replay
			// may inject logged messages earlier than any fault-free
			// timeline could deliver them, so a len(msgs)==0 guard would
			// silently skip the bootstrap when replaying from the initial
			// state (the engine's replay contract — see confinedEligible —
			// forbids absence-based send guards). Re-broadcasts are
			// idempotent under the min combiner.
			if changed || (ctx.ID() == source && d == 0) {
				nbs := ctx.OutNeighbors()
				ws := ctx.OutWeights()
				for i, nb := range nbs {
					w := 1.0
					if ws != nil {
						w = ws[i]
					}
					ctx.Send(nb, d+w)
				}
			}
			ctx.VoteToHalt()
		},
	}
}

// WCC finds weakly connected components with the HCC label-propagation
// algorithm (§7.2.4): labels start at the vertex's own ID and the minimum
// label floods each component. Run it on a symmetrized graph so that
// "weakly" connected really ignores direction.
func WCC() model.Program[int32, int32] {
	mini := func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	}
	return model.Program[int32, int32]{
		Name:      "wcc",
		Semantics: model.Combine,
		Combine:   mini,
		MsgBytes:  4,
		Init:      func(graph.VertexID, *graph.Graph) int32 { return -1 },
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			cur := ctx.Value()
			d := cur
			if d < 0 {
				d = int32(ctx.ID())
			}
			for _, m := range msgs {
				if m < d {
					d = m
				}
			}
			if cur < 0 || d < cur {
				ctx.SetValue(d)
				ctx.SendToAllOut(d)
			}
			ctx.VoteToHalt()
		},
	}
}

// PageRankAggregated is the aggregator-terminated PageRank variant: every
// vertex contributes |Δpr| into a global "error" aggregator each superstep
// and the master halts the computation when the total error drops below
// tol. All vertices run every superstep (no per-vertex halting), which is
// how production Giraph jobs usually terminate PageRank.
func PageRankAggregated(tol float64) model.Program[float64, float64] {
	return model.Program[float64, float64]{
		Name:      "pagerank-aggregated",
		Semantics: model.Overwrite,
		MsgBytes:  8,
		Init:      func(graph.VertexID, *graph.Graph) float64 { return -1 },
		Compute: func(ctx model.Context[float64, float64], msgs []float64) {
			if ctx.Value() < 0 {
				ctx.SetValue(1.0)
				ctx.Aggregate("error", 1)
				if d := len(ctx.OutNeighbors()); d > 0 {
					ctx.SendToAllOut(1.0 / float64(d))
				}
				return // stay active: termination is the master's call
			}
			sum := 0.0
			for _, m := range msgs {
				sum += m
			}
			pr := 0.15 + 0.85*sum
			ctx.Aggregate("error", math.Abs(pr-ctx.Value()))
			ctx.SetValue(pr)
			if d := len(ctx.OutNeighbors()); d > 0 {
				ctx.SendToAllOut(pr / float64(d))
			}
		},
		MasterHalt: func(superstep int, agg map[string]float64) bool {
			return superstep > 0 && agg["error"] < tol
		},
	}
}
