package algorithms

import (
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// MIS vertex states.
const (
	MISUnknown int32 = 0
	MISIn      int32 = 1
	MISOut     int32 = 2
)

// MISGreedy computes a maximal independent set with the one-pass greedy
// rule: a vertex joins the set iff, at the moment it executes, no neighbor
// has joined. This is exactly the class of algorithm the paper's
// introduction motivates — correct only under serializability. Under a
// serializable engine every vertex decides once and the result is a valid
// MIS; without serializability two adjacent vertices can join
// simultaneously. Requires an undirected input graph.
func MISGreedy() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name:      "mis-greedy",
		Semantics: model.Overwrite,
		MsgBytes:  4,
		Init:      func(graph.VertexID, *graph.Graph) int32 { return MISUnknown },
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			if ctx.Value() == MISUnknown {
				for _, m := range msgs {
					if m == MISIn {
						ctx.SetValue(MISOut)
						ctx.VoteToHalt()
						return
					}
				}
				ctx.SetValue(MISIn)
				ctx.SendToAllOut(MISIn)
			}
			ctx.VoteToHalt()
		},
	}
}

// MISGreedyGAS is the same greedy rule in GAS form for the vertex-locking
// engine.
func MISGreedyGAS() model.GASProgram[int32, []int32] {
	return model.GASProgram[int32, []int32]{
		Name: "mis-greedy-gas",
		Init: func(graph.VertexID, *graph.Graph) int32 { return MISUnknown },
		Gather: func(_, _ graph.VertexID, nbrVal int32, _ float64) []int32 {
			if nbrVal == MISIn {
				return []int32{nbrVal}
			}
			return nil
		},
		Sum: func(a, b []int32) []int32 { return append(a, b...) },
		Apply: func(_ graph.VertexID, old int32, acc []int32, _ bool) (int32, bool) {
			if old != MISUnknown {
				return old, false
			}
			if len(acc) > 0 {
				return MISOut, false
			}
			return MISIn, true // activate neighbors so they mark themselves Out
		},
		ValBytes: 4,
	}
}

// LubyValue packs the per-round random priority with the MIS state.
type LubyValue struct {
	State    int32
	Priority uint32
}

// LubyMsg carries a neighbor's round priority or decision.
type LubyMsg struct {
	From     graph.VertexID
	State    int32
	Priority uint32
}

// lubyHash derives a deterministic per-(vertex, round) priority.
func lubyHash(v graph.VertexID, round int, seed uint64) uint32 {
	x := uint64(v)<<32 ^ uint64(round) + seed*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}

// MISLuby computes a maximal independent set with Luby's randomized
// algorithm, the classic approach that does NOT require serializability:
// each round, every undecided vertex draws a priority, joins the set if its
// priority beats all undecided neighbors, and neighbors of joiners drop
// out. It takes O(log n) rounds of two supersteps each and must run under
// plain BSP (the phase structure relies on one-superstep message delay) —
// the baseline the paper's greedy-under-serializability improves on
// conceptually: one serializable pass versus many rounds. Requires an
// undirected graph.
func MISLuby(seed uint64) model.Program[LubyValue, LubyMsg] {
	return model.Program[LubyValue, LubyMsg]{
		Name:      "mis-luby",
		Semantics: model.Queue,
		MsgBytes:  12,
		Init: func(graph.VertexID, *graph.Graph) LubyValue {
			return LubyValue{State: MISUnknown}
		},
		Compute: func(ctx model.Context[LubyValue, LubyMsg], msgs []LubyMsg) {
			v := ctx.Value()
			round := ctx.Superstep() / 2
			if ctx.Superstep()%2 == 0 {
				// Phase A: In decisions from the previous round's phase B
				// arrive now; neighbors of joiners drop out. The remaining
				// undecided vertices broadcast this round's priority.
				if v.State == MISUnknown {
					for _, m := range msgs {
						if m.State == MISIn {
							v.State = MISOut
							ctx.SetValue(v)
							ctx.VoteToHalt()
							return
						}
					}
					v.Priority = lubyHash(ctx.ID(), round, seed)
					ctx.SetValue(v)
					ctx.SendToAllOut(LubyMsg{From: ctx.ID(), State: MISUnknown, Priority: v.Priority})
					return // stay active for phase B
				}
				ctx.VoteToHalt()
				return
			}
			// Phase B: decide.
			if v.State != MISUnknown {
				ctx.VoteToHalt()
				return
			}
			win := true
			for _, m := range msgs {
				switch m.State {
				case MISIn:
					v.State = MISOut
					ctx.SetValue(v)
					ctx.VoteToHalt()
					return
				case MISUnknown:
					// Tie-break by ID for distinct-priority guarantees.
					if m.Priority < v.Priority || (m.Priority == v.Priority && m.From < ctx.ID()) {
						win = false
					}
				}
			}
			if win {
				v.State = MISIn
				ctx.SetValue(v)
				ctx.SendToAllOut(LubyMsg{From: ctx.ID(), State: MISIn})
				ctx.VoteToHalt()
				return
			}
			// Lost this round: stay active for the next one.
		},
	}
}

// LubyStates extracts the MIS states from MISLuby's final values.
func LubyStates(vals []LubyValue) []int32 {
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = v.State
	}
	return out
}

// ValidateMIS checks that states describes a maximal independent set of the
// undirected graph g: no two adjacent In vertices (independence), every
// vertex decided, and every Out vertex has an In neighbor (maximality).
func ValidateMIS(g *graph.Graph, states []int32) error {
	n := g.NumVertices()
	if len(states) != n {
		return errf("mis: got %d states for %d vertices", len(states), n)
	}
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		switch states[v] {
		case MISIn:
			for _, nb := range g.OutNeighbors(u) {
				if nb != u && states[nb] == MISIn {
					return errf("mis: adjacent vertices %d and %d both In", v, nb)
				}
			}
		case MISOut:
			hasIn := false
			for _, nb := range g.OutNeighbors(u) {
				if states[nb] == MISIn {
					hasIn = true
					break
				}
			}
			if !hasIn {
				return errf("mis: vertex %d is Out with no In neighbor (not maximal)", v)
			}
		default:
			return errf("mis: vertex %d undecided", v)
		}
	}
	return nil
}
