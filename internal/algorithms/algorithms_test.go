package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
)

func TestSmallestFree(t *testing.T) {
	cases := []struct {
		used []int32
		want int32
	}{
		{nil, 0},
		{[]int32{0}, 1},
		{[]int32{1}, 0},
		{[]int32{0, 1, 2}, 3},
		{[]int32{0, 2}, 1},
		{[]int32{2, 0, 2, 0}, 1},
		{[]int32{NoColor, 0}, 1}, // uncolored neighbors don't conflict
		{[]int32{5}, 0},
	}
	for _, c := range cases {
		if got := smallestFree(c.used); got != c.want {
			t.Errorf("smallestFree(%v) = %d, want %d", c.used, got, c.want)
		}
	}
}

func TestSmallestFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		used := make([]int32, r.Intn(30))
		for i := range used {
			used[i] = int32(r.Intn(10)) - 1
		}
		c := smallestFree(used)
		if c < 0 {
			return false
		}
		for _, u := range used {
			if u == c {
				return false // conflict
			}
		}
		// Minimality: every smaller color is used.
		for x := int32(0); x < c; x++ {
			found := false
			for _, u := range used {
				if u == x {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateColoring(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.BuildUndirected()
	if err := ValidateColoring(g, []int32{0, 1, 0}); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
	if err := ValidateColoring(g, []int32{0, 0, 1}); err == nil {
		t.Error("conflicting coloring accepted")
	}
	if err := ValidateColoring(g, []int32{0, NoColor, 1}); err == nil {
		t.Error("incomplete coloring accepted")
	}
	if err := ValidateColoring(g, []int32{0, 1}); err == nil {
		t.Error("wrong-length coloring accepted")
	}
}

func TestColorsUsed(t *testing.T) {
	if got := ColorsUsed([]int32{0, 1, 0, 2, NoColor}); got != 3 {
		t.Errorf("ColorsUsed = %d, want 3", got)
	}
}

func TestShortestPathsOnKnownGraph(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 with a shortcut 0 -> 3 of weight 5 (longer).
	b := graph.NewBuilder(5)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 3, 1)
	b.AddWeightedEdge(0, 3, 5)
	g := b.Build()
	d := ShortestPaths(g, 0)
	want := []float64{0, 1, 2, 3, Infinity}
	for v := range want {
		if d[v] != want[v] {
			t.Errorf("d[%d] = %v, want %v", v, d[v], want[v])
		}
	}
}

func TestComponentsOnKnownGraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 3) // second component {3,4}; vertex 5 isolated
	g := b.Build()
	c := Components(g)
	want := []int32{0, 0, 0, 3, 3, 5}
	for v := range want {
		if c[v] != want[v] {
			t.Errorf("c[%d] = %d, want %d", v, c[v], want[v])
		}
	}
}

func TestPageRankReferenceAndResidual(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 200, AvgDegree: 5, Exponent: 2.2, Seed: 4})
	pr := PageRankReference(g, 100)
	if r := PageRankResidual(g, pr); r > 1e-6 {
		t.Errorf("reference residual %.2e not converged", r)
	}
	sum := 0.0
	for _, x := range pr {
		sum += x
	}
	if math.IsNaN(sum) || sum <= 0 {
		t.Errorf("bad rank sum %v", sum)
	}
}

func TestGASProgramShapes(t *testing.T) {
	g := generate.Ring(4)
	// ColoringGAS gathers only colored neighbors.
	cg := ColoringGAS()
	if got := cg.Gather(0, 1, NoColor, 1); got != nil {
		t.Errorf("gather of uncolored = %v", got)
	}
	if got := cg.Gather(0, 1, 3, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("gather of color 3 = %v", got)
	}
	v, act := cg.Apply(0, NoColor, []int32{0, 1}, true)
	if v != 2 || !act {
		t.Errorf("apply = %d,%v want 2,true", v, act)
	}
	// Keeping a non-conflicting color must not activate.
	v, act = cg.Apply(0, 5, []int32{0, 1}, true)
	if v != 5 || act {
		t.Errorf("apply kept = %d,%v want 5,false", v, act)
	}

	// SSSPGAS improves and scatters.
	sg := SSSPGAS(0)
	if d, act := sg.Apply(1, Infinity, 3, true); d != 3 || !act {
		t.Errorf("sssp apply = %v,%v", d, act)
	}
	if d, act := sg.Apply(1, 2, 3, true); d != 2 || act {
		t.Errorf("sssp no-improve = %v,%v", d, act)
	}

	// PageRankGAS uses out-degrees from the closed-over graph.
	pg := PageRankGAS(g, 0.01)
	if got := pg.Gather(0, 3, 2.0, 1); got != 2.0 {
		t.Errorf("pr gather = %v, want 2.0 (ring degree 1)", got)
	}

	// WCCGAS keeps minima.
	wg := WCCGAS()
	if v, act := wg.Apply(5, 5, 2, true); v != 2 || !act {
		t.Errorf("wcc apply = %v,%v", v, act)
	}
	if v, act := wg.Apply(5, 1, 2, true); v != 1 || act {
		t.Errorf("wcc keep = %v,%v", v, act)
	}
}
