package algorithms

import (
	"math"

	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// PersonalizedPageRank computes random-walk-with-restart scores around a
// source vertex: pr(u) = (1-d)·[u = source] + d·Σ pr(v)/deg(v). The
// restart mass concentrates scores near the source, the standard
// similarity measure for recommendation workloads. Vertices halt when
// their score changes by less than eps.
func PersonalizedPageRank(source graph.VertexID, damping, eps float64) model.Program[float64, float64] {
	if damping <= 0 || damping >= 1 {
		panic("algorithms: damping must be in (0, 1)")
	}
	return model.Program[float64, float64]{
		Name:      "personalized-pagerank",
		Semantics: model.Overwrite,
		MsgBytes:  8,
		Init:      func(graph.VertexID, *graph.Graph) float64 { return -1 },
		Compute: func(ctx model.Context[float64, float64], msgs []float64) {
			restart := 0.0
			if ctx.ID() == source {
				restart = 1 - damping
			}
			if ctx.Value() < 0 {
				// Start all mass at the source.
				pr := 0.0
				if ctx.ID() == source {
					pr = 1.0
				}
				ctx.SetValue(pr)
				if pr > 0 {
					if d := len(ctx.OutNeighbors()); d > 0 {
						ctx.SendToAllOut(pr / float64(d))
					}
				}
				ctx.VoteToHalt()
				return
			}
			sum := 0.0
			for _, m := range msgs {
				sum += m
			}
			pr := restart + damping*sum
			delta := math.Abs(pr - ctx.Value())
			ctx.SetValue(pr)
			if delta > eps {
				if d := len(ctx.OutNeighbors()); d > 0 {
					ctx.SendToAllOut(pr / float64(d))
				}
			}
			ctx.VoteToHalt()
		},
	}
}

// HopValue is the per-vertex state of HopHistogram: a bitmask of which of
// the K sources can reach this vertex, plus the hop count at which the
// mask last grew.
type HopValue struct {
	Reached uint64
	Hops    int32
	Sent    bool // initial source bit already broadcast
}

// HopHistogram runs K simultaneous reverse-BFS waves (K <= 64 source
// vertices, one bit each) in the style of HADI/effective-diameter
// estimation: each vertex tracks which sources reach it and in how many
// hops. After the run, Hops holds the last hop count at which the vertex
// learned of a new source — the basis for neighborhood-function and
// effective-diameter estimates. Uses OR-combining, so it also exercises a
// third combiner shape beyond min and sum.
func HopHistogram(sources []graph.VertexID) model.Program[HopValue, uint64] {
	if len(sources) == 0 || len(sources) > 64 {
		panic("algorithms: HopHistogram needs 1..64 sources")
	}
	srcBit := make(map[graph.VertexID]uint64, len(sources))
	for i, s := range sources {
		srcBit[s] |= 1 << i
	}
	return model.Program[HopValue, uint64]{
		Name:      "hop-histogram",
		Semantics: model.Combine,
		Combine:   func(a, b uint64) uint64 { return a | b },
		MsgBytes:  8,
		Init: func(id graph.VertexID, _ *graph.Graph) HopValue {
			return HopValue{Reached: srcBit[id], Hops: 0}
		},
		Compute: func(ctx model.Context[HopValue, uint64], msgs []uint64) {
			v := ctx.Value()
			incoming := uint64(0)
			for _, m := range msgs {
				incoming |= m
			}
			grew := incoming&^v.Reached != 0
			first := v.Reached != 0 && !v.Sent
			if grew {
				v.Reached |= incoming
				v.Hops++
			}
			if grew || first {
				v.Sent = true
				ctx.SetValue(v)
				ctx.SendToAllOut(v.Reached)
			}
			ctx.VoteToHalt()
		},
	}
}

// ReachabilityReference computes, by BFS from each source, the set of
// sources reaching every vertex — the reference for HopHistogram.
func ReachabilityReference(g *graph.Graph, sources []graph.VertexID) []uint64 {
	n := g.NumVertices()
	out := make([]uint64, n)
	for i, s := range sources {
		bit := uint64(1) << i
		seen := make([]bool, n)
		queue := []graph.VertexID{s}
		seen[s] = true
		out[s] |= bit
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.OutNeighbors(u) {
				if !seen[v] {
					seen[v] = true
					out[v] |= bit
					queue = append(queue, v)
				}
			}
		}
	}
	return out
}
