package bench

import (
	"runtime"
	"testing"
)

// benchGOMAXPROCS is the pinned scheduler parallelism for the
// timing-sensitive acceptance tests. The acceptance gates compare wall
// times of runs whose concurrency structure (16 workers × threads) far
// exceeds any CI box's core count; letting GOMAXPROCS float with the
// host made the same gate ±20% noisier on single-core runners than on
// developer machines. Pinning makes the interleaving pressure — and so
// the measured ratios — comparable everywhere.
const benchGOMAXPROCS = 4

// pinGOMAXPROCS fixes GOMAXPROCS for the duration of a test and restores
// the previous value on cleanup.
func pinGOMAXPROCS(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(benchGOMAXPROCS)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}
