// Package bench regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic dataset analogs: Table 1 (datasets),
// Figure 1 (the parallelism/communication spectrum, measured), Figures 2
// and 3 (coloring non-termination), Figure 6a–d (computation times for
// coloring, PageRank, SSSP, and WCC across datasets, cluster sizes, and
// techniques), the §7.3 Giraphx comparison, and the ablations discussed in
// §5.4 and §7.1.
//
// Absolute numbers differ from the paper (the cluster is simulated and the
// datasets are scaled), but the comparisons the paper draws — which
// technique wins, by roughly what factor, and how that changes with scale
// — are reproduced and recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/cluster"
	"serialgraph/internal/engine"
	"serialgraph/internal/gas"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// Row is one measurement. The JSON field names are a stable schema:
// perf-trajectory tooling diffs BENCH_NNNN.json files across commits, so
// renaming a key is a breaking change. Time-valued keys end in _ns so
// golden tests can mask exactly the wall-clock-dependent fields.
type Row struct {
	Experiment string        `json:"experiment"`
	Algorithm  string        `json:"algorithm"`
	Dataset    string        `json:"dataset"`
	Workers    int           `json:"workers"`
	Technique  string        `json:"technique"`
	Time       time.Duration `json:"time_ns"`
	Supersteps int           `json:"supersteps"`
	Executions int64         `json:"executions"`
	DataMsgs   int64         `json:"data_msgs"`
	DataBytes  int64         `json:"data_bytes"`
	CtrlMsgs   int64         `json:"ctrl_msgs"`
	Forks      int64         `json:"forks"`
	MaxConc    int64         `json:"max_conc"`
	Rollbacks  int           `json:"rollbacks"`
	Recomputed int           `json:"recomputed"`
	// RecomputedParts counts partition×superstep recompute units — the
	// confined-vs-full comparison axis: a confined recovery replays only
	// the crashed workers' partitions, a full rollback all of them.
	RecomputedParts int `json:"recomputed_partition_supersteps"`
	// Confined counts rollbacks that were handled by confined recovery.
	Confined  int  `json:"confined_recoveries"`
	Converged bool `json:"converged"`
	// WireBytes is the encoded byte count actually written to a real
	// socket transport; zero (and omitted) for the simulated in-process
	// cluster, where DataBytes is the modeled traffic instead.
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Partition is the run's placement quality report: edge cut, the
	// §5.3 class census, replication factor, and balance skew. Nil for
	// GAS rows recorded before the GAS engine reported quality.
	Partition *partition.Quality `json:"partition,omitempty"`
	// Metrics is the engine's registry snapshot: counters, aggregate
	// phase timers, histograms. Nil for GAS rows — the GAS engine is not
	// instrumented.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// Trace is the per-superstep phase breakdown, present when the run
	// was made with Config.Trace (engine DetailedStats).
	Trace []engine.SuperstepStat `json:"trace,omitempty"`
}

// Config tunes the whole suite.
type Config struct {
	// Scale multiplies the catalog dataset sizes (default 1.0). The
	// environment variable SERIALGRAPH_SCALE overrides it for `go test
	// -bench` runs.
	Scale float64
	// Workers lists the simulated cluster sizes (default 16 and 32, the
	// paper's).
	Workers []int
	// Latency and Bandwidth describe the simulated network (defaults 50µs
	// and 1 GiB/s).
	Latency   time.Duration
	Bandwidth float64
	// Datasets to run (default OR, TW, UK — the figures' set; the paper
	// moves AR to its technical report for space).
	Datasets []string
	// Threshold pairs for PageRank per dataset, as in §7.2.2.
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Trace turns on the engine's per-superstep stats (DetailedStats) so
	// rows carry a superstep-by-superstep phase breakdown. Costs one
	// registry snapshot per superstep; leave off for timing runs.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
		if s := os.Getenv("SERIALGRAPH_SCALE"); s != "" {
			if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
				c.Scale = f
			}
		}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{16, 32}
	}
	if c.Latency == 0 {
		c.Latency = 50 * time.Microsecond
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 1 << 30
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"OR", "TW", "UK"}
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

func (c Config) latencyModel() cluster.LatencyModel {
	return cluster.LatencyModel{Propagation: c.Latency, BytesPerSec: c.Bandwidth}
}

// prThreshold mirrors §7.2.2: 0.01 for OR and AR, 0.1 for TW and UK.
func prThreshold(dataset string) float64 {
	if dataset == "OR" || dataset == "AR" {
		return 0.01
	}
	return 0.1
}

// graphs caches built datasets per (name, directedness).
type graphCache struct {
	cfg Config
	dir map[string]*graph.Graph
	und map[string]*graph.Graph
}

func newGraphCache(cfg Config) *graphCache {
	return &graphCache{cfg: cfg, dir: map[string]*graph.Graph{}, und: map[string]*graph.Graph{}}
}

func (gc *graphCache) directed(name string) *graph.Graph {
	if g, ok := gc.dir[name]; ok {
		return g
	}
	d, err := generate.ByName(name)
	if err != nil {
		panic(err)
	}
	g := d.Build(gc.cfg.Scale)
	gc.dir[name] = g
	return g
}

func (gc *graphCache) undirected(name string) *graph.Graph {
	if g, ok := gc.und[name]; ok {
		return g
	}
	src := gc.directed(name)
	b := graph.NewBuilder(src.NumVertices())
	for u := graph.VertexID(0); int(u) < src.NumVertices(); u++ {
		for _, v := range src.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	g := b.BuildUndirected()
	gc.und[name] = g
	return g
}

// runPregel executes a Pregel algorithm under one technique on the Async
// engine and records a row.
func (c Config) runPregel(exp, alg, ds string, g *graph.Graph, workers int, sync engine.Sync, mk func() any) Row {
	return c.runPregelMode(exp, alg, ds, g, workers, engine.Async, sync, 0, mk)
}

// runPregelMode is runPregel with an explicit computation mode and an
// optional superstep budget (0 = run to convergence). Rows for SyncNone
// runs carry a mode-qualified technique label ("bsp-none", "async-none")
// because without a synchronization technique the mode is the
// distinguishing coordinate.
func (c Config) runPregelMode(exp, alg, ds string, g *graph.Graph, workers int, mode engine.Mode, sync engine.Sync, maxSteps int, mk func() any) Row {
	cfg := engine.Config{
		Workers: workers, Mode: mode, Sync: sync,
		Latency: c.latencyModel(), Seed: 1, DetailedStats: c.Trace,
		MaxSupersteps: maxSteps,
	}
	var res engine.Result
	var err error
	switch p := mk().(type) {
	case model.Program[int32, int32]:
		_, res, _, err = engine.Run(g, p, cfg)
	case model.Program[float64, float64]:
		_, res, _, err = engine.Run(g, p, cfg)
	default:
		panic("bench: unsupported program type")
	}
	if err != nil {
		panic(err)
	}
	technique := sync.String()
	if sync == engine.SyncNone {
		technique = mode.String() + "-none"
	}
	m := res.Metrics
	q := res.Partition
	return Row{
		Experiment: exp, Algorithm: alg, Dataset: ds, Workers: workers,
		Technique: technique, Time: res.ComputeTime, Supersteps: res.Supersteps,
		Executions: res.Executions, DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, MaxConc: res.MaxConcurrency,
		Converged: res.Converged, WireBytes: res.Net.WireBytesSent, Partition: &q,
		Metrics: &m, Trace: res.SuperstepStats,
	}
}

// runGAS executes a GAS algorithm under vertex-based locking and records a
// row.
func (c Config) runGAS(exp, alg, ds string, g *graph.Graph, workers int, mk func() any) Row {
	cfg := gas.Config{
		Workers: workers, Serializable: true,
		Latency: c.latencyModel(), Seed: 1,
	}
	var res engine.Result
	var err error
	switch p := mk().(type) {
	case model.GASProgram[int32, []int32]:
		_, res, _, err = gas.Run(g, p, cfg)
	case model.GASProgram[int32, int32]:
		_, res, _, err = gas.Run(g, p, cfg)
	case model.GASProgram[float64, float64]:
		_, res, _, err = gas.Run(g, p, cfg)
	default:
		panic("bench: unsupported GAS program type")
	}
	if err != nil {
		panic(err)
	}
	q := res.Partition
	return Row{
		Experiment: exp, Algorithm: alg, Dataset: ds, Workers: workers,
		Technique: "vertex-lock (GAS)", Time: res.ComputeTime,
		Executions: res.Executions, DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, MaxConc: res.MaxConcurrency,
		Converged: res.Converged, Partition: &q,
	}
}

// Fig6 regenerates one panel of Figure 6: the named algorithm across
// datasets × cluster sizes × the three most performant technique/system
// combinations (§7: dual-layer token and partition-based locking on Giraph
// async, vertex-based locking on GraphLab async).
func Fig6(alg string, cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	exp := "fig6-" + alg
	var rows []Row
	for _, ds := range cfg.Datasets {
		for _, w := range cfg.Workers {
			var g *graph.Graph
			var mkPregel, mkGAS func() any
			switch alg {
			case "coloring":
				g = gc.undirected(ds)
				mkPregel = func() any { return algorithms.Coloring() }
				mkGAS = func() any { return algorithms.ColoringGAS() }
			case "pagerank":
				g = gc.directed(ds)
				eps := prThreshold(ds)
				mkPregel = func() any { return algorithms.PageRank(eps) }
				mkGAS = func() any { return algorithms.PageRankGAS(g, eps) }
			case "sssp":
				g = gc.directed(ds)
				mkPregel = func() any { return algorithms.SSSP(0) }
				mkGAS = func() any { return algorithms.SSSPGAS(0) }
			case "wcc":
				g = gc.undirected(ds)
				mkPregel = func() any { return algorithms.WCC() }
				mkGAS = func() any { return algorithms.WCCGAS() }
			default:
				panic("bench: unknown algorithm " + alg)
			}
			for _, sync := range []engine.Sync{engine.TokenDual, engine.PartitionLock} {
				cfg.logf("fig6 %s %s W=%d %v ...", alg, ds, w, sync)
				rows = append(rows, cfg.runPregel(exp, alg, ds, g, w, sync, mkPregel))
			}
			cfg.logf("fig6 %s %s W=%d vertex-lock (GAS) ...", alg, ds, w)
			rows = append(rows, cfg.runGAS(exp, alg, ds, g, w, mkGAS))
		}
	}
	return rows
}

// Print renders rows as an aligned table.
func Print(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\talgorithm\tdataset\tW\ttechnique\ttime\tsupersteps\texecs\tdata msgs\tdata KB\tctrl msgs\tforks\trollbacks\tconverged")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Experiment, r.Algorithm, r.Dataset, r.Workers, r.Technique,
			r.Time.Round(time.Millisecond), r.Supersteps, r.Executions,
			r.DataMsgs, r.DataBytes/1024, r.CtrlMsgs, r.Forks, r.Rollbacks, r.Converged)
	}
	tw.Flush()
}
