package bench

// sched.go is the overlap-scheduler experiment: how much wall time does
// overlapping synchronization with computation recover? The workload is
// built to have both things the scheduler needs — synchronization latency
// worth hiding, and computation to hide it under:
//
//   - the graph is a clustered community graph where only a quarter of
//     the communities are bridge-connected (a ring through the first
//     schedBridgedFrac of them); the rest are isolated clusters;
//   - placement is community-aligned ranges (partition i == community i,
//     partitions round-robin over workers), so the bridged communities
//     become p-boundary partitions with real cross-worker fork traffic
//     and the isolated ones become p-internal partitions with no forks
//     at all — the partitioner is held ideal on purpose, so the cells
//     compare schedulers, not partition quality;
//   - each worker runs schedThreads=2 compute threads (Giraph-like scarce
//     compute threads) over 16 partitions, and propagation defaults to
//     schedLatency=200µs, a datacenter-unfriendly RTT where a fork
//     handoff costs enough to be worth prefetching.
//
// Under the static scheduler a thread that reaches a boundary partition
// blocks inside Acquire for the full grant chain while p-internal work
// sits unstarted in the shared queue; with only two threads per worker
// those stalls land on the critical path. The overlap scheduler issues
// the boundary partitions' fork requests ahead of execution (in
// conflict-colored order) and keeps the threads eating through the
// internal deques while grants are in flight, so the same grant chains
// run concurrently with compute. Each cell runs static and overlap back
// to back on identical configurations and records both rows; the
// acceptance bars are enforced as panics:
//
//   - partition-lock coloring must get at least 15% faster under the
//     overlap scheduler at acceptance scale (>= 8 workers) — the issue's
//     headline number, driven by fork prefetching;
//   - dual-token coloring must not regress (its static path is already
//     work-conserving, so overlap can only help via stealing);
//   - deterministic BSP PageRank must be bitwise identical with equal
//     superstep counts across schedulers, and async partition-lock SSSP
//     must match the serial oracle exactly under both — the scheduler
//     reorders work, never results;
//   - the overlap runs must actually overlap: forks_prefetched > 0 and
//     overlap_compute_ns > 0 on the headline cell, and forks_prefetched
//     never exceeds lock_acquires.
//
// TestSchedulerAcceptance runs the gate in CI; `benchtab -exp sched`
// records it into BENCH_NNNN.json.

import (
	"fmt"
	"math/rand"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/partition"
)

// schedSpeedupFloor is the acceptance bar: overlap wall time must be at
// most this fraction of static wall time on partition-lock coloring at
// acceptance scale.
const schedSpeedupFloor = 0.85

// schedLatency is the experiment's default propagation delay. The
// scheduler's job is hiding synchronization latency, so the cells model a
// network where that latency is material; measured ratios hold from 50µs
// up, but the margin over scheduler jitter is widest here.
const schedLatency = 200 * time.Microsecond

// schedThreads is the per-worker compute thread count. Two threads make
// compute genuinely scarce (Giraph's default is one): a thread blocked in
// Acquire is half the worker's capacity, which is exactly the stall the
// overlap scheduler exists to remove.
const schedThreads = 2

// schedBridgedFrac is the fraction of communities wired into the bridge
// ring; the rest stay isolated and become p-internal partitions.
const schedBridgedFrac = 4 // one in four

// clusteredGraph is communityGraph with only the first `bridged`
// communities joined by the bridge ring; the remaining communities are
// disconnected clusters. Under range placement the bridged prefix turns
// into p-boundary partitions and the isolated rest into p-internal ones.
func clusteredGraph(comms, size, bridged int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(comms * size)
	for c := 0; c < comms; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			u := graph.VertexID(base + i)
			b.AddEdge(u, graph.VertexID(base+(i+1)%size))
			for t := 0; t < 3; t++ {
				if v := graph.VertexID(base + r.Intn(size)); v != u {
					b.AddEdge(u, v)
				}
			}
		}
		if c < bridged {
			next := ((c + 1) % bridged) * size
			for t := 0; t < 2; t++ {
				b.AddEdge(graph.VertexID(base+r.Intn(size)), graph.VertexID(next+r.Intn(size)))
			}
		}
	}
	return b.BuildUndirected()
}

// SchedulerOverlap runs the overlap-scheduler experiment and returns one
// row per (cell, scheduler). It panics on any acceptance violation.
func SchedulerOverlap(cfg Config) []Row {
	if cfg.Latency == 0 {
		cfg.Latency = schedLatency
	}
	cfg = cfg.withDefaults()
	workers := cfg.Workers[0]
	p := workers * workers // engine default: PartitionsPerWorker = Workers
	comms := int(float64(p) * cfg.Scale)
	if comms < workers {
		comms = workers
	}
	bridged := comms / schedBridgedFrac
	if bridged < workers {
		bridged = workers
	}
	g := clusteredGraph(comms, partCommunitySize, bridged, 20)
	cfg.logf("sched: clustered graph n=%d m=%d (%d communities of %d, %d bridged), range placement, %d workers x %d threads, latency %v",
		g.NumVertices(), g.NumEdges(), comms, partCommunitySize, bridged, workers, schedThreads, cfg.Latency)

	scheds := []engine.SchedulerKind{engine.SchedStatic, engine.SchedOverlap}
	engCfg := func(mode engine.Mode, sync engine.Sync, sched engine.SchedulerKind) engine.Config {
		c := engine.Config{
			Workers: workers, Mode: mode, Sync: sync, Scheduler: sched,
			ThreadsPerWorker: schedThreads,
			Latency:          cfg.latencyModel(), Seed: 1, DetailedStats: cfg.Trace,
			MaxSupersteps: 2000,
		}
		// Community-aligned placement: partition i is exactly community i.
		c.Partitioner = func(g *graph.Graph, p, w int) *partition.Map {
			return partition.NewRange(g, p, w)
		}
		return c
	}
	mkRow := func(alg, cell string, sched engine.SchedulerKind, res engine.Result) Row {
		m := res.Metrics
		return Row{
			Experiment: "sched", Algorithm: alg, Dataset: "clustered",
			Workers: workers, Technique: cell + "/" + sched.String(),
			Time: res.ComputeTime, Supersteps: res.Supersteps,
			Executions: res.Executions, DataMsgs: res.Net.DataMessages,
			DataBytes: res.Net.DataBytes, CtrlMsgs: res.Net.ControlMessages,
			Forks: res.ForkSends, MaxConc: res.MaxConcurrency,
			Converged: res.Converged,
			Metrics:   &m, Trace: res.SuperstepStats,
		}
	}
	checkCounters := func(cell string, sched engine.SchedulerKind, sync engine.Sync, requireOverlap bool, res engine.Result) {
		m := res.Metrics
		pref := m.Get(metrics.ForksPrefetched)
		if sched == engine.SchedStatic {
			if pref != 0 || m.Get(metrics.Steals) != 0 || m.Get(metrics.OverlapComputeNs) != 0 {
				panic(fmt.Sprintf("bench: %s static run moved overlap counters", cell))
			}
			return
		}
		if pref > m.Get(metrics.LockAcquires) {
			panic(fmt.Sprintf("bench: %s forks_prefetched %d exceeds lock_acquires %d",
				cell, pref, m.Get(metrics.LockAcquires)))
		}
		if sync == engine.PartitionLock && pref == 0 {
			panic(fmt.Sprintf("bench: %s overlap run issued no fork prefetches", cell))
		}
		// Halting can legitimately drain the internal deques mid-run (SSSP
		// settles its isolated clusters after one superstep), so computing
		// under an outstanding prefetch is only demanded where the workload
		// guarantees internal work: the coloring cells.
		if requireOverlap && m.Get(metrics.OverlapComputeNs) == 0 {
			panic(fmt.Sprintf("bench: %s overlap run never computed under an outstanding prefetch", cell))
		}
	}

	var rows []Row

	// Coloring under the two partition-aware serializable techniques,
	// static vs overlap. Best wall time of partReps per scheduler, same
	// discipline as the locality experiment.
	for _, sync := range []engine.Sync{engine.PartitionLock, engine.TokenDual} {
		cell := sync.String()
		times := make(map[engine.SchedulerKind]Row)
		for _, sched := range scheds {
			var best engine.Result
			for rep := 0; rep < partReps; rep++ {
				vals, res, _, err := engine.Run(g, algorithms.Coloring(), engCfg(engine.Async, sync, sched))
				if err != nil {
					panic(err)
				}
				if !res.Converged {
					panic(fmt.Sprintf("bench: %s/%v coloring did not converge in %d supersteps", cell, sched, res.Supersteps))
				}
				if cerr := algorithms.ValidateColoring(g, vals); cerr != nil {
					panic(fmt.Sprintf("bench: %s/%v coloring is invalid: %v", cell, sched, cerr))
				}
				if rep == 0 || res.ComputeTime < best.ComputeTime {
					best = res
				}
			}
			checkCounters(cell, sched, sync, sync == engine.PartitionLock && workers >= 8, best)
			row := mkRow("coloring", cell, sched, best)
			rows = append(rows, row)
			times[sched] = row
		}
		static, overlap := times[engine.SchedStatic], times[engine.SchedOverlap]
		speedup := float64(overlap.Time) / float64(static.Time)
		cfg.logf("sched: %-14s static=%v overlap=%v (ratio %.2f) prefetched=%d steals=%d overlap_compute=%v",
			cell, static.Time, overlap.Time, speedup,
			overlap.Metrics.Get(metrics.ForksPrefetched), overlap.Metrics.Get(metrics.Steals),
			time.Duration(overlap.Metrics.Get(metrics.OverlapComputeNs)))
		// Timing gates only at acceptance scale: tiny smoke runs (few
		// workers, few partitions) have too little lock wait to hide.
		if workers >= 8 {
			if sync == engine.PartitionLock && speedup > schedSpeedupFloor {
				panic(fmt.Sprintf("bench: overlap scheduler ratio %.3f on partition-lock coloring misses the <= %.2f bar (static=%v overlap=%v)",
					speedup, schedSpeedupFloor, static.Time, overlap.Time))
			}
			if sync == engine.TokenDual && speedup > 1.10 {
				panic(fmt.Sprintf("bench: overlap scheduler regressed dual-token coloring by %.1f%% (static=%v overlap=%v)",
					100*(speedup-1), static.Time, overlap.Time))
			}
		}
	}

	// Determinism gates: BSP PageRank bitwise across schedulers, and async
	// partition-lock SSSP exact against the serial oracle under both.
	var basePR []float64
	var basePRRow Row
	for _, sched := range scheds {
		pr, res, _, err := engine.Run(g, algorithms.PageRankAggregated(0.01), engCfg(engine.BSP, engine.SyncNone, sched))
		if err != nil {
			panic(err)
		}
		if !res.Converged {
			panic(fmt.Sprintf("bench: BSP pagerank under %v did not converge in %d supersteps", sched, res.Supersteps))
		}
		checkCounters("bsp-none", sched, engine.SyncNone, false, res)
		row := mkRow("pagerank", "bsp-none", sched, res)
		rows = append(rows, row)
		if sched == engine.SchedStatic {
			basePR, basePRRow = pr, row
			continue
		}
		if row.Supersteps != basePRRow.Supersteps {
			panic(fmt.Sprintf("bench: BSP pagerank took %d supersteps under overlap, %d under static",
				row.Supersteps, basePRRow.Supersteps))
		}
		for i := range pr {
			if pr[i] != basePR[i] {
				panic(fmt.Sprintf("bench: BSP pagerank[%d] = %v under overlap, %v under static", i, pr[i], basePR[i]))
			}
		}
	}
	oracle := algorithms.ShortestPaths(g, 0)
	for _, sched := range scheds {
		dist, res, _, err := engine.Run(g, algorithms.SSSP(0), engCfg(engine.Async, engine.PartitionLock, sched))
		if err != nil {
			panic(err)
		}
		if !res.Converged {
			panic(fmt.Sprintf("bench: sssp under %v did not converge in %d supersteps", sched, res.Supersteps))
		}
		checkCounters("sssp", sched, engine.PartitionLock, false, res)
		for v := range oracle {
			if dist[v] != oracle[v] {
				panic(fmt.Sprintf("bench: sssp dist[%d] = %v under %v, oracle %v", v, dist[v], sched, oracle[v]))
			}
		}
		rows = append(rows, mkRow("sssp", "partition-lock", sched, res))
	}
	return rows
}
