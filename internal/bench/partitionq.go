package bench

// partitionq.go is the locality experiment: how much does a smarter
// placement buy every synchronization technique? It builds a community
// graph whose structure a streaming partitioner can exploit (hash
// placement cannot), then runs the fig1-style technique spectrum under
// hash, LDG, and Fennel placement at the same partition count and
// records each run's partition-quality report alongside the usual
// counters. The acceptance bar from the issue is enforced here as
// panics, not rows: the streaming partitioners must cut the
// boundary-vertex fraction and the cross-partition message bytes by at
// least 25% versus hash, stay inside the (1+eps)n/P balance bound, and
// leave the deterministic BSP PageRank answer bitwise unchanged.
// TestPartitionQualityAcceptance runs this gate in CI; `benchtab -exp
// partition` records it into BENCH_NNNN.json.

import (
	"fmt"
	"math/rand"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/graph"
	"serialgraph/internal/partition"
)

const (
	// partCommunitySize is the vertex count of one community — chosen
	// below the streaming capacity ceil(1.1*n/P) so a partitioner that
	// recognizes the community can keep it whole.
	partCommunitySize = 24
	// partReps repeats each deterministic timing run, keeping the
	// fastest (same discipline as the flow experiment).
	partReps = 3
)

// communityGraph builds comms communities of `size` vertices each, with
// contiguous IDs per community: an intra-community cycle plus three
// random intra-community chords per vertex, and two bridge edges from
// each community to the next (a ring of communities). The result is the
// best case for locality-aware placement — almost all edges are
// intra-community — while hash placement scatters every community
// across all partitions.
func communityGraph(comms, size int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(comms * size)
	for c := 0; c < comms; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			u := graph.VertexID(base + i)
			b.AddEdge(u, graph.VertexID(base+(i+1)%size))
			for t := 0; t < 3; t++ {
				if v := graph.VertexID(base + r.Intn(size)); v != u {
					b.AddEdge(u, v)
				}
			}
		}
		next := ((c + 1) % comms) * size
		for t := 0; t < 2; t++ {
			b.AddEdge(graph.VertexID(base+r.Intn(size)), graph.VertexID(next+r.Intn(size)))
		}
	}
	return b.BuildUndirected()
}

// PartitionQuality runs the locality experiment and returns one row per
// (technique, partitioner) cell. It panics on any acceptance violation:
// a balance-bound breach, a boundary-fraction or data-bytes reduction
// under 25%, a BSP divergence across partitioners, or an invalid
// coloring under a serializable technique.
func PartitionQuality(cfg Config) []Row {
	cfg = cfg.withDefaults()
	workers := cfg.Workers[0]
	p := workers * workers // engine default: PartitionsPerWorker = Workers
	comms := int(float64(p) * cfg.Scale)
	if comms < workers {
		comms = workers
	}
	g := communityGraph(comms, partCommunitySize, 20)
	n := g.NumVertices()
	capacity := (partition.StreamOptions{}).Capacity(n, p)
	cfg.logf("partition: community graph n=%d m=%d (%d communities of %d), P=%d, capacity=%d",
		n, g.NumEdges(), comms, partCommunitySize, p, capacity)

	engCfg := func(kind string, mode engine.Mode, sync engine.Sync) engine.Config {
		c := engine.Config{
			Workers: workers, Mode: mode, Sync: sync,
			Latency: cfg.latencyModel(), Seed: 1, DetailedStats: cfg.Trace,
			MaxSupersteps: 2000,
		}
		if kind != partition.KindHash {
			c.Partitioner = func(g *graph.Graph, p, w int) *partition.Map {
				m, err := partition.New(kind, g, p, w, 1)
				if err != nil {
					panic(err)
				}
				return m
			}
		}
		return c
	}
	mkRow := func(alg, cell, kind string, res engine.Result) Row {
		m := res.Metrics
		q := res.Partition
		return Row{
			Experiment: "partition", Algorithm: alg, Dataset: "community",
			Workers: workers, Technique: cell + "/" + kind,
			Time: res.ComputeTime, Supersteps: res.Supersteps,
			Executions: res.Executions, DataMsgs: res.Net.DataMessages,
			DataBytes: res.Net.DataBytes, CtrlMsgs: res.Net.ControlMessages,
			Forks: res.ForkSends, MaxConc: res.MaxConcurrency,
			Converged: res.Converged, Partition: &q,
			Metrics: &m, Trace: res.SuperstepStats,
		}
	}

	var rows []Row
	var hashQ partition.Quality
	var hashPR Row
	var hashVals []float64
	for _, kind := range []string{partition.KindHash, partition.KindLDG, partition.KindFennel} {
		// BSP PageRank: deterministic answer and superstep count, so this
		// cell carries both the bitwise-equivalence gate and the
		// cross-partition traffic comparison. Best wall time of partReps.
		var pr []float64
		var prRes engine.Result
		for rep := 0; rep < partReps; rep++ {
			vals, res, _, err := engine.Run(g, algorithms.PageRankAggregated(0.01),
				engCfg(kind, engine.BSP, engine.SyncNone))
			if err != nil {
				panic(err)
			}
			if !res.Converged {
				panic(fmt.Sprintf("bench: BSP pagerank under %s did not converge in %d supersteps", kind, res.Supersteps))
			}
			if rep == 0 || res.ComputeTime < prRes.ComputeTime {
				pr, prRes = vals, res
			}
		}
		prRow := mkRow("pagerank", "bsp-none", kind, prRes)
		rows = append(rows, prRow)
		q := prRes.Partition

		if kind == partition.KindHash {
			hashQ, hashPR, hashVals = q, prRow, pr
		} else {
			// The acceptance gates, in the issue's words: balance bound,
			// >=25% boundary-fraction reduction, >=25% cross-partition
			// byte reduction, bitwise-identical deterministic results.
			if q.MaxLoad > capacity {
				panic(fmt.Sprintf("bench: %s max load %d exceeds streaming capacity %d", kind, q.MaxLoad, capacity))
			}
			if q.BoundaryFraction > 0.75*hashQ.BoundaryFraction {
				panic(fmt.Sprintf("bench: %s boundary fraction %.4f is not a >=25%% reduction on hash %.4f",
					kind, q.BoundaryFraction, hashQ.BoundaryFraction))
			}
			if float64(prRow.DataBytes) > 0.75*float64(hashPR.DataBytes) {
				panic(fmt.Sprintf("bench: %s cross-partition bytes %d is not a >=25%% reduction on hash %d",
					kind, prRow.DataBytes, hashPR.DataBytes))
			}
			if prRow.Supersteps != hashPR.Supersteps {
				panic(fmt.Sprintf("bench: BSP pagerank took %d supersteps under %s, %d under hash",
					prRow.Supersteps, kind, hashPR.Supersteps))
			}
			for i := range pr {
				if pr[i] != hashVals[i] {
					panic(fmt.Sprintf("bench: BSP pagerank[%d] = %v under %s, %v under hash", i, pr[i], kind, hashVals[i]))
				}
			}
		}
		cfg.logf("partition: %-6s boundary=%.3f cut=%.3f repl=%.2f skew=%.2f pr-bytes=%d",
			kind, q.BoundaryFraction, q.CutFraction, q.ReplicationFactor, q.BalanceSkew, prRow.DataBytes)

		// The serializable technique spectrum on greedy coloring — the
		// token and lock traffic every boundary vertex causes is exactly
		// what better placement is supposed to shrink. Async coloring
		// under a serializable technique must converge to a proper
		// coloring regardless of placement.
		for _, sync := range []engine.Sync{engine.TokenSingle, engine.TokenDual, engine.PartitionLock} {
			vals, res, _, err := engine.Run(g, algorithms.Coloring(), engCfg(kind, engine.Async, sync))
			if err != nil {
				panic(err)
			}
			if !res.Converged {
				panic(fmt.Sprintf("bench: %v coloring under %s did not converge in %d supersteps", sync, kind, res.Supersteps))
			}
			if cerr := algorithms.ValidateColoring(g, vals); cerr != nil {
				panic(fmt.Sprintf("bench: %v coloring under %s is invalid: %v", sync, kind, cerr))
			}
			rows = append(rows, mkRow("coloring", sync.String(), kind, res))
		}
	}
	return rows
}
