package bench

import (
	"strings"
	"testing"

	"serialgraph/internal/metrics"
)

// schedRowsByTechnique indexes rows by "algorithm:cell/scheduler" and
// checks the expected shape: every cell appears under both schedulers.
func schedRowsByTechnique(t *testing.T, rows []Row) map[string]Row {
	t.Helper()
	const wantRows = 8 // (2 coloring cells + pagerank + sssp) x 2 schedulers
	if len(rows) != wantRows {
		t.Fatalf("SchedulerOverlap returned %d rows, want %d", len(rows), wantRows)
	}
	byTech := map[string]Row{}
	for _, r := range rows {
		key := r.Algorithm + ":" + r.Technique
		if _, dup := byTech[key]; dup {
			t.Fatalf("duplicate row %q", key)
		}
		byTech[key] = r
	}
	for _, cell := range []string{"coloring:partition-lock", "coloring:token-dual", "pagerank:bsp-none", "sssp:partition-lock"} {
		for _, sched := range []string{"static", "overlap"} {
			want := cell + "/" + sched
			if _, ok := byTech[want]; !ok {
				t.Fatalf("no %q row", want)
			}
		}
	}
	return byTech
}

// checkSchedRows re-derives the counter ledger from the returned rows:
// static runs never move the overlap counters, and an overlap run never
// prefetches more forks than it acquires.
func checkSchedRows(t *testing.T, rows []Row) {
	t.Helper()
	for _, r := range schedRowsByTechnique(t, rows) {
		m := r.Metrics
		pref := m.Counters[metrics.ForksPrefetched]
		if strings.HasSuffix(r.Technique, "/static") {
			if pref != 0 || m.Counters[metrics.Steals] != 0 || m.Counters[metrics.OverlapComputeNs] != 0 {
				t.Errorf("%s moved overlap counters: pref=%d steals=%d overlap=%d",
					r.Technique, pref, m.Counters[metrics.Steals], m.Counters[metrics.OverlapComputeNs])
			}
			continue
		}
		if acq := m.Counters[metrics.LockAcquires]; pref > acq {
			t.Errorf("%s prefetched %d forks but acquired only %d", r.Technique, pref, acq)
		}
	}
}

// TestSchedulerSmoke runs the scheduler experiment on a small cluster so
// every gate inside SchedulerOverlap (coloring validity, BSP bitwise
// equality, SSSP oracle match, counter ledger) executes in the short
// suite too; the timing bars only arm at acceptance scale.
func TestSchedulerSmoke(t *testing.T) {
	checkSchedRows(t, SchedulerOverlap(Config{Scale: 1, Workers: []int{4}}))
}

// TestSchedulerAcceptance is the issue's acceptance gate at the BENCH
// recipe size: 16 workers x 2 threads over 256 community partitions.
// SchedulerOverlap panics on any violation (including the >= 15%
// partition-lock bar); this test re-derives the headline ratio and the
// overlap evidence from the rows it returns.
func TestSchedulerAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size scheduler run; covered by the long mode and make sched")
	}
	pinGOMAXPROCS(t)
	rows := SchedulerOverlap(Config{Scale: 1, Workers: []int{16}})
	checkSchedRows(t, rows)
	byTech := schedRowsByTechnique(t, rows)
	static, overlap := byTech["coloring:partition-lock/static"], byTech["coloring:partition-lock/overlap"]
	if ratio := float64(overlap.Time) / float64(static.Time); ratio > schedSpeedupFloor {
		t.Errorf("partition-lock coloring ratio %.3f misses the <= %.2f bar (static=%v overlap=%v)",
			ratio, schedSpeedupFloor, static.Time, overlap.Time)
	}
	if overlap.Metrics.Counters[metrics.ForksPrefetched] == 0 {
		t.Error("headline overlap run prefetched no forks")
	}
	if overlap.Metrics.Counters[metrics.OverlapComputeNs] == 0 {
		t.Error("headline overlap run never computed under an outstanding prefetch")
	}
	t.Logf("partition-lock static=%v overlap=%v prefetched=%d steals=%d",
		static.Time, overlap.Time,
		overlap.Metrics.Counters[metrics.ForksPrefetched], overlap.Metrics.Counters[metrics.Steals])
}
