package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/generate"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRows produces a run whose every non-wall-clock field is
// deterministic: BSP delivers all messages at barriers, one thread per
// worker removes scheduling races, and the seed pins the partitioning.
func goldenRows(t *testing.T) []Row {
	t.Helper()
	g := generate.PowerLaw(generate.PowerLawConfig{N: 120, AvgDegree: 5, Exponent: 2.3, Seed: 7})
	_, res, _, err := engine.Run(g, algorithms.SSSP(0), engine.Config{
		Workers: 3, ThreadsPerWorker: 1, Mode: engine.BSP, Sync: engine.SyncNone,
		Seed: 11, DetailedStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	q := res.Partition
	return []Row{{
		Experiment: "golden", Algorithm: "sssp", Dataset: "powerlaw-120",
		Workers: 3, Technique: engine.SyncNone.String(),
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages, Converged: res.Converged,
		Partition: &q, Metrics: &m, Trace: res.SuperstepStats,
	}}
}

func goldenJSON(t *testing.T) []byte {
	t.Helper()
	rep := NewReport(Config{Scale: 1, Workers: []int{3}}, "golden", goldenRows(t))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	masked, err := MaskTimes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return append(masked, '\n')
}

// TestGoldenJSON pins the benchtab JSON schema and every deterministic
// value in it. A dropped counter, a renamed key, or a lost metrics
// snapshot changes the masked output and fails against testdata. Rerun
// with -update after an intentional schema change.
func TestGoldenJSON(t *testing.T) {
	got := goldenJSON(t)
	path := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/bench -run TestGoldenJSON -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("masked bench JSON diverged from %s.\nIf the schema change is intentional, rerun with -update.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestGoldenJSONDeterministic runs the golden workload twice and demands
// identical masked output — the property the golden file relies on.
func TestGoldenJSONDeterministic(t *testing.T) {
	a, b := goldenJSON(t), goldenJSON(t)
	if !bytes.Equal(a, b) {
		t.Errorf("masked output differs between identical runs:\n%s\n---\n%s", a, b)
	}
}

// TestMaskTimes checks the masking rule on a handcrafted document: any
// field keyed with an _ns suffix collapses to scalar 0 — including whole
// time-valued histograms, whose bucket keys are wall-clock dependent —
// and everything else survives.
func TestMaskTimes(t *testing.T) {
	in := []byte(`{"time_ns": 123, "count": 5, "histograms": {"lock_wait_ns": {"count": 9, "buckets": {"17": 2}}, "batch_entries": {"count": 4}}, "rows": [{"compute_ns": 7, "executions": 3}]}`)
	out, err := MaskTimes(in)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	if v["time_ns"].(float64) != 0 {
		t.Errorf("time_ns not masked: %v", v["time_ns"])
	}
	if v["count"].(float64) != 5 {
		t.Errorf("count clobbered: %v", v["count"])
	}
	hists := v["histograms"].(map[string]any)
	if hists["lock_wait_ns"].(float64) != 0 {
		t.Errorf("time-valued histogram not collapsed: %v", hists["lock_wait_ns"])
	}
	if hists["batch_entries"].(map[string]any)["count"].(float64) != 4 {
		t.Errorf("count-valued histogram clobbered: %v", hists["batch_entries"])
	}
	row := v["rows"].([]any)[0].(map[string]any)
	if row["compute_ns"].(float64) != 0 || row["executions"].(float64) != 3 {
		t.Errorf("row masking wrong: %v", row)
	}
}
