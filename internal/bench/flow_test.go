package bench

import (
	"testing"

	"serialgraph/internal/metrics"
)

// TestFlowOverheadAcceptance is the bounded-memory acceptance gate: BSP
// PageRank on the largest dataset analog, with the budget set to 1/8 of
// the observed peak buffered bytes, must complete with its peak under
// the budget, spill at least once, and stay bitwise-identical to the
// unbounded run. FlowOverhead itself panics on any of those violations;
// this test additionally pins the row shape and re-checks the peak and
// superstep equality from the returned rows, at full dataset scale so
// the numbers match the BENCH trajectory recipe.
func TestFlowOverheadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale UK PageRank; covered by the long mode and make flow")
	}
	pinGOMAXPROCS(t)
	rows := FlowOverhead(Config{Scale: 1, Workers: []int{16}})
	if len(rows) != 3 {
		t.Fatalf("FlowOverhead returned %d rows, want 3", len(rows))
	}
	base, probe, tight := rows[0], rows[1], rows[2]
	if base.Technique != "unbounded" || probe.Technique != "probe" || tight.Technique != "budget-peak/8" {
		t.Fatalf("unexpected row labels: %q %q %q", base.Technique, probe.Technique, tight.Technique)
	}
	if base.Supersteps != tight.Supersteps || base.Executions != tight.Executions {
		t.Fatalf("budgeted run took %d supersteps / %d executions, unbounded %d / %d",
			tight.Supersteps, tight.Executions, base.Supersteps, base.Executions)
	}
	// The probe's histogram Max is the per-worker peak; the global budget
	// is peak × workers / 8, so each worker's share comes out to peak/8.
	peak := probe.Metrics.Hists[metrics.HistBufferedBytes].Max
	perWorker := peak / 8
	if got := tight.Metrics.Hists[metrics.HistBufferedBytes].Max; got > perWorker {
		t.Fatalf("peak buffered bytes %d exceeds per-worker budget %d (unbounded peak %d)", got, perWorker, peak)
	}
	if spilled := tight.Metrics.Counters[metrics.BytesSpilled]; spilled == 0 {
		t.Fatal("budget-peak/8 run never exercised the spill tier")
	}
	if spilled := base.Metrics.Counters[metrics.BytesSpilled]; spilled != 0 {
		t.Fatalf("unbounded run spilled %d bytes", spilled)
	}
	t.Logf("peak buffered: unbounded-probe %d B, per-worker budget %d B, budgeted peak %d B, spilled %d B, credit wait %d ns",
		peak, perWorker, tight.Metrics.Hists[metrics.HistBufferedBytes].Max,
		tight.Metrics.Counters[metrics.BytesSpilled], tight.Metrics.Counters[metrics.CreditWaitNs])
}
