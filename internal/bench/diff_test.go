package bench

import (
	"strings"
	"testing"
)

func diffFixture(wallA, wallB, computeA, computeB int64) (diffReport, diffReport) {
	mkRow := func(tech string, wall, compute int64) diffRow {
		r := diffRow{
			Experiment: "fig1", Algorithm: "pagerank", Dataset: "OR",
			Workers: 16, Technique: tech, TimeNs: wall, Supersteps: 50,
		}
		r.Metrics = &struct {
			PhaseNs map[string]int64 `json:"phase_ns"`
		}{PhaseNs: map[string]int64{
			"compute_ns": compute, "local_delivery_ns": 1000, "barrier_wait_ns": 500,
		}}
		return r
	}
	oldRep := diffReport{Scale: 0.1, Label: "old", Rows: []diffRow{
		mkRow("bsp-none", wallA, computeA),
		{Experiment: "fig1", Algorithm: "coloring", Dataset: "OR", Workers: 16, Technique: "token-single", TimeNs: 5},
	}}
	newRep := diffReport{Scale: 0.1, Label: "new", Rows: []diffRow{
		mkRow("bsp-none", wallB, computeB),
		{Experiment: "fig1", Algorithm: "pagerank", Dataset: "OR", Workers: 16, Technique: "async-none", TimeNs: 7},
	}}
	return oldRep, newRep
}

func TestWriteDiffMatchesRowsAndComputesDeltas(t *testing.T) {
	oldRep, newRep := diffFixture(100_000_000, 80_000_000, 10_000_000, 5_000_000)
	var sb strings.Builder
	if err := WriteDiff(&sb, oldRep, newRep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fig1/pagerank/OR/w16/bsp-none",
		"-20.0%",                 // wall 100ms -> 80ms
		"-50.0%",                 // compute 10ms -> 5ms
		"compute+local_delivery", // derived line present
		"fig1/coloring/OR/w16/token-single\n  only in old report",
		"fig1/pagerank/OR/w16/async-none\n  only in new report",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteDiffTrafficAndBoundaryDeltas: data-bytes and
// boundary-fraction lines appear exactly when both sides carry the
// fields, so trajectory files from before the partition schema stay
// diffable without noise.
func TestWriteDiffTrafficAndBoundaryDeltas(t *testing.T) {
	oldRep, newRep := diffFixture(100, 100, 10, 10)
	q := func(bf float64) *struct {
		BoundaryFraction float64 `json:"boundary_fraction"`
	} {
		return &struct {
			BoundaryFraction float64 `json:"boundary_fraction"`
		}{BoundaryFraction: bf}
	}
	oldRep.Rows[0].DataBytes, newRep.Rows[0].DataBytes = 1000, 600
	oldRep.Rows[0].Partition, newRep.Rows[0].Partition = q(1.0), q(0.25)
	var sb strings.Builder
	if err := WriteDiff(&sb, oldRep, newRep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"data_bytes", "-40.0%", "boundary_fraction", "0.2500"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wire_bytes") {
		t.Errorf("wire_bytes delta printed without wire bytes on both sides:\n%s", out)
	}

	// An old report without the partition field produces no boundary line.
	oldRep.Rows[0].Partition = nil
	sb.Reset()
	if err := WriteDiff(&sb, oldRep, newRep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "boundary_fraction") {
		t.Errorf("boundary_fraction delta printed for a pre-partition old report:\n%s", sb.String())
	}
}

func TestWriteDiffWarnsOnScaleMismatch(t *testing.T) {
	oldRep, newRep := diffFixture(1, 1, 1, 1)
	newRep.Scale = 1.0
	var sb strings.Builder
	if err := WriteDiff(&sb, oldRep, newRep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "scale differs") {
		t.Errorf("no scale warning in:\n%s", sb.String())
	}
}

func TestDiffFilesAgainstCommittedTrajectory(t *testing.T) {
	// The committed trajectory files must stay parseable by the differ.
	rep, err := LoadDiffReport("../../BENCH_0003.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("BENCH_0003.json parsed to zero rows")
	}
	for _, r := range rep.Rows {
		if r.Technique == "" || r.Workers == 0 {
			t.Errorf("row %+v missing key fields", r)
		}
	}
}

func TestCheckRegressionsGatesWallAndPhases(t *testing.T) {
	const ms = int64(1e6)
	// Wall regresses 50%, compute regresses 100%.
	oldRep, newRep := diffFixture(10*ms, 15*ms, 20*ms, 40*ms)

	regs := checkRegressions(oldRep, newRep, 30)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (wall + compute): %+v", len(regs), regs)
	}
	byMetric := map[string]Regression{}
	for _, r := range regs {
		byMetric[r.Metric] = r
	}
	if r, ok := byMetric["wall"]; !ok || r.Pct() != 50 {
		t.Errorf("wall regression = %+v, want +50%%", r)
	}
	if r, ok := byMetric["compute_ns"]; !ok || r.Pct() != 100 {
		t.Errorf("compute regression = %+v, want +100%%", r)
	}

	// A generous threshold passes both.
	if regs := checkRegressions(oldRep, newRep, 150); len(regs) != 0 {
		t.Errorf("threshold 150%% still flagged %+v", regs)
	}

	// Sub-millisecond baselines are noise, never regressions: the
	// fixture's token-single row (5ns wall) can grow arbitrarily.
	oldRep, newRep = diffFixture(10*ms, 10*ms, 20*ms, 20*ms)
	newRep.Rows = append(newRep.Rows, diffRow{
		Experiment: "fig1", Algorithm: "coloring", Dataset: "OR",
		Workers: 16, Technique: "token-single", TimeNs: 500000,
	})
	if regs := checkRegressions(oldRep, newRep, 10); len(regs) != 0 {
		t.Errorf("noise-floor baseline flagged: %+v", regs)
	}
}
