package bench

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
)

// BenchmarkFig1BSPNone is the perf-acceptance workload in isolation: the
// Fig. 1 BSP PageRank configuration (OR at scale 0.1, 16 workers, 50-step
// budget) that BENCH_NNNN.json trajectory points track. Run it with
// -cpuprofile when hunting hot-path regressions — it is the exact cell the
// compute+local-delivery criterion is measured on, without the rest of the
// spectrum diluting the profile.
func BenchmarkFig1BSPNone(b *testing.B) {
	cfg := Config{Scale: 0.1, Workers: []int{16}, Trace: true}
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	gd := gc.directed("OR")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.runPregelMode("fig1", "pagerank", "OR", gd, 16,
			engine.BSP, engine.SyncNone, 50, func() any { return algorithms.PageRank(prThreshold("OR")) })
	}
}
