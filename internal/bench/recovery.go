package bench

import (
	"os"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/fault"
)

// RecoveryOverhead measures the §6.4 fault-tolerance costs on the OR
// analog: SSSP under partition-based locking run five ways — without
// checkpointing, with synchronous checkpoints every 2 supersteps (the
// fault-free overhead), with the same checkpoints plus a single-worker
// crash recovered by whole-cluster rollback, the same crash recovered
// confined (only the crashed worker's partitions are restored from the
// checkpoint and replayed against the healthy workers' message logs), and
// the confined setup without a crash (the message-logging overhead). The
// comparison axis is recomputed_partition_supersteps: confined recovery
// must redo strictly fewer partition×superstep units than a full rollback
// for the same crash.
func RecoveryOverhead(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]

	run := func(label string, every int, plan *fault.Plan, recovery engine.RecoveryMode) Row {
		ecfg := engine.Config{
			Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock,
			Latency: cfg.latencyModel(), Seed: 1, Recovery: recovery,
		}
		if every > 0 {
			dir, err := os.MkdirTemp("", "serialgraph-recovery")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			ecfg.CheckpointEvery = every
			ecfg.CheckpointDir = dir
		}
		if plan != nil {
			ecfg.Fault = fault.NewInjector(*plan)
		}
		cfg.logf("recovery %s ...", label)
		_, res, _, err := engine.Run(g, algorithms.SSSP(0), ecfg)
		if err != nil {
			panic(err)
		}
		return Row{
			Experiment: "recovery", Algorithm: "sssp", Dataset: "OR", Workers: workers,
			Technique: label, Time: res.ComputeTime, Supersteps: res.Supersteps,
			Executions: res.Executions, DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends,
			Rollbacks: res.Rollbacks, Recomputed: res.RecomputedSupersteps,
			RecomputedParts: res.RecomputedPartitionSupersteps,
			Confined:        res.ConfinedRecoveries,
			Converged:       res.Converged,
		}
	}

	crash := func() *fault.Plan {
		return &fault.Plan{
			Crashes: []fault.Crash{{Worker: workers - 1, AtSuperstep: 1}},
			Seed:    7,
		}
	}
	return []Row{
		run("no-checkpoint", 0, nil, engine.RecoverFull),
		run("checkpoint", 2, nil, engine.RecoverFull),
		run("checkpoint+log", 2, nil, engine.RecoverConfined),
		run("checkpoint+crash-full", 2, crash(), engine.RecoverFull),
		run("checkpoint+crash-confined", 2, crash(), engine.RecoverConfined),
	}
}
