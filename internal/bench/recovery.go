package bench

import (
	"os"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/fault"
)

// RecoveryOverhead measures the §6.4 fault-tolerance costs on the OR
// analog: SSSP under partition-based locking run three ways — without
// checkpointing, with synchronous checkpoints every 2 supersteps (the
// fault-free overhead), and with the same checkpoints plus a worker crash
// injected mid-run and recovered in-run by whole-cluster rollback (the
// recovery cost: rollbacks and recomputed supersteps appear in the rows).
func RecoveryOverhead(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]

	run := func(label string, every int, plan *fault.Plan) Row {
		ecfg := engine.Config{
			Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock,
			Latency: cfg.latencyModel(), Seed: 1,
		}
		if every > 0 {
			dir, err := os.MkdirTemp("", "serialgraph-recovery")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			ecfg.CheckpointEvery = every
			ecfg.CheckpointDir = dir
		}
		if plan != nil {
			ecfg.Fault = fault.NewInjector(*plan)
		}
		cfg.logf("recovery %s ...", label)
		_, res, _, err := engine.Run(g, algorithms.SSSP(0), ecfg)
		if err != nil {
			panic(err)
		}
		return Row{
			Experiment: "recovery", Algorithm: "sssp", Dataset: "OR", Workers: workers,
			Technique: label, Time: res.ComputeTime, Supersteps: res.Supersteps,
			Executions: res.Executions, DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends,
			Rollbacks: res.Rollbacks, Recomputed: res.RecomputedSupersteps,
			Converged: res.Converged,
		}
	}

	crash := &fault.Plan{
		Crashes: []fault.Crash{{Worker: workers - 1, AtSuperstep: 1}},
		Seed:    7,
	}
	return []Row{
		run("no-checkpoint", 0, nil),
		run("checkpoint", 2, nil),
		run("checkpoint+crash", 2, crash),
	}
}
