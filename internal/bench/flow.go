package bench

import (
	"fmt"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/metrics"
)

// FlowOverhead measures the bounded-memory message plane on the largest
// dataset analog (UK): BSP PageRank run three ways — unbounded, with a
// huge budget that arms the spill tier without ever flushing (the probe
// that observes peak buffered bytes), and with a budget of one eighth of
// the observed peak, which forces the spill tier to cut runs on most
// supersteps. Bounded runs are bitwise-identical to the unbounded one by
// contract — a divergence or a peak above the budget panics rather than
// becoming a row, because it is an invariant violation, not a
// measurement. The rows' comparison axes are wall time (the acceptance
// bar is ≤10% regression for the 1/8-budget run) and the flow counters:
// bytes_spilled, credit_wait_ns, and the buffered_bytes histogram whose
// Max is the observed peak. Each configuration is run flowReps times and
// the fastest repetition is kept — wall time on a shared host is
// min-stable, not mean-stable, and the runs are deterministic so every
// repetition produces identical results and counters.
func FlowOverhead(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	const ds = "UK"
	g := gc.directed(ds)
	workers := cfg.Workers[0]
	eps := prThreshold(ds)

	const flowReps = 3
	run := func(label string, budget int64) ([]float64, Row) {
		ecfg := engine.Config{
			Workers: workers, Mode: engine.BSP, Sync: engine.SyncNone,
			Latency: cfg.latencyModel(), Seed: 1, DetailedStats: cfg.Trace,
			MaxSupersteps: 100000, MsgMemoryBudget: budget,
		}
		var bestPR []float64
		var best Row
		for rep := 0; rep < flowReps; rep++ {
			cfg.logf("flow %s (budget=%d bytes) rep %d/%d ...", label, budget, rep+1, flowReps)
			pr, res, _, err := engine.Run(g, algorithms.PageRankAggregated(eps), ecfg)
			if err != nil {
				panic(err)
			}
			if !res.Converged {
				panic(fmt.Sprintf("bench: flow %s did not converge", label))
			}
			m := res.Metrics
			row := Row{
				Experiment: "flow", Algorithm: "pagerank", Dataset: ds, Workers: workers,
				Technique: label, Time: res.ComputeTime, Supersteps: res.Supersteps,
				Executions: res.Executions, DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
				CtrlMsgs: res.Net.ControlMessages, Converged: res.Converged,
				Metrics: &m, Trace: res.SuperstepStats,
			}
			if rep == 0 || row.Time < best.Time {
				bestPR, best = pr, row
			}
		}
		return bestPR, best
	}

	base, baseRow := run("unbounded", 0)
	probe, probeRow := run("probe", 1<<40)
	// The histogram records each worker's buffered bytes, so the observed
	// cluster-wide peak is per-worker peak × workers (every worker buffers
	// its superstep's inbound traffic simultaneously); the budget divides
	// back down to peak/8 per worker.
	peak := probeRow.Metrics.Hists[metrics.HistBufferedBytes].Max
	if peak <= 0 {
		panic("bench: flow probe run observed no buffered bytes")
	}
	budget := peak * int64(workers) / 8
	tight, tightRow := run("budget-peak/8", budget)

	for v := range base {
		if base[v] != probe[v] || base[v] != tight[v] {
			panic(fmt.Sprintf("bench: flow budgeted PageRank diverged from unbounded at vertex %d", v))
		}
	}
	if got := tightRow.Metrics.Hists[metrics.HistBufferedBytes].Max; got > budget/int64(workers) {
		panic(fmt.Sprintf("bench: flow peak buffered bytes %d exceeded per-worker budget %d", got, budget/int64(workers)))
	}
	if tightRow.Metrics.Counters[metrics.BytesSpilled] == 0 {
		panic("bench: flow budget-peak/8 run never spilled")
	}
	return []Row{baseRow, probeRow, tightRow}
}
