package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/generate"
	"serialgraph/internal/giraphx"
	"serialgraph/internal/graph"
	"serialgraph/internal/partition"
)

// Table1 prints the dataset table: the paper's original statistics next to
// the synthetic analogs actually used here.
func Table1(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tpaper |V|\tpaper |E|\tpaper maxdeg\tanalog |V|\tanalog |E| (und.)\tanalog maxdeg")
	for _, d := range generate.Catalog {
		g := gc.directed(d.Name)
		u := gc.undirected(d.Name)
		s := graph.Summarize(g)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d (%d)\t%d\n",
			d.Name, d.PaperVertices, d.PaperEdges, d.PaperMaxDegree,
			s.Vertices, s.Edges, u.NumEdges(), s.MaxDegree)
	}
	tw.Flush()
}

// Fig1Spectrum measures the spectrum of Figure 1 empirically: for each
// technique on the OR analog, the peak number of concurrently executing
// vertices (parallelism) and the control message count (communication).
// The spectrum's maximal-parallelism anchor — no serializability at all —
// is measured with PageRank under plain BSP (Pregel) and plain AP (Giraph
// async); these two rows are also the hot-path perf reference
// configurations tracked across BENCH_NNNN.json trajectory points.
func Fig1Spectrum(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.undirected("OR")
	workers := cfg.Workers[0]
	var rows []Row
	gd := gc.directed("OR")
	eps := prThreshold("OR")
	// Fixed 50-superstep budget: BSP PageRank oscillates rather than
	// converging (the Figure 2 phenomenon applies to ranks too), so the
	// anchor rows run a deterministic-length sweep — which also makes them
	// stable workloads for cross-commit phase-time comparison.
	for _, mode := range []engine.Mode{engine.BSP, engine.Async} {
		cfg.logf("fig1 %v none ...", mode)
		rows = append(rows, cfg.runPregelMode("fig1", "pagerank", "OR", gd, workers,
			mode, engine.SyncNone, 50, func() any { return algorithms.PageRank(eps) }))
	}
	for _, sync := range []engine.Sync{engine.TokenSingle, engine.TokenDual, engine.PartitionLock} {
		cfg.logf("fig1 %v ...", sync)
		rows = append(rows, cfg.runPregel("fig1", "coloring", "OR", g, workers, sync,
			func() any { return algorithms.Coloring() }))
	}
	cfg.logf("fig1 vertex-lock ...")
	rows = append(rows, cfg.runGAS("fig1", "coloring", "OR", g, workers,
		func() any { return algorithms.ColoringGAS() }))
	return rows
}

// Fig23 demonstrates the coloring non-termination of Figures 2 and 3 on
// the paper's 4-vertex example and its resolution under serializability.
func Fig23(w io.Writer) {
	b := graph.NewBuilder(4)
	for _, e := range [][2]graph.VertexID{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.BuildUndirected()

	run := func(mode engine.Mode, sync engine.Sync, max int) (colors []int32, res engine.Result) {
		colors, res, _, err := engine.Run(g, algorithms.ColoringRecolor(), engine.Config{
			Workers: 2, PartitionsPerWorker: 1, Mode: mode, Sync: sync,
			MaxSupersteps: max, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		return colors, res
	}

	colors, res := run(engine.BSP, engine.SyncNone, 12)
	fmt.Fprintf(w, "figure 2  BSP:                 colors=%v after %d supersteps, converged=%v (oscillates forever)\n",
		colors, res.Supersteps, res.Converged)
	colors, res = run(engine.Async, engine.SyncNone, 12)
	fmt.Fprintf(w, "figure 3  AP (no sync):        colors=%v after %d supersteps, converged=%v (may cycle; schedule dependent)\n",
		colors, res.Supersteps, res.Converged)
	colors, res = run(engine.Async, engine.PartitionLock, 100)
	fmt.Fprintf(w, "resolved  AP + partition lock: colors=%v after %d supersteps, converged=%v\n",
		colors, res.Supersteps, res.Converged)
}

// Giraphx reproduces the §7.3 comparison on the OR analog: the
// in-algorithm Giraphx techniques against the system-level ones.
func Giraphx(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.undirected("OR")
	workers := cfg.Workers[0]
	var rows []Row

	// Giraphx single-layer token passing, in-algorithm on BSP.
	pm := partition.NewHash(g, workers, workers, 1)
	cfg.logf("giraphx token ...")
	prog := giraphx.TokenColoring(g, pm)
	_, res, _, err := engine.Run(g, prog, engine.Config{
		Workers: workers, PartitionsPerWorker: 1, Mode: engine.BSP,
		Partitioner:   func(*graph.Graph, int, int) *partition.Map { return pm },
		Latency:       cfg.latencyModel(),
		MaxSupersteps: 100000,
	})
	if err != nil {
		panic(err)
	}
	rows = append(rows, Row{Experiment: "giraphx", Algorithm: "coloring", Dataset: "OR",
		Workers: workers, Technique: "giraphx-token (in-algorithm, BSP)",
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages, Converged: res.Converged})

	// Giraphx vertex-based locking, in-algorithm on BSP (Proposition 1).
	cfg.logf("giraphx lock ...")
	_, res, _, err = engine.Run(g, giraphx.LockColoring(g), engine.Config{
		Workers: workers, Mode: engine.BSP, Seed: 1,
		Latency:       cfg.latencyModel(),
		MaxSupersteps: 100000,
	})
	if err != nil {
		panic(err)
	}
	rows = append(rows, Row{Experiment: "giraphx", Algorithm: "coloring", Dataset: "OR",
		Workers: workers, Technique: "giraphx-lock (in-algorithm, BSP)",
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages, Converged: res.Converged})

	// System-level comparisons.
	for _, sync := range []engine.Sync{engine.TokenSingle, engine.TokenDual, engine.PartitionLock} {
		cfg.logf("giraphx baseline %v ...", sync)
		rows = append(rows, cfg.runPregel("giraphx", "coloring", "OR", g, workers, sync,
			func() any { return algorithms.Coloring() }))
	}
	cfg.logf("giraphx baseline vertex-lock ...")
	rows = append(rows, cfg.runGAS("giraphx", "coloring", "OR", g, workers,
		func() any { return algorithms.ColoringGAS() }))
	return rows
}

// AblationPartitions sweeps partitions-per-worker for partition-based
// locking (§7.1: Giraph's default is |W|; more partitions cut more edges
// and add forks, fewer restrict parallelism).
func AblationPartitions(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]
	var rows []Row
	for _, ppw := range []int{1, workers / 2, workers, 2 * workers, 4 * workers} {
		if ppw < 1 {
			continue
		}
		cfg.logf("ablation ppw=%d ...", ppw)
		_, res, _, err := engine.Run(g, algorithms.PageRank(prThreshold("OR")), engine.Config{
			Workers: workers, PartitionsPerWorker: ppw, Mode: engine.Async,
			Sync: engine.PartitionLock, Latency: cfg.latencyModel(), Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Row{Experiment: "ablation-partitions", Algorithm: "pagerank",
			Dataset: "OR", Workers: workers,
			Technique: fmt.Sprintf("partition-lock ppw=%d (|P|=%d)", ppw, res.Partitions),
			Time:      res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
			DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, Converged: res.Converged})
	}
	return rows
}

// AblationDegenerate compares partition-based locking at its |P| → |V|
// extreme against true vertex-based locking on the GAS engine (§5.4: with
// one vertex per partition the techniques coincide conceptually, and the
// fork explosion appears in both).
func AblationDegenerate(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.undirected("OR")
	workers := cfg.Workers[0]
	n := g.NumVertices()
	var rows []Row

	cfg.logf("degenerate |P|=|V| partition lock ...")
	_, res, _, err := engine.Run(g, algorithms.Coloring(), engine.Config{
		Workers: workers, PartitionsPerWorker: (n + workers - 1) / workers,
		Mode: engine.Async, Sync: engine.PartitionLock,
		Latency: cfg.latencyModel(), Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	rows = append(rows, Row{Experiment: "ablation-degenerate", Algorithm: "coloring",
		Dataset: "OR", Workers: workers, Technique: fmt.Sprintf("partition-lock |P|=%d≈|V|", res.Partitions),
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages,
		Forks:    res.ForkSends, Converged: res.Converged})

	cfg.logf("degenerate defaults partition lock ...")
	rows = append(rows, cfg.runPregel("ablation-degenerate", "coloring", "OR", g, workers,
		engine.PartitionLock, func() any { return algorithms.Coloring() }))

	cfg.logf("degenerate vertex lock (GAS) ...")
	rows = append(rows, cfg.runGAS("ablation-degenerate", "coloring", "OR", g, workers,
		func() any { return algorithms.ColoringGAS() }))
	return rows
}

// AblationPartitioner compares random hash, range, and LDG streaming
// partitionings under partition-based locking: better partitionings cut
// fewer edges, which means fewer forks and smaller flush traffic.
func AblationPartitioner(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]
	var rows []Row
	for _, pt := range []struct {
		name string
		mk   func(g *graph.Graph, p, w int) *partition.Map
	}{
		{"hash", func(g *graph.Graph, p, w int) *partition.Map { return partition.NewHash(g, p, w, 1) }},
		{"range", partition.NewRange},
		{"ldg", partition.NewLDG},
	} {
		cfg.logf("ablation partitioner %s ...", pt.name)
		pm := pt.mk(g, workers*workers, workers)
		cut := partition.Cut(g, pm)
		_, res, _, err := engine.Run(g, algorithms.PageRank(prThreshold("OR")), engine.Config{
			Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock,
			Partitioner: func(*graph.Graph, int, int) *partition.Map { return pm },
			Latency:     cfg.latencyModel(), Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Row{Experiment: "ablation-partitioner", Algorithm: "pagerank",
			Dataset: "OR", Workers: workers,
			Technique: fmt.Sprintf("%s (cut %.0f%%)", pt.name, 100*cut.CutFraction),
			Time:      res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
			DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, Converged: res.Converged})
	}
	return rows
}

// AblationCombining measures sender-side combining's effect on SSSP (the
// min-combiner algorithm): Giraph's in-buffer combining shrinks remote
// batches at no cost in correctness.
func AblationCombining(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]
	var rows []Row
	for _, disable := range []bool{false, true} {
		name := "sender-combine on"
		if disable {
			name = "sender-combine off"
		}
		cfg.logf("ablation combining %s ...", name)
		_, res, _, err := engine.Run(g, algorithms.SSSP(0), engine.Config{
			Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock,
			Latency: cfg.latencyModel(), Seed: 1, DisableSenderCombine: disable,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Row{Experiment: "ablation-combining", Algorithm: "sssp",
			Dataset: "OR", Workers: workers, Technique: name,
			Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
			DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, Converged: res.Converged})
	}
	return rows
}

// AblationSkip measures the §5.4 halted-partition skip optimization on a
// multi-superstep workload.
func AblationSkip(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]
	var rows []Row
	for _, disable := range []bool{false, true} {
		name := "halted-partition skip on"
		if disable {
			name = "halted-partition skip off"
		}
		cfg.logf("ablation skip %s ...", name)
		_, res, _, err := engine.Run(g, algorithms.SSSP(0), engine.Config{
			Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock,
			Latency: cfg.latencyModel(), Seed: 1, DisableHaltedPartitionSkip: disable,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Row{Experiment: "ablation-skip", Algorithm: "sssp",
			Dataset: "OR", Workers: workers, Technique: name,
			Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
			DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, Converged: res.Converged})
	}
	return rows
}

// MISComparison contrasts the serializable one-pass greedy MIS with Luby's
// non-serializable randomized MIS — the extension experiment showing
// serializability simplifying a second algorithm class.
func MISComparison(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.undirected("OR")
	workers := cfg.Workers[0]
	var rows []Row

	cfg.logf("mis greedy (partition lock) ...")
	states, res, _, err := engine.Run(g, algorithms.MISGreedy(), engine.Config{
		Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock,
		Latency: cfg.latencyModel(), Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	if err := algorithms.ValidateMIS(g, states); err != nil {
		panic(err)
	}
	rows = append(rows, Row{Experiment: "mis", Algorithm: "mis-greedy", Dataset: "OR",
		Workers: workers, Technique: "partition-lock (serializable)",
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages,
		Forks:    res.ForkSends, Converged: res.Converged})

	cfg.logf("mis luby (BSP) ...")
	vals, res, _, err := engine.Run(g, algorithms.MISLuby(7), engine.Config{
		Workers: workers, Mode: engine.BSP, Latency: cfg.latencyModel(), Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	if err := algorithms.ValidateMIS(g, algorithms.LubyStates(vals)); err != nil {
		panic(err)
	}
	rows = append(rows, Row{Experiment: "mis", Algorithm: "mis-luby", Dataset: "OR",
		Workers: workers, Technique: "BSP (no serializability needed)",
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs:  res.Net.ControlMessages,
		Converged: res.Converged})
	return rows
}

// AblationBAP compares the barriered AP engine with the barrierless BAP
// engine (Giraph Unchained's model, which the paper's Giraph async builds
// on) under partition-based locking.
func AblationBAP(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.directed("OR")
	workers := cfg.Workers[0]
	var rows []Row
	for _, mode := range []engine.Mode{engine.Async, engine.BAP} {
		name := "AP (global barriers)"
		if mode == engine.BAP {
			name = "BAP (barrierless)"
		}
		cfg.logf("ablation bap %s ...", name)
		_, res, _, err := engine.Run(g, algorithms.PageRank(prThreshold("OR")), engine.Config{
			Workers: workers, Mode: mode, Sync: engine.PartitionLock,
			Latency: cfg.latencyModel(), Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, Row{Experiment: "ablation-bap", Algorithm: "pagerank",
			Dataset: "OR", Workers: workers, Technique: name,
			Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
			DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
			CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, Converged: res.Converged})
	}
	return rows
}

// Exclusion reproduces the claim that opens §7: vertex-based locking on
// the partition-aware (Giraph async) engine is far slower than on the
// fiber-based GAS engine — the paper measured up to 44× on OR and
// excluded the combination from Figure 6.
func Exclusion(cfg Config) []Row {
	cfg = cfg.withDefaults()
	gc := newGraphCache(cfg)
	g := gc.undirected("OR")
	workers := cfg.Workers[0]
	var rows []Row

	cfg.logf("exclusion giraph-async vertex lock ...")
	_, res, _, err := engine.Run(g, algorithms.Coloring(), engine.Config{
		Workers: workers, Mode: engine.Async, Sync: engine.VertexLockGiraph,
		Latency: cfg.latencyModel(), Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	rows = append(rows, Row{Experiment: "exclusion", Algorithm: "coloring", Dataset: "OR",
		Workers: workers, Technique: "vertex-lock on Giraph async (excluded in §7)",
		Time: res.ComputeTime, Supersteps: res.Supersteps, Executions: res.Executions,
		DataMsgs: res.Net.DataMessages, DataBytes: res.Net.DataBytes,
		CtrlMsgs: res.Net.ControlMessages, Forks: res.ForkSends, Converged: res.Converged})

	cfg.logf("exclusion graphlab-async vertex lock ...")
	rows = append(rows, cfg.runGAS("exclusion", "coloring", "OR", g, workers,
		func() any { return algorithms.ColoringGAS() }))

	cfg.logf("exclusion partition lock ...")
	rows = append(rows, cfg.runPregel("exclusion", "coloring", "OR", g, workers,
		engine.PartitionLock, func() any { return algorithms.Coloring() }))
	return rows
}
