package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// This file implements the perf-trajectory diff behind `make bench-diff`:
// it matches rows of two BENCH_NNNN.json reports by configuration and
// prints wall-clock and per-phase deltas, so a hot-path change's effect on
// each (algorithm, technique) cell is visible at a glance. Parsing is
// deliberately decoupled from the Row struct: trajectory files from older
// commits must stay diffable even as Row grows fields.

// diffReport is the subset of the report schema the differ needs.
type diffReport struct {
	Schema string    `json:"schema"`
	Scale  float64   `json:"scale"`
	Label  string    `json:"label"`
	Rows   []diffRow `json:"rows"`
}

type diffRow struct {
	Experiment string `json:"experiment"`
	Algorithm  string `json:"algorithm"`
	Dataset    string `json:"dataset"`
	Workers    int    `json:"workers"`
	Technique  string `json:"technique"`
	TimeNs     int64  `json:"time_ns"`
	Supersteps int    `json:"supersteps"`
	DataBytes  int64  `json:"data_bytes"`
	WireBytes  int64  `json:"wire_bytes"`
	Partition  *struct {
		BoundaryFraction float64 `json:"boundary_fraction"`
	} `json:"partition"`
	Metrics *struct {
		PhaseNs map[string]int64 `json:"phase_ns"`
	} `json:"metrics"`
}

func (r diffRow) key() string {
	return fmt.Sprintf("%s/%s/%s/w%d/%s", r.Experiment, r.Algorithm, r.Dataset, r.Workers, r.Technique)
}

func (r diffRow) phase(name string) (int64, bool) {
	if r.Metrics == nil {
		return 0, false
	}
	v, ok := r.Metrics.PhaseNs[name]
	return v, ok
}

// LoadDiffReport reads a BENCH_NNNN.json file for diffing.
func LoadDiffReport(path string) (diffReport, error) {
	var rep diffReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("bench: %w", err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return rep, nil
}

// diffPhases is the print order; compute+local_delivery is derived because
// it is the figure the perf acceptance criteria track.
var diffPhases = []string{"compute_ns", "local_delivery_ns", "remote_flush_ns", "barrier_wait_ns", "checkpoint_ns"}

func fmtDelta(oldNs, newNs int64) string {
	o, n := time.Duration(oldNs), time.Duration(newNs)
	if oldNs == 0 {
		return fmt.Sprintf("%12v -> %12v", o.Round(10*time.Microsecond), n.Round(10*time.Microsecond))
	}
	pct := 100 * float64(newNs-oldNs) / float64(oldNs)
	return fmt.Sprintf("%12v -> %12v  %+6.1f%%", o.Round(10*time.Microsecond), n.Round(10*time.Microsecond), pct)
}

// fmtBytesDelta is fmtDelta for byte counts instead of durations.
func fmtBytesDelta(oldB, newB int64) string {
	if oldB == 0 {
		return fmt.Sprintf("%12d -> %12d", oldB, newB)
	}
	pct := 100 * float64(newB-oldB) / float64(oldB)
	return fmt.Sprintf("%12d -> %12d  %+6.1f%%", oldB, newB, pct)
}

// WriteDiff prints per-row wall and phase deltas between two reports —
// plus traffic (data/wire bytes) and partition-quality (boundary
// fraction) deltas when both reports carry those fields, so a
// partitioner or codec change's effect is visible alongside wall time.
// Rows present on only one side are listed, not silently dropped.
// Returns an error only on I/O failure.
func WriteDiff(w io.Writer, oldRep, newRep diffReport) error {
	oldBy := make(map[string]diffRow, len(oldRep.Rows))
	for _, r := range oldRep.Rows {
		oldBy[r.key()] = r
	}
	newBy := make(map[string]diffRow, len(newRep.Rows))
	var keys []string
	for _, r := range newRep.Rows {
		newBy[r.key()] = r
		keys = append(keys, r.key())
	}
	sort.Strings(keys)

	if oldRep.Scale != newRep.Scale {
		fmt.Fprintf(w, "WARNING: scale differs (old %g, new %g); absolute times are not comparable\n\n", oldRep.Scale, newRep.Scale)
	}
	for _, k := range keys {
		nr := newBy[k]
		or, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "%s\n  only in new report\n", k)
			continue
		}
		fmt.Fprintf(w, "%s\n", k)
		fmt.Fprintf(w, "  %-24s %s\n", "wall", fmtDelta(or.TimeNs, nr.TimeNs))
		if or.Supersteps != nr.Supersteps {
			fmt.Fprintf(w, "  %-24s %d -> %d (phase totals cover different work!)\n", "supersteps", or.Supersteps, nr.Supersteps)
		}
		if or.DataBytes != 0 && nr.DataBytes != 0 && or.DataBytes != nr.DataBytes {
			fmt.Fprintf(w, "  %-24s %s\n", "data_bytes", fmtBytesDelta(or.DataBytes, nr.DataBytes))
		}
		if or.WireBytes != 0 && nr.WireBytes != 0 && or.WireBytes != nr.WireBytes {
			fmt.Fprintf(w, "  %-24s %s\n", "wire_bytes", fmtBytesDelta(or.WireBytes, nr.WireBytes))
		}
		if or.Partition != nil && nr.Partition != nil && or.Partition.BoundaryFraction != nr.Partition.BoundaryFraction {
			fmt.Fprintf(w, "  %-24s %12.4f -> %12.4f\n", "boundary_fraction",
				or.Partition.BoundaryFraction, nr.Partition.BoundaryFraction)
		}
		var oCL, nCL int64
		var haveCL bool
		for _, ph := range diffPhases {
			ov, ook := or.phase(ph)
			nv, nok := nr.phase(ph)
			if !ook && !nok {
				continue
			}
			if ov == 0 && nv == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-24s %s\n", ph, fmtDelta(ov, nv))
			if ph == "compute_ns" || ph == "local_delivery_ns" {
				oCL += ov
				nCL += nv
				haveCL = ook || nok
			}
		}
		if haveCL {
			fmt.Fprintf(w, "  %-24s %s\n", "compute+local_delivery", fmtDelta(oCL, nCL))
		}
	}
	for _, r := range oldRep.Rows {
		if _, ok := newBy[r.key()]; !ok {
			fmt.Fprintf(w, "%s\n  only in old report\n", r.key())
		}
	}
	return nil
}

// diffNoiseFloorNs is the smallest baseline value the regression gate
// considers: percentage deltas on sub-millisecond phases are scheduler
// noise, not signal.
const diffNoiseFloorNs = int64(time.Millisecond)

// Regression is one wall-clock or phase increase beyond the fail-over
// threshold.
type Regression struct {
	Key    string // row key (experiment/algorithm/dataset/workers/technique)
	Metric string // "wall" or a phase name
	OldNs  int64
	NewNs  int64
}

// Pct is the regression as a percentage of the baseline.
func (r Regression) Pct() float64 { return 100 * float64(r.NewNs-r.OldNs) / float64(r.OldNs) }

// checkRegressions scans matched rows for wall-clock or per-phase
// increases beyond maxPct percent. Baselines under the noise floor are
// skipped; rows present on only one side are a shape change, not a
// regression, and are left to the printed diff.
func checkRegressions(oldRep, newRep diffReport, maxPct float64) []Regression {
	oldBy := make(map[string]diffRow, len(oldRep.Rows))
	for _, r := range oldRep.Rows {
		oldBy[r.key()] = r
	}
	var regs []Regression
	add := func(key, metric string, o, n int64) {
		if o < diffNoiseFloorNs {
			return
		}
		if 100*float64(n-o)/float64(o) > maxPct {
			regs = append(regs, Regression{Key: key, Metric: metric, OldNs: o, NewNs: n})
		}
	}
	for _, nr := range newRep.Rows {
		or, ok := oldBy[nr.key()]
		if !ok {
			continue
		}
		add(nr.key(), "wall", or.TimeNs, nr.TimeNs)
		for _, ph := range diffPhases {
			ov, ook := or.phase(ph)
			nv, nok := nr.phase(ph)
			if ook && nok {
				add(nr.key(), ph, ov, nv)
			}
		}
	}
	return regs
}

// DiffFiles loads two report files and writes their diff to w.
func DiffFiles(w io.Writer, oldPath, newPath string) error {
	return DiffFilesLimit(w, oldPath, newPath, 0)
}

// DiffFilesLimit is DiffFiles plus the CI regression gate: with maxPct > 0
// it returns an error after the diff if any matched row's wall clock or
// phase grew by more than maxPct percent over a baseline of at least 1ms.
func DiffFilesLimit(w io.Writer, oldPath, newPath string, maxPct float64) error {
	oldRep, err := LoadDiffReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := LoadDiffReport(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "old: %s (%s)\nnew: %s (%s)\n\n", oldPath, oldRep.Label, newPath, newRep.Label)
	if err := WriteDiff(w, oldRep, newRep); err != nil {
		return err
	}
	if maxPct <= 0 {
		return nil
	}
	regs := checkRegressions(oldRep, newRep, maxPct)
	if len(regs) == 0 {
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s %s: %v -> %v (%+.1f%% > %+.1f%%)\n",
			r.Key, r.Metric, time.Duration(r.OldNs).Round(10*time.Microsecond),
			time.Duration(r.NewNs).Round(10*time.Microsecond), r.Pct(), maxPct)
	}
	return fmt.Errorf("bench: %d metric(s) regressed more than %.1f%%", len(regs), maxPct)
}
