package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReportSchema names the JSON layout emitted by WriteJSON. Bump it only
// on breaking key changes; perf-trajectory tooling keys off it.
const ReportSchema = "serialgraph-bench/v1"

// Report is the machine-readable form of a benchmark run: one perf
// trajectory point. BENCH_NNNN.json files at the repo root are Reports.
type Report struct {
	Schema string  `json:"schema"`
	Scale  float64 `json:"scale"`
	// Workers is the cluster-size list the suite ran with.
	Workers []int `json:"workers"`
	// Label is free-form provenance (commit, issue number, machine).
	Label string `json:"label,omitempty"`
	Rows  []Row  `json:"rows"`
}

// NewReport bundles rows with the configuration that produced them.
func NewReport(cfg Config, label string, rows []Row) Report {
	cfg = cfg.withDefaults()
	return Report{Schema: ReportSchema, Scale: cfg.Scale, Workers: cfg.Workers, Label: label, Rows: rows}
}

// WriteJSON renders the report indented with a trailing newline, ready to
// check in. Key order is fixed by the struct tags and the metrics
// snapshot's sorted marshaling, so diffs between trajectory points are
// minimal.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile writes the report to path (0644, truncating).
func WriteJSONFile(path string, rep Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := WriteJSON(f, rep); err != nil {
		f.Close()
		return fmt.Errorf("bench: encode %s: %w", path, err)
	}
	return f.Close()
}

// MaskTimes returns a copy of raw JSON with every wall-clock-dependent
// field collapsed, for golden-file comparison: any field whose key ends
// in "_ns" becomes the scalar 0, whether it held a number or a whole
// structure (a time-valued histogram's bucket keys depend on the wall
// clock too, so zeroing its values would not be enough). Counter and
// topology fields pass through untouched, so a dropped counter still
// breaks the golden.
func MaskTimes(raw []byte) ([]byte, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("bench: mask: %w", err)
	}
	return json.MarshalIndent(maskValue(v), "", "  ")
}

func maskValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			if hasNsSuffix(k) {
				out[k] = 0
			} else {
				out[k] = maskValue(e)
			}
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = maskValue(e)
		}
		return out
	default:
		return x
	}
}

func hasNsSuffix(k string) bool {
	return strings.HasSuffix(k, "_ns")
}
