package bench

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit testing the harness
// itself.
func tiny() Config {
	return Config{Scale: 0.05, Workers: []int{4}, Latency: 10 * time.Microsecond}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	Table1(&sb, tiny())
	out := sb.String()
	for _, name := range []string{"OR", "AR", "TW", "UK"} {
		if !strings.Contains(out, name) {
			t.Errorf("table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestFig23(t *testing.T) {
	var sb strings.Builder
	Fig23(&sb)
	out := sb.String()
	if !strings.Contains(out, "converged=false") {
		t.Errorf("figure 2 run converged:\n%s", out)
	}
	if !strings.Contains(out, "partition lock") {
		t.Errorf("missing resolution line:\n%s", out)
	}
}

func TestFig6SmallGrid(t *testing.T) {
	cfg := tiny()
	cfg.Datasets = []string{"OR"}
	rows := Fig6("sssp", cfg)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (token-dual, partition-lock, vertex-lock)", len(rows))
	}
	for _, r := range rows {
		if !r.Converged {
			t.Errorf("%s did not converge", r.Technique)
		}
		if r.Time <= 0 {
			t.Errorf("%s has no time", r.Technique)
		}
	}
}

func TestPrintFormatsRows(t *testing.T) {
	rows := []Row{{
		Experiment: "x", Algorithm: "a", Dataset: "OR", Workers: 4,
		Technique: "t", Time: 12 * time.Millisecond, Supersteps: 3,
		Executions: 100, DataMsgs: 5, DataBytes: 2048, CtrlMsgs: 7, Converged: true,
	}}
	var sb strings.Builder
	Print(&sb, rows)
	out := sb.String()
	for _, want := range []string{"12ms", "100", "OR", "true", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestSpectrumAndExclusionAndMIS(t *testing.T) {
	cfg := tiny()
	// 2 PageRank anchor rows (bsp-none, async-none) + the 4 coloring
	// technique rows.
	if rows := Fig1Spectrum(cfg); len(rows) != 6 {
		t.Errorf("spectrum rows = %d, want 6", len(rows))
	}
	if rows := Exclusion(cfg); len(rows) != 3 {
		t.Errorf("exclusion rows = %d, want 3", len(rows))
	}
	if rows := MISComparison(cfg); len(rows) != 2 {
		t.Errorf("mis rows = %d, want 2", len(rows))
	}
}

func TestAblations(t *testing.T) {
	cfg := tiny()
	if rows := AblationPartitions(cfg); len(rows) < 3 {
		t.Errorf("partition sweep rows = %d", len(rows))
	}
	if rows := AblationCombining(cfg); len(rows) != 2 {
		t.Errorf("combining rows = %d", len(rows))
	}
	if rows := AblationSkip(cfg); len(rows) != 2 {
		t.Errorf("skip rows = %d", len(rows))
	}
	if rows := AblationBAP(cfg); len(rows) != 2 {
		t.Errorf("bap rows = %d", len(rows))
	}
	if rows := AblationDegenerate(cfg); len(rows) != 3 {
		t.Errorf("degenerate rows = %d", len(rows))
	}
	if rows := AblationPartitioner(cfg); len(rows) != 3 {
		t.Errorf("partitioner rows = %d", len(rows))
	}
}

func TestRecoveryOverhead(t *testing.T) {
	rows := RecoveryOverhead(tiny())
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if !r.Converged {
			t.Errorf("%s did not converge", r.Technique)
		}
	}
	for _, i := range []int{0, 1, 2} {
		if rows[i].Rollbacks != 0 {
			t.Errorf("fault-free row %s reports %d rollbacks", rows[i].Technique, rows[i].Rollbacks)
		}
	}
	full, confined := rows[3], rows[4]
	for _, crashed := range []Row{full, confined} {
		if crashed.Rollbacks < 1 {
			t.Errorf("crashed row reports no rollback: %+v", crashed)
		}
		if crashed.Recomputed < 1 {
			t.Errorf("crashed row reports no recomputed supersteps: %+v", crashed)
		}
	}
	if full.Confined != 0 {
		t.Errorf("full-rollback row reports %d confined recoveries", full.Confined)
	}
	if confined.Confined < 1 {
		t.Errorf("confined row recovered %d crashes confined: %+v", confined.Confined, confined)
	}
	// The headline claim: for the same single-worker crash, confined
	// recovery redoes strictly fewer partition×superstep units than a
	// whole-cluster rollback.
	if confined.RecomputedParts >= full.RecomputedParts {
		t.Errorf("confined recomputed %d partition-supersteps, full %d; want strictly fewer",
			confined.RecomputedParts, full.RecomputedParts)
	}
}

func TestPRThreshold(t *testing.T) {
	if prThreshold("OR") != 0.01 || prThreshold("AR") != 0.01 {
		t.Error("OR/AR threshold wrong")
	}
	if prThreshold("TW") != 0.1 || prThreshold("UK") != 0.1 {
		t.Error("TW/UK threshold wrong")
	}
}
