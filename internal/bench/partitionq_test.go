package bench

import (
	"strings"
	"testing"

	"serialgraph/internal/partition"
)

// partitionRowsByKind indexes the bsp-none pagerank row per partitioner.
func partitionRowsByKind(t *testing.T, rows []Row) map[string]Row {
	t.Helper()
	pr := map[string]Row{}
	for _, r := range rows {
		if r.Partition == nil {
			t.Fatalf("row %s/%s has no partition quality report", r.Algorithm, r.Technique)
		}
		if cell, kind, ok := strings.Cut(r.Technique, "/"); ok && cell == "bsp-none" {
			pr[kind] = r
		}
	}
	return pr
}

// checkPartitionRows verifies, from the returned rows, the reductions
// that PartitionQuality already gates with panics: the streaming
// partitioners cut the boundary fraction and the cross-partition bytes
// by at least 25% against hash at equal P.
func checkPartitionRows(t *testing.T, rows []Row, wantRows int) {
	t.Helper()
	if len(rows) != wantRows {
		t.Fatalf("PartitionQuality returned %d rows, want %d", len(rows), wantRows)
	}
	pr := partitionRowsByKind(t, rows)
	hash, ok := pr[partition.KindHash]
	if !ok {
		t.Fatal("no bsp-none/hash row")
	}
	for _, kind := range []string{partition.KindLDG, partition.KindFennel} {
		row, ok := pr[kind]
		if !ok {
			t.Fatalf("no bsp-none/%s row", kind)
		}
		if bf, hbf := row.Partition.BoundaryFraction, hash.Partition.BoundaryFraction; bf > 0.75*hbf {
			t.Errorf("%s boundary fraction %.4f vs hash %.4f: reduction under 25%%", kind, bf, hbf)
		}
		if db, hdb := row.DataBytes, hash.DataBytes; float64(db) > 0.75*float64(hdb) {
			t.Errorf("%s cross-partition bytes %d vs hash %d: reduction under 25%%", kind, db, hdb)
		}
		if row.Supersteps != hash.Supersteps {
			t.Errorf("%s BSP supersteps %d != hash %d", kind, row.Supersteps, hash.Supersteps)
		}
		t.Logf("%-6s boundary %.4f (hash %.4f), bytes %d (hash %d), skew %.2f",
			kind, row.Partition.BoundaryFraction, hash.Partition.BoundaryFraction,
			row.DataBytes, hash.DataBytes, row.Partition.BalanceSkew)
	}
}

// TestPartitionQualitySmoke runs the locality experiment on a small
// cluster so every gate inside PartitionQuality (balance bound, >=25%
// reductions, bitwise BSP equality, coloring validity) executes in the
// short suite too.
func TestPartitionQualitySmoke(t *testing.T) {
	rows := PartitionQuality(Config{Scale: 1, Workers: []int{4}})
	checkPartitionRows(t, rows, 12) // 3 partitioners x (pagerank + 3 coloring techniques)
}

// TestPartitionQualityAcceptance is the issue's acceptance gate at the
// BENCH-recipe size: P = 256 partitions on 16 workers, communities sized
// under the streaming capacity. PartitionQuality panics on any
// violation; this test re-derives the headline reductions from the rows
// it returns.
func TestPartitionQualityAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size locality run; covered by the long mode and make partition")
	}
	pinGOMAXPROCS(t)
	rows := PartitionQuality(Config{Scale: 1, Workers: []int{16}})
	checkPartitionRows(t, rows, 12)
}
