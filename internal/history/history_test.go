package history

import (
	"sync"
	"testing"

	"serialgraph/internal/graph"
)

func pairGraph() *graph.Graph {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	return b.BuildUndirected()
}

func TestRecorderTicksMonotonic(t *testing.T) {
	r := NewRecorder()
	prev := int64(0)
	for i := 0; i < 100; i++ {
		now := r.Tick()
		if now <= prev {
			t.Fatalf("tick %d not increasing after %d", now, prev)
		}
		prev = now
	}
}

func TestRecorderConcurrentAppend(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := r.Tick()
				r.Append(Txn{Vertex: 0, Start: s, End: r.Tick()})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestCheckC1(t *testing.T) {
	fresh := []Txn{{Vertex: 1, Reads: []Read{{Src: 0, SlotVer: 3, PrimaryVer: 3}}}}
	if v := CheckC1(fresh); v != nil {
		t.Errorf("fresh read flagged: %v", v)
	}
	stale := []Txn{{Vertex: 1, Reads: []Read{{Src: 0, SlotVer: 2, PrimaryVer: 3}}}}
	if v := CheckC1(stale); len(v) != 1 || v[0].Kind != "C1" {
		t.Errorf("stale read not flagged: %v", v)
	}
}

func TestCheckC2Overlap(t *testing.T) {
	g := pairGraph()
	// Non-overlapping neighbor executions: fine.
	ok := []Txn{
		{Vertex: 0, Start: 1, End: 2},
		{Vertex: 1, Start: 3, End: 4},
	}
	if v := CheckC2(ok, g); v != nil {
		t.Errorf("sequential neighbors flagged: %v", v)
	}
	// Overlapping neighbors: violation.
	bad := []Txn{
		{Vertex: 0, Start: 1, End: 3},
		{Vertex: 1, Start: 2, End: 4},
	}
	if v := CheckC2(bad, g); len(v) != 1 || v[0].Kind != "C2" {
		t.Errorf("overlapping neighbors not flagged: %v", v)
	}
}

func TestCheckC2NonNeighborsMayOverlap(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // 2 is isolated
	g := b.Build()
	txns := []Txn{
		{Vertex: 0, Start: 1, End: 5},
		{Vertex: 2, Start: 2, End: 4},
	}
	if v := CheckC2(txns, g); v != nil {
		t.Errorf("non-neighbors flagged: %v", v)
	}
}

func TestCheckC2SameVertexConcurrent(t *testing.T) {
	g := pairGraph()
	txns := []Txn{
		{Vertex: 0, Start: 1, End: 4},
		{Vertex: 0, Start: 2, End: 3},
	}
	if v := CheckC2(txns, g); len(v) != 1 {
		t.Errorf("self-concurrency not flagged: %v", v)
	}
}

func TestCheckC2DirectionalNeighbors(t *testing.T) {
	// u -> v only (directed): still neighbors per §3.5.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.Build()
	txns := []Txn{
		{Vertex: 0, Start: 1, End: 3},
		{Vertex: 1, Start: 2, End: 4},
	}
	if v := CheckC2(txns, g); len(v) != 1 {
		t.Errorf("directed neighbors not flagged: %v", v)
	}
}

func TestCheckSerializableAcyclic(t *testing.T) {
	// v0 writes version 1; v1 reads it and writes its own version 1.
	txns := []Txn{
		{Vertex: 0, Wrote: true, WriteVer: 1, ReadVer: 0},
		{Vertex: 1, Wrote: true, WriteVer: 1, ReadVer: 0,
			Reads: []Read{{Src: 0, SlotVer: 1, PrimaryVer: 1}}},
	}
	if v := CheckSerializable(txns); v != nil {
		t.Errorf("acyclic history flagged: %v", v)
	}
}

func TestCheckSerializableCycle(t *testing.T) {
	// Classic write skew on two vertices:
	//   T0 on v0 reads v1@0 and writes v0@1.
	//   T1 on v1 reads v0@0 and writes v1@1.
	// T0 before T1 (T0 read v1@0, T1 wrote v1@1) and T1 before T0
	// symmetric: cycle.
	txns := []Txn{
		{Vertex: 0, Wrote: true, WriteVer: 1, ReadVer: 0,
			Reads: []Read{{Src: 1, SlotVer: 0, PrimaryVer: 0}}},
		{Vertex: 1, Wrote: true, WriteVer: 1, ReadVer: 0,
			Reads: []Read{{Src: 0, SlotVer: 0, PrimaryVer: 0}}},
	}
	if v := CheckSerializable(txns); len(v) != 1 || v[0].Kind != "1SR" {
		t.Errorf("write-skew cycle not flagged: %v", v)
	}
}

func TestCheckSerializableVersionChain(t *testing.T) {
	// Serial updates to one vertex across three supersteps: acyclic.
	txns := []Txn{
		{Vertex: 0, Wrote: true, WriteVer: 1, ReadVer: 0},
		{Vertex: 0, Wrote: true, WriteVer: 2, ReadVer: 1},
		{Vertex: 0, Wrote: true, WriteVer: 3, ReadVer: 2},
	}
	if v := CheckSerializable(txns); v != nil {
		t.Errorf("version chain flagged: %v", v)
	}
}

func TestCheckAllAggregates(t *testing.T) {
	g := pairGraph()
	txns := []Txn{
		{Vertex: 0, Start: 1, End: 3, Wrote: true, WriteVer: 1,
			Reads: []Read{{Src: 1, SlotVer: 0, PrimaryVer: 1}}}, // C1 violation
		{Vertex: 1, Start: 2, End: 4, Wrote: true, WriteVer: 1}, // C2 overlap with above
	}
	v := CheckAll(txns, g)
	kinds := map[string]int{}
	for _, x := range v {
		kinds[x.Kind]++
	}
	if kinds["C1"] != 1 || kinds["C2"] != 1 {
		t.Errorf("CheckAll = %v", v)
	}
	if v[0].String() == "" {
		t.Error("empty violation string")
	}
}
