// Package history records vertex executions as transactions (§3.2: an
// execution of vertex u is T(Nu) = r[Nu] w[u]) and verifies the paper's
// serializability conditions after a run:
//
//   - C1: every replica read was fresh (the read slot's version equals the
//     primary's version at read time),
//   - C2: no two transactions on neighboring vertices overlapped in time,
//   - 1SR: the version-order serialization graph is acyclic.
//
// Recording is opt-in; engines attach a Recorder only when asked, so
// production runs pay nothing.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"serialgraph/internal/graph"
)

// Read is one replica read within a transaction: the in-neighbor it came
// from, the version the replica slot carried, and the primary copy's
// version at the moment of the read.
type Read struct {
	Src        graph.VertexID
	SlotVer    uint32
	PrimaryVer uint32
}

// Txn is one vertex execution. Start and End are global logical ticks that
// strictly order non-overlapping executions; two transactions were
// concurrent iff their [Start, End] intervals overlap.
type Txn struct {
	Vertex   graph.VertexID
	Start    int64
	End      int64
	Wrote    bool
	WriteVer uint32 // version produced by the write, when Wrote
	ReadVer  uint32 // version of the vertex's own value read at start
	Reads    []Read // in-neighbor replica reads (Overwrite semantics only)
}

// Recorder collects transactions from all workers of a run.
type Recorder struct {
	tick      atomic.Int64
	resetTick atomic.Int64
	mu        sync.Mutex
	txns      []Txn
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Tick returns the next global logical timestamp.
func (r *Recorder) Tick() int64 { return r.tick.Add(1) }

// Append records a completed transaction. Safe for concurrent use.
func (r *Recorder) Append(t Txn) {
	r.mu.Lock()
	r.txns = append(r.txns, t)
	r.mu.Unlock()
}

// Txns returns the recorded transactions (not a copy; call after the run).
func (r *Recorder) Txns() []Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.txns
}

// Reset discards every recorded transaction while keeping the logical
// clock monotone. The engine calls it when a rollback discards the
// executions recorded since the restored checkpoint: the surviving
// history is the post-rollback suffix, which must still be serializable
// on its own. The clock is deliberately NOT rewound: post-rollback
// transactions must tick strictly after every discarded one, so interval
// overlap (C2) can never pair a replayed execution with a ghost of the
// discarded timeline.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.resetTick.Store(r.tick.Load())
	r.txns = nil
	r.mu.Unlock()
}

// LastResetTick returns the logical clock value at the most recent Reset
// (0 if the recorder was never reset). Every transaction recorded after
// that Reset has Start > LastResetTick, which rollback regression tests
// use to prove ticks stay strictly increasing across a recovery.
func (r *Recorder) LastResetTick() int64 { return r.resetTick.Load() }

// Len returns the number of recorded transactions.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.txns)
}

// Violation describes one failed check.
type Violation struct {
	Kind   string // "C1", "C2", or "1SR"
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// CheckC1 returns a violation for every stale replica read.
func CheckC1(txns []Txn) []Violation {
	var out []Violation
	for _, t := range txns {
		for _, rd := range t.Reads {
			if rd.SlotVer != rd.PrimaryVer {
				out = append(out, Violation{
					Kind: "C1",
					Detail: fmt.Sprintf("txn on v%d read v%d at version %d but primary was at %d",
						t.Vertex, rd.Src, rd.SlotVer, rd.PrimaryVer),
				})
			}
		}
	}
	return out
}

// CheckC2 returns a violation for every pair of concurrent transactions on
// neighboring vertices (neighbors = in- or out-edge neighbors, §3.5). Uses
// an interval sweep so only genuinely overlapping pairs are compared.
func CheckC2(txns []Txn, g *graph.Graph) []Violation {
	order := make([]int, len(txns))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return txns[order[a]].Start < txns[order[b]].Start })

	adjacent := func(u, v graph.VertexID) bool {
		return g.HasEdge(u, v) || g.HasEdge(v, u)
	}

	var out []Violation
	active := make([]int, 0, 64) // indices with End >= current Start
	for _, i := range order {
		t := &txns[i]
		keep := active[:0]
		for _, j := range active {
			if txns[j].End >= t.Start {
				keep = append(keep, j)
			}
		}
		active = keep
		for _, j := range active {
			o := &txns[j]
			if o.Vertex == t.Vertex {
				// Same vertex executing concurrently with itself is a C2
				// violation too (one engine thread per vertex prevents it;
				// flag it if it ever happens).
				out = append(out, Violation{Kind: "C2",
					Detail: fmt.Sprintf("v%d executed concurrently with itself ([%d,%d] vs [%d,%d])",
						t.Vertex, o.Start, o.End, t.Start, t.End)})
				continue
			}
			if adjacent(t.Vertex, o.Vertex) {
				out = append(out, Violation{Kind: "C2",
					Detail: fmt.Sprintf("neighbors v%d [%d,%d] and v%d [%d,%d] executed concurrently",
						o.Vertex, o.Start, o.End, t.Vertex, t.Start, t.End)})
			}
		}
		active = append(active, i)
	}
	return out
}

// CheckSerializable builds the version-order serialization graph and
// reports a violation if it contains a cycle. Edges follow standard
// multiversion conflict order: the writer of version k of vertex v precedes
// its readers, readers of version k precede the writer of version k+1, and
// writers are ordered by version.
func CheckSerializable(txns []Txn) []Violation {
	type key struct {
		v   graph.VertexID
		ver uint32
	}
	writer := make(map[key]int)
	for i, t := range txns {
		if t.Wrote {
			writer[key{t.Vertex, t.WriteVer}] = i
		}
	}

	succ := make([][]int, len(txns))
	addEdge := func(a, b int) {
		if a != b {
			succ[a] = append(succ[a], b)
		}
	}
	readsOf := func(i int) []Read {
		t := txns[i]
		// Include the implicit self-read of the vertex's own value.
		reads := make([]Read, 0, len(t.Reads)+1)
		reads = append(reads, t.Reads...)
		reads = append(reads, Read{Src: t.Vertex, SlotVer: t.ReadVer, PrimaryVer: t.ReadVer})
		return reads
	}
	for i := range txns {
		for _, rd := range readsOf(i) {
			if rd.SlotVer > 0 {
				if w, ok := writer[key{rd.Src, rd.SlotVer}]; ok {
					addEdge(w, i) // writer before reader
				}
			}
			if w, ok := writer[key{rd.Src, rd.SlotVer + 1}]; ok {
				addEdge(i, w) // reader before next writer
			}
		}
		t := txns[i]
		if t.Wrote && t.WriteVer > 1 {
			if w, ok := writer[key{t.Vertex, t.WriteVer - 1}]; ok {
				addEdge(w, i) // version order
			}
		}
	}

	// Iterative three-color DFS for a cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(txns))
	var stack []int
	for start := range txns {
		if color[start] != white {
			continue
		}
		stack = stack[:0]
		stack = append(stack, start)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = gray
				for _, nb := range succ[n] {
					if color[nb] == gray {
						return []Violation{{Kind: "1SR",
							Detail: fmt.Sprintf("serialization graph cycle through txns on v%d and v%d",
								txns[n].Vertex, txns[nb].Vertex)}}
					}
					if color[nb] == white {
						stack = append(stack, nb)
					}
				}
			} else {
				color[n] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// CheckAll runs C1, C2, and the 1SR check and returns all violations.
func CheckAll(txns []Txn, g *graph.Graph) []Violation {
	var out []Violation
	out = append(out, CheckC1(txns)...)
	out = append(out, CheckC2(txns, g)...)
	out = append(out, CheckSerializable(txns)...)
	return out
}
