package engine

import (
	"testing"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/cluster"
	"serialgraph/internal/fault"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/model"
)

// checkConservation asserts the equalities that must hold between the
// metrics registry and the transport's ground-truth counters on a
// fault-free run. Every remote send funnels through the buffer cache and
// every control send through the counted closures, so any instrumentation
// gap on a send or deliver path breaks one of these exactly.
func checkConservation(t *testing.T, res Result) {
	t.Helper()
	m := res.Metrics
	if got, want := m.Get(metrics.RemoteBatches), res.Net.DataMessages; got != want {
		t.Errorf("remote_batches = %d, transport DataMessages = %d", got, want)
	}
	if got, want := m.Get(metrics.RemoteBatchBytes), res.Net.DataBytes; got != want {
		t.Errorf("remote_batch_bytes = %d, transport DataBytes = %d", got, want)
	}
	if got, want := m.Get(metrics.CtrlMessages), res.Net.ControlMessages; got != want {
		t.Errorf("ctrl_messages = %d, transport ControlMessages = %d", got, want)
	}
	if got, want := m.Get(metrics.CtrlBytes), res.Net.ControlBytes; got != want {
		t.Errorf("ctrl_bytes = %d, transport ControlBytes = %d", got, want)
	}
	if got, want := m.Get(metrics.RemoteEntriesDelivered), m.Get(metrics.RemoteEntriesFlushed); got != want {
		t.Errorf("remote_entries_delivered = %d, remote_entries_flushed = %d", got, want)
	}
	if got, want := m.Get(metrics.Executions), res.Executions; got != want {
		t.Errorf("executions counter = %d, Result.Executions = %d", got, want)
	}
	if got, want := m.Hist(metrics.HistBatchEntries).Count, m.Get(metrics.RemoteBatches); got != want {
		t.Errorf("batch_entries hist count = %d, remote_batches = %d", got, want)
	}
	if flushed, buffered := m.Get(metrics.RemoteEntriesFlushed), m.Get(metrics.RemoteEntries); flushed > buffered {
		t.Errorf("remote_entries_flushed = %d > remote_entries = %d", flushed, buffered)
	}
}

func TestMetricsConservation(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		name  string
		mode  Mode
		sync  Sync
		sched SchedulerKind
	}{
		{"bsp", BSP, SyncNone, SchedStatic},
		{"async-none", Async, SyncNone, SchedStatic},
		{"async-token-single", Async, TokenSingle, SchedStatic},
		{"async-token-dual", Async, TokenDual, SchedStatic},
		{"async-partition-lock", Async, PartitionLock, SchedStatic},
		{"async-vertex-lock", Async, VertexLockGiraph, SchedStatic},
		{"bap-none", BAP, SyncNone, SchedStatic},
		{"bap-partition-lock", BAP, PartitionLock, SchedStatic},
		// The overlap scheduler reorders partition execution but must leave
		// every conservation equality intact: prefetches are LockAcquires
		// observed by the wait histogram, internal partitions still run the
		// blocking fast path, and flush/deliver bookkeeping is untouched.
		{"async-none-overlap", Async, SyncNone, SchedOverlap},
		{"async-token-dual-overlap", Async, TokenDual, SchedOverlap},
		{"async-partition-lock-overlap", Async, PartitionLock, SchedOverlap},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Workers: 4, Mode: tc.mode, Sync: tc.sync, Seed: 5,
				Scheduler: tc.sched,
			}
			_, res, _, err := Run(g, algorithms.SSSP(0), cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, res)
			checkSchedCounters(t, tc.name, cfg, res)
			m := res.Metrics
			if tc.mode == BAP {
				if got := m.Get(metrics.Supersteps); got < int64(res.Supersteps) {
					t.Errorf("supersteps counter = %d < Result.Supersteps = %d", got, res.Supersteps)
				}
			} else if got := m.Get(metrics.Supersteps); got != int64(res.Supersteps) {
				t.Errorf("supersteps counter = %d, Result.Supersteps = %d", got, res.Supersteps)
			}
			if m.Get(metrics.LocalMessages)+m.Get(metrics.RemoteEntries) == 0 {
				t.Error("no messages counted at all; SSSP sends plenty")
			}
			switch tc.sync {
			case PartitionLock, VertexLockGiraph:
				if m.Get(metrics.LockAcquires) == 0 {
					t.Error("locking run recorded no lock_acquires")
				}
				if got, want := m.Hist(metrics.HistLockWait).Count, m.Get(metrics.LockAcquires); got != want {
					t.Errorf("lock_wait hist count = %d, lock_acquires = %d", got, want)
				}
				if got, want := m.Get(metrics.ForkGrants), res.ForkSends; got != want {
					t.Errorf("fork_grants = %d, Result.ForkSends = %d", got, want)
				}
				if got, want := m.Get(metrics.TokenSends), res.TokenSends; got != want {
					t.Errorf("token_sends = %d, Result.TokenSends = %d", got, want)
				}
			case TokenSingle, TokenDual:
				if m.Get(metrics.FlushMarkers) == 0 {
					t.Error("token run recorded no flush markers")
				}
				if got, want := m.Get(metrics.FlushMarkers), m.Get(metrics.CtrlMessages); got != want {
					t.Errorf("token runs send no other control traffic: markers = %d, ctrl = %d", got, want)
				}
			}
		})
	}
}

// TestMetricsConservationUnderDrops reconciles the registry with the
// transport on a run with injected message drops (no crashes, no
// duplicates): every batch the engine emitted was either counted as data
// traffic or counted as dropped, and control traffic — which chaos never
// touches — still matches exactly.
func TestMetricsConservationUnderDrops(t *testing.T) {
	g := testGraph(t)
	_, res, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 4, Mode: Async, Sync: SyncNone, Seed: 5,
		Fault: fault.NewInjector(fault.Plan{DropRate: 0.25, Seed: 99}),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if res.Net.DroppedMessages == 0 {
		t.Fatal("drop plan dropped nothing; raise DropRate or the graph size")
	}
	if got, want := m.Get(metrics.RemoteBatches), res.Net.DataMessages+res.Net.DroppedMessages; got != want {
		t.Errorf("remote_batches = %d, DataMessages+DroppedMessages = %d", got, want)
	}
	if got, want := m.Get(metrics.CtrlMessages), res.Net.ControlMessages; got != want {
		t.Errorf("ctrl_messages = %d, transport ControlMessages = %d", got, want)
	}
	if delivered, flushed := m.Get(metrics.RemoteEntriesDelivered), m.Get(metrics.RemoteEntriesFlushed); delivered >= flushed {
		t.Errorf("drops should lose entries: delivered = %d, flushed = %d", delivered, flushed)
	}
}

// TestPhaseInvariants checks the per-superstep phase breakdown: every
// phase duration is non-negative, and — because compute, remote-flush,
// and barrier-wait are disjoint wall intervals within each worker's
// superstep — their sum across workers never exceeds workers × the
// master's superstep wall time.
func TestPhaseInvariants(t *testing.T) {
	g := testGraph(t)
	const workers = 4
	for _, sync := range []Sync{SyncNone, TokenSingle, PartitionLock} {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			_, res, _, err := Run(g, algorithms.SSSP(0), Config{
				Workers: workers, Mode: Async, Sync: sync, Seed: 5, DetailedStats: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.SuperstepStats) == 0 {
				t.Fatal("DetailedStats produced no per-superstep stats")
			}
			for i, st := range res.SuperstepStats {
				if st.ComputeNs < 0 || st.LocalDeliveryNs < 0 || st.RemoteFlushNs < 0 || st.BarrierWaitNs < 0 {
					t.Fatalf("superstep %d: negative phase duration: %+v", i, st)
				}
				sum := st.ComputeNs + st.RemoteFlushNs + st.BarrierWaitNs
				if bound := int64(st.Duration) * workers; sum > bound {
					t.Fatalf("superstep %d: phase sum %d > %d×wall %d", i, sum, workers, bound)
				}
			}
			for _, p := range metrics.Phases() {
				if res.Metrics.Phase(p) < 0 {
					t.Fatalf("phase %s negative: %v", p.Name(), res.Metrics.Phase(p))
				}
			}
			if res.Metrics.Phase(metrics.PhaseCompute) == 0 {
				t.Error("compute phase never accrued")
			}
		})
	}
}

// broadcastProgram floods every out-neighbor each superstep and never
// halts, so under single-layer token passing the holder executes every
// (boundary) vertex while the others sit idle — the workload that makes
// the token techniques' hold/idle accounting sharply visible.
func broadcastProgram() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name: "broadcast", Semantics: model.Queue, MsgBytes: 4,
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			ctx.SetValue(int32(len(msgs)))
			ctx.SendToAllOut(1)
		},
	}
}

// TestTokenHolderNeverWaitsAtBarrier: on a complete graph every vertex is
// a remote-boundary vertex, so under TokenSingle only the holder's
// vertices execute and the holder — doing all the work — is the last
// worker to finish every superstep. Its barrier-wait is therefore zero,
// which surfaces as exact equality between the total barrier-wait phase
// (all workers) and token_idle_ns (non-holders only).
//
// The finish-order argument needs a real timing margin, not just "the
// holder computed longer": with per-lane bandwidth, the holder's flush
// marker serializes behind all of its own data, so its delivery ack comes
// at least one propagation delay after the idle worker's — milliseconds,
// far above goroutine wake-up jitter even on one CPU under -race.
func TestTokenHolderNeverWaitsAtBarrier(t *testing.T) {
	const n = 80
	b := graph.NewBuilder(n)
	for u := graph.VertexID(0); u < n; u++ {
		for v := graph.VertexID(0); v < n; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.Build()
	_, res, _, err := Run(g, broadcastProgram(), Config{
		Workers: 2, Mode: Async, Sync: TokenSingle, Seed: 1,
		MaxSupersteps: 6,
		Latency: cluster.LatencyModel{
			Propagation: 2 * time.Millisecond,
			BytesPerSec: 1e6,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	hold := m.Get(metrics.TokenHoldNs)
	idle := m.Get(metrics.TokenIdleNs)
	if hold <= 0 {
		t.Fatalf("token_hold_ns = %d, want > 0", hold)
	}
	if got := int64(m.Phase(metrics.PhaseBarrierWait)); got != idle {
		t.Errorf("barrier_wait_ns total = %d != token_idle_ns = %d: the holder waited at a barrier", got, idle)
	}
	if idle <= 0 {
		t.Errorf("token_idle_ns = %d: the idle worker never waited for the holder", idle)
	}
}

// TestExternalRegistryAccumulatesAcrossRuns: a caller-supplied registry
// outlives one run, so two runs add up — the sharing contract torture and
// bench rely on.
func TestExternalRegistryAccumulatesAcrossRuns(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 100, AvgDegree: 4, Exponent: 2.2, Seed: 3})
	reg := metrics.New()
	cfg := Config{Workers: 2, Mode: Async, Sync: SyncNone, Seed: 5, Metrics: reg}
	_, res1, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, res2, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res1.Executions + res2.Executions
	if got := reg.Get(metrics.Executions); got != want {
		t.Errorf("shared registry executions = %d, want %d", got, want)
	}
	if got := res2.Metrics.Get(metrics.Executions); got != want {
		t.Errorf("second Result snapshot = %d, want cumulative %d", got, want)
	}
}
