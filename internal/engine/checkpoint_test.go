package engine

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/checkpoint"
	"serialgraph/internal/generate"
)

// TestCheckpointRecovery simulates a mid-run cluster failure: a first run
// checkpoints every 2 supersteps and is killed (MaxSupersteps) before
// converging; a second run restores from the latest checkpoint and must
// finish with exactly the reference answer.
func TestCheckpointRecovery(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 500, AvgDegree: 4, Exponent: 2.2, Seed: 17})
	want := algorithms.ShortestPaths(g, 0)
	dir := t.TempDir()

	base := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 2, CheckpointDir: dir,
	}

	// Run 1: crash after 4 supersteps.
	crashed := base
	crashed.MaxSupersteps = 4
	_, res1, _, err := Run(g, algorithms.SSSP(0), crashed)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Converged {
		t.Skip("graph too easy: converged before the injected crash")
	}

	latest, err := checkpoint.Latest(dir)
	if err != nil || latest == "" {
		t.Fatalf("no checkpoint found: %v", err)
	}

	// Run 2: restore and finish.
	resumed := base
	resumed.RestoreFrom = latest
	dist, res2, _, err := Run(g, algorithms.SSSP(0), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("resumed run did not converge")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
	// The resumed run must not redo the completed supersteps.
	if res2.Supersteps <= 2 {
		t.Logf("resumed run took %d supersteps", res2.Supersteps)
	}
}

// TestCheckpointRecoveryColoring exercises recovery with the Overwrite
// store and fork state under partition locking.
func TestCheckpointRecoveryColoring(t *testing.T) {
	g0 := generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 5, Exponent: 2.1, Seed: 23})
	g := undirected(g0)
	dir := t.TempDir()
	base := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 9,
		CheckpointEvery: 1, CheckpointDir: dir,
	}
	crashed := base
	crashed.MaxSupersteps = 1
	_, res1, _, err := Run(g, algorithms.Coloring(), crashed)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Converged {
		t.Skip("converged in one superstep")
	}
	latest, err := checkpoint.Latest(dir)
	if err != nil || latest == "" {
		t.Fatalf("no checkpoint: %v", err)
	}
	resumed := base
	resumed.RestoreFrom = latest
	colors, res2, _, err := Run(g, algorithms.Coloring(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("resumed run did not converge")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	g := generate.Ring(10)
	dir := t.TempDir()
	cfg := Config{Workers: 2, Mode: Async, CheckpointEvery: 1, CheckpointDir: dir, MaxSupersteps: 2}
	if _, _, _, err := Run(g, algorithms.SSSP(0), cfg); err != nil {
		t.Fatal(err)
	}
	latest, _ := checkpoint.Latest(dir)
	if latest == "" {
		t.Fatal("no checkpoint written")
	}
	// Restore onto a different graph size must fail loudly.
	g2 := generate.Ring(20)
	bad := Config{Workers: 2, Mode: Async, RestoreFrom: latest}
	if _, _, _, err := Run(g2, algorithms.SSSP(0), bad); err == nil {
		t.Error("mismatched restore succeeded")
	}
}
