package engine

// Cross-partitioner equivalence matrix: every synchronization technique ×
// {SSSP, PageRank, coloring} × {hash, range, ldg, fennel}, with hash as
// the baseline each other partitioner is compared against. A partitioner
// decides *where* vertices execute, never *what* they compute, so:
//
//   - BSP is schedule-deterministic given Overwrite/combining semantics:
//     per-superstep folds happen in fixed in-slot order, which depends
//     only on the graph — not the placement. BSP cells therefore demand
//     bitwise-identical values and superstep counts across partitioners.
//   - SSSP has a unique fixed point under every technique, so converged
//     distances must match the reference exactly on every cell.
//   - Async PageRank and coloring are schedule-dependent (two runs with
//     the same partitioner already differ), so those cells assert the
//     algorithm-level contract per partitioner: residual bound, proper
//     coloring under serializable techniques — the torture oracles.
//
// Every cell also reconciles the partition-quality plumbing: the census
// in Result.Partition must sum to |V| and agree with the cut_edges /
// boundary_vertices counters the engine publishes at startup.

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/partition"
)

func equivPartConfig(mode Mode, sync Sync, kind string) Config {
	cfg := Config{
		Workers: 3, PartitionsPerWorker: 2, ThreadsPerWorker: 2,
		Mode: mode, Sync: sync, Seed: 1131, MaxSupersteps: 200,
		Metrics: metrics.New(),
	}
	if kind != partition.KindHash {
		cfg.Partitioner = func(g *graph.Graph, p, w int) *partition.Map {
			m, err := partition.New(kind, g, p, w, 1131)
			if err != nil {
				panic(err)
			}
			return m
		}
	}
	return cfg
}

// reconcileQuality checks the quality plumbing on any run: census sums
// to |V|, fractions in range, and the startup counters match the report.
func reconcileQuality(t *testing.T, label string, g *graph.Graph, res Result) {
	t.Helper()
	q := res.Partition
	n := g.NumVertices()
	if sum := q.PInternal + q.LocalBoundary + q.RemoteBoundary + q.MixedBoundary; sum != n {
		t.Errorf("%s: class census sums to %d, want %d", label, sum, n)
	}
	if q.BoundaryFraction < 0 || q.BoundaryFraction > 1 || q.CutFraction < 0 || q.CutFraction > 1 {
		t.Errorf("%s: fractions out of range: %+v", label, q)
	}
	if got, want := res.Metrics.Get(metrics.CutEdges), int64(q.CutEdges); got != want {
		t.Errorf("%s: cut_edges counter = %d, report says %d", label, got, want)
	}
	if got, want := res.Metrics.Get(metrics.BoundaryVertices), int64(n-q.PInternal); got != want {
		t.Errorf("%s: boundary_vertices counter = %d, report says %d", label, got, want)
	}
}

func TestPartitionerEquivalenceMatrix(t *testing.T) {
	kinds := partition.Kinds() // hash first: the baseline slot
	if kinds[0] != partition.KindHash {
		t.Fatal("Kinds() must lead with hash")
	}
	cells := []struct {
		name string
		mode Mode
		sync Sync
	}{
		{"bsp/none", BSP, SyncNone},
		{"async/none", Async, SyncNone},
		{"async/token-single", Async, TokenSingle},
		{"async/token-dual", Async, TokenDual},
		{"async/partition-lock", Async, PartitionLock},
		{"async/vertex-lock-giraph", Async, VertexLockGiraph},
	}
	for _, cell := range cells {
		cell := cell
		t.Run("sssp/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			want := algorithms.ShortestPaths(g, 0)
			base := []float64(nil)
			for _, kind := range kinds {
				label := "sssp/" + cell.name + "/" + kind
				dist, res, _, err := Run(g, algorithms.SSSP(0), equivPartConfig(cell.mode, cell.sync, kind))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				reconcileQuality(t, label, g, res)
				for v := range want {
					if dist[v] != want[v] {
						t.Fatalf("%s: dist[%d] = %v, want %v", label, v, dist[v], want[v])
					}
				}
				if base == nil {
					base = dist
					continue
				}
				for v := range base {
					if base[v] != dist[v] {
						t.Fatalf("%s: diverges from hash baseline at %d: %v vs %v",
							label, v, dist[v], base[v])
					}
				}
			}
		})
		t.Run("pagerank/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			const eps = 0.05
			aggregated := cell.mode == BSP
			var basePR []float64
			baseSteps := -1
			for _, kind := range kinds {
				label := "pagerank/" + cell.name + "/" + kind
				prog := algorithms.PageRank(eps)
				if aggregated {
					prog = algorithms.PageRankAggregated(eps)
				}
				pr, res, _, err := Run(g, prog, equivPartConfig(cell.mode, cell.sync, kind))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				reconcileQuality(t, label, g, res)
				if cell.mode == BSP {
					// Deterministic independent of placement: demand
					// bitwise equality with the hash baseline.
					if basePR == nil {
						basePR, baseSteps = pr, res.Supersteps
					} else {
						if res.Supersteps != baseSteps {
							t.Fatalf("%s: %d supersteps, hash baseline took %d",
								label, res.Supersteps, baseSteps)
						}
						for v := range basePR {
							if basePR[v] != pr[v] {
								t.Fatalf("%s: diverges from hash baseline at %d: %v vs %v",
									label, v, pr[v], basePR[v])
							}
						}
					}
				}
				// Every cell satisfies the residual bound on its own.
				maxIn := 0
				for v := 0; v < g.NumVertices(); v++ {
					if d := g.InDegree(graph.VertexID(v)); d > maxIn {
						maxIn = d
					}
				}
				bound := eps * float64(1+maxIn)
				if !aggregated {
					bound *= 4
				}
				if r := equivPagerankResidual(g, pr, !aggregated); r > bound {
					t.Errorf("%s: residual %v exceeds bound %v", label, r, bound)
				}
			}
		})
		t.Run("coloring/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(true)
			var baseColors []int32
			baseConverged := false
			for i, kind := range kinds {
				label := "coloring/" + cell.name + "/" + kind
				cfg := equivPartConfig(cell.mode, cell.sync, kind)
				if cell.mode == BSP {
					// BSP coloring oscillates (Figure 2); bound it and
					// compare the deterministic non-converged state.
					cfg.MaxSupersteps = 30
				}
				colors, res, _, err := Run(g, algorithms.Coloring(), cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				reconcileQuality(t, label, g, res)
				if cell.mode != BSP && !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				if res.Converged && cell.sync.Serializable() {
					if err := algorithms.ValidateColoring(g, colors); err != nil {
						t.Errorf("%s: %v", label, err)
					}
				}
				if cell.mode != BSP {
					continue
				}
				if i == 0 {
					baseColors, baseConverged = colors, res.Converged
					continue
				}
				if res.Converged != baseConverged {
					t.Fatalf("%s: convergence differs from hash baseline", label)
				}
				for v := range baseColors {
					if baseColors[v] != colors[v] {
						t.Fatalf("%s: diverges from hash baseline at %d: %d vs %d",
							label, v, colors[v], baseColors[v])
					}
				}
			}
		})
	}
}
