package engine

import (
	"testing"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/cluster"
	"serialgraph/internal/generate"
	"serialgraph/internal/history"
)

func TestBAPSSSPMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := algorithms.ShortestPaths(g, 0)
	for _, sync := range []Sync{SyncNone, PartitionLock} {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			dist, res, _, err := Run(g, algorithms.SSSP(0), Config{
				Workers: 4, Mode: BAP, Sync: sync, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not quiesce")
			}
			for v := range want {
				if dist[v] != want[v] {
					t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
				}
			}
		})
	}
}

func TestBAPColoringSerializable(t *testing.T) {
	g := undirected(testGraph(t))
	colors, res, _, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: BAP, Sync: PartitionLock, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestBAPHistoryClean(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 200, AvgDegree: 5, Exponent: 2.2, Seed: 67}))
	_, _, rec, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: BAP, Sync: PartitionLock, Seed: 2, TrackHistory: true,
		Latency: cluster.LatencyModel{Propagation: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no history")
	}
	if v := history.CheckAll(rec.Txns(), g); v != nil {
		t.Fatalf("violations under BAP partition locking: %v", v[:min(3, len(v))])
	}
}

func TestBAPWCC(t *testing.T) {
	g := undirected(testGraph(t))
	want := algorithms.Components(g)
	labels, res, _, err := Run(g, algorithms.WCC(), Config{
		Workers: 3, Mode: BAP, Sync: PartitionLock, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not quiesce")
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestBAPRejectsTokensAndCheckpoints(t *testing.T) {
	g := testGraph(t)
	for _, sync := range []Sync{TokenSingle, TokenDual} {
		if _, _, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 2, Mode: BAP, Sync: sync}); err == nil {
			t.Errorf("BAP accepted %v", sync)
		}
	}
	if _, _, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 2, Mode: BAP, CheckpointEvery: 1, CheckpointDir: t.TempDir(),
	}); err == nil {
		t.Error("BAP accepted checkpointing")
	}
}

func TestBAPFewerBarrierRoundsThanAsync(t *testing.T) {
	// BAP workers advance independently; Result.Supersteps reports the
	// maximum per-worker logical superstep count, typically close to the
	// barriered engine's count but with no rendezvous cost. Sanity-check
	// both converge and report plausible counts.
	g := generate.PowerLaw(generate.PowerLawConfig{N: 2000, AvgDegree: 6, Exponent: 2.1, Seed: 69})
	_, bap, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 4, Mode: BAP, Sync: PartitionLock, Seed: 1,
		Latency: cluster.LatencyModel{Propagation: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ap, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1,
		Latency: cluster.LatencyModel{Propagation: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bap.Converged || !ap.Converged {
		t.Fatal("a run did not converge")
	}
	if bap.Supersteps == 0 {
		t.Error("BAP reported zero supersteps")
	}
}
