package engine

// Confined-recovery chaos tests: a crash under Recovery: RecoverConfined
// must roll back only the crashed workers' partitions — healthy workers
// keep their in-memory state and replay their logged sends — and still
// produce exactly the full-rollback (and fault-free) answer. The watchdog
// tests stall a run by dropping a control message and assert the deadline
// turns the wedge into a recovery instead of a hang.

import (
	"os"
	"testing"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/checkpoint"
	"serialgraph/internal/fault"
	"serialgraph/internal/history"
	"serialgraph/internal/metrics"
)

// TestConfinedRecoverySSSP is the headline confined scenario: one of four
// workers crashes at superstep 3 with a checkpoint covering supersteps 0-1.
// Only the dead worker's partitions reload and replay supersteps 2-3; the
// accounting must show exactly that share of the recompute work.
func TestConfinedRecoverySSSP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 1, AtSuperstep: 3}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 2, CheckpointDir: t.TempDir(),
		Recovery: RecoverConfined,
		Fault:    inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if !inj.Exhausted() {
		t.Fatal("scheduled crash never fired (run too short?)")
	}
	if res.Rollbacks != 1 || res.ConfinedRecoveries != 1 {
		t.Errorf("Rollbacks = %d, ConfinedRecoveries = %d, want 1 and 1", res.Rollbacks, res.ConfinedRecoveries)
	}
	// Crash at superstep 3, checkpoint at 1: supersteps 2 and 3 replay, but
	// only on the dead worker's quarter of the partitions.
	if res.RecomputedSupersteps != 2 {
		t.Errorf("RecomputedSupersteps = %d, want 2", res.RecomputedSupersteps)
	}
	deadParts := res.Partitions / cfg.Workers
	if res.RecomputedPartitionSupersteps != 2*deadParts {
		t.Errorf("RecomputedPartitionSupersteps = %d, want %d", res.RecomputedPartitionSupersteps, 2*deadParts)
	}
	if got := res.Metrics.Get(metrics.PartitionsRestored); got != int64(deadParts) {
		t.Errorf("partitions_restored = %d, want %d (only the dead worker's)", got, deadParts)
	}
	if got := res.Metrics.Get(metrics.MessagesReplayed); got <= 0 {
		t.Errorf("messages_replayed = %d, want > 0 (healthy logs feed the replay)", got)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestConfinedMatchesFull runs the same crash plan under both recovery
// scopes: answers must be identical, and confined must recompute strictly
// fewer partition-supersteps than full.
func TestConfinedMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	run := func(mode RecoveryMode) ([]float64, Result) {
		cfg := Config{
			Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
			CheckpointEvery: 2, CheckpointDir: t.TempDir(),
			Recovery: mode,
			Fault:    fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 2, AtSuperstep: 3}}}),
		}
		dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("run did not converge")
		}
		return dist, res
	}
	full, resFull := run(RecoverFull)
	conf, resConf := run(RecoverConfined)
	if resConf.ConfinedRecoveries != 1 || resFull.ConfinedRecoveries != 0 {
		t.Errorf("ConfinedRecoveries: confined %d (want 1), full %d (want 0)",
			resConf.ConfinedRecoveries, resFull.ConfinedRecoveries)
	}
	if resConf.RecomputedPartitionSupersteps >= resFull.RecomputedPartitionSupersteps {
		t.Errorf("confined recomputed %d partition-supersteps, full %d; confined must be strictly fewer",
			resConf.RecomputedPartitionSupersteps, resFull.RecomputedPartitionSupersteps)
	}
	for v := range full {
		if full[v] != conf[v] {
			t.Fatalf("dist[%d]: full %v, confined %v", v, full[v], conf[v])
		}
	}
}

// TestConfinedNoCheckpointReplaysFromStart: with no checkpoint on disk a
// confined recovery still confines — the dead worker's partitions reset to
// their initial values and replay every superstep from 0, while healthy
// partitions never roll back.
func TestConfinedNoCheckpointReplaysFromStart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 0, AtSuperstep: 1}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		Recovery: RecoverConfined,
		Fault:    inj, // no CheckpointDir at all
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if res.ConfinedRecoveries != 1 {
		t.Errorf("ConfinedRecoveries = %d, want 1", res.ConfinedRecoveries)
	}
	// Failed at superstep 1, replayed from 0: supersteps 0 and 1, one
	// worker's partitions only.
	if res.RecomputedSupersteps != 2 {
		t.Errorf("RecomputedSupersteps = %d, want 2", res.RecomputedSupersteps)
	}
	if want := 2 * res.Partitions / cfg.Workers; res.RecomputedPartitionSupersteps != want {
		t.Errorf("RecomputedPartitionSupersteps = %d, want %d", res.RecomputedPartitionSupersteps, want)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestConfinedFallsBackOnMidSuperstepCrash: a worker killed mid-superstep
// (message-count trigger) leaked partial sends into healthy state before
// dying, so confinement is ineligible and the engine must fall back to a
// full rollback — and still be exact.
func TestConfinedFallsBackOnMidSuperstepCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 2, AfterMessages: 40}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 2, CheckpointDir: t.TempDir(),
		Recovery: RecoverConfined,
		Fault:    inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if !inj.Exhausted() {
		t.Skip("run finished under 40 data batches; crash never fired")
	}
	if res.ConfinedRecoveries != 0 {
		t.Errorf("ConfinedRecoveries = %d, want 0 (mid-superstep crash must fall back)", res.ConfinedRecoveries)
	}
	if res.Rollbacks < 1 {
		t.Fatalf("Rollbacks = %d, want >= 1", res.Rollbacks)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestConfinedSerializabilitySurvives: greedy coloring under Chandy–Misra
// locking with a confined recovery in the middle — the final coloring must
// be proper and the post-recovery history must still satisfy C1, C2, and
// 1SR, i.e. the rebuilt fork state of the recovering partitions composes
// with the healthy workers' live fork state.
func TestConfinedSerializabilitySurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := undirected(chaosGraph(t))

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 2, AtSuperstep: 1}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 9,
		CheckpointEvery: 1, CheckpointDir: t.TempDir(),
		Recovery:     RecoverConfined,
		TrackHistory: true,
		Fault:        inj,
	}
	colors, res, rec, err := Run(g, algorithms.Coloring(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if res.ConfinedRecoveries < 1 {
		t.Fatalf("ConfinedRecoveries = %d, want >= 1", res.ConfinedRecoveries)
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatalf("coloring invalid after confined recovery: %v", err)
	}
	if vs := history.CheckAll(rec.Txns(), g); len(vs) != 0 {
		t.Fatalf("%d serializability violations after confined recovery, first: %v", len(vs), vs[0])
	}
}

// TestConfinedPageRankBSP exercises confined recovery under BSP with
// Overwrite semantics: replayed remote sends re-deliver into healthy
// workers' stores as duplicates, which must be slot-idempotent.
func TestConfinedPageRankBSP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	const eps = 0.05
	base := Config{Workers: 4, Mode: BSP, Sync: SyncNone, Seed: 5, MaxSupersteps: 200}
	want, resBase, _, err := Run(g, algorithms.PageRank(eps), base)
	if err != nil {
		t.Fatal(err)
	}
	if !resBase.Converged {
		t.Fatal("baseline did not converge")
	}

	crashed := base
	crashed.CheckpointEvery = 2
	crashed.CheckpointDir = t.TempDir()
	crashed.Recovery = RecoverConfined
	crashed.Fault = fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 3, AtSuperstep: 3}}})
	got, res, _, err := Run(g, algorithms.PageRank(eps), crashed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if res.ConfinedRecoveries != 1 {
		t.Errorf("ConfinedRecoveries = %d, want 1", res.ConfinedRecoveries)
	}
	for v := range want {
		if d := got[v] - want[v]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("rank[%d] = %v, want %v (Δ %v)", v, got[v], want[v], d)
		}
	}
}

// TestWatchdogRecoversDroppedToken wedges a token-passing run by dropping
// one flush marker on the wire: without the watchdog the sender would wait
// forever for its ack. The watchdog must detect the stall within the
// deadline, kill the wedged worker, force the barrier, and recover to the
// exact answer.
func TestWatchdogRecoversDroppedToken(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{CtrlDrops: []fault.CtrlDrop{{AtSuperstep: 1, Count: 1}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: TokenSingle, Seed: 5,
		WatchdogTimeout: 2 * time.Second,
		Fault:           inj,
	}
	start := time.Now()
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("stalled run did not converge")
	}
	if st := inj.Stats(); st.CtrlDrops != 1 {
		t.Fatalf("CtrlDrops = %d, want 1 (the stall never happened)", st.CtrlDrops)
	}
	if res.WatchdogStalls < 1 {
		t.Errorf("WatchdogStalls = %d, want >= 1", res.WatchdogStalls)
	}
	if got := res.Metrics.Get(metrics.WatchdogStalls); got != int64(res.WatchdogStalls) {
		t.Errorf("watchdog_stalls counter = %d, Result says %d", got, res.WatchdogStalls)
	}
	if res.Rollbacks < 1 {
		t.Errorf("Rollbacks = %d, want >= 1 (the stall escalates to recovery)", res.Rollbacks)
	}
	// Generous bound: one stall costs one deadline; anything near a minute
	// means the run hung and something else timed it out.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("run took %v; the watchdog did not bound the stall", elapsed)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestWatchdogCleanRunUnaffected: a fault-free run under a watchdog must
// never fire it — and must still be exact.
func TestWatchdogCleanRunUnaffected(t *testing.T) {
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)
	cfg := Config{
		Workers: 4, Mode: Async, Sync: TokenSingle, Seed: 5,
		WatchdogTimeout: 30 * time.Second,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if res.WatchdogStalls != 0 || res.Rollbacks != 0 {
		t.Errorf("WatchdogStalls = %d, Rollbacks = %d on a clean run", res.WatchdogStalls, res.Rollbacks)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestTornCheckpointFallsBack simulates a worker crashing in the middle of
// a checkpoint write with a non-atomic writer: a torn newest generation
// sits on disk when the rollback runs. (Save itself is atomic — this
// plants the torn file directly — so the test pins the *reader's* fallback
// chain.) Recovery must skip the corrupt generation, restore the older
// intact one, and count the skip.
func TestTornCheckpointFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	dir := t.TempDir()
	// A torn generation newer than the intact one the run will write at
	// superstep 1, but older than the crash at superstep 3 — the residue
	// of a previous process that died mid-checkpoint in the same
	// directory. Recovery must restore from this run's own superstep-1
	// generation: files beyond the run's newest checkpoint are foreign
	// and are not even read (LoadChainMax), let alone restored.
	if err := os.WriteFile(checkpoint.Path(dir, 2), []byte("SGC1 torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 1, AtSuperstep: 3}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 2, CheckpointDir: dir,
		Fault: inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if res.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", res.Rollbacks)
	}
	if got := res.Metrics.Get(metrics.CheckpointGensSkipped); got != 0 {
		t.Errorf("checkpoint_gens_skipped = %d, want 0 (the torn file is foreign — ignored, not read and skipped)", got)
	}
	// The torn generation claimed superstep 2; restoring the run's own
	// superstep-1 generation recomputes supersteps 2 and 3.
	if res.RecomputedSupersteps != 2 {
		t.Errorf("RecomputedSupersteps = %d, want 2 (restored from this run's intact generation)", res.RecomputedSupersteps)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestConfinedRepeatedCrashes: two separate crashes, each confined, one
// run, exact answer.
func TestConfinedRepeatedCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{
		{Worker: 1, AtSuperstep: 1},
		{Worker: 3, AtSuperstep: 3},
	}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 1, CheckpointDir: t.TempDir(),
		Recovery: RecoverConfined,
		Fault:    inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if !inj.Exhausted() {
		t.Skip("run converged before both crashes fired")
	}
	if res.Rollbacks != 2 || res.ConfinedRecoveries != 2 {
		t.Errorf("Rollbacks = %d, ConfinedRecoveries = %d, want 2 and 2", res.Rollbacks, res.ConfinedRecoveries)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}
