package engine

// Tests pinning the visibility semantics of thread-local message staging
// (worker.go): under BSP every local message is staged and becomes visible
// only in the next superstep; under Async a cross-partition same-worker
// message is folded into the store at the sending partition's boundary, so
// a partition executed later in the same pass still reads it in the same
// superstep (the AP model's eager local visibility).

import (
	"testing"

	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// stagingProg sends one message 0->1 in superstep 0 and records in vertex
// 1's value the superstep at which the message arrived.
func stagingProg() model.Program[int, int] {
	return model.Program[int, int]{
		Semantics: model.Queue,
		Init:      func(graph.VertexID, *graph.Graph) int { return -1 },
		Compute: func(ctx model.Context[int, int], msgs []int) {
			if ctx.ID() == 0 {
				if ctx.Superstep() == 0 {
					ctx.Send(1, 7)
				}
			} else if len(msgs) > 0 && ctx.Value() == -1 {
				ctx.SetValue(ctx.Superstep())
			}
			ctx.VoteToHalt()
		},
		MsgBytes: 8,
	}
}

// stagingConfig places vertex 0 in partition 0 and vertex 1 in partition 1,
// both on one single-threaded worker, so partition 1 always executes after
// partition 0 within a pass and the 0->1 message crosses a partition
// boundary without crossing the (simulated) network.
func stagingConfig(mode Mode) Config {
	return Config{
		Workers: 1, PartitionsPerWorker: 2, ThreadsPerWorker: 1,
		Mode: mode,
		Partitioner: func(g *graph.Graph, p, w int) *partition.Map {
			return partition.NewExplicit(g, []partition.ID{0, 1}, []int32{0, 0}, w)
		},
	}
}

func runStaging(t *testing.T, mode Mode) ([]int, Result) {
	t.Helper()
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	vals, res, _, err := Run(b.Build(), stagingProg(), stagingConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d supersteps", res.Supersteps)
	}
	return vals, res
}

func TestAsyncLocalMessageVisibleSameSuperstep(t *testing.T) {
	vals, res := runStaging(t, Async)
	if vals[1] != 0 {
		t.Errorf("async: message staged by partition 0 arrived in superstep %d, want 0 (same pass)", vals[1])
	}
	if got := res.Metrics.Get(metrics.LocalMessages); got != 1 {
		t.Errorf("local_messages = %d, want exactly 1", got)
	}
	if got := res.Metrics.Get(metrics.RemoteEntries); got != 0 {
		t.Errorf("remote_entries = %d, want 0 (single worker)", got)
	}
}

func TestBSPLocalMessageDeferredToNextSuperstep(t *testing.T) {
	vals, res := runStaging(t, BSP)
	if vals[1] != 1 {
		t.Errorf("BSP: message arrived in superstep %d, want 1 (next superstep)", vals[1])
	}
	if got := res.Metrics.Get(metrics.LocalMessages); got != 1 {
		t.Errorf("local_messages = %d, want exactly 1", got)
	}
}

// TestAsyncSamePartitionEagerVisibility pins the eager path: with both
// vertices in ONE partition and vertex 0 executing first, the Async store
// write skips staging entirely and vertex 1 reads the message mid-pass.
func TestAsyncSamePartitionEagerVisibility(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	vals, res, _, err := Run(b.Build(), stagingProg(), Config{
		Workers: 1, PartitionsPerWorker: 1, ThreadsPerWorker: 1, Mode: Async,
		Partitioner: func(g *graph.Graph, p, w int) *partition.Map {
			return partition.NewExplicit(g, []partition.ID{0, 0}, []int32{0}, w)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if vals[1] != 0 {
		t.Errorf("async same-partition: message arrived in superstep %d, want 0", vals[1])
	}
}

// TestStagedFoldTimingSampled pins the sampled staged-fold timing path:
// a single-threaded worker folds 8 partitions × 16 supersteps = 128 staged
// batches, so the 1-in-64 sampler fires exactly twice. The message counts
// must stay exact (sampling covers only the clock, never the fold), and
// the sampled durations must surface — scaled — in PhaseLocalDelivery,
// which async-none runs previously lost entirely when their staged folds
// were never timed.
func TestStagedFoldTimingSampled(t *testing.T) {
	const n, rounds = 128, 16
	b := graph.NewBuilder(n)
	edges := 0
	for u := 0; u < n; u++ {
		for _, d := range []int{1, 5, 9, 17} {
			b.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%n))
			edges++
		}
	}
	g := b.Build()
	prog := model.Program[int, int]{
		Semantics: model.Queue,
		Compute: func(ctx model.Context[int, int], msgs []int) {
			if ctx.Superstep() < rounds {
				ctx.SendToAllOut(1)
			}
			ctx.VoteToHalt()
		},
		MsgBytes: 8,
	}
	_, res, _, err := Run(g, prog, Config{
		Workers: 1, PartitionsPerWorker: 8, ThreadsPerWorker: 1,
		Mode: BSP, Sync: SyncNone, Seed: 3, MaxSupersteps: rounds + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if got, want := m.Get(metrics.LocalMessages), int64(edges*rounds); got != want {
		t.Errorf("local_messages = %d, want %d (exact despite timing sampling)", got, want)
	}
	if got := m.Get(metrics.RemoteEntries); got != 0 {
		t.Errorf("remote_entries = %d, want 0 (single worker)", got)
	}
	if m.PhaseNs[metrics.PhaseLocalDelivery] <= 0 {
		t.Errorf("PhaseLocalDelivery = %d ns, want > 0 (staged folds must be sampled)", m.PhaseNs[metrics.PhaseLocalDelivery])
	}
}

// TestStagedCountsExact runs a multi-worker broadcast where every message
// count is computable in closed form, and checks the staged paths did not
// lose or double-count anything: each of the n vertices broadcasts along
// its out-edges once in superstep 0, so local + remote must equal the
// total edge count exactly.
func TestStagedCountsExact(t *testing.T) {
	const n = 64
	b := graph.NewBuilder(n)
	edges := 0
	for u := 0; u < n; u++ {
		for _, d := range []int{1, 3, 7} {
			b.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%n))
			edges++
		}
	}
	g := b.Build()
	prog := model.Program[int, int]{
		Semantics: model.Queue,
		Compute: func(ctx model.Context[int, int], msgs []int) {
			if ctx.Superstep() == 0 {
				ctx.SendToAllOut(1)
			}
			ctx.VoteToHalt()
		},
		MsgBytes: 8,
	}
	for _, mode := range []Mode{BSP, Async} {
		_, res, _, err := Run(g, prog, Config{Workers: 4, ThreadsPerWorker: 2, Mode: mode, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		local := m.Get(metrics.LocalMessages)
		remote := m.Get(metrics.RemoteEntries)
		if local+remote != int64(edges) {
			t.Errorf("%v: local %d + remote %d = %d, want %d edges", mode, local, remote, local+remote, edges)
		}
		if remote != m.Get(metrics.RemoteEntriesFlushed) {
			t.Errorf("%v: flushed %d != buffered %d", mode, m.Get(metrics.RemoteEntriesFlushed), remote)
		}
		if remote != m.Get(metrics.RemoteEntriesDelivered) {
			t.Errorf("%v: delivered %d != buffered %d", mode, m.Get(metrics.RemoteEntriesDelivered), remote)
		}
	}
}
