package engine

import (
	"testing"
	"time"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
)

func TestSenderCombineReducesDataTraffic(t *testing.T) {
	// SSSP uses min-combining; sender-side combining folds messages to the
	// same hub into one entry per batch, cutting data bytes without
	// changing the answer.
	g := generate.PowerLaw(generate.PowerLawConfig{N: 2000, AvgDegree: 10, Exponent: 2.0, Seed: 51})
	want := algorithms.ShortestPaths(g, 0)

	run := func(disable bool) ([]float64, Result) {
		dist, res, _, err := Run(g, algorithms.SSSP(0), Config{
			Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 2,
			DisableSenderCombine: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dist, res
	}
	distOn, on := run(false)
	distOff, off := run(true)
	for v := range want {
		if distOn[v] != want[v] || distOff[v] != want[v] {
			t.Fatalf("dist[%d] wrong: combined=%v plain=%v want %v", v, distOn[v], distOff[v], want[v])
		}
	}
	if on.Net.DataBytes >= off.Net.DataBytes {
		t.Errorf("sender combining did not reduce data bytes: %d vs %d",
			on.Net.DataBytes, off.Net.DataBytes)
	}
}

func TestSenderCombineNotAppliedToOverwrite(t *testing.T) {
	// Overwrite semantics must keep per-source slots; combining would
	// corrupt them. Coloring (Overwrite) must behave identically with the
	// flag in either position.
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 5, Exponent: 2.2, Seed: 53}))
	for _, disable := range []bool{false, true} {
		colors, res, _, err := Run(g, algorithms.Coloring(), Config{
			Workers: 3, Mode: Async, Sync: PartitionLock, Seed: 1,
			DisableSenderCombine: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		if err := algorithms.ValidateColoring(g, colors); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHaltedPartitionSkipReducesForks(t *testing.T) {
	// With the §5.4 skip optimization, halted partitions stop acquiring
	// forks; disabling it forces every partition through Chandy–Misra
	// every superstep, inflating fork traffic for multi-superstep runs.
	g := generate.PowerLaw(generate.PowerLawConfig{N: 1500, AvgDegree: 6, Exponent: 2.1, Seed: 57})
	run := func(disable bool) Result {
		_, res, _, err := Run(g, algorithms.SSSP(0), Config{
			Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 3,
			DisableHaltedPartitionSkip: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		return res
	}
	withSkip := run(false)
	noSkip := run(true)
	if withSkip.ForkSends >= noSkip.ForkSends {
		t.Errorf("skip optimization did not reduce forks: %d vs %d",
			withSkip.ForkSends, noSkip.ForkSends)
	}
}

func TestDetailedStats(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 500, AvgDegree: 5, Exponent: 2.2, Seed: 59})
	_, res, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 3, Mode: Async, Sync: PartitionLock, Seed: 1, DetailedStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SuperstepStats) != res.Supersteps {
		t.Fatalf("got %d superstep stats for %d supersteps", len(res.SuperstepStats), res.Supersteps)
	}
	var execs int64
	var dur time.Duration
	for _, s := range res.SuperstepStats {
		execs += s.Executions
		dur += s.Duration
	}
	if execs != res.Executions {
		t.Errorf("per-superstep executions sum %d != total %d", execs, res.Executions)
	}
	if dur > res.ComputeTime+time.Second || dur <= 0 {
		t.Errorf("per-superstep durations sum %v vs compute time %v", dur, res.ComputeTime)
	}
	// SSSP wavefront: the first superstep executes all vertices, later
	// ones fewer.
	if res.SuperstepStats[0].Executions < int64(g.NumVertices()) {
		t.Errorf("superstep 0 executed %d of %d vertices", res.SuperstepStats[0].Executions, g.NumVertices())
	}
	// Stats off by default.
	_, res2, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 2, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if res2.SuperstepStats != nil {
		t.Error("SuperstepStats recorded without DetailedStats")
	}
}

func TestTokenSingleOnlyHolderRunsBoundary(t *testing.T) {
	// Single-layer token passing: in superstep s only worker s%W executes
	// m-boundary vertices. Verify through the per-superstep execution
	// pattern on a graph where every vertex is m-boundary (a complete
	// bipartite-ish structure across workers).
	g := undirected(generate.Complete(40))
	_, res, rec, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: Async, Sync: TokenSingle, Seed: 1,
		TrackHistory: true, DetailedStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// On K40 every vertex is m-boundary, so per-superstep executions are
	// capped by the holder's vertex count (~10 per worker) plus wake-ups.
	for i, s := range res.SuperstepStats {
		if s.Executions > 45 {
			t.Errorf("superstep %d executed %d vertices; token should gate to one worker", i, s.Executions)
		}
	}
	if rec.Len() == 0 {
		t.Error("no history")
	}
}

func TestPageRankAggregatedMasterHalt(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 800, AvgDegree: 6, Exponent: 2.2, Seed: 61})
	pr, res, _, err := Run(g, algorithms.PageRankAggregated(0.5), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("master never halted (%d supersteps)", res.Supersteps)
	}
	// No vertex ever votes to halt, so without MasterHalt this would hit
	// MaxSupersteps; converging proves the master-compute path works.
	if r := algorithms.PageRankResidual(g, pr); r > 1.0 {
		t.Errorf("residual %.3f too large for tol 0.5", r)
	}
	// Tighter tolerance takes more supersteps.
	_, res2, _, err := Run(g, algorithms.PageRankAggregated(0.01), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Supersteps <= res.Supersteps {
		t.Errorf("tol 0.01 took %d supersteps, tol 0.5 took %d", res2.Supersteps, res.Supersteps)
	}
}

func TestPageRankAggregatedBSPMatchesReference(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 5, Exponent: 2.2, Seed: 63})
	pr, res, _, err := Run(g, algorithms.PageRankAggregated(1e-6), Config{
		Workers: 3, Mode: BSP, Seed: 2, MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := algorithms.PageRankReference(g, 200)
	for v := range want {
		if diff := pr[v] - want[v]; diff > 0.01 || diff < -0.01 {
			t.Fatalf("pr[%d] = %.4f, want %.4f", v, pr[v], want[v])
		}
	}
}

func historyCheck(rec *history.Recorder, g *graph.Graph) string {
	if rec == nil || rec.Len() == 0 {
		return "no history recorded"
	}
	if v := history.CheckAll(rec.Txns(), g); v != nil {
		return v[0].String()
	}
	return ""
}

func TestVertexLockGiraphSerializable(t *testing.T) {
	// The Giraph-async + vertex-locking combination the paper excludes for
	// performance must still be CORRECT: proper coloring and clean
	// history.
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 300, AvgDegree: 5, Exponent: 2.2, Seed: 77}))
	colors, res, rec, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: Async, Sync: VertexLockGiraph, Seed: 3, TrackHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	if v := historyCheck(rec, g); v != "" {
		t.Fatal(v)
	}
	if res.ForkSends == 0 {
		t.Error("no fork traffic under vertex locking")
	}
}

func TestVertexLockGiraphSlowerThanPartitionLock(t *testing.T) {
	// The exclusion claim of §7: vertex-granularity forks on the
	// partition-aware engine generate far more synchronization traffic
	// than partition-granularity forks.
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 1000, AvgDegree: 8, Exponent: 2.1, Seed: 79}))
	_, vres, _, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: Async, Sync: VertexLockGiraph, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, pres, _, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vres.ForkSends <= pres.ForkSends {
		t.Errorf("vertex forks %d <= partition forks %d", vres.ForkSends, pres.ForkSends)
	}
}

func TestIsingGibbsOrdersAtLowTemperature(t *testing.T) {
	// On a 2D grid, Gibbs sampling at high beta (low temperature) orders
	// the spins; at very low beta they stay random. The magnetization gap
	// is the statistical-correctness smoke test.
	// Global magnetization stays low at finite sweep counts because
	// opposing domains coarsen slowly; the fraction of aligned neighbor
	// pairs is the robust local order parameter.
	g := generate.Grid(30, 30)
	run := func(beta float64) float64 {
		vals, res, _, err := Run(g, algorithms.IsingGibbs(beta, 30, 7), Config{
			Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("sampler did not finish its sweeps")
		}
		return algorithms.AlignedFraction(g, vals)
	}
	hot := run(0.05)
	cold := run(1.5)
	if cold < 0.8 {
		t.Errorf("cold aligned fraction %.3f, want ordered (> 0.8)", cold)
	}
	if hot > 0.65 {
		t.Errorf("hot aligned fraction %.3f, want disordered (< 0.65)", hot)
	}
	if cold <= hot {
		t.Errorf("no ordering transition: cold %.3f <= hot %.3f", cold, hot)
	}
}

func TestIsingGibbsHistoryClean(t *testing.T) {
	g := generate.Grid(12, 12)
	_, _, rec, err := Run(g, algorithms.IsingGibbs(1.0, 10, 3), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 2, TrackHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := historyCheck(rec, g); v != "" {
		t.Fatal(v)
	}
}

func TestIsingGibbsDeterministicUnderBSP(t *testing.T) {
	g := generate.Grid(10, 10)
	run := func() []algorithms.GibbsValue {
		vals, _, _, err := Run(g, algorithms.IsingGibbs(0.8, 15, 9), Config{
			Workers: 3, Mode: BSP, Seed: 4, MaxSupersteps: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BSP Gibbs not deterministic at vertex %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestIsingGibbsUnderTokenPassing(t *testing.T) {
	// Sweep progress lives in the vertex value, so the sampler completes
	// its sweeps even when token passing prevents vertices from executing
	// every superstep (§6.5).
	g := generate.Grid(8, 8)
	vals, res, _, err := Run(g, algorithms.IsingGibbs(1.0, 5, 11), Config{
		Workers: 4, Mode: Async, Sync: TokenDual, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, v := range vals {
		if v.Sweep != 5 {
			t.Fatalf("vertex %d completed %d sweeps, want 5", i, v.Sweep)
		}
		if v.Spin != 1 && v.Spin != -1 {
			t.Fatalf("vertex %d has invalid spin %d", i, v.Spin)
		}
	}
}
