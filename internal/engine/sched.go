package engine

// sched.go is the overlap-aware partition scheduler (Config.Scheduler ==
// SchedOverlap; DESIGN.md §14). Three mechanisms, all within one worker's
// superstep:
//
//  1. Fork prefetch. Under PartitionLock, boundary partitions' fork
//     acquisitions are issued asynchronously (chandy.RequestForks) up to a
//     bounded window ahead of execution, so fork-grant latency runs
//     concurrently with compute instead of blocking a thread. Granted
//     partitions are collected and executed with priority: a granted
//     philosopher is eating and excludes its neighbors until released, so
//     sitting on a grant delays other workers.
//  2. Internal-compute overlap. P-internal partitions (no forks to
//     acquire) fill the windows while prefetches are in flight — the
//     OverlapComputeNs counter measures exactly that time.
//  3. Work stealing. Internal partitions are dealt round-robin into
//     per-thread deques (LIFO pop for locality, steal-half FIFO from the
//     largest victim), so a skewed partition no longer stretches the
//     barrier while sibling threads idle.
//
// Correctness is inherited, not re-argued: partitions still execute via the
// same runPartition / executeVertices paths, fork exclusion and the
// flush-before-handoff C1 ordering are untouched (flushStaged still runs
// before Release), and the only thing that moves is the order in which one
// worker's own partitions run — an order the engine never promised.
//
// Liveness: every issued RequestForks is claimed by exactly one thread
// (grants funnel through one channel; idle threads poll it with a short
// timeout instead of blocking on a specific philosopher, so a grant is
// always consumed promptly and released — the condition Chandy–Misra's
// starvation-freedom argument needs). An Abort closes the pending ready
// channels, Collect returns false, and the drain completes without running
// the aborted partitions.

import (
	"sort"
	"sync"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/metrics"
	"serialgraph/internal/partition"
)

// overlapPollInterval bounds how long an idle thread waits on the grant
// channel before re-checking the drain condition. It only matters in the
// rare race where two threads wait on one outstanding grant; 20µs is far
// below any superstep's wall time.
const overlapPollInterval = 20 * time.Microsecond

// prefReq is one issued fork prefetch: the partition and its grant channel.
type prefReq struct {
	p  partition.ID
	ch <-chan struct{}
}

// overlapSched coordinates one worker's threads for one superstep.
type overlapSched[V, M any] struct {
	w      *worker[V, M]
	window int

	// granted receives the index of each issued request once its forks are
	// in hand (a tiny forwarder goroutine per request). Buffered to the
	// boundary count so forwarders never block.
	granted chan int

	mu       sync.Mutex
	boundary []partition.ID   // boundary partitions not yet requested
	nextB    int              // next boundary index to consider
	reqs     []prefReq        // issued requests, claimed exactly once each
	claimed  int              // grants taken off the channel so far
	deques   [][]partition.ID // per-thread internal-partition deques
}

// computeOverlap runs one superstep's partition executions under the
// overlap scheduler, replacing computeStatic.
func (w *worker[V, M]) computeOverlap(s int) {
	threads := w.r.cfg.ThreadsPerWorker
	var boundary, internal []partition.ID
	if w.r.cfg.Sync == PartitionLock {
		boundary, internal = w.boundaryParts, w.internalParts
	} else {
		// No partition-level forks to prefetch (tokens filter inside the
		// execution pass; VertexLockGiraph locks per vertex): every
		// partition goes through the work-stealing deques.
		internal = w.parts
	}
	sc := &overlapSched[V, M]{
		w: w, boundary: boundary,
		granted: make(chan int, len(boundary)),
		deques:  make([][]partition.ID, threads),
	}
	// Window: enough outstanding requests to keep every thread fed and the
	// grant pipeline full, small enough that granted-but-unexecuted
	// partitions do not starve their neighbors on other workers.
	sc.window = 2 * threads
	if sc.window < 2 {
		sc.window = 2
	}
	for i, p := range internal {
		tid := i % threads
		sc.deques[tid] = append(sc.deques[tid], p)
	}
	sc.mu.Lock()
	sc.topUpLocked()
	sc.mu.Unlock()

	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		th := w.threads[t]
		th.superstep = s
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			sc.run(w.threads[tid], tid)
			w.threads[tid].fold()
		}(t)
	}
	wg.Wait()
}

// run is one thread's scheduling loop: granted prefetches first, then own
// deque, then stealing, then waiting for outstanding grants.
func (sc *overlapSched[V, M]) run(t *thread[V, M], tid int) {
	for {
		if req, ok := sc.tryClaim(); ok {
			sc.topUp()
			t.runPrefetched(req)
			continue
		}
		if p, ok := sc.pop(tid); ok {
			sc.runInternal(t, p)
			continue
		}
		if p, ok := sc.steal(tid); ok {
			sc.runInternal(t, p)
			continue
		}
		req, state := sc.waitClaim()
		switch state {
		case claimDrained:
			return
		case claimGot:
			sc.topUp()
			t.runPrefetched(req)
		}
		// claimRetry: a grant may have gone to another thread, or internal
		// work may have appeared reachable again — re-run the priority loop.
	}
}

// runInternal executes a deque partition through the normal runPartition
// path (so the halted-skip check, the fast-path Acquire for forkless
// philosophers, and every counter behave exactly as under SchedStatic),
// timing it into OverlapComputeNs while fork prefetches are outstanding.
func (sc *overlapSched[V, M]) runInternal(t *thread[V, M], p partition.ID) {
	sc.mu.Lock()
	outstanding := len(sc.reqs) > sc.claimed
	sc.mu.Unlock()
	if !outstanding {
		t.runPartition(p)
		return
	}
	t0 := time.Now()
	t.runPartition(p)
	sc.w.r.reg.Add(metrics.OverlapComputeNs, int64(time.Since(t0)))
}

// runPrefetched executes a boundary partition whose forks were prefetched:
// Collect (immediate — the grant channel already closed), execute, fold
// staged messages, and only then release the forks, preserving the
// flush-before-handoff C1 ordering exactly as runPartition does.
func (t *thread[V, M]) runPrefetched(req prefReq) {
	w := t.w
	t.curPart = req.p
	w.r.noteUnitStart()
	defer w.r.noteUnitEnd()
	if !w.mgr.Collect(chandy.PhilID(req.p), req.ch) {
		return // watchdog abort: the run is headed into recovery
	}
	t.executeVertices(w.r.pm.Vertices(req.p), nil)
	t.flushStaged() // before Release: neighbors must read fresh replicas
	w.mgr.Release(chandy.PhilID(req.p))
}

// topUpLocked issues fork prefetches until the outstanding window is full
// or the boundary list is exhausted, applying the same halted-partition
// skip as the static path. Requires sc.mu.
func (sc *overlapSched[V, M]) topUpLocked() {
	w := sc.w
	for len(sc.reqs)-sc.claimed < sc.window && sc.nextB < len(sc.boundary) {
		p := sc.boundary[sc.nextB]
		sc.nextB++
		if !w.r.cfg.DisableHaltedPartitionSkip && !w.partActive(p) {
			continue // skip optimization (§5.4): nothing to run, no forks
		}
		ch := w.mgr.RequestForks(chandy.PhilID(p))
		if ch == nil {
			// Aborted: nothing further will be granted. Stop issuing; the
			// already-issued requests drain via their closed channels.
			sc.nextB = len(sc.boundary)
			return
		}
		w.r.reg.Add(metrics.ForksPrefetched, 1)
		idx := len(sc.reqs)
		sc.reqs = append(sc.reqs, prefReq{p: p, ch: ch})
		go func() { <-ch; sc.granted <- idx }()
	}
}

func (sc *overlapSched[V, M]) topUp() {
	sc.mu.Lock()
	sc.topUpLocked()
	sc.mu.Unlock()
}

// tryClaim takes an already-delivered grant, if any, without blocking.
func (sc *overlapSched[V, M]) tryClaim() (prefReq, bool) {
	select {
	case idx := <-sc.granted:
		sc.mu.Lock()
		sc.claimed++
		req := sc.reqs[idx]
		sc.mu.Unlock()
		return req, true
	default:
		return prefReq{}, false
	}
}

type claimState uint8

const (
	claimGot claimState = iota
	claimRetry
	claimDrained
)

// waitClaim blocks for the next grant when requests are still outstanding.
// It returns claimDrained once every boundary partition has been requested
// and every grant claimed — the thread's exit condition — and claimRetry
// after a short poll interval so the caller re-checks the deques (and so a
// thread racing another for the final grant cannot block forever).
func (sc *overlapSched[V, M]) waitClaim() (prefReq, claimState) {
	sc.mu.Lock()
	drained := sc.claimed == len(sc.reqs) && sc.nextB >= len(sc.boundary)
	sc.mu.Unlock()
	if drained {
		return prefReq{}, claimDrained
	}
	select {
	case idx := <-sc.granted:
		sc.mu.Lock()
		sc.claimed++
		req := sc.reqs[idx]
		sc.mu.Unlock()
		return req, claimGot
	case <-time.After(overlapPollInterval):
		return prefReq{}, claimRetry
	}
}

// pop takes the thread's own most recently assigned partition (LIFO).
func (sc *overlapSched[V, M]) pop(tid int) (partition.ID, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	d := sc.deques[tid]
	if len(d) == 0 {
		return 0, false
	}
	p := d[len(d)-1]
	sc.deques[tid] = d[:len(d)-1]
	return p, true
}

// steal moves half of the largest victim deque (oldest entries first —
// FIFO from the head, the classic work-stealing discipline) into the
// thief's deque and returns the first stolen partition. One steal event is
// counted per successful call regardless of how many partitions moved.
func (sc *overlapSched[V, M]) steal(tid int) (partition.ID, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	victim, best := -1, 0
	for i, d := range sc.deques {
		if i != tid && len(d) > best {
			victim, best = i, len(d)
		}
	}
	if victim < 0 {
		return 0, false
	}
	v := sc.deques[victim]
	n := (len(v) + 1) / 2
	moved := v[:n]
	sc.deques[victim] = v[n:]
	sc.deques[tid] = append(sc.deques[tid], moved[1:]...)
	sc.w.r.reg.Add(metrics.Steals, 1)
	return moved[0], true
}

// orderBoundaryByColor reorders boundaryParts so that conflicting
// partitions land in different prefetch generations: greedy-color the
// global partition conflict graph, then stable-sort the boundary list by
// color class. A prefetch window then holds mutually non-adjacent
// philosophers, so the simultaneous hunger the window creates never forms
// fork-precedence chains — each grant costs one handoff instead of
// serializing along the conflict graph. (Chandy–Misra makes a hungry
// philosopher holding clean forks block its neighbors until it eats;
// issuing requests in raw partition order puts conflict-adjacent
// partitions in the same window and turns that blocking into
// O(parts)-deep chains.) The coloring is over the GLOBAL graph in global
// ID order: partNeighbors is the same on every worker, so every worker
// derives the same color classes, and the simultaneously-open windows
// across workers stay mostly non-adjacent too — which matters because
// placement often scatters a partition's conflict neighbors onto other
// workers, where a local-only ordering would see nothing to separate.
func (w *worker[V, M]) orderBoundaryByColor(partNeighbors [][]partition.ID) {
	color := make([]int8, len(partNeighbors))
	for i := range color {
		color[i] = -1
	}
	for p := range partNeighbors {
		var used uint64 // colors taken by already-colored neighbors
		for _, q := range partNeighbors[p] {
			if c := color[q]; c >= 0 && c < 64 {
				used |= 1 << c
			}
		}
		c := int8(0)
		for used&(1<<c) != 0 && c < 63 {
			c++
		}
		color[p] = c
	}
	sort.SliceStable(w.boundaryParts, func(i, j int) bool {
		return color[w.boundaryParts[i]] < color[w.boundaryParts[j]]
	})
}

// partActive reports whether any vertex of partition p is active (not
// halted, or holding unread messages) — the worker-level form of
// thread.anyActive, used by the prefetch path's skip check.
func (w *worker[V, M]) partActive(p partition.ID) bool {
	st := w.readStore()
	for _, v := range w.r.pm.Vertices(p) {
		if !w.r.halted[v] || st.HasNew(v) {
			return true
		}
	}
	return false
}
