package engine

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
)

func TestWeightedSSSP(t *testing.T) {
	// 0 -> 1 (w 1), 1 -> 2 (w 1), 0 -> 2 (w 5): shortest to 2 is 2 hops.
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(0, 2, 5)
	g := b.Build()
	for _, sync := range []Sync{SyncNone, PartitionLock} {
		dist, res, _, err := Run(g, algorithms.SSSP(0), Config{
			Workers: 2, Mode: Async, Sync: sync,
		})
		if err != nil || !res.Converged {
			t.Fatalf("%v: err=%v converged=%v", sync, err, res.Converged)
		}
		want := []float64{0, 1, 2}
		for v := range want {
			if dist[v] != want[v] {
				t.Errorf("%v: dist[%d] = %v, want %v", sync, v, dist[v], want[v])
			}
		}
	}
}

func TestSSSPUnreachableStaysInfinite(t *testing.T) {
	// Two disjoint chains; source in the first.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	dist, res, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 2, Mode: Async, Sync: PartitionLock})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	for v := 3; v <= 5; v++ {
		if dist[v] != algorithms.Infinity {
			t.Errorf("dist[%d] = %v, want +Inf", v, dist[v])
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	for _, sync := range allSyncs {
		dist, res, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 1, Mode: Async, Sync: sync})
		if err != nil {
			t.Fatalf("%v: %v", sync, err)
		}
		if !res.Converged || dist[0] != 0 {
			t.Errorf("%v: converged=%v dist=%v", sync, res.Converged, dist)
		}
	}
}

func TestMoreWorkersThanVertices(t *testing.T) {
	g := generate.Ring(3)
	dist, res, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 8, Mode: Async, Sync: PartitionLock, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	want := []float64{0, 1, 2}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestTinyBufferCapStillCorrect(t *testing.T) {
	// BufferCap 1 forces a network send per remote message; correctness
	// must not depend on batching.
	g := generate.PowerLaw(generate.PowerLawConfig{N: 300, AvgDegree: 5, Exponent: 2.2, Seed: 91})
	want := algorithms.ShortestPaths(g, 0)
	dist, res, _, err := Run(g, algorithms.SSSP(0), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, BufferCap: 1, Seed: 2,
	})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestOneThreadPerWorker(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 300, AvgDegree: 5, Exponent: 2.2, Seed: 93}))
	colors, res, _, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, ThreadsPerWorker: 1, Mode: Async, Sync: PartitionLock, Seed: 1,
	})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	// A program that never halts must stop at MaxSupersteps with
	// Converged=false.
	g := generate.Ring(8)
	prog := algorithms.PageRankAggregated(-1) // negative tol: never halts
	_, res, _, err := Run(g, prog, Config{Workers: 2, Mode: Async, MaxSupersteps: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Supersteps != 7 {
		t.Errorf("converged=%v supersteps=%d, want false/7", res.Converged, res.Supersteps)
	}
}
