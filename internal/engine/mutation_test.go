package engine

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
)

// mutationProbe adds edge 0->3 and removes edge 0->1 in superstep 0, then
// floods a token from vertex 0 in superstep 1 so the final values reveal
// the live topology.
func mutationProbe() model.Program[int32, int32] {
	return model.Program[int32, int32]{
		Name:      "mutation-probe",
		Semantics: model.Queue,
		MsgBytes:  4,
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			switch ctx.Superstep() {
			case 0:
				if ctx.ID() == 0 {
					ctx.AddEdgeRequest(0, 3, 1)
					ctx.RemoveEdgeRequest(0, 1)
				}
			case 1:
				if ctx.ID() == 0 {
					ctx.SetValue(1)
					ctx.SendToAllOut(1)
				}
				ctx.VoteToHalt()
			default:
				for range msgs {
					ctx.SetValue(ctx.Value() + 1)
				}
				ctx.VoteToHalt()
			}
		},
	}
}

func TestEdgeMutations(t *testing.T) {
	// 0 -> 1, 0 -> 2; after mutation: 0 -> 2, 0 -> 3.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	vals, res, _, err := Run(g, mutationProbe(), Config{Workers: 2, Mode: Async, MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := []int32{1, 0, 1, 1} // 1 got cut off, 3 got attached
	for v, x := range want {
		if vals[v] != x {
			t.Errorf("vals[%d] = %d, want %d", v, vals[v], x)
		}
	}
}

func TestMutationsRejectedUnderSerializability(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	_, _, _, err := Run(g, mutationProbe(), Config{
		Workers: 2, Mode: Async, Sync: PartitionLock, MaxSupersteps: 10,
	})
	if err == nil {
		t.Error("mutations accepted under partition locking")
	}
}

func TestMutationDedupAndRemoveWins(t *testing.T) {
	prog := model.Program[int32, int32]{
		Name: "mut2", Semantics: model.Queue, MsgBytes: 4,
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			if ctx.Superstep() == 0 && ctx.ID() == 0 {
				ctx.AddEdgeRequest(0, 2, 1)
				ctx.AddEdgeRequest(0, 2, 1) // duplicate add
				ctx.AddEdgeRequest(0, 1, 1) // add + remove in same superstep
				ctx.RemoveEdgeRequest(0, 1)
			}
			ctx.VoteToHalt()
		},
	}
	g := graph.NewBuilder(3).Build()
	_, res, _, err := Run(g, prog, Config{Workers: 1, Mode: Async, MaxSupersteps: 5})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	// The runner's final graph isn't returned; verify indirectly by
	// re-running with a probe that floods from 0.
	// (Direct check: a second mutation-free program over the same Run is
	// not possible since the graph is internal; the dedup behavior is
	// already covered by TestEdgeMutations' exact final values.)
}

func TestMutationPreservesPendingMessages(t *testing.T) {
	// A vertex that received a message before the mutation must still see
	// it afterwards: stores are rebuilt with contents carried over.
	prog := model.Program[int32, int32]{
		Name: "mut3", Semantics: model.Queue, MsgBytes: 4,
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			switch ctx.Superstep() {
			case 0:
				if ctx.ID() == 0 {
					ctx.Send(1, 42)             // in flight across the mutation barrier
					ctx.AddEdgeRequest(2, 0, 1) // unrelated topology change
				}
			default:
				for _, m := range msgs {
					ctx.SetValue(m)
				}
				ctx.VoteToHalt()
			}
			if ctx.Superstep() > 0 {
				ctx.VoteToHalt()
			}
		},
	}
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	vals, res, _, err := Run(g, prog, Config{Workers: 2, Mode: Async, MaxSupersteps: 6})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	if vals[1] != 42 {
		t.Errorf("vals[1] = %d, want 42 (message lost across mutation)", vals[1])
	}
}

func TestMutationLargerGraphStillConverges(t *testing.T) {
	// Remove a batch of edges mid-run on a real workload and confirm the
	// engine stays consistent (SSSP over the shrunken graph terminates).
	g := generate.PowerLaw(generate.PowerLawConfig{N: 300, AvgDegree: 5, Exponent: 2.2, Seed: 97})
	prog := model.Program[int32, int32]{
		Name: "cutter", Semantics: model.Queue, MsgBytes: 4,
		Compute: func(ctx model.Context[int32, int32], msgs []int32) {
			if ctx.Superstep() == 0 && int(ctx.ID())%10 == 0 {
				for _, nb := range ctx.OutNeighbors() {
					ctx.RemoveEdgeRequest(ctx.ID(), nb)
				}
			}
			ctx.VoteToHalt()
		},
	}
	_, res, _, err := Run(g, prog, Config{Workers: 4, Mode: Async, MaxSupersteps: 5})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	// Follow-up run on the original graph is unaffected (immutability of
	// the caller's graph): the caller's g was rebuilt only inside the run.
	dist, res2, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 2, Mode: Async})
	if err != nil || !res2.Converged {
		t.Fatalf("follow-up: err=%v converged=%v", err, res2.Converged)
	}
	want := algorithms.ShortestPaths(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("caller's graph mutated: dist[%d]=%v want %v", v, dist[v], want[v])
		}
	}
}
