package engine

// Chaos harness: every test here runs a full engine.Run with faults
// injected by internal/fault and asserts that automatic in-run recovery
// (barrier detection → whole-cluster rollback → revive → resume, §6.4)
// preserves the algorithm's answer — including the serializability
// guarantees of the Chandy–Misra technique across a mid-run rollback.

import (
	"math"
	"strings"
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/fault"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
)

func chaosGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return generate.PowerLaw(generate.PowerLawConfig{N: 500, AvgDegree: 4, Exponent: 2.2, Seed: 17})
}

// TestChaosSSSPCrashRecovery is the headline scenario: a worker crashes at
// superstep 3 of an SSSP run checkpointing every 2 supersteps. One Run
// call must detect the death, roll back to the superstep-1 checkpoint,
// revive the worker, resume, and produce exactly the fault-free answer.
func TestChaosSSSPCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 1, AtSuperstep: 3}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 2, CheckpointDir: t.TempDir(),
		Fault: inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if !inj.Exhausted() {
		t.Fatal("scheduled crash never fired (run too short?)")
	}
	if res.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", res.Rollbacks)
	}
	// The crash hit superstep 3; the latest checkpoint covered supersteps
	// 0-1, so supersteps 2 and 3 are recomputed.
	if res.RecomputedSupersteps != 2 {
		t.Errorf("RecomputedSupersteps = %d, want 2", res.RecomputedSupersteps)
	}
	if res.WastedMessages <= 0 {
		t.Errorf("WastedMessages = %d, want > 0", res.WastedMessages)
	}
	if res.Net.DroppedMessages <= 0 {
		t.Errorf("Net.DroppedMessages = %d, want > 0 (the dead worker's traffic)", res.Net.DroppedMessages)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestChaosColoringSerializabilitySurvivesRollback runs greedy coloring
// under partition-based Chandy–Misra locking with a crash and verifies
// both that the final coloring is proper and that the post-rollback
// transaction history still satisfies C1, C2, and 1SR — the
// serializability guarantee survives the recovery path.
func TestChaosColoringSerializabilitySurvivesRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := undirected(chaosGraph(t))

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 2, AtSuperstep: 1}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 9,
		CheckpointEvery: 1, CheckpointDir: t.TempDir(),
		TrackHistory: true,
		Fault:        inj,
	}
	colors, res, rec, err := Run(g, algorithms.Coloring(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if res.Rollbacks < 1 {
		t.Fatalf("Rollbacks = %d, want >= 1", res.Rollbacks)
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatalf("coloring invalid after recovery: %v", err)
	}
	if vs := history.CheckAll(rec.Txns(), g); len(vs) != 0 {
		t.Fatalf("%d serializability violations after rollback, first: %v", len(vs), vs[0])
	}
}

// TestChaosPageRankCrashRecovery exercises recovery under BSP: PageRank
// with a mid-run crash must match the fault-free run (up to floating-point
// summation order).
func TestChaosPageRankCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	// eps 0.05: tight enough to need tens of supersteps, loose enough that
	// BSP converges (at 0.01 this graph oscillates under BSP — the very
	// pathology the paper studies).
	const eps = 0.05
	base := Config{Workers: 4, Mode: BSP, Sync: SyncNone, Seed: 5, MaxSupersteps: 200}

	want, resBase, _, err := Run(g, algorithms.PageRank(eps), base)
	if err != nil {
		t.Fatal(err)
	}
	if !resBase.Converged {
		t.Fatal("baseline did not converge")
	}

	crashed := base
	crashed.CheckpointEvery = 2
	crashed.CheckpointDir = t.TempDir()
	crashed.Fault = fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 3, AtSuperstep: 3}}})
	got, res, _, err := Run(g, algorithms.PageRank(eps), crashed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if res.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", res.Rollbacks)
	}
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > 1e-6 {
			t.Fatalf("rank[%d] = %v, want %v (Δ %v)", v, got[v], want[v], d)
		}
	}
}

// TestChaosMessageTriggeredCrash kills a worker mid-superstep, once the
// cluster has delivered a fixed number of data messages — the failure
// point no barrier aligns with.
func TestChaosMessageTriggeredCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 2, AfterMessages: 40}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 2, CheckpointDir: t.TempDir(),
		Fault: inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("crashed run did not converge")
	}
	if !inj.Exhausted() {
		t.Skip("run finished under 40 data batches; crash never fired")
	}
	if res.Rollbacks < 1 {
		t.Fatalf("Rollbacks = %d, want >= 1", res.Rollbacks)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestChaosCrashBeforeAnyCheckpoint rolls back with nothing on disk: the
// cluster must restart the computation from its initial state within the
// same Run call.
func TestChaosCrashBeforeAnyCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 0, AtSuperstep: 1}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		Fault: inj, // no CheckpointDir at all
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if res.Rollbacks != 1 {
		t.Errorf("Rollbacks = %d, want 1", res.Rollbacks)
	}
	// Failed at superstep 1, restarted from 0: supersteps 0 and 1 redone.
	if res.RecomputedSupersteps != 2 {
		t.Errorf("RecomputedSupersteps = %d, want 2", res.RecomputedSupersteps)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestChaosRepeatedCrashes drives several distinct failures through one
// run; each triggers its own rollback and the answer still comes out
// exact.
func TestChaosRepeatedCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{
		{Worker: 1, AtSuperstep: 1},
		{Worker: 3, AtSuperstep: 3},
	}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 1, CheckpointDir: t.TempDir(),
		Fault: inj,
	}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if !inj.Exhausted() {
		t.Skip("run converged before both crashes fired")
	}
	if res.Rollbacks != 2 {
		t.Errorf("Rollbacks = %d, want 2", res.Rollbacks)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestChaosDuplicatesAndStragglersAreHarmless: duplicated deliveries and
// stragglers must not change the answer of an idempotent algorithm (SSSP's
// min-combine), and stragglers must not leak messages across barriers.
func TestChaosDuplicatesAndStragglersAreHarmless(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	want := algorithms.ShortestPaths(g, 0)

	inj := fault.NewInjector(fault.Plan{
		DuplicateRate: 0.2, StragglerRate: 0.1, StragglerDelay: 200_000, // 200µs
		Seed: 7,
	})
	cfg := Config{Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5, Fault: inj}
	dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	st := inj.Stats()
	if st.Duplicates == 0 || st.Delays == 0 {
		t.Fatalf("chaos never fired: %+v", st)
	}
	if res.Rollbacks != 0 {
		t.Errorf("Rollbacks = %d on a crash-free run", res.Rollbacks)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

// TestChaosDropsAreAccounted: injected message loss on a crash-free run
// terminates cleanly and every drop shows up in the transport counters.
// (Without a crash there is no rollback, so no correctness claim is made —
// lossy links are not the paper's failure model; this pins down liveness
// and accounting.)
func TestChaosDropsAreAccounted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	inj := fault.NewInjector(fault.Plan{DropRate: 0.05, Seed: 11})
	cfg := Config{Workers: 4, Mode: Async, Sync: SyncNone, Seed: 5, Fault: inj}
	_, res, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not terminate")
	}
	st := inj.Stats()
	if st.Drops == 0 {
		t.Fatal("no drops fired at 5% over a full run")
	}
	if res.Net.DroppedMessages < st.Drops {
		t.Errorf("transport counted %d drops, injector made %d", res.Net.DroppedMessages, st.Drops)
	}
}

// TestChaosMaxRollbacksGivesUp: a fault schedule that keeps killing
// workers must end in a clean error once MaxRollbacks is exhausted, not
// loop forever.
func TestChaosMaxRollbacksGivesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := chaosGraph(t)
	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{
		{Worker: 0, AtSuperstep: 1},
		{Worker: 1, AtSuperstep: 2},
		{Worker: 2, AtSuperstep: 3},
	}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 5,
		CheckpointEvery: 1, CheckpointDir: t.TempDir(),
		MaxRollbacks: 2,
		Fault:        inj,
	}
	_, _, _, err := Run(g, algorithms.SSSP(0), cfg)
	if err == nil || !strings.Contains(err.Error(), "MaxRollbacks") {
		t.Fatalf("err = %v, want MaxRollbacks error", err)
	}
}

// Config validation around faults and checkpoints.

func TestConfigRejectsCheckpointEveryWithoutDir(t *testing.T) {
	g := generate.Ring(10)
	cfg := Config{Workers: 2, Mode: Async, CheckpointEvery: 2}
	if _, _, _, err := Run(g, algorithms.SSSP(0), cfg); err == nil {
		t.Fatal("CheckpointEvery with no CheckpointDir was accepted")
	}
}

func TestConfigRejectsFaultWithBAP(t *testing.T) {
	g := generate.Ring(10)
	cfg := Config{
		Workers: 2, Mode: BAP, Sync: SyncNone,
		Fault: fault.NewInjector(fault.Plan{}),
	}
	if _, _, _, err := Run(g, algorithms.SSSP(0), cfg); err == nil {
		t.Fatal("fault injection under BAP was accepted")
	}
}

func TestConfigRejectsCrashOutsideCluster(t *testing.T) {
	g := generate.Ring(10)
	cfg := Config{
		Workers: 2, Mode: Async,
		Fault: fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 7, AtSuperstep: 0}}}),
	}
	if _, _, _, err := Run(g, algorithms.SSSP(0), cfg); err == nil {
		t.Fatal("crash target outside the cluster was accepted")
	}
}
