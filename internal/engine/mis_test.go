package engine

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/history"
)

func TestMISGreedyValidUnderSerializableSyncs(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 500, AvgDegree: 6, Exponent: 2.2, Seed: 31}))
	for _, sync := range []Sync{TokenSingle, TokenDual, PartitionLock} {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			states, res, _, err := Run(g, algorithms.MISGreedy(), Config{
				Workers: 4, Mode: Async, Sync: sync, Seed: 13,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if err := algorithms.ValidateMIS(g, states); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMISGreedyHistoryClean(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 150, AvgDegree: 5, Exponent: 2.2, Seed: 37}))
	_, _, rec, err := Run(g, algorithms.MISGreedy(), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 3, TrackHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := history.CheckAll(rec.Txns(), g); v != nil {
		t.Fatalf("violations: %v", v[:min(3, len(v))])
	}
}

func TestMISGreedyCanFailWithoutSerializability(t *testing.T) {
	// On a clique, unsynchronized greedy MIS lets adjacent vertices join
	// simultaneously on different workers. Probabilistic: try several
	// seeds and require at least one invalid result OR all valid (the
	// latter is possible but then the C2 checker must have flagged
	// something across attempts on this dense graph).
	g := generate.Complete(32)
	sawInvalid := false
	sawViolation := false
	for seed := uint64(0); seed < 8; seed++ {
		states, _, rec, err := Run(g, algorithms.MISGreedy(), Config{
			Workers: 4, Mode: Async, Sync: SyncNone, Seed: seed, TrackHistory: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if algorithms.ValidateMIS(g, states) != nil {
			sawInvalid = true
		}
		if len(history.CheckAll(rec.Txns(), g)) > 0 {
			sawViolation = true
		}
	}
	if !sawInvalid && !sawViolation {
		t.Error("unsynchronized greedy MIS on K32 never misbehaved across 8 runs")
	}
}

func TestMISLubyValidUnderBSP(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 600, AvgDegree: 6, Exponent: 2.2, Seed: 41}))
	vals, res, _, err := Run(g, algorithms.MISLuby(7), Config{
		Workers: 4, Mode: BSP, Seed: 5, MaxSupersteps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Luby did not converge in %d supersteps", res.Supersteps)
	}
	if err := algorithms.ValidateMIS(g, algorithms.LubyStates(vals)); err != nil {
		t.Fatal(err)
	}
	// Luby needs multiple 2-superstep rounds; greedy-serializable needs
	// about one pass. That contrast is the paper's motivation.
	if res.Supersteps < 4 {
		t.Errorf("suspiciously few supersteps for Luby: %d", res.Supersteps)
	}
}

func TestMISGreedyVsLubyRoundCount(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 800, AvgDegree: 8, Exponent: 2.1, Seed: 43}))
	_, greedy, _, err := Run(g, algorithms.MISGreedy(), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, luby, _, err := Run(g, algorithms.MISLuby(7), Config{
		Workers: 4, Mode: BSP, Seed: 1, MaxSupersteps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.Converged || !luby.Converged {
		t.Fatal("a run did not converge")
	}
	if greedy.Supersteps >= luby.Supersteps {
		t.Errorf("greedy-serializable took %d supersteps, Luby %d; expected greedy fewer",
			greedy.Supersteps, luby.Supersteps)
	}
}
