package engine

// Cross-scheduler equivalence matrix: every synchronization technique ×
// {SSSP, PageRank, coloring} × {static, overlap}. The scheduler decides
// the order in which one worker's partitions execute — never what they
// compute — so:
//
//   - BSP cells demand bitwise-identical values and superstep counts
//     across schedulers (per-superstep folds happen in fixed in-slot
//     order, independent of which thread ran which partition when).
//   - SSSP has a unique fixed point under every technique: converged
//     distances must equal the serial reference exactly on every cell.
//   - Async PageRank and coloring are schedule-dependent; those cells
//     assert the algorithm-level contract per scheduler (residual bound,
//     proper coloring under serializable techniques).
//
// Each cell also reconciles the new scheduler counters: forks_prefetched,
// steals, and overlap_compute_ns must be zero under SchedStatic, and
// forks_prefetched (a subset of lock_acquires, and nonzero whenever
// boundary partitions executed) only moves under PartitionLock.

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/metrics"
)

func schedConfig(mode Mode, sync Sync, sched SchedulerKind) Config {
	return Config{
		Workers: 3, PartitionsPerWorker: 4, ThreadsPerWorker: 2,
		Mode: mode, Sync: sync, Scheduler: sched,
		Seed: 1131, MaxSupersteps: 200, Metrics: metrics.New(),
	}
}

// checkSchedCounters enforces the scheduler-counter contract on any run.
func checkSchedCounters(t *testing.T, label string, cfg Config, res Result) {
	t.Helper()
	m := res.Metrics
	pref := m.Get(metrics.ForksPrefetched)
	steals := m.Get(metrics.Steals)
	overlapNs := m.Get(metrics.OverlapComputeNs)
	if cfg.Scheduler == SchedStatic {
		if pref != 0 || steals != 0 || overlapNs != 0 {
			t.Errorf("%s: static scheduler moved overlap counters: prefetched=%d steals=%d overlap_ns=%d",
				label, pref, steals, overlapNs)
		}
		return
	}
	if cfg.Sync != PartitionLock && (pref != 0 || overlapNs != 0) {
		t.Errorf("%s: fork prefetch counters moved without PartitionLock: prefetched=%d overlap_ns=%d",
			label, pref, overlapNs)
	}
	if pref > m.Get(metrics.LockAcquires) {
		t.Errorf("%s: forks_prefetched %d exceeds lock_acquires %d",
			label, pref, m.Get(metrics.LockAcquires))
	}
}

func TestSchedulerEquivalenceMatrix(t *testing.T) {
	scheds := []SchedulerKind{SchedStatic, SchedOverlap}
	cells := []struct {
		name string
		mode Mode
		sync Sync
	}{
		{"bsp/none", BSP, SyncNone},
		{"async/none", Async, SyncNone},
		{"async/token-single", Async, TokenSingle},
		{"async/token-dual", Async, TokenDual},
		{"async/partition-lock", Async, PartitionLock},
		{"async/vertex-lock-giraph", Async, VertexLockGiraph},
	}
	for _, cell := range cells {
		cell := cell
		t.Run("sssp/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			want := algorithms.ShortestPaths(g, 0)
			for _, sched := range scheds {
				label := "sssp/" + cell.name + "/" + sched.String()
				cfg := schedConfig(cell.mode, cell.sync, sched)
				dist, res, _, err := Run(g, algorithms.SSSP(0), cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				checkSchedCounters(t, label, cfg, res)
				for v := range want {
					if dist[v] != want[v] {
						t.Fatalf("%s: dist[%d] = %v, want %v", label, v, dist[v], want[v])
					}
				}
			}
		})
		t.Run("pagerank/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			const eps = 0.05
			aggregated := cell.mode == BSP
			var basePR []float64
			baseSteps := -1
			for _, sched := range scheds {
				label := "pagerank/" + cell.name + "/" + sched.String()
				prog := algorithms.PageRank(eps)
				if aggregated {
					prog = algorithms.PageRankAggregated(eps)
				}
				cfg := schedConfig(cell.mode, cell.sync, sched)
				pr, res, _, err := Run(g, prog, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				checkSchedCounters(t, label, cfg, res)
				if cell.mode == BSP {
					// Scheduler-independent determinism: bitwise equality
					// with the static baseline.
					if basePR == nil {
						basePR, baseSteps = pr, res.Supersteps
					} else {
						if res.Supersteps != baseSteps {
							t.Fatalf("%s: %d supersteps, static baseline took %d",
								label, res.Supersteps, baseSteps)
						}
						for v := range basePR {
							if basePR[v] != pr[v] {
								t.Fatalf("%s: diverges from static baseline at %d: %v vs %v",
									label, v, pr[v], basePR[v])
							}
						}
					}
				}
			}
		})
		t.Run("coloring/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(true)
			var baseColors []int32
			baseConverged := false
			for i, sched := range scheds {
				label := "coloring/" + cell.name + "/" + sched.String()
				cfg := schedConfig(cell.mode, cell.sync, sched)
				if cell.mode == BSP {
					// BSP coloring oscillates (Figure 2); bound it and
					// compare the deterministic non-converged state.
					cfg.MaxSupersteps = 30
				}
				colors, res, _, err := Run(g, algorithms.Coloring(), cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkSchedCounters(t, label, cfg, res)
				if cell.mode != BSP && !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				if res.Converged && cell.sync.Serializable() {
					if err := algorithms.ValidateColoring(g, colors); err != nil {
						t.Errorf("%s: %v", label, err)
					}
				}
				if cell.mode != BSP {
					continue
				}
				if i == 0 {
					baseColors, baseConverged = colors, res.Converged
					continue
				}
				if res.Converged != baseConverged {
					t.Fatalf("%s: convergence differs from static baseline", label)
				}
				for v := range baseColors {
					if baseColors[v] != colors[v] {
						t.Fatalf("%s: diverges from static baseline at %d: %d vs %d",
							label, v, colors[v], baseColors[v])
					}
				}
			}
		})
	}
}

// TestOverlapPrefetchesForks pins that the overlap scheduler actually
// exercises the asynchronous acquisition path: a partition-lock run on a
// graph with cross-worker edges must issue fork prefetches, and every
// prefetch is one of the run's lock acquires.
func TestOverlapPrefetchesForks(t *testing.T) {
	g := equivGraph(true)
	cfg := schedConfig(Async, PartitionLock, SchedOverlap)
	_, res, _, err := Run(g, algorithms.Coloring(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Get(metrics.ForksPrefetched) == 0 {
		t.Error("overlap partition-lock run issued no fork prefetches")
	}
	if m.Get(metrics.ForksPrefetched) > m.Get(metrics.LockAcquires) {
		t.Errorf("forks_prefetched %d exceeds lock_acquires %d",
			m.Get(metrics.ForksPrefetched), m.Get(metrics.LockAcquires))
	}
}

// TestOverlapRejectsBAP pins the config rule: BAP keeps its own barrierless
// per-worker loop, so the overlap scheduler is a configuration error there.
func TestOverlapRejectsBAP(t *testing.T) {
	g := equivGraph(false)
	cfg := Config{Workers: 2, Mode: BAP, Sync: SyncNone, Scheduler: SchedOverlap}
	if _, _, _, err := Run(g, algorithms.SSSP(0), cfg); err == nil {
		t.Fatal("BAP + SchedOverlap was not rejected")
	}
}
