package engine

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
)

func TestKCoreMatchesReference(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 600, AvgDegree: 7, Exponent: 2.1, Seed: 81}))
	want := algorithms.KCoreReference(g)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bsp", Config{Workers: 4, Mode: BSP, Seed: 1}},
		{"async", Config{Workers: 4, Mode: Async, Seed: 1}},
		{"partition-lock", Config{Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 1}},
		{"token-dual", Config{Workers: 4, Mode: Async, Sync: TokenDual, Seed: 1}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			vals, res, _, err := Run(g, algorithms.KCore(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			core := algorithms.KCoreEstimates(vals)
			for v := range want {
				if core[v] != want[v] {
					t.Fatalf("core[%d] = %d, want %d", v, core[v], want[v])
				}
			}
		})
	}
}

func TestKCoreOnCliqueAndRing(t *testing.T) {
	// Every vertex of K6 has coreness 5; every ring vertex has coreness 2.
	k := undirected(generate.Complete(6))
	kvals, res, _, err := Run(k, algorithms.KCore(), Config{Workers: 2, Mode: Async, Sync: PartitionLock})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	for v, c := range algorithms.KCoreEstimates(kvals) {
		if c != 5 {
			t.Errorf("K6 core[%d] = %d, want 5", v, c)
		}
	}
	rb := graph.NewBuilder(10)
	for i := 0; i < 10; i++ {
		rb.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%10))
	}
	ring := rb.BuildUndirected()
	rvals, res, _, err := Run(ring, algorithms.KCore(), Config{Workers: 2, Mode: Async})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	for v, c := range algorithms.KCoreEstimates(rvals) {
		if c != 2 {
			t.Errorf("ring core[%d] = %d, want 2", v, c)
		}
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 8, Exponent: 2.0, Seed: 83}))
	want := algorithms.CountTrianglesReference(g)
	if want == 0 {
		t.Fatal("test graph has no triangles; pick a denser seed")
	}
	counts, res, _, err := Run(g, algorithms.TriangleCount(), Config{Workers: 4, Mode: BSP, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	var total int64
	for _, c := range counts {
		total += int64(c)
	}
	if total != want {
		t.Fatalf("counted %d triangles, reference %d", total, want)
	}
}

func TestTriangleCountOnKnownGraphs(t *testing.T) {
	// K4 has 4 triangles; a 4-cycle has none.
	k4 := undirected(generate.Complete(4))
	counts, _, _, err := Run(k4, algorithms.TriangleCount(), Config{Workers: 2, Mode: BSP})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += int64(c)
	}
	if total != 4 {
		t.Errorf("K4 triangles = %d, want 4", total)
	}

	cb := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		cb.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%4))
	}
	c4 := cb.BuildUndirected()
	counts, _, _, err = Run(c4, algorithms.TriangleCount(), Config{Workers: 2, Mode: BSP})
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, c := range counts {
		total += int64(c)
	}
	if total != 0 {
		t.Errorf("C4 triangles = %d, want 0", total)
	}
}

func TestLPAOscillatesUnderBSPConvergesSerializable(t *testing.T) {
	// Complete bipartite K(4,4): under BSP, the two sides adopt each
	// other's majority label in lockstep and swap forever; serializable
	// async execution converges.
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := 4; j < 8; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g := b.BuildUndirected()

	_, bspRes, _, err := Run(g, algorithms.LabelPropagation(), Config{
		Workers: 2, PartitionsPerWorker: 1, Mode: BSP, MaxSupersteps: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bspRes.Converged {
		t.Log("BSP LPA converged on K(4,4); oscillation depends on label layout — continuing")
	}

	labels, serRes, _, err := Run(g, algorithms.LabelPropagation(), Config{
		Workers: 2, PartitionsPerWorker: 1, Mode: Async, Sync: PartitionLock,
		MaxSupersteps: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !serRes.Converged {
		t.Fatal("serializable LPA did not converge")
	}
	// In a converged LPA state every vertex holds the majority label of
	// its neighborhood (a stable configuration).
	for v := 0; v < g.NumVertices(); v++ {
		var nbLabels []int32
		for _, nb := range g.OutNeighbors(graph.VertexID(v)) {
			nbLabels = append(nbLabels, labels[nb])
		}
		counts := map[int32]int{}
		for _, l := range nbLabels {
			counts[l]++
		}
		if counts[labels[v]] < maxCount(counts) {
			t.Fatalf("vertex %d label %d is not a neighborhood majority %v", v, labels[v], counts)
		}
	}
}

func TestLPAConvergesOnCommunities(t *testing.T) {
	// Two cliques joined by one edge: LPA must settle with one label per
	// clique (mostly).
	b := graph.NewBuilder(20)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
				b.AddEdge(graph.VertexID(10+i), graph.VertexID(10+j))
			}
		}
	}
	b.AddEdge(0, 10)
	g := b.BuildUndirected()
	labels, res, _, err := Run(g, algorithms.LabelPropagation(), Config{
		Workers: 3, Mode: Async, Sync: PartitionLock, Seed: 2, MaxSupersteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := 1; v < 10; v++ {
		if labels[v] != labels[1] {
			t.Errorf("clique 1 split: labels[%d]=%d vs %d", v, labels[v], labels[1])
		}
	}
	for v := 11; v < 20; v++ {
		if labels[v] != labels[11] {
			t.Errorf("clique 2 split: labels[%d]=%d vs %d", v, labels[v], labels[11])
		}
	}
}

func maxCount(m map[int32]int) int {
	best := 0
	for _, n := range m {
		if n > best {
			best = n
		}
	}
	return best
}

func TestPersonalizedPageRank(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 500, AvgDegree: 6, Exponent: 2.1, Seed: 101})
	const source = graph.VertexID(3)
	for _, sync := range []Sync{SyncNone, PartitionLock} {
		pr, res, _, err := Run(g, algorithms.PersonalizedPageRank(source, 0.85, 1e-5), Config{
			Workers: 4, Mode: Async, Sync: sync, Seed: 1,
		})
		if err != nil || !res.Converged {
			t.Fatalf("%v: err=%v converged=%v", sync, err, res.Converged)
		}
		// The source must dominate: restart mass lands there every step.
		for v, x := range pr {
			if graph.VertexID(v) != source && x > pr[source] {
				t.Fatalf("%v: pr[%d]=%v exceeds source's %v", sync, v, x, pr[source])
			}
			if x < -1e-12 {
				t.Fatalf("%v: negative score %v at %d", sync, x, v)
			}
		}
		// Total mass stays near 1 (restart + damping conserve it, minus
		// dangling-vertex leakage).
		sum := 0.0
		for _, x := range pr {
			sum += x
		}
		if sum > 1.2 {
			t.Errorf("%v: total mass %.3f > 1.2", sync, sum)
		}
	}
}

func TestHopHistogramMatchesReachability(t *testing.T) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 5, Exponent: 2.2, Seed: 103})
	sources := []graph.VertexID{0, 7, 42, 99}
	want := algorithms.ReachabilityReference(g, sources)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bsp", Config{Workers: 3, Mode: BSP, Seed: 1}},
		{"async", Config{Workers: 3, Mode: Async, Seed: 1}},
		{"partition-lock", Config{Workers: 3, Mode: Async, Sync: PartitionLock, Seed: 1}},
		{"token-single", Config{Workers: 3, Mode: Async, Sync: TokenSingle, Seed: 1}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			vals, res, _, err := Run(g, algorithms.HopHistogram(sources), tc.cfg)
			if err != nil || !res.Converged {
				t.Fatalf("err=%v converged=%v", err, res.Converged)
			}
			for v := range want {
				if vals[v].Reached != want[v] {
					t.Fatalf("reached[%d] = %b, want %b", v, vals[v].Reached, want[v])
				}
			}
		})
	}
}

func TestHopHistogramBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("65 sources accepted")
		}
	}()
	algorithms.HopHistogram(make([]graph.VertexID, 65))
}
