package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/metrics"
)

// runBAP executes the barrierless asynchronous parallel model of Giraph
// Unchained [20], which the paper's "Giraph async" builds on: each worker
// advances through its own logical supersteps with no global barriers,
// idling only when it has no active vertices and waking when messages
// arrive. Termination is global quiescence: every worker idle, nothing in
// flight, and the execution counter stable across two observations — the
// same detector the GAS engine uses.
//
// Partition-based locking composes with BAP naturally: the fork protocol
// is already barrier-free, condition C1 comes from flush-before-handoff
// plus FIFO delivery, and condition C2 from the forks themselves. Token
// techniques are rejected for BAP because their correctness argument
// (§4.2, §5.3) leans on superstep-aligned token rotation.
func (r *runner[V, M]) runBAP(res *Result) {
	var (
		done     atomic.Bool
		maxSteps atomic.Int64
		wg       sync.WaitGroup
	)
	for _, w := range r.workers {
		wg.Add(1)
		go func(w *worker[V, M]) {
			defer wg.Done()
			step := 0
			for !done.Load() {
				if !w.anyActiveWorker() {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				w.runLogicalSuperstep(step)
				step++
				for {
					m := maxSteps.Load()
					if int64(step) <= m || maxSteps.CompareAndSwap(m, int64(step)) {
						break
					}
				}
			}
		}(w)
	}

	// Quiescence detector.
	var lastExec int64 = -1
	for {
		if int(maxSteps.Load()) >= r.cfg.MaxSupersteps {
			break // runaway guard; Converged stays false
		}
		idle := r.tr.InFlight() == 0
		if idle {
			for _, w := range r.workers {
				// stepping guards the staged-message window: mid-step, a
				// local message may live only in a thread's staging buffer,
				// invisible to NewCount until the partition-end fold, and
				// the executions counter only moves at fold time. A worker
				// only starts a step after observing activity, and that
				// activity is consumed strictly inside the step, so the
				// detector can never see "no activity, not stepping" while
				// work is pending.
				if w.stepping.Load() || w.anyActiveWorker() || w.pendingBuffered() {
					idle = false
					break
				}
			}
		}
		if idle {
			if e := r.executions.Load(); e == lastExec {
				res.Converged = true
				break
			} else {
				lastExec = e
			}
		} else {
			lastExec = -1
			// Release any messages stranded in idle workers' buffers.
			for _, w := range r.workers {
				if w.pendingBuffered() {
					w.buf.FlushAll()
				}
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	done.Store(true)
	wg.Wait()
	res.Supersteps = int(maxSteps.Load())
}

// anyActiveWorker reports whether any owned vertex is active: not halted,
// or holding unread messages.
func (w *worker[V, M]) anyActiveWorker() bool {
	return w.stores[0].NewCount() > 0 || w.unhalted.Load() > 0
}

// pendingBuffered reports whether outgoing messages are waiting in the
// buffer cache.
func (w *worker[V, M]) pendingBuffered() bool {
	for dest := range w.r.workers {
		if dest != w.id && w.buf.Pending(dest) > 0 {
			return true
		}
	}
	return false
}

// runLogicalSuperstep is one pass over the worker's partitions under BAP:
// the same partition execution as the barriered engine, followed by a
// flush, but with a per-worker superstep counter and no rendezvous. With
// no master barrier to do it, the worker folds its own step metrics: the
// supersteps counter accumulates per-worker logical supersteps (so it
// exceeds Result.Supersteps, which is the max across workers), and
// barrier-wait stays zero by construction — BAP has no barriers.
func (w *worker[V, M]) runLogicalSuperstep(step int) {
	w.stepping.Store(true)
	defer w.stepping.Store(false)
	reg := w.r.reg
	computeStart := time.Now()
	queue := make(chan int, len(w.parts))
	for i := range w.parts {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for t := 0; t < w.r.cfg.ThreadsPerWorker; t++ {
		local := w.threads[t]
		local.superstep = step
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				local.runPartition(w.parts[i])
			}
			local.fold()
		}()
	}
	wg.Wait()
	flushStart := time.Now()
	reg.AddPhase(metrics.PhaseCompute, flushStart.Sub(computeStart))
	w.buf.FlushAll()
	reg.AddPhase(metrics.PhaseRemoteFlush, time.Since(flushStart))
	reg.Add(metrics.Supersteps, 1)
	reg.Observe(metrics.HistSuperstepWall, int64(time.Since(computeStart)))
}
