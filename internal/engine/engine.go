package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/checkpoint"
	"serialgraph/internal/metrics"
	"serialgraph/internal/msgstore"

	"serialgraph/internal/cluster"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
	"serialgraph/internal/wire"
)

// runner holds the state shared by the master and all workers of one run.
type runner[V, M any] struct {
	g    *graph.Graph
	prog model.Program[V, M]
	cfg  Config
	pm   *partition.Map
	tr   cluster.Transport
	reg  *metrics.Registry

	// flow is the transport's credit-window ledger (DESIGN.md §12): every
	// data send acquires window bytes for its ordered pair and every
	// delivery (or counted drop) releases them. Always armed — with no
	// budget the window is the generous default and senders never block in
	// practice, but the grant/release ledger still runs, so the barrier
	// balance oracle has teeth on every run.
	flow *cluster.Flow

	workers []*worker[V, M]

	// values is the primary copy of every vertex value; each slot is
	// written only by executions of its vertex, which the engine (and the
	// synchronization technique) never runs concurrently with itself.
	values []V
	halted []bool

	// classes is computed for token techniques only (§5.3).
	classes []partition.Class

	// pBoundary is computed for VertexLockGiraph only: per-vertex
	// p-boundary flags (Definition 4), precomputed once instead of walking
	// both adjacency lists per vertex per superstep.
	pBoundary []bool

	// outSlots is computed for Overwrite semantics only: outSlots[u][i] is
	// the in-slot position (biased by one; see msgstore.Entry.Slot) of u in
	// the in-neighbor list of u's i-th out-neighbor. SendToAllOut attaches
	// it to every message so the store never repeats the per-delivery
	// binary search InSlot would do. Rebuilt on topology mutation.
	outSlots [][]uint32

	// initialForks snapshots each lock manager's fresh fork distribution
	// (captured before the first superstep) so a rollback with no
	// checkpoint on disk can reset the Chandy–Misra state along with the
	// vertex state. Indexed like workers; nil when the technique has no
	// managers.
	initialForks []map[chandy.PhilID]map[chandy.PhilID]byte

	// versions tracks per-vertex write versions when history is recorded.
	versions []atomic.Uint32

	// batchPool recycles emitted remote-batch slices: a receiver drops its
	// spent batch here after PutBatch, and every worker's buffer cache
	// restarts its next batch from the pool. Only safe when recycleBatches
	// is set — with fault injection active the transport may duplicate a
	// delivery (at-least-once), and a recycled slice would alias the copy
	// still on the wire.
	batchPool      sync.Pool
	recycleBatches bool
	rec            *history.Recorder

	// replaying is set while confined recovery re-executes supersteps on
	// the crashed workers' partitions. Replay executions are suppressed
	// from the transaction recorder — the original executions were already
	// discarded by the recorder reset, and the replay is reconstruction,
	// not new history.
	replaying atomic.Bool
	// replayDest, valid while replaying is set, marks the workers being
	// recovered. Below the frontier a replaying worker's remote sends are
	// delivered only to other recovering workers: the healthy side already
	// received the originals while the sender was alive, and a replayed
	// duplicate would overwrite a healthy write store's frontier-step slot
	// with an earlier step's value under a newer version.
	replayDest []bool
	// replayFrontier is the superstep the crash was detected at. The dead
	// workers' sends during that superstep were dropped at the transport
	// (a killed sender loses its data traffic), so the frontier replay
	// step must deliver its regenerated sends everywhere; earlier replay
	// steps' sends were originally delivered and stay confined.
	replayFrontier int

	// dirty marks vertices written since the last checkpoint; the next
	// checkpoint can then be a delta generation carrying only those
	// vertices. Allocated only when checkpointing is configured.
	dirty []atomic.Bool

	// lastCheckpoint is the superstep of the newest usable on-disk
	// generation, -1 when none; confined recovery replays from
	// lastCheckpoint+1, and delta generations name it as their base.
	lastCheckpoint int
	// gensSinceFull counts delta generations written since the last full
	// one, bounding the chain a restore must walk.
	gensSinceFull int
	// forceFullCkpt forces the next generation to be full: set whenever
	// the dirty-vertex set stopped describing the diff against the base
	// generation (after any restore or reset).
	forceFullCkpt bool
	// mutatedSince marks topology mutations applied since the last
	// checkpoint. Replay needs the topology the original supersteps ran
	// on, so confined recovery is ineligible until the next checkpoint.
	mutatedSince bool

	// aggAt retains each superstep's merged aggregator map while confined
	// recovery is enabled, so replayed supersteps can be fed the exact
	// aggregate inputs their originals saw. Pruned at checkpoints.
	aggAt map[int]map[string]float64

	executions  atomic.Int64
	concurrency atomic.Int64
	maxConc     atomic.Int64
}

// newTransport builds the run's cluster backend. The TCP backend gets a
// payload codec specialized to the program's message type — honoring the
// program's explicit serialization contract when it declares one — and
// the run's metrics registry for the wire-phase timers.
func newTransport[V, M any](cfg Config, prog model.Program[V, M], reg *metrics.Registry) (cluster.Transport, error) {
	if cfg.Transport != TransportTCP {
		return cluster.New(cfg.Workers, cfg.Latency), nil
	}
	var codec cluster.PayloadCodec
	if prog.MsgAppend != nil && prog.MsgRead != nil {
		codec = wire.NewCodecWith(wire.MsgCodec[M]{Append: prog.MsgAppend, Read: prog.MsgRead})
	} else {
		codec = wire.NewCodec[M]()
	}
	tcp, err := cluster.NewTCPLoopback(cfg.Workers, cfg.Latency, codec)
	if err != nil {
		return nil, err
	}
	tcp.SetMetrics(reg)
	return tcp, nil
}

// Run executes prog over g under cfg and returns the final vertex values.
// When cfg.TrackHistory is set, the returned recorder holds the
// transaction log for serializability checking.
func Run[V, M any](g *graph.Graph, prog model.Program[V, M], cfg Config) ([]V, Result, *history.Recorder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, Result{}, nil, err
	}

	p := cfg.Workers * cfg.PartitionsPerWorker
	var pm *partition.Map
	if cfg.Partitioner != nil {
		pm = cfg.Partitioner(g, p, cfg.Workers)
	} else {
		pm = partition.NewHash(g, p, cfg.Workers, cfg.Seed)
	}

	r := &runner[V, M]{g: g, prog: prog, cfg: cfg, pm: pm, reg: cfg.Metrics}
	if r.reg == nil {
		r.reg = metrics.New()
	}
	n := g.NumVertices()
	r.values = make([]V, n)
	r.halted = make([]bool, n)
	if prog.Init != nil {
		for v := 0; v < n; v++ {
			r.values[v] = prog.Init(graph.VertexID(v), g)
		}
	}
	if cfg.TrackHistory {
		r.versions = make([]atomic.Uint32, n)
		r.rec = history.NewRecorder()
	}
	r.lastCheckpoint = -1
	if cfg.CheckpointEvery > 0 {
		r.dirty = make([]atomic.Bool, n)
	}
	if cfg.Recovery == RecoverConfined {
		r.aggAt = make(map[int]map[string]float64)
	}
	// The quality report is one allocation-free O(V+E) pass at setup
	// (outside ComputeTime); the classification it needs doubles as the
	// dual-layer token class table.
	classes := partition.Classify(g, pm)
	quality := partition.ReportClassified(g, pm, classes)
	r.reg.Add(metrics.CutEdges, int64(quality.CutEdges))
	r.reg.Add(metrics.BoundaryVertices, int64(n-quality.PInternal))
	if cfg.Sync == TokenSingle || cfg.Sync == TokenDual {
		r.classes = classes
	}
	if cfg.Sync == VertexLockGiraph {
		r.pBoundary = partition.PBoundaryFlags(g, pm)
	}
	if prog.Semantics == model.Overwrite {
		r.buildOutSlots()
	}
	tr, err := newTransport(cfg, prog, r.reg)
	if err != nil {
		return nil, Result{}, nil, err
	}
	r.tr = tr
	defer r.tr.Close()
	r.flow = cluster.NewFlow(cfg.Workers, cluster.WindowForBudget(cfg.MsgMemoryBudget, cfg.Workers))
	r.flow.SetMetrics(r.reg)
	if ft, ok := tr.(interface{ SetFlow(*cluster.Flow) }); ok {
		ft.SetFlow(r.flow)
	}
	r.recycleBatches = cfg.Fault == nil
	if cfg.Fault != nil {
		cfg.Fault.Attach(r.tr)
	}

	var partNeighbors [][]partition.ID
	if cfg.Sync == PartitionLock {
		partNeighbors = pm.Neighbors(g)
	}
	for w := 0; w < cfg.Workers; w++ {
		r.workers = append(r.workers, newWorker(r, w))
	}
	switch cfg.Sync {
	case PartitionLock:
		for _, w := range r.workers {
			w.initLockManager(partNeighbors)
		}
	case VertexLockGiraph:
		for _, w := range r.workers {
			w.initVertexLockManager()
		}
	}
	// Captured unconditionally (it is one map copy per manager at startup):
	// a rollback with no checkpoint on disk — including one forced by the
	// watchdog on an otherwise fault-free run — must be able to reset the
	// Chandy–Misra state along with the vertex state.
	for _, w := range r.workers {
		if w.mgr != nil {
			r.initialForks = append(r.initialForks, w.mgr.Export())
		}
	}
	startSuperstep := 0
	if cfg.RestoreFrom != "" {
		s0, err := r.restore(cfg.RestoreFrom)
		if err != nil {
			r.tr.Close()
			return nil, Result{}, nil, err
		}
		startSuperstep = s0
	}
	start := time.Now()
	res := Result{Partitions: p, Partition: quality}
	if cfg.Mode == BAP {
		r.runBAP(&res)
		res.ComputeTime = time.Since(start)
		res.Net = r.tr.Stats().Load()
		res.Executions = r.executions.Load()
		res.MaxConcurrency = r.maxConc.Load()
		for _, w := range r.workers {
			close(w.startCh)
			if w.mgr != nil {
				st := w.mgr.Stats()
				res.ForkSends += st.ForkSends
				res.TokenSends += st.TokenSends
			}
		}
		res.Metrics = r.reg.Snapshot()
		return r.values, res, r.rec, nil
	}
	for _, w := range r.workers {
		go w.loop()
	}
	// restoreNet is the traffic snapshot at the current restore point (run
	// start, then each checkpoint); a rollback charges everything sent
	// since it to Result.WastedMessages.
	restoreNet := r.tr.Stats().Load()
	// Token techniques execute only the token holder's vertices in any one
	// superstep, so a single superstep's aggregates cover a fraction of the
	// graph and a MasterHalt tolerance test on them would fire spuriously
	// (an idle worker's superstep aggregates to zero). MasterHalt is
	// therefore consulted once per full token rotation, on the aggregates
	// accumulated across the whole window.
	haltWindow := 1
	switch cfg.Sync {
	case TokenSingle:
		haltWindow = cfg.Workers
	case TokenDual:
		haltWindow = cfg.Workers * cfg.PartitionsPerWorker
	}
	windowAgg := make(map[string]float64)
	for s := startSuperstep; s < cfg.MaxSupersteps; s++ {
		if cfg.Fault != nil {
			cfg.Fault.BeginSuperstep(s)
		}
		// Workers already dead when the superstep dispatches executed and
		// delivered nothing mid-superstep, which is what makes their
		// partitions cleanly replayable by confined recovery.
		var deadAtStart []cluster.WorkerID
		if cfg.Recovery == RecoverConfined {
			deadAtStart = r.tr.DeadWorkers()
		}
		stepStart := time.Now()
		execsBefore := r.executions.Load()
		netBefore := r.tr.Stats().Load()
		var phaseBefore metrics.Snapshot
		if cfg.DetailedStats {
			phaseBefore = r.reg.Snapshot()
		}
		for _, w := range r.workers {
			w.startCh <- s
		}
		stalled := r.collectWorkers()
		if stalled {
			r.reg.Add(metrics.WatchdogStalls, 1)
			res.WatchdogStalls++
		}
		r.tr.WaitIdle()
		// With the transport idle every send has been delivered or counted
		// dropped, so every acquired credit must be back: an imbalance here
		// means the flow ledger leaked (the torture harness asserts zero).
		if err := r.flow.CheckBalanced(); err != nil {
			res.CreditImbalances++
		}
		// Superstep metrics are recorded before the failure check: a
		// superstep a rollback later discards was still executed, so the
		// supersteps counter can exceed Result.Supersteps on faulty runs.
		stepWall := time.Since(stepStart)
		r.reg.Add(metrics.Supersteps, 1)
		r.reg.Observe(metrics.HistSuperstepWall, int64(stepWall))
		r.noteBarrier(s, stepStart)

		// Failure detection at the barrier (§6.4): in a real Giraph
		// deployment the master notices a missed heartbeat; in the
		// simulation the transport's aliveness registry plays that role.
		// The check runs before any superstep side effects commit
		// (aggregator merge, store swap, checkpoint), so a checkpoint can
		// never capture a superstep a dead worker participated in.
		if dead := r.tr.DeadWorkers(); len(dead) > 0 {
			res.Rollbacks++
			r.reg.Add(metrics.Rollbacks, 1)
			if res.Rollbacks > cfg.MaxRollbacks {
				r.shutdownWorkers()
				return nil, Result{}, nil, fmt.Errorf("engine: workers %v still failing after %d rollbacks (MaxRollbacks)", dead, cfg.MaxRollbacks)
			}
			confined := false
			if r.confinedEligible(dead, deadAtStart, stalled) {
				ok, err := r.confinedRecover(&res, s, dead)
				if err != nil {
					r.shutdownWorkers()
					return nil, Result{}, nil, err
				}
				confined = ok
			}
			if !confined {
				res.WastedMessages += r.tr.Stats().Load().DataMessages - restoreNet.DataMessages
				resume, err := r.rollback()
				if err != nil {
					r.shutdownWorkers()
					return nil, Result{}, nil, err
				}
				res.RecomputedSupersteps += s + 1 - resume
				res.RecomputedPartitionSupersteps += (s + 1 - resume) * p
				restoreNet = r.tr.Stats().Load()
				windowAgg = make(map[string]float64) // discarded supersteps replay
				s = resume - 1                       // the loop increment lands on resume
				continue
			}
			// Confined recovery brought the crashed workers' partitions back
			// to the frontier: superstep s has now been (re)computed by every
			// partition, so the superstep commits normally below.
		}
		res.Supersteps = s + 1
		if cfg.DetailedStats {
			net := r.tr.Stats().Load().Sub(netBefore)
			cur := r.reg.Snapshot()
			res.SuperstepStats = append(res.SuperstepStats, SuperstepStat{
				Duration:        stepWall,
				Executions:      r.executions.Load() - execsBefore,
				DataMsgs:        net.DataMessages,
				CtrlMsgs:        net.ControlMessages,
				ComputeNs:       cur.PhaseNs[metrics.PhaseCompute] - phaseBefore.PhaseNs[metrics.PhaseCompute],
				LocalDeliveryNs: cur.PhaseNs[metrics.PhaseLocalDelivery] - phaseBefore.PhaseNs[metrics.PhaseLocalDelivery],
				RemoteFlushNs:   cur.PhaseNs[metrics.PhaseRemoteFlush] - phaseBefore.PhaseNs[metrics.PhaseRemoteFlush],
				BarrierWaitNs:   cur.PhaseNs[metrics.PhaseBarrierWait] - phaseBefore.PhaseNs[metrics.PhaseBarrierWait],
			})
		}

		merged := r.mergeAggregators()
		if r.aggAt != nil {
			r.aggAt[s] = merged
		}
		if cfg.Mode == BSP {
			// Spilled runs merge into the write store before the swap: the
			// next superstep's reads then see exactly what direct delivery
			// would have put there (per-destination arrival order is
			// preserved across runs; see msgstore.Spill). Each sink feeds
			// only its own worker's store, so the drains run concurrently —
			// serially they would put every worker's merge on the barrier's
			// critical path.
			drainErrs := make([]error, len(r.workers))
			var drainWG sync.WaitGroup
			for i, w := range r.workers {
				if w.spill == nil {
					w.swapStores()
					continue
				}
				drainWG.Add(1)
				go func() {
					defer drainWG.Done()
					if drainErrs[i] = w.spill.Drain(w.writeStore()); drainErrs[i] == nil {
						w.swapStores()
					}
				}()
			}
			drainWG.Wait()
			for _, err := range drainErrs {
				if err != nil {
					r.shutdownWorkers()
					return nil, Result{}, nil, fmt.Errorf("engine: spill drain: %w", err)
				}
			}
		}

		unhalted := 0
		for v := 0; v < n; v++ {
			if !r.halted[v] {
				unhalted++
			}
		}
		var pending int64
		for _, w := range r.workers {
			pending += w.pendingMessages()
		}
		if err := r.applyMutations(); err != nil {
			r.shutdownWorkers()
			return nil, Result{}, nil, err
		}
		if cfg.CheckpointEvery > 0 && (s+1)%cfg.CheckpointEvery == 0 {
			cpStart := time.Now()
			if err := r.takeCheckpoint(s); err != nil {
				r.shutdownWorkers()
				return nil, Result{}, nil, err
			}
			r.reg.AddPhase(metrics.PhaseCheckpoint, time.Since(cpStart))
			r.reg.Add(metrics.Checkpoints, 1)
			restoreNet = r.tr.Stats().Load()
		}
		if unhalted == 0 && pending == 0 {
			res.Converged = true
			break
		}
		if r.prog.MasterHalt != nil {
			for k, v := range merged {
				windowAgg[k] += v
			}
			if (s+1)%haltWindow == 0 {
				if r.prog.MasterHalt(s, windowAgg) {
					res.Converged = true
					break
				}
				windowAgg = make(map[string]float64)
			}
		}
	}
	res.ComputeTime = time.Since(start)
	res.Net = r.tr.Stats().Load()
	res.Executions = r.executions.Load()
	res.MaxConcurrency = r.maxConc.Load()
	for _, w := range r.workers {
		if w.mgr != nil {
			st := w.mgr.Stats()
			res.ForkSends += st.ForkSends
			res.TokenSends += st.TokenSends
		}
	}
	res.Metrics = r.reg.Snapshot()
	r.shutdownWorkers()
	return r.values, res, r.rec, nil
}

// buildOutSlots precomputes, for every vertex u and every out-neighbor
// dst, the position of u in dst's in-neighbor list (biased by one; see
// msgstore.Entry.Slot). Messages sent along out-edges — the SendToAllOut
// hot path of PageRank-style algorithms — carry the hint so the store's
// Overwrite delivery never repeats the binary search.
func (r *runner[V, M]) buildOutSlots() {
	n := r.g.NumVertices()
	r.outSlots = make([][]uint32, n)
	for u := 0; u < n; u++ {
		outs := r.g.OutNeighbors(graph.VertexID(u))
		if len(outs) == 0 {
			continue
		}
		row := make([]uint32, len(outs))
		for i, dst := range outs {
			if pos, ok := r.g.InSlot(dst, graph.VertexID(u)); ok {
				row[i] = uint32(pos) + 1
			}
		}
		r.outSlots[u] = row
	}
}

// noteBarrier converts the spread of worker finish times at superstep s's
// barrier into metrics: each worker's barrier-wait is the gap between its
// own finish and the cluster-wide last finish (zero, by construction, for
// the last finisher). Under the token-passing techniques the same spread
// also yields the token accounting — the holder's superstep time counts
// as token_hold_ns and the non-holders' barrier waits as token_idle_ns,
// quantifying §4.2's parallelism sacrifice.
func (r *runner[V, M]) noteBarrier(s int, stepStart time.Time) {
	last := r.workers[0].finish
	for _, w := range r.workers[1:] {
		if w.finish.After(last) {
			last = w.finish
		}
	}
	holder, _ := r.tokenState(s)
	var idle time.Duration
	for i, w := range r.workers {
		bw := last.Sub(w.finish)
		r.reg.AddPhase(metrics.PhaseBarrierWait, bw)
		if holder >= 0 {
			if i == holder {
				r.reg.Add(metrics.TokenHoldNs, int64(w.finish.Sub(stepStart)))
			} else {
				idle += bw
			}
		}
	}
	if holder >= 0 {
		r.reg.Add(metrics.TokenIdleNs, int64(idle))
	}
}

// applyMutations rebuilds the graph and message stores if any worker
// collected topology mutation requests this superstep. Runs at the barrier
// while the cluster is quiescent. Mutations require SyncNone: the fork
// topology and vertex classifications of the serializable techniques
// assume a static graph (§3's read sets are fixed a priori).
func (r *runner[V, M]) applyMutations() error {
	var adds []graph.Edge
	removes := make(map[edgeKey]struct{})
	for _, w := range r.workers {
		w.mutMu.Lock()
		adds = append(adds, w.mutAdds...)
		for _, k := range w.mutRemoves {
			removes[k] = struct{}{}
		}
		w.mutAdds, w.mutRemoves = nil, nil
		w.mutMu.Unlock()
	}
	if len(adds) == 0 && len(removes) == 0 {
		return nil
	}
	if r.cfg.Sync != SyncNone {
		return fmt.Errorf("engine: topology mutations require SyncNone; %v assumes a static graph", r.cfg.Sync)
	}
	// Replay needs the topology the original supersteps ran on; until the
	// next checkpoint captures a post-mutation restore point, confined
	// recovery is off the table.
	r.mutatedSince = true

	present := make(map[edgeKey]struct{}, r.g.NumEdges())
	var edges []graph.Edge
	for _, e := range r.g.Edges() {
		k := edgeKey{e.Src, e.Dst}
		if _, gone := removes[k]; gone {
			continue
		}
		if _, dup := present[k]; dup {
			continue
		}
		present[k] = struct{}{}
		edges = append(edges, e)
	}
	weighted := r.g.Weighted()
	for _, e := range adds {
		k := edgeKey{e.Src, e.Dst}
		if _, gone := removes[k]; gone {
			continue // removals win within the same superstep
		}
		if _, dup := present[k]; dup {
			continue
		}
		present[k] = struct{}{}
		edges = append(edges, e)
		weighted = weighted || e.Weight != 1
	}
	r.g = graph.NewFromEdges(r.g.NumVertices(), edges, weighted)
	if r.prog.Semantics == model.Overwrite {
		// The in-adjacency lists just changed, so every precomputed slot
		// hint is stale. Rebuilding here is safe: the cluster is quiescent
		// at the barrier (buffers empty, transport idle, no staged
		// messages), so no in-flight entry still carries an old hint.
		r.buildOutSlots()
	}

	// Rebuild the message stores against the new in-adjacency, dropping
	// Overwrite slots whose edge no longer exists.
	for _, w := range r.workers {
		for i, st := range w.stores {
			if st == nil {
				continue
			}
			entries := st.Dump()
			kept := entries[:0]
			for _, e := range entries {
				if e.Src >= 0 && !r.g.HasEdge(e.Src, e.Dst) {
					continue
				}
				kept = append(kept, e)
			}
			var owned []graph.VertexID
			for _, p := range w.parts {
				owned = append(owned, r.pm.Vertices(p)...)
			}
			ns := msgstore.New[M](r.g, owned, r.prog.Semantics, r.prog.Combine)
			ns.Load(kept)
			w.stores[i] = ns
		}
	}
	return nil
}

func (r *runner[V, M]) shutdownWorkers() {
	for _, w := range r.workers {
		close(w.startCh)
		if w.spill != nil {
			w.spill.Close()
		}
	}
}

// fullCheckpointEvery bounds a delta chain: at most this many generations
// (one full plus its deltas) ever need to be read to materialize a restore
// point.
const fullCheckpointEvery = 4

// takeCheckpoint snapshots the run after superstep s completed. The master
// calls it at the barrier, when no vertices execute and the transport is
// idle, so the captured state is consistent (§6.4). When a base generation
// exists and the dirty-vertex set is trustworthy, the generation is a delta
// carrying only the vertices written since the base; stores, halt flags,
// aggregators, and fork state are small relative to values and are always
// captured in full.
func (r *runner[V, M]) takeCheckpoint(s int) error {
	useDelta := r.dirty != nil && r.lastCheckpoint >= 0 && !r.forceFullCkpt &&
		r.gensSinceFull < fullCheckpointEvery-1
	snap := &checkpoint.Snapshot[V, M]{
		Superstep:   s,
		Base:        -1,
		NumVertices: len(r.values),
		Halted:      append([]bool(nil), r.halted...),
		AggPrev:     r.workers[0].aggPrev,
	}
	if useDelta {
		snap.Base = r.lastCheckpoint
		for v := range r.dirty {
			if !r.dirty[v].Load() {
				continue
			}
			snap.DeltaIDs = append(snap.DeltaIDs, int32(v))
			snap.DeltaValues = append(snap.DeltaValues, r.values[v])
			if r.versions != nil {
				snap.DeltaVersions = append(snap.DeltaVersions, r.versions[v].Load())
			}
		}
	} else {
		snap.Values = append([]V(nil), r.values...)
		if r.versions != nil {
			snap.Versions = make([]uint32, len(r.versions))
			for v := range r.versions {
				snap.Versions[v] = r.versions[v].Load()
			}
		}
	}
	for _, w := range r.workers {
		snap.Stores = append(snap.Stores, w.readStore().Dump())
		if w.mgr != nil {
			snap.Forks = append(snap.Forks, w.mgr.Export())
		}
	}
	if err := checkpoint.Save(checkpoint.Path(r.cfg.CheckpointDir, s), snap); err != nil {
		return err
	}
	if useDelta {
		r.gensSinceFull++
	} else {
		r.gensSinceFull = 0
	}
	r.forceFullCkpt = false
	r.lastCheckpoint = s
	r.mutatedSince = false
	for v := range r.dirty {
		r.dirty[v].Store(false)
	}
	// Everything at or before s is durable now: message logs kept for
	// confined replay and retained aggregate snapshots can shed it.
	for _, w := range r.workers {
		if w.log != nil {
			w.log.TruncateThrough(s)
		}
	}
	for k := range r.aggAt {
		if k < s {
			delete(r.aggAt, k)
		}
	}
	return nil
}

// restore loads a checkpoint generation (materializing its delta chain if
// needed) and reinstates it. Callers must present clean workers — either
// freshly constructed (the RestoreFrom path) or reset by rollback. Returns
// the superstep to resume at.
func (r *runner[V, M]) restore(path string) (int, error) {
	snap, err := checkpoint.Materialize[V, M](path)
	if err != nil {
		return 0, err
	}
	return r.restoreSnapshot(snap)
}

// restoreSnapshot reinstates a materialized (full) snapshot: values, halt
// flags, message stores, aggregators, write versions, and fork state.
// Returns the superstep to resume at.
func (r *runner[V, M]) restoreSnapshot(snap *checkpoint.Snapshot[V, M]) (int, error) {
	if len(snap.Values) != len(r.values) {
		return 0, fmt.Errorf("engine: checkpoint has %d vertices, graph has %d", len(snap.Values), len(r.values))
	}
	if len(snap.Stores) != len(r.workers) {
		return 0, fmt.Errorf("engine: checkpoint has %d workers, config has %d", len(snap.Stores), len(r.workers))
	}
	copy(r.values, snap.Values)
	copy(r.halted, snap.Halted)
	if r.versions != nil && len(snap.Versions) == len(r.versions) {
		for v := range r.versions {
			r.versions[v].Store(snap.Versions[v])
		}
	}
	for i, w := range r.workers {
		w.readStore().Load(snap.Stores[i])
		w.aggPrev = snap.AggPrev
		if w.mgr != nil && i < len(snap.Forks) {
			w.mgr.Import(snap.Forks[i])
		}
		w.recomputeUnhalted()
	}
	// The dirty-vertex set no longer describes a diff against any on-disk
	// generation, so the next checkpoint must be full.
	r.lastCheckpoint = snap.Superstep
	r.forceFullCkpt = true
	return snap.Superstep + 1, nil
}

// rollback implements Giraph-style whole-cluster recovery inside one run:
// revive the dead workers, discard all in-memory superstep state, and
// reinstate the latest checkpoint — or the initial state when none has
// been written yet. The master calls it at a barrier with the transport
// idle, so no in-flight traffic can leak across the rollback. Returns the
// superstep to resume at.
func (r *runner[V, M]) rollback() (int, error) {
	for _, wid := range r.tr.DeadWorkers() {
		r.tr.Revive(wid)
	}
	for _, w := range r.workers {
		w.buf.Clear()
		if w.spill != nil {
			w.spill.Discard()
		}
		w.stores[0].Clear()
		if w.stores[1] != nil {
			w.stores[1].Clear()
		}
		w.active.Store(0)
		w.aggMu.Lock()
		w.aggLocal = make(map[string]float64)
		w.aggPrev = make(map[string]float64)
		w.aggMu.Unlock()
		w.mutMu.Lock()
		w.mutAdds, w.mutRemoves = nil, nil
		w.mutMu.Unlock()
		// Clear any watchdog abort so flush protocols block normally again.
		w.ep.ResetAbort()
		if w.mgr != nil {
			w.mgr.ClearAbort()
		}
	}
	// The transport is idle and every store was just cleared, so zeroing
	// the credit windows (and clearing any watchdog abort) restores the
	// flow ledger's ground state for the replay.
	r.flow.Reset()
	resume := 0
	var snap *checkpoint.Snapshot[V, M]
	// Only generations this run has itself written are candidates: a
	// reused checkpoint directory may hold newer files from an earlier
	// process, and restoring one would jump the run forward past
	// supersteps it never executed.
	if r.cfg.CheckpointDir != "" && r.lastCheckpoint >= 0 {
		var skipped int
		var err error
		snap, skipped, err = checkpoint.LoadChainMax[V, M](r.cfg.CheckpointDir, r.lastCheckpoint)
		if err != nil {
			return 0, err
		}
		if skipped > 0 {
			r.reg.Add(metrics.CheckpointGensSkipped, int64(skipped))
		}
	}
	if snap != nil {
		var err error
		resume, err = r.restoreSnapshot(snap)
		if err != nil {
			return 0, err
		}
	} else {
		r.resetToInitial()
		r.lastCheckpoint = -1
		r.forceFullCkpt = true
	}
	for _, w := range r.workers {
		if w.log != nil {
			w.log.Reset(resume)
		}
	}
	for k := range r.aggAt {
		if k >= resume {
			delete(r.aggAt, k)
		}
	}
	r.reg.Add(metrics.PartitionsRestored, int64(r.cfg.Workers*r.cfg.PartitionsPerWorker))
	if r.rec != nil {
		// The discarded executions' transactions go with them: the
		// history that must be serializable is the replay from the
		// restored state.
		r.rec.Reset()
	}
	return resume, nil
}

// resetToInitial rewinds vertex state and fork distribution to superstep
// 0, for rollbacks that happen before any checkpoint exists.
func (r *runner[V, M]) resetToInitial() {
	var zero V
	for v := 0; v < r.g.NumVertices(); v++ {
		if r.prog.Init != nil {
			r.values[v] = r.prog.Init(graph.VertexID(v), r.g)
		} else {
			r.values[v] = zero
		}
		r.halted[v] = false
	}
	forkIdx := 0
	for _, w := range r.workers {
		if w.mgr != nil && forkIdx < len(r.initialForks) {
			w.mgr.Import(r.initialForks[forkIdx])
			forkIdx++
		}
		w.recomputeUnhalted()
	}
}

// confinedEligible decides whether the crash detected at superstep s's
// barrier can be recovered by confined replay (only the crashed workers'
// partitions roll back) instead of a full rollback. Confinement requires:
// the mode is enabled; the watchdog did not declare a stall (a stall means
// in-memory protocol state is suspect everywhere); no topology mutation
// since the last checkpoint (replay needs the topology the originals ran
// on); at least one survivor; every dead worker was already dead when the
// superstep dispatched (a mid-superstep crash leaks partial sends into
// healthy state); and every healthy worker's message log still covers the
// replay window.
func (r *runner[V, M]) confinedEligible(dead, deadAtStart []cluster.WorkerID, stalled bool) bool {
	if r.cfg.Recovery != RecoverConfined || stalled || r.mutatedSince {
		return false
	}
	// BAP has no global superstep barriers, so the replay dispatch protocol
	// (re-running superstep k on the dead workers while the healthy ones
	// idle) does not apply; only full rollback is available there.
	if r.cfg.Mode == BAP {
		return false
	}
	// Under async modes the replay is not an exact reconstruction — logged
	// messages that were dropped on the wire change the re-execution — so
	// the dead workers' regenerated sends are delivered to healthy workers
	// as semantic duplicates, and injected log entries can reach a replayed
	// vertex EARLIER than any fault-free timeline would have delivered
	// them. Overwrite (latest value wins) and Combine (idempotent fold)
	// absorb duplicates and tolerate early supersets — provided Compute
	// never conditions its sends on the *absence* of messages (a
	// superstep- or value-based bootstrap guard is replay-safe; a
	// len(msgs)==0 guard is not). Queue semantics would count a message
	// twice, so those programs get a full rollback instead.
	if r.cfg.Mode != BSP && r.prog.Semantics == model.Queue {
		return false
	}
	if len(dead) >= len(r.workers) {
		return false
	}
	atStart := make(map[cluster.WorkerID]bool, len(deadAtStart))
	for _, wid := range deadAtStart {
		atStart[wid] = true
	}
	deadSet := make(map[int]bool, len(dead))
	for _, wid := range dead {
		if !atStart[wid] {
			return false
		}
		deadSet[int(wid)] = true
	}
	for i, w := range r.workers {
		if deadSet[i] {
			continue
		}
		if w.log == nil || !w.log.Covers(r.lastCheckpoint+1) {
			return false
		}
	}
	return true
}

// confinedRecover rolls back only the dead workers' partitions to the last
// checkpoint (or the initial state when none exists) and replays supersteps
// lastCheckpoint+1..s on them: healthy workers' sends come from their
// message logs, and the dead workers recompute their own executions.
// Healthy partitions keep their in-memory state throughout. Returns
// (false, nil) when the checkpoint chain turned out to be unusable — the
// caller then falls back to a full rollback, which is why nothing is
// mutated before validation passes.
func (r *runner[V, M]) confinedRecover(res *Result, s int, dead []cluster.WorkerID) (bool, error) {
	c := r.lastCheckpoint
	var snap *checkpoint.Snapshot[V, M]
	if c >= 0 {
		var skipped int
		var err error
		// Bounded like rollback's restore: a reused directory's newer
		// foreign generations must not shadow the checkpoint this run took.
		snap, skipped, err = checkpoint.LoadChainMax[V, M](r.cfg.CheckpointDir, c)
		if skipped > 0 {
			r.reg.Add(metrics.CheckpointGensSkipped, int64(skipped))
		}
		if err != nil {
			return false, err
		}
		if snap == nil || snap.Superstep != c ||
			len(snap.Values) != len(r.values) || len(snap.Stores) != len(r.workers) {
			// The generation the run believes in is gone or corrupt; let the
			// full rollback walk the fallback chain instead.
			return false, nil
		}
	}
	deadSet := make(map[int]bool, len(dead))
	for _, wid := range dead {
		deadSet[int(wid)] = true
	}
	for _, wid := range dead {
		r.tr.Revive(wid)
	}

	// For the fork-based techniques, the healthy side of every dead–healthy
	// edge is authoritative: at a quiescent barrier all philosophers are
	// thinking and all held forks are dirty, so mirroring the live export
	// reconstructs a consistent pair. Dead–dead edges come from the
	// checkpoint (or initial distribution), which stores both ends
	// consistently.
	var healthyForks []map[chandy.PhilID]map[chandy.PhilID]byte
	if r.cfg.Sync == PartitionLock || r.cfg.Sync == VertexLockGiraph {
		healthyForks = make([]map[chandy.PhilID]map[chandy.PhilID]byte, len(r.workers))
		for i, w := range r.workers {
			if !deadSet[i] && w.mgr != nil {
				healthyForks[i] = w.mgr.Export()
			}
		}
	}

	deadParts := 0
	for d, w := range r.workers {
		if !deadSet[d] {
			continue
		}
		deadParts += len(w.parts)
		w.buf.Clear()
		if w.spill != nil {
			// Batches staged from the discarded supersteps' arrivals are
			// superseded by the log replay's re-injections.
			w.spill.Discard()
		}
		w.stores[0].Clear()
		if w.stores[1] != nil {
			w.stores[1].Clear()
		}
		w.aggMu.Lock()
		w.aggLocal = make(map[string]float64)
		w.aggMu.Unlock()
		w.mutMu.Lock()
		w.mutAdds, w.mutRemoves = nil, nil
		w.mutMu.Unlock()
		for _, p := range w.parts {
			for _, v := range r.pm.Vertices(p) {
				vi := int(v)
				if snap != nil {
					r.values[vi] = snap.Values[vi]
					r.halted[vi] = snap.Halted[vi]
					if r.versions != nil && len(snap.Versions) == len(r.versions) {
						r.versions[vi].Store(snap.Versions[vi])
					}
				} else {
					if r.prog.Init != nil {
						r.values[vi] = r.prog.Init(v, r.g)
					} else {
						var zero V
						r.values[vi] = zero
					}
					r.halted[vi] = false
				}
			}
		}
		if snap != nil {
			w.readStore().Load(snap.Stores[d])
		}
		if healthyForks != nil && w.mgr != nil {
			var base map[chandy.PhilID]map[chandy.PhilID]byte
			if snap != nil && d < len(snap.Forks) {
				base = snap.Forks[d]
			} else if d < len(r.initialForks) {
				base = r.initialForks[d]
			}
			state := make(map[chandy.PhilID]map[chandy.PhilID]byte, len(base))
			for pid, peers := range base {
				row := make(map[chandy.PhilID]byte, len(peers))
				for qid, st := range peers {
					if qw := r.philOwner(qid); !deadSet[qw] && healthyForks[qw] != nil {
						st = chandy.Mirror(healthyForks[qw][qid][pid])
					}
					row[qid] = st
				}
				state[pid] = row
			}
			w.mgr.Import(state)
		}
		w.recomputeUnhalted()
		if w.log != nil {
			// The dead worker re-logs its sends as it replays.
			w.log.Rewind(c + 1)
		}
	}

	replayed := int64(0)
	r.replayDest = make([]bool, len(r.workers))
	for d := range r.workers {
		r.replayDest[d] = deadSet[d]
	}
	r.replayFrontier = s
	r.replaying.Store(true)
	for k := c + 1; k <= s; k++ {
		prev := r.prevAgg(k-1, snap)
		for d, w := range r.workers {
			if !deadSet[d] {
				continue
			}
			w.aggPrev = prev
			// Logged step-k entries are injected BEFORE replay pass k. For
			// BSP they land in the write store, readable only after the
			// swap — the exact original schedule. For async they become
			// visible at pass k, possibly EARLIER than the original eager
			// delivery managed mid-pass — and an entry logged at step k by
			// an earlier recovery's replay may even descend from this
			// worker's own discarded step-k sends. Early delivery of a
			// superset is the contract async confined replay imposes on
			// programs: Compute may not condition sends on the *absence*
			// of messages (see the eligibility note above) — one-shot
			// reads like greedy coloring need the replicas by pass k, and
			// monotone folds only ever benefit from seeing more sooner.
			for h, hw := range r.workers {
				if deadSet[h] || hw.log == nil {
					continue
				}
				if ents := hw.log.Entries(k, d); len(ents) > 0 {
					w.writeStore().PutBatch(ents)
					replayed += int64(len(ents))
				}
			}
		}
		for d, w := range r.workers {
			if deadSet[d] {
				w.startCh <- k
			}
		}
		for d, w := range r.workers {
			if deadSet[d] {
				<-w.doneCh
			}
		}
		r.tr.WaitIdle()
		if k < s {
			for d, w := range r.workers {
				if !deadSet[d] {
					continue
				}
				if r.cfg.Mode == BSP {
					if w.spill != nil {
						// Replay arrivals staged through the sink merge in
						// before the swap, mirroring the main loop.
						if err := w.spill.Drain(w.writeStore()); err != nil {
							r.replaying.Store(false)
							r.replayDest = nil
							return false, err
						}
					}
					w.swapStores()
				}
				// The originals of these aggregates and mutation intents were
				// already merged/applied at the original barriers; the
				// replay's copies must not count twice. Superstep s's are
				// kept — the caller falls through to the normal barrier
				// processing, which consumes them alongside the healthy
				// workers'.
				w.aggMu.Lock()
				w.aggLocal = make(map[string]float64)
				w.aggMu.Unlock()
				w.mutMu.Lock()
				w.mutAdds, w.mutRemoves = nil, nil
				w.mutMu.Unlock()
			}
		}
	}
	r.replaying.Store(false)
	r.replayDest = nil

	r.reg.Add(metrics.PartitionsRestored, int64(deadParts))
	r.reg.Add(metrics.MessagesReplayed, replayed)
	r.reg.Add(metrics.ConfinedRecoveries, 1)
	res.ConfinedRecoveries++
	res.RecomputedSupersteps += s - c
	res.RecomputedPartitionSupersteps += (s - c) * deadParts
	if r.rec != nil {
		// The crashed workers' discarded executions take their transactions
		// with them; replay executions are suppressed from recording, so the
		// history restarts clean from superstep s+1.
		r.rec.Reset()
	}
	return true, nil
}

// prevAgg returns the merged aggregates of superstep k, which replay feeds
// to superstep k+1 as its aggPrev: the retained ring first, then the
// checkpoint's capture, then empty (k before the first superstep).
func (r *runner[V, M]) prevAgg(k int, snap *checkpoint.Snapshot[V, M]) map[string]float64 {
	if k < 0 {
		return make(map[string]float64)
	}
	if a, ok := r.aggAt[k]; ok {
		return a
	}
	if snap != nil && k == snap.Superstep && snap.AggPrev != nil {
		return snap.AggPrev
	}
	return make(map[string]float64)
}

// philOwner maps a philosopher ID to the worker hosting it: partitions are
// the philosophers under PartitionLock, vertices under VertexLockGiraph.
func (r *runner[V, M]) philOwner(id chandy.PhilID) int {
	if r.cfg.Sync == PartitionLock {
		return r.pm.WorkerOfPartition(partition.ID(id))
	}
	return r.pm.WorkerOf(graph.VertexID(id))
}

// collectWorkers waits for every worker to reach superstep s's barrier.
// With no watchdog configured it blocks indefinitely (the pre-watchdog
// behavior). With one, a worker that has not finished within the deadline
// is declared stalled: the watchdog kills the unfinished workers (their
// state is suspect — typically a lost control message wedged them
// mid-protocol) and aborts every manager and endpoint so blocked
// fork-acquires and flush-waits return and the barrier completes. The
// caller then runs recovery exactly as for a crash. Returns whether the
// watchdog fired.
func (r *runner[V, M]) collectWorkers() bool {
	if r.cfg.WatchdogTimeout <= 0 {
		for _, w := range r.workers {
			<-w.doneCh
		}
		return false
	}
	done := make(chan int, len(r.workers))
	for i, w := range r.workers {
		go func(i int, w *worker[V, M]) {
			<-w.doneCh
			done <- i
		}(i, w)
	}
	finished := make([]bool, len(r.workers))
	remaining := len(r.workers)
	timer := time.NewTimer(r.cfg.WatchdogTimeout)
	defer timer.Stop()
	fired := false
	for remaining > 0 {
		select {
		case i := <-done:
			finished[i] = true
			remaining--
		case <-timer.C:
			// Workers may have finished concurrently with the timer firing;
			// drain those before judging. Declaring a stall on a run that
			// actually completed would poison healthy state.
			draining := true
			for draining && remaining > 0 {
				select {
				case i := <-done:
					finished[i] = true
					remaining--
				default:
					draining = false
				}
			}
			if remaining == 0 {
				break
			}
			fired = true
			for i := range r.workers {
				if !finished[i] {
					r.tr.Kill(cluster.WorkerID(i))
				}
			}
			for _, w := range r.workers {
				w.ep.Abort()
				if w.mgr != nil {
					w.mgr.Abort()
				}
			}
			// Senders blocked awaiting credit would never reach the
			// barrier either; wake them alongside the flush waits.
			r.flow.Abort()
		}
	}
	return fired
}

// tokenState reports the token positions at superstep s. Under TokenSingle
// the global token rotates among workers every superstep (§4.2). Under
// TokenDual every worker's local token steps through its partitions each
// superstep while the global token stays with one worker for
// PartitionsPerWorker consecutive supersteps (§5.3), so every mixed
// boundary vertex of the holder gets a superstep with both tokens.
// Partition placement is round-robin, so every worker owns exactly
// PartitionsPerWorker partitions and the schedule is uniform.
func (r *runner[V, M]) tokenState(s int) (globalHolder, localIdx int) {
	switch r.cfg.Sync {
	case TokenSingle:
		return s % r.cfg.Workers, -1
	case TokenDual:
		k := r.cfg.PartitionsPerWorker
		return (s / k) % r.cfg.Workers, s % k
	default:
		return -1, -1
	}
}

func (r *runner[V, M]) mergeAggregators() map[string]float64 {
	merged := make(map[string]float64)
	for _, w := range r.workers {
		for k, v := range w.aggLocal {
			merged[k] += v
		}
		w.aggLocal = make(map[string]float64)
	}
	for _, w := range r.workers {
		w.aggPrev = merged
	}
	return merged
}

// noteUnitStart/End track how many partitions execute concurrently.
func (r *runner[V, M]) noteUnitStart() {
	c := r.concurrency.Add(1)
	for {
		m := r.maxConc.Load()
		if c <= m || r.maxConc.CompareAndSwap(m, c) {
			break
		}
	}
}

func (r *runner[V, M]) noteUnitEnd() { r.concurrency.Add(-1) }
