package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/checkpoint"
	"serialgraph/internal/metrics"
	"serialgraph/internal/msgstore"

	"serialgraph/internal/cluster"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// runner holds the state shared by the master and all workers of one run.
type runner[V, M any] struct {
	g    *graph.Graph
	prog model.Program[V, M]
	cfg  Config
	pm   *partition.Map
	tr   *cluster.Transport
	reg  *metrics.Registry

	workers []*worker[V, M]

	// values is the primary copy of every vertex value; each slot is
	// written only by executions of its vertex, which the engine (and the
	// synchronization technique) never runs concurrently with itself.
	values []V
	halted []bool

	// classes is computed for token techniques only (§5.3).
	classes []partition.Class

	// pBoundary is computed for VertexLockGiraph only: per-vertex
	// p-boundary flags (Definition 4), precomputed once instead of walking
	// both adjacency lists per vertex per superstep.
	pBoundary []bool

	// outSlots is computed for Overwrite semantics only: outSlots[u][i] is
	// the in-slot position (biased by one; see msgstore.Entry.Slot) of u in
	// the in-neighbor list of u's i-th out-neighbor. SendToAllOut attaches
	// it to every message so the store never repeats the per-delivery
	// binary search InSlot would do. Rebuilt on topology mutation.
	outSlots [][]uint32

	// initialForks snapshots each lock manager's fresh fork distribution
	// (captured before the first superstep) so a rollback with no
	// checkpoint on disk can reset the Chandy–Misra state along with the
	// vertex state. Indexed like workers; nil when faults are off or the
	// technique has no managers.
	initialForks []map[chandy.PhilID]map[chandy.PhilID]byte

	// versions tracks per-vertex write versions when history is recorded.
	versions []atomic.Uint32

	// batchPool recycles emitted remote-batch slices: a receiver drops its
	// spent batch here after PutBatch, and every worker's buffer cache
	// restarts its next batch from the pool. Only safe when recycleBatches
	// is set — with fault injection active the transport may duplicate a
	// delivery (at-least-once), and a recycled slice would alias the copy
	// still on the wire.
	batchPool      sync.Pool
	recycleBatches bool
	rec            *history.Recorder

	executions  atomic.Int64
	concurrency atomic.Int64
	maxConc     atomic.Int64
}

// Run executes prog over g under cfg and returns the final vertex values.
// When cfg.TrackHistory is set, the returned recorder holds the
// transaction log for serializability checking.
func Run[V, M any](g *graph.Graph, prog model.Program[V, M], cfg Config) ([]V, Result, *history.Recorder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, Result{}, nil, err
	}

	p := cfg.Workers * cfg.PartitionsPerWorker
	var pm *partition.Map
	if cfg.Partitioner != nil {
		pm = cfg.Partitioner(g, p, cfg.Workers)
	} else {
		pm = partition.NewHash(g, p, cfg.Workers, cfg.Seed)
	}

	r := &runner[V, M]{g: g, prog: prog, cfg: cfg, pm: pm, reg: cfg.Metrics}
	if r.reg == nil {
		r.reg = metrics.New()
	}
	n := g.NumVertices()
	r.values = make([]V, n)
	r.halted = make([]bool, n)
	if prog.Init != nil {
		for v := 0; v < n; v++ {
			r.values[v] = prog.Init(graph.VertexID(v), g)
		}
	}
	if cfg.TrackHistory {
		r.versions = make([]atomic.Uint32, n)
		r.rec = history.NewRecorder()
	}
	if cfg.Sync == TokenSingle || cfg.Sync == TokenDual {
		r.classes = partition.Classify(g, pm)
	}
	if cfg.Sync == VertexLockGiraph {
		r.pBoundary = partition.PBoundaryFlags(g, pm)
	}
	if prog.Semantics == model.Overwrite {
		r.buildOutSlots()
	}
	r.tr = cluster.New(cfg.Workers, cfg.Latency)
	defer r.tr.Close()
	r.recycleBatches = cfg.Fault == nil
	if cfg.Fault != nil {
		cfg.Fault.Attach(r.tr)
	}

	var partNeighbors [][]partition.ID
	if cfg.Sync == PartitionLock {
		partNeighbors = pm.Neighbors(g)
	}
	for w := 0; w < cfg.Workers; w++ {
		r.workers = append(r.workers, newWorker(r, w))
	}
	switch cfg.Sync {
	case PartitionLock:
		for _, w := range r.workers {
			w.initLockManager(partNeighbors)
		}
	case VertexLockGiraph:
		for _, w := range r.workers {
			w.initVertexLockManager()
		}
	}
	if cfg.Fault != nil {
		for _, w := range r.workers {
			if w.mgr != nil {
				r.initialForks = append(r.initialForks, w.mgr.Export())
			}
		}
	}
	startSuperstep := 0
	if cfg.RestoreFrom != "" {
		s0, err := r.restore(cfg.RestoreFrom)
		if err != nil {
			r.tr.Close()
			return nil, Result{}, nil, err
		}
		startSuperstep = s0
	}
	start := time.Now()
	res := Result{Partitions: p}
	if cfg.Mode == BAP {
		r.runBAP(&res)
		res.ComputeTime = time.Since(start)
		res.Net = r.tr.Stats().Load()
		res.Executions = r.executions.Load()
		res.MaxConcurrency = r.maxConc.Load()
		for _, w := range r.workers {
			close(w.startCh)
			if w.mgr != nil {
				st := w.mgr.Stats()
				res.ForkSends += st.ForkSends
				res.TokenSends += st.TokenSends
			}
		}
		res.Metrics = r.reg.Snapshot()
		return r.values, res, r.rec, nil
	}
	for _, w := range r.workers {
		go w.loop()
	}
	// restoreNet is the traffic snapshot at the current restore point (run
	// start, then each checkpoint); a rollback charges everything sent
	// since it to Result.WastedMessages.
	restoreNet := r.tr.Stats().Load()
	// Token techniques execute only the token holder's vertices in any one
	// superstep, so a single superstep's aggregates cover a fraction of the
	// graph and a MasterHalt tolerance test on them would fire spuriously
	// (an idle worker's superstep aggregates to zero). MasterHalt is
	// therefore consulted once per full token rotation, on the aggregates
	// accumulated across the whole window.
	haltWindow := 1
	switch cfg.Sync {
	case TokenSingle:
		haltWindow = cfg.Workers
	case TokenDual:
		haltWindow = cfg.Workers * cfg.PartitionsPerWorker
	}
	windowAgg := make(map[string]float64)
	for s := startSuperstep; s < cfg.MaxSupersteps; s++ {
		if cfg.Fault != nil {
			cfg.Fault.BeginSuperstep(s)
		}
		stepStart := time.Now()
		execsBefore := r.executions.Load()
		netBefore := r.tr.Stats().Load()
		var phaseBefore metrics.Snapshot
		if cfg.DetailedStats {
			phaseBefore = r.reg.Snapshot()
		}
		for _, w := range r.workers {
			w.startCh <- s
		}
		for _, w := range r.workers {
			<-w.doneCh
		}
		r.tr.WaitIdle()
		// Superstep metrics are recorded before the failure check: a
		// superstep a rollback later discards was still executed, so the
		// supersteps counter can exceed Result.Supersteps on faulty runs.
		stepWall := time.Since(stepStart)
		r.reg.Add(metrics.Supersteps, 1)
		r.reg.Observe(metrics.HistSuperstepWall, int64(stepWall))
		r.noteBarrier(s, stepStart)

		// Failure detection at the barrier (§6.4): in a real Giraph
		// deployment the master notices a missed heartbeat; in the
		// simulation the transport's aliveness registry plays that role.
		// The check runs before any superstep side effects commit
		// (aggregator merge, store swap, checkpoint), so a checkpoint can
		// never capture a superstep a dead worker participated in.
		if dead := r.tr.DeadWorkers(); len(dead) > 0 {
			res.Rollbacks++
			r.reg.Add(metrics.Rollbacks, 1)
			if res.Rollbacks > cfg.MaxRollbacks {
				r.shutdownWorkers()
				return nil, Result{}, nil, fmt.Errorf("engine: workers %v still failing after %d rollbacks (MaxRollbacks)", dead, cfg.MaxRollbacks)
			}
			res.WastedMessages += r.tr.Stats().Load().DataMessages - restoreNet.DataMessages
			resume, err := r.rollback()
			if err != nil {
				r.shutdownWorkers()
				return nil, Result{}, nil, err
			}
			res.RecomputedSupersteps += s + 1 - resume
			restoreNet = r.tr.Stats().Load()
			windowAgg = make(map[string]float64) // discarded supersteps replay
			s = resume - 1                       // the loop increment lands on resume
			continue
		}
		res.Supersteps = s + 1
		if cfg.DetailedStats {
			net := r.tr.Stats().Load().Sub(netBefore)
			cur := r.reg.Snapshot()
			res.SuperstepStats = append(res.SuperstepStats, SuperstepStat{
				Duration:        stepWall,
				Executions:      r.executions.Load() - execsBefore,
				DataMsgs:        net.DataMessages,
				CtrlMsgs:        net.ControlMessages,
				ComputeNs:       cur.PhaseNs[metrics.PhaseCompute] - phaseBefore.PhaseNs[metrics.PhaseCompute],
				LocalDeliveryNs: cur.PhaseNs[metrics.PhaseLocalDelivery] - phaseBefore.PhaseNs[metrics.PhaseLocalDelivery],
				RemoteFlushNs:   cur.PhaseNs[metrics.PhaseRemoteFlush] - phaseBefore.PhaseNs[metrics.PhaseRemoteFlush],
				BarrierWaitNs:   cur.PhaseNs[metrics.PhaseBarrierWait] - phaseBefore.PhaseNs[metrics.PhaseBarrierWait],
			})
		}

		merged := r.mergeAggregators()
		if cfg.Mode == BSP {
			for _, w := range r.workers {
				w.swapStores()
			}
		}

		unhalted := 0
		for v := 0; v < n; v++ {
			if !r.halted[v] {
				unhalted++
			}
		}
		var pending int64
		for _, w := range r.workers {
			pending += w.pendingMessages()
		}
		if err := r.applyMutations(); err != nil {
			r.shutdownWorkers()
			return nil, Result{}, nil, err
		}
		if cfg.CheckpointEvery > 0 && (s+1)%cfg.CheckpointEvery == 0 {
			cpStart := time.Now()
			if err := r.takeCheckpoint(s); err != nil {
				r.shutdownWorkers()
				return nil, Result{}, nil, err
			}
			r.reg.AddPhase(metrics.PhaseCheckpoint, time.Since(cpStart))
			r.reg.Add(metrics.Checkpoints, 1)
			restoreNet = r.tr.Stats().Load()
		}
		if unhalted == 0 && pending == 0 {
			res.Converged = true
			break
		}
		if r.prog.MasterHalt != nil {
			for k, v := range merged {
				windowAgg[k] += v
			}
			if (s+1)%haltWindow == 0 {
				if r.prog.MasterHalt(s, windowAgg) {
					res.Converged = true
					break
				}
				windowAgg = make(map[string]float64)
			}
		}
	}
	res.ComputeTime = time.Since(start)
	res.Net = r.tr.Stats().Load()
	res.Executions = r.executions.Load()
	res.MaxConcurrency = r.maxConc.Load()
	for _, w := range r.workers {
		if w.mgr != nil {
			st := w.mgr.Stats()
			res.ForkSends += st.ForkSends
			res.TokenSends += st.TokenSends
		}
	}
	res.Metrics = r.reg.Snapshot()
	r.shutdownWorkers()
	return r.values, res, r.rec, nil
}

// buildOutSlots precomputes, for every vertex u and every out-neighbor
// dst, the position of u in dst's in-neighbor list (biased by one; see
// msgstore.Entry.Slot). Messages sent along out-edges — the SendToAllOut
// hot path of PageRank-style algorithms — carry the hint so the store's
// Overwrite delivery never repeats the binary search.
func (r *runner[V, M]) buildOutSlots() {
	n := r.g.NumVertices()
	r.outSlots = make([][]uint32, n)
	for u := 0; u < n; u++ {
		outs := r.g.OutNeighbors(graph.VertexID(u))
		if len(outs) == 0 {
			continue
		}
		row := make([]uint32, len(outs))
		for i, dst := range outs {
			if pos, ok := r.g.InSlot(dst, graph.VertexID(u)); ok {
				row[i] = uint32(pos) + 1
			}
		}
		r.outSlots[u] = row
	}
}

// noteBarrier converts the spread of worker finish times at superstep s's
// barrier into metrics: each worker's barrier-wait is the gap between its
// own finish and the cluster-wide last finish (zero, by construction, for
// the last finisher). Under the token-passing techniques the same spread
// also yields the token accounting — the holder's superstep time counts
// as token_hold_ns and the non-holders' barrier waits as token_idle_ns,
// quantifying §4.2's parallelism sacrifice.
func (r *runner[V, M]) noteBarrier(s int, stepStart time.Time) {
	last := r.workers[0].finish
	for _, w := range r.workers[1:] {
		if w.finish.After(last) {
			last = w.finish
		}
	}
	holder, _ := r.tokenState(s)
	var idle time.Duration
	for i, w := range r.workers {
		bw := last.Sub(w.finish)
		r.reg.AddPhase(metrics.PhaseBarrierWait, bw)
		if holder >= 0 {
			if i == holder {
				r.reg.Add(metrics.TokenHoldNs, int64(w.finish.Sub(stepStart)))
			} else {
				idle += bw
			}
		}
	}
	if holder >= 0 {
		r.reg.Add(metrics.TokenIdleNs, int64(idle))
	}
}

// applyMutations rebuilds the graph and message stores if any worker
// collected topology mutation requests this superstep. Runs at the barrier
// while the cluster is quiescent. Mutations require SyncNone: the fork
// topology and vertex classifications of the serializable techniques
// assume a static graph (§3's read sets are fixed a priori).
func (r *runner[V, M]) applyMutations() error {
	var adds []graph.Edge
	removes := make(map[edgeKey]struct{})
	for _, w := range r.workers {
		w.mutMu.Lock()
		adds = append(adds, w.mutAdds...)
		for _, k := range w.mutRemoves {
			removes[k] = struct{}{}
		}
		w.mutAdds, w.mutRemoves = nil, nil
		w.mutMu.Unlock()
	}
	if len(adds) == 0 && len(removes) == 0 {
		return nil
	}
	if r.cfg.Sync != SyncNone {
		return fmt.Errorf("engine: topology mutations require SyncNone; %v assumes a static graph", r.cfg.Sync)
	}

	present := make(map[edgeKey]struct{}, r.g.NumEdges())
	var edges []graph.Edge
	for _, e := range r.g.Edges() {
		k := edgeKey{e.Src, e.Dst}
		if _, gone := removes[k]; gone {
			continue
		}
		if _, dup := present[k]; dup {
			continue
		}
		present[k] = struct{}{}
		edges = append(edges, e)
	}
	weighted := r.g.Weighted()
	for _, e := range adds {
		k := edgeKey{e.Src, e.Dst}
		if _, gone := removes[k]; gone {
			continue // removals win within the same superstep
		}
		if _, dup := present[k]; dup {
			continue
		}
		present[k] = struct{}{}
		edges = append(edges, e)
		weighted = weighted || e.Weight != 1
	}
	r.g = graph.NewFromEdges(r.g.NumVertices(), edges, weighted)
	if r.prog.Semantics == model.Overwrite {
		// The in-adjacency lists just changed, so every precomputed slot
		// hint is stale. Rebuilding here is safe: the cluster is quiescent
		// at the barrier (buffers empty, transport idle, no staged
		// messages), so no in-flight entry still carries an old hint.
		r.buildOutSlots()
	}

	// Rebuild the message stores against the new in-adjacency, dropping
	// Overwrite slots whose edge no longer exists.
	for _, w := range r.workers {
		for i, st := range w.stores {
			if st == nil {
				continue
			}
			entries := st.Dump()
			kept := entries[:0]
			for _, e := range entries {
				if e.Src >= 0 && !r.g.HasEdge(e.Src, e.Dst) {
					continue
				}
				kept = append(kept, e)
			}
			var owned []graph.VertexID
			for _, p := range w.parts {
				owned = append(owned, r.pm.Vertices(p)...)
			}
			ns := msgstore.New[M](r.g, owned, r.prog.Semantics, r.prog.Combine)
			ns.Load(kept)
			w.stores[i] = ns
		}
	}
	return nil
}

func (r *runner[V, M]) shutdownWorkers() {
	for _, w := range r.workers {
		close(w.startCh)
	}
}

// takeCheckpoint snapshots the run after superstep s completed. The master
// calls it at the barrier, when no vertices execute and the transport is
// idle, so the captured state is consistent (§6.4).
func (r *runner[V, M]) takeCheckpoint(s int) error {
	snap := &checkpoint.Snapshot[V, M]{
		Superstep: s,
		Values:    append([]V(nil), r.values...),
		Halted:    append([]bool(nil), r.halted...),
		AggPrev:   r.workers[0].aggPrev,
	}
	if r.versions != nil {
		snap.Versions = make([]uint32, len(r.versions))
		for v := range r.versions {
			snap.Versions[v] = r.versions[v].Load()
		}
	}
	for _, w := range r.workers {
		snap.Stores = append(snap.Stores, w.readStore().Dump())
		if w.mgr != nil {
			snap.Forks = append(snap.Forks, w.mgr.Export())
		}
	}
	return checkpoint.Save(checkpoint.Path(r.cfg.CheckpointDir, s), snap)
}

// restore loads a checkpoint and reinstates values, halt flags, message
// stores, aggregators, write versions, and fork state. Callers must
// present clean workers — either freshly constructed (the RestoreFrom
// path) or reset by rollback. Returns the superstep to resume at.
func (r *runner[V, M]) restore(path string) (int, error) {
	snap, err := checkpoint.Load[V, M](path)
	if err != nil {
		return 0, err
	}
	if len(snap.Values) != len(r.values) {
		return 0, fmt.Errorf("engine: checkpoint has %d vertices, graph has %d", len(snap.Values), len(r.values))
	}
	if len(snap.Stores) != len(r.workers) {
		return 0, fmt.Errorf("engine: checkpoint has %d workers, config has %d", len(snap.Stores), len(r.workers))
	}
	copy(r.values, snap.Values)
	copy(r.halted, snap.Halted)
	if r.versions != nil && len(snap.Versions) == len(r.versions) {
		for v := range r.versions {
			r.versions[v].Store(snap.Versions[v])
		}
	}
	for i, w := range r.workers {
		w.readStore().Load(snap.Stores[i])
		w.aggPrev = snap.AggPrev
		if w.mgr != nil && i < len(snap.Forks) {
			w.mgr.Import(snap.Forks[i])
		}
		w.recomputeUnhalted()
	}
	return snap.Superstep + 1, nil
}

// rollback implements Giraph-style whole-cluster recovery inside one run:
// revive the dead workers, discard all in-memory superstep state, and
// reinstate the latest checkpoint — or the initial state when none has
// been written yet. The master calls it at a barrier with the transport
// idle, so no in-flight traffic can leak across the rollback. Returns the
// superstep to resume at.
func (r *runner[V, M]) rollback() (int, error) {
	for _, wid := range r.tr.DeadWorkers() {
		r.tr.Revive(wid)
	}
	for _, w := range r.workers {
		w.buf.Clear()
		w.stores[0].Clear()
		if w.stores[1] != nil {
			w.stores[1].Clear()
		}
		w.active.Store(0)
		w.aggMu.Lock()
		w.aggLocal = make(map[string]float64)
		w.aggPrev = make(map[string]float64)
		w.aggMu.Unlock()
		w.mutMu.Lock()
		w.mutAdds, w.mutRemoves = nil, nil
		w.mutMu.Unlock()
	}
	resume := 0
	latest := ""
	if r.cfg.CheckpointDir != "" {
		var err error
		latest, err = checkpoint.Latest(r.cfg.CheckpointDir)
		if err != nil {
			return 0, err
		}
	}
	if latest != "" {
		var err error
		resume, err = r.restore(latest)
		if err != nil {
			return 0, err
		}
	} else {
		r.resetToInitial()
	}
	if r.rec != nil {
		// The discarded executions' transactions go with them: the
		// history that must be serializable is the replay from the
		// restored state.
		r.rec.Reset()
	}
	return resume, nil
}

// resetToInitial rewinds vertex state and fork distribution to superstep
// 0, for rollbacks that happen before any checkpoint exists.
func (r *runner[V, M]) resetToInitial() {
	var zero V
	for v := 0; v < r.g.NumVertices(); v++ {
		if r.prog.Init != nil {
			r.values[v] = r.prog.Init(graph.VertexID(v), r.g)
		} else {
			r.values[v] = zero
		}
		r.halted[v] = false
	}
	forkIdx := 0
	for _, w := range r.workers {
		if w.mgr != nil && forkIdx < len(r.initialForks) {
			w.mgr.Import(r.initialForks[forkIdx])
			forkIdx++
		}
		w.recomputeUnhalted()
	}
}

// tokenState reports the token positions at superstep s. Under TokenSingle
// the global token rotates among workers every superstep (§4.2). Under
// TokenDual every worker's local token steps through its partitions each
// superstep while the global token stays with one worker for
// PartitionsPerWorker consecutive supersteps (§5.3), so every mixed
// boundary vertex of the holder gets a superstep with both tokens.
// Partition placement is round-robin, so every worker owns exactly
// PartitionsPerWorker partitions and the schedule is uniform.
func (r *runner[V, M]) tokenState(s int) (globalHolder, localIdx int) {
	switch r.cfg.Sync {
	case TokenSingle:
		return s % r.cfg.Workers, -1
	case TokenDual:
		k := r.cfg.PartitionsPerWorker
		return (s / k) % r.cfg.Workers, s % k
	default:
		return -1, -1
	}
}

func (r *runner[V, M]) mergeAggregators() map[string]float64 {
	merged := make(map[string]float64)
	for _, w := range r.workers {
		for k, v := range w.aggLocal {
			merged[k] += v
		}
		w.aggLocal = make(map[string]float64)
	}
	for _, w := range r.workers {
		w.aggPrev = merged
	}
	return merged
}

// noteUnitStart/End track how many partitions execute concurrently.
func (r *runner[V, M]) noteUnitStart() {
	c := r.concurrency.Add(1)
	for {
		m := r.maxConc.Load()
		if c <= m || r.maxConc.CompareAndSwap(m, c) {
			break
		}
	}
}

func (r *runner[V, M]) noteUnitEnd() { r.concurrency.Add(-1) }
