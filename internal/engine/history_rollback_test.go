package engine

// Regression tests for the Recorder/rollback interaction: a mid-run
// rollback calls history.Recorder.Reset to discard the abandoned
// timeline's transactions, and the recorder's logical clock must NOT be
// rewound with them — otherwise replayed executions would reuse ticks
// from the discarded timeline and the C2 interval sweep could pair a
// live transaction with a ghost.

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/fault"
	"serialgraph/internal/history"
)

func TestRollbackHistoryTicksStayMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	g := undirected(chaosGraph(t))

	inj := fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 2, AtSuperstep: 1}}})
	cfg := Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 9,
		CheckpointEvery: 1, CheckpointDir: t.TempDir(),
		TrackHistory: true,
		Fault:        inj,
	}
	_, res, rec, err := Run(g, algorithms.Coloring(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks < 1 {
		t.Fatalf("Rollbacks = %d, want >= 1", res.Rollbacks)
	}

	// The rollback reset the recorder, and the reset recorded where the
	// clock stood when the discarded timeline ended.
	resetTick := rec.LastResetTick()
	if resetTick <= 0 {
		t.Fatalf("LastResetTick = %d after %d rollbacks, want > 0", resetTick, res.Rollbacks)
	}

	// Every surviving transaction was recorded after the (last) reset, so
	// its ticks must lie strictly beyond the discarded timeline's, and each
	// interval must be well-formed.
	txns := rec.Txns()
	if len(txns) == 0 {
		t.Fatal("no transactions survived the rollback")
	}
	for _, txn := range txns {
		if txn.Start <= resetTick {
			t.Fatalf("txn on v%d starts at tick %d, inside the discarded timeline (reset at %d)",
				txn.Vertex, txn.Start, resetTick)
		}
		if txn.End < txn.Start {
			t.Fatalf("txn on v%d has End %d < Start %d", txn.Vertex, txn.End, txn.Start)
		}
	}
}

func TestRecorderResetKeepsClockMonotone(t *testing.T) {
	rec := history.NewRecorder()
	for i := 0; i < 10; i++ {
		rec.Tick()
	}
	rec.Append(history.Txn{Vertex: 1, Start: 1, End: 10})

	rec.Reset()
	if got := rec.LastResetTick(); got != 10 {
		t.Fatalf("LastResetTick = %d, want 10", got)
	}
	if rec.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", rec.Len())
	}
	// The clock continues past the discarded timeline instead of rewinding.
	if next := rec.Tick(); next != 11 {
		t.Fatalf("first tick after Reset = %d, want 11", next)
	}

	// A second reset moves the watermark forward, never backward.
	rec.Reset()
	if got := rec.LastResetTick(); got != 11 {
		t.Fatalf("LastResetTick after second Reset = %d, want 11", got)
	}
}
