package engine

// Table-driven coverage of Config.validate: every invalid mode × sync ×
// checkpoint × fault combination must be rejected with a telling error
// before any worker starts, and every legal combination must run. The
// torture harness samples only legal configurations by construction, so
// this table is what keeps the two notions of "legal" aligned.

import (
	"strings"
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/fault"
	"serialgraph/internal/generate"
)

func TestConfigValidationTable(t *testing.T) {
	g := generate.Ring(10)
	dir := t.TempDir()

	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; "" means the config must be accepted
	}{
		// BSP cannot provide serializability: no eager local replicas (§4.1).
		{"bsp+token-single", Config{Workers: 2, Mode: BSP, Sync: TokenSingle}, "requires the Async mode"},
		{"bsp+token-dual", Config{Workers: 2, Mode: BSP, Sync: TokenDual}, "requires the Async mode"},
		{"bsp+partition-lock", Config{Workers: 2, Mode: BSP, Sync: PartitionLock}, "requires the Async mode"},
		{"bsp+vertex-lock", Config{Workers: 2, Mode: BSP, Sync: VertexLockGiraph}, "requires the Async mode"},

		// BAP composes with SyncNone and PartitionLock only.
		{"bap+token-single", Config{Workers: 2, Mode: BAP, Sync: TokenSingle}, "no global supersteps"},
		{"bap+token-dual", Config{Workers: 2, Mode: BAP, Sync: TokenDual}, "no global supersteps"},
		{"bap+vertex-lock", Config{Workers: 2, Mode: BAP, Sync: VertexLockGiraph}, "SyncNone and PartitionLock only"},

		// BAP has no barriers: nothing to checkpoint at, no failure detection.
		{"bap+checkpoint", Config{Workers: 2, Mode: BAP, CheckpointEvery: 1, CheckpointDir: dir}, "BAP has none"},
		{"bap+restore", Config{Workers: 2, Mode: BAP, RestoreFrom: dir + "/checkpoint-000001.gob"}, "BAP has none"},
		{"bap+fault", Config{Workers: 2, Mode: BAP, Fault: fault.NewInjector(fault.Plan{})}, "no barriers"},

		// Checkpointing needs a destination.
		{"checkpoint-without-dir", Config{Workers: 2, Mode: Async, CheckpointEvery: 2}, "no CheckpointDir"},

		// Fault plans are validated against the cluster.
		{"crash-out-of-range", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 5, AtSuperstep: 0}}})},
			"cluster has 2"},
		{"crash-without-trigger", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 1, AtSuperstep: -1}}})},
			"no trigger"},
		{"drop-rate-above-one", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{DropRate: 1.5})}, "outside [0,1]"},
		{"duplicate-rate-negative", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{DuplicateRate: -0.1})}, "outside [0,1]"},
		{"straggler-rate-above-one", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{StragglerRate: 2, StragglerDelay: 1})}, "outside [0,1]"},
		{"straggler-without-delay", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{StragglerRate: 0.1})}, "no StragglerDelay"},

		// The legal cube: BSP plain, Async under every technique, BAP under
		// its two, and faults/checkpoints on barriered modes.
		{"bsp-plain", Config{Workers: 2, Mode: BSP}, ""},
		{"async-none", Config{Workers: 2, Mode: Async, Sync: SyncNone}, ""},
		{"async-token-single", Config{Workers: 2, Mode: Async, Sync: TokenSingle}, ""},
		{"async-token-dual", Config{Workers: 2, Mode: Async, Sync: TokenDual}, ""},
		{"async-partition-lock", Config{Workers: 2, Mode: Async, Sync: PartitionLock}, ""},
		{"async-vertex-lock", Config{Workers: 2, Mode: Async, Sync: VertexLockGiraph}, ""},
		{"bap-none", Config{Workers: 2, Mode: BAP, Sync: SyncNone}, ""},
		{"bap-partition-lock", Config{Workers: 2, Mode: BAP, Sync: PartitionLock}, ""},
		{"bsp-fault-checkpoint", Config{Workers: 2, Mode: BSP,
			CheckpointEvery: 1, CheckpointDir: t.TempDir(),
			Fault: fault.NewInjector(fault.Plan{Crashes: []fault.Crash{{Worker: 1, AtSuperstep: 1}}})}, ""},
		{"async-fault-no-checkpoint", Config{Workers: 2, Mode: Async,
			Fault: fault.NewInjector(fault.Plan{DuplicateRate: 0.1})}, ""},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := Run(g, algorithms.SSSP(0), tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("legal config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
