package engine

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
)

// BenchmarkLocalDelivery exercises the compute→local-delivery hot path
// end to end: a fixed-budget BSP PageRank sweep (the BENCH Fig. 1 anchor
// workload in miniature) where every message goes through Send, staging,
// and the batched partition-end fold. Remote traffic is present too, so
// the batched onData apply is covered; the simulated network runs at zero
// propagation delay to keep the measurement compute-bound.
func BenchmarkLocalDelivery(b *testing.B) {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 2000, AvgDegree: 8, Exponent: 2.2, Seed: 3})
	cfg := Config{
		Workers: 4, Mode: BSP, Sync: SyncNone,
		MaxSupersteps: 10, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, err := Run(g, algorithms.PageRank(0.01), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}
