package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/cluster"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/metrics"
	"serialgraph/internal/model"
	"serialgraph/internal/msgstore"
	"serialgraph/internal/partition"
)

// worker simulates one machine: it owns PartitionsPerWorker partitions, a
// message store, a buffer cache for outgoing remote messages, and (under
// PartitionLock) a Chandy–Misra manager for its partitions.
type worker[V, M any] struct {
	r     *runner[V, M]
	id    int
	parts []partition.ID

	// stores[active] receives reads; under BSP, writes target
	// stores[1-active] and the master swaps between supersteps. Under
	// Async there is a single store at index 0.
	stores [2]*msgstore.Store[M]
	active atomic.Int32
	buf    *msgstore.Buffer[M]
	// spill is the bounded-memory staging tier for BSP write-store batches
	// (DESIGN.md §12), non-nil only when Config.MsgMemoryBudget > 0 under
	// BSP: inbound remote batches and end-of-partition local folds stage
	// here instead of going straight to the write store, overflowing sorted
	// runs to disk past the per-worker budget; the master drains it into
	// the write store right before every swap.
	spill    *msgstore.Spill[M]
	ep       *cluster.Endpoint
	mgr      *chandy.Manager
	otherWks []cluster.WorkerID

	// partIdx maps each owned partition to its position in parts, replacing
	// the linear scan TokenDual's allowed-filter used to do per partition
	// per superstep.
	partIdx map[partition.ID]int

	// boundaryParts/internalParts split parts by whether the partition
	// shares forks with any neighbor partition. Populated by
	// initLockManager (PartitionLock only); the overlap scheduler
	// prefetches forks for the boundary list and fills the wait windows
	// with the internal list.
	boundaryParts []partition.ID
	internalParts []partition.ID

	// threads holds one thread scratch object per compute thread, reused
	// across supersteps so reader scratch, staging buffers, and aggregator
	// maps keep their capacity instead of being reallocated every step.
	// Thread i is only ever used by compute goroutine i of the current
	// superstep, and supersteps of one worker never overlap.
	threads []*thread[V, M]

	// stepping is set for the duration of a BAP logical superstep. The
	// quiescence detector must treat a stepping worker as non-idle: with
	// thread-local staging, a local message can exist only in a thread's
	// staging buffer — invisible to NewCount until the fold at partition
	// end — and with folded execution counters the executions counter
	// moves only at fold time, so mid-step the worker can look finished
	// while work is still in flight.
	stepping atomic.Bool

	aggMu    sync.Mutex
	aggLocal map[string]float64
	aggPrev  map[string]float64

	mutMu      sync.Mutex
	mutAdds    []graph.Edge
	mutRemoves []edgeKey

	// log records every outgoing remote batch by (superstep, destination) so
	// confined recovery can re-inject this worker's sends into a crashed
	// peer's store instead of rolling the whole cluster back. Nil unless
	// fault injection and confined recovery are both configured.
	log *msgstore.Log[M]

	// curStep is the superstep currently executing, read by the buffer
	// cache's emit path (which runs on compute threads and, via FlushTo,
	// fork pre-handoffs) to key log appends.
	curStep atomic.Int64

	// unhalted counts owned vertices that have not voted to halt; BAP's
	// activity and quiescence checks read it without touching the halted
	// slice from other goroutines.
	unhalted atomic.Int64

	// finish is when this worker completed its superstep (threads joined
	// and buffers flushed). Written in runSuperstep, read by the master
	// after the doneCh handshake, which provides the happens-before edge;
	// the master turns the spread of finish times into barrier-wait (and,
	// under token passing, token hold/idle) accounting.
	finish time.Time

	startCh chan int
	doneCh  chan struct{}
}

func newWorker[V, M any](r *runner[V, M], id int) *worker[V, M] {
	w := &worker[V, M]{
		r: r, id: id,
		parts:    r.pm.PartitionsOfWorker(id),
		aggLocal: make(map[string]float64),
		aggPrev:  make(map[string]float64),
		startCh:  make(chan int),
		doneCh:   make(chan struct{}),
	}
	w.partIdx = make(map[partition.ID]int, len(w.parts))
	for i, p := range w.parts {
		w.partIdx[p] = i
	}
	w.threads = make([]*thread[V, M], r.cfg.ThreadsPerWorker)
	for i := range w.threads {
		w.threads[i] = &thread[V, M]{w: w}
	}
	var owned []graph.VertexID
	for _, p := range w.parts {
		owned = append(owned, r.pm.Vertices(p)...)
	}
	w.unhalted.Store(int64(len(owned)))
	w.stores[0] = msgstore.New(r.g, owned, r.prog.Semantics, r.prog.Combine)
	if r.cfg.Mode == BSP {
		w.stores[1] = msgstore.New(r.g, owned, r.prog.Semantics, r.prog.Combine)
	}
	for o := 0; o < r.cfg.Workers; o++ {
		if o != id {
			w.otherWks = append(w.otherWks, cluster.WorkerID(o))
		}
	}
	if r.cfg.Fault != nil && r.cfg.Recovery == RecoverConfined {
		w.log = msgstore.NewLog[M]()
	}
	w.buf = msgstore.NewBuffer[M](r.cfg.Workers, r.cfg.BufferCap, r.prog.MsgBytes,
		cluster.BatchHeaderBytes, cluster.EntryHeaderBytes,
		func(dest int, batch []msgstore.Entry[M], bytes int) {
			if w.log != nil {
				// Logged before the send so even a batch the fault injector
				// drops on the wire remains replayable.
				w.log.Append(int(w.curStep.Load()), dest, batch)
			}
			if r.cfg.Mode == BSP && r.replaying.Load() && !r.replayDest[dest] &&
				int(w.curStep.Load()) < r.replayFrontier {
				// Confined BSP replay below the frontier is an exact
				// reconstruction of sends the healthy destination already
				// received while this worker was still alive; delivering the
				// duplicate would stamp a stale step's value over the
				// destination's current (frontier-step) slot under a newer
				// version. Frontier-step sends were dropped with the crash
				// (a killed sender loses its data traffic) and must flow.
				r.reg.Add(metrics.ReplayBatchesSuppressed, 1)
				return
			}
			w.ep.SendData(cluster.WorkerID(dest), batch, bytes)
		})
	w.buf.SetMetrics(r.reg)
	if r.recycleBatches {
		w.buf.SetAlloc(func() []msgstore.Entry[M] {
			if v := r.batchPool.Get(); v != nil {
				return v.([]msgstore.Entry[M])
			}
			return nil
		})
	}
	if r.prog.Semantics == model.Combine && r.prog.Combine != nil && !r.cfg.DisableSenderCombine {
		// Giraph applies the user combiner inside the buffer cache too, so
		// a hub vertex receives one combined message per sending worker.
		w.buf.SetCombiner(r.prog.Combine)
	}
	if r.cfg.MsgMemoryBudget > 0 && r.cfg.Mode == BSP {
		per := r.cfg.MsgMemoryBudget / int64(r.cfg.Workers)
		if per <= 0 {
			per = r.cfg.MsgMemoryBudget
		}
		w.spill = msgstore.NewSpill[M](per, r.prog.MsgBytes,
			cluster.BatchHeaderBytes, cluster.EntryHeaderBytes)
		w.spill.SetMetrics(r.reg)
	}
	w.ep = cluster.NewEndpoint(r.tr, cluster.WorkerID(id), w.onData, w.onCtrl)
	w.ep.SetFlow(r.flow)
	return w
}

// initLockManager sets up partition philosophers (§5.4). preHandoff flushes
// this worker's buffered remote replica updates to the fork's destination
// worker; per-lane FIFO then guarantees the data precedes the fork,
// enforcing condition C1 for the requesting partition.
func (w *worker[V, M]) initLockManager(partNeighbors [][]partition.ID) {
	ownerOf := func(p chandy.PhilID) int { return w.r.pm.WorkerOfPartition(partition.ID(p)) }
	sendCtrl := w.sendChandyCtrl
	preHandoff := func(toWorker int) { w.buf.FlushTo(toWorker) }
	w.mgr = chandy.NewManager(w.id, ownerOf, sendCtrl, preHandoff)
	w.mgr.SetMetrics(w.r.reg)
	for _, p := range w.parts {
		nbs := make([]chandy.PhilID, 0, len(partNeighbors[p]))
		for _, q := range partNeighbors[p] {
			nbs = append(nbs, chandy.PhilID(q))
		}
		w.mgr.AddPhil(chandy.PhilID(p), nbs)
		if len(nbs) > 0 {
			w.boundaryParts = append(w.boundaryParts, p)
		} else {
			w.internalParts = append(w.internalParts, p)
		}
	}
	if w.r.cfg.Scheduler == SchedOverlap {
		w.orderBoundaryByColor(partNeighbors)
	}
}

// initVertexLockManager sets up per-vertex philosophers for the
// Giraph-async + vertex-based locking combination the paper excludes for
// poor performance (§5.2, §7). Only p-boundary vertices need forks:
// p-internal vertices are serialized by their partition's sequential
// execution.
func (w *worker[V, M]) initVertexLockManager() {
	ownerOf := func(p chandy.PhilID) int { return w.r.pm.WorkerOf(graph.VertexID(p)) }
	sendCtrl := w.sendChandyCtrl
	preHandoff := func(toWorker int) { w.buf.FlushTo(toWorker) }
	w.mgr = chandy.NewManager(w.id, ownerOf, sendCtrl, preHandoff)
	w.mgr.SetMetrics(w.r.reg)
	for _, p := range w.parts {
		for _, v := range w.r.pm.Vertices(p) {
			if !w.r.pBoundary[v] {
				continue
			}
			var nbs []chandy.PhilID
			myPart := w.r.pm.PartitionOf(v)
			w.r.g.Neighbors(v, func(x graph.VertexID) {
				if w.r.pm.PartitionOf(x) != myPart && w.r.pBoundary[x] {
					nbs = append(nbs, chandy.PhilID(x))
				}
			})
			w.mgr.AddPhil(chandy.PhilID(v), nbs)
		}
	}
}

// sendChandyCtrl is the lock managers' control channel: it counts the
// message at the exact point it is handed to the transport, keeping the
// ctrl_messages counter reconcilable with cluster.Stats.ControlMessages.
func (w *worker[V, M]) sendChandyCtrl(toWorker int, c chandy.Ctrl) {
	w.r.reg.Add(metrics.CtrlMessages, 1)
	w.r.reg.Add(metrics.CtrlBytes, cluster.CtrlBytes)
	w.ep.SendCtrl(cluster.WorkerID(toWorker), c)
}

// onData applies an arriving batch of remote vertex messages. Under BSP the
// batch targets the next superstep's store; under Async the live store, so
// recipients can read it within the same superstep (the AP model). The
// whole batch goes through PutBatch — grouped by lock stripe, duplicate
// destinations pre-combined — instead of taking a stripe lock per entry.
// RemoteEntriesDelivered counts the entries as they arrived, before the
// combiner fast-path merges any, so it stays reconcilable with the
// sender-side RemoteEntriesFlushed counter. The batch slice arrives with
// ownership transferred from the sender (the buffer cache never reuses an
// emitted slice), so PutBatch may reorder it in place; duplicate batches
// for one (sender, receiver) pair are delivered sequentially on their
// lane, so no two appliers ever share a slice. Once applied, the slice is
// dead — recycle it into the run's batch pool so some sender's buffer
// cache can restart a batch in it, unless fault injection is on (a
// duplicated delivery still on the wire would alias it).
func (w *worker[V, M]) onData(from cluster.WorkerID, payload any) {
	batch := payload.([]msgstore.Entry[M])
	w.r.reg.Add(metrics.RemoteEntriesDelivered, int64(len(batch)))
	if w.spill != nil {
		// Bounded-memory BSP: batches stage through the spill sink (which
		// copies the entries, so the recycle below stays safe); completed
		// runs stream into the write store during the superstep and the
		// barrier drain delivers only the residual.
		w.spill.Add(batch, w.writeStore())
	} else {
		w.writeStore().PutBatch(batch)
	}
	if w.r.recycleBatches && cap(batch) > 0 {
		w.r.batchPool.Put(batch[:0])
	}
}

func (w *worker[V, M]) onCtrl(from cluster.WorkerID, payload any) {
	switch c := payload.(type) {
	case chandy.Ctrl:
		w.mgr.HandleCtrl(c)
	default:
		panic("engine: unexpected control payload")
	}
}

func (w *worker[V, M]) readStore() *msgstore.Store[M] { return w.stores[w.active.Load()] }

func (w *worker[V, M]) writeStore() *msgstore.Store[M] {
	if w.r.cfg.Mode == BSP {
		return w.stores[1-w.active.Load()]
	}
	return w.stores[0]
}

// swapStores flips current/next between BSP supersteps. The outgoing
// current store is cleared: BSP messages are visible for exactly one
// superstep. Called by the master while the cluster is quiescent.
func (w *worker[V, M]) swapStores() {
	w.readStore().Clear()
	w.active.Store(1 - w.active.Load())
}

// recomputeUnhalted resynchronizes the worker's unhalted counter with the
// halted slice after a restore or rollback rewrites the halt flags.
func (w *worker[V, M]) recomputeUnhalted() {
	var n int64
	for _, p := range w.parts {
		for _, v := range w.r.pm.Vertices(p) {
			if !w.r.halted[v] {
				n++
			}
		}
	}
	w.unhalted.Store(n)
}

func (w *worker[V, M]) pendingMessages() int64 {
	n := w.stores[0].NewCount()
	if w.stores[1] != nil {
		n += w.stores[1].NewCount()
	}
	return n
}

// loop is the worker's main goroutine: one superstep per master signal.
func (w *worker[V, M]) loop() {
	for s := range w.startCh {
		w.runSuperstep(s)
		w.doneCh <- struct{}{}
	}
}

func (w *worker[V, M]) runSuperstep(s int) {
	w.curStep.Store(int64(s))
	reg := w.r.reg
	computeStart := time.Now()
	if w.r.cfg.Scheduler == SchedOverlap {
		w.computeOverlap(s)
	} else {
		w.computeStatic(s)
	}
	flushStart := time.Now()
	reg.AddPhase(metrics.PhaseCompute, flushStart.Sub(computeStart))

	// End-of-superstep flush (§6.1): push out all remaining buffered
	// remote messages. Token techniques additionally await delivery
	// confirmations before the token moves on (§4.2, §6.2); locking
	// techniques rely on FIFO-before-fork flushes mid-superstep and only
	// need the data on the wire before the barrier.
	w.buf.FlushAll()
	if w.r.cfg.Sync == TokenSingle || w.r.cfg.Sync == TokenDual {
		n := int64(w.ep.FlushWait(w.otherWks))
		reg.Add(metrics.FlushMarkers, n)
		reg.Add(metrics.CtrlMessages, n)
		reg.Add(metrics.CtrlBytes, n*cluster.FlushMarkerBytes)
	}
	w.finish = time.Now()
	reg.AddPhase(metrics.PhaseRemoteFlush, w.finish.Sub(flushStart))
}

// computeStatic is the original partition scheduler: a shared queue in
// partition order, each thread pulling the next partition when free. Under
// PartitionLock every boundary partition's fork acquisition blocks its
// thread inline.
func (w *worker[V, M]) computeStatic(s int) {
	queue := make(chan partition.ID, len(w.parts))
	for _, p := range w.parts {
		queue <- p
	}
	close(queue)

	var wg sync.WaitGroup
	for t := 0; t < w.r.cfg.ThreadsPerWorker; t++ {
		th := w.threads[t]
		th.superstep = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range queue {
				th.runPartition(p)
			}
			th.fold()
		}()
	}
	wg.Wait()
}

// localTimingSampleShift sets the local-delivery timing sample rate: one
// in 2^6 = 64 timed events, each duration scaled by 64 into
// PhaseLocalDelivery. Both delivery paths sample uniformly — the eager
// per-message path and the staged-fold batch apply — so async-none runs
// (whose staged folds dominate) pay the same near-zero clock overhead as
// the eager path. Message *counts* stay exact — only the phase duration
// is sampled (DESIGN.md §9).
const localTimingSampleShift = 6

// thread is per-compute-thread scratch state. The step-local metric
// fields batch per-message/per-execution counts so the hot path touches
// no shared atomics, the staging buffer batches local message delivery,
// and agg batches aggregator contributions; fold flushes them into the
// shared state once per thread per superstep.
type thread[V, M any] struct {
	w         *worker[V, M]
	superstep int
	reader    msgstore.Reader[M]
	ctx       vctx[V, M]

	// curPart is the partition currently executing; Send consults it to
	// decide between eager delivery and staging under Async/BAP.
	curPart partition.ID

	// staged holds this thread's pending local messages for the current
	// partition. Under BSP every local message stages (the write store is
	// invisible until the swap anyway); under Async/BAP only messages to
	// *other* partitions of this worker stage — same-partition messages
	// are delivered eagerly so later vertices of the sequential pass see
	// them (AP semantics). VertexLockGiraph never stages: its C1 argument
	// needs delivery before each vertex's fork release. The buffer is
	// flushed into the store at partition end — for PartitionLock, before
	// the fork release, so neighbor partitions still read fresh replicas
	// (C1). Invariant: staged is empty outside a partition's execution
	// window, so barrier-time pending-message checks see everything.
	staged    []msgstore.Entry[M]
	stageSlot map[graph.VertexID]int // Combine: dst -> index in staged

	// remoteStaged batches this thread's outgoing remote messages per
	// destination worker for the current partition; they fold into the
	// buffer cache via AddBatch at partition end — before the fork release
	// under PartitionLock, so the C1 flush-before-handoff still covers
	// every completed meal's updates. VertexLockGiraph bypasses it (its
	// fork release is per vertex, so messages must hit the buffer cache
	// per message). Same invariant as staged: empty outside a partition's
	// execution window.
	remoteStaged [][]msgstore.Entry[M]
	remoteDests  []int

	agg map[string]float64

	execs     int64
	localMsgs int64
	localNs   int64
	sendSeq   uint64 // eager local-delivery sampling counter
	foldSeq   uint64 // staged-fold sampling counter
}

// stage buffers a local message, pre-applying the combiner thread-locally
// when the algorithm has one (so a hub destination costs one staged entry,
// not one per message).
func (t *thread[V, M]) stage(dst, src graph.VertexID, m M, ver uint32, slot uint32) {
	prog := &t.w.r.prog
	if prog.Semantics == model.Combine && prog.Combine != nil {
		if t.stageSlot == nil {
			t.stageSlot = make(map[graph.VertexID]int)
		}
		if i, ok := t.stageSlot[dst]; ok {
			t.staged[i].Msg = prog.Combine(t.staged[i].Msg, m)
			return
		}
		t.stageSlot[dst] = len(t.staged)
	}
	t.staged = append(t.staged, msgstore.Entry[M]{Dst: dst, Src: src, Msg: m, Ver: ver, Slot: slot})
}

// flushStaged folds the staged local messages into the write store in one
// batched apply and the staged remote messages into the buffer cache, one
// AddBatch per touched destination. Called at partition end (before the
// fork release under PartitionLock).
func (t *thread[V, M]) flushStaged() {
	if len(t.staged) > 0 {
		if sp := t.w.spill; sp != nil {
			// Bounded-memory BSP: local folds count against the budget too
			// — they target the same next-superstep store as remote batches.
			// Delivery happens via the sink's replayer or the barrier drain,
			// so the local-timing sample is skipped.
			sp.Add(t.staged, t.w.writeStore())
		} else {
			t.foldSeq++
			if t.foldSeq&(1<<localTimingSampleShift-1) == 0 {
				t0 := time.Now()
				t.w.writeStore().PutBatch(t.staged)
				t.localNs += int64(time.Since(t0)) << localTimingSampleShift
			} else {
				t.w.writeStore().PutBatch(t.staged)
			}
		}
		t.staged = t.staged[:0]
		if t.stageSlot != nil {
			clear(t.stageSlot)
		}
	}
	if len(t.remoteDests) > 0 {
		for _, wk := range t.remoteDests {
			t.w.buf.AddBatch(wk, t.remoteStaged[wk])
			t.remoteStaged[wk] = t.remoteStaged[wk][:0]
		}
		t.remoteDests = t.remoteDests[:0]
	}
}

// fold drains the thread's step-local accumulators into the registry and
// the worker. Call after the thread's last partition of a superstep.
func (t *thread[V, M]) fold() {
	t.flushStaged() // no-op by invariant; kept as a safety net
	if len(t.agg) > 0 {
		t.w.aggMu.Lock()
		for k, v := range t.agg {
			t.w.aggLocal[k] += v
		}
		t.w.aggMu.Unlock()
		clear(t.agg)
	}
	if t.execs == 0 && t.localMsgs == 0 {
		return
	}
	reg := t.w.r.reg
	reg.Add(metrics.Executions, t.execs)
	t.w.r.executions.Add(t.execs)
	reg.Add(metrics.LocalMessages, t.localMsgs)
	reg.AddPhase(metrics.PhaseLocalDelivery, time.Duration(t.localNs))
	t.execs, t.localMsgs, t.localNs = 0, 0, 0
}

// runPartition executes the partition's active vertices under the
// configured synchronization technique. Staged local messages fold into
// the store before the partition's execution window closes: under
// PartitionLock that is before the fork release (so a neighbor partition
// acquiring the forks next reads fresh replicas — the C1 argument), and
// under every other technique at the end of the pass. Forks order only
// *remote* data (the FIFO-before-fork flush covers the buffer cache);
// staged messages are purely local, so staging cannot reorder anything a
// fork handoff promises.
func (t *thread[V, M]) runPartition(p partition.ID) {
	w := t.w
	r := w.r
	verts := r.pm.Vertices(p)
	t.curPart = p
	// Concurrency is tracked at partition granularity: a partition's
	// execution (a "meal" under locking) is the unit whose overlap defines
	// the parallelism axis of Figure 1.
	r.noteUnitStart()
	defer r.noteUnitEnd()

	switch r.cfg.Sync {
	case PartitionLock:
		// Skip optimization (§5.4): halted partitions with no pending
		// messages acquire nothing and send nothing.
		if !r.cfg.DisableHaltedPartitionSkip && !t.anyActive(verts) {
			return
		}
		if !w.mgr.Acquire(chandy.PhilID(p)) {
			return // watchdog abort: the run is headed into recovery
		}
		t.executeVertices(verts, nil)
		t.flushStaged() // before Release: neighbors must read fresh replicas
		w.mgr.Release(chandy.PhilID(p))
	case TokenSingle:
		holder, _ := r.tokenState(t.superstep)
		allowed := func(v graph.VertexID) bool {
			c := r.classes[v]
			if c == partition.RemoteBoundary || c == partition.MixedBoundary {
				return holder == w.id
			}
			return true // m-internal vertices always run (§4.2)
		}
		t.executeVertices(verts, allowed)
		t.flushStaged()
	case TokenDual:
		holder, localIdx := r.tokenState(t.superstep)
		myLocalIdx := w.partIdx[p]
		allowed := func(v graph.VertexID) bool {
			switch r.classes[v] {
			case partition.PInternal:
				return true
			case partition.LocalBoundary:
				return myLocalIdx == localIdx
			case partition.RemoteBoundary:
				return holder == w.id
			default: // MixedBoundary
				return holder == w.id && myLocalIdx == localIdx
			}
		}
		t.executeVertices(verts, allowed)
		// Cross-partition local recipients of anything staged here are
		// local/mixed boundary vertices of a *different* partition, which
		// the local token keeps inactive this superstep — folding at pass
		// end is indistinguishable from eager delivery.
		t.flushStaged()
	case VertexLockGiraph:
		// The heavy-weight partition thread blocks on every p-boundary
		// vertex's fork acquisition — the behavior §5.2 identifies as this
		// combination's downfall.
		st := w.readStore()
		for _, v := range verts {
			if r.halted[v] && !st.HasNew(v) {
				continue
			}
			if r.pBoundary[v] {
				if !w.mgr.Acquire(chandy.PhilID(v)) {
					return // watchdog abort: the run is headed into recovery
				}
				t.executeVertex(v, st)
				w.mgr.Release(chandy.PhilID(v))
			} else {
				t.executeVertex(v, st)
			}
		}
	default: // SyncNone
		t.executeVertices(verts, nil)
		t.flushStaged()
	}
}

func (t *thread[V, M]) anyActive(verts []graph.VertexID) bool {
	st := t.w.readStore()
	for _, v := range verts {
		if !t.w.r.halted[v] || st.HasNew(v) {
			return true
		}
	}
	return false
}

// executeVertices runs every active (and allowed) vertex of a partition
// sequentially, which is how partition-aware systems execute (§5.1).
func (t *thread[V, M]) executeVertices(verts []graph.VertexID, allowed func(graph.VertexID) bool) {
	r := t.w.r
	st := t.w.readStore()
	for _, v := range verts {
		if allowed != nil && !allowed(v) {
			continue
		}
		if r.halted[v] && !st.HasNew(v) {
			continue
		}
		t.executeVertex(v, st)
	}
}

// executeVertex runs one transaction T(Nv): read own value and the
// in-neighbor replicas (messages), compute, write back.
func (t *thread[V, M]) executeVertex(v graph.VertexID, st *msgstore.Store[M]) {
	r := t.w.r
	t.execs++

	// Replay executions during confined recovery reconstruct state the
	// recorder already discarded; recording them would interleave a partial
	// re-run with the post-recovery history.
	recording := r.rec != nil && !r.replaying.Load()

	var txn history.Txn
	if recording {
		txn.Vertex = v
		txn.Start = r.rec.Tick()
		txn.ReadVer = r.versions[v].Load()
	}

	st.Read(v, &t.reader)

	if recording && len(t.reader.Srcs) > 0 {
		txn.Reads = make([]history.Read, 0, len(t.reader.Srcs))
		for i, src := range t.reader.Srcs {
			txn.Reads = append(txn.Reads, history.Read{
				Src:        src,
				SlotVer:    t.reader.Vers[i],
				PrimaryVer: r.versions[src].Load(),
			})
		}
	}

	t.ctx = vctx[V, M]{w: t.w, th: t, superstep: t.superstep, id: v}
	r.prog.Compute(&t.ctx, t.reader.Msgs)
	if r.halted[v] != t.ctx.votedHalt {
		if t.ctx.votedHalt {
			t.w.unhalted.Add(-1)
		} else {
			t.w.unhalted.Add(1)
		}
		r.halted[v] = t.ctx.votedHalt
	}

	if recording {
		txn.End = r.rec.Tick()
		txn.Wrote = t.ctx.wrote
		txn.WriteVer = r.versions[v].Load()
		r.rec.Append(txn)
	}
}

// vctx implements model.Context for one vertex execution.
type vctx[V, M any] struct {
	w         *worker[V, M]
	th        *thread[V, M]
	superstep int
	id        graph.VertexID
	votedHalt bool
	wrote     bool
}

func (c *vctx[V, M]) Superstep() int                 { return c.superstep }
func (c *vctx[V, M]) ID() graph.VertexID             { return c.id }
func (c *vctx[V, M]) Value() V                       { return c.w.r.values[c.id] }
func (c *vctx[V, M]) OutNeighbors() []graph.VertexID { return c.w.r.g.OutNeighbors(c.id) }
func (c *vctx[V, M]) OutWeights() []float64          { return c.w.r.g.OutWeights(c.id) }
func (c *vctx[V, M]) NumVertices() int               { return c.w.r.g.NumVertices() }
func (c *vctx[V, M]) VoteToHalt()                    { c.votedHalt = true }

func (c *vctx[V, M]) SetValue(v V) {
	c.w.r.values[c.id] = v
	c.wrote = true
	if c.w.r.versions != nil {
		c.w.r.versions[c.id].Add(1)
	}
	if c.w.r.dirty != nil {
		c.w.r.dirty[c.id].Store(true)
	}
}

func (c *vctx[V, M]) Send(dst graph.VertexID, m M) { c.send(dst, m, 0) }

// send routes one message, optionally carrying a precomputed in-slot hint
// (SendToAllOut supplies one; zero means unknown and is always safe).
func (c *vctx[V, M]) send(dst graph.VertexID, m M, slot uint32) {
	r := c.w.r
	var ver uint32
	if r.versions != nil {
		ver = r.versions[c.id].Load()
	}
	dp := r.pm.PartitionOf(dst)
	if wk := r.pm.WorkerOfPartition(dp); wk != c.w.id {
		e := msgstore.Entry[M]{Dst: dst, Src: c.id, Msg: m, Ver: ver, Slot: slot}
		if r.cfg.Sync == VertexLockGiraph {
			// Per-vertex C1: the message must be in the buffer cache before
			// this vertex's fork release triggers the pre-handoff flush.
			c.w.buf.Add(wk, e)
			return
		}
		t := c.th
		if t.remoteStaged == nil {
			t.remoteStaged = make([][]msgstore.Entry[M], r.cfg.Workers)
		}
		if len(t.remoteStaged[wk]) == 0 {
			t.remoteDests = append(t.remoteDests, wk)
		}
		t.remoteStaged[wk] = append(t.remoteStaged[wk], e)
		return
	}
	// Local message (§6.1): skip the buffer cache. Under BSP everything
	// stages (the next-superstep store is invisible until the swap), and
	// under Async/BAP messages to other partitions of this worker stage;
	// same-partition messages deliver eagerly so the rest of the sequential
	// pass sees them, and VertexLockGiraph delivers everything eagerly (its
	// per-vertex C1 argument needs delivery before each fork release). The
	// eager path samples its timing 1-in-2^localTimingSampleShift; counts
	// stay exact.
	t := c.th
	t.localMsgs++
	if r.cfg.Sync != VertexLockGiraph && (r.cfg.Mode == BSP || dp != t.curPart) {
		t.stage(dst, c.id, m, ver, slot)
		return
	}
	t.sendSeq++
	if t.sendSeq&(1<<localTimingSampleShift-1) == 0 {
		t0 := time.Now()
		c.w.writeStore().PutSlot(dst, c.id, m, ver, slot)
		t.localNs += int64(time.Since(t0)) << localTimingSampleShift
	} else {
		c.w.writeStore().PutSlot(dst, c.id, m, ver, slot)
	}
}

func (c *vctx[V, M]) SendToAllOut(m M) {
	outs := c.w.r.g.OutNeighbors(c.id)
	if c.w.r.outSlots != nil {
		row := c.w.r.outSlots[c.id]
		for i, dst := range outs {
			c.send(dst, m, row[i])
		}
		return
	}
	for _, dst := range outs {
		c.send(dst, m, 0)
	}
}

// Aggregate accumulates thread-locally; thread.fold merges the map into
// the worker's aggLocal under aggMu once per thread per superstep instead
// of taking the mutex per call.
func (c *vctx[V, M]) Aggregate(name string, v float64) {
	if c.th.agg == nil {
		c.th.agg = make(map[string]float64)
	}
	c.th.agg[name] += v
}

func (c *vctx[V, M]) Aggregated(name string) float64 {
	return c.w.aggPrev[name]
}

// Topology mutation support (Pregel's graph mutation API). Requests are
// buffered per worker and applied by the master at the barrier.

type edgeKey struct{ src, dst graph.VertexID }

func (w *worker[V, M]) addMutation(add *graph.Edge, remove *edgeKey) {
	if w.r.cfg.Mode == BAP {
		panic("engine: topology mutations require global barriers; BAP has none")
	}
	w.mutMu.Lock()
	if add != nil {
		w.mutAdds = append(w.mutAdds, *add)
	}
	if remove != nil {
		w.mutRemoves = append(w.mutRemoves, *remove)
	}
	w.mutMu.Unlock()
}

func (c *vctx[V, M]) AddEdgeRequest(src, dst graph.VertexID, wt float64) {
	n := graph.VertexID(c.w.r.g.NumVertices())
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic("engine: AddEdgeRequest endpoints out of range")
	}
	c.w.addMutation(&graph.Edge{Src: src, Dst: dst, Weight: wt}, nil)
}

func (c *vctx[V, M]) RemoveEdgeRequest(src, dst graph.VertexID) {
	c.w.addMutation(nil, &edgeKey{src, dst})
}
