package engine

// Cross-transport equivalence matrix: every synchronization technique ×
// {SSSP, PageRank, coloring}, each run twice — once on the in-process
// simulated transport and once over real TCP loopback sockets — with the
// results compared and both runs' counters conservation-reconciled.
//
// What "equal results" means per cell follows what the execution model
// actually promises:
//
//   - BSP is schedule-deterministic: final values depend only on the
//     graph and the partitioning (min-combining makes SSSP fold-order
//     independent; Overwrite semantics give PageRank and coloring a slot
//     per in-neighbor, folded in fixed slot order). So BSP cells demand
//     bitwise-identical values across transports, converged or not.
//   - SSSP has a unique fixed point under every technique, so its
//     converged values must be identical on every cell.
//   - Async PageRank and coloring are schedule-dependent (two in-process
//     runs already differ), so those cells assert the algorithm-level
//     contract on each transport: a proper coloring under serializable
//     techniques, the residual bound for PageRank — exactly the oracles
//     the torture harness uses.
//
// Counter reconciliation runs on every cell and both transports: the
// control ledger matches the transport exactly, fault-free data batches
// and bytes match exactly, and on TCP the true wire ledger balances
// (bytes received == bytes sent, nonzero whenever traffic flowed).

import (
	"net"
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
)

func equivRequireLoopback(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	ln.Close()
}

// equivGraph is a fixed ~80-vertex power-law graph; coloring and the
// neighborhood-reading oracles get the symmetrized version.
func equivGraph(undirected bool) *graph.Graph {
	g := generate.PowerLaw(generate.PowerLawConfig{N: 80, AvgDegree: 5, Exponent: 2.2, Seed: 41})
	if !undirected {
		return g
	}
	b := graph.NewBuilder(g.NumVertices())
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

func equivConfig(mode Mode, sync Sync, kind TransportKind) Config {
	return Config{
		Workers: 3, PartitionsPerWorker: 2, ThreadsPerWorker: 2,
		Mode: mode, Sync: sync, Seed: 1131, MaxSupersteps: 200,
		Transport: kind, Metrics: metrics.New(),
	}
}

// reconcile asserts the conservation contracts that must hold on any
// transport, plus the wire-byte balance on TCP runs.
func reconcile(t *testing.T, label string, kind TransportKind, res Result) {
	t.Helper()
	m := res.Metrics
	if got, want := m.Get(metrics.CtrlMessages), res.Net.ControlMessages; got != want {
		t.Errorf("%s: ctrl_messages = %d, transport ControlMessages = %d", label, got, want)
	}
	if got, want := m.Get(metrics.CtrlBytes), res.Net.ControlBytes; got != want {
		t.Errorf("%s: ctrl_bytes = %d, transport ControlBytes = %d", label, got, want)
	}
	if got, want := m.Get(metrics.RemoteBatches), res.Net.DataMessages; got != want {
		t.Errorf("%s: remote_batches = %d, transport DataMessages = %d", label, got, want)
	}
	if got, want := m.Get(metrics.RemoteBatchBytes), res.Net.DataBytes; got != want {
		t.Errorf("%s: remote_batch_bytes = %d, transport DataBytes = %d", label, got, want)
	}
	if got, want := m.Get(metrics.RemoteEntriesDelivered), m.Get(metrics.RemoteEntriesFlushed); got != want {
		t.Errorf("%s: remote_entries_delivered = %d, flushed = %d", label, got, want)
	}
	if drops := res.Net.DroppedMessages; drops != 0 {
		t.Errorf("%s: %d messages dropped on a fault-free run", label, drops)
	}
	switch kind {
	case TransportInProc:
		if res.Net.WireBytesSent != 0 || res.Net.WireBytesReceived != 0 {
			t.Errorf("%s: in-process run reported wire bytes %d/%d",
				label, res.Net.WireBytesSent, res.Net.WireBytesReceived)
		}
	case TransportTCP:
		if res.Net.WireBytesSent != res.Net.WireBytesReceived {
			t.Errorf("%s: wire bytes sent %d != received %d",
				label, res.Net.WireBytesSent, res.Net.WireBytesReceived)
		}
		if res.Net.TotalMessages() > 0 && res.Net.WireBytesSent == 0 {
			t.Errorf("%s: %d messages moved but zero wire bytes",
				label, res.Net.TotalMessages())
		}
		if res.Net.WireBytesSent < res.Net.DataBytes/8 {
			// The simulated ledger charges per-entry header bytes; real
			// frames are varint-packed but can't be absurdly smaller.
			t.Errorf("%s: wire bytes %d implausibly small vs simulated %d",
				label, res.Net.WireBytesSent, res.Net.DataBytes)
		}
	}
}

func TestTransportEquivalenceMatrix(t *testing.T) {
	equivRequireLoopback(t)
	cells := []struct {
		name string
		mode Mode
		sync Sync
	}{
		{"bsp/none", BSP, SyncNone},
		{"async/none", Async, SyncNone},
		{"async/token-single", Async, TokenSingle},
		{"async/token-dual", Async, TokenDual},
		{"async/partition-lock", Async, PartitionLock},
		{"async/vertex-lock-giraph", Async, VertexLockGiraph},
	}
	for _, cell := range cells {
		cell := cell
		t.Run("sssp/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			want := algorithms.ShortestPaths(g, 0)
			var got [2][]float64
			for i, kind := range []TransportKind{TransportInProc, TransportTCP} {
				label := "sssp/" + cell.name + "/" + kind.String()
				dist, res, _, err := Run(g, algorithms.SSSP(0), equivConfig(cell.mode, cell.sync, kind))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				reconcile(t, label, kind, res)
				for v := range want {
					if dist[v] != want[v] {
						t.Fatalf("%s: dist[%d] = %v, want %v", label, v, dist[v], want[v])
					}
				}
				got[i] = dist
			}
			for v := range got[0] {
				if got[0][v] != got[1][v] {
					t.Fatalf("sssp/%s: transports disagree at %d: inproc %v, tcp %v",
						cell.name, v, got[0][v], got[1][v])
				}
			}
		})
		t.Run("pagerank/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			const eps = 0.05
			aggregated := cell.mode == BSP
			var got [2][]float64
			var steps [2]int
			for i, kind := range []TransportKind{TransportInProc, TransportTCP} {
				label := "pagerank/" + cell.name + "/" + kind.String()
				prog := algorithms.PageRank(eps)
				if aggregated {
					prog = algorithms.PageRankAggregated(eps)
				}
				pr, res, _, err := Run(g, prog, equivConfig(cell.mode, cell.sync, kind))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				reconcile(t, label, kind, res)
				got[i], steps[i] = pr, res.Supersteps
			}
			if cell.mode == BSP {
				// Schedule-deterministic: demand bitwise equality.
				if steps[0] != steps[1] {
					t.Fatalf("pagerank/%s: inproc took %d supersteps, tcp %d",
						cell.name, steps[0], steps[1])
				}
				for v := range got[0] {
					if got[0][v] != got[1][v] {
						t.Fatalf("pagerank/%s: transports disagree at %d: inproc %v, tcp %v",
							cell.name, v, got[0][v], got[1][v])
					}
				}
			}
			// Schedule-dependent cells: each transport must satisfy the
			// residual bound on its own (the torture harness's oracle).
			maxIn := 0
			for v := 0; v < g.NumVertices(); v++ {
				if d := g.InDegree(graph.VertexID(v)); d > maxIn {
					maxIn = d
				}
			}
			bound := eps * float64(1+maxIn)
			if !aggregated {
				bound *= 4
			}
			for i, kind := range []TransportKind{TransportInProc, TransportTCP} {
				if r := equivPagerankResidual(g, got[i], !aggregated); r > bound {
					t.Errorf("pagerank/%s/%s: residual %v exceeds bound %v",
						cell.name, kind, r, bound)
				}
			}
		})
		t.Run("coloring/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(true)
			var got [2][]int32
			var converged [2]bool
			for i, kind := range []TransportKind{TransportInProc, TransportTCP} {
				label := "coloring/" + cell.name + "/" + kind.String()
				cfg := equivConfig(cell.mode, cell.sync, kind)
				if cell.mode == BSP {
					// BSP coloring oscillates (Figure 2); bound it and
					// compare the deterministic non-converged state.
					cfg.MaxSupersteps = 30
				}
				colors, res, _, err := Run(g, algorithms.Coloring(), cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				reconcile(t, label, kind, res)
				got[i], converged[i] = colors, res.Converged
				if cell.mode != BSP && !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				if res.Converged && cell.sync.Serializable() {
					if err := algorithms.ValidateColoring(g, colors); err != nil {
						t.Errorf("%s: %v", label, err)
					}
				}
			}
			if cell.mode == BSP {
				if converged[0] != converged[1] {
					t.Fatalf("coloring/%s: convergence differs across transports", cell.name)
				}
				for v := range got[0] {
					if got[0][v] != got[1][v] {
						t.Fatalf("coloring/%s: transports disagree at %d: inproc %d, tcp %d",
							cell.name, v, got[0][v], got[1][v])
					}
				}
			}
		})
	}
}

// equivPagerankResidual mirrors the torture harness's residual: how far
// each vertex's rank sits from what its in-neighbors' current ranks
// imply. skipNoIn excludes in-degree-0 vertices (the eps variant never
// re-executes them).
func equivPagerankResidual(g *graph.Graph, pr []float64, skipNoIn bool) float64 {
	worst := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		ins := g.InNeighbors(graph.VertexID(v))
		if skipNoIn && len(ins) == 0 {
			continue
		}
		sum := 0.0
		for _, u := range ins {
			if d := g.OutDegree(u); d > 0 {
				sum += pr[u] / float64(d)
			}
		}
		want := 0.15 + 0.85*sum
		if r := want - pr[v]; r > worst {
			worst = r
		} else if r := pr[v] - want; r > worst {
			worst = r
		}
	}
	return worst
}
