// Package engine implements the Pregel-like computation engines: the BSP
// model of §2.1 and the AP (Giraph async) model of §2.2, with
// serializability available on the AP engine as a configurable option via
// three synchronization techniques — single-layer token passing (§4.2),
// dual-layer token passing (§5.3), and the paper's contribution,
// partition-based distributed locking (§5.4). Vertex-based locking lives in
// the GAS engine (package gas), mirroring the paper's observation that
// GraphLab async, not Giraph, is the system suited to it.
package engine

import (
	"fmt"
	"time"

	"serialgraph/internal/cluster"
	"serialgraph/internal/fault"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/partition"
)

// Mode selects the computation model.
type Mode uint8

const (
	// BSP delays all messages to the next superstep (§2.1).
	BSP Mode = iota
	// Async makes messages visible as soon as they arrive, within the same
	// superstep (the AP model, §2.2). Local messages skip the buffer cache
	// entirely (eager local replicas, §6.1). Supersteps keep global
	// barriers.
	Async
	// BAP is the barrierless asynchronous parallel model of Giraph
	// Unchained [20], which the paper's Giraph async builds on: per-worker
	// logical supersteps, no global barriers, quiescence-based
	// termination. Compatible with SyncNone and PartitionLock.
	BAP
)

func (m Mode) String() string {
	switch m {
	case BSP:
		return "bsp"
	case Async:
		return "async"
	case BAP:
		return "bap"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Sync selects the synchronization technique layered on the engine.
type Sync uint8

const (
	// SyncNone provides no serializability (plain Giraph / Giraph async).
	SyncNone Sync = iota
	// TokenSingle is single-layer token passing (§4.2): one global token
	// rotates among workers, each worker computes with a single thread.
	TokenSingle
	// TokenDual is dual-layer token passing (§5.3): a global token among
	// workers plus a local token among each worker's partitions.
	TokenDual
	// PartitionLock is partition-based distributed locking (§5.4):
	// partitions are Chandy–Misra philosophers.
	PartitionLock
	// VertexLockGiraph is vertex-based distributed locking on the
	// partition-aware engine: p-boundary vertices are philosophers and the
	// heavy-weight partition thread blocks on every vertex's fork
	// acquisition (§5.2). The paper measured this combination up to 44×
	// slower than GraphLab async and excluded it from Figure 6; it exists
	// here to reproduce that exclusion.
	VertexLockGiraph
)

func (s Sync) String() string {
	switch s {
	case SyncNone:
		return "none"
	case TokenSingle:
		return "token-single"
	case TokenDual:
		return "token-dual"
	case PartitionLock:
		return "partition-lock"
	case VertexLockGiraph:
		return "vertex-lock-giraph"
	default:
		return fmt.Sprintf("Sync(%d)", uint8(s))
	}
}

// Serializable reports whether the technique provides serializability when
// paired with the Async engine (Theorem 1 via §4.2, §5.3, §5.4).
func (s Sync) Serializable() bool { return s != SyncNone }

// RecoveryMode selects how the engine recovers when a worker crash is
// detected at a superstep barrier.
type RecoveryMode uint8

const (
	// RecoverFull is Giraph-style whole-cluster rollback (§6.4): every
	// partition discards its in-memory state and recomputes from the
	// latest checkpoint, so recovery cost scales with cluster size.
	RecoverFull RecoveryMode = iota
	// RecoverConfined restores only the crashed workers' partitions from
	// the checkpoint; healthy workers keep their in-memory state, and the
	// messages they sent since the checkpoint are re-injected from their
	// per-superstep message logs while the crashed partitions recompute to
	// the frontier (the Distributed GraphLab / Pregelix approach). Falls
	// back to full rollback whenever the log cannot cover the replay — a
	// mid-superstep crash, a watchdog stall, a topology mutation since the
	// checkpoint, or an unusable checkpoint chain.
	RecoverConfined
)

func (m RecoveryMode) String() string {
	switch m {
	case RecoverFull:
		return "full"
	case RecoverConfined:
		return "confined"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", uint8(m))
	}
}

// SchedulerKind selects how each worker schedules its partitions onto its
// compute threads within a superstep.
type SchedulerKind uint8

const (
	// SchedStatic is the original scheduler: partitions feed compute
	// threads from a shared queue in partition order, and (under
	// PartitionLock) each fork acquisition blocks its thread until granted.
	SchedStatic SchedulerKind = iota
	// SchedOverlap is the overlap-aware scheduler: under PartitionLock,
	// fork acquisitions for boundary partitions are issued asynchronously
	// ahead of execution (chandy.RequestForks), p-internal partitions fill
	// the fork-wait windows, and threads balance skewed partition loads
	// through work-stealing deques (per-thread LIFO, steal-half FIFO).
	// Results are equivalent to SchedStatic: the fork protocol, the token
	// filters, and the flush-before-handoff ordering are unchanged —
	// only the order in which a worker's own partitions execute moves.
	SchedOverlap
)

func (s SchedulerKind) String() string {
	switch s {
	case SchedStatic:
		return "static"
	case SchedOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", uint8(s))
	}
}

// TransportKind selects the cluster.Transport backend for a run.
type TransportKind uint8

const (
	// TransportInProc is the simulated in-process transport (cluster.Mem).
	TransportInProc TransportKind = iota
	// TransportTCP moves all inter-worker traffic over loopback TCP
	// sockets through the binary frame codec (cluster.TCP).
	TransportTCP
)

func (t TransportKind) String() string {
	switch t {
	case TransportInProc:
		return "inproc"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", uint8(t))
	}
}

// Config parameterizes a run.
type Config struct {
	// Workers is the simulated cluster size. Default 1.
	Workers int
	// PartitionsPerWorker defaults to Workers, Giraph's default (§7.1).
	PartitionsPerWorker int
	// ThreadsPerWorker is the compute thread pool size per worker; default
	// 4 (the paper's r3.xlarge instances have 4 vCPUs). TokenSingle forces
	// 1 thread, as §4.2 requires.
	ThreadsPerWorker int
	// Mode selects BSP or Async. Serializability (Sync != SyncNone)
	// requires Async (§4.1: synchronous models cannot update local
	// replicas eagerly).
	Mode Mode
	// Sync selects the synchronization technique.
	Sync Sync
	// Latency is the simulated network model. Enforced by the in-process
	// transport; the TCP backend records it but lets the real wire set
	// the timing.
	Latency cluster.LatencyModel
	// Transport selects the wire backend connecting the workers: the
	// in-process simulator (default) or real TCP loopback sockets with
	// the binary frame codec. Everything above the transport — engines,
	// message stores, sync techniques, fault injection — runs unchanged
	// over either.
	Transport TransportKind
	// BufferCap is the message buffer cache threshold in entries; default
	// 512.
	BufferCap int
	// MaxSupersteps aborts runs that do not converge (e.g. BSP graph
	// coloring, Figure 2); default 100000.
	MaxSupersteps int
	// Seed feeds hash partitioning.
	Seed uint64
	// Partitioner overrides hash partitioning when non-nil.
	Partitioner func(g *graph.Graph, p, w int) *partition.Map
	// TrackHistory attaches a transaction recorder for serializability
	// checking (testing only; adds overhead).
	TrackHistory bool
	// CheckpointEvery takes a checkpoint after every k-th superstep when
	// k > 0 (§6.4). It requires CheckpointDir; a positive interval with
	// no directory is a configuration error, not a silent no-op.
	CheckpointEvery int
	// CheckpointDir is where checkpoints are written — and where the
	// in-run recovery path looks for the latest one after a worker crash.
	CheckpointDir string
	// RestoreFrom resumes a run from a checkpoint file written by a
	// previous run with identical Config, graph, and program. It is
	// independent of CheckpointEvery/CheckpointDir: a restored run only
	// writes new checkpoints if those are also set (typically to the same
	// directory, so recovery keeps working across restarts).
	RestoreFrom string
	// Fault optionally injects worker crashes and message-level chaos
	// into the run (see internal/fault). When a crash fires, the master
	// detects the dead worker at the superstep barrier, rolls the whole
	// cluster back to the latest checkpoint in CheckpointDir (or to the
	// initial state if none exists), revives the worker, and resumes —
	// all within the same Run call. Requires a mode with global barriers
	// (BSP or Async).
	Fault *fault.Injector
	// Recovery selects full (default) or confined crash recovery. Confined
	// recovery additionally enables per-worker message logging between
	// checkpoints, which is what makes partial rollback possible.
	Recovery RecoveryMode
	// WatchdogTimeout, when > 0, arms the liveness watchdog: a superstep
	// whose workers have not all reached the barrier within this deadline
	// is declared stalled — the laggards are treated as crashed, their
	// blocking primitives (fork waits, flush-ack waits) are aborted so the
	// barrier is reached, and recovery runs instead of the run hanging
	// forever on, say, a lost fork or flush ack. Zero disables the
	// watchdog. Requires a mode with global barriers.
	WatchdogTimeout time.Duration
	// MaxRollbacks bounds recovery attempts per run (default 16) so a
	// pathological fault schedule terminates with an error instead of
	// crash-looping forever.
	MaxRollbacks int
	// DisableSenderCombine turns off sender-side combining, which is
	// otherwise applied automatically for Combine-semantics programs
	// (Giraph applies the user combiner in the buffer cache).
	DisableSenderCombine bool
	// DisableHaltedPartitionSkip turns off the §5.4 optimization of not
	// acquiring forks for partitions whose vertices are all halted with no
	// pending messages (for ablation).
	DisableHaltedPartitionSkip bool
	// DetailedStats records per-superstep durations and execution counts
	// into Result.SuperstepStats.
	DetailedStats bool
	// Metrics optionally supplies the run's metrics registry. When nil the
	// engine creates a private one; supplying a registry lets callers share
	// it across runs or observe counters live while the run executes
	// (Result.Metrics is a snapshot taken at the end either way).
	Metrics *metrics.Registry
	// Scheduler selects the per-worker partition scheduler: the static
	// shared-queue scheduler (default) or the overlap scheduler (fork
	// prefetch + internal-compute overlap + work stealing). Results are
	// equivalent either way; the overlap scheduler trades scheduling
	// flexibility for wall time on fork-heavy configurations. BAP keeps its
	// own barrierless per-worker loop and supports SchedStatic only.
	Scheduler SchedulerKind
	// MsgMemoryBudget, when > 0, bounds the message plane's memory
	// (DESIGN.md §12). It has two effects: the transport's per-ordered-pair
	// credit window is sized from it (bytes in flight block the sender once
	// the window fills), and under BSP each worker's inbound write-store
	// batches stage through a size-capped spill sink that appends overflow
	// to a temp file in arrival order, replayed back into the write store
	// at (or, with a spare CPU, ahead of) the superstep barrier. Zero (the
	// default) leaves buffering unbounded with a generous default credit
	// window; results are bitwise identical either way.
	MsgMemoryBudget int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.PartitionsPerWorker <= 0 {
		c.PartitionsPerWorker = c.Workers
	}
	if c.ThreadsPerWorker <= 0 {
		c.ThreadsPerWorker = 4
	}
	if c.Sync == TokenSingle {
		c.ThreadsPerWorker = 1
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 512
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 100000
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 16
	}
	return c
}

func (c Config) validate() error {
	if c.Mode == BSP && c.Sync != SyncNone {
		return fmt.Errorf("engine: %v requires the Async mode: synchronous models cannot update local replicas eagerly (§4.1)", c.Sync)
	}
	if c.Mode == BAP {
		if c.Sync == TokenSingle || c.Sync == TokenDual {
			return fmt.Errorf("engine: %v requires superstep-aligned token rotation; BAP has no global supersteps", c.Sync)
		}
		if c.Sync == VertexLockGiraph {
			return fmt.Errorf("engine: BAP supports SyncNone and PartitionLock only; %v is not composed with barrierless execution", c.Sync)
		}
		if c.CheckpointEvery > 0 || c.RestoreFrom != "" {
			return fmt.Errorf("engine: checkpointing requires global barriers; BAP has none")
		}
		if c.Fault != nil {
			return fmt.Errorf("engine: fault injection requires barrier-based failure detection; BAP has no barriers")
		}
		if c.WatchdogTimeout > 0 {
			return fmt.Errorf("engine: the liveness watchdog monitors superstep barriers; BAP has none")
		}
		if c.Scheduler == SchedOverlap {
			return fmt.Errorf("engine: the overlap scheduler reorders within a barriered superstep; BAP's per-worker loop is already barrierless")
		}
	}
	if c.Scheduler > SchedOverlap {
		return fmt.Errorf("engine: unknown scheduler kind %d", uint8(c.Scheduler))
	}
	if c.Transport > TransportTCP {
		return fmt.Errorf("engine: unknown transport kind %d", uint8(c.Transport))
	}
	if c.CheckpointEvery > 0 && c.CheckpointDir == "" {
		return fmt.Errorf("engine: CheckpointEvery = %d with no CheckpointDir; checkpoints need somewhere to go", c.CheckpointEvery)
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(c.Workers); err != nil {
			return err
		}
	}
	return nil
}

// Result reports what a run did.
type Result struct {
	// Converged is true when every vertex halted with no pending messages,
	// false when MaxSupersteps was hit first.
	Converged bool
	// Supersteps executed (BSP/Async engines).
	Supersteps int
	// Executions is the total number of vertex executions (transactions).
	Executions int64
	// ComputeTime excludes graph loading and partitioning, matching the
	// paper's "computation time" metric (§7.3).
	ComputeTime time.Duration
	// Net is the network traffic of the run.
	Net cluster.Snapshot
	// Forks/Tokens are Chandy–Misra exchanges (PartitionLock and the GAS
	// engine only).
	ForkSends, TokenSends int64
	// Partitions is the total partition count used.
	Partitions int
	// Partition is the quality report of the run's partition map:
	// edge-cut, the §5.3 per-class boundary census, replication factor,
	// and balance skew. Computed once at startup, outside ComputeTime.
	Partition partition.Quality
	// MaxConcurrency is the peak number of concurrently executing
	// partitions observed (used for the Figure 1 spectrum experiment).
	MaxConcurrency int64
	// Rollbacks counts in-run recoveries of either scope after a worker
	// crash was detected at a barrier: whole-cluster rollbacks (§6.4,
	// Giraph-style) and confined recoveries both count. Zero on a
	// fault-free run.
	Rollbacks int
	// ConfinedRecoveries counts the subset of Rollbacks that were handled
	// by confined recovery (only the crashed workers' partitions restored
	// and recomputed).
	ConfinedRecoveries int
	// WatchdogStalls counts supersteps the liveness watchdog declared
	// stalled and escalated to recovery.
	WatchdogStalls int
	// RecomputedSupersteps counts supersteps that were executed more than
	// once because a rollback discarded them — the recovery's recompute
	// cost in barriers.
	RecomputedSupersteps int
	// RecomputedPartitionSupersteps counts partition×superstep units
	// re-executed by recovery: a full rollback recomputes every partition
	// for every discarded superstep, while confined recovery recomputes
	// only the crashed workers' partitions — this is the measure on which
	// confined recovery wins.
	RecomputedPartitionSupersteps int
	// WastedMessages counts data messages sent since the restored-to
	// point whose effects a rollback discarded — the recovery's wasted
	// network work.
	WastedMessages int64
	// SuperstepStats holds per-superstep detail when
	// Config.DetailedStats is set.
	SuperstepStats []SuperstepStat
	// CreditImbalances counts superstep barriers at which the transport's
	// credit windows failed to reconcile (granted − released ≠ outstanding,
	// or outstanding ≠ 0 at idle). Always zero on a correct run — the
	// torture harness asserts it.
	CreditImbalances int
	// Metrics is the run's final metrics snapshot: counters, phase
	// timings, and histograms (see internal/metrics for the taxonomy).
	Metrics metrics.Snapshot
}

// SuperstepStat is per-superstep detail for Result.SuperstepStats. The
// phase fields are the per-superstep deltas of the registry's phase
// accumulators, summed across workers; Duration is the master's wall time
// for the superstep. JSON keys of wall-clock-valued fields end in "_ns"
// (Duration marshals as integer nanoseconds).
type SuperstepStat struct {
	Duration   time.Duration `json:"duration_ns"`
	Executions int64         `json:"executions"`
	DataMsgs   int64         `json:"data_msgs"`
	CtrlMsgs   int64         `json:"ctrl_msgs"`
	// ComputeNs..BarrierWaitNs are summed across workers, so each can
	// exceed Duration on multi-worker runs; per worker, compute + flush +
	// barrier-wait <= the superstep wall time.
	ComputeNs       int64 `json:"compute_ns"`
	LocalDeliveryNs int64 `json:"local_delivery_ns"`
	RemoteFlushNs   int64 `json:"remote_flush_ns"`
	BarrierWaitNs   int64 `json:"barrier_wait_ns"`
}
