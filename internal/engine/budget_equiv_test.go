package engine

// Budget equivalence matrix: every synchronization technique ×
// {SSSP, PageRank, coloring}, each run under three message-plane memory
// budgets — unbounded (zero: default credit window, spill tier absent),
// tiny (windows at the floor, BSP spill forced on nearly every
// superstep), and huge (spill tier armed but never flushing, so the
// no-runs fast path drains) — with results compared across budgets.
//
// The contract under test is the one DESIGN.md §12 argues for: the
// budget changes *when* a sender may proceed and *where* a batch waits
// out the barrier, never *what* is delivered or in what per-destination
// order. So:
//
//   - BSP is schedule-deterministic: all three budgets must produce
//     bitwise-identical values and identical superstep counts. The tiny
//     run must actually spill (bytes_spilled > 0) or the cell proves
//     nothing; the huge run must never spill.
//   - SSSP has a unique fixed point under every technique, so its
//     converged values are bitwise-identical on every cell and budget.
//   - Async PageRank and coloring are schedule-dependent (credit-window
//     backpressure legitimately perturbs the schedule), so those cells
//     assert the algorithm-level oracle per budget: the residual bound
//     for PageRank, a proper coloring under serializable techniques.
//
// Every run additionally asserts the credit-conservation invariant the
// engine checks at each barrier surfaced zero imbalances, and that runs
// without a spill tier report zero bytes spilled.

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
)

const (
	// budgetTiny divided across 3 workers leaves well under one batch of
	// headroom, so every superstep with traffic cuts spill runs.
	budgetTiny = int64(256)
	// budgetHuge arms the spill tier without ever flushing it.
	budgetHuge = int64(1) << 40
)

var budgetLevels = []struct {
	name   string
	budget int64
}{
	{"unbounded", 0},
	{"tiny", budgetTiny},
	{"huge", budgetHuge},
}

func budgetConfig(mode Mode, sync Sync, budget int64) Config {
	cfg := equivConfig(mode, sync, TransportInProc)
	cfg.MsgMemoryBudget = budget
	return cfg
}

// checkBudgetRun asserts the invariants every budgeted run must hold,
// regardless of mode or algorithm.
func checkBudgetRun(t *testing.T, label string, mode Mode, budget int64, res Result) {
	t.Helper()
	if res.CreditImbalances != 0 {
		t.Errorf("%s: %d barriers saw unbalanced credit windows", label, res.CreditImbalances)
	}
	spilled := res.Metrics.Get(metrics.BytesSpilled)
	switch {
	case budget == 0:
		if spilled != 0 {
			t.Errorf("%s: unbounded run spilled %d bytes", label, spilled)
		}
	case budget == budgetHuge:
		if spilled != 0 {
			t.Errorf("%s: huge-budget run spilled %d bytes", label, spilled)
		}
	case mode == BSP:
		// Tiny budget under BSP must actually exercise the spill path,
		// otherwise the equality below is vacuous.
		if spilled == 0 {
			t.Errorf("%s: tiny-budget BSP run never spilled", label)
		}
	}
}

func TestBudgetEquivalenceMatrix(t *testing.T) {
	cells := []struct {
		name string
		mode Mode
		sync Sync
	}{
		{"bsp/none", BSP, SyncNone},
		{"async/none", Async, SyncNone},
		{"async/token-single", Async, TokenSingle},
		{"async/token-dual", Async, TokenDual},
		{"async/partition-lock", Async, PartitionLock},
		{"async/vertex-lock-giraph", Async, VertexLockGiraph},
	}
	for _, cell := range cells {
		cell := cell
		t.Run("sssp/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			want := algorithms.ShortestPaths(g, 0)
			for _, lvl := range budgetLevels {
				label := "sssp/" + cell.name + "/" + lvl.name
				dist, res, _, err := Run(g, algorithms.SSSP(0), budgetConfig(cell.mode, cell.sync, lvl.budget))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				checkBudgetRun(t, label, cell.mode, lvl.budget, res)
				for v := range want {
					if dist[v] != want[v] {
						t.Fatalf("%s: dist[%d] = %v, want %v", label, v, dist[v], want[v])
					}
				}
			}
		})
		t.Run("pagerank/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(false)
			const eps = 0.05
			aggregated := cell.mode == BSP
			got := make([][]float64, len(budgetLevels))
			steps := make([]int, len(budgetLevels))
			for i, lvl := range budgetLevels {
				label := "pagerank/" + cell.name + "/" + lvl.name
				prog := algorithms.PageRank(eps)
				if aggregated {
					prog = algorithms.PageRankAggregated(eps)
				}
				pr, res, _, err := Run(g, prog, budgetConfig(cell.mode, cell.sync, lvl.budget))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				checkBudgetRun(t, label, cell.mode, lvl.budget, res)
				got[i], steps[i] = pr, res.Supersteps
			}
			if cell.mode == BSP {
				// Schedule-deterministic: bitwise equality across budgets.
				for i := 1; i < len(got); i++ {
					if steps[i] != steps[0] {
						t.Fatalf("pagerank/%s: %s took %d supersteps, %s %d",
							cell.name, budgetLevels[0].name, steps[0], budgetLevels[i].name, steps[i])
					}
					for v := range got[0] {
						if got[i][v] != got[0][v] {
							t.Fatalf("pagerank/%s: budgets disagree at %d: %s %v, %s %v",
								cell.name, v, budgetLevels[0].name, got[0][v], budgetLevels[i].name, got[i][v])
						}
					}
				}
				return
			}
			// Schedule-dependent cells: each budget must satisfy the
			// residual bound on its own.
			maxIn := 0
			for v := 0; v < g.NumVertices(); v++ {
				if d := g.InDegree(graph.VertexID(v)); d > maxIn {
					maxIn = d
				}
			}
			bound := eps * float64(1+maxIn) * 4
			for i, lvl := range budgetLevels {
				if r := equivPagerankResidual(g, got[i], true); r > bound {
					t.Errorf("pagerank/%s/%s: residual %v exceeds bound %v",
						cell.name, lvl.name, r, bound)
				}
			}
		})
		t.Run("coloring/"+cell.name, func(t *testing.T) {
			t.Parallel()
			g := equivGraph(true)
			got := make([][]int32, len(budgetLevels))
			converged := make([]bool, len(budgetLevels))
			for i, lvl := range budgetLevels {
				label := "coloring/" + cell.name + "/" + lvl.name
				cfg := budgetConfig(cell.mode, cell.sync, lvl.budget)
				if cell.mode == BSP {
					// BSP coloring oscillates (Figure 2); bound it and
					// compare the deterministic non-converged state.
					cfg.MaxSupersteps = 30
				}
				colors, res, _, err := Run(g, algorithms.Coloring(), cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkBudgetRun(t, label, cell.mode, lvl.budget, res)
				got[i], converged[i] = colors, res.Converged
				if cell.mode != BSP && !res.Converged {
					t.Fatalf("%s: did not converge", label)
				}
				if res.Converged && cell.sync.Serializable() {
					if err := algorithms.ValidateColoring(g, colors); err != nil {
						t.Errorf("%s: %v", label, err)
					}
				}
			}
			if cell.mode == BSP {
				for i := 1; i < len(got); i++ {
					if converged[i] != converged[0] {
						t.Fatalf("coloring/%s: convergence differs across budgets", cell.name)
					}
					for v := range got[0] {
						if got[i][v] != got[0][v] {
							t.Fatalf("coloring/%s: budgets disagree at %d: %s %d, %s %d",
								cell.name, v, budgetLevels[0].name, got[0][v], budgetLevels[i].name, got[i][v])
						}
					}
				}
			}
		})
	}
}

// TestBudgetTinyOverTCP runs the most adversarial combination — tiny
// budget, real sockets, credit grant frames riding the reverse lanes,
// spill runs cut every superstep — and demands the result still matches
// an unbounded in-process run bitwise.
func TestBudgetTinyOverTCP(t *testing.T) {
	equivRequireLoopback(t)
	g := equivGraph(false)
	const eps = 0.05

	ref, refRes, _, err := Run(g, algorithms.PageRankAggregated(eps), budgetConfig(BSP, SyncNone, 0))
	if err != nil {
		t.Fatalf("unbounded reference: %v", err)
	}
	if !refRes.Converged {
		t.Fatal("unbounded reference did not converge")
	}

	cfg := equivConfig(BSP, SyncNone, TransportTCP)
	cfg.MsgMemoryBudget = budgetTiny
	pr, res, _, err := Run(g, algorithms.PageRankAggregated(eps), cfg)
	if err != nil {
		t.Fatalf("tiny/tcp: %v", err)
	}
	if !res.Converged {
		t.Fatal("tiny/tcp: did not converge")
	}
	checkBudgetRun(t, "tiny/tcp", BSP, budgetTiny, res)
	if res.Supersteps != refRes.Supersteps {
		t.Fatalf("tiny/tcp took %d supersteps, unbounded in-proc %d", res.Supersteps, refRes.Supersteps)
	}
	for v := range ref {
		if pr[v] != ref[v] {
			t.Fatalf("tiny/tcp disagrees with unbounded at %d: %v vs %v", v, pr[v], ref[v])
		}
	}
}
