package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/history"
	"serialgraph/internal/model"
)

// testGraph is a modest power-law graph shared by the engine tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return generate.PowerLaw(generate.PowerLawConfig{N: 400, AvgDegree: 6, Exponent: 2.2, Seed: 11})
}

func undirected(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

var allSyncs = []Sync{SyncNone, TokenSingle, TokenDual, PartitionLock}

func TestSSSPMatchesReferenceAllSyncs(t *testing.T) {
	g := testGraph(t)
	want := algorithms.ShortestPaths(g, 0)
	for _, sync := range allSyncs {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			dist, res, _, err := Run(g, algorithms.SSSP(0), Config{
				Workers: 4, Mode: Async, Sync: sync, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("did not converge in %d supersteps", res.Supersteps)
			}
			for v := range want {
				if dist[v] != want[v] {
					t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
				}
			}
		})
	}
}

func TestSSSPBSP(t *testing.T) {
	g := testGraph(t)
	want := algorithms.ShortestPaths(g, 0)
	dist, res, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 4, Mode: BSP, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BSP SSSP did not converge")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestWCCMatchesReferenceAllSyncs(t *testing.T) {
	g := undirected(testGraph(t))
	want := algorithms.Components(g)
	for _, sync := range allSyncs {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			labels, res, _, err := Run(g, algorithms.WCC(), Config{
				Workers: 3, Mode: Async, Sync: sync, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			for v := range want {
				if labels[v] != want[v] {
					t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
				}
			}
		})
	}
}

func TestColoringProperUnderSerializableSyncs(t *testing.T) {
	g := undirected(testGraph(t))
	for _, sync := range []Sync{TokenSingle, TokenDual, PartitionLock} {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			colors, res, _, err := Run(g, algorithms.Coloring(), Config{
				Workers: 4, Mode: Async, Sync: sync, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if err := algorithms.ValidateColoring(g, colors); err != nil {
				t.Fatal(err)
			}
			if res.Executions < int64(g.NumVertices()) {
				t.Errorf("only %d executions for %d vertices", res.Executions, g.NumVertices())
			}
		})
	}
}

func TestPageRankConvergesAllSyncs(t *testing.T) {
	g := testGraph(t)
	for _, sync := range allSyncs {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			pr, res, _, err := Run(g, algorithms.PageRank(0.001), Config{
				Workers: 4, Mode: Async, Sync: sync, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if r := algorithms.PageRankResidual(g, pr); r > 0.05 {
				t.Errorf("residual %.4f too large", r)
			}
		})
	}
}

func TestFigure2BSPOscillation(t *testing.T) {
	// The 4-vertex, 2-worker graph of §2.1 (Figure 2): under BSP the
	// recoloring algorithm oscillates between all-0 and all-1 forever.
	b := graph.NewBuilder(4)
	// v0-v2, v0-v3, v1-v2, v1-v3 (the figure's bipartite-ish square).
	for _, e := range [][2]graph.VertexID{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.BuildUndirected()
	colors, res, _, err := Run(g, algorithms.ColoringRecolor(), Config{
		Workers: 2, PartitionsPerWorker: 1, Mode: BSP, MaxSupersteps: 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("BSP recoloring converged (colors %v); the paper's oscillation should persist", colors)
	}
	// After an even number of full supersteps the vertices hold identical
	// colors — the collective 0/1 oscillation of Figure 2.
	c0 := colors[0]
	for v, c := range colors {
		if c != c0 {
			t.Errorf("vertex %d color %d, want uniform %d (lockstep oscillation)", v, c, c0)
		}
	}
}

func TestFigure2ResolvedBySerializability(t *testing.T) {
	b := graph.NewBuilder(4)
	for _, e := range [][2]graph.VertexID{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.BuildUndirected()
	colors, res, _, err := Run(g, algorithms.ColoringRecolor(), Config{
		Workers: 2, PartitionsPerWorker: 1, Mode: Async, Sync: PartitionLock,
		MaxSupersteps: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("serializable recoloring did not converge")
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestSerializabilityHistoryClean(t *testing.T) {
	// Every serializable technique must produce a history passing C1, C2,
	// and the 1SR check on the overwrite-semantics coloring workload.
	g := undirected(generate.PowerLaw(generate.PowerLawConfig{N: 150, AvgDegree: 5, Exponent: 2.2, Seed: 9}))
	for _, sync := range []Sync{TokenSingle, TokenDual, PartitionLock} {
		sync := sync
		t.Run(sync.String(), func(t *testing.T) {
			_, _, rec, err := Run(g, algorithms.Coloring(), Config{
				Workers: 4, Mode: Async, Sync: sync, Seed: 2, TrackHistory: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil || rec.Len() == 0 {
				t.Fatal("no history recorded")
			}
			if v := history.CheckAll(rec.Txns(), g); v != nil {
				t.Fatalf("violations under %v: %v (of %d txns)", sync, v[:min(3, len(v))], rec.Len())
			}
		})
	}
}

func TestNonSerializableEngineViolatesC2Eventually(t *testing.T) {
	// Giraph async without a synchronization technique lets neighboring
	// vertices run concurrently; on a dense graph with many workers the
	// checker must catch at least a C2 overlap. (This is the "only if"
	// direction of Theorem 1 made empirical.)
	g := generate.Complete(24)
	found := false
	for attempt := 0; attempt < 10 && !found; attempt++ {
		_, _, rec, err := Run(g, algorithms.PageRank(0.0001), Config{
			Workers: 4, Mode: Async, Sync: SyncNone, Seed: uint64(attempt),
			TrackHistory: true, MaxSupersteps: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range history.CheckAll(rec.Txns(), g) {
			if v.Kind == "C2" || v.Kind == "C1" {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no C1/C2 violation detected in 10 unsynchronized dense runs")
	}
}

func TestBSPWithSyncRejected(t *testing.T) {
	g := testGraph(t)
	for _, sync := range []Sync{TokenSingle, TokenDual, PartitionLock} {
		_, _, _, err := Run(g, algorithms.SSSP(0), Config{Workers: 2, Mode: BSP, Sync: sync})
		if err == nil {
			t.Errorf("BSP with %v was not rejected", sync)
		}
	}
}

func TestSingleWorkerAllSyncs(t *testing.T) {
	g := undirected(testGraph(t))
	for _, sync := range allSyncs {
		colors, res, _, err := Run(g, algorithms.Coloring(), Config{
			Workers: 1, Mode: Async, Sync: sync,
		})
		if err != nil {
			t.Fatalf("%v: %v", sync, err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", sync)
		}
		// A single worker executes partitions... coloring may still race
		// across partitions without sync; just require full color
		// assignment for SyncNone and propriety for serializable modes.
		if sync.Serializable() {
			if err := algorithms.ValidateColoring(g, colors); err != nil {
				t.Errorf("%v: %v", sync, err)
			}
		}
	}
}

func TestTokenScheduleDual(t *testing.T) {
	r := &runner[int32, int32]{cfg: Config{Workers: 3, PartitionsPerWorker: 2, Sync: TokenDual}}
	type hs struct{ h, l int }
	var got []hs
	for s := 0; s < 6; s++ {
		h, l := r.tokenState(s)
		got = append(got, hs{h, l})
	}
	want := []hs{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %+v, want %+v (schedule %v)", i, got[i], want[i], got)
		}
	}
}

func TestTokenSingleUsesOneThread(t *testing.T) {
	cfg := Config{Workers: 2, Sync: TokenSingle, ThreadsPerWorker: 8}.withDefaults()
	if cfg.ThreadsPerWorker != 1 {
		t.Errorf("TokenSingle threads = %d, want 1", cfg.ThreadsPerWorker)
	}
}

func TestAggregators(t *testing.T) {
	// A program that sums vertex count into an aggregator and reads it the
	// next superstep.
	g := generate.Ring(20)
	prog := countingProgram()
	vals, res, _, err := Run(g, prog, Config{Workers: 2, Mode: Async, MaxSupersteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	for v, x := range vals {
		if x != 20 {
			t.Fatalf("vertex %d read aggregate %v, want 20", v, x)
		}
	}
}

func TestResultStats(t *testing.T) {
	g := undirected(testGraph(t))
	_, res, _, err := Run(g, algorithms.Coloring(), Config{
		Workers: 4, Mode: Async, Sync: PartitionLock, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 16 {
		t.Errorf("Partitions = %d, want 16", res.Partitions)
	}
	if res.ForkSends == 0 || res.TokenSends == 0 {
		t.Errorf("no fork/token traffic recorded: %+v", res)
	}
	if res.Net.DataMessages == 0 {
		t.Error("no data batches recorded")
	}
	if res.MaxConcurrency < 1 {
		t.Error("no concurrency recorded")
	}
	if res.ComputeTime <= 0 {
		t.Error("no compute time recorded")
	}
}

func TestPageRankSumNearN(t *testing.T) {
	g := testGraph(t)
	pr, _, _, err := Run(g, algorithms.PageRank(0.0001), Config{Workers: 2, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range pr {
		sum += x
	}
	// Dangling-vertex leakage means sum <= n; it should still be within
	// range for a connected-ish graph.
	if sum < float64(g.NumVertices())/3 || sum > float64(g.NumVertices())*1.2 {
		t.Errorf("sum(pr) = %.1f for n = %d", sum, g.NumVertices())
	}
	if math.IsNaN(sum) {
		t.Error("NaN rank")
	}
}

// countingProgram aggregates 1 per vertex in superstep 0 and stores the
// aggregate in superstep 1.
func countingProgram() model.Program[float64, int32] {
	return model.Program[float64, int32]{
		Name:      "count",
		Semantics: model.Queue,
		MsgBytes:  4,
		Compute: func(ctx model.Context[float64, int32], msgs []int32) {
			switch ctx.Superstep() {
			case 0:
				ctx.Aggregate("n", 1)
			case 1:
				ctx.SetValue(ctx.Aggregated("n"))
				ctx.VoteToHalt()
			default:
				ctx.VoteToHalt()
			}
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSerializabilityPropertyRandomConfigs fuzzes graph shapes, cluster
// sizes, and techniques: every serializable configuration must produce a
// violation-free history and a proper coloring.
func TestSerializabilityPropertyRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(150)
		g := undirected(generate.PowerLaw(generate.PowerLawConfig{
			N: n, AvgDegree: 2 + float64(r.Intn(6)), Exponent: 2.0 + r.Float64(), Seed: seed,
		}))
		syncs := []Sync{TokenSingle, TokenDual, PartitionLock, VertexLockGiraph}
		sync := syncs[r.Intn(len(syncs))]
		cfg := Config{
			Workers:             1 + r.Intn(6),
			PartitionsPerWorker: 1 + r.Intn(5),
			ThreadsPerWorker:    1 + r.Intn(4),
			Mode:                Async,
			Sync:                sync,
			Seed:                uint64(seed),
			TrackHistory:        true,
		}
		colors, res, rec, err := Run(g, algorithms.Coloring(), cfg)
		if err != nil {
			t.Logf("seed %d %v: %v", seed, sync, err)
			return false
		}
		if !res.Converged {
			t.Logf("seed %d %v: not converged", seed, sync)
			return false
		}
		if algorithms.ValidateColoring(g, colors) != nil {
			t.Logf("seed %d %v: improper coloring", seed, sync)
			return false
		}
		if v := history.CheckAll(rec.Txns(), g); v != nil {
			t.Logf("seed %d %v: %v", seed, sync, v[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
