// Package fault is a seeded, deterministic fault injector for the
// simulated cluster. It reproduces the failure model that Distributed
// GraphLab and Pregelix treat as a first-class evaluation axis: worker
// crashes (whole-machine state loss), message drops, duplicated
// deliveries, and straggler delays — all scheduled up front so a chaos run
// is reproducible from its seed.
//
// The injector plugs into cluster.Transport as its FaultHook and into the
// engine's master loop via BeginSuperstep. Crashes can fire when a given
// superstep begins or once the cluster has delivered a given number of
// data messages; either way the transport's Kill semantics take over (the
// worker's data traffic is lost) and the engine detects the death at the
// next barrier and rolls the whole cluster back to its latest checkpoint.
//
// Message-level chaos (drop/duplicate/straggle) applies to data traffic
// only. Control and ack messages ride a reliable, TCP-like channel in
// real deployments, and randomly dropping forks or flush acks would wedge
// the coordination protocols rather than model any real failure.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/cluster"
)

// Crash schedules one worker failure. A crash is message-triggered when
// AfterMessages > 0 (it fires once the cluster has delivered that many
// data messages); otherwise it is superstep-triggered and fires when
// superstep AtSuperstep begins. Each crash fires at most once per run,
// even though recovery replays the superstep it fired in.
type Crash struct {
	// Worker is the victim's ID.
	Worker int
	// AtSuperstep fires the crash when this superstep begins (the worker
	// is dead for the whole superstep and the master detects it at the
	// superstep's barrier).
	AtSuperstep int
	// AfterMessages, when > 0, fires the crash mid-superstep instead:
	// after this many data messages have been delivered cluster-wide.
	AfterMessages int64
}

func (c Crash) String() string {
	if c.AfterMessages > 0 {
		return fmt.Sprintf("crash worker %d after %d data deliveries", c.Worker, c.AfterMessages)
	}
	return fmt.Sprintf("crash worker %d at superstep %d", c.Worker, c.AtSuperstep)
}

// CtrlDrop schedules a control-plane loss: starting when superstep
// AtSuperstep begins, the next Count control messages sent are lost on the
// wire (delivery-time drops, so the send-side control ledger that the
// metrics conservation checks reconcile stays exact). Losing a token, fork,
// or flush marker wedges the coordination protocol it belongs to — which is
// precisely the stall the engine's liveness watchdog exists to detect, so
// CtrlDrops are the watchdog's test vector rather than part of the random
// chaos space.
type CtrlDrop struct {
	// AtSuperstep arms the drop when this superstep begins.
	AtSuperstep int
	// Count is how many control messages to lose once armed.
	Count int
}

func (c CtrlDrop) String() string {
	return fmt.Sprintf("drop %d control messages at superstep %d", c.Count, c.AtSuperstep)
}

// Plan is the full fault schedule for one run.
type Plan struct {
	// Crashes lists the scheduled worker failures.
	Crashes []Crash
	// CtrlDrops lists scheduled control-message losses (see CtrlDrop).
	CtrlDrops []CtrlDrop
	// DropRate is the probability a data message is dropped in flight.
	DropRate float64
	// DuplicateRate is the probability a data message is delivered twice.
	DuplicateRate float64
	// StragglerRate is the probability a data message is delayed by
	// StragglerDelay on top of the latency model.
	StragglerRate float64
	// StragglerDelay is the extra delay applied to straggler messages.
	StragglerDelay time.Duration
	// Seed fixes the drop/duplicate/straggler pattern. Runs with the same
	// plan and the same message schedule make identical decisions.
	Seed uint64
}

// chaotic reports whether the plan includes message-level chaos.
func (p Plan) chaotic() bool {
	return p.DropRate > 0 || p.DuplicateRate > 0 || p.StragglerRate > 0
}

func (p Plan) String() string {
	if len(p.Crashes) == 0 && len(p.CtrlDrops) == 0 && !p.chaotic() {
		return "none"
	}
	return fmt.Sprintf("{crashes=%d ctrldrops=%d drop=%.3f dup=%.3f straggle=%.3f seed=%#x}",
		len(p.Crashes), len(p.CtrlDrops), p.DropRate, p.DuplicateRate, p.StragglerRate, p.Seed)
}

// RandomPlan draws a reproducible random fault schedule for a cluster of n
// workers: possibly a couple of worker crashes (superstep- or message-
// triggered) plus message-level chaos at modest rates. The same seed and
// cluster size always produce the same plan, so a randomized chaos sweep
// can be replayed from its seed. The returned plan always passes Validate
// for a cluster of n workers.
func RandomPlan(seed uint64, n int) Plan {
	r := rand.New(rand.NewSource(int64(seed)))
	p := Plan{Seed: seed}
	if n > 1 && r.Float64() < 0.5 {
		for i, k := 0, 1+r.Intn(2); i < k; i++ {
			c := Crash{Worker: r.Intn(n)}
			if r.Float64() < 0.3 {
				c.AfterMessages = int64(10 + r.Intn(190))
			} else {
				c.AtSuperstep = r.Intn(5)
			}
			p.Crashes = append(p.Crashes, c)
		}
	}
	if r.Float64() < 0.25 {
		p.DropRate = 0.01 + r.Float64()*0.05
	}
	if r.Float64() < 0.35 {
		p.DuplicateRate = 0.02 + r.Float64()*0.2
	}
	if r.Float64() < 0.35 {
		p.StragglerRate = 0.02 + r.Float64()*0.15
		p.StragglerDelay = time.Duration(20+r.Intn(200)) * time.Microsecond
	}
	return p
}

// Stats counts what the injector actually did.
type Stats struct {
	CrashesFired int64
	Drops        int64
	Duplicates   int64
	Delays       int64
	CtrlDrops    int64
}

// Injector executes a Plan against one run. Create one per run with
// NewInjector; an Injector must not be shared across runs (its crash
// schedule and message counters are single-use).
type Injector struct {
	plan Plan
	tr   atomic.Value // stores cluster.Transport

	mu       sync.Mutex
	rng      *rand.Rand
	fired    []bool // per Crashes entry
	ctrlLeft []int  // per CtrlDrops entry: losses still to inject

	curStep   atomic.Int64 // superstep last begun; -1 before the run
	delivered atomic.Int64 // data messages delivered cluster-wide

	crashesFired atomic.Int64
	drops        atomic.Int64
	duplicates   atomic.Int64
	delays       atomic.Int64
	ctrlDrops    atomic.Int64
}

// NewInjector builds an injector for the plan. Validate the plan against
// the cluster size with Validate before the run starts.
func NewInjector(p Plan) *Injector {
	in := &Injector{
		plan:     p,
		rng:      rand.New(rand.NewSource(int64(p.Seed))),
		fired:    make([]bool, len(p.Crashes)),
		ctrlLeft: make([]int, len(p.CtrlDrops)),
	}
	for i, c := range p.CtrlDrops {
		in.ctrlLeft[i] = c.Count
	}
	in.curStep.Store(-1)
	return in
}

// Plan returns the schedule the injector was built with.
func (in *Injector) Plan() Plan { return in.plan }

// Validate checks the plan against a cluster of n workers.
func (in *Injector) Validate(n int) error {
	for _, c := range in.plan.Crashes {
		if c.Worker < 0 || c.Worker >= n {
			return fmt.Errorf("fault: crash targets worker %d, cluster has %d", c.Worker, n)
		}
		if c.AfterMessages <= 0 && c.AtSuperstep < 0 {
			return fmt.Errorf("fault: crash for worker %d has no trigger", c.Worker)
		}
	}
	for _, c := range in.plan.CtrlDrops {
		if c.AtSuperstep < 0 {
			return fmt.Errorf("fault: ctrl drop armed at negative superstep %d", c.AtSuperstep)
		}
		if c.Count <= 0 {
			return fmt.Errorf("fault: ctrl drop at superstep %d with count %d", c.AtSuperstep, c.Count)
		}
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", in.plan.DropRate}, {"DuplicateRate", in.plan.DuplicateRate}, {"StragglerRate", in.plan.StragglerRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if in.plan.StragglerRate > 0 && in.plan.StragglerDelay <= 0 {
		return fmt.Errorf("fault: StragglerRate set with no StragglerDelay")
	}
	return nil
}

// Attach wires the injector into the transport. The engine calls it after
// creating the transport and before any traffic flows.
func (in *Injector) Attach(tr cluster.Transport) {
	in.tr.Store(tr)
	tr.SetFaultHook(in)
}

// BeginSuperstep fires every unfired superstep-triggered crash scheduled
// for superstep s. The engine's master calls it before dispatching the
// superstep, so the victim is dead for the superstep's whole duration.
func (in *Injector) BeginSuperstep(s int) {
	in.curStep.Store(int64(s))
	tr, _ := in.tr.Load().(cluster.Transport)
	if tr == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, c := range in.plan.Crashes {
		if in.fired[i] || c.AfterMessages > 0 || c.AtSuperstep != s {
			continue
		}
		in.fired[i] = true
		in.crashesFired.Add(1)
		tr.Kill(cluster.WorkerID(c.Worker))
	}
}

// OnSend implements cluster.FaultHook: it rolls the seeded dice for data
// messages. Decisions are made in send order under a lock, so a fixed
// message schedule replays the exact same drop/duplicate/delay pattern.
func (in *Injector) OnSend(m cluster.Message) cluster.Fate {
	if m.Kind == cluster.Control && len(in.plan.CtrlDrops) > 0 {
		step := int(in.curStep.Load())
		lost := false
		in.mu.Lock()
		for i, c := range in.plan.CtrlDrops {
			if step >= c.AtSuperstep && in.ctrlLeft[i] > 0 {
				in.ctrlLeft[i]--
				lost = true
				break
			}
		}
		in.mu.Unlock()
		if lost {
			in.ctrlDrops.Add(1)
			return cluster.Fate{DropDelivery: true}
		}
	}
	if m.Kind != cluster.Data || !in.plan.chaotic() {
		return cluster.Fate{}
	}
	in.mu.Lock()
	drop := in.plan.DropRate > 0 && in.rng.Float64() < in.plan.DropRate
	dup := in.plan.DuplicateRate > 0 && in.rng.Float64() < in.plan.DuplicateRate
	straggle := in.plan.StragglerRate > 0 && in.rng.Float64() < in.plan.StragglerRate
	in.mu.Unlock()
	var f cluster.Fate
	if drop {
		in.drops.Add(1)
		f.Drop = true
		return f
	}
	if dup {
		in.duplicates.Add(1)
		f.Duplicates = 1
	}
	if straggle {
		in.delays.Add(1)
		f.Delay = in.plan.StragglerDelay
	}
	return f
}

// OnDeliver implements cluster.FaultHook: it advances the delivered-data
// counter and fires any message-triggered crash whose threshold has been
// crossed.
func (in *Injector) OnDeliver(m cluster.Message) {
	if m.Kind != cluster.Data {
		return
	}
	n := in.delivered.Add(1)
	tr, _ := in.tr.Load().(cluster.Transport)
	if tr == nil {
		return
	}
	for i, c := range in.plan.Crashes {
		if c.AfterMessages <= 0 || n < c.AfterMessages {
			continue
		}
		in.mu.Lock()
		hit := !in.fired[i]
		if hit {
			in.fired[i] = true
		}
		in.mu.Unlock()
		if hit {
			in.crashesFired.Add(1)
			tr.Kill(cluster.WorkerID(c.Worker))
		}
	}
}

// Delivered returns the number of data messages delivered so far.
func (in *Injector) Delivered() int64 { return in.delivered.Load() }

// Stats reports what the injector did.
func (in *Injector) Stats() Stats {
	return Stats{
		CrashesFired: in.crashesFired.Load(),
		Drops:        in.drops.Load(),
		Duplicates:   in.duplicates.Load(),
		Delays:       in.delays.Load(),
		CtrlDrops:    in.ctrlDrops.Load(),
	}
}

// Exhausted reports whether every scheduled crash has fired and every
// scheduled control drop has been injected, which chaos tests use to assert
// the schedule actually executed.
func (in *Injector) Exhausted() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.fired {
		if !f {
			return false
		}
	}
	for _, left := range in.ctrlLeft {
		if left > 0 {
			return false
		}
	}
	return true
}
