package fault

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"serialgraph/internal/cluster"
)

func dataMsg(from, to cluster.WorkerID) cluster.Message {
	return cluster.Message{From: from, To: to, Kind: cluster.Data, Bytes: 10}
}

func TestSeededDecisionsAreDeterministic(t *testing.T) {
	plan := Plan{DropRate: 0.3, DuplicateRate: 0.2, StragglerRate: 0.1, StragglerDelay: time.Millisecond, Seed: 42}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 1000; i++ {
		fa := a.OnSend(dataMsg(0, 1))
		fb := b.OnSend(dataMsg(0, 1))
		if fa != fb {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Drops == 0 || a.Stats().Duplicates == 0 || a.Stats().Delays == 0 {
		t.Fatalf("expected some of each fault kind, got %+v", a.Stats())
	}
}

func TestControlTrafficIsNeverTouched(t *testing.T) {
	in := NewInjector(Plan{DropRate: 1, Seed: 1})
	for _, k := range []cluster.Kind{cluster.Control, cluster.Ack} {
		f := in.OnSend(cluster.Message{From: 0, To: 1, Kind: k})
		if f != (cluster.Fate{}) {
			t.Errorf("%v message got fate %+v", k, f)
		}
	}
	if in.Stats().Drops != 0 {
		t.Errorf("control drops counted: %+v", in.Stats())
	}
}

func TestSuperstepCrashFiresOnce(t *testing.T) {
	tr := cluster.New(3, cluster.LatencyModel{})
	defer tr.Close()
	for w := 0; w < 3; w++ {
		tr.RegisterHandler(cluster.WorkerID(w), func(m cluster.Message) {})
	}
	in := NewInjector(Plan{Crashes: []Crash{{Worker: 2, AtSuperstep: 1}}})
	if err := in.Validate(3); err != nil {
		t.Fatal(err)
	}
	in.Attach(tr)

	in.BeginSuperstep(0)
	if !tr.Alive(2) {
		t.Fatal("crash fired early")
	}
	in.BeginSuperstep(1)
	if tr.Alive(2) {
		t.Fatal("crash did not fire")
	}
	if !in.Exhausted() {
		t.Fatal("schedule not exhausted")
	}
	// Recovery revives the worker and replays superstep 1; the crash must
	// not fire again.
	tr.Revive(2)
	in.BeginSuperstep(1)
	if !tr.Alive(2) {
		t.Fatal("crash fired twice")
	}
	if got := in.Stats().CrashesFired; got != 1 {
		t.Fatalf("CrashesFired = %d, want 1", got)
	}
}

func TestMessageTriggeredCrash(t *testing.T) {
	tr := cluster.New(2, cluster.LatencyModel{})
	defer tr.Close()
	for w := 0; w < 2; w++ {
		tr.RegisterHandler(cluster.WorkerID(w), func(m cluster.Message) {})
	}
	in := NewInjector(Plan{Crashes: []Crash{{Worker: 1, AfterMessages: 5}}})
	in.Attach(tr)
	for i := 0; i < 10; i++ {
		tr.Send(dataMsg(0, 1))
	}
	tr.WaitIdle()
	if tr.Alive(1) {
		t.Fatal("message-triggered crash never fired")
	}
	if in.Delivered() < 5 {
		t.Fatalf("Delivered = %d, want >= 5", in.Delivered())
	}
	// Once dead, further data to the worker is dropped and accounted.
	if d := tr.Stats().Load().DroppedMessages; d == 0 {
		t.Fatal("no dropped messages counted after the crash")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		plan Plan
		ok   bool
	}{
		{Plan{}, true},
		{Plan{Crashes: []Crash{{Worker: 3, AtSuperstep: 0}}}, false}, // worker out of range for n=2
		{Plan{Crashes: []Crash{{Worker: 0, AtSuperstep: -1}}}, false},
		{Plan{DropRate: 1.5}, false},
		{Plan{StragglerRate: 0.5}, false}, // no delay
		{Plan{StragglerRate: 0.5, StragglerDelay: time.Millisecond}, true},
		{Plan{Crashes: []Crash{{Worker: 1, AfterMessages: 10, AtSuperstep: -1}}}, true},
	}
	for i, c := range cases {
		err := NewInjector(c.plan).Validate(2)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	for seed := uint64(1); seed < 200; seed++ {
		for _, n := range []int{1, 2, 4} {
			a, b := RandomPlan(seed, n), RandomPlan(seed, n)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("RandomPlan(%d, %d) not deterministic:\n%v\n%v", seed, n, a, b)
			}
			if err := NewInjector(a).Validate(n); err != nil {
				t.Fatalf("RandomPlan(%d, %d) fails its own Validate: %v", seed, n, err)
			}
			if n == 1 && len(a.Crashes) > 0 {
				t.Fatalf("RandomPlan(%d, 1) schedules a crash on a 1-worker cluster", seed)
			}
		}
	}
}

func TestRandomPlanCoversEveryAxis(t *testing.T) {
	// Over many seeds the generator must exercise each fault class at least
	// once — a sampler axis that can never fire is dead weight.
	var crashes, drops, dups, straggles, clean int
	for seed := uint64(0); seed < 500; seed++ {
		p := RandomPlan(seed, 4)
		if len(p.Crashes) > 0 {
			crashes++
		}
		if p.DropRate > 0 {
			drops++
		}
		if p.DuplicateRate > 0 {
			dups++
		}
		if p.StragglerRate > 0 {
			straggles++
		}
		if len(p.Crashes) == 0 && !p.chaotic() {
			clean++
		}
	}
	for name, n := range map[string]int{
		"crashes": crashes, "drops": drops, "duplicates": dups,
		"stragglers": straggles, "clean": clean,
	} {
		if n == 0 {
			t.Errorf("axis %q never sampled in 500 plans", name)
		}
	}
}

func TestPlanString(t *testing.T) {
	if s := (Plan{}).String(); s != "none" {
		t.Errorf("empty plan String = %q, want none", s)
	}
	p := Plan{Crashes: []Crash{{Worker: 1, AtSuperstep: 2}}, DropRate: 0.5, Seed: 0xab}
	if s := p.String(); !strings.Contains(s, "crashes=1") || !strings.Contains(s, "0xab") {
		t.Errorf("plan String = %q missing fields", s)
	}
}
