// Package giraphx emulates Giraphx (Tasci & Demirbas, Euro-Par '13), the
// paper's algorithm-level baseline (§7.3): synchronization implemented
// *inside the user algorithm* on top of a plain BSP engine, rather than at
// the system level. Giraphx only implemented its techniques for graph
// coloring, so that is what this package provides:
//
//   - TokenColoring: single-layer token passing in-algorithm. A vertex may
//     color itself only in the superstep of its worker's token turn, and
//     within a turn same-worker neighbor conflicts are serialized by vertex
//     ID priority (emulating Giraphx's single-threaded sequential worker).
//
//   - LockColoring: vertex-based locking in-algorithm, with fork/grant
//     exchanges happening only at global barriers (the constrained scheme
//     of Proposition 1): each logical iteration costs three sub-supersteps
//     (request, grant, color).
//
// Both are correct, serializable-equivalent colorings, and both pay the
// multiplied-superstep and per-algorithm overhead the paper measures
// Giraphx paying: 30–103× slower than the system-level techniques.
package giraphx

import (
	"serialgraph/internal/graph"
	"serialgraph/internal/model"
	"serialgraph/internal/partition"
)

// ColorMsg carries a sender-tagged color, needed because the in-algorithm
// techniques must know *which* neighbor has colored, not just the color
// multiset.
type ColorMsg struct {
	From  graph.VertexID
	Color int32
}

const noColor = -1

// TokenValue is the per-vertex state of TokenColoring. In-algorithm
// techniques must track neighbor state inside the vertex value because BSP
// messages are visible for only one superstep — exactly the state Giraphx
// makes every algorithm carry, and one of the usability costs §7.3
// criticizes.
type TokenValue struct {
	Color int32
	Known map[graph.VertexID]int32 // colors learned from neighbors so far
}

// TokenColoring builds the in-algorithm single-layer token coloring over
// the given partition map. The returned program must run on the BSP engine
// with the same map (use engine.Config.Partitioner).
func TokenColoring(g *graph.Graph, pm *partition.Map) model.Program[TokenValue, ColorMsg] {
	n := g.NumVertices()
	workers := pm.W
	workerOf := make([]int32, n)
	// priorityNbs[u] lists the same-worker neighbors of u with smaller ID:
	// u may color only after all of them have (the in-algorithm emulation
	// of Giraphx's sequential single-threaded worker execution).
	priorityNbs := make([][]graph.VertexID, n)
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		workerOf[v] = int32(pm.WorkerOf(u))
		g.Neighbors(u, func(x graph.VertexID) {
			if x < u && pm.WorkerOf(x) == pm.WorkerOf(u) {
				priorityNbs[v] = append(priorityNbs[v], x)
			}
		})
	}

	return model.Program[TokenValue, ColorMsg]{
		Name:      "giraphx-token-coloring",
		Semantics: model.Queue,
		MsgBytes:  8,
		Init: func(graph.VertexID, *graph.Graph) TokenValue {
			return TokenValue{Color: noColor}
		},
		Compute: func(ctx model.Context[TokenValue, ColorMsg], msgs []ColorMsg) {
			v := ctx.Value()
			if len(msgs) > 0 {
				if v.Known == nil {
					v.Known = make(map[graph.VertexID]int32)
				}
				for _, m := range msgs {
					v.Known[m.From] = m.Color
				}
				ctx.SetValue(v)
			}
			if v.Color != noColor {
				ctx.VoteToHalt() // already colored; wake-ups just record state
				return
			}
			u := ctx.ID()
			if ctx.Superstep()%workers != int(workerOf[u]) {
				return // not our worker's token turn; stay active
			}
			// Wait for all higher-priority same-worker neighbors.
			for _, x := range priorityNbs[u] {
				if _, ok := v.Known[x]; !ok {
					return // a smaller same-worker neighbor is uncolored
				}
			}
			used := make([]int32, 0, len(v.Known))
			for _, c := range v.Known {
				used = append(used, c)
			}
			v.Color = mex(used)
			ctx.SetValue(v)
			ctx.SendToAllOut(ColorMsg{From: u, Color: v.Color})
			ctx.VoteToHalt()
		},
	}
}

// Lock message kinds for LockColoring's three-phase protocol.
const (
	lockRequest int32 = iota
	lockGrant
)

// LockMsg is a request or a grant (grants from colored vertices carry the
// granter's color).
type LockMsg struct {
	Kind  int32
	From  graph.VertexID
	Color int32 // granter's color, or noColor if the granter is uncolored
}

// lockPhase returns the sub-superstep phase: 0 request, 1 grant, 2 color.
func lockPhase(s int) int { return s % 3 }

// LockColoring builds the in-algorithm vertex-based locking coloring with
// barrier-synchronized fork exchanges (Proposition 1). Every logical
// coloring round takes three BSP supersteps:
//
//	phase 0: every uncolored vertex requests its neighbors' forks;
//	phase 1: each vertex grants to requesters that precede it (smaller ID)
//	         or to anyone once the granter is colored;
//	phase 2: a requester holding grants from every neighbor colors itself
//	         with the smallest color not used by any granter.
func LockColoring(g *graph.Graph) model.Program[int32, LockMsg] {
	return model.Program[int32, LockMsg]{
		Name:      "giraphx-lock-coloring",
		Semantics: model.Queue,
		MsgBytes:  9,
		Init:      func(graph.VertexID, *graph.Graph) int32 { return noColor },
		Compute: func(ctx model.Context[int32, LockMsg], msgs []LockMsg) {
			u := ctx.ID()
			switch lockPhase(ctx.Superstep()) {
			case 0: // request
				if ctx.Value() == noColor {
					ctx.SendToAllOut(LockMsg{Kind: lockRequest, From: u})
					// Stay active: we must collect grants in phase 2.
					return
				}
				ctx.VoteToHalt()
			case 1: // grant
				mine := ctx.Value()
				for _, m := range msgs {
					if m.Kind != lockRequest {
						continue
					}
					if mine != noColor || m.From < u {
						ctx.Send(m.From, LockMsg{Kind: lockGrant, From: u, Color: mine})
					}
				}
				if mine != noColor {
					ctx.VoteToHalt()
				}
			case 2: // color
				if ctx.Value() != noColor {
					ctx.VoteToHalt()
					return
				}
				grants := 0
				used := make([]int32, 0, len(msgs))
				for _, m := range msgs {
					if m.Kind != lockGrant {
						continue
					}
					grants++
					if m.Color != noColor {
						used = append(used, m.Color)
					}
				}
				if grants == g.InDegree(u) {
					ctx.SetValue(mex(used))
					ctx.VoteToHalt()
				}
				// Otherwise stay active for the next request phase.
			}
		},
	}
}

// mex returns the smallest non-negative integer not in used.
func mex(used []int32) int32 {
	seen := make(map[int32]struct{}, len(used))
	max := int32(-1)
	for _, c := range used {
		if c >= 0 {
			seen[c] = struct{}{}
			if c > max {
				max = c
			}
		}
	}
	for c := int32(0); c <= max+1; c++ {
		if _, ok := seen[c]; !ok {
			return c
		}
	}
	return max + 1
}
