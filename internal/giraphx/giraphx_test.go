package giraphx

import (
	"testing"

	"serialgraph/internal/algorithms"
	"serialgraph/internal/engine"
	"serialgraph/internal/generate"
	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
	"serialgraph/internal/partition"
)

func undirectedPowerLaw(n int, seed int64) *graph.Graph {
	g := generate.PowerLaw(generate.PowerLawConfig{N: n, AvgDegree: 5, Exponent: 2.2, Seed: seed})
	b := graph.NewBuilder(g.NumVertices())
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, v)
		}
	}
	return b.BuildUndirected()
}

func TestMex(t *testing.T) {
	for _, c := range []struct {
		in   []int32
		want int32
	}{
		{nil, 0}, {[]int32{0, 1}, 2}, {[]int32{1, 2}, 0}, {[]int32{noColor, 0}, 1},
	} {
		if got := mex(c.in); got != c.want {
			t.Errorf("mex(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTokenColoringProper(t *testing.T) {
	g := undirectedPowerLaw(200, 6)
	workers := 4
	pm := partition.NewHash(g, workers, workers, 1)
	prog := TokenColoring(g, pm)
	vals, res, _, err := engine.Run(g, prog, engine.Config{
		Workers: workers, PartitionsPerWorker: 1, Mode: engine.BSP,
		Partitioner:   func(*graph.Graph, int, int) *partition.Map { return pm },
		MaxSupersteps: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d supersteps", res.Supersteps)
	}
	colors := make([]int32, len(vals))
	for i, v := range vals {
		colors[i] = v.Color
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	// Token passing gates turns: expect at least `workers` supersteps.
	if res.Supersteps < workers {
		t.Errorf("only %d supersteps for %d workers", res.Supersteps, workers)
	}
}

func TestLockColoringProper(t *testing.T) {
	g := undirectedPowerLaw(200, 7)
	vals, res, _, err := engine.Run(g, LockColoring(g), engine.Config{
		Workers: 4, Mode: engine.BSP, Seed: 2, MaxSupersteps: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d supersteps", res.Supersteps)
	}
	if err := algorithms.ValidateColoring(g, vals); err != nil {
		t.Fatal(err)
	}
	// Three sub-supersteps per round (Proposition 1's barrier-synchronized
	// exchanges).
	if res.Supersteps < 3 {
		t.Errorf("suspiciously few supersteps: %d", res.Supersteps)
	}
}

func TestLockColoringDenseGraph(t *testing.T) {
	// A clique forces full serialization: exactly one vertex colors per
	// round, so K12 needs ≥ 3*12 supersteps. This is the adversarial case
	// where serializability is required for termination (§1).
	g := generate.Complete(12)
	vals, res, _, err := engine.Run(g, LockColoring(g), engine.Config{
		Workers: 3, Mode: engine.BSP, MaxSupersteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("clique coloring did not converge")
	}
	if err := algorithms.ValidateColoring(g, vals); err != nil {
		t.Fatal(err)
	}
	if got := algorithms.ColorsUsed(vals); got != 12 {
		t.Errorf("clique used %d colors, want 12", got)
	}
	if res.Supersteps < 3*12 {
		t.Errorf("K12 colored in %d supersteps, expected >= 36", res.Supersteps)
	}
}

func TestTokenColoringSingleWorker(t *testing.T) {
	g := undirectedPowerLaw(100, 9)
	pm := partition.NewHash(g, 1, 1, 1)
	vals, res, _, err := engine.Run(g, TokenColoring(g, pm), engine.Config{
		Workers: 1, Mode: engine.BSP,
		Partitioner:   func(*graph.Graph, int, int) *partition.Map { return pm },
		MaxSupersteps: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	colors := make([]int32, len(vals))
	for i, v := range vals {
		colors[i] = v.Color
	}
	if err := algorithms.ValidateColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestGiraphxSlowerThanSystemLevel(t *testing.T) {
	// The qualitative §7.3 claim: in-algorithm techniques burn far more
	// supersteps (hence barrier and communication overhead) than the
	// system-level partition-based locking, which colors in a handful of
	// asynchronous supersteps.
	g := undirectedPowerLaw(300, 10)
	workers := 4
	pm := partition.NewHash(g, workers, workers, 1)
	_, gx, _, err := engine.Run(g, TokenColoring(g, pm), engine.Config{
		Workers: workers, PartitionsPerWorker: 1, Mode: engine.BSP,
		Partitioner:   func(*graph.Graph, int, int) *partition.Map { return pm },
		MaxSupersteps: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, sys, _, err := engine.Run(g, algorithms.Coloring(), engine.Config{
		Workers: workers, Mode: engine.Async, Sync: engine.PartitionLock, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gx.Converged || !sys.Converged {
		t.Fatal("a run did not converge")
	}
	if gx.Supersteps <= sys.Supersteps {
		t.Errorf("Giraphx %d supersteps <= system-level %d", gx.Supersteps, sys.Supersteps)
	}
}

// TestGiraphxMetricsReconcile pins how the in-algorithm techniques show
// up in the metrics registry: their coordination travels as ordinary
// data messages, so the data-side ledger reconciles with the transport
// exactly while every engine-level sync counter (locks, forks, flush
// markers, tokens) stays zero — the §7.3 contrast with the system-level
// techniques, now machine-checkable.
func TestGiraphxMetricsReconcile(t *testing.T) {
	g := undirectedPowerLaw(200, 6)
	workers := 4
	pm := partition.NewHash(g, workers, workers, 1)
	_, res, _, err := engine.Run(g, TokenColoring(g, pm), engine.Config{
		Workers: workers, PartitionsPerWorker: 1, Mode: engine.BSP,
		Partitioner:   func(*graph.Graph, int, int) *partition.Map { return pm },
		MaxSupersteps: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if got, want := m.Get(metrics.RemoteBatches), res.Net.DataMessages; got != want {
		t.Errorf("remote_batches = %d, transport DataMessages = %d", got, want)
	}
	if got, want := m.Get(metrics.Executions), res.Executions; got != want {
		t.Errorf("executions counter = %d, Result.Executions = %d", got, want)
	}
	if got, want := m.Get(metrics.Supersteps), int64(res.Supersteps); got != want {
		t.Errorf("supersteps counter = %d, Result.Supersteps = %d", got, want)
	}
	if m.Get(metrics.LocalMessages)+m.Get(metrics.RemoteEntries) == 0 {
		t.Error("in-algorithm token passing sends its coordination as data; none counted")
	}
	for _, id := range []metrics.CounterID{
		metrics.LockAcquires, metrics.ForkGrants, metrics.TokenSends,
		metrics.FlushMarkers, metrics.CtrlMessages,
	} {
		if v := m.Get(id); v != 0 {
			t.Errorf("in-algorithm run used engine-level sync: %s = %d", id.Name(), v)
		}
	}
}
