package cluster

// frame.go defines the length-prefixed binary frame that every TCP-backed
// message travels in. The layout is deliberately payload-agnostic: this
// file knows how to move a typed envelope (who, what kind, simulated
// size, fault metadata) plus opaque payload bytes; encoding the payload
// itself is the PayloadCodec's job (implemented generically over the
// message type in internal/wire).
//
// Wire layout (all multi-byte integers big-endian or unsigned varints):
//
//	u32  body length (bytes after this field; <= MaxFrameBytes)
//	u8   frame type (Frame* constants)
//	u8   flags (FlagWireLost)
//	zigzag varint  from  (worker ID; -1 = coordinator in dist mode)
//	zigzag varint  to
//	uvarint        declared bytes (the simulated Message.Bytes ledger)
//	uvarint        straggler delay in nanoseconds (injected Fate.Delay)
//	...  payload bytes (frame-type specific)
//
// Versioning: ProtocolVersion is carried in the Hello frame that opens
// every connection (both the intra-process TCP backend's preamble and the
// multi-process driver's handshake); peers with a different version
// refuse the connection rather than misparse frames.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// ProtocolVersion is the wire protocol generation. Bump it whenever the
// frame layout or any payload encoding changes incompatibly.
const ProtocolVersion = 2

// MaxFrameBytes caps the declared body length of a single frame. A peer
// (or fuzzer) claiming a larger frame is rejected before any allocation,
// so corrupt length prefixes can never balloon memory.
const MaxFrameBytes = 16 << 20

// Frame types. The low range carries engine traffic (one frame per
// cluster.Message); the 0x1x range carries the multi-process driver's
// coordination protocol.
const (
	// FrameData is a batch of vertex messages ([]msgstore.Entry[M]).
	FrameData byte = 0x01
	// FrameCtrl is a Chandy–Misra fork/token control message.
	FrameCtrl byte = 0x02
	// FrameFlush is a FlushMarker.
	FrameFlush byte = 0x03
	// FrameAck is an AckMsg.
	FrameAck byte = 0x04
	// FrameCredit is a CreditGrant: the receiver of earlier data returns
	// credit-window bytes to the sender. Credit frames are transport-level
	// traffic — the receiver's pump consumes them directly (releasing the
	// sender's window) without delivering to a handler or touching the
	// per-kind message ledger; only the true wire-byte counters see them.
	FrameCredit byte = 0x05

	// FrameHello opens every connection: protocol version + sender
	// identity (and, for the multi-process driver, a listen address).
	FrameHello byte = 0x10
	// FrameJob carries the coordinator's job spec to a worker process.
	FrameJob byte = 0x11
	// FrameStepStart tells workers to execute one superstep.
	FrameStepStart byte = 0x12
	// FrameStepDone reports a worker's superstep results to the master.
	FrameStepDone byte = 0x13
	// FrameBarrier is the data-plane flush barrier between worker
	// processes: by FIFO order it proves all of the sender's data frames
	// for the superstep have been received.
	FrameBarrier byte = 0x14
	// FrameValues carries final (vertex, value) pairs back to the master.
	FrameValues byte = 0x15
	// FrameFinish ends the run (converged flag + superstep count).
	FrameFinish byte = 0x16
)

// Frame flags.
const (
	// FlagWireLost marks a frame the fault injector decided to lose on
	// the wire (Fate.DropDelivery): it crosses the socket so the sender's
	// ledger counts it, then the receiver discards it and counts a drop —
	// exactly mirroring the Mem backend's wire-loss accounting.
	FlagWireLost byte = 1 << 0
)

// KindOfFrame maps an engine-traffic frame type to its accounting Kind.
func KindOfFrame(ftype byte) Kind {
	switch ftype {
	case FrameData:
		return Data
	case FrameAck:
		return Ack
	default:
		return Control
	}
}

// Frame is the decoded envelope of one wire frame.
type Frame struct {
	Type     byte
	Flags    byte
	From, To WorkerID
	// Declared is the simulated byte size from Message.Bytes, carried so
	// both ends agree on the ledger the conservation checks reconcile.
	Declared int
	// Delay is straggler latency injected by a fault hook, applied by the
	// receiver's read pump (head-of-line, like a Mem lane).
	Delay   time.Duration
	Payload []byte
}

// Frame decoding errors. Decoders must return these (wrapped is fine) and
// never panic: FuzzFrameDecode feeds arbitrary bytes through this path.
var (
	ErrFrameTooLarge = errors.New("cluster: frame exceeds MaxFrameBytes")
	ErrFrameTruncated = errors.New("cluster: truncated frame")
	ErrFrameCorrupt   = errors.New("cluster: corrupt frame")
)

// PayloadCodec encodes and decodes frame payloads. The engine supplies a
// codec specialized to its message type (wire.NewCodec[M]); the transport
// itself never inspects payloads.
type PayloadCodec interface {
	// EncodePayload appends payload's encoding to dst and returns the
	// frame type byte and the extended buffer. It fails on payload types
	// the codec does not know.
	EncodePayload(payload any, dst []byte) (ftype byte, out []byte, err error)
	// DecodePayload parses the payload bytes of a frame of type ftype.
	// It must validate lengths before allocating and return an error —
	// never panic — on malformed input.
	DecodePayload(ftype byte, data []byte) (payload any, err error)
}

// AppendZigzag appends v in zigzag varint encoding (small magnitudes of
// either sign stay small on the wire).
func AppendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// Zigzag decodes a zigzag varint from b, returning the value and bytes
// consumed (n <= 0 means truncated/corrupt, as in binary.Uvarint).
func Zigzag(b []byte) (int64, int) {
	u, n := binary.Uvarint(b)
	return int64(u>>1) ^ -int64(u&1), n
}

// AppendFrame appends f's wire encoding to dst.
func AppendFrame(dst []byte, f *Frame) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	dst = append(dst, f.Type, f.Flags)
	dst = AppendZigzag(dst, int64(f.From))
	dst = AppendZigzag(dst, int64(f.To))
	dst = binary.AppendUvarint(dst, uint64(f.Declared))
	dst = binary.AppendUvarint(dst, uint64(f.Delay))
	dst = append(dst, f.Payload...)
	body := len(dst) - lenAt - 4
	if body > MaxFrameBytes {
		panic(fmt.Sprintf("cluster: encoded frame body %d exceeds MaxFrameBytes", body))
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(body))
	return dst
}

// decodeBody parses a frame body (everything after the length prefix).
// The returned Frame's Payload aliases b.
func decodeBody(b []byte) (Frame, error) {
	var f Frame
	if len(b) < 2 {
		return f, ErrFrameTruncated
	}
	f.Type, f.Flags = b[0], b[1]
	b = b[2:]
	from, n := Zigzag(b)
	if n <= 0 {
		return f, ErrFrameCorrupt
	}
	b = b[n:]
	to, n := Zigzag(b)
	if n <= 0 {
		return f, ErrFrameCorrupt
	}
	b = b[n:]
	declared, n := binary.Uvarint(b)
	if n <= 0 || declared > math.MaxInt32 {
		return f, ErrFrameCorrupt
	}
	b = b[n:]
	delay, n := binary.Uvarint(b)
	if n <= 0 || delay > uint64(math.MaxInt64) {
		return f, ErrFrameCorrupt
	}
	b = b[n:]
	if from < math.MinInt32 || from > math.MaxInt32 || to < math.MinInt32 || to > math.MaxInt32 {
		return f, ErrFrameCorrupt
	}
	f.From, f.To = WorkerID(from), WorkerID(to)
	f.Declared = int(declared)
	f.Delay = time.Duration(delay)
	f.Payload = b
	return f, nil
}

// DecodeFrame parses one complete frame from the front of b, returning
// the frame and the total bytes consumed. The returned Payload aliases b.
// It validates the length prefix against both MaxFrameBytes and len(b)
// before touching the body, so it never over-reads or over-allocates.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrFrameTruncated
	}
	body := binary.BigEndian.Uint32(b)
	if body > MaxFrameBytes {
		return Frame{}, 0, ErrFrameTooLarge
	}
	if uint32(len(b)-4) < body {
		return Frame{}, 0, ErrFrameTruncated
	}
	f, err := decodeBody(b[4 : 4+body])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, 4 + int(body), nil
}

// ReadFrame reads one frame from r, returning it and the wire bytes
// consumed (length prefix included). The length prefix is validated
// against MaxFrameBytes before the body is allocated. io.EOF is returned
// untouched on a clean connection close (no bytes read).
func ReadFrame(r *bufio.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, 0, ErrFrameTruncated
		}
		return Frame{}, 0, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > MaxFrameBytes {
		return Frame{}, 0, ErrFrameTooLarge
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, 0, ErrFrameTruncated
	}
	f, err := decodeBody(buf)
	if err != nil {
		return Frame{}, 0, err
	}
	return f, 4 + int(body), nil
}
