package cluster

// tcp.go is the real-socket transport backend. It keeps the exact
// delivery semantics of the Mem simulator — per-pair FIFO, never-blocking
// Send, inflight accounting for WaitIdle, Kill/Revive drop rules, fault
// hook fidelity — but moves every message through a loopback TCP
// connection as encoded frames:
//
//   - one persistent connection per ordered (sender, receiver) pair,
//     including self-pairs, so a lane is exactly a socket and TCP's
//     byte-stream ordering is the FIFO guarantee;
//   - a writer goroutine per connection that drains its queue into a
//     buffered writer and flushes only when the queue runs empty (write
//     coalescing: bursts of batches share one syscall);
//   - a read pump per connection that decodes frames sequentially and
//     invokes the receiver's handler, preserving send order;
//   - connection setup with capped-backoff dial retry, and clean
//     shutdown via write-side close so pumps drain to EOF.
//
// Fault injection maps onto the wire: Fate.Duplicates writes the frame
// again (two real frames cross the socket), Fate.DropDelivery sets
// FlagWireLost so the frame crosses the wire and is discarded on arrival,
// and Fate.Delay rides in the frame header and is slept in the read pump
// (head-of-line, matching a Mem lane). The simulated Message.Bytes ledger
// is carried in the frame header and counted exactly as Mem counts it, so
// every conservation contract holds unchanged; true encoded bytes are
// reported separately in Stats.WireBytesSent/WireBytesReceived.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"serialgraph/internal/metrics"
)

// tcpLane is the sender side of one ordered-pair connection.
type tcpLane struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []tcpQueued
	closed bool
	conn   net.Conn
}

type tcpQueued struct {
	msg      Message
	delay    time.Duration
	wireLost bool
}

// TCP is the loopback-socket transport backend.
type TCP struct {
	n        int
	latency  LatencyModel
	codec    PayloadCodec
	handlers []Handler
	stats    Stats
	dead     []atomic.Bool
	hook     FaultHook
	flow     *Flow // optional credit windows; nil when flow control is off
	reg      atomic.Pointer[metrics.Registry]

	inflightMu sync.Mutex
	inflight   int
	idleCond   *sync.Cond

	listeners []net.Listener
	lanes     []*tcpLane // n*n, index from*n+to

	wg     sync.WaitGroup
	closed atomic.Bool
}

var _ Transport = (*TCP)(nil)

// DialRetry dials addr with exponential backoff capped at 250ms until it
// connects or the overall timeout elapses.
func DialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	backoff := time.Millisecond
	for {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// helloPayload encodes the connection-opening handshake: protocol
// version, then the dialing lane's (from, to) pair so the accepting side
// can route the connection.
func helloPayload(from, to WorkerID) []byte {
	p := AppendZigzag(nil, ProtocolVersion)
	p = AppendZigzag(p, int64(from))
	p = AppendZigzag(p, int64(to))
	return p
}

func parseHello(f Frame) (from, to WorkerID, err error) {
	if f.Type != FrameHello {
		return 0, 0, fmt.Errorf("cluster: expected hello frame, got type 0x%02x", f.Type)
	}
	b := f.Payload
	ver, n := Zigzag(b)
	if n <= 0 {
		return 0, 0, ErrFrameCorrupt
	}
	b = b[n:]
	if ver != ProtocolVersion {
		return 0, 0, fmt.Errorf("cluster: protocol version mismatch: peer %d, local %d", ver, ProtocolVersion)
	}
	fr, n := Zigzag(b)
	if n <= 0 {
		return 0, 0, ErrFrameCorrupt
	}
	b = b[n:]
	t, n := Zigzag(b)
	if n <= 0 {
		return 0, 0, ErrFrameCorrupt
	}
	return WorkerID(fr), WorkerID(t), nil
}

// NewTCPLoopback creates a TCP transport for n workers, all inside this
// process, connected over 127.0.0.1 sockets. codec encodes and decodes
// frame payloads (the engine passes wire.NewCodec for its message type).
// The latency model is recorded (Latency returns it) but not enforced:
// the real wire provides the timing.
func NewTCPLoopback(n int, latency LatencyModel, codec PayloadCodec) (*TCP, error) {
	if n < 1 {
		panic("cluster: need at least one worker")
	}
	if codec == nil {
		panic("cluster: TCP transport needs a payload codec")
	}
	t := &TCP{
		n:        n,
		latency:  latency,
		codec:    codec,
		handlers: make([]Handler, n),
		dead:     make([]atomic.Bool, n),
		lanes:    make([]*tcpLane, n*n),
	}
	t.idleCond = sync.NewCond(&t.inflightMu)
	for i := range t.lanes {
		l := &tcpLane{}
		l.cond = sync.NewCond(&l.mu)
		t.lanes[i] = l
	}

	t.listeners = make([]net.Listener, n)
	for w := 0; w < n; w++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.teardown()
			return nil, fmt.Errorf("cluster: listen for worker %d: %w", w, err)
		}
		t.listeners[w] = ln
	}

	// Accept side: every listener receives exactly n connections (one per
	// sender, self included). The dialer's hello frame routes each
	// accepted conn to its lane and starts that lane's read pump.
	errCh := make(chan error, 2*n*n)
	var setup sync.WaitGroup
	for w := 0; w < n; w++ {
		setup.Add(1)
		go func(w int) {
			defer setup.Done()
			for k := 0; k < t.n; k++ {
				conn, err := t.listeners[w].Accept()
				if err != nil {
					errCh <- err
					return
				}
				br := bufio.NewReaderSize(conn, 64<<10)
				f, _, err := ReadFrame(br)
				if err != nil {
					conn.Close()
					errCh <- fmt.Errorf("cluster: handshake read: %w", err)
					return
				}
				from, to, err := parseHello(f)
				if err != nil || int(to) != w || from < 0 || int(from) >= t.n {
					conn.Close()
					if err == nil {
						err = fmt.Errorf("cluster: misrouted hello %d->%d at listener %d", from, to, w)
					}
					errCh <- err
					return
				}
				t.wg.Add(1)
				go t.pump(br, conn)
			}
		}(w)
	}

	// Dial side: connect every ordered pair, with capped-backoff retry.
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			setup.Add(1)
			go func(from, to int) {
				defer setup.Done()
				conn, err := DialRetry(t.listeners[to].Addr().String(), 5*time.Second)
				if err != nil {
					errCh <- err
					return
				}
				hello := AppendFrame(nil, &Frame{
					Type: FrameHello, From: WorkerID(from), To: WorkerID(to),
					Payload: helloPayload(WorkerID(from), WorkerID(to)),
				})
				if _, err := conn.Write(hello); err != nil {
					conn.Close()
					errCh <- err
					return
				}
				l := t.lanes[from*n+to]
				l.mu.Lock()
				l.conn = conn
				l.mu.Unlock()
			}(from, to)
		}
	}
	setup.Wait()
	select {
	case err := <-errCh:
		t.teardown()
		return nil, err
	default:
	}
	for _, l := range t.lanes {
		t.wg.Add(1)
		go t.writer(l)
	}
	return t, nil
}

// teardown releases sockets after a failed construction.
func (t *TCP) teardown() {
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, l := range t.lanes {
		if l != nil && l.conn != nil {
			l.conn.Close()
		}
	}
}

// SetMetrics points the transport at a metrics registry; the writer and
// pump goroutines then record wire_encode_ns / wire_decode_ns /
// wire_flush_ns phase time. Call it before traffic flows.
func (t *TCP) SetMetrics(reg *metrics.Registry) { t.reg.Store(reg) }

// NumWorkers returns the cluster size.
func (t *TCP) NumWorkers() int { return t.n }

// Latency returns the configured (reported, not enforced) latency model.
func (t *TCP) Latency() LatencyModel { return t.latency }

// Stats returns the traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// RegisterHandler installs the delivery callback for worker w.
func (t *TCP) RegisterHandler(w WorkerID, h Handler) {
	if t.handlers[w] != nil {
		panic(fmt.Sprintf("cluster: handler for worker %d registered twice", w))
	}
	t.handlers[w] = h
}

// SetFaultHook installs a fault-injection hook. It must be called before
// any traffic flows.
func (t *TCP) SetFaultHook(h FaultHook) { t.hook = h }

// SetFlow attaches the credit windows senders acquired against and arms
// the credit protocol: for every data frame a pump consumes it sends a
// Credit frame back on the reverse lane, and receiving a Credit frame
// releases the original sender's window. Must be set before any traffic
// flows.
func (t *TCP) SetFlow(f *Flow) { t.flow = f }

// releaseCredit returns m's window bytes directly for a data message
// dropped on the sender's side, before any frame crossed the wire.
func (t *TCP) releaseCredit(m Message) {
	if m.Kind == Data {
		t.flow.Release(m.From, m.To, m.Bytes)
	}
}

// Kill marks worker w as crashed; see (*Mem).Kill for the semantics.
func (t *TCP) Kill(w WorkerID) { t.dead[w].Store(true) }

// Revive clears worker w's crash flag.
func (t *TCP) Revive(w WorkerID) { t.dead[w].Store(false) }

// Alive reports whether worker w is not currently killed.
func (t *TCP) Alive(w WorkerID) bool { return !t.dead[w].Load() }

// DeadWorkers returns the IDs of all currently killed workers.
func (t *TCP) DeadWorkers() []WorkerID {
	var dead []WorkerID
	for w := range t.dead {
		if t.dead[w].Load() {
			dead = append(dead, WorkerID(w))
		}
	}
	return dead
}

// Send enqueues m for transmission. Semantics match (*Mem).Send exactly:
// it never blocks, and sends after Close, data sends touching a killed
// worker, and hook-dropped sends are discarded and counted.
func (t *TCP) Send(m Message) {
	if m.From < 0 || int(m.From) >= t.n || m.To < 0 || int(m.To) >= t.n {
		panic(fmt.Sprintf("cluster: bad endpoints %d->%d", m.From, m.To))
	}
	if t.closed.Load() {
		t.stats.DroppedMessages.Add(1)
		t.releaseCredit(m)
		return
	}
	if m.Kind == Data && (t.dead[m.From].Load() || t.dead[m.To].Load()) {
		t.stats.DroppedMessages.Add(1)
		t.releaseCredit(m)
		return
	}
	var fate Fate
	if t.hook != nil {
		fate = t.hook.OnSend(m)
		if fate.Drop {
			t.stats.DroppedMessages.Add(1)
			t.releaseCredit(m)
			return
		}
	}
	for c := 0; c <= fate.Duplicates; c++ {
		t.enqueue(m, fate.Delay, fate.DropDelivery)
	}
}

// enqueue places one copy of m on its lane's write queue, counting it as
// traffic, or counts a drop if the lane is already closed. The closed
// check runs under the lane lock so a Send racing Close can never strand
// an in-flight count after the writer exits.
func (t *TCP) enqueue(m Message, extraDelay time.Duration, wireLost bool) {
	l := t.lanes[int(m.From)*t.n+int(m.To)]
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		t.stats.DroppedMessages.Add(1)
		t.releaseCredit(m)
		return
	}
	switch m.Kind {
	case Data:
		t.stats.DataMessages.Add(1)
		t.stats.DataBytes.Add(int64(m.Bytes))
	case Control:
		t.stats.ControlMessages.Add(1)
		t.stats.ControlBytes.Add(int64(m.Bytes))
	case Ack:
		t.stats.AckMessages.Add(1)
	}
	t.inflightMu.Lock()
	t.inflight++
	t.inflightMu.Unlock()
	l.q = append(l.q, tcpQueued{m, extraDelay, wireLost})
	l.cond.Signal()
	l.mu.Unlock()
}

// enqueueCredit queues a Credit frame returning bytes of window from
// granter (the worker whose pump consumed a data frame) back to sender.
// Credit is transport-level traffic: it rides a real frame on the
// (granter, sender) lane — so WireBytesSent/Received stay a balanced
// ledger — but is invisible to the per-kind message counters and the
// drop ledger, which the engine's conservation checks pin exactly. It
// does count as in flight, so WaitIdle cannot return while a grant (and
// therefore a window imbalance) is still on the wire. If the reverse
// lane is already closed the window is released directly: the run is
// tearing down and the sender must still be unblocked.
func (t *TCP) enqueueCredit(granter, sender WorkerID, bytes int) {
	l := t.lanes[int(granter)*t.n+int(sender)]
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		t.flow.Release(sender, granter, bytes)
		return
	}
	t.inflightMu.Lock()
	t.inflight++
	t.inflightMu.Unlock()
	l.q = append(l.q, tcpQueued{msg: Message{
		From: granter, To: sender, Kind: Control,
		Payload: CreditGrant{Bytes: int64(bytes)},
	}})
	l.cond.Signal()
	l.mu.Unlock()
}

// writer drains one lane's queue onto its socket. Frames queued while a
// previous burst was being written are encoded into the same buffered
// writer and flushed together — the write-coalescing path.
func (t *TCP) writer(l *tcpLane) {
	defer t.wg.Done()
	bw := bufio.NewWriterSize(l.conn, 64<<10)
	var buf []byte
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.q) == 0 && l.closed {
			l.mu.Unlock()
			break
		}
		batch := l.q
		l.q = nil
		l.mu.Unlock()

		reg := t.reg.Load()
		start := time.Now()
		buf = buf[:0]
		for i := range batch {
			q := &batch[i]
			f := Frame{
				Type: 0, From: q.msg.From, To: q.msg.To,
				Declared: q.msg.Bytes, Delay: q.delay,
			}
			if q.wireLost {
				f.Flags |= FlagWireLost
			}
			ftype, payload, err := t.codec.EncodePayload(q.msg.Payload, nil)
			if err != nil {
				panic(fmt.Sprintf("cluster: cannot encode %d->%d payload: %v", q.msg.From, q.msg.To, err))
			}
			f.Type = ftype
			f.Payload = payload
			buf = AppendFrame(buf, &f)
		}
		if reg != nil {
			reg.AddPhase(metrics.PhaseWireEncode, time.Since(start))
		}
		// Counted before the write so a receiver that races ahead can
		// never observe received > sent.
		t.stats.WireBytesSent.Add(int64(len(buf)))
		flushStart := time.Now()
		if _, err := bw.Write(buf); err != nil {
			panic(fmt.Sprintf("cluster: lane %d->%d write: %v", batch[0].msg.From, batch[0].msg.To, err))
		}
		// Coalesce: only pay the flush syscall when the queue ran dry.
		l.mu.Lock()
		empty := len(l.q) == 0
		l.mu.Unlock()
		if empty {
			if err := bw.Flush(); err != nil {
				panic(fmt.Sprintf("cluster: lane flush: %v", err))
			}
		}
		if reg != nil {
			reg.AddPhase(metrics.PhaseWireFlush, time.Since(flushStart))
		}
	}
	bw.Flush()
	if tc, ok := l.conn.(*net.TCPConn); ok {
		tc.CloseWrite() // EOF to the peer's read pump once drained
	} else {
		l.conn.Close()
	}
}

// pump is the read side of one connection: it decodes frames in stream
// order and delivers them, mirroring a Mem lane's deliver goroutine
// (including head-of-line straggler sleeps and wire-loss drops).
func (t *TCP) pump(br *bufio.Reader, conn net.Conn) {
	defer t.wg.Done()
	for {
		f, wireBytes, err := ReadFrame(br)
		if err != nil {
			// EOF after the peer's write-side close: the lane is drained.
			return
		}
		t.stats.WireBytesReceived.Add(int64(wireBytes))
		if f.Type == FrameCredit {
			// Transport-level credit return: release the original data
			// sender's (f.To → f.From) window and consume the frame here —
			// it never reaches a handler or the per-kind ledger.
			n, k := binary.Uvarint(f.Payload)
			if k <= 0 {
				panic(fmt.Sprintf("cluster: corrupt credit frame %d->%d", f.From, f.To))
			}
			t.flow.Release(f.To, f.From, int(n))
			t.inflightMu.Lock()
			t.inflight--
			if t.inflight == 0 {
				t.idleCond.Broadcast()
			}
			t.inflightMu.Unlock()
			continue
		}
		reg := t.reg.Load()
		start := time.Now()
		payload, err := t.codec.DecodePayload(f.Type, f.Payload)
		if err != nil {
			panic(fmt.Sprintf("cluster: corrupt %d->%d frame type 0x%02x: %v", f.From, f.To, f.Type, err))
		}
		if reg != nil {
			reg.AddPhase(metrics.PhaseWireDecode, time.Since(start))
		}
		m := Message{From: f.From, To: f.To, Kind: KindOfFrame(f.Type), Bytes: f.Declared, Payload: payload}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Flags&FlagWireLost != 0 || (m.Kind == Data && t.dead[m.To].Load()) {
			t.stats.DroppedMessages.Add(1)
		} else {
			if h := t.handlers[m.To]; h != nil {
				h(m)
			}
			if t.hook != nil {
				t.hook.OnDeliver(m)
			}
		}
		// The frame crossed the wire and is consumed either way
		// (delivered or lost): return its window. The grant is queued
		// before this frame's in-flight count drops, so WaitIdle holds
		// until the credit lands and the windows balance.
		if m.Kind == Data && t.flow != nil {
			t.enqueueCredit(m.To, m.From, m.Bytes)
		}
		t.inflightMu.Lock()
		t.inflight--
		if t.inflight == 0 {
			t.idleCond.Broadcast()
		}
		t.inflightMu.Unlock()
	}
}

// WaitIdle blocks until no messages are in flight anywhere: queued,
// buffered in a socket, or mid-delivery.
func (t *TCP) WaitIdle() {
	t.inflightMu.Lock()
	for t.inflight > 0 {
		t.idleCond.Wait()
	}
	t.inflightMu.Unlock()
}

// InFlight returns the number of undelivered messages.
func (t *TCP) InFlight() int {
	t.inflightMu.Lock()
	defer t.inflightMu.Unlock()
	return t.inflight
}

// Close drains all lanes and shuts the sockets down. Writers flush their
// queues and close the write side; read pumps consume to EOF, so every
// accepted message is delivered (or counted dropped) before Close
// returns. Sends after Close are dropped and counted.
func (t *TCP) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	for _, l := range t.lanes {
		l.mu.Lock()
		l.closed = true
		l.cond.Signal()
		l.mu.Unlock()
	}
	t.wg.Wait()
	for _, ln := range t.listeners {
		ln.Close()
	}
	for _, l := range t.lanes {
		l.conn.Close()
	}
}
