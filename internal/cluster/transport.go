// Package cluster connects the workers of a shared-nothing cluster. Two
// backends implement the same Transport interface:
//
//   - Mem (the default, returned by New) simulates the network inside a
//     single process: workers are goroutines, all inter-worker traffic
//     flows through per-(sender, receiver) FIFO lanes that impose
//     propagation latency and serialization (bandwidth) delay.
//   - TCP (returned by NewTCPLoopback) moves the same traffic over real
//     TCP sockets with a length-prefixed binary frame codec, per-peer
//     persistent connections, write coalescing, and read pumps.
//
// Both preserve FIFO order per (sender, receiver) pair — as TCP does
// between two Giraph workers — and count every message and byte.
//
// The paper's evaluation is entirely about the communication/parallelism
// trade-off of synchronization techniques, so the transport makes both
// measurable: wall-clock computation time includes simulated network
// delays, and Stats exposes message/byte/flush counts per traffic class.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerID identifies a simulated worker machine: 0 <= id < NumWorkers.
type WorkerID int32

// Kind classifies traffic for accounting.
type Kind uint8

const (
	// Data messages carry vertex messages (remote replica updates).
	Data Kind = iota
	// Control messages carry forks, tokens, barriers, and flush markers.
	Control
	// Ack messages confirm delivery of a flush.
	Ack
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Control:
		return "control"
	case Ack:
		return "ack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is a unit of simulated network traffic.
type Message struct {
	From, To WorkerID
	Kind     Kind
	Bytes    int // simulated wire size
	Payload  any
}

// LatencyModel describes the simulated network.
type LatencyModel struct {
	// Propagation is the one-way delay added to every message.
	Propagation time.Duration
	// BytesPerSec is per-lane bandwidth; 0 means infinite.
	BytesPerSec float64
}

// Delay returns the serialization time for a message of the given size.
func (l LatencyModel) serialization(bytes int) time.Duration {
	if l.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / l.BytesPerSec * float64(time.Second))
}

// Handler receives delivered messages. Handlers for one (sender, receiver)
// pair run sequentially in send order; handlers for different pairs run
// concurrently. A handler may call Send.
type Handler func(m Message)

// Fate is a fault hook's verdict on one message.
type Fate struct {
	// Drop discards the message; it is counted in DroppedMessages and
	// never delivered.
	Drop bool
	// DropDelivery loses the message on the wire instead: it is counted as
	// sent in the per-kind counters (the sender paid for it) but is
	// discarded at delivery time and counted in DroppedMessages, like a
	// message whose receiver died in flight. This is the only way to lose
	// control traffic without skewing the send-side control ledger, which
	// the metrics conservation checks reconcile exactly.
	DropDelivery bool
	// Duplicates enqueues this many extra copies (at-least-once delivery).
	Duplicates int
	// Delay adds straggler latency on top of the latency model.
	Delay time.Duration
}

// FaultHook intercepts transport traffic for fault injection. OnSend runs
// on the sender's goroutine before a message is enqueued and returns its
// fate; OnDeliver runs on the delivery goroutine after a message has been
// handed to its handler. Implementations must be safe for concurrent use.
type FaultHook interface {
	OnSend(m Message) Fate
	OnDeliver(m Message)
}

// Stats holds cumulative traffic counters. All fields are atomically
// updated and may be read while the transport is active.
type Stats struct {
	DataMessages    atomic.Int64
	DataBytes       atomic.Int64
	ControlMessages atomic.Int64
	ControlBytes    atomic.Int64
	AckMessages     atomic.Int64
	// DroppedMessages counts messages discarded instead of delivered:
	// sends after Close, traffic to or from killed workers, and drops
	// injected by a fault hook. Messages dropped at send time are not
	// counted in the per-kind counters above; a message lost on the wire
	// (its receiver died in flight) was already counted when sent and
	// additionally counts here.
	DroppedMessages atomic.Int64
	// WireBytesSent/WireBytesReceived count true encoded frame bytes on
	// the wire, including frame headers. The Mem backend leaves them zero
	// (its byte ledger is the simulated per-kind counters above); the TCP
	// backend fills them in alongside the simulated counters, so the
	// conservation contracts over DataBytes/ControlBytes hold unchanged on
	// either backend.
	WireBytesSent     atomic.Int64
	WireBytesReceived atomic.Int64
}

// Snapshot is a plain-value copy of Stats.
type Snapshot struct {
	DataMessages, DataBytes       int64
	ControlMessages, ControlBytes int64
	AckMessages                   int64
	DroppedMessages               int64
	WireBytesSent                 int64
	WireBytesReceived             int64
}

// Load copies the counters.
func (s *Stats) Load() Snapshot {
	return Snapshot{
		DataMessages: s.DataMessages.Load(), DataBytes: s.DataBytes.Load(),
		ControlMessages: s.ControlMessages.Load(), ControlBytes: s.ControlBytes.Load(),
		AckMessages:       s.AckMessages.Load(),
		DroppedMessages:   s.DroppedMessages.Load(),
		WireBytesSent:     s.WireBytesSent.Load(),
		WireBytesReceived: s.WireBytesReceived.Load(),
	}
}

// Sub returns s - o, the traffic between two snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		DataMessages: s.DataMessages - o.DataMessages, DataBytes: s.DataBytes - o.DataBytes,
		ControlMessages: s.ControlMessages - o.ControlMessages, ControlBytes: s.ControlBytes - o.ControlBytes,
		AckMessages:       s.AckMessages - o.AckMessages,
		DroppedMessages:   s.DroppedMessages - o.DroppedMessages,
		WireBytesSent:     s.WireBytesSent - o.WireBytesSent,
		WireBytesReceived: s.WireBytesReceived - o.WireBytesReceived,
	}
}

// TotalMessages is the sum of all message counters.
func (s Snapshot) TotalMessages() int64 { return s.DataMessages + s.ControlMessages + s.AckMessages }

// lane is the FIFO link for one (sender, receiver) pair.
type lane struct {
	mu         sync.Mutex
	q          []timed
	cond       *sync.Cond
	lastDepart time.Time
	closed     bool
}

type timed struct {
	msg       Message
	deliverAt time.Time
	wireLost  bool // discard at delivery time (Fate.DropDelivery)
}

// Transport is the wire connecting n workers. The engine, message stores,
// Chandy–Misra managers, and fault injector are written against this
// interface so the simulated in-process backend (Mem) and the real TCP
// backend (TCP) are interchangeable.
//
// Semantics every backend must provide:
//
//   - FIFO delivery per (sender, receiver) pair; handlers for one pair run
//     sequentially in send order, different pairs concurrently.
//   - Send never blocks and never delivers inline on the caller.
//   - A message is "in flight" from the moment Send accepts it until its
//     handler returns (or it is counted dropped); WaitIdle blocks until no
//     messages are in flight.
//   - Kill/Revive dead-worker semantics and Stats drop accounting exactly
//     as documented on Mem's methods.
type Transport interface {
	// NumWorkers returns the cluster size.
	NumWorkers() int
	// Latency returns the configured latency model. The Mem backend
	// enforces it; the TCP backend reports it but lets the real wire set
	// the timing.
	Latency() LatencyModel
	// Stats returns the live traffic counters.
	Stats() *Stats
	// RegisterHandler installs the delivery callback for worker w. It must
	// be called for every worker before any Send, and panics if a worker
	// is registered twice.
	RegisterHandler(w WorkerID, h Handler)
	// SetFaultHook installs a fault-injection hook; it must be called
	// before any traffic flows.
	SetFaultHook(h FaultHook)
	// Kill marks worker w as crashed; Revive clears the flag.
	Kill(w WorkerID)
	Revive(w WorkerID)
	// Alive reports whether worker w is not currently killed.
	Alive(w WorkerID) bool
	// DeadWorkers returns the IDs of all currently killed workers.
	DeadWorkers() []WorkerID
	// Send enqueues m for delivery. It never blocks.
	Send(m Message)
	// WaitIdle blocks until no messages are in flight.
	WaitIdle()
	// InFlight returns the number of undelivered messages.
	InFlight() int
	// Close shuts the backend down, draining in-flight traffic. It is
	// idempotent; sends after Close are dropped and counted.
	Close()
}

// Mem is the in-process simulated backend: per-pair FIFO lanes with
// modeled propagation latency and serialization delay.
type Mem struct {
	n        int
	latency  LatencyModel
	handlers []Handler
	lanes    []*lane // n*n, index from*n+to
	stats    Stats
	dead     []atomic.Bool // per-worker crash flags
	hook     FaultHook     // set before any traffic; nil when faults are off
	flow     *Flow         // optional credit windows; nil when flow control is off

	inflightMu sync.Mutex
	inflight   int
	idleCond   *sync.Cond

	wg     sync.WaitGroup
	closed atomic.Bool
}

var _ Transport = (*Mem)(nil)

// New creates an in-process simulated transport for n workers with the
// given latency model. RegisterHandler must be called for every worker
// before any Send.
func New(n int, latency LatencyModel) *Mem {
	if n < 1 {
		panic("cluster: need at least one worker")
	}
	t := &Mem{
		n:        n,
		latency:  latency,
		handlers: make([]Handler, n),
		lanes:    make([]*lane, n*n),
		dead:     make([]atomic.Bool, n),
	}
	t.idleCond = sync.NewCond(&t.inflightMu)
	for i := range t.lanes {
		l := &lane{}
		l.cond = sync.NewCond(&l.mu)
		t.lanes[i] = l
		t.wg.Add(1)
		go t.deliver(l)
	}
	return t
}

// NumWorkers returns the cluster size.
func (t *Mem) NumWorkers() int { return t.n }

// Latency returns the latency model in use.
func (t *Mem) Latency() LatencyModel { return t.latency }

// Stats returns the traffic counters.
func (t *Mem) Stats() *Stats { return &t.stats }

// RegisterHandler installs the delivery callback for worker w.
func (t *Mem) RegisterHandler(w WorkerID, h Handler) {
	if t.handlers[w] != nil {
		panic(fmt.Sprintf("cluster: handler for worker %d registered twice", w))
	}
	t.handlers[w] = h
}

// SetFaultHook installs a fault-injection hook. It must be called before
// any traffic flows (the engine attaches it right after New, before
// workers start).
func (t *Mem) SetFaultHook(h FaultHook) { t.hook = h }

// SetFlow attaches the credit windows senders acquired against, so the
// backend can return credit the moment a data message leaves its lane —
// delivered or dropped. Must be set before any traffic flows.
func (t *Mem) SetFlow(f *Flow) { t.flow = f }

// releaseCredit returns m's window bytes for a data message that is done
// (delivered, or dropped anywhere on its path). Credit acquired in
// Endpoint.SendData must be returned on every exit path or senders would
// park forever on a window that never refills.
func (t *Mem) releaseCredit(m Message) {
	if m.Kind == Data {
		t.flow.Release(m.From, m.To, m.Bytes)
	}
}

// Kill marks worker w as crashed. From then on the worker's data traffic
// is lost — data messages sent by or addressed to it are dropped (and
// counted in DroppedMessages), and in-flight data messages addressed to
// it are discarded at delivery time. Control and ack traffic still flows:
// the simulation keeps the blocking coordination protocols (Chandy–Misra
// forks, flush acks) drainable so every worker reaches the next barrier,
// where the master detects the death and rolls the cluster back —
// discarding all of the dead worker's superstep state anyway, exactly as
// a real whole-cluster rollback would.
func (t *Mem) Kill(w WorkerID) { t.dead[w].Store(true) }

// Revive clears worker w's crash flag, modeling the failed machine's
// replacement rejoining the cluster before a rollback.
func (t *Mem) Revive(w WorkerID) { t.dead[w].Store(false) }

// Alive reports whether worker w is not currently killed.
func (t *Mem) Alive(w WorkerID) bool { return !t.dead[w].Load() }

// DeadWorkers returns the IDs of all currently killed workers.
func (t *Mem) DeadWorkers() []WorkerID {
	var dead []WorkerID
	for w := range t.dead {
		if t.dead[w].Load() {
			dead = append(dead, WorkerID(w))
		}
	}
	return dead
}

// Send enqueues m for delivery. It never blocks. Sending to yourself is
// allowed and goes through the same simulated path (engines bypass the
// transport for truly local traffic). Sends after Close, data sends
// touching a killed worker, and sends dropped by the fault hook are
// discarded and counted in Stats.DroppedMessages.
func (t *Mem) Send(m Message) {
	if m.From < 0 || int(m.From) >= t.n || m.To < 0 || int(m.To) >= t.n {
		panic(fmt.Sprintf("cluster: bad endpoints %d->%d", m.From, m.To))
	}
	if t.closed.Load() {
		// Shutting down; drop, as a dying cluster would — but account for it.
		t.stats.DroppedMessages.Add(1)
		t.releaseCredit(m)
		return
	}
	if m.Kind == Data && (t.dead[m.From].Load() || t.dead[m.To].Load()) {
		t.stats.DroppedMessages.Add(1)
		t.releaseCredit(m)
		return
	}
	var fate Fate
	if t.hook != nil {
		fate = t.hook.OnSend(m)
		if fate.Drop {
			t.stats.DroppedMessages.Add(1)
			t.releaseCredit(m)
			return
		}
	}
	for c := 0; c <= fate.Duplicates; c++ {
		t.enqueue(m, fate.Delay, fate.DropDelivery)
	}
}

// enqueue places one copy of m on its lane, counting it as traffic. It
// returns without enqueuing (counting a drop instead) when the lane has
// already been closed — the check runs under the lane lock, so a Send
// racing Close can never strand an in-flight count after the delivery
// goroutines exit.
func (t *Mem) enqueue(m Message, extraDelay time.Duration, wireLost bool) {
	l := t.lanes[int(m.From)*t.n+int(m.To)]
	now := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		t.stats.DroppedMessages.Add(1)
		t.releaseCredit(m)
		return
	}
	switch m.Kind {
	case Data:
		t.stats.DataMessages.Add(1)
		t.stats.DataBytes.Add(int64(m.Bytes))
	case Control:
		t.stats.ControlMessages.Add(1)
		t.stats.ControlBytes.Add(int64(m.Bytes))
	case Ack:
		t.stats.AckMessages.Add(1)
	}
	t.inflightMu.Lock()
	t.inflight++
	t.inflightMu.Unlock()
	depart := now
	if l.lastDepart.After(depart) {
		depart = l.lastDepart
	}
	depart = depart.Add(t.latency.serialization(m.Bytes))
	l.lastDepart = depart
	l.q = append(l.q, timed{m, depart.Add(t.latency.Propagation + extraDelay), wireLost})
	l.cond.Signal()
	l.mu.Unlock()
}

// deliver is the per-lane consumer: it sleeps until each message's delivery
// time and invokes the receiver's handler, preserving FIFO order.
func (t *Mem) deliver(l *lane) {
	defer t.wg.Done()
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.q) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		tm := l.q[0]
		l.q = l.q[1:]
		l.mu.Unlock()

		if d := time.Until(tm.deliverAt); d > 0 {
			time.Sleep(d)
		}
		if tm.wireLost || (tm.msg.Kind == Data && t.dead[tm.msg.To].Load()) {
			// Lost on the wire: injected (DropDelivery) or the receiver
			// crashed while the message was in flight.
			t.stats.DroppedMessages.Add(1)
		} else {
			if h := t.handlers[tm.msg.To]; h != nil {
				h(tm.msg)
			}
			if t.hook != nil {
				t.hook.OnDeliver(tm.msg)
			}
		}
		// Credit returns before the in-flight count drops, so a WaitIdle
		// barrier always observes fully balanced windows.
		t.releaseCredit(tm.msg)

		t.inflightMu.Lock()
		t.inflight--
		if t.inflight == 0 {
			t.idleCond.Broadcast()
		}
		t.inflightMu.Unlock()
	}
}

// WaitIdle blocks until no messages are in flight. Note that a handler may
// inject new messages; callers are responsible for ensuring senders are
// quiescent (e.g. all workers at a barrier) when using this for
// termination decisions.
func (t *Mem) WaitIdle() {
	t.inflightMu.Lock()
	for t.inflight > 0 {
		t.idleCond.Wait()
	}
	t.inflightMu.Unlock()
}

// InFlight returns the number of undelivered messages.
func (t *Mem) InFlight() int {
	t.inflightMu.Lock()
	defer t.inflightMu.Unlock()
	return t.inflight
}

// Close drains all lanes and stops their goroutines. Sends after Close are
// dropped.
func (t *Mem) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	for _, l := range t.lanes {
		l.mu.Lock()
		l.closed = true
		l.cond.Signal()
		l.mu.Unlock()
	}
	t.wg.Wait()
}
