package cluster

import (
	"sync"
)

// Simulated wire sizes (bytes). Data batches additionally count their
// entries' payload bytes.
const (
	CtrlBytes        = 64 // a fork, token, or other control message
	AckBytes         = 16
	FlushMarkerBytes = 16
	BatchHeaderBytes = 32
	EntryHeaderBytes = 8 // per vertex-message destination ID
)

// FlushMarker is the control payload of the flush-with-ack protocol: a
// worker that wants proof its earlier data messages have been applied
// sends one and waits for the matching AckMsg. Exported so wire codecs
// can encode it; engines interact with it only through FlushWait.
type FlushMarker struct{ Seq uint64 }

// AckMsg acknowledges the FlushMarker with the same sequence number.
type AckMsg struct{ Seq uint64 }

// Endpoint is a worker's connection to the transport. It dispatches
// incoming traffic to data/control callbacks and implements the
// flush-with-ack protocol used before token handoffs: because lanes are
// FIFO, an acked flush marker guarantees every earlier data message to that
// worker has been delivered and applied.
type Endpoint struct {
	t  Transport
	id WorkerID

	onData func(from WorkerID, payload any)
	onCtrl func(from WorkerID, payload any)

	flow *Flow // optional credit windows; nil-safe

	mu      sync.Mutex
	nextSeq uint64
	acks    map[uint64]chan struct{}
	abortCh chan struct{} // closed by Abort; replaced by ResetAbort
	aborted bool
}

// NewEndpoint registers worker id on t. onData receives Data payloads,
// onCtrl receives Control payloads; both run on transport delivery
// goroutines and must not block indefinitely.
func NewEndpoint(t Transport, id WorkerID, onData, onCtrl func(from WorkerID, payload any)) *Endpoint {
	e := &Endpoint{t: t, id: id, onData: onData, onCtrl: onCtrl, acks: make(map[uint64]chan struct{}), abortCh: make(chan struct{})}
	t.RegisterHandler(id, e.handle)
	return e
}

// ID returns the worker ID of this endpoint.
func (e *Endpoint) ID() WorkerID { return e.id }

// Transport returns the underlying transport.
func (e *Endpoint) Transport() Transport { return e.t }

func (e *Endpoint) handle(m Message) {
	switch p := m.Payload.(type) {
	case FlushMarker:
		e.t.Send(Message{From: e.id, To: m.From, Kind: Ack, Bytes: AckBytes, Payload: AckMsg{p.Seq}})
	case AckMsg:
		e.mu.Lock()
		ch := e.acks[p.Seq]
		delete(e.acks, p.Seq)
		e.mu.Unlock()
		if ch != nil {
			close(ch)
		}
	default:
		switch m.Kind {
		case Data:
			if e.onData != nil {
				e.onData(m.From, m.Payload)
			}
		default:
			if e.onCtrl != nil {
				e.onCtrl(m.From, m.Payload)
			}
		}
	}
}

// SetFlow attaches per-ordered-pair credit windows: every SendData first
// acquires window bytes, blocking while the (e.id, to) window is full.
// Control traffic is never subject to flow control (it must keep moving
// so credit and acks can flow back).
func (e *Endpoint) SetFlow(f *Flow) { e.flow = f }

// SendData sends a data payload (a batch of vertex messages) of the given
// simulated size. With a Flow attached it blocks until the credit window
// to the destination admits the batch.
func (e *Endpoint) SendData(to WorkerID, payload any, bytes int) {
	e.flow.Acquire(e.id, to, bytes)
	e.t.Send(Message{From: e.id, To: to, Kind: Data, Bytes: bytes, Payload: payload})
}

// SendCtrl sends a control payload (fork, token, barrier vote...).
func (e *Endpoint) SendCtrl(to WorkerID, payload any) {
	e.t.Send(Message{From: e.id, To: to, Kind: Control, Bytes: CtrlBytes, Payload: payload})
}

// FlushWait sends a flush marker to each worker in targets and blocks until
// every one has acknowledged it, guaranteeing (by lane FIFO order) that all
// data previously sent to those workers has been delivered. It returns the
// number of markers sent (targets minus self), so callers can account the
// control traffic they generated.
func (e *Endpoint) FlushWait(targets []WorkerID) int {
	e.mu.Lock()
	abortCh := e.abortCh
	e.mu.Unlock()
	chans := make([]chan struct{}, 0, len(targets))
	for _, to := range targets {
		if to == e.id {
			continue
		}
		e.mu.Lock()
		e.nextSeq++
		seq := e.nextSeq
		ch := make(chan struct{})
		e.acks[seq] = ch
		e.mu.Unlock()
		e.t.Send(Message{From: e.id, To: to, Kind: Control, Bytes: FlushMarkerBytes, Payload: FlushMarker{seq}})
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		select {
		case <-ch:
		case <-abortCh:
			// The watchdog declared the run stalled: stop waiting for acks
			// that may never come. Leftover ack registrations are swept by
			// ResetAbort during recovery.
			return len(chans)
		}
	}
	return len(chans)
}

// Abort makes any current or future FlushWait stop blocking on missing
// acks. The engine's liveness watchdog calls it when a superstep stalls
// (e.g. a flush marker or its ack was lost) so the waiting worker can reach
// the barrier and recovery can run.
func (e *Endpoint) Abort() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.aborted {
		e.aborted = true
		close(e.abortCh)
	}
}

// ResetAbort re-arms an aborted endpoint and drops any ack registrations
// left over from aborted flushes. Recovery calls it at the barrier (no
// flush can be in flight) before resuming.
func (e *Endpoint) ResetAbort() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.aborted {
		e.aborted = false
		e.abortCh = make(chan struct{})
	}
	for seq := range e.acks {
		delete(e.acks, seq)
	}
}
