package cluster_test

// Conformance tests for the TCP backend: the semantics the engine relies
// on — FIFO per lane, WaitIdle, flush-with-ack, Kill/Revive drop rules,
// fault-hook fidelity, idempotent Close with full drain — exercised over
// real loopback sockets with the production codec. These mirror the Mem
// backend's in-package tests; behavioral divergence between the backends
// is a bug here even when both suites pass in isolation.

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/cluster"
	"serialgraph/internal/graph"
	"serialgraph/internal/msgstore"
	"serialgraph/internal/wire"
)

// requireLoopback skips the test when the sandbox forbids loopback
// listeners, so the suite degrades loudly rather than failing.
func requireLoopback(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	ln.Close()
}

func newTCP(t *testing.T, n int) *cluster.TCP {
	t.Helper()
	requireLoopback(t)
	tr, err := cluster.NewTCPLoopback(n, cluster.LatencyModel{}, wire.NewCodec[float64]())
	if err != nil {
		t.Fatalf("NewTCPLoopback: %v", err)
	}
	return tr
}

func batch(dst graph.VertexID, msgs ...float64) []msgstore.Entry[float64] {
	b := make([]msgstore.Entry[float64], 0, len(msgs))
	for i, m := range msgs {
		b = append(b, msgstore.Entry[float64]{Dst: dst + graph.VertexID(i), Src: -1, Msg: m})
	}
	return b
}

func TestTCPDeliversBatch(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	got := make(chan cluster.Message, 1)
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) { got <- m })
	sent := batch(7, 1.5, 2.5, 3.5)
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Bytes: 100, Payload: sent})
	select {
	case m := <-got:
		if m.From != 0 || m.Kind != cluster.Data || m.Bytes != 100 {
			t.Errorf("envelope corrupted in transit: %+v", m)
		}
		b := m.Payload.([]msgstore.Entry[float64])
		if len(b) != 3 || b[0] != sent[0] || b[2] != sent[2] {
			t.Errorf("batch corrupted: got %+v want %+v", b, sent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestTCPFIFOPerLane(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	tr.RegisterHandler(0, func(m cluster.Message) {})
	var mu sync.Mutex
	var order []float64
	done := make(chan struct{})
	tr.RegisterHandler(1, func(m cluster.Message) {
		b := m.Payload.([]msgstore.Entry[float64])
		mu.Lock()
		order = append(order, b[0].Msg)
		if len(order) == 1000 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 1000; i++ {
		tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Payload: batch(0, float64(i))})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("not all messages delivered")
	}
	for i, v := range order {
		if v != float64(i) {
			t.Fatalf("order[%d] = %v: FIFO violated", i, v)
		}
	}
}

func TestTCPEndpointFlushWait(t *testing.T) {
	tr := newTCP(t, 3)
	defer tr.Close()
	var received [3]atomic.Int32
	var eps [3]*cluster.Endpoint
	for w := 0; w < 3; w++ {
		w := w
		eps[w] = cluster.NewEndpoint(tr, cluster.WorkerID(w),
			func(from cluster.WorkerID, payload any) {
				received[w].Add(int32(len(payload.([]msgstore.Entry[float64]))))
			},
			nil)
	}
	for i := 0; i < 5; i++ {
		eps[0].SendData(1, batch(0, 1), 10)
		eps[0].SendData(2, batch(0, 1), 10)
	}
	eps[0].FlushWait([]cluster.WorkerID{0, 1, 2})
	if received[1].Load() != 5 || received[2].Load() != 5 {
		t.Errorf("flush acked before data applied: %d/%d",
			received[1].Load(), received[2].Load())
	}
}

func TestTCPCtrlRoundTrip(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	gotCtrl := make(chan any, 1)
	cluster.NewEndpoint(tr, 0, nil, nil)
	cluster.NewEndpoint(tr, 1, nil, func(from cluster.WorkerID, payload any) { gotCtrl <- payload })
	want := chandy.Ctrl{Kind: chandy.ForkMsg, From: 42, To: -7}
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Control, Bytes: cluster.CtrlBytes, Payload: want})
	select {
	case p := <-gotCtrl:
		if p != want {
			t.Errorf("ctrl payload = %+v, want %+v", p, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("control not dispatched")
	}
}

func TestTCPWaitIdleAndStats(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	var delivered atomic.Int32
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) { delivered.Add(1) })
	for i := 0; i < 10; i++ {
		tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Bytes: 100, Payload: batch(0, 1)})
	}
	tr.WaitIdle()
	if got := delivered.Load(); got != 10 {
		t.Errorf("WaitIdle returned with %d/10 delivered", got)
	}
	s := tr.Stats().Load()
	if s.DataMessages != 10 || s.DataBytes != 1000 {
		t.Errorf("simulated ledger skewed: %+v", s)
	}
	// The true wire ledger: all accepted frames were written and read.
	if s.WireBytesSent == 0 || s.WireBytesSent != s.WireBytesReceived {
		t.Errorf("wire bytes sent %d != received %d (or zero)", s.WireBytesSent, s.WireBytesReceived)
	}
}

func TestTCPKillDropsDataButNotControl(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	var data, ctrl atomic.Int64
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) {
		if m.Kind == cluster.Data {
			data.Add(1)
		} else {
			ctrl.Add(1)
		}
	})
	tr.Kill(1)
	if tr.Alive(1) {
		t.Fatal("worker 1 alive after Kill")
	}
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Payload: batch(0, 1)})
	tr.Send(cluster.Message{From: 1, To: 0, Kind: cluster.Data, Payload: batch(0, 1)})
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Control, Payload: chandy.Ctrl{}})
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Ack, Payload: cluster.AckMsg{Seq: 1}})
	tr.WaitIdle()
	if got := data.Load(); got != 0 {
		t.Errorf("dead worker received %d data messages", got)
	}
	if got := ctrl.Load(); got != 2 {
		t.Errorf("control/ack delivered = %d, want 2", got)
	}
	if got := tr.Stats().Load().DroppedMessages; got != 2 {
		t.Errorf("DroppedMessages = %d, want 2", got)
	}
	tr.Revive(1)
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Payload: batch(0, 1)})
	tr.WaitIdle()
	if got := data.Load(); got != 1 {
		t.Errorf("revived worker received %d data messages, want 1", got)
	}
}

// hookFunc injects a fixed fate for data messages.
type hookFunc struct {
	fate      cluster.Fate
	delivered atomic.Int64
}

func (h *hookFunc) OnSend(m cluster.Message) cluster.Fate {
	if m.Kind == cluster.Data {
		return h.fate
	}
	return cluster.Fate{}
}
func (h *hookFunc) OnDeliver(m cluster.Message) { h.delivered.Add(1) }

func TestTCPFaultDuplicates(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	hook := &hookFunc{fate: cluster.Fate{Duplicates: 1}}
	tr.SetFaultHook(hook)
	var got atomic.Int64
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) { got.Add(1) })
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Bytes: 10, Payload: batch(0, 1)})
	tr.WaitIdle()
	if got.Load() != 2 {
		t.Errorf("duplicate not delivered: got %d copies, want 2", got.Load())
	}
	s := tr.Stats().Load()
	// Each copy is a real frame: counted as sent traffic, and twice the
	// wire bytes of a single send.
	if s.DataMessages != 2 || s.DataBytes != 20 {
		t.Errorf("duplicate accounting: %+v", s)
	}
	if hook.delivered.Load() != 2 {
		t.Errorf("OnDeliver ran %d times, want 2", hook.delivered.Load())
	}
}

func TestTCPFaultWireLoss(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	hook := &hookFunc{fate: cluster.Fate{DropDelivery: true}}
	tr.SetFaultHook(hook)
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) { t.Error("wire-lost frame delivered") })
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Bytes: 10, Payload: batch(0, 1)})
	tr.WaitIdle()
	s := tr.Stats().Load()
	// Lost on the wire: counted when sent (the sender paid for it), then
	// counted dropped at delivery — and the frame did cross the socket.
	if s.DataMessages != 1 || s.DroppedMessages != 1 {
		t.Errorf("wire-loss accounting: %+v", s)
	}
	if s.WireBytesReceived == 0 {
		t.Error("wire-lost frame never crossed the wire")
	}
}

// oneShotDelayHook delays exactly the first data message it sees and
// passes everything after it through untouched.
type oneShotDelayHook struct {
	delay time.Duration
	used  atomic.Bool
}

func (h *oneShotDelayHook) OnSend(m cluster.Message) cluster.Fate {
	if m.Kind == cluster.Data && h.used.CompareAndSwap(false, true) {
		return cluster.Fate{Delay: h.delay}
	}
	return cluster.Fate{}
}
func (h *oneShotDelayHook) OnDeliver(cluster.Message) {}

func TestTCPFaultStragglerDelay(t *testing.T) {
	// The injected delay must be applied by the read pump head-of-line,
	// like a slow frame on a Mem lane: an undelayed frame sent right
	// behind the straggler on the same lane must still arrive after it.
	// Ordering is verified by channel receives, not wall-clock windows
	// (upper-bound sleeps flake under -race on loaded machines); the only
	// timing assertion left is the flake-free lower bound.
	tr := newTCP(t, 2)
	defer tr.Close()
	tr.SetFaultHook(&oneShotDelayHook{delay: 50 * time.Millisecond})
	got := make(chan float64, 2)
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) {
		got <- m.Payload.([]msgstore.Entry[float64])[0].Msg
	})
	start := time.Now()
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Payload: batch(0, 1)}) // straggler
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Payload: batch(0, 2)}) // right behind it
	recv := func() float64 {
		select {
		case v := <-got:
			return v
		case <-time.After(10 * time.Second):
			t.Fatal("straggler never delivered")
			return 0
		}
	}
	if first := recv(); first != 1 {
		t.Fatalf("frame %v overtook the head-of-line straggler", first)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("straggler delivered after %v, want >= ~50ms", d)
	}
	if second := recv(); second != 2 {
		t.Fatalf("second frame corrupted: got %v", second)
	}
}

func TestTCPSendAfterCloseDropped(t *testing.T) {
	tr := newTCP(t, 2)
	tr.RegisterHandler(0, func(m cluster.Message) {})
	tr.RegisterHandler(1, func(m cluster.Message) { t.Error("delivered after close") })
	tr.Close()
	tr.Send(cluster.Message{From: 0, To: 1, Kind: cluster.Data, Payload: batch(0, 1)})
	if got := tr.Stats().Load().DroppedMessages; got != 1 {
		t.Errorf("DroppedMessages = %d, want 1 (send after Close)", got)
	}
	tr.Close() // idempotent
}

func TestTCPCloseDrainsInFlight(t *testing.T) {
	// Close must deliver (or count dropped) everything accepted before it.
	tr := newTCP(t, 3)
	var delivered atomic.Int64
	for w := 0; w < 3; w++ {
		tr.RegisterHandler(cluster.WorkerID(w), func(m cluster.Message) { delivered.Add(1) })
	}
	const n = 300
	for i := 0; i < n; i++ {
		tr.Send(cluster.Message{From: cluster.WorkerID(i % 3), To: cluster.WorkerID((i + 1) % 3),
			Kind: cluster.Data, Payload: batch(0, float64(i))})
	}
	tr.Close()
	s := tr.Stats().Load()
	if got := delivered.Load() + s.DroppedMessages; got != n {
		t.Errorf("delivered %d + dropped %d != sent %d", delivered.Load(), s.DroppedMessages, n)
	}
	if tr.InFlight() != 0 {
		t.Errorf("InFlight = %d after Close", tr.InFlight())
	}
}

func TestTCPCloseStopsGoroutines(t *testing.T) {
	requireLoopback(t)
	before := runtime.NumGoroutine()
	tr := newTCP(t, 4) // 16 lanes: 16 writers + 16 pumps
	for w := 0; w < 4; w++ {
		tr.RegisterHandler(cluster.WorkerID(w), func(m cluster.Message) {})
	}
	for i := 0; i < 100; i++ {
		tr.Send(cluster.Message{From: cluster.WorkerID(i % 4), To: cluster.WorkerID((i + 1) % 4),
			Kind: cluster.Data, Payload: batch(0, 1)})
	}
	tr.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: before=%d now=%d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPConcurrentSendersStress(t *testing.T) {
	tr := newTCP(t, 4)
	defer tr.Close()
	var count atomic.Int64
	for w := 0; w < 4; w++ {
		tr.RegisterHandler(cluster.WorkerID(w), func(m cluster.Message) { count.Add(1) })
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					tr.Send(cluster.Message{From: cluster.WorkerID(w), To: cluster.WorkerID(i % 4),
						Kind: cluster.Data, Payload: batch(0, float64(i))})
				}
			}()
		}
	}
	wg.Wait()
	tr.WaitIdle()
	if got := count.Load(); got != 4*4*500 {
		t.Errorf("delivered %d of %d", got, 4*4*500)
	}
}

func TestTCPSelfSend(t *testing.T) {
	tr := newTCP(t, 1)
	defer tr.Close()
	got := make(chan cluster.Message, 1)
	tr.RegisterHandler(0, func(m cluster.Message) { got <- m })
	tr.Send(cluster.Message{From: 0, To: 0, Kind: cluster.Data, Payload: batch(3, 42)})
	select {
	case m := <-got:
		if b := m.Payload.([]msgstore.Entry[float64]); b[0].Msg != 42 {
			t.Errorf("payload = %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self-send not delivered")
	}
}
