package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendDeliversToHandler(t *testing.T) {
	tr := New(2, LatencyModel{})
	defer tr.Close()
	got := make(chan Message, 1)
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) { got <- m })
	tr.Send(Message{From: 0, To: 1, Kind: Data, Bytes: 100, Payload: "hi"})
	select {
	case m := <-got:
		if m.Payload != "hi" || m.From != 0 {
			t.Errorf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message never delivered")
	}
}

func TestFIFOPerLane(t *testing.T) {
	tr := New(2, LatencyModel{})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	tr.RegisterHandler(1, func(m Message) {
		mu.Lock()
		order = append(order, m.Payload.(int))
		if len(order) == 1000 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 1000; i++ {
		tr.Send(Message{From: 0, To: 1, Kind: Data, Payload: i})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("not all messages delivered")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: FIFO violated", i, v)
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	tr := New(2, LatencyModel{Propagation: 30 * time.Millisecond})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	got := make(chan time.Time, 1)
	tr.RegisterHandler(1, func(m Message) { got <- time.Now() })
	start := time.Now()
	tr.Send(Message{From: 0, To: 1, Kind: Control})
	at := <-got
	if d := at.Sub(start); d < 25*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~30ms", d)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 10 KB at 100 KB/s = 100ms serialization delay.
	tr := New(2, LatencyModel{BytesPerSec: 100_000})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	got := make(chan time.Time, 2)
	tr.RegisterHandler(1, func(m Message) { got <- time.Now() })
	start := time.Now()
	tr.Send(Message{From: 0, To: 1, Kind: Data, Bytes: 5000})
	tr.Send(Message{From: 0, To: 1, Kind: Data, Bytes: 5000})
	<-got
	second := <-got
	// The two messages need 100ms of combined serialization.
	if d := second.Sub(start); d < 80*time.Millisecond {
		t.Errorf("second message delivered after %v, want >= ~100ms", d)
	}
}

func TestLatencyDoesNotSerializeAcrossLanes(t *testing.T) {
	// Messages on distinct lanes should be delayed in parallel: total time
	// for 4 lanes at 30ms each must be ~30ms, not 120ms.
	tr := New(4, LatencyModel{Propagation: 30 * time.Millisecond})
	defer tr.Close()
	var wg sync.WaitGroup
	wg.Add(3)
	for w := 1; w < 4; w++ {
		tr.RegisterHandler(WorkerID(w), func(m Message) { wg.Done() })
	}
	tr.RegisterHandler(0, func(m Message) {})
	start := time.Now()
	for w := 1; w < 4; w++ {
		tr.Send(Message{From: 0, To: WorkerID(w), Kind: Control})
	}
	wg.Wait()
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("parallel lanes took %v, want ~30ms", d)
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := New(2, LatencyModel{})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) {})
	tr.Send(Message{From: 0, To: 1, Kind: Data, Bytes: 100})
	tr.Send(Message{From: 0, To: 1, Kind: Data, Bytes: 50})
	tr.Send(Message{From: 1, To: 0, Kind: Control, Bytes: 64})
	tr.Send(Message{From: 1, To: 0, Kind: Ack, Bytes: 16})
	tr.WaitIdle()
	s := tr.Stats().Load()
	if s.DataMessages != 2 || s.DataBytes != 150 {
		t.Errorf("data stats %+v", s)
	}
	if s.ControlMessages != 1 || s.ControlBytes != 64 || s.AckMessages != 1 {
		t.Errorf("control stats %+v", s)
	}
	if s.TotalMessages() != 4 {
		t.Errorf("TotalMessages = %d", s.TotalMessages())
	}
	diff := tr.Stats().Load().Sub(s)
	if diff.TotalMessages() != 0 {
		t.Errorf("Sub of equal snapshots nonzero: %+v", diff)
	}
}

func TestWaitIdle(t *testing.T) {
	tr := New(2, LatencyModel{Propagation: 20 * time.Millisecond})
	defer tr.Close()
	var delivered atomic.Int32
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) { delivered.Add(1) })
	for i := 0; i < 10; i++ {
		tr.Send(Message{From: 0, To: 1, Kind: Data})
	}
	tr.WaitIdle()
	if got := delivered.Load(); got != 10 {
		t.Errorf("WaitIdle returned with %d/10 delivered", got)
	}
	if tr.InFlight() != 0 {
		t.Errorf("InFlight = %d after WaitIdle", tr.InFlight())
	}
}

func TestHandlerMaySend(t *testing.T) {
	// Ping-pong through handlers must not deadlock.
	tr := New(2, LatencyModel{})
	defer tr.Close()
	done := make(chan struct{})
	tr.RegisterHandler(0, func(m Message) {
		if m.Payload.(int) >= 100 {
			close(done)
			return
		}
		tr.Send(Message{From: 0, To: 1, Kind: Control, Payload: m.Payload.(int) + 1})
	})
	tr.RegisterHandler(1, func(m Message) {
		tr.Send(Message{From: 1, To: 0, Kind: Control, Payload: m.Payload.(int) + 1})
	})
	tr.Send(Message{From: 1, To: 0, Kind: Control, Payload: 0})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ping-pong deadlocked")
	}
}

func TestSendAfterCloseDropped(t *testing.T) {
	tr := New(2, LatencyModel{})
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) { t.Error("delivered after close") })
	tr.Close()
	tr.Send(Message{From: 0, To: 1, Kind: Data})
	time.Sleep(20 * time.Millisecond)
	if got := tr.Stats().Load().DroppedMessages; got != 1 {
		t.Errorf("DroppedMessages = %d, want 1 (send after Close)", got)
	}
}

func TestConcurrentSendCloseWaitIdle(t *testing.T) {
	// Senders racing Close must never strand an in-flight count: every
	// message either delivers or is counted dropped, and WaitIdle returns.
	for iter := 0; iter < 20; iter++ {
		tr := New(3, LatencyModel{})
		var delivered atomic.Int64
		for w := 0; w < 3; w++ {
			tr.RegisterHandler(WorkerID(w), func(m Message) { delivered.Add(1) })
		}
		const senders, perSender = 6, 200
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < senders; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < perSender; i++ {
					tr.Send(Message{From: WorkerID(g % 3), To: WorkerID(i % 3), Kind: Data})
				}
			}()
		}
		close(start)
		tr.Close() // races the senders
		wg.Wait()

		idle := make(chan struct{})
		go func() { tr.WaitIdle(); close(idle) }()
		select {
		case <-idle:
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: WaitIdle hung after Send/Close race (inflight=%d)",
				iter, tr.InFlight())
		}
		s := tr.Stats().Load()
		if got := delivered.Load() + s.DroppedMessages; got != senders*perSender {
			t.Fatalf("iter %d: delivered %d + dropped %d != sent %d",
				iter, delivered.Load(), s.DroppedMessages, senders*perSender)
		}
	}
}

func TestCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := New(8, LatencyModel{}) // 64 lanes, 64 delivery goroutines
	for w := 0; w < 8; w++ {
		tr.RegisterHandler(WorkerID(w), func(m Message) {})
	}
	for i := 0; i < 100; i++ {
		tr.Send(Message{From: WorkerID(i % 8), To: WorkerID((i + 1) % 8), Kind: Data})
	}
	tr.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 { // slack for test runner internals
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: before=%d now=%d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestKillDropsDataButNotControl(t *testing.T) {
	tr := New(2, LatencyModel{})
	defer tr.Close()
	var data, ctrl atomic.Int64
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) {
		if m.Kind == Data {
			data.Add(1)
		} else {
			ctrl.Add(1)
		}
	})
	tr.Kill(1)
	if tr.Alive(1) {
		t.Fatal("worker 1 alive after Kill")
	}
	tr.Send(Message{From: 0, To: 1, Kind: Data})    // to dead: dropped
	tr.Send(Message{From: 1, To: 0, Kind: Data})    // from dead: dropped
	tr.Send(Message{From: 0, To: 1, Kind: Control}) // control flows
	tr.Send(Message{From: 0, To: 1, Kind: Ack})     // acks flow
	tr.WaitIdle()
	if got := data.Load(); got != 0 {
		t.Errorf("dead worker received %d data messages", got)
	}
	if got := ctrl.Load(); got != 2 {
		t.Errorf("control/ack delivered = %d, want 2", got)
	}
	if got := tr.Stats().Load().DroppedMessages; got != 2 {
		t.Errorf("DroppedMessages = %d, want 2", got)
	}
	if d := tr.DeadWorkers(); len(d) != 1 || d[0] != 1 {
		t.Errorf("DeadWorkers = %v, want [1]", d)
	}

	tr.Revive(1)
	tr.Send(Message{From: 0, To: 1, Kind: Data})
	tr.WaitIdle()
	if got := data.Load(); got != 1 {
		t.Errorf("revived worker received %d data messages, want 1", got)
	}
	if d := tr.DeadWorkers(); d != nil {
		t.Errorf("DeadWorkers after Revive = %v, want none", d)
	}
}

func TestKillDropsInFlightData(t *testing.T) {
	// A data message already on the wire when its receiver dies is lost.
	tr := New(2, LatencyModel{Propagation: 50 * time.Millisecond})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) { t.Error("delivered to dead worker") })
	tr.Send(Message{From: 0, To: 1, Kind: Data})
	tr.Kill(1)
	tr.WaitIdle()
	s := tr.Stats().Load()
	if s.DroppedMessages != 1 {
		t.Errorf("DroppedMessages = %d, want 1", s.DroppedMessages)
	}
	// Counted when sent, and again as a wire loss.
	if s.DataMessages != 1 {
		t.Errorf("DataMessages = %d, want 1", s.DataMessages)
	}
}

func TestEndpointFlushWait(t *testing.T) {
	tr := New(3, LatencyModel{Propagation: 10 * time.Millisecond})
	defer tr.Close()
	var received [3]atomic.Int32
	var eps [3]*Endpoint
	for w := 0; w < 3; w++ {
		w := w
		eps[w] = NewEndpoint(tr, WorkerID(w),
			func(from WorkerID, payload any) { received[w].Add(int32(payload.(int))) },
			nil)
	}
	for i := 0; i < 5; i++ {
		eps[0].SendData(1, 1, 10)
		eps[0].SendData(2, 1, 10)
	}
	eps[0].FlushWait([]WorkerID{0, 1, 2}) // self in targets is skipped
	if received[1].Load() != 5 || received[2].Load() != 5 {
		t.Errorf("flush acked before data applied: %d/%d",
			received[1].Load(), received[2].Load())
	}
}

func TestEndpointCtrlDispatch(t *testing.T) {
	tr := New(2, LatencyModel{})
	defer tr.Close()
	gotCtrl := make(chan any, 1)
	NewEndpoint(tr, 0, nil, nil)
	e1ctrl := func(from WorkerID, payload any) { gotCtrl <- payload }
	NewEndpoint(tr, 1, nil, e1ctrl)
	tr.Send(Message{From: 0, To: 1, Kind: Control, Payload: "fork"})
	select {
	case p := <-gotCtrl:
		if p != "fork" {
			t.Errorf("payload = %v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("control not dispatched")
	}
}

func TestConcurrentSendersStress(t *testing.T) {
	tr := New(4, LatencyModel{})
	defer tr.Close()
	var count atomic.Int64
	for w := 0; w < 4; w++ {
		tr.RegisterHandler(WorkerID(w), func(m Message) { count.Add(1) })
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					tr.Send(Message{From: WorkerID(w), To: WorkerID(i % 4), Kind: Data})
				}
			}()
		}
	}
	wg.Wait()
	tr.WaitIdle()
	if got := count.Load(); got != 4*4*500 {
		t.Errorf("delivered %d of %d", got, 4*4*500)
	}
}

func TestCloseIdempotent(t *testing.T) {
	tr := New(2, LatencyModel{})
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) {})
	tr.Close()
	tr.Close() // second close must be a no-op
}

func TestDoubleRegisterPanics(t *testing.T) {
	tr := New(1, LatencyModel{})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	defer func() {
		if recover() == nil {
			t.Error("double register did not panic")
		}
	}()
	tr.RegisterHandler(0, func(m Message) {})
}

func TestBadEndpointsPanic(t *testing.T) {
	tr := New(2, LatencyModel{})
	defer tr.Close()
	tr.RegisterHandler(0, func(m Message) {})
	tr.RegisterHandler(1, func(m Message) {})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range destination did not panic")
		}
	}()
	tr.Send(Message{From: 0, To: 9})
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Data: "data", Control: "control", Ack: "ack"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestSelfSendGoesThroughSimulatedPath(t *testing.T) {
	tr := New(1, LatencyModel{})
	defer tr.Close()
	got := make(chan Message, 1)
	tr.RegisterHandler(0, func(m Message) { got <- m })
	tr.Send(Message{From: 0, To: 0, Kind: Data, Payload: 42})
	select {
	case m := <-got:
		if m.Payload != 42 {
			t.Errorf("payload = %v", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("self-send not delivered")
	}
}
