package cluster_test

// Credit-flow tests: the Flow window semantics (blocking, oversized
// admission, release clamping, abort/reset), and the end-to-end credit
// protocol on both transport backends — after WaitIdle every ordered
// pair's window must reconcile to zero outstanding bytes, on clean runs
// and on every drop/duplicate/kill path.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"serialgraph/internal/cluster"
	"serialgraph/internal/metrics"
)

func TestFlowAcquireBlocksAtWindow(t *testing.T) {
	f := cluster.NewFlow(2, 100)
	reg := metrics.New()
	f.SetMetrics(reg)
	f.Acquire(0, 1, 60) // fits
	acquired := make(chan struct{})
	go func() {
		f.Acquire(0, 1, 60) // 120 > 100: must block until credit returns
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire did not block at a full window")
	case <-time.After(50 * time.Millisecond):
	}
	if err := f.CheckBalanced(); err == nil {
		t.Fatal("CheckBalanced accepted a window with outstanding bytes")
	}
	f.Release(0, 1, 60)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire still blocked after Release")
	}
	f.Release(0, 1, 60)
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("balanced flow rejected: %v", err)
	}
	if reg.Get(metrics.CreditWaitNs) == 0 {
		t.Error("blocked Acquire recorded no credit_wait_ns")
	}
}

func TestFlowOversizedAdmission(t *testing.T) {
	// A batch larger than the whole window must be admitted once the lane
	// is empty — blocking it forever would deadlock oversized sends.
	f := cluster.NewFlow(2, 100)
	done := make(chan struct{})
	go func() {
		f.Acquire(0, 1, 5000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("oversized Acquire on an empty lane blocked")
	}
	f.Release(0, 1, 5000)
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("after oversized round trip: %v", err)
	}
}

func TestFlowReleaseClampsAtZero(t *testing.T) {
	// At-least-once delivery means duplicate releases: each extra copy of
	// a data message returns credit that was only acquired once. Releases
	// clamp at zero outstanding so granted − released == outstanding
	// stays an exact invariant.
	f := cluster.NewFlow(2, 100)
	f.Acquire(0, 1, 40)
	f.Release(0, 1, 40)
	f.Release(0, 1, 40) // the duplicate
	f.Release(1, 0, 99) // release with no acquire at all
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("clamped releases broke the invariant: %v", err)
	}
	f.Acquire(0, 1, 40) // the window must still have its full capacity
	f.Release(0, 1, 40)
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("window corrupted by over-release: %v", err)
	}
}

func TestFlowAbortAndReset(t *testing.T) {
	f := cluster.NewFlow(2, 100)
	f.Acquire(0, 1, 100)
	unblocked := make(chan struct{})
	go func() {
		f.Acquire(0, 1, 100)
		close(unblocked)
	}()
	time.Sleep(20 * time.Millisecond) // let the goroutine park
	f.Abort()
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock a parked Acquire")
	}
	// Aborted flows admit immediately (recovery is tearing down).
	f.Acquire(0, 1, 500)
	f.Reset()
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("Reset left lanes imbalanced: %v", err)
	}
	// After Reset the window blocks again.
	f.Acquire(0, 1, 100)
	blocked := make(chan struct{})
	go func() {
		f.Acquire(0, 1, 100)
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("window not re-armed after Reset")
	case <-time.After(50 * time.Millisecond):
	}
	f.Abort() // release the parked goroutine before the test exits
	<-blocked
}

func TestFlowNilSafe(t *testing.T) {
	var f *cluster.Flow
	f.Acquire(0, 1, 10)
	f.Release(0, 1, 10)
	f.Abort()
	f.Reset()
	f.SetMetrics(nil)
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("nil flow imbalanced: %v", err)
	}
	if f.Window() != 0 {
		t.Fatalf("nil flow window = %d", f.Window())
	}
}

func TestWindowForBudget(t *testing.T) {
	if got := cluster.WindowForBudget(0, 4); got != cluster.DefaultCreditWindow {
		t.Errorf("zero budget window = %d, want default", got)
	}
	if got := cluster.WindowForBudget(1<<30, 4); got != (1<<30)/8 {
		t.Errorf("1GiB/4w window = %d, want %d", got, (1<<30)/8)
	}
	if got := cluster.WindowForBudget(1024, 16); got != 64<<10 {
		t.Errorf("tiny budget window = %d, want the 64KiB floor", got)
	}
}

// flowTransport is the Mem/TCP intersection the credit tests drive.
type flowTransport interface {
	cluster.Transport
	SetFlow(*cluster.Flow)
}

// runFlowTraffic pushes concurrent multi-sender data traffic (larger
// than the tiny window, so senders must block and recycle credit) plus
// control traffic through tr, then checks the conservation invariant at
// an idle barrier.
func runFlowTraffic(t *testing.T, tr flowTransport, n int) {
	t.Helper()
	f := cluster.NewFlow(n, 256)
	tr.SetFlow(f)
	var delivered atomic.Int64
	eps := make([]*cluster.Endpoint, n)
	for w := 0; w < n; w++ {
		eps[w] = cluster.NewEndpoint(tr, cluster.WorkerID(w),
			func(from cluster.WorkerID, payload any) { delivered.Add(1) }, nil)
		eps[w].SetFlow(f)
	}
	const perSender = 50
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				// 100-byte batches against a 256-byte window: at most two
				// may be outstanding per lane, so credit must round-trip
				// for the run to finish at all.
				eps[w].SendData(cluster.WorkerID(i%n), batch(0, float64(i)), 100)
			}
		}()
	}
	wg.Wait()
	tr.WaitIdle()
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("after idle barrier: %v", err)
	}
	if got := delivered.Load(); got != int64(n*perSender) {
		t.Fatalf("delivered %d of %d", got, n*perSender)
	}
	// A second barrier after more traffic: windows must balance at every
	// barrier, not just the first.
	eps[0].SendData(cluster.WorkerID(n-1), batch(0, 1), 1000) // oversized vs window
	tr.WaitIdle()
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("after oversized send: %v", err)
	}
}

func TestMemFlowBalancedAtIdle(t *testing.T) {
	tr := cluster.New(3, cluster.LatencyModel{})
	defer tr.Close()
	runFlowTraffic(t, tr, 3)
}

func TestTCPFlowBalancedAtIdle(t *testing.T) {
	tr := newTCP(t, 3)
	defer tr.Close()
	runFlowTraffic(t, tr, 3)
	// Credit frames are real wire traffic: the byte ledger must still
	// balance with grants crossing the sockets in both directions.
	tr.WaitIdle()
	s := tr.Stats().Load()
	if s.WireBytesSent == 0 || s.WireBytesSent != s.WireBytesReceived {
		t.Errorf("wire ledger skewed with credit frames: sent %d received %d",
			s.WireBytesSent, s.WireBytesReceived)
	}
}

// dropEveryOtherHook alternates Drop / DropDelivery / clean on data.
type dropEveryOtherHook struct{ n atomic.Int64 }

func (h *dropEveryOtherHook) OnSend(m cluster.Message) cluster.Fate {
	if m.Kind != cluster.Data {
		return cluster.Fate{}
	}
	switch h.n.Add(1) % 3 {
	case 0:
		return cluster.Fate{Drop: true}
	case 1:
		return cluster.Fate{DropDelivery: true}
	default:
		return cluster.Fate{Duplicates: 1}
	}
}
func (h *dropEveryOtherHook) OnDeliver(cluster.Message) {}

// runFlowFaults drives every loss path — send-time drops, wire losses,
// duplicates, a killed receiver — and requires balanced windows at idle:
// credit acquired by a message that never arrives must still be returned.
func runFlowFaults(t *testing.T, tr flowTransport, n int) {
	t.Helper()
	f := cluster.NewFlow(n, 512)
	tr.SetFlow(f)
	tr.SetFaultHook(&dropEveryOtherHook{})
	eps := make([]*cluster.Endpoint, n)
	for w := 0; w < n; w++ {
		eps[w] = cluster.NewEndpoint(tr, cluster.WorkerID(w),
			func(from cluster.WorkerID, payload any) {}, nil)
		eps[w].SetFlow(f)
	}
	for i := 0; i < 60; i++ {
		eps[i%n].SendData(cluster.WorkerID((i+1)%n), batch(0, float64(i)), 100)
	}
	tr.WaitIdle()
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("after faulty traffic: %v", err)
	}
	// Kill a worker: sends touching it drop at send time, in-flight data
	// to it drops at delivery. Both must return credit.
	tr.Kill(cluster.WorkerID(n - 1))
	for i := 0; i < 20; i++ {
		eps[0].SendData(cluster.WorkerID(n-1), batch(0, float64(i)), 100)
		eps[n-1].SendData(0, batch(0, float64(i)), 100)
	}
	tr.WaitIdle()
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("after killed-worker traffic: %v", err)
	}
	tr.Revive(cluster.WorkerID(n - 1))
}

func TestMemFlowFaultPathsReleaseCredit(t *testing.T) {
	tr := cluster.New(3, cluster.LatencyModel{})
	defer tr.Close()
	runFlowFaults(t, tr, 3)
}

func TestTCPFlowFaultPathsReleaseCredit(t *testing.T) {
	tr := newTCP(t, 3)
	defer tr.Close()
	runFlowFaults(t, tr, 3)
}

func TestFlowSendAfterCloseReleases(t *testing.T) {
	tr := cluster.New(2, cluster.LatencyModel{})
	f := cluster.NewFlow(2, 256)
	tr.SetFlow(f)
	e0 := cluster.NewEndpoint(tr, 0, func(cluster.WorkerID, any) {}, nil)
	cluster.NewEndpoint(tr, 1, func(cluster.WorkerID, any) {}, nil)
	e0.SetFlow(f)
	tr.Close()
	e0.SendData(1, batch(0, 1), 100) // dropped at Send; credit must return
	if err := f.CheckBalanced(); err != nil {
		t.Fatalf("send-after-close leaked credit: %v", err)
	}
}

// TestTCPFlowCreditInvisibleToLedgers pins the accounting contract: the
// credit protocol adds zero messages to the per-kind counters and zero
// drops, so every existing conservation oracle holds bit-for-bit with
// flow control armed.
func TestTCPFlowCreditInvisibleToLedgers(t *testing.T) {
	tr := newTCP(t, 2)
	defer tr.Close()
	f := cluster.NewFlow(2, 1<<20)
	tr.SetFlow(f)
	var delivered atomic.Int64
	e0 := cluster.NewEndpoint(tr, 0, func(cluster.WorkerID, any) {}, nil)
	cluster.NewEndpoint(tr, 1, func(cluster.WorkerID, any) { delivered.Add(1) }, nil)
	e0.SetFlow(f)
	for i := 0; i < 10; i++ {
		e0.SendData(1, batch(0, float64(i)), 100)
	}
	tr.WaitIdle()
	s := tr.Stats().Load()
	if s.DataMessages != 10 || s.DataBytes != 1000 {
		t.Errorf("data ledger skewed by credit traffic: %+v", s)
	}
	if s.ControlMessages != 0 || s.AckMessages != 0 || s.DroppedMessages != 0 {
		t.Errorf("credit frames leaked into message ledgers: %+v", s)
	}
	if delivered.Load() != 10 {
		t.Errorf("delivered %d of 10", delivered.Load())
	}
	if err := f.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
	if s.WireBytesSent != s.WireBytesReceived {
		t.Errorf("wire ledger: sent %d != received %d", s.WireBytesSent, s.WireBytesReceived)
	}
}
