package cluster

// Credit-based flow control for the data plane.
//
// Every ordered worker pair (from, to) has an independent credit window:
// a byte budget of data that may be outstanding — sent but not yet
// consumed by the receiver. A sender that would exceed the window blocks
// in Acquire until the receiver consumes earlier data and credit flows
// back. On the in-process transport credit is returned directly when a
// data message leaves the lane (delivered or dropped); on TCP the
// receiver returns credit with a Credit frame on the reverse lane.
//
// The window bounds sender-side queue growth without touching delivery
// order: credit frames are ordinary lane traffic, data frames are never
// reordered or retransmitted, and a blocked Acquire only delays the
// moment a frame enters its lane. Lane FIFO — the C1 argument — is
// therefore preserved verbatim (see DESIGN.md §12).

import (
	"fmt"
	"sync"
	"time"

	"serialgraph/internal/metrics"
)

// CreditGrant is the payload of a Credit frame: the receiver returns
// Bytes of window to the sender of earlier data. On the wire the frame's
// From is the granting (receiving) worker and To is the original data
// sender; the grant releases credit on the (To, From) data lane.
type CreditGrant struct {
	// Bytes is the declared size of the consumed data, in the same
	// units the sender charged in Acquire.
	Bytes int64
}

// DefaultCreditWindow is the per-ordered-pair window used when no
// message-memory budget is configured. It is far above what any test
// graph buffers, so flow control is always armed (and its conservation
// oracle always checkable) without ever blocking small runs.
const DefaultCreditWindow int64 = 4 << 20

// WindowForBudget derives the per-ordered-pair credit window from a
// message-memory budget over n workers. Budget 0 means "default": a
// large window that never blocks small runs. A positive budget is split
// across a worker's inbound lanes with headroom for double buffering,
// floored so a window can always carry a reasonable batch.
func WindowForBudget(budget int64, n int) int64 {
	if budget <= 0 {
		return DefaultCreditWindow
	}
	if n < 1 {
		n = 1
	}
	w := budget / int64(2*n)
	if w < 64<<10 {
		w = 64 << 10
	}
	return w
}

// flowLane is the credit state of one ordered pair.
type flowLane struct {
	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int64 // bytes acquired and not yet released
	granted     int64 // lifetime bytes acquired
	released    int64 // lifetime bytes released
}

// Flow tracks per-ordered-pair credit windows for an n-worker cluster.
// Acquire charges the window (blocking while it is full), Release
// returns credit. All methods are safe for concurrent use and safe on a
// nil *Flow (they become no-ops), so call sites need no guards.
type Flow struct {
	n      int
	window int64
	lanes  []flowLane

	mu      sync.Mutex
	aborted bool

	reg *metrics.Registry
}

// NewFlow creates a Flow for n workers with the given per-ordered-pair
// byte window. A window <= 0 falls back to DefaultCreditWindow.
func NewFlow(n int, window int64) *Flow {
	if window <= 0 {
		window = DefaultCreditWindow
	}
	f := &Flow{n: n, window: window, lanes: make([]flowLane, n*n)}
	for i := range f.lanes {
		f.lanes[i].cond = sync.NewCond(&f.lanes[i].mu)
	}
	return f
}

// SetMetrics attaches a registry; blocked Acquire time is accumulated
// into metrics.CreditWaitNs.
func (f *Flow) SetMetrics(reg *metrics.Registry) {
	if f != nil {
		f.reg = reg
	}
}

// Window reports the per-ordered-pair byte window.
func (f *Flow) Window() int64 {
	if f == nil {
		return 0
	}
	return f.window
}

func (f *Flow) lane(from, to WorkerID) *flowLane {
	return &f.lanes[int(from)*f.n+int(to)]
}

// Acquire charges bytes against the (from, to) window, blocking while
// the window is full. A frame larger than the whole window is admitted
// once the lane is empty, so oversized batches make progress instead of
// deadlocking. Abort unblocks all waiters.
func (f *Flow) Acquire(from, to WorkerID, bytes int) {
	if f == nil || bytes <= 0 {
		return
	}
	l := f.lane(from, to)
	l.mu.Lock()
	var waited time.Duration
	for l.outstanding > 0 && l.outstanding+int64(bytes) > f.window && !f.isAborted() {
		start := time.Now()
		l.cond.Wait()
		waited += time.Since(start)
	}
	l.outstanding += int64(bytes)
	l.granted += int64(bytes)
	l.mu.Unlock()
	if waited > 0 && f.reg != nil {
		f.reg.Add(metrics.CreditWaitNs, waited.Nanoseconds())
	}
}

// Release returns bytes of credit to the (from, to) window. Releases
// are clamped at zero outstanding, which makes duplicate deliveries
// under fault injection (at-least-once) harmless: the invariant
// granted − released == outstanding holds exactly at all times.
func (f *Flow) Release(from, to WorkerID, bytes int) {
	if f == nil || bytes <= 0 {
		return
	}
	l := f.lane(from, to)
	l.mu.Lock()
	d := int64(bytes)
	if d > l.outstanding {
		d = l.outstanding
	}
	l.outstanding -= d
	l.released += d
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (f *Flow) isAborted() bool {
	f.mu.Lock()
	a := f.aborted
	f.mu.Unlock()
	return a
}

// Abort unblocks every waiter and makes subsequent Acquires non-blocking
// until Reset. Called when the engine tears a superstep down (watchdog
// kill, rollback) so no sender stays parked on credit that will never
// return.
func (f *Flow) Abort() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.aborted = true
	f.mu.Unlock()
	for i := range f.lanes {
		f.lanes[i].cond.Broadcast()
	}
}

// Reset clears the abort flag and zeroes every lane, for reuse after a
// rollback. Any credit frame still in flight from before the reset is
// harmless: Release clamps at zero outstanding.
func (f *Flow) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.aborted = false
	f.mu.Unlock()
	for i := range f.lanes {
		l := &f.lanes[i]
		l.mu.Lock()
		l.outstanding, l.granted, l.released = 0, 0, 0
		l.mu.Unlock()
		l.cond.Broadcast()
	}
}

// CheckBalanced verifies the credit-conservation invariant at a barrier:
// with the transport idle, every lane's granted credit must have been
// consumed (outstanding == 0). It returns the first imbalanced pair, or
// nil. Meaningful only after the transport's WaitIdle has returned.
func (f *Flow) CheckBalanced() error {
	if f == nil {
		return nil
	}
	for i := range f.lanes {
		l := &f.lanes[i]
		l.mu.Lock()
		out, g, r := l.outstanding, l.granted, l.released
		l.mu.Unlock()
		if out != 0 || g-r != out {
			return fmt.Errorf("credit imbalance on lane %d->%d: granted %d released %d outstanding %d",
				i/f.n, i%f.n, g, r, out)
		}
	}
	return nil
}
