package chandy

// Tests for the split RequestForks/Collect acquisition API that the
// overlap scheduler's fork prefetching rides on. The two load-bearing
// properties:
//
//   - No fork leaks: however many requests are outstanding when a round
//     drains (prefetched partitions that never ran any compute included),
//     collecting and releasing them all restores the quiescent two-sided
//     edge invariant — exactly one side holds the (dirty) fork, exactly
//     one side holds the request token, nobody hungry or eating. A leaked
//     fork here would surface as a cross-worker deadlock at the next
//     superstep's barrier.
//   - Acyclic precedence under concurrency: many philosophers issuing
//     RequestForks simultaneously (the prefetch window) with a delayed
//     Collect must preserve mutual exclusion and starvation-freedom just
//     like the blocking Acquire path — the hygienic rules only ever see
//     hungry philosophers, however they became hungry.

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"serialgraph/internal/cluster"
	"serialgraph/internal/metrics"
)

// quiescentInvariant checks the drained-state property on a single-worker
// manager: every philosopher thinking, and each edge's two bytes mirror
// images of each other (one dirty fork, one token, never zero or two).
func quiescentInvariant(t *testing.T, m *Manager, adj [][]PhilID) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, p := range m.phils {
		if p.state != thinking {
			t.Fatalf("phil %d left %v after drain", id, p.state)
		}
		if p.ready != nil {
			t.Fatalf("phil %d still holds a grant channel after drain", id)
		}
	}
	for a := range adj {
		for _, b := range adj[a] {
			if PhilID(a) > b {
				continue // each undirected edge once
			}
			sa, sb := m.phils[PhilID(a)].edges[b], m.phils[b].edges[PhilID(a)]
			if sb != Mirror(sa) {
				t.Fatalf("edge %d-%d not quiescent: %03b / %03b", a, b, sa, sb)
			}
		}
	}
}

// TestPrefetchDrainNoForkLeaks is the fork-leak property test: rounds of
// scheduler-shaped traffic — issue a window of RequestForks, then drain by
// polling for grants (never blocking on one specific philosopher, exactly
// like the overlap scheduler's claim loop), collecting and releasing each.
// None of the granted philosophers runs any compute: these are the
// "prefetched but unused" forks, and every one must be back in a
// one-fork-one-token state before the round (the "barrier") ends.
func TestPrefetchDrainNoForkLeaks(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	const n, rounds = 24, 40
	adj := randomConflictGraph(r, n, 50)
	m := singleWorker()
	for id := 0; id < n; id++ {
		m.AddPhil(PhilID(id), adj[id])
	}
	deadline := time.Now().Add(20 * time.Second)
	for round := 0; round < rounds; round++ {
		// A random prefetch window: between one philosopher and all of them,
		// in random order, so neighbors are routinely hungry simultaneously.
		order := r.Perm(n)[:1+r.Intn(n)]
		type pending struct {
			id PhilID
			ch <-chan struct{}
		}
		var outstanding []pending
		for _, id := range order {
			ch := m.RequestForks(PhilID(id))
			if ch == nil {
				t.Fatal("RequestForks returned nil without an abort")
			}
			outstanding = append(outstanding, pending{PhilID(id), ch})
		}
		for len(outstanding) > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: drain stalled with %d outstanding", round, len(outstanding))
			}
			progressed := false
			for i := 0; i < len(outstanding); i++ {
				select {
				case <-outstanding[i].ch:
				default:
					continue // not granted yet; never block on one phil
				}
				p := outstanding[i]
				if !m.Collect(p.id, p.ch) {
					t.Fatalf("round %d: Collect(%d) failed without an abort", round, p.id)
				}
				m.Release(p.id)
				outstanding[i] = outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
				progressed = true
				i--
			}
			if !progressed {
				runtime.Gosched()
			}
		}
		quiescentInvariant(t, m, adj)
	}
	if got, want := m.Stats().Meals, int64(0); got == want {
		t.Fatal("no meals happened; the property was tested vacuously")
	}
}

// TestConcurrentRequestForksExclusion is the acyclic-precedence regression
// test: every philosopher of a random conflict graph acquires prefetch-style
// — RequestForks, then a deliberately widened window before Collect — from
// its own goroutine. Exclusion violations or a harness timeout here would
// mean concurrent RequestForks broke the precedence order that Chandy–Misra's
// deadlock/starvation-freedom proof depends on. The registry cross-check
// pins the API contract that makes the wait histogram meaningful: exactly
// one Collect observation per RequestForks.
func TestConcurrentRequestForksExclusion(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const n, rounds = 20, 30
	adj := randomConflictGraph(r, n, 40)
	m := singleWorker()
	reg := metrics.New()
	m.SetMetrics(reg)
	for id := 0; id < n; id++ {
		m.AddPhil(PhilID(id), adj[id])
	}
	acquire := func(p PhilID) {
		ch := m.RequestForks(p)
		if ch == nil {
			t.Error("RequestForks returned nil without an abort")
			return
		}
		runtime.Gosched() // widen the request→collect window
		if !m.Collect(p, ch) {
			t.Errorf("Collect(%d) failed without an abort", p)
		}
	}
	exclusionHarness(t, n, adj, m, acquire, m.Release, rounds)
	if got, want := m.Stats().Meals, int64(n*rounds); got != want {
		t.Errorf("meals = %d, want %d", got, want)
	}
	snap := reg.Snapshot()
	if got, want := snap.Hist(metrics.HistLockWait).Count, snap.Get(metrics.LockAcquires); got != want {
		t.Errorf("lock_wait hist count = %d, lock_acquires = %d", got, want)
	}
}

// TestDistributedConcurrentRequestForks runs the same prefetch-style
// acquisition over a real simulated transport, so token and fork messages
// from concurrently hungry philosophers interleave with network latency.
func TestDistributedConcurrentRequestForks(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n, w := 16, 4
	adj := randomConflictGraph(r, n, 30)
	ownerOf := func(p PhilID) int { return int(p) % w }
	mgrs, closeFn := distributed(t, w, adj, ownerOf,
		cluster.LatencyModel{Propagation: 150 * time.Microsecond})
	defer closeFn()
	acquire := func(p PhilID) {
		mgr := mgrs[ownerOf(p)]
		ch := mgr.RequestForks(p)
		if ch == nil {
			t.Error("RequestForks returned nil without an abort")
			return
		}
		time.Sleep(50 * time.Microsecond) // overlap window
		if !mgr.Collect(p, ch) {
			t.Errorf("Collect(%d) failed without an abort", p)
		}
	}
	release := func(p PhilID) { mgrs[ownerOf(p)].Release(p) }
	exclusionHarness(t, n, adj, nil, acquire, release, 20)
}

// TestCollectAfterAbort: an abort while a request is pending closes the
// grant channel without feeding the philosopher; Collect must report false
// and later RequestForks must fail fast with nil until the abort clears.
func TestCollectAfterAbort(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})
	if !m.Acquire(1) { // 1 starts with the dirty fork: eats immediately
		t.Fatal("Acquire(1) failed")
	}
	ch := m.RequestForks(0) // blocked behind eating neighbor
	if ch == nil {
		t.Fatal("RequestForks(0) returned nil before any abort")
	}
	m.Abort()
	if m.Collect(0, ch) {
		t.Error("Collect returned true for an aborted request")
	}
	if m.RequestForks(0) != nil {
		t.Error("RequestForks did not fail fast while aborted")
	}
	m.ClearAbort()
	m.Release(1)
	if !m.Acquire(0) {
		t.Error("Acquire(0) failed after ClearAbort")
	}
	m.Release(0)
}

// TestRequestForksWhileHungryPanics pins the double-request guard on the
// async path: a second RequestForks before the first resolves is a caller
// bug, not a queueable state.
func TestRequestForksWhileHungryPanics(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})
	if !m.Acquire(1) {
		t.Fatal("Acquire(1) failed")
	}
	if ch := m.RequestForks(0); ch == nil {
		t.Fatal("RequestForks(0) returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("RequestForks while hungry did not panic")
		}
		m.Release(1)
	}()
	m.RequestForks(0)
}
