package chandy

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"serialgraph/internal/cluster"
)

// singleWorker wires one Manager with no network.
func singleWorker() *Manager {
	var m *Manager
	m = NewManager(0, func(PhilID) int { return 0 },
		func(int, Ctrl) { panic("no remote workers") }, nil)
	return m
}

func TestPairAlternation(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})

	var inMeal [2]atomic.Bool
	var meals [2]int
	var wg sync.WaitGroup
	for id := PhilID(0); id < 2; id++ {
		wg.Add(1)
		go func(id PhilID) {
			defer wg.Done()
			other := 1 - id
			for i := 0; i < 200; i++ {
				m.Acquire(id)
				if !inMeal[id].CompareAndSwap(false, true) {
					t.Errorf("phil %d already eating", id)
				}
				if inMeal[other].Load() {
					t.Errorf("neighbors %d and %d eating together", id, other)
				}
				meals[id]++
				inMeal[id].Store(false)
				m.Release(id)
			}
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: pair did not finish")
	}
	if meals[0] != 200 || meals[1] != 200 {
		t.Errorf("meals = %v", meals)
	}
}

// exclusionHarness runs every philosopher of a random conflict graph for
// `rounds` meals on a single manager and checks mutual exclusion between
// neighbors throughout.
func exclusionHarness(t *testing.T, n int, adj [][]PhilID, mgr *Manager, acquire func(PhilID), release func(PhilID), rounds int) {
	t.Helper()
	eatingNow := make([]atomic.Bool, n)
	var violations atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id PhilID) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				acquire(id)
				eatingNow[id].Store(true)
				for _, q := range adj[id] {
					if eatingNow[q].Load() {
						violations.Add(1)
					}
				}
				eatingNow[id].Store(false)
				release(id)
			}
		}(PhilID(id))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: philosophers did not finish")
	}
	if v := violations.Load(); v > 0 {
		t.Errorf("%d mutual exclusion violations", v)
	}
}

func randomConflictGraph(r *rand.Rand, n int, extraEdges int) [][]PhilID {
	adj := make([][]PhilID, n)
	addEdge := func(a, b int) {
		for _, q := range adj[a] {
			if q == PhilID(b) {
				return
			}
		}
		adj[a] = append(adj[a], PhilID(b))
		adj[b] = append(adj[b], PhilID(a))
	}
	for i := 1; i < n; i++ {
		addEdge(i-1, i)
	}
	for i := 0; i < extraEdges; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			addEdge(a, b)
		}
	}
	return adj
}

func TestRandomGraphSingleManager(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 30
	adj := randomConflictGraph(r, n, 60)
	m := singleWorker()
	for id := 0; id < n; id++ {
		m.AddPhil(PhilID(id), adj[id])
	}
	exclusionHarness(t, n, adj, m, func(p PhilID) { m.Acquire(p) }, m.Release, 50)
	st := m.Stats()
	if st.Meals != int64(n*50) {
		t.Errorf("meals = %d, want %d", st.Meals, n*50)
	}
	if st.RemoteForkSends != 0 || st.RemoteTokenSends != 0 {
		t.Errorf("remote traffic on single worker: %+v", st)
	}
}

// distributed wires w managers over a real simulated transport.
func distributed(t *testing.T, w int, adj [][]PhilID, ownerOf func(PhilID) int, lat cluster.LatencyModel) ([]*Manager, func()) {
	t.Helper()
	tr := cluster.New(w, lat)
	mgrs := make([]*Manager, w)
	eps := make([]*cluster.Endpoint, w)
	for i := 0; i < w; i++ {
		i := i
		mgrs[i] = NewManager(i, ownerOf, func(toWorker int, c Ctrl) {
			eps[i].SendCtrl(cluster.WorkerID(toWorker), c)
		}, nil)
		eps[i] = cluster.NewEndpoint(tr, cluster.WorkerID(i), nil,
			func(from cluster.WorkerID, payload any) {
				mgrs[i].HandleCtrl(payload.(Ctrl))
			})
	}
	for id := range adj {
		mgrs[ownerOf(PhilID(id))].AddPhil(PhilID(id), adj[id])
	}
	return mgrs, tr.Close
}

func TestDistributedPair(t *testing.T) {
	adj := [][]PhilID{{1}, {0}}
	ownerOf := func(p PhilID) int { return int(p) }
	mgrs, closeFn := distributed(t, 2, adj, ownerOf, cluster.LatencyModel{Propagation: time.Millisecond})
	defer closeFn()
	acquire := func(p PhilID) { mgrs[ownerOf(p)].Acquire(p) }
	release := func(p PhilID) { mgrs[ownerOf(p)].Release(p) }
	exclusionHarness(t, 2, adj, nil, acquire, release, 50)
	_ = mgrs
}

func TestDistributedRandomGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, w := 24, 4
	adj := randomConflictGraph(r, n, 40)
	ownerOf := func(p PhilID) int { return int(p) % w }
	mgrs, closeFn := distributed(t, w, adj, ownerOf, cluster.LatencyModel{Propagation: 200 * time.Microsecond})
	defer closeFn()
	acquire := func(p PhilID) { mgrs[ownerOf(p)].Acquire(p) }
	release := func(p PhilID) { mgrs[ownerOf(p)].Release(p) }
	exclusionHarness(t, n, adj, nil, acquire, release, 25)
	var remote int64
	for _, m := range mgrs {
		remote += m.Stats().RemoteForkSends
	}
	if remote == 0 {
		t.Error("expected remote fork traffic across 4 workers")
	}
}

func TestHaltedPhilosopherYieldsOnRequest(t *testing.T) {
	// A eats once and never again (a halted partition). B must still be
	// able to eat repeatedly: A's manager yields A's dirty fork on request
	// even though A's own thread is gone.
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})
	m.Acquire(0)
	m.Release(0)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			m.Acquire(1)
			m.Release(1)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("B starved behind halted A")
	}
}

func TestNoNeighborsEatsImmediately(t *testing.T) {
	m := singleWorker()
	m.AddPhil(5, nil)
	done := make(chan struct{})
	go func() {
		m.Acquire(5)
		m.Release(5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("isolated philosopher blocked")
	}
}

func TestInitialPlacement(t *testing.T) {
	m := singleWorker()
	m.AddPhil(1, []PhilID{2})
	m.AddPhil(2, []PhilID{1})
	p1, p2 := m.phils[1], m.phils[2]
	if p1.edges[2] != bitToken {
		t.Errorf("smaller id state = %b, want token only", p1.edges[2])
	}
	if p2.edges[1] != bitFork|bitDirty {
		t.Errorf("larger id state = %b, want dirty fork", p2.edges[1])
	}
}

func TestSmallerIDHasInitialPriority(t *testing.T) {
	// From the initial acyclic placement, the smaller ID requests and the
	// larger yields, so a lone hungry smaller ID eats without the larger
	// ever acquiring.
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})
	done := make(chan struct{})
	go func() { m.Acquire(0); close(done) }()
	select {
	case <-done:
		m.Release(0)
	case <-time.After(time.Second):
		t.Fatal("initial request not honored")
	}
}

func TestFairnessUnderContention(t *testing.T) {
	// Star: hub 0 contends with 8 spokes. Everyone must finish the same
	// number of meals — no starvation even for the hub.
	n := 9
	adj := make([][]PhilID, n)
	for i := 1; i < n; i++ {
		adj[0] = append(adj[0], PhilID(i))
		adj[i] = []PhilID{0}
	}
	m := singleWorker()
	for id := 0; id < n; id++ {
		m.AddPhil(PhilID(id), adj[id])
	}
	exclusionHarness(t, n, adj, m, func(p PhilID) { m.Acquire(p) }, m.Release, 40)
}

func TestAcquireTwicePanics(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, nil)
	m.Acquire(0)
	defer func() {
		if recover() == nil {
			t.Error("double Acquire did not panic")
		}
	}()
	m.Acquire(0)
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, nil)
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	m.Release(0)
}

func TestPreHandoffRunsBeforeRemoteFork(t *testing.T) {
	// Worker 0 owns phil 0; worker 1 owns phil 1. When 0's fork leaves for
	// worker 1, preHandoff(1) must run first.
	var order []string
	var mu sync.Mutex
	tr := cluster.New(2, cluster.LatencyModel{})
	defer tr.Close()
	ownerOf := func(p PhilID) int { return int(p) }
	mgrs := make([]*Manager, 2)
	eps := make([]*cluster.Endpoint, 2)
	for i := 0; i < 2; i++ {
		i := i
		pre := func(toWorker int) {
			mu.Lock()
			order = append(order, "flush")
			mu.Unlock()
		}
		mgrs[i] = NewManager(i, ownerOf, func(toWorker int, c Ctrl) {
			if c.Kind == ForkMsg {
				mu.Lock()
				order = append(order, "fork")
				mu.Unlock()
			}
			eps[i].SendCtrl(cluster.WorkerID(toWorker), c)
		}, pre)
		eps[i] = cluster.NewEndpoint(tr, cluster.WorkerID(i), nil,
			func(from cluster.WorkerID, payload any) { mgrs[i].HandleCtrl(payload.(Ctrl)) })
	}
	mgrs[0].AddPhil(0, []PhilID{1})
	mgrs[1].AddPhil(1, []PhilID{0})
	// Phil 0 starts with the token; phil 1 with the dirty fork on worker 1.
	// Phil 1 requesting is the remote-fork case from worker... actually
	// phil 0 hungry requests the fork from worker 1: worker 1 yields.
	mgrs[0].Acquire(0)
	mgrs[0].Release(0)
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(order); i++ {
		if order[i] == "fork" && order[i-1] != "flush" {
			t.Errorf("fork sent without preceding flush: %v", order)
		}
	}
	if len(order) == 0 {
		t.Error("no fork exchange happened")
	}
}

func TestStatsCounting(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})
	m.Acquire(0) // one token send (0->1), one fork send (1->0)
	m.Release(0)
	st := m.Stats()
	if st.TokenSends != 1 || st.ForkSends != 1 || st.Meals != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, []PhilID{1, 2})
	m.AddPhil(1, []PhilID{0, 2})
	m.AddPhil(2, []PhilID{0, 1})
	// Mutate state away from the initial placement.
	m.Acquire(2)
	m.Release(2)
	snap := m.Export()

	// A fresh manager with the same topology, restored.
	m2 := singleWorker()
	m2.AddPhil(0, []PhilID{1, 2})
	m2.AddPhil(1, []PhilID{0, 2})
	m2.AddPhil(2, []PhilID{0, 1})
	m2.Import(snap)
	snap2 := m2.Export()
	for id, edges := range snap {
		for q, st := range edges {
			if snap2[id][q] != st {
				t.Fatalf("edge %d-%d state %b != %b after import", id, q, snap2[id][q], st)
			}
		}
	}
	// The restored manager must still work.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			m2.Acquire(0)
			m2.Release(0)
			m2.Acquire(1)
			m2.Release(1)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("restored manager deadlocked")
	}
}

func TestImportUnknownPhilosopherPanics(t *testing.T) {
	m := singleWorker()
	m.AddPhil(0, []PhilID{1})
	m.AddPhil(1, []PhilID{0})
	defer func() {
		if recover() == nil {
			t.Error("Import of unknown philosopher did not panic")
		}
	}()
	m.Import(map[PhilID]map[PhilID]byte{99: {0: 1}})
}

func TestDistributedHighContentionWithBandwidth(t *testing.T) {
	// Dense conflict graph over a slow network: exclusion and progress
	// must hold even when control messages queue behind bandwidth limits.
	r := rand.New(rand.NewSource(13))
	n, w := 16, 4
	adj := randomConflictGraph(r, n, 80)
	ownerOf := func(p PhilID) int { return int(p) % w }
	mgrs, closeFn := distributed(t, w, adj, ownerOf,
		cluster.LatencyModel{Propagation: 100 * time.Microsecond, BytesPerSec: 1 << 22})
	defer closeFn()
	acquire := func(p PhilID) { mgrs[ownerOf(p)].Acquire(p) }
	release := func(p PhilID) { mgrs[ownerOf(p)].Release(p) }
	exclusionHarness(t, n, adj, nil, acquire, release, 15)
}
