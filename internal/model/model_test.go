package model

import "testing"

func TestSemanticsString(t *testing.T) {
	for s, want := range map[Semantics]string{
		Queue: "queue", Combine: "combine", Overwrite: "overwrite", Semantics(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
