// Package model defines the vertex-centric programming model shared by all
// engines: the Pregel-style compute function with vote-to-halt semantics
// (used by the BSP and AP engines) and the GAS gather/apply/scatter program
// (used by the GraphLab-style async engine). Algorithms are written once
// against these types and run unchanged under any engine and any
// synchronization technique — the transparency property the paper argues
// for in §6.5.
package model

import (
	"serialgraph/internal/graph"
)

// Semantics selects how the message store treats incoming messages.
type Semantics uint8

const (
	// Queue appends every message and hands the batch to the next
	// execution, which consumes it. Classic Pregel.
	Queue Semantics = iota
	// Combine folds messages into a single slot with the program's Combine
	// function (e.g. min for SSSP/WCC); the slot is consumed when read.
	Combine
	// Overwrite keeps one slot per in-edge neighbor holding that neighbor's
	// latest message; reads see all present slots and do not consume them.
	// This makes the store a replica table of in-neighbor state, which is
	// the read-set formalization of §3.2 — coloring and PageRank use it.
	Overwrite
)

func (s Semantics) String() string {
	switch s {
	case Queue:
		return "queue"
	case Combine:
		return "combine"
	case Overwrite:
		return "overwrite"
	}
	return "unknown"
}

// Context is the view a vertex program has of its vertex during one
// execution (one transaction T(Nu) in the paper's terms).
type Context[V, M any] interface {
	// Superstep returns the current superstep, starting at 0.
	Superstep() int
	// ID returns the vertex being executed.
	ID() graph.VertexID
	// Value returns the current vertex value.
	Value() V
	// SetValue replaces the vertex value (the transaction's write w[u]).
	SetValue(v V)
	// OutNeighbors lists the out-edge neighbors.
	OutNeighbors() []graph.VertexID
	// OutWeights lists edge weights parallel to OutNeighbors, nil if
	// unweighted.
	OutWeights() []float64
	// Send delivers m to dst at the time the engine's model dictates
	// (next superstep under BSP, immediately under AP).
	Send(dst graph.VertexID, m M)
	// SendToAllOut broadcasts m along all out-edges.
	SendToAllOut(m M)
	// VoteToHalt deactivates the vertex until a new message arrives.
	VoteToHalt()
	// NumVertices returns the global vertex count.
	NumVertices() int
	// Aggregate adds v into the named global aggregator (summed across all
	// vertices; visible next superstep).
	Aggregate(name string, v float64)
	// Aggregated reads the named aggregator's value from the previous
	// superstep.
	Aggregated(name string) float64
	// AddEdgeRequest asks the engine to add the directed edge src->dst
	// (weight w; pass 1 for unweighted graphs) at the next global barrier
	// (Pregel topology mutation). Duplicate requests are deduplicated and
	// removals win over additions in the same superstep. Mutations require
	// an engine without a serializability technique: the formalism of §3
	// assumes a static read set.
	AddEdgeRequest(src, dst graph.VertexID, w float64)
	// RemoveEdgeRequest asks the engine to remove every src->dst edge at
	// the next global barrier.
	RemoveEdgeRequest(src, dst graph.VertexID)
}

// Program is a Pregel-style vertex program. Compute runs once per active
// vertex per superstep; msgs holds the messages visible to this execution
// under the engine's semantics.
type Program[V, M any] struct {
	// Name identifies the algorithm in logs and stats.
	Name string
	// Semantics selects the message store mode.
	Semantics Semantics
	// Combine folds two messages; required when Semantics == Combine.
	Combine func(a, b M) M
	// Init returns a vertex's value before superstep 0. Nil means the zero
	// value.
	Init func(id graph.VertexID, g *graph.Graph) V
	// Compute is the user compute function.
	Compute func(ctx Context[V, M], msgs []M)
	// MsgBytes is the simulated wire size of one message payload.
	MsgBytes int
	// MasterHalt, when non-nil, runs on the master at the end of every
	// superstep with the merged aggregator values; returning true
	// terminates the computation (Pregel's master-compute halting).
	MasterHalt func(superstep int, aggregates map[string]float64) bool
	// MsgAppend/MsgRead, when both non-nil, are the program's wire
	// serialization contract: MsgAppend appends one message's encoding to
	// dst, MsgRead parses one message from the front of b and returns the
	// bytes consumed. Real transport backends use them to encode batches;
	// when nil, the transport falls back to an automatic codec (compact
	// fixed/varint layouts for numeric M, gob for struct messages).
	MsgAppend func(dst []byte, m M) []byte
	MsgRead   func(b []byte) (M, int, error)
}

// GASProgram is a GraphLab-style gather/apply/scatter program. The gather
// phase pulls each in-neighbor's current value; Apply folds the accumulated
// result into a new vertex value and decides whether to activate the
// out-neighbors (scatter).
type GASProgram[V, M any] struct {
	Name string
	// Init returns a vertex's initial value.
	Init func(id graph.VertexID, g *graph.Graph) V
	// Gather maps one in-neighbor's value to an accumulator contribution.
	Gather func(u, nbr graph.VertexID, nbrVal V, weight float64) M
	// Sum combines two gather contributions.
	Sum func(a, b M) M
	// Apply computes the new value from the old value and the accumulated
	// gather (hasAcc is false for vertices with no in-edges). It returns
	// the new value and whether the vertex's out-neighbors should be
	// activated (scattered to).
	Apply func(u graph.VertexID, old V, acc M, hasAcc bool) (V, bool)
	// Converged, if non-nil, reports whether a re-execution of u can be
	// skipped entirely (used for per-vertex halting on reactivation).
	Converged func(old, new V) bool
	// ValBytes is the simulated wire size of a replicated vertex value.
	ValBytes int
}
