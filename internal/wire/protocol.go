package wire

// protocol.go encodes the multi-process driver's coordination payloads
// (internal/dist): the handshake, job spec, superstep loop, data-plane
// barrier, and final value collection. Everything is explicit fixed
// binary — varints and length-prefixed strings, no gob — so the frames
// are deterministic, golden-testable, and safe to parse from untrusted
// bytes (every length is validated before allocation).

import (
	"encoding/binary"
	"fmt"
	"math"

	"serialgraph/internal/cluster"
)

// Hello opens a connection: protocol version, the sender's worker ID
// (-1 before the coordinator assigns one), and — on the control plane —
// the worker's data-plane listen address.
type Hello struct {
	Version int32
	Worker  int32
	Addr    string
}

// Job is the coordinator's run spec: enough for every worker process to
// deterministically rebuild the same graph and partition map and find
// its peers.
type Job struct {
	Alg            string // "sssp" | "pagerank" | "coloring" | "wcc"
	GraphPath      string // load a saved graph...
	Family         string // ...or generate one from a family
	N              int32  // generated-graph size
	Undirected     bool   // symmetrize after loading/generating
	Workers        int32  // worker-process count
	PartsPerWorker int32
	MaxSupersteps  int32
	Seed           uint64  // partitioner seed (and generator seed)
	Source         int32   // SSSP source
	Eps            float64 // PageRank tolerance
	You            int32   // the recipient's worker ID
	Peers          []string // data-plane addresses indexed by worker ID
	// MsgMemoryBudget bounds each worker process's buffered inbound
	// message bytes (0 = unbounded); overflow spills to disk.
	MsgMemoryBudget int64
	// Partitioner names the vertex-placement strategy ("" = hash); every
	// worker rebuilds the identical map from it deterministically.
	Partitioner string
}

// StepStart dispatches one superstep with the previous step's merged
// aggregator values (keys sorted, so the frame is deterministic).
type StepStart struct {
	Superstep int32
	AggKeys   []string
	AggVals   []float64
}

// StepDone reports one worker's superstep: halting votes, pending
// messages, and its local aggregator contributions.
type StepDone struct {
	Superstep   int32
	Unhalted    int64
	Pending     int64
	Executions  int64
	SentBatches int64 // data batches sent to peers (simulated ledger)
	SentBytes   int64 // simulated bytes of those batches
	WireBytes   int64 // true encoded bytes written to peer sockets
	AggKeys     []string
	AggVals     []float64
}

// Barrier is the per-superstep data-plane flush marker between worker
// processes: FIFO stream order makes it proof that every data frame the
// sender emitted for this superstep has been received.
type Barrier struct {
	Superstep int32
}

// Finish ends the run.
type Finish struct {
	Converged  bool
	Supersteps int32
}

// ValueEntry is one (vertex, value) pair of the final result collection.
type ValueEntry[V any] struct {
	ID  int32
	Val V
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	size, n := binary.Uvarint(b)
	if n <= 0 {
		return "", nil, ErrTruncated
	}
	b = b[n:]
	if size > uint64(len(b)) {
		return "", nil, ErrTruncated
	}
	return string(b[:size]), b[size:], nil
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func readBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrTruncated
	}
	if b[0] > 1 {
		return false, nil, ErrCorrupt
	}
	return b[0] == 1, b[1:], nil
}

func readZigzag32(b []byte) (int32, []byte, error) {
	v, n := cluster.Zigzag(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, nil, ErrCorrupt
	}
	return int32(v), b[n:], nil
}

func readZigzag64(b []byte) (int64, []byte, error) {
	v, n := cluster.Zigzag(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

func appendFloat(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func readFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

// aggregates are encoded as count, then (key, value) pairs. Callers keep
// keys sorted so encoding is deterministic.
func appendAggs(dst []byte, keys []string, vals []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for i, k := range keys {
		dst = appendString(dst, k)
		dst = appendFloat(dst, vals[i])
	}
	return dst
}

func readAggs(b []byte) (keys []string, vals []float64, rest []byte, err error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, nil, ErrTruncated
	}
	b = b[n:]
	// Each pair takes at least 9 bytes (empty key + float64).
	if count > uint64(len(b))/9+1 {
		return nil, nil, nil, fmt.Errorf("%w: aggregate count %d exceeds payload", ErrCorrupt, count)
	}
	keys = make([]string, 0, count)
	vals = make([]float64, 0, count)
	for i := uint64(0); i < count; i++ {
		var k string
		var v float64
		if k, b, err = readString(b); err != nil {
			return nil, nil, nil, err
		}
		if v, b, err = readFloat(b); err != nil {
			return nil, nil, nil, err
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals, b, nil
}

// AppendHello encodes h.
func AppendHello(dst []byte, h Hello) []byte {
	dst = cluster.AppendZigzag(dst, int64(h.Version))
	dst = cluster.AppendZigzag(dst, int64(h.Worker))
	return appendString(dst, h.Addr)
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	var h Hello
	var err error
	if h.Version, b, err = readZigzag32(b); err != nil {
		return h, err
	}
	if h.Worker, b, err = readZigzag32(b); err != nil {
		return h, err
	}
	if h.Addr, b, err = readString(b); err != nil {
		return h, err
	}
	if len(b) != 0 {
		return h, fmt.Errorf("%w: trailing bytes after hello", ErrCorrupt)
	}
	return h, nil
}

// AppendJob encodes j.
func AppendJob(dst []byte, j Job) []byte {
	dst = appendString(dst, j.Alg)
	dst = appendString(dst, j.GraphPath)
	dst = appendString(dst, j.Family)
	dst = cluster.AppendZigzag(dst, int64(j.N))
	dst = appendBool(dst, j.Undirected)
	dst = cluster.AppendZigzag(dst, int64(j.Workers))
	dst = cluster.AppendZigzag(dst, int64(j.PartsPerWorker))
	dst = cluster.AppendZigzag(dst, int64(j.MaxSupersteps))
	dst = binary.AppendUvarint(dst, j.Seed)
	dst = cluster.AppendZigzag(dst, int64(j.Source))
	dst = appendFloat(dst, j.Eps)
	dst = cluster.AppendZigzag(dst, int64(j.You))
	dst = binary.AppendUvarint(dst, uint64(len(j.Peers)))
	for _, p := range j.Peers {
		dst = appendString(dst, p)
	}
	dst = cluster.AppendZigzag(dst, j.MsgMemoryBudget)
	return appendString(dst, j.Partitioner)
}

// DecodeJob parses a Job payload.
func DecodeJob(b []byte) (Job, error) {
	var j Job
	var err error
	if j.Alg, b, err = readString(b); err != nil {
		return j, err
	}
	if j.GraphPath, b, err = readString(b); err != nil {
		return j, err
	}
	if j.Family, b, err = readString(b); err != nil {
		return j, err
	}
	if j.N, b, err = readZigzag32(b); err != nil {
		return j, err
	}
	if j.Undirected, b, err = readBool(b); err != nil {
		return j, err
	}
	if j.Workers, b, err = readZigzag32(b); err != nil {
		return j, err
	}
	if j.PartsPerWorker, b, err = readZigzag32(b); err != nil {
		return j, err
	}
	if j.MaxSupersteps, b, err = readZigzag32(b); err != nil {
		return j, err
	}
	seed, n := binary.Uvarint(b)
	if n <= 0 {
		return j, ErrTruncated
	}
	j.Seed = seed
	b = b[n:]
	if j.Source, b, err = readZigzag32(b); err != nil {
		return j, err
	}
	if j.Eps, b, err = readFloat(b); err != nil {
		return j, err
	}
	if j.You, b, err = readZigzag32(b); err != nil {
		return j, err
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return j, ErrTruncated
	}
	b = b[n:]
	if count > uint64(len(b))+1 {
		return j, fmt.Errorf("%w: peer count %d exceeds payload", ErrCorrupt, count)
	}
	j.Peers = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		var p string
		if p, b, err = readString(b); err != nil {
			return j, err
		}
		j.Peers = append(j.Peers, p)
	}
	if j.MsgMemoryBudget, b, err = readZigzag64(b); err != nil {
		return j, err
	}
	if j.Partitioner, b, err = readString(b); err != nil {
		return j, err
	}
	if len(b) != 0 {
		return j, fmt.Errorf("%w: trailing bytes after job", ErrCorrupt)
	}
	return j, nil
}

// AppendStepStart encodes s. Aggregator keys must be sorted.
func AppendStepStart(dst []byte, s StepStart) []byte {
	dst = cluster.AppendZigzag(dst, int64(s.Superstep))
	return appendAggs(dst, s.AggKeys, s.AggVals)
}

// DecodeStepStart parses a StepStart payload.
func DecodeStepStart(b []byte) (StepStart, error) {
	var s StepStart
	var err error
	if s.Superstep, b, err = readZigzag32(b); err != nil {
		return s, err
	}
	if s.AggKeys, s.AggVals, b, err = readAggs(b); err != nil {
		return s, err
	}
	if len(b) != 0 {
		return s, fmt.Errorf("%w: trailing bytes after step-start", ErrCorrupt)
	}
	return s, nil
}

// AppendStepDone encodes s. Aggregator keys must be sorted.
func AppendStepDone(dst []byte, s StepDone) []byte {
	dst = cluster.AppendZigzag(dst, int64(s.Superstep))
	dst = cluster.AppendZigzag(dst, s.Unhalted)
	dst = cluster.AppendZigzag(dst, s.Pending)
	dst = cluster.AppendZigzag(dst, s.Executions)
	dst = cluster.AppendZigzag(dst, s.SentBatches)
	dst = cluster.AppendZigzag(dst, s.SentBytes)
	dst = cluster.AppendZigzag(dst, s.WireBytes)
	return appendAggs(dst, s.AggKeys, s.AggVals)
}

// DecodeStepDone parses a StepDone payload.
func DecodeStepDone(b []byte) (StepDone, error) {
	var s StepDone
	var err error
	if s.Superstep, b, err = readZigzag32(b); err != nil {
		return s, err
	}
	if s.Unhalted, b, err = readZigzag64(b); err != nil {
		return s, err
	}
	if s.Pending, b, err = readZigzag64(b); err != nil {
		return s, err
	}
	if s.Executions, b, err = readZigzag64(b); err != nil {
		return s, err
	}
	if s.SentBatches, b, err = readZigzag64(b); err != nil {
		return s, err
	}
	if s.SentBytes, b, err = readZigzag64(b); err != nil {
		return s, err
	}
	if s.WireBytes, b, err = readZigzag64(b); err != nil {
		return s, err
	}
	if s.AggKeys, s.AggVals, b, err = readAggs(b); err != nil {
		return s, err
	}
	if len(b) != 0 {
		return s, fmt.Errorf("%w: trailing bytes after step-done", ErrCorrupt)
	}
	return s, nil
}

// AppendBarrier encodes a data-plane barrier marker.
func AppendBarrier(dst []byte, bar Barrier) []byte {
	return cluster.AppendZigzag(dst, int64(bar.Superstep))
}

// DecodeBarrier parses a Barrier payload.
func DecodeBarrier(b []byte) (Barrier, error) {
	var bar Barrier
	var err error
	if bar.Superstep, b, err = readZigzag32(b); err != nil {
		return bar, err
	}
	if len(b) != 0 {
		return bar, fmt.Errorf("%w: trailing bytes after barrier", ErrCorrupt)
	}
	return bar, nil
}

// AppendFinish encodes f.
func AppendFinish(dst []byte, f Finish) []byte {
	dst = appendBool(dst, f.Converged)
	return cluster.AppendZigzag(dst, int64(f.Supersteps))
}

// DecodeFinish parses a Finish payload.
func DecodeFinish(b []byte) (Finish, error) {
	var f Finish
	var err error
	if f.Converged, b, err = readBool(b); err != nil {
		return f, err
	}
	if f.Supersteps, b, err = readZigzag32(b); err != nil {
		return f, err
	}
	if len(b) != 0 {
		return f, fmt.Errorf("%w: trailing bytes after finish", ErrCorrupt)
	}
	return f, nil
}

// AppendValues encodes final (vertex, value) pairs: count, then
// zigzag-delta IDs with codec-encoded values.
func AppendValues[V any](dst []byte, c MsgCodec[V], vals []ValueEntry[V]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	prev := int64(0)
	for _, e := range vals {
		dst = cluster.AppendZigzag(dst, int64(e.ID)-prev)
		prev = int64(e.ID)
		dst = c.Append(dst, e.Val)
	}
	return dst
}

// DecodeValues parses a FrameValues payload.
func DecodeValues[V any](c MsgCodec[V], b []byte) ([]ValueEntry[V], error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, ErrTruncated
	}
	b = b[n:]
	if count > uint64(len(b))+1 {
		return nil, fmt.Errorf("%w: value count %d exceeds payload", ErrCorrupt, count)
	}
	vals := make([]ValueEntry[V], 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, n := cluster.Zigzag(b)
		if n <= 0 {
			return nil, ErrTruncated
		}
		b = b[n:]
		id := prev + delta
		if id < math.MinInt32 || id > math.MaxInt32 {
			return nil, ErrCorrupt
		}
		prev = id
		v, n, err := c.Read(b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		vals = append(vals, ValueEntry[V]{ID: int32(id), Val: v})
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after values", ErrCorrupt)
	}
	return vals, nil
}
