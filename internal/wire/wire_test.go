package wire

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"serialgraph/internal/cluster"
	"serialgraph/internal/msgstore"
)

func roundTripMsg[M any](t *testing.T, c MsgCodec[M], vals []M) {
	t.Helper()
	var buf []byte
	for _, v := range vals {
		buf = c.Append(buf, v)
	}
	for _, want := range vals {
		got, n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read %v: %v", want, err)
		}
		if n <= 0 || n > len(buf) {
			t.Fatalf("read consumed %d of %d bytes", n, len(buf))
		}
		buf = buf[n:]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
}

func TestAutoMsgCodecRoundTrips(t *testing.T) {
	roundTripMsg(t, AutoMsgCodec[float64](),
		[]float64{0, 1.5, -2.25, math.Inf(1), math.MaxFloat64, math.SmallestNonzeroFloat64})
	roundTripMsg(t, AutoMsgCodec[float32](), []float32{0, 0.5, -7, math.MaxFloat32})
	roundTripMsg(t, AutoMsgCodec[int32](), []int32{0, 1, -1, math.MinInt32, math.MaxInt32})
	roundTripMsg(t, AutoMsgCodec[int64](), []int64{0, -5, math.MinInt64, math.MaxInt64})
	roundTripMsg(t, AutoMsgCodec[int](), []int{0, 42, -42, math.MinInt, math.MaxInt})
	roundTripMsg(t, AutoMsgCodec[uint32](), []uint32{0, 7, math.MaxUint32})
	roundTripMsg(t, AutoMsgCodec[uint64](), []uint64{0, 9, math.MaxUint64})
	roundTripMsg(t, AutoMsgCodec[bool](), []bool{true, false, true})
	// NaN: bit pattern must survive even though NaN != NaN.
	c := AutoMsgCodec[float64]()
	got, _, err := c.Read(c.Append(nil, math.NaN()))
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN round trip: got %v, err %v", got, err)
	}
}

func TestAutoMsgCodecGobFallback(t *testing.T) {
	type kcoreMsg struct {
		Src  int32
		Core int32
	}
	roundTripMsg(t, AutoMsgCodec[kcoreMsg](),
		[]kcoreMsg{{1, 2}, {0, 0}, {-3, 99}})
	// Truncated gob payload errors instead of reading past the buffer.
	c := AutoMsgCodec[kcoreMsg]()
	buf := c.Append(nil, kcoreMsg{1, 2})
	if _, _, err := c.Read(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated gob read succeeded")
	}
}

func TestMsgCodecErrorPaths(t *testing.T) {
	if _, _, err := AutoMsgCodec[bool]().Read([]byte{2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bool byte 2: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := AutoMsgCodec[float64]().Read([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short float64: err = %v, want ErrTruncated", err)
	}
	// An int64 zigzag value outside int32 range must not wrap into an int32.
	big := cluster.AppendZigzag(nil, math.MaxInt32+1)
	if _, _, err := AutoMsgCodec[int32]().Read(big); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overflowing int32: err = %v, want ErrCorrupt", err)
	}
	huge := make([]byte, 11)
	for i := range huge {
		huge[i] = 0xff
	}
	if _, _, err := AutoMsgCodec[uint32]().Read(huge); err == nil {
		t.Fatal("overlong uvarint read succeeded")
	}
}

// TestProgramMsgCodecContract exercises NewCodecWith: a program-supplied
// serialization contract (model.Program.MsgAppend/MsgRead) replaces the
// automatic codec.
func TestProgramMsgCodecContract(t *testing.T) {
	custom := MsgCodec[float64]{
		// Fixed-point milli encoding: deliberately different from the
		// auto codec so a mix-up would fail the round trip.
		Append: func(dst []byte, m float64) []byte {
			return cluster.AppendZigzag(dst, int64(m*1000))
		},
		Read: func(b []byte) (float64, int, error) {
			v, n := cluster.Zigzag(b)
			if n <= 0 {
				return 0, 0, ErrTruncated
			}
			return float64(v) / 1000, n, nil
		},
	}
	c := NewCodecWith(custom)
	batch := []msgstore.Entry[float64]{{Dst: 1, Src: 0, Msg: 2.5}, {Dst: 2, Src: 1, Msg: -0.125}}
	ftype, buf, err := c.EncodePayload(batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != cluster.FrameData {
		t.Fatalf("ftype = %#x, want FrameData", ftype)
	}
	got, err := c.DecodePayload(cluster.FrameData, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("got %#v, want %#v", got, batch)
	}
	// The auto float64 codec must NOT parse the custom encoding cleanly
	// into the same batch (different layout).
	if other, err := NewCodec[float64]().DecodePayload(cluster.FrameData, buf); err == nil &&
		reflect.DeepEqual(other, batch) {
		t.Fatal("auto codec decoded custom layout identically; contract not exercised")
	}
}

func TestDecodePayloadRejectsCorruptBatch(t *testing.T) {
	c := NewCodec[float64]()
	good := []msgstore.Entry[float64]{{Dst: 3, Src: 1, Msg: 1}}
	_, buf, err := c.EncodePayload(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length error (never panic, never succeed
	// with a wrong batch).
	for i := 0; i < len(buf); i++ {
		if _, err := c.DecodePayload(cluster.FrameData, buf[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := c.DecodePayload(cluster.FrameData, append(append([]byte{}, buf...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown frame type.
	if _, err := c.DecodePayload(0x7f, buf); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	// Bad ctrl kind.
	bad := append([]byte{9}, cluster.AppendZigzag(cluster.AppendZigzag(nil, 0), 1)...)
	if _, err := c.DecodePayload(cluster.FrameCtrl, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ctrl kind 9: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeAllocationGuards feeds payloads whose declared element counts
// wildly exceed the payload size: decoders must reject them up front
// instead of allocating count-sized slices.
func TestDecodeAllocationGuards(t *testing.T) {
	hugeCount := func(n uint64) []byte {
		return appendUvarintForTest(nil, n)
	}
	const huge = 1 << 40
	if _, err := NewCodec[float64]().DecodePayload(cluster.FrameData, hugeCount(huge)); err == nil {
		t.Fatal("huge batch count accepted")
	}
	if _, err := DecodeValues(AutoMsgCodec[float64](), hugeCount(huge)); err == nil {
		t.Fatal("huge value count accepted")
	}
	if _, err := DecodeStepStart(append(cluster.AppendZigzag(nil, 1), hugeCount(huge)...)); err == nil {
		t.Fatal("huge aggregate count accepted")
	}
	job := AppendJob(nil, Job{Alg: "sssp"})
	// Clobber the peer count (second-to-last varint: the trailing byte is
	// the message-memory budget) with a huge one.
	if _, err := DecodeJob(append(job[:len(job)-2], hugeCount(huge)...)); err == nil {
		t.Fatal("huge peer count accepted")
	}
}

func appendUvarintForTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func TestProtocolRoundTrips(t *testing.T) {
	hello := Hello{Version: 1, Worker: -1, Addr: "127.0.0.1:9"}
	if got, err := DecodeHello(AppendHello(nil, hello)); err != nil || got != hello {
		t.Fatalf("hello: got %#v, err %v", got, err)
	}
	job := Job{Alg: "coloring", GraphPath: "/tmp/g", N: 7, Undirected: true,
		Workers: 3, PartsPerWorker: 1, MaxSupersteps: 10, Seed: math.MaxUint64,
		Source: -1, Eps: 0.5, You: 2, Peers: []string{"a", "", "c"}}
	if got, err := DecodeJob(AppendJob(nil, job)); err != nil || !reflect.DeepEqual(got, job) {
		t.Fatalf("job: got %#v, err %v", got, err)
	}
	ss := StepStart{Superstep: 0, AggKeys: []string{}, AggVals: []float64{}}
	if got, err := DecodeStepStart(AppendStepStart(nil, ss)); err != nil ||
		got.Superstep != 0 || len(got.AggKeys) != 0 {
		t.Fatalf("step start: got %#v, err %v", got, err)
	}
	sd := StepDone{Superstep: 5, Unhalted: -0, Pending: 1 << 40, Executions: 3,
		SentBatches: 2, SentBytes: 99, WireBytes: 77,
		AggKeys: []string{"x"}, AggVals: []float64{math.Inf(-1)}}
	if got, err := DecodeStepDone(AppendStepDone(nil, sd)); err != nil || !reflect.DeepEqual(got, sd) {
		t.Fatalf("step done: got %#v, err %v", got, err)
	}
	if got, err := DecodeBarrier(AppendBarrier(nil, Barrier{Superstep: 9})); err != nil || got.Superstep != 9 {
		t.Fatalf("barrier: got %#v, err %v", got, err)
	}
	if got, err := DecodeFinish(AppendFinish(nil, Finish{Converged: false, Supersteps: 201})); err != nil ||
		got.Converged || got.Supersteps != 201 {
		t.Fatalf("finish: got %#v, err %v", got, err)
	}
	vals := []ValueEntry[int32]{{ID: 5, Val: -2}, {ID: 2, Val: 9}} // out-of-order IDs: deltas go negative
	c := AutoMsgCodec[int32]()
	if got, err := DecodeValues(c, AppendValues(nil, c, vals)); err != nil || !reflect.DeepEqual(got, vals) {
		t.Fatalf("values: got %#v, err %v", got, err)
	}
}

func TestProtocolTruncationsError(t *testing.T) {
	c := AutoMsgCodec[float64]()
	full := map[string][]byte{
		"hello":      AppendHello(nil, Hello{Version: 1, Worker: 2, Addr: "x:1"}),
		"job":        AppendJob(nil, Job{Alg: "sssp", Peers: []string{"a"}}),
		"step_start": AppendStepStart(nil, StepStart{Superstep: 1, AggKeys: []string{"k"}, AggVals: []float64{2}}),
		"step_done":  AppendStepDone(nil, StepDone{Superstep: 1, AggKeys: []string{"k"}, AggVals: []float64{2}}),
		"barrier":    AppendBarrier(nil, Barrier{Superstep: 1}),
		"finish":     AppendFinish(nil, Finish{Converged: true, Supersteps: 3}),
		"values":     AppendValues(nil, c, []ValueEntry[float64]{{ID: 1, Val: 2}}),
	}
	decoders := map[string]func([]byte) error{
		"hello":      func(b []byte) error { _, err := DecodeHello(b); return err },
		"job":        func(b []byte) error { _, err := DecodeJob(b); return err },
		"step_start": func(b []byte) error { _, err := DecodeStepStart(b); return err },
		"step_done":  func(b []byte) error { _, err := DecodeStepDone(b); return err },
		"barrier":    func(b []byte) error { _, err := DecodeBarrier(b); return err },
		"finish":     func(b []byte) error { _, err := DecodeFinish(b); return err },
		"values":     func(b []byte) error { _, err := DecodeValues(c, b); return err },
	}
	for name, buf := range full {
		dec := decoders[name]
		if err := dec(buf); err != nil {
			t.Fatalf("%s: full payload errored: %v", name, err)
		}
		for i := 0; i < len(buf); i++ {
			if err := dec(buf[:i]); err == nil {
				t.Errorf("%s truncated to %d bytes decoded cleanly", name, i)
			}
		}
		if err := dec(append(append([]byte{}, buf...), 0xee)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Errorf("%s with trailing byte: err = %v, want trailing-bytes error", name, err)
		}
	}
}
