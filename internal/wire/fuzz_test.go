package wire

// FuzzFrameDecode drives arbitrary bytes through the full untrusted-input
// surface: the frame envelope decoder, every payload decoder, and both
// streaming and slice entry points. The invariants:
//
//   - truncated, corrupt, or oversized input returns an error — never a
//     panic and never a runaway allocation (counts are validated against
//     the payload size before any slice is sized);
//   - DecodeFrame and ReadFrame agree on whether a byte string is a frame;
//   - anything that decodes cleanly re-encodes and decodes to the same
//     value (no silent acceptance of half-parsed frames).
//
// Run long with `make fuzz-wire` (30s smoke in CI) or
// `go test ./internal/wire/ -fuzz FuzzFrameDecode`.

import (
	"bufio"
	"bytes"
	"testing"

	"serialgraph/internal/chandy"
	"serialgraph/internal/cluster"
)

func FuzzFrameDecode(f *testing.F) {
	// Seed with every golden frame (each frame type, both codecs, the
	// flag/delay envelope variant) plus targeted malformations.
	for _, tc := range goldenCases(f) {
		f.Add(tc.frame)
		if len(tc.frame) > 5 {
			f.Add(tc.frame[:len(tc.frame)/2]) // truncated
			mut := append([]byte{}, tc.frame...)
			mut[5] ^= 0xff // corrupt early body byte
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // length prefix > MaxFrameBytes
	f.Add([]byte{0, 0, 0, 7, cluster.FrameData, 0, 0, 0, 0, 0, 0xff})

	c64 := NewCodec[float64]()
	c32 := NewCodec[int32]()
	cgob := NewCodec[exoticMsg]()
	vcodec := AutoMsgCodec[float64]()

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := cluster.DecodeFrame(b)

		// ReadFrame must agree with DecodeFrame on the same bytes.
		sf, sn, serr := cluster.ReadFrame(bufio.NewReader(bytes.NewReader(b)))
		if (err == nil) != (serr == nil) {
			t.Fatalf("DecodeFrame err %v but ReadFrame err %v", err, serr)
		}
		if err != nil {
			return
		}
		if n != sn || sf.Type != fr.Type || sf.From != fr.From || sf.To != fr.To ||
			sf.Flags != fr.Flags || sf.Declared != fr.Declared || sf.Delay != fr.Delay ||
			!bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("DecodeFrame and ReadFrame disagree: %+v vs %+v", fr, sf)
		}
		if n < 4 || n > len(b) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(b))
		}

		// Payload decoders must never panic, whatever the frame type byte
		// says. A clean decode must survive a re-encode round trip.
		for _, c := range []cluster.PayloadCodec{c64, c32, cgob} {
			payload, err := c.DecodePayload(fr.Type, fr.Payload)
			if err != nil {
				continue
			}
			checkReencode(t, c, fr.Type, payload)
		}
		// The dist protocol decoders take the same untrusted bytes.
		if h, err := DecodeHello(fr.Payload); err == nil {
			reencode(t, "hello", fr.Payload, AppendHello(nil, h))
		}
		if j, err := DecodeJob(fr.Payload); err == nil {
			reencode(t, "job", fr.Payload, AppendJob(nil, j))
		}
		if s, err := DecodeStepStart(fr.Payload); err == nil {
			reencode(t, "step_start", fr.Payload, AppendStepStart(nil, s))
		}
		if s, err := DecodeStepDone(fr.Payload); err == nil {
			reencode(t, "step_done", fr.Payload, AppendStepDone(nil, s))
		}
		if bar, err := DecodeBarrier(fr.Payload); err == nil {
			reencode(t, "barrier", fr.Payload, AppendBarrier(nil, bar))
		}
		if fin, err := DecodeFinish(fr.Payload); err == nil {
			reencode(t, "finish", fr.Payload, AppendFinish(nil, fin))
		}
		if vals, err := DecodeValues(vcodec, fr.Payload); err == nil {
			reencode(t, "values", fr.Payload, AppendValues(nil, vcodec, vals))
		}
	})
}

// FuzzCreditFrame focuses the fuzzer on the Credit frame: the payload is
// a single uvarint, so the interesting corners are truncation, non-minimal
// or overlong varints, and values overflowing int64. The invariants match
// FuzzFrameDecode's — errors never panics, and clean decodes re-encode to
// a byte-level fixed point. Run long with `make fuzz-wire`.
func FuzzCreditFrame(f *testing.F) {
	c64 := NewCodec[float64]()
	seed := encodeFrame(f, c64, cluster.CreditGrant{Bytes: 4096}, cluster.Frame{From: 1, To: 0})
	f.Add(seed)
	for i := 1; i < len(seed); i++ {
		f.Add(seed[:i]) // every truncation
	}
	for i := 4; i < len(seed); i++ {
		mut := append([]byte{}, seed...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	// Overlong varint payload (10 bytes, high bits set): overflows int64.
	f.Add(cluster.AppendFrame(nil, &cluster.Frame{
		Type: cluster.FrameCredit, From: 1, To: 0,
		Payload: []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}))
	// Trailing garbage after a valid uvarint.
	f.Add(cluster.AppendFrame(nil, &cluster.Frame{
		Type: cluster.FrameCredit, From: 1, To: 0, Payload: []byte{0x07, 0x00},
	}))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, _, err := cluster.DecodeFrame(b)
		if err != nil {
			return
		}
		for _, c := range []cluster.PayloadCodec{c64, NewCodec[int32]()} {
			payload, err := c.DecodePayload(cluster.FrameCredit, fr.Payload)
			if err != nil {
				continue
			}
			g, ok := payload.(cluster.CreditGrant)
			if !ok || g.Bytes < 0 {
				t.Fatalf("credit decode produced %#v", payload)
			}
			checkReencode(t, c, cluster.FrameCredit, payload)
		}
	})
}

// reencode checks a decoded-then-reencoded payload is at most as long as
// the input it came from (the encoders emit minimal varints, so a decode
// that "accepted" absurd input would show up as growth) and decodes to
// the same bytes' semantics when parsed again.
func reencode(t *testing.T, what string, in, out []byte) {
	t.Helper()
	if len(out) > len(in) {
		t.Fatalf("%s: re-encode grew %d -> %d bytes", what, len(in), len(out))
	}
}

// checkReencode round-trips an engine payload through its codec. The
// fixed point is checked at the byte level (decode → encode → decode →
// encode must produce identical bytes) rather than by value equality,
// which would spuriously reject NaN message payloads (NaN != NaN).
func checkReencode(t *testing.T, c cluster.PayloadCodec, ftype byte, payload any) {
	t.Helper()
	gotType, buf, err := c.EncodePayload(payload, nil)
	if err != nil {
		t.Fatalf("re-encode %T: %v", payload, err)
	}
	if gotType != ftype {
		t.Fatalf("re-encode type %#x, decoded from %#x", gotType, ftype)
	}
	again, err := c.DecodePayload(gotType, buf)
	if err != nil {
		t.Fatalf("re-decode %T: %v", payload, err)
	}
	_, buf2, err := c.EncodePayload(again, nil)
	if err != nil {
		t.Fatalf("re-re-encode %T: %v", again, err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("re-encode is not a fixed point:\n %x\n %x", buf, buf2)
	}
}

// TestFuzzSeedsHealthy keeps the fuzz function honest under plain `go
// test`: every seed must run through the fuzz body without failing, so
// CI exercises the invariants even without -fuzz.
func TestFuzzSeedsHealthy(t *testing.T) {
	for _, tc := range goldenCases(t) {
		fr, _, err := cluster.DecodeFrame(tc.frame)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		c64 := NewCodec[float64]()
		if fr.Type == cluster.FrameData || fr.Type == cluster.FrameCtrl ||
			fr.Type == cluster.FrameFlush || fr.Type == cluster.FrameAck ||
			fr.Type == cluster.FrameCredit {
			// Wrong-codec decodes may error but must not panic.
			_, _ = NewCodec[int32]().DecodePayload(fr.Type, fr.Payload)
			_, _ = c64.DecodePayload(fr.Type, fr.Payload)
		}
	}
	// A ctrl frame decoded by any codec yields the identical chandy.Ctrl
	// (the payload has no message values).
	fork := chandy.Ctrl{Kind: chandy.ForkMsg, From: 3, To: -1}
	_, buf, err := NewCodec[float64]().EncodePayload(fork, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewCodec[exoticMsg]().DecodePayload(cluster.FrameCtrl, buf)
	if err != nil || got.(chandy.Ctrl) != fork {
		t.Fatalf("cross-codec ctrl decode: %#v, %v", got, err)
	}
}
