package wire

// Golden wire-format tests: one hex fixture per frame type under
// testdata/, regenerated with `go test ./internal/wire/ -run Golden
// -update`. A fixture mismatch means the wire format changed — if that
// was intentional, bump cluster.ProtocolVersion and re-record.
//
// Every case also round-trips: the fixture bytes are decoded back
// through DecodeFrame + the payload decoder and compared structurally,
// so the goldens double as decode tests.

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"serialgraph/internal/chandy"
	"serialgraph/internal/cluster"
	"serialgraph/internal/msgstore"
)

var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// exoticMsg exercises the gob fallback codec (a struct message type with
// no fixed fast path, like the k-core algorithm's KCoreMsg).
type exoticMsg struct {
	ID   int32
	Core float64
}

// goldenCase is one recorded frame: the encoded bytes plus a decode
// closure that parses the fixture's payload and compares it to the
// original value.
type goldenCase struct {
	name   string
	frame  []byte
	verify func(t *testing.T, f cluster.Frame)
}

func encodeFrame(t testing.TB, c cluster.PayloadCodec, payload any, f cluster.Frame) []byte {
	t.Helper()
	ftype, body, err := c.EncodePayload(payload, nil)
	if err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	f.Type, f.Payload = ftype, body
	return cluster.AppendFrame(nil, &f)
}

func rawFrame(ftype byte, from, to cluster.WorkerID, payload []byte) []byte {
	return cluster.AppendFrame(nil, &cluster.Frame{
		Type: ftype, From: from, To: to, Payload: payload,
	})
}

func goldenCases(t testing.TB) []goldenCase {
	t.Helper()
	c64 := NewCodec[float64]()
	c32 := NewCodec[int32]()
	cgob := NewCodec[exoticMsg]()

	batch64 := []msgstore.Entry[float64]{
		{Dst: 10, Src: 3, Msg: 1.5, Ver: 2, Slot: 0},
		{Dst: 12, Src: -1, Msg: 0.25, Ver: 2, Slot: 1},
		{Dst: 11, Src: 7, Msg: -3.75, Ver: 3, Slot: 4},
	}
	batch32 := []msgstore.Entry[int32]{
		{Dst: 100, Src: 99, Msg: -7, Ver: 1, Slot: 0},
		{Dst: 101, Src: 98, Msg: 1 << 20, Ver: 1, Slot: 2},
	}
	batchGob := []msgstore.Entry[exoticMsg]{
		{Dst: 5, Src: 4, Msg: exoticMsg{ID: 9, Core: 2.5}, Ver: 1, Slot: 0},
	}
	fork := chandy.Ctrl{Kind: chandy.ForkMsg, From: 42, To: -7}
	token := chandy.Ctrl{Kind: chandy.TokenMsg, From: 0, To: 1}
	flush := cluster.FlushMarker{Seq: 12345}
	ack := cluster.AckMsg{Seq: 12345}
	credit := cluster.CreditGrant{Bytes: 4096}

	hello := Hello{Version: cluster.ProtocolVersion, Worker: 1, Addr: "127.0.0.1:40001"}
	job := Job{
		Alg: "sssp", Family: "powerlaw", N: 80, Undirected: false,
		Workers: 2, PartsPerWorker: 2, MaxSupersteps: 200,
		Seed: 1131, Source: 0, Eps: 0.05, You: 1,
		Peers:           []string{"127.0.0.1:40000", "127.0.0.1:40001"},
		MsgMemoryBudget: 1 << 20,
		Partitioner:     "ldg",
	}
	stepStart := StepStart{Superstep: 3, AggKeys: []string{"pr:delta", "pr:sum"}, AggVals: []float64{0.125, 1}}
	stepDone := StepDone{
		Superstep: 3, Unhalted: 17, Pending: 4, Executions: 80,
		SentBatches: 6, SentBytes: 512, WireBytes: 301,
		AggKeys: []string{"pr:delta"}, AggVals: []float64{0.0625},
	}
	barrier := Barrier{Superstep: 3}
	values := []ValueEntry[float64]{{ID: 0, Val: 0}, {ID: 1, Val: 2.5}, {ID: 3, Val: 7}}
	finish := Finish{Converged: true, Supersteps: 12}
	vcodec := AutoMsgCodec[float64]()

	verifyPayload := func(c cluster.PayloadCodec, want any) func(*testing.T, cluster.Frame) {
		return func(t *testing.T, f cluster.Frame) {
			got, err := c.DecodePayload(f.Type, f.Payload)
			if err != nil {
				t.Fatalf("decode payload: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip: got %#v, want %#v", got, want)
			}
		}
	}

	return []goldenCase{
		{
			name: "data_float64",
			frame: encodeFrame(t, c64, batch64,
				cluster.Frame{From: 0, To: 1, Declared: 56}),
			verify: verifyPayload(c64, batch64),
		},
		{
			name: "data_int32",
			frame: encodeFrame(t, c32, batch32,
				cluster.Frame{From: 2, To: 0, Declared: 48}),
			verify: verifyPayload(c32, batch32),
		},
		{
			name: "data_gob",
			frame: encodeFrame(t, cgob, batchGob,
				cluster.Frame{From: 1, To: 2, Declared: 40}),
			verify: verifyPayload(cgob, batchGob),
		},
		{
			name: "data_flags_delay",
			// Wire-lost flag + injected straggler delay exercise the only
			// two envelope fields the other fixtures leave zero.
			frame: func() []byte {
				ftype, body, err := c64.EncodePayload(batch64[:1], nil)
				if err != nil {
					t.Fatal(err)
				}
				return cluster.AppendFrame(nil, &cluster.Frame{
					Type: ftype, Flags: cluster.FlagWireLost, From: 0, To: 1,
					Declared: 40, Delay: 50 * time.Millisecond, Payload: body,
				})
			}(),
			verify: func(t *testing.T, f cluster.Frame) {
				if f.Flags != cluster.FlagWireLost {
					t.Fatalf("flags = %#x, want FlagWireLost", f.Flags)
				}
				if f.Delay != 50*time.Millisecond {
					t.Fatalf("delay = %v, want 50ms", f.Delay)
				}
				verifyPayload(c64, batch64[:1])(t, f)
			},
		},
		{
			name:   "ctrl_fork",
			frame:  encodeFrame(t, c64, fork, cluster.Frame{From: 1, To: 0, Declared: 64}),
			verify: verifyPayload(c64, fork),
		},
		{
			name:   "ctrl_token",
			frame:  encodeFrame(t, c64, token, cluster.Frame{From: 0, To: 1, Declared: 64}),
			verify: verifyPayload(c64, token),
		},
		{
			name:   "flush",
			frame:  encodeFrame(t, c64, flush, cluster.Frame{From: 0, To: 2, Declared: 16}),
			verify: verifyPayload(c64, flush),
		},
		{
			name:   "ack",
			frame:  encodeFrame(t, c64, ack, cluster.Frame{From: 2, To: 0, Declared: 16}),
			verify: verifyPayload(c64, ack),
		},
		{
			// Credit frames flow receiver→sender (here worker 1 returning
			// window to worker 0) with no declared size of their own.
			name:   "credit",
			frame:  encodeFrame(t, c64, credit, cluster.Frame{From: 1, To: 0}),
			verify: verifyPayload(c64, credit),
		},
		{
			name:  "hello",
			frame: rawFrame(cluster.FrameHello, 1, -1, AppendHello(nil, hello)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeHello(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if got != hello {
					t.Fatalf("got %#v, want %#v", got, hello)
				}
			},
		},
		{
			name:  "job",
			frame: rawFrame(cluster.FrameJob, -1, 1, AppendJob(nil, job)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeJob(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, job) {
					t.Fatalf("got %#v, want %#v", got, job)
				}
			},
		},
		{
			name:  "step_start",
			frame: rawFrame(cluster.FrameStepStart, -1, 0, AppendStepStart(nil, stepStart)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeStepStart(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, stepStart) {
					t.Fatalf("got %#v, want %#v", got, stepStart)
				}
			},
		},
		{
			name:  "step_done",
			frame: rawFrame(cluster.FrameStepDone, 0, -1, AppendStepDone(nil, stepDone)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeStepDone(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, stepDone) {
					t.Fatalf("got %#v, want %#v", got, stepDone)
				}
			},
		},
		{
			name:  "barrier",
			frame: rawFrame(cluster.FrameBarrier, 0, 1, AppendBarrier(nil, barrier)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeBarrier(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if got != barrier {
					t.Fatalf("got %#v, want %#v", got, barrier)
				}
			},
		},
		{
			name:  "values",
			frame: rawFrame(cluster.FrameValues, 1, -1, AppendValues(nil, vcodec, values)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeValues(vcodec, f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, values) {
					t.Fatalf("got %#v, want %#v", got, values)
				}
			},
		},
		{
			name:  "finish",
			frame: rawFrame(cluster.FrameFinish, -1, 0, AppendFinish(nil, finish)),
			verify: func(t *testing.T, f cluster.Frame) {
				got, err := DecodeFinish(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if got != finish {
					t.Fatalf("got %#v, want %#v", got, finish)
				}
			},
		},
	}
}

// hexDump formats frame bytes as wrapped lowercase hex, one 32-byte row
// per line, so fixture diffs stay readable.
func hexDump(b []byte) string {
	var buf bytes.Buffer
	for len(b) > 0 {
		row := b
		if len(row) > 32 {
			row = row[:32]
		}
		fmt.Fprintln(&buf, hex.EncodeToString(row))
		b = b[len(row):]
	}
	return buf.String()
}

func parseHexDump(t *testing.T, s []byte) []byte {
	t.Helper()
	out := make([]byte, 0, len(s)/2)
	for _, line := range bytes.Fields(s) {
		row, err := hex.DecodeString(string(line))
		if err != nil {
			t.Fatalf("bad fixture hex: %v", err)
		}
		out = append(out, row...)
	}
	return out
}

func TestGoldenFrames(t *testing.T) {
	// Covered types: the test fails if a frame type constant exists with
	// no fixture, so adding a frame type forces recording its layout.
	covered := map[byte]bool{}
	for _, tc := range goldenCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", tc.name+".hex")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(hexDump(tc.frame)), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to record)", err)
			}
			want := parseHexDump(t, raw)
			if !bytes.Equal(tc.frame, want) {
				t.Fatalf("encoding changed vs %s:\ngot:\n%swant:\n%s\n"+
					"(intentional change? bump cluster.ProtocolVersion and re-run with -update)",
					path, hexDump(tc.frame), hexDump(want))
			}
			f, n, err := cluster.DecodeFrame(want)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if n != len(want) {
				t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(want))
			}
			tc.verify(t, f)
		})
		f, _, err := cluster.DecodeFrame(tc.frame)
		if err == nil {
			covered[f.Type] = true
		}
	}
	for _, ft := range []byte{
		cluster.FrameData, cluster.FrameCtrl, cluster.FrameFlush, cluster.FrameAck,
		cluster.FrameCredit, cluster.FrameHello, cluster.FrameJob, cluster.FrameStepStart,
		cluster.FrameStepDone, cluster.FrameBarrier, cluster.FrameValues,
		cluster.FrameFinish,
	} {
		if !covered[ft] {
			t.Errorf("frame type 0x%02x has no golden fixture", ft)
		}
	}
}
