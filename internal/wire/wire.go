// Package wire implements the payload encodings behind the TCP transport
// backend: a generic, combiner-aware batch codec for vertex messages plus
// fixed encodings for the coordination payloads (Chandy–Misra forks and
// tokens, flush markers, acks, and the multi-process driver's protocol).
//
// The frame envelope itself (length prefix, type, routing, fault
// metadata) lives in internal/cluster/frame.go; this package only turns
// typed payloads into bytes and back.
//
// Batch encoding ([]msgstore.Entry[M], frame type FrameData):
//
//	uvarint  entry count
//	per entry:
//	  zigzag varint  Dst delta vs previous entry's Dst (batches are
//	                 per-destination-worker, so deltas stay small)
//	  zigzag varint  Src (can be a negative sentinel)
//	  uvarint        Ver
//	  uvarint        Slot
//	  ...            message bytes (MsgCodec)
//
// Batches arrive already sender-combined (the Buffer folds messages with
// the program's combiner before emitting), so the codec never re-combines;
// it just keeps the combined form compact with varints.
//
// Message values use a MsgCodec[M]: fixed binary fast paths for the
// numeric types every built-in algorithm uses, and a gob fallback that
// makes any exotic message type (struct messages like KCoreMsg) work
// without registration.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"serialgraph/internal/chandy"
	"serialgraph/internal/cluster"
	"serialgraph/internal/graph"
	"serialgraph/internal/msgstore"
)

// Decoding errors. Like the frame layer, payload decoders return errors —
// never panic — on malformed input.
var (
	ErrTruncated = errors.New("wire: truncated payload")
	ErrCorrupt   = errors.New("wire: corrupt payload")
)

// MsgCodec serializes one message value. Append appends m's encoding to
// dst; Read parses one value from the front of b and returns the bytes
// consumed.
type MsgCodec[M any] struct {
	Append func(dst []byte, m M) []byte
	Read   func(b []byte) (M, int, error)
}

// AutoMsgCodec picks a codec for M: compact fixed/varint encodings for
// the numeric kinds the built-in algorithms use, gob for everything else.
func AutoMsgCodec[M any]() MsgCodec[M] {
	var zero M
	switch any(zero).(type) {
	case float64:
		return MsgCodec[M]{
			Append: func(dst []byte, m M) []byte {
				return binary.BigEndian.AppendUint64(dst, math.Float64bits(any(m).(float64)))
			},
			Read: func(b []byte) (M, int, error) {
				var m M
				if len(b) < 8 {
					return m, 0, ErrTruncated
				}
				return any(math.Float64frombits(binary.BigEndian.Uint64(b))).(M), 8, nil
			},
		}
	case float32:
		return MsgCodec[M]{
			Append: func(dst []byte, m M) []byte {
				return binary.BigEndian.AppendUint32(dst, math.Float32bits(any(m).(float32)))
			},
			Read: func(b []byte) (M, int, error) {
				var m M
				if len(b) < 4 {
					return m, 0, ErrTruncated
				}
				return any(math.Float32frombits(binary.BigEndian.Uint32(b))).(M), 4, nil
			},
		}
	case int32:
		return signedCodec[M](func(v int64) any { return int32(v) }, math.MinInt32, math.MaxInt32)
	case int64:
		return signedCodec[M](func(v int64) any { return v }, math.MinInt64, math.MaxInt64)
	case int:
		return signedCodec[M](func(v int64) any { return int(v) }, math.MinInt64, math.MaxInt64)
	case uint32:
		return unsignedCodec[M](func(v uint64) any { return uint32(v) }, math.MaxUint32)
	case uint64:
		return unsignedCodec[M](func(v uint64) any { return v }, math.MaxUint64)
	case bool:
		return MsgCodec[M]{
			Append: func(dst []byte, m M) []byte {
				if any(m).(bool) {
					return append(dst, 1)
				}
				return append(dst, 0)
			},
			Read: func(b []byte) (M, int, error) {
				var m M
				if len(b) < 1 {
					return m, 0, ErrTruncated
				}
				if b[0] > 1 {
					return m, 0, ErrCorrupt
				}
				return any(b[0] == 1).(M), 1, nil
			},
		}
	default:
		return gobMsgCodec[M]()
	}
}

func toInt64(m any) int64 {
	switch v := m.(type) {
	case int32:
		return int64(v)
	case int64:
		return v
	case int:
		return int64(v)
	}
	panic("wire: not a signed integer")
}

func toUint64(m any) uint64 {
	switch v := m.(type) {
	case uint32:
		return uint64(v)
	case uint64:
		return v
	}
	panic("wire: not an unsigned integer")
}

func signedCodec[M any](back func(int64) any, min, max int64) MsgCodec[M] {
	return MsgCodec[M]{
		Append: func(dst []byte, m M) []byte {
			return cluster.AppendZigzag(dst, toInt64(any(m)))
		},
		Read: func(b []byte) (M, int, error) {
			var m M
			v, n := cluster.Zigzag(b)
			if n <= 0 {
				return m, 0, ErrTruncated
			}
			if v < min || v > max {
				return m, 0, ErrCorrupt
			}
			return back(v).(M), n, nil
		},
	}
}

func unsignedCodec[M any](back func(uint64) any, max uint64) MsgCodec[M] {
	return MsgCodec[M]{
		Append: func(dst []byte, m M) []byte {
			return binary.AppendUvarint(dst, toUint64(any(m)))
		},
		Read: func(b []byte) (M, int, error) {
			var m M
			v, n := binary.Uvarint(b)
			if n <= 0 {
				return m, 0, ErrTruncated
			}
			if v > max {
				return m, 0, ErrCorrupt
			}
			return back(v).(M), n, nil
		},
	}
}

// gobMsgCodec is the totality fallback: any message type encodes, at the
// cost of a length prefix and gob's framing. Struct message types that
// care about wire size should provide explicit codecs on their Program.
func gobMsgCodec[M any]() MsgCodec[M] {
	return MsgCodec[M]{
		Append: func(dst []byte, m M) []byte {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
				panic(fmt.Sprintf("wire: gob encode %T: %v", m, err))
			}
			dst = binary.AppendUvarint(dst, uint64(buf.Len()))
			return append(dst, buf.Bytes()...)
		},
		Read: func(b []byte) (M, int, error) {
			var m M
			size, n := binary.Uvarint(b)
			if n <= 0 {
				return m, 0, ErrTruncated
			}
			if size > uint64(len(b)-n) {
				return m, 0, ErrTruncated
			}
			if err := gob.NewDecoder(bytes.NewReader(b[n : n+int(size)])).Decode(&m); err != nil {
				return m, 0, fmt.Errorf("%w: gob: %v", ErrCorrupt, err)
			}
			return m, n + int(size), nil
		},
	}
}

// Codec is the cluster.PayloadCodec for an engine run with message type
// M. It encodes data batches with the message codec and the coordination
// payloads (forks/tokens, flush markers, acks) with fixed layouts.
type Codec[M any] struct {
	msg MsgCodec[M]
}

var _ cluster.PayloadCodec = (*Codec[float64])(nil)

// NewCodec builds a payload codec using AutoMsgCodec for M.
func NewCodec[M any]() *Codec[M] { return &Codec[M]{msg: AutoMsgCodec[M]()} }

// NewCodecWith builds a payload codec with an explicit message codec
// (model.Program's serialization contract overrides).
func NewCodecWith[M any](msg MsgCodec[M]) *Codec[M] { return &Codec[M]{msg: msg} }

// EncodePayload implements cluster.PayloadCodec.
func (c *Codec[M]) EncodePayload(payload any, dst []byte) (byte, []byte, error) {
	switch p := payload.(type) {
	case []msgstore.Entry[M]:
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		prev := int64(0)
		for i := range p {
			e := &p[i]
			dst = cluster.AppendZigzag(dst, int64(e.Dst)-prev)
			prev = int64(e.Dst)
			dst = cluster.AppendZigzag(dst, int64(e.Src))
			dst = binary.AppendUvarint(dst, uint64(e.Ver))
			dst = binary.AppendUvarint(dst, uint64(e.Slot))
			dst = c.msg.Append(dst, e.Msg)
		}
		return cluster.FrameData, dst, nil
	case chandy.Ctrl:
		dst = append(dst, byte(p.Kind))
		dst = cluster.AppendZigzag(dst, int64(p.From))
		dst = cluster.AppendZigzag(dst, int64(p.To))
		return cluster.FrameCtrl, dst, nil
	case cluster.FlushMarker:
		return cluster.FrameFlush, binary.AppendUvarint(dst, p.Seq), nil
	case cluster.AckMsg:
		return cluster.FrameAck, binary.AppendUvarint(dst, p.Seq), nil
	case cluster.CreditGrant:
		if p.Bytes < 0 {
			return 0, nil, fmt.Errorf("wire: negative credit grant %d", p.Bytes)
		}
		return cluster.FrameCredit, binary.AppendUvarint(dst, uint64(p.Bytes)), nil
	}
	return 0, nil, fmt.Errorf("wire: no encoding for payload type %T", payload)
}

// DecodePayload implements cluster.PayloadCodec. All lengths are
// validated before allocation: a corrupt count can never allocate more
// than the payload's own size could justify.
func (c *Codec[M]) DecodePayload(ftype byte, b []byte) (any, error) {
	switch ftype {
	case cluster.FrameData:
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, ErrTruncated
		}
		b = b[n:]
		// Every entry takes at least 4 varint bytes before its message.
		if count > uint64(len(b))/4+1 {
			return nil, fmt.Errorf("%w: entry count %d exceeds payload", ErrCorrupt, count)
		}
		batch := make([]msgstore.Entry[M], 0, count)
		prev := int64(0)
		for i := uint64(0); i < count; i++ {
			var e msgstore.Entry[M]
			delta, n := cluster.Zigzag(b)
			if n <= 0 {
				return nil, ErrTruncated
			}
			b = b[n:]
			dst := prev + delta
			if dst < math.MinInt32 || dst > math.MaxInt32 {
				return nil, ErrCorrupt
			}
			prev = dst
			e.Dst = graph.VertexID(dst)
			src, n := cluster.Zigzag(b)
			if n <= 0 {
				return nil, ErrTruncated
			}
			b = b[n:]
			if src < math.MinInt32 || src > math.MaxInt32 {
				return nil, ErrCorrupt
			}
			e.Src = graph.VertexID(src)
			ver, n := binary.Uvarint(b)
			if n <= 0 || ver > math.MaxUint32 {
				return nil, ErrCorrupt
			}
			b = b[n:]
			e.Ver = uint32(ver)
			slot, n := binary.Uvarint(b)
			if n <= 0 || slot > math.MaxUint32 {
				return nil, ErrCorrupt
			}
			b = b[n:]
			e.Slot = uint32(slot)
			msg, n, err := c.msg.Read(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			e.Msg = msg
			batch = append(batch, e)
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(b))
		}
		return batch, nil
	case cluster.FrameCtrl:
		if len(b) < 1 {
			return nil, ErrTruncated
		}
		kind := chandy.CtrlKind(b[0])
		if kind != chandy.TokenMsg && kind != chandy.ForkMsg {
			return nil, fmt.Errorf("%w: bad ctrl kind %d", ErrCorrupt, b[0])
		}
		b = b[1:]
		from, n := cluster.Zigzag(b)
		if n <= 0 {
			return nil, ErrTruncated
		}
		b = b[n:]
		to, n := cluster.Zigzag(b)
		if n <= 0 {
			return nil, ErrTruncated
		}
		b = b[n:]
		if len(b) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes after ctrl", ErrCorrupt)
		}
		if from < math.MinInt32 || from > math.MaxInt32 || to < math.MinInt32 || to > math.MaxInt32 {
			return nil, ErrCorrupt
		}
		return chandy.Ctrl{Kind: kind, From: chandy.PhilID(from), To: chandy.PhilID(to)}, nil
	case cluster.FrameFlush:
		seq, n := binary.Uvarint(b)
		if n <= 0 || n != len(b) {
			return nil, ErrCorrupt
		}
		return cluster.FlushMarker{Seq: seq}, nil
	case cluster.FrameAck:
		seq, n := binary.Uvarint(b)
		if n <= 0 || n != len(b) {
			return nil, ErrCorrupt
		}
		return cluster.AckMsg{Seq: seq}, nil
	case cluster.FrameCredit:
		v, n := binary.Uvarint(b)
		if n <= 0 || n != len(b) || v > math.MaxInt64 {
			return nil, ErrCorrupt
		}
		return cluster.CreditGrant{Bytes: int64(v)}, nil
	}
	return nil, fmt.Errorf("%w: unknown frame type 0x%02x", ErrCorrupt, ftype)
}
