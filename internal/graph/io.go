package graph

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a SNAP-style text edge list: one "src dst [weight]"
// per line, '#' comments and blank lines ignored. External IDs may be
// arbitrary non-negative integers; they are remapped to dense IDs in first-
// appearance order. The returned mapping gives dense -> external ID.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	remap := make(map[int64]VertexID)
	var ext []int64
	dense := func(id int64) VertexID {
		if v, ok := remap[id]; ok {
			return v
		}
		v := VertexID(len(ext))
		remap[id] = v
		ext = append(ext, id)
		return v
	}

	var edges []Edge
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		s, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
		}
		d, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
		}
		e := Edge{Src: dense(s), Dst: dense(d), Weight: 1}
		if len(f) >= 3 {
			w, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			e.Weight = w
			weighted = true
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: scan: %w", err)
	}
	return build(int32(len(ext)), edges, weighted, false), ext, nil
}

// WriteEdgeList writes the graph as a text edge list with dense IDs.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		nb := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range nb {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// gobGraph is the on-disk representation for the binary format.
type gobGraph struct {
	N          int32
	OutOff     []int32
	OutDst     []VertexID
	OutW       []float64
	InOff      []int32
	InSrc      []VertexID
	Undirected bool
}

// WriteBinary writes the graph in a fast gob-encoded binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	return gob.NewEncoder(w).Encode(gobGraph{
		N: g.n, OutOff: g.outOff, OutDst: g.outDst, OutW: g.outW,
		InOff: g.inOff, InSrc: g.inSrc, Undirected: g.undirected,
	})
}

// ReadBinary reads a graph written by WriteBinary, validating the CSR
// structure so that a corrupt or truncated file returns an error instead
// of a graph that panics later.
func ReadBinary(r io.Reader) (*Graph, error) {
	var gg gobGraph
	if err := gob.NewDecoder(r).Decode(&gg); err != nil {
		return nil, fmt.Errorf("graph: decode binary: %w", err)
	}
	if err := gg.validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt binary: %w", err)
	}
	return &Graph{
		n: gg.N, outOff: gg.OutOff, outDst: gg.OutDst, outW: gg.OutW,
		inOff: gg.InOff, inSrc: gg.InSrc, undirected: gg.Undirected,
	}, nil
}

func (gg *gobGraph) validate() error {
	n := int(gg.N)
	if n < 0 {
		return fmt.Errorf("negative vertex count %d", n)
	}
	m := len(gg.OutDst)
	if len(gg.InSrc) != m {
		return fmt.Errorf("out/in edge counts differ: %d vs %d", m, len(gg.InSrc))
	}
	if gg.OutW != nil && len(gg.OutW) != m {
		return fmt.Errorf("weights length %d for %d edges", len(gg.OutW), m)
	}
	check := func(name string, off []int32, targets []VertexID) error {
		if len(off) != n+1 {
			return fmt.Errorf("%s offsets length %d, want %d", name, len(off), n+1)
		}
		if n >= 0 && len(off) > 0 {
			if off[0] != 0 || int(off[n]) != m {
				return fmt.Errorf("%s offsets endpoints [%d, %d], want [0, %d]", name, off[0], off[n], m)
			}
		}
		for i := 0; i < n; i++ {
			if off[i] > off[i+1] {
				return fmt.Errorf("%s offsets not monotone at %d", name, i)
			}
		}
		for _, t := range targets {
			if t < 0 || int(t) >= n {
				return fmt.Errorf("%s target %d out of range [0, %d)", name, t, n)
			}
		}
		return nil
	}
	if err := check("out", gg.OutOff, gg.OutDst); err != nil {
		return err
	}
	return check("in", gg.InOff, gg.InSrc)
}

// LoadFile loads a graph from path, choosing the format by extension:
// ".bin" or ".gob" selects the binary format, anything else the text edge
// list. Text loading discards the external ID mapping.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".gob") {
		return ReadBinary(f)
	}
	g, _, err := ReadEdgeList(f)
	return g, err
}

// SaveFile writes a graph to path, choosing the format by extension as in
// LoadFile.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".gob") {
		return WriteBinary(f, g)
	}
	return WriteEdgeList(f, g)
}
