// Package graph provides the in-memory graph representation used throughout
// serialgraph: a compressed sparse row (CSR) structure over dense vertex IDs
// with both out- and in-adjacency, plus builders and degree statistics.
//
// Vertex IDs are always dense integers in [0, NumVertices). Loaders remap
// arbitrary external IDs to this dense space (see io.go).
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: 0 <= id < NumVertices.
type VertexID int32

// Edge is a directed edge with an optional weight.
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// Graph is an immutable directed graph in CSR form. The in-adjacency is
// always materialized because the vertex-centric transaction model reads
// from in-edge neighbors (read set Nu) while writes propagate along
// out-edges; both synchronization and classification need both directions.
type Graph struct {
	n int32

	outOff []int32    // len n+1
	outDst []VertexID // len m
	outW   []float64  // len m, nil when unweighted

	inOff []int32    // len n+1
	inSrc []VertexID // len m

	undirected bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.n) }

// NumEdges returns the number of directed edges stored.
func (g *Graph) NumEdges() int { return len(g.outDst) }

// Undirected reports whether the graph was built as a symmetrized
// (undirected) graph, in which case every edge appears in both directions.
func (g *Graph) Undirected() bool { return g.undirected }

// OutNeighbors returns the out-edge neighbor slice of u. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(u VertexID) []VertexID {
	return g.outDst[g.outOff[u]:g.outOff[u+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(u), or nil for an
// unweighted graph.
func (g *Graph) OutWeights(u VertexID) []float64 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outOff[u]:g.outOff[u+1]]
}

// InNeighbors returns the in-edge neighbor slice of u (sorted ascending).
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(u VertexID) []VertexID {
	return g.inSrc[g.inOff[u]:g.inOff[u+1]]
}

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u VertexID) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u VertexID) int { return int(g.inOff[u+1] - g.inOff[u]) }

// InSlot returns the position of src within InNeighbors(u), and whether such
// an in-edge exists. Positions index per-source message slots in overwrite
// message stores; with duplicate in-edges the first occurrence wins, so
// every lookup for the same (u, src) resolves to the same slot.
//
// Real-world in-degrees are mostly tiny (power-law graphs put the mass
// on low-degree vertices), so small lists take a branch-light two-way
// scan: one range check against both ends rejects misses — the
// slot-hint miss path — in two compares, then a forward sweep finds the
// slot. Longer lists use a closure-free binary search instead of
// sort.Search, which costs an indirect call per probe.
func (g *Graph) InSlot(u, src VertexID) (int, bool) {
	in := g.InNeighbors(u)
	if len(in) < 8 {
		if len(in) == 0 || src < in[0] || src > in[len(in)-1] {
			return 0, false
		}
		for i, v := range in {
			if v >= src {
				if v == src {
					return i, true
				}
				break
			}
		}
		return 0, false
	}
	lo, hi := 0, len(in)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if in[mid] < src {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(in) && in[lo] == src {
		return lo, true
	}
	return 0, false
}

// HasEdge reports whether the directed edge u->v exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	_, ok := g.InSlot(v, u)
	return ok
}

// Neighbors calls fn for every distinct neighbor of u in either direction
// (the paper's "neighbors" = in-edge plus out-edge neighbors). Neighbors
// appearing in both directions are visited once.
func (g *Graph) Neighbors(u VertexID, fn func(v VertexID)) {
	// Merge the sorted in-list with the (possibly unsorted) out-list.
	seen := map[VertexID]struct{}{}
	for _, v := range g.OutNeighbors(u) {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			fn(v)
		}
	}
	for _, v := range g.InNeighbors(u) {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			fn(v)
		}
	}
}

// MaxDegree returns the maximum of in+out degree over all vertices, the
// skew statistic reported in Table 1.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := int32(0); u < g.n; u++ {
		d := g.OutDegree(VertexID(u))
		if g.undirected {
			// In an undirected graph each edge is stored both ways; degree
			// is just the out-degree.
		} else {
			d += g.InDegree(VertexID(u))
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n        int32
	edges    []Edge
	weighted bool
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 || n > 1<<30 {
		panic(fmt.Sprintf("graph: invalid vertex count %d", n))
	}
	return &Builder{n: int32(n)}
}

// AddEdge adds the directed edge src->dst with weight 1.
func (b *Builder) AddEdge(src, dst VertexID) { b.addEdge(src, dst, 1, false) }

// AddWeightedEdge adds the directed edge src->dst with the given weight.
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float64) { b.addEdge(src, dst, w, true) }

func (b *Builder) addEdge(src, dst VertexID, w float64, weighted bool) {
	if src < 0 || int32(src) >= b.n || dst < 0 || int32(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst, w})
	b.weighted = b.weighted || weighted
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. Self-loops are kept; duplicate
// edges are kept (multi-edges are legal in Pregel). The builder must not be
// reused afterwards.
func (b *Builder) Build() *Graph {
	return build(b.n, b.edges, b.weighted, false)
}

// BuildUndirected symmetrizes the edge set (adding the reverse of every
// edge, deduplicating pairs) and builds the graph. Used by graph coloring,
// which requires an undirected input (§7.2.1).
func (b *Builder) BuildUndirected() *Graph {
	type pair struct{ a, b VertexID }
	seen := make(map[pair]float64, len(b.edges))
	for _, e := range b.edges {
		if e.Src == e.Dst {
			continue // self-loops are meaningless for coloring-style algorithms
		}
		p := pair{e.Src, e.Dst}
		if p.a > p.b {
			p.a, p.b = p.b, p.a
		}
		if _, dup := seen[p]; !dup {
			seen[p] = e.Weight
		}
	}
	sym := make([]Edge, 0, 2*len(seen))
	for p, w := range seen {
		sym = append(sym, Edge{p.a, p.b, w}, Edge{p.b, p.a, w})
	}
	return build(b.n, sym, b.weighted, true)
}

func build(n int32, edges []Edge, weighted, undirected bool) *Graph {
	g := &Graph{n: n, undirected: undirected}
	m := len(edges)

	// Out-CSR via counting sort on src.
	g.outOff = make([]int32, n+1)
	for _, e := range edges {
		g.outOff[e.Src+1]++
	}
	for i := int32(0); i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	g.outDst = make([]VertexID, m)
	if weighted {
		g.outW = make([]float64, m)
	}
	pos := make([]int32, n)
	copy(pos, g.outOff[:n])
	for _, e := range edges {
		p := pos[e.Src]
		pos[e.Src]++
		g.outDst[p] = e.Dst
		if weighted {
			g.outW[p] = e.Weight
		}
	}

	// In-CSR via counting sort on dst; then sort each in-list so that
	// InSlot can binary-search.
	g.inOff = make([]int32, n+1)
	for _, e := range edges {
		g.inOff[e.Dst+1]++
	}
	for i := int32(0); i < n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	g.inSrc = make([]VertexID, m)
	copy(pos, g.inOff[:n])
	for _, e := range edges {
		g.inSrc[pos[e.Dst]] = e.Src
		pos[e.Dst]++
	}
	for u := int32(0); u < n; u++ {
		lo, hi := g.inOff[u], g.inOff[u+1]
		s := g.inSrc[lo:hi]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return g
}

// FromEdges is a convenience constructor building a directed graph from an
// edge slice.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		if e.Weight != 0 && e.Weight != 1 {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		} else {
			b.AddEdge(e.Src, e.Dst)
		}
	}
	return b.Build()
}

// Stats summarizes a graph for Table 1 style reporting.
type Stats struct {
	Vertices  int
	Edges     int
	MaxDegree int
	AvgDegree float64
}

// Summarize computes dataset statistics.
func Summarize(g *Graph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Vertices)
	}
	return s
}

// Edges extracts the full directed edge list (used when rebuilding the
// graph after topology mutations).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		nbs := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range nbs {
			e := Edge{Src: u, Dst: v, Weight: 1}
			if ws != nil {
				e.Weight = ws[i]
			}
			out = append(out, e)
		}
	}
	return out
}

// Weighted reports whether the graph stores explicit edge weights.
func (g *Graph) Weighted() bool { return g.outW != nil }

// NewFromEdges builds a graph directly from an edge list (used when
// applying topology mutations). The undirected flag is not preserved:
// mutations may break symmetry.
func NewFromEdges(n int, edges []Edge, weighted bool) *Graph {
	return build(int32(n), edges, weighted, false)
}
