package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomMultigraph builds a reproducible random multigraph (self-loops and
// duplicate edges allowed — both are legal Pregel inputs).
func randomMultigraph(r *rand.Rand, n, m int, weighted bool) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		if weighted {
			b.AddWeightedEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)), float64(r.Intn(9)+1))
		} else {
			b.AddEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)))
		}
	}
	return b.Build()
}

func TestDegreeOrderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomMultigraph(r, 50, 300, false)
	rl := DegreeOrder(g)
	if rl.Len() != 50 {
		t.Fatalf("Len = %d", rl.Len())
	}
	seen := make([]bool, 50)
	for old := VertexID(0); old < 50; old++ {
		nw := rl.NewID(old)
		if seen[nw] {
			t.Fatalf("NewID collision at %d", nw)
		}
		seen[nw] = true
		if rl.OldID(nw) != old {
			t.Fatalf("OldID(NewID(%d)) = %d", old, rl.OldID(nw))
		}
	}
}

func TestDegreeOrderSortsHubsFirst(t *testing.T) {
	// A star: vertex 7 is the hub and must get relabeled ID 0.
	b := NewBuilder(10)
	for i := 0; i < 10; i++ {
		if i != 7 {
			b.AddEdge(7, VertexID(i))
			b.AddEdge(VertexID(i), 7)
		}
	}
	g := b.Build()
	rl := DegreeOrder(g)
	if rl.NewID(7) != 0 {
		t.Errorf("hub relabeled to %d, want 0", rl.NewID(7))
	}
	h := rl.Apply(g)
	// Degrees must be non-increasing in the relabeled space.
	prev := int(^uint(0) >> 1)
	for v := VertexID(0); int(v) < h.NumVertices(); v++ {
		d := h.OutDegree(v) + h.InDegree(v)
		if d > prev {
			t.Fatalf("degree order violated at relabeled vertex %d: %d > %d", v, d, prev)
		}
		prev = d
	}
}

// TestRelabelPreservesStructure: Apply is an isomorphism — every edge
// (with weight and multiplicity) maps through the permutation, and
// global statistics are unchanged.
func TestRelabelPreservesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randomMultigraph(r, 3+r.Intn(40), r.Intn(200), trial%2 == 0)
		rl := DegreeOrder(g)
		h := rl.Apply(g)
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("size changed: %d/%d -> %d/%d",
				g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
		}
		if h.Weighted() != g.Weighted() || h.Undirected() != g.Undirected() {
			t.Fatal("flags changed")
		}
		// Count edges as multisets keyed by mapped endpoints + weight.
		count := func(g *Graph, remap func(VertexID) VertexID) map[[3]int64]int {
			m := map[[3]int64]int{}
			for _, e := range g.Edges() {
				m[[3]int64{int64(remap(e.Src)), int64(remap(e.Dst)), int64(e.Weight * 64)}]++
			}
			return m
		}
		want := count(g, rl.NewID)
		got := count(h, func(v VertexID) VertexID { return v })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("edge multiset changed under relabeling")
		}
		if Summarize(g).MaxDegree != Summarize(h).MaxDegree {
			t.Fatal("max degree changed")
		}
	}
}

// TestRelabelRoundTripProperty is the external-ID contract: preparing a
// per-vertex input with Permute, indexing it in the relabeled space,
// and mapping results back with Unpermute reproduces original indexing
// exactly — for any graph and any values.
func TestRelabelRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		g := randomMultigraph(r, n, r.Intn(4*n), false)
		rl := DegreeOrder(g)

		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		if !reflect.DeepEqual(Unpermute(rl, Permute(rl, vals)), vals) {
			return false
		}
		if !reflect.DeepEqual(Permute(rl, Unpermute(rl, vals)), vals) {
			return false
		}
		// A computation that only depends on topology must commute with
		// the relabeling: out-degree computed on Apply(g), mapped back,
		// equals out-degree on g.
		h := rl.Apply(g)
		hd := make([]int, n)
		for v := 0; v < n; v++ {
			hd[v] = h.OutDegree(VertexID(v))
		}
		back := Unpermute(rl, hd)
		for v := 0; v < n; v++ {
			if back[v] != g.OutDegree(VertexID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRelabelSizeMismatchPanics(t *testing.T) {
	g := randomMultigraph(rand.New(rand.NewSource(3)), 10, 20, false)
	rl := DegreeOrder(g)
	for name, fn := range map[string]func(){
		"apply":     func() { rl.Apply(randomMultigraph(rand.New(rand.NewSource(4)), 11, 5, false)) },
		"unpermute": func() { Unpermute(rl, make([]int, 9)) },
		"permute":   func() { Permute(rl, make([]int, 11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: size mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestInSlotMatchesReference: the two-way/binary split must agree with
// a straightforward linear reference on every (u, src) pair, including
// duplicate in-edges (first occurrence wins) and misses.
func TestInSlotMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		g := randomMultigraph(r, n, r.Intn(8*n), false) // dense enough for >7 in-degrees
		for u := VertexID(0); int(u) < n; u++ {
			in := g.InNeighbors(u)
			for src := VertexID(-1); int(src) <= n; src++ {
				wantSlot, wantOK := 0, false
				for i, v := range in {
					if v == src {
						wantSlot, wantOK = i, true
						break
					}
				}
				gotSlot, gotOK := g.InSlot(u, src)
				if gotSlot != wantSlot || gotOK != wantOK {
					t.Fatalf("InSlot(%d, %d) = (%d,%v), want (%d,%v); in-list %v",
						u, src, gotSlot, gotOK, wantSlot, wantOK, in)
				}
			}
		}
	}
}
