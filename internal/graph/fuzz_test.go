package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and, on accepted
// input, produces an internally consistent CSR that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5 2.5\n")
	f.Add("")
	f.Add("9999999 1\n")
	f.Add("1 2 nope\n")
	f.Add("-1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input: CSR invariants must hold.
		totalOut := 0
		for u := VertexID(0); int(u) < g.NumVertices(); u++ {
			totalOut += g.OutDegree(u)
			for _, v := range g.OutNeighbors(u) {
				if int(v) >= g.NumVertices() || v < 0 {
					t.Fatalf("neighbor %d out of range", v)
				}
				if _, ok := g.InSlot(v, u); !ok {
					t.Fatalf("in-CSR missing edge %d->%d", u, v)
				}
			}
		}
		if totalOut != g.NumEdges() {
			t.Fatalf("degree sum %d != edges %d", totalOut, g.NumEdges())
		}
		// Write and re-read: counts must survive.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("rewritten output rejected: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("edges changed: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzEdgeListSymmetrize drives malformed edge lists — self-loops,
// duplicate edges, out-of-range and negative external IDs — through the
// loader and then through BuildUndirected, the path every
// neighborhood-reading algorithm (coloring, WCC) depends on. On accepted
// input the symmetrized graph must be simple (no self-loops, no duplicate
// out-neighbors) and structurally symmetric (every edge has its reverse,
// with consistent in-CSR slots).
func FuzzEdgeListSymmetrize(f *testing.F) {
	f.Add("0 1\n1 0\n")               // mutual pair collapses to one undirected edge
	f.Add("3 3\n")                    // self-loop must be dropped
	f.Add("0 1\n0 1\n0 1\n")          // duplicate directed edges
	f.Add("42 7\n-5 42\n")            // arbitrary external IDs, negative included
	f.Add("99999999999999999999 0\n") // overflows int64 parsing
	f.Add("0 1 2.5\n1 0 7.25\n")      // conflicting weights on a mutual pair
	f.Add("# c\n\n1 2\n2 1 0.5\n1 2 0.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Rebuild through a builder, as the torture harness and the
		// undirected test helpers do, then symmetrize.
		b := NewBuilder(g.NumVertices())
		for u := VertexID(0); int(u) < g.NumVertices(); u++ {
			ws := g.OutWeights(u) // empty on unweighted graphs
			for i, v := range g.OutNeighbors(u) {
				if len(ws) > 0 {
					b.AddWeightedEdge(u, v, ws[i])
				} else {
					b.AddEdge(u, v)
				}
			}
		}
		ug := b.BuildUndirected()

		if ug.NumVertices() != g.NumVertices() {
			t.Fatalf("symmetrize changed vertex count: %d -> %d", g.NumVertices(), ug.NumVertices())
		}
		totalOut := 0
		for u := VertexID(0); int(u) < ug.NumVertices(); u++ {
			seen := make(map[VertexID]bool)
			totalOut += ug.OutDegree(u)
			for _, v := range ug.OutNeighbors(u) {
				if v == u {
					t.Fatalf("self-loop %d->%d survived BuildUndirected", u, v)
				}
				if int(v) >= ug.NumVertices() || v < 0 {
					t.Fatalf("neighbor %d out of range", v)
				}
				if seen[v] {
					t.Fatalf("duplicate out-neighbor %d of %d", v, u)
				}
				seen[v] = true
				if !ug.HasEdge(v, u) {
					t.Fatalf("missing reverse edge %d->%d", v, u)
				}
				if _, ok := ug.InSlot(v, u); !ok {
					t.Fatalf("in-CSR missing %d->%d", u, v)
				}
			}
			if ug.OutDegree(u) != ug.InDegree(u) {
				t.Fatalf("v%d degree asymmetry: out %d, in %d", u, ug.OutDegree(u), ug.InDegree(u))
			}
		}
		if totalOut != ug.NumEdges() {
			t.Fatalf("degree sum %d != edges %d", totalOut, ug.NumEdges())
		}
	})
}

// FuzzBinaryRoundTrip checks the binary decoder tolerates corrupt input
// without panicking.
func FuzzBinaryRoundTrip(f *testing.F) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil || g == nil {
			return
		}
		// Decoded something: basic accessors must not panic for vertex 0
		// when the graph is non-empty and structurally sound.
		n := g.NumVertices()
		if n < 0 {
			t.Fatal("negative vertex count")
		}
	})
}
