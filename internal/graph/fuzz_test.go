package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and, on accepted
// input, produces an internally consistent CSR that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5 2.5\n")
	f.Add("")
	f.Add("9999999 1\n")
	f.Add("1 2 nope\n")
	f.Add("-1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input: CSR invariants must hold.
		totalOut := 0
		for u := VertexID(0); int(u) < g.NumVertices(); u++ {
			totalOut += g.OutDegree(u)
			for _, v := range g.OutNeighbors(u) {
				if int(v) >= g.NumVertices() || v < 0 {
					t.Fatalf("neighbor %d out of range", v)
				}
				if _, ok := g.InSlot(v, u); !ok {
					t.Fatalf("in-CSR missing edge %d->%d", u, v)
				}
			}
		}
		if totalOut != g.NumEdges() {
			t.Fatalf("degree sum %d != edges %d", totalOut, g.NumEdges())
		}
		// Write and re-read: counts must survive.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("rewritten output rejected: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("edges changed: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzBinaryRoundTrip checks the binary decoder tolerates corrupt input
// without panicking.
func FuzzBinaryRoundTrip(f *testing.F) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil || g == nil {
			return
		}
		// Decoded something: basic accessors must not panic for vertex 0
		// when the graph is non-empty and structurally sound.
		n := g.NumVertices()
		if n < 0 {
			t.Fatal("negative vertex count")
		}
	})
}
