package graph

// relabel.go implements degree-ordered vertex relabeling: a permutation
// of the dense ID space that clusters hubs at low IDs. Streaming
// partitioners and range partitioning both benefit — hubs get placed
// first, while their capacity discount still has room to spread them —
// and the CSR arrays touch hot vertices in a compact prefix. The
// permutation is applied at load time; callers keep the remap table so
// external IDs, outputs, and golden results are unchanged: algorithm
// inputs (e.g. an SSSP source) map through NewID, and result slices map
// back through Unpermute.

import "sort"

// Relabeling is a bijection between an original dense ID space and a
// relabeled one, with both directions materialized.
type Relabeling struct {
	fwd []VertexID // original ID -> relabeled ID
	inv []VertexID // relabeled ID -> original ID
}

// DegreeOrder computes the hub-clustering permutation of g: vertices
// sorted by descending total degree (in+out), ties broken by ascending
// original ID so the permutation is deterministic for a given graph.
func DegreeOrder(g *Graph) *Relabeling {
	n := g.NumVertices()
	inv := make([]VertexID, n)
	for i := range inv {
		inv[i] = VertexID(i)
	}
	deg := func(v VertexID) int { return g.OutDegree(v) + g.InDegree(v) }
	sort.Slice(inv, func(i, j int) bool {
		di, dj := deg(inv[i]), deg(inv[j])
		if di != dj {
			return di > dj
		}
		return inv[i] < inv[j]
	})
	fwd := make([]VertexID, n)
	for newID, oldID := range inv {
		fwd[oldID] = VertexID(newID)
	}
	return &Relabeling{fwd: fwd, inv: inv}
}

// Len returns the size of the relabeled ID space.
func (r *Relabeling) Len() int { return len(r.fwd) }

// NewID maps an original dense ID to its relabeled ID.
func (r *Relabeling) NewID(old VertexID) VertexID { return r.fwd[old] }

// OldID maps a relabeled ID back to the original dense ID.
func (r *Relabeling) OldID(relabeled VertexID) VertexID { return r.inv[relabeled] }

// Apply rebuilds g under the permutation: edge (u,v) becomes
// (NewID(u), NewID(v)), weights and the undirected flag are preserved,
// and multi-edges/self-loops survive untouched. The rebuild is
// deterministic for a given g — it streams g's own CSR edge order
// through the counting-sort builder.
func (r *Relabeling) Apply(g *Graph) *Graph {
	if g.NumVertices() != r.Len() {
		panic("graph: relabeling size does not match graph")
	}
	edges := g.Edges()
	for i := range edges {
		edges[i].Src = r.fwd[edges[i].Src]
		edges[i].Dst = r.fwd[edges[i].Dst]
	}
	return build(g.n, edges, g.outW != nil, g.undirected)
}

// Unpermute reindexes a per-vertex result slice from the relabeled
// space back to the original: out[old] = vals[NewID(old)]. It is the
// output half of the remap contract — run on Apply(g), then Unpermute
// the values, and the result is indexed exactly as an un-relabeled run.
func Unpermute[T any](r *Relabeling, vals []T) []T {
	if len(vals) != r.Len() {
		panic("graph: value slice size does not match relabeling")
	}
	out := make([]T, len(vals))
	for old, relabeled := range r.fwd {
		out[old] = vals[relabeled]
	}
	return out
}

// Permute reindexes a per-vertex slice from the original space into the
// relabeled one: out[NewID(old)] = vals[old] (the inverse of Unpermute,
// for inputs prepared in original indexing).
func Permute[T any](r *Relabeling, vals []T) []T {
	if len(vals) != r.Len() {
		panic("graph: value slice size does not match relabeling")
	}
	out := make([]T, len(vals))
	for old, relabeled := range r.fwd {
		out[relabeled] = vals[old]
	}
	return out
}
