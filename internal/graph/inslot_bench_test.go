package graph

import (
	"math/rand"
	"testing"
)

// InSlot microbenchmarks: the satellite claim is that the small-degree
// two-way scan does not regress the slot-hint miss path (lookups for a
// src that is not an in-neighbor — what buildOutSlots and mutation
// replay hit), and beats the old closure-based sort.Search on hits.
// Compare against BenchmarkInSlot*/sortSearch which preserves the old
// implementation inline.

func inSlotSortSearch(g *Graph, u, src VertexID) (int, bool) {
	in := g.InNeighbors(u)
	// The pre-change implementation, kept for A/B runs:
	// sort.Search inlined via the stdlib call.
	lo, hi := 0, len(in)
	_ = hi
	i := searchVertexIDs(in, src)
	if i < len(in) && in[i] == src {
		return i, true
	}
	_ = lo
	return 0, false
}

// searchVertexIDs mimics sort.Search's closure-driven probe loop.
func searchVertexIDs(in []VertexID, src VertexID) int {
	f := func(i int) bool { return in[i] >= src }
	i, j := 0, len(in)
	for i < j {
		h := int(uint(i+j) >> 1)
		if !f(h) {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// benchGraph builds a power-law-ish workload: many small in-lists plus
// a few hubs, with a precomputed probe schedule.
func benchGraph(hit bool) (*Graph, []VertexID, []VertexID) {
	const n = 4096
	r := rand.New(rand.NewSource(17))
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		deg := 1 + r.Intn(6) // mostly tiny in-degrees
		if v%512 == 0 {
			deg = 64 // hubs exercise the binary-search arm
		}
		for i := 0; i < deg; i++ {
			b.AddEdge(VertexID(r.Intn(n)), VertexID(v))
		}
	}
	g := b.Build()
	us := make([]VertexID, 1024)
	srcs := make([]VertexID, 1024)
	for i := range us {
		u := VertexID(1 + r.Intn(n-1))
		us[i] = u
		in := g.InNeighbors(u)
		if hit && len(in) > 0 {
			srcs[i] = in[r.Intn(len(in))]
		} else {
			// Miss: a src that is extremely unlikely to be an in-neighbor.
			srcs[i] = VertexID(n - 1 - r.Intn(8))
			if _, ok := g.InSlot(u, srcs[i]); ok {
				srcs[i] = VertexID(u) // fall back; self-loops are rare
			}
		}
	}
	return g, us, srcs
}

func benchInSlot(b *testing.B, hit bool, f func(*Graph, VertexID, VertexID) (int, bool)) {
	g, us, srcs := benchGraph(hit)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		k := i & 1023
		s, ok := f(g, us[k], srcs[k])
		if ok {
			sink += s
		}
	}
	_ = sink
}

func BenchmarkInSlotHit(b *testing.B) {
	benchInSlot(b, true, (*Graph).InSlot)
}

func BenchmarkInSlotMiss(b *testing.B) {
	benchInSlot(b, false, (*Graph).InSlot)
}

func BenchmarkInSlotHitSortSearch(b *testing.B) {
	benchInSlot(b, true, inSlotSortSearch)
}

func BenchmarkInSlotMissSortSearch(b *testing.B) {
	benchInSlot(b, false, inSlotSortSearch)
}
