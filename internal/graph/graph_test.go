package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := buildTriangle(t)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges, want 3/3", g.NumVertices(), g.NumEdges())
	}
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []VertexID{1}) {
		t.Errorf("OutNeighbors(0) = %v, want [1]", got)
	}
	if got := g.InNeighbors(0); !reflect.DeepEqual(got, []VertexID{2}) {
		t.Errorf("InNeighbors(0) = %v, want [2]", got)
	}
	if g.OutDegree(1) != 1 || g.InDegree(1) != 1 {
		t.Errorf("degrees of 1 = %d/%d, want 1/1", g.OutDegree(1), g.InDegree(1))
	}
	if g.Undirected() {
		t.Error("directed graph reported undirected")
	}
}

func TestInSlot(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(3, 0)
	b.AddEdge(1, 0)
	b.AddEdge(4, 0)
	g := b.Build()
	in := g.InNeighbors(0)
	if !sort.SliceIsSorted(in, func(i, j int) bool { return in[i] < in[j] }) {
		t.Fatalf("in-neighbors not sorted: %v", in)
	}
	for want, src := range in {
		got, ok := g.InSlot(0, src)
		if !ok || got != want {
			t.Errorf("InSlot(0,%d) = %d,%v; want %d,true", src, got, ok, want)
		}
	}
	if _, ok := g.InSlot(0, 2); ok {
		t.Error("InSlot found nonexistent edge 2->0")
	}
	if !g.HasEdge(3, 0) || g.HasEdge(0, 3) {
		t.Error("HasEdge direction wrong")
	}
}

func TestBuildUndirected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate pair, must collapse
	b.AddEdge(1, 2)
	b.AddEdge(2, 2) // self-loop, dropped
	g := b.BuildUndirected()
	if !g.Undirected() {
		t.Fatal("not marked undirected")
	}
	if g.NumEdges() != 4 { // {0,1} and {1,2}, both directions
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Error("symmetrization missing edges")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop survived symmetrization")
	}
}

func TestNeighborsDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // 1 is both in- and out-neighbor of 0
	b.AddEdge(2, 0)
	g := b.Build()
	var got []VertexID
	g.Neighbors(0, func(v VertexID) { got = append(got, v) })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []VertexID{1, 2}) {
		t.Errorf("Neighbors(0) = %v, want [1 2]", got)
	}
}

func TestWeights(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 2.5)
	g := b.Build()
	w := g.OutWeights(0)
	if len(w) != 1 || w[0] != 2.5 {
		t.Fatalf("OutWeights(0) = %v, want [2.5]", w)
	}
	b2 := NewBuilder(2)
	b2.AddEdge(0, 1)
	if got := b2.Build().OutWeights(0); got != nil {
		t.Errorf("unweighted graph has weights %v", got)
	}
}

func TestMaxDegreeAndStats(t *testing.T) {
	// Star: center 0 with 4 out-edges plus 1 in-edge.
	b := NewBuilder(6)
	for i := VertexID(1); i <= 4; i++ {
		b.AddEdge(0, i)
	}
	b.AddEdge(5, 0)
	g := b.Build()
	if got := g.MaxDegree(); got != 5 {
		t.Errorf("MaxDegree = %d, want 5", got)
	}
	s := Summarize(g)
	if s.Vertices != 6 || s.Edges != 5 || s.MaxDegree != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.AvgDegree != 5.0/6.0 {
		t.Errorf("AvgDegree = %v", s.AvgDegree)
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	b := NewBuilder(2)
	b.AddEdge(0, 5)
}

func TestEdgeListRoundTrip(t *testing.T) {
	in := `# comment
0 1
1 2 3.5

2 0
`
	g, ext, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d/%d, want 3/3", g.NumVertices(), g.NumEdges())
	}
	if !reflect.DeepEqual(ext, []int64{0, 1, 2}) {
		t.Errorf("ext ids = %v", ext)
	}
	if w := g.OutWeights(1); len(w) != 1 || w[0] != 3.5 {
		t.Errorf("weight lost: %v", w)
	}

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Error("edge list round trip changed the graph")
	}
}

func TestEdgeListRemapsSparseIDs(t *testing.T) {
	g, ext, err := ReadEdgeList(strings.NewReader("100 900\n900 42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if !reflect.DeepEqual(ext, []int64{100, 900, 42}) {
		t.Errorf("ext = %v", ext)
	}
}

func TestEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "a b\n", "1 b\n", "1 2 x\n"} {
		if _, _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q: want error", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), 50, 300)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Error("binary round trip changed the graph")
	}
}

func TestSaveLoadFile(t *testing.T) {
	// The text loader remaps IDs by first appearance, so use a chain graph
	// whose edge-list order makes that remapping the identity.
	b := NewBuilder(20)
	for i := VertexID(0); i < 19; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	for _, name := range []string{"g.txt", "g.bin"} {
		path := t.TempDir() + "/" + name
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !graphsEqual(g, g2) {
			t.Errorf("%s: round trip changed the graph", name)
		}
	}
}

// randomGraph builds a random unweighted directed graph for tests.
func randomGraph(r *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)))
	}
	return b.Build()
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := VertexID(0); int(u) < a.NumVertices(); u++ {
		ao, bo := append([]VertexID{}, a.OutNeighbors(u)...), append([]VertexID{}, b.OutNeighbors(u)...)
		sort.Slice(ao, func(i, j int) bool { return ao[i] < ao[j] })
		sort.Slice(bo, func(i, j int) bool { return bo[i] < bo[j] })
		if !reflect.DeepEqual(ao, bo) {
			return false
		}
	}
	return true
}

// Property: for every edge u->v in a random graph, v lists u as in-neighbor
// at the slot InSlot reports, and degree sums match edge count.
func TestCSRConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		g := randomGraph(r, n, r.Intn(4*n))
		totalOut, totalIn := 0, 0
		for u := VertexID(0); int(u) < n; u++ {
			totalOut += g.OutDegree(u)
			totalIn += g.InDegree(u)
			for _, v := range g.OutNeighbors(u) {
				slot, ok := g.InSlot(v, u)
				if !ok {
					return false
				}
				if g.InNeighbors(v)[slot] != u {
					return false
				}
			}
		}
		return totalOut == g.NumEdges() && totalIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: BuildUndirected is symmetric and loop-free.
func TestUndirectedSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < r.Intn(5*n); i++ {
			b.AddEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)))
		}
		g := b.BuildUndirected()
		for u := VertexID(0); int(u) < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				if v == u || !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return g.NumEdges()%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
