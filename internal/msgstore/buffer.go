package msgstore

import (
	"sync"

	"serialgraph/internal/graph"
	"serialgraph/internal/metrics"
)

// Entry is one vertex message in a remote batch.
type Entry[M any] struct {
	Dst, Src graph.VertexID
	Msg      M
	Ver      uint32
}

// Buffer is the message buffer cache of §6.1: outgoing remote messages are
// batched per destination worker to use the (simulated) network
// efficiently. Batches flush automatically when full and manually before a
// worker hands over a token or fork (the C1 write-all flush).
type Buffer[M any] struct {
	perDest  []*destBuf[M]
	cap      int
	msgBytes int
	hdr      int // batch header bytes
	entryHdr int // per-entry header bytes
	combine  func(a, b M) M
	send     func(dest int, batch []Entry[M], bytes int)
	reg      *metrics.Registry
}

type destBuf[M any] struct {
	mu      sync.Mutex
	entries []Entry[M]
	// slot maps a destination vertex to its combined entry's index when
	// sender-side combining is on.
	slot map[graph.VertexID]int
}

// NewBuffer creates a buffer cache for nWorkers destinations. cap is the
// flush threshold in entries; send is invoked with the drained batch and
// its simulated wire size.
func NewBuffer[M any](nWorkers, cap, msgBytes, batchHeader, entryHeader int, send func(dest int, batch []Entry[M], bytes int)) *Buffer[M] {
	if cap < 1 {
		cap = 1
	}
	b := &Buffer[M]{cap: cap, msgBytes: msgBytes, hdr: batchHeader, entryHdr: entryHeader, send: send}
	b.perDest = make([]*destBuf[M], nWorkers)
	for i := range b.perDest {
		b.perDest[i] = &destBuf[M]{}
	}
	return b
}

// SetCombiner enables sender-side combining (Giraph's combiner support):
// messages buffered for the same destination vertex are folded with fn
// before they ever reach the network, shrinking batches for algorithms
// like SSSP and WCC. Call before any Add.
func (b *Buffer[M]) SetCombiner(fn func(a, b M) M) { b.combine = fn }

// SetMetrics attaches a metrics registry. Counting lives inside the buffer
// — not at its call sites — because every remote-send path (capacity
// flush, end-of-superstep FlushAll, the Chandy–Misra pre-handoff FlushTo)
// funnels through emit, so no path can silently skip the counters. Call
// before any Add.
func (b *Buffer[M]) SetMetrics(reg *metrics.Registry) { b.reg = reg }

// emit counts and sends one drained batch.
func (b *Buffer[M]) emit(dest int, batch []Entry[M]) {
	bytes := b.batchBytes(len(batch))
	if b.reg != nil {
		b.reg.Add(metrics.RemoteBatches, 1)
		b.reg.Add(metrics.RemoteBatchBytes, int64(bytes))
		b.reg.Add(metrics.RemoteEntriesFlushed, int64(len(batch)))
		b.reg.Observe(metrics.HistBatchEntries, int64(len(batch)))
	}
	b.send(dest, batch, bytes)
}

// Add buffers a message bound for a vertex on worker dest, flushing that
// destination if the buffer is full.
func (b *Buffer[M]) Add(dest int, e Entry[M]) {
	if b.reg != nil {
		// Counts messages as buffered, before sender-side combining folds
		// them, so combining's effectiveness is remote_entries vs.
		// remote_entries_flushed.
		b.reg.Add(metrics.RemoteEntries, 1)
	}
	d := b.perDest[dest]
	d.mu.Lock()
	if b.combine != nil {
		if d.slot == nil {
			d.slot = make(map[graph.VertexID]int)
		}
		if i, ok := d.slot[e.Dst]; ok {
			d.entries[i].Msg = b.combine(d.entries[i].Msg, e.Msg)
			d.mu.Unlock()
			return
		}
		d.slot[e.Dst] = len(d.entries)
	}
	d.entries = append(d.entries, e)
	if len(d.entries) >= b.cap {
		batch := d.entries
		d.entries = nil
		d.slot = nil
		d.mu.Unlock()
		b.emit(dest, batch)
		return
	}
	d.mu.Unlock()
}

// FlushTo drains the buffer for one destination, returning the number of
// entries sent.
func (b *Buffer[M]) FlushTo(dest int) int {
	d := b.perDest[dest]
	d.mu.Lock()
	batch := d.entries
	d.entries = nil
	d.slot = nil
	d.mu.Unlock()
	if len(batch) == 0 {
		return 0
	}
	b.emit(dest, batch)
	return len(batch)
}

// FlushAll drains every destination buffer.
func (b *Buffer[M]) FlushAll() {
	for dest := range b.perDest {
		b.FlushTo(dest)
	}
}

// Clear discards every buffered entry without sending it. The engine
// calls it during a rollback: messages buffered when the cluster failed
// belong to the discarded superstep and must not leak into the replay.
func (b *Buffer[M]) Clear() {
	for _, d := range b.perDest {
		d.mu.Lock()
		d.entries = nil
		d.slot = nil
		d.mu.Unlock()
	}
}

// Pending returns the number of buffered entries for dest.
func (b *Buffer[M]) Pending(dest int) int {
	d := b.perDest[dest]
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

func (b *Buffer[M]) batchBytes(n int) int {
	return b.hdr + n*(b.entryHdr+b.msgBytes)
}
